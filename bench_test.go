// Benchmarks regenerating the paper's evaluation: one benchmark per figure
// (Figs 3, 7, 10a, 10b, 11, 12, 13, 14) plus the ablations, with the
// headline numbers reported as custom metrics, and engine microbenchmarks.
//
//	go test -bench=Fig11 -benchmem .
package skv_test

import (
	"fmt"
	"testing"

	"skv/internal/bench"
	"skv/internal/dict"
	"skv/internal/rdb"
	"skv/internal/resp"
	"skv/internal/skiplist"
	"skv/internal/store"
)

// runExperiment executes one figure reproduction per iteration and reports
// its headline metrics.
func runExperiment(b *testing.B, fn func() *bench.Experiment) {
	b.Helper()
	var e *bench.Experiment
	for i := 0; i < b.N; i++ {
		e = fn()
	}
	if e != nil {
		for k, v := range e.Metrics {
			b.ReportMetric(v, k)
		}
	}
}

func BenchmarkFig3RDMAWriteLatency(b *testing.B) { runExperiment(b, bench.Fig3) }
func BenchmarkFig7SlaveDegradation(b *testing.B) { runExperiment(b, bench.Fig7) }
func BenchmarkFig10aThroughput(b *testing.B)     { runExperiment(b, bench.Fig10a) }
func BenchmarkFig10bLatency(b *testing.B)        { runExperiment(b, bench.Fig10b) }
func BenchmarkFig11SetOffload(b *testing.B)      { runExperiment(b, bench.Fig11) }
func BenchmarkFig12ValueSize(b *testing.B)       { runExperiment(b, bench.Fig12) }
func BenchmarkFig13Get(b *testing.B)             { runExperiment(b, bench.Fig13) }
func BenchmarkFig14Availability(b *testing.B)    { runExperiment(b, bench.Fig14) }
func BenchmarkAblateSlaveCount(b *testing.B)     { runExperiment(b, bench.AblateSlaves) }
func BenchmarkAblateNICCoreSpeed(b *testing.B)   { runExperiment(b, bench.AblateNICSpeed) }
func BenchmarkAblateNicThreadNum(b *testing.B)   { runExperiment(b, bench.AblateThreads) }
func BenchmarkAblateNICCache(b *testing.B)       { runExperiment(b, bench.AblateNICCache) }
func BenchmarkAblateCPUPerOp(b *testing.B)       { runExperiment(b, bench.AblateCPU) }
func BenchmarkExtPipeline(b *testing.B)          { runExperiment(b, bench.ExtPipeline) }
func BenchmarkExtBatchedRepl(b *testing.B)       { runExperiment(b, bench.ExtBatch) }

// ---- Engine microbenchmarks (real CPU time, not virtual) ----

func BenchmarkDictSet(b *testing.B) {
	d := dict.New(1)
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key:%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Set(keys[i&(1<<16-1)], i)
	}
}

func BenchmarkDictGet(b *testing.B) {
	d := dict.New(1)
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("key:%d", i)
		d.Set(keys[i], i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Get(keys[i&(1<<16-1)])
	}
}

func BenchmarkSkiplistInsertDelete(b *testing.B) {
	sl := skiplist.New(1)
	members := make([]string, 4096)
	for i := range members {
		members[i] = fmt.Sprintf("m:%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := members[i&4095]
		sl.Insert(m, float64(i&1023))
		sl.Delete(m, float64(i&1023))
	}
}

func BenchmarkRESPParseCommand(b *testing.B) {
	cmd := resp.EncodeCommand("SET", "key:0000012345", "some-reasonably-sized-value-payload")
	b.SetBytes(int64(len(cmd)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var r resp.Reader
		r.Feed(cmd)
		if _, ok, err := r.ReadCommand(); !ok || err != nil {
			b.Fatal("parse failed")
		}
	}
}

func BenchmarkStoreSET(b *testing.B) {
	st := store.New(store.Options{DBs: 1, Seed: 1})
	argv := [][]byte{[]byte("SET"), []byte("key"), []byte("value-payload-64-bytes-xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Exec(0, argv)
	}
}

func BenchmarkStoreGET(b *testing.B) {
	st := store.New(store.Options{DBs: 1, Seed: 1})
	st.Exec(0, [][]byte{[]byte("SET"), []byte("key"), []byte("value")})
	argv := [][]byte{[]byte("GET"), []byte("key")}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Exec(0, argv)
	}
}

func BenchmarkRDBDumpLoad(b *testing.B) {
	st := store.New(store.Options{DBs: 1, Seed: 1})
	for i := 0; i < 10_000; i++ {
		st.Exec(0, [][]byte{[]byte("SET"), []byte(fmt.Sprintf("key:%d", i)), []byte("value-0123456789")})
	}
	dst := store.New(store.Options{DBs: 1, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dump := rdb.Dump(st)
		if err := rdb.Load(dst, dump); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(len(dump)))
	}
}
