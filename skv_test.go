package skv_test

import (
	"net"
	"testing"
	"time"

	"skv"
	"skv/internal/resp"
	"skv/internal/sim"
)

// TestPublicStoreAPI exercises the embedded-engine entry point.
func TestPublicStoreAPI(t *testing.T) {
	st := skv.NewStore(2, 1, func() int64 { return time.Now().UnixMilli() })
	reply, dirty := st.Exec(0, [][]byte{[]byte("SET"), []byte("k"), []byte("v")})
	if string(reply) != "+OK\r\n" || !dirty {
		t.Fatalf("SET via facade: %q dirty=%v", reply, dirty)
	}
	reply, _ = st.Exec(0, [][]byte{[]byte("GET"), []byte("k")})
	if string(reply) != "$1\r\nv\r\n" {
		t.Fatalf("GET via facade: %q", reply)
	}
}

// TestPublicNetServerAPI boots a real TCP server through the facade.
func TestPublicNetServerAPI(t *testing.T) {
	s, err := skv.NewNetServer(skv.NetServerOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	defer s.Close()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(resp.EncodeCommand("PING")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 64)
	conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, err := conn.Read(buf)
	if err != nil || string(buf[:n]) != "+PONG\r\n" {
		t.Fatalf("PING over facade server: %q %v", buf[:n], err)
	}
}

// TestPublicClusterAPI builds and measures a small SKV deployment.
func TestPublicClusterAPI(t *testing.T) {
	c := skv.BuildCluster(skv.ClusterConfig{
		Kind: skv.KindSKV, Slaves: 2, Clients: 2, Seed: 3,
		SKV: skv.DefaultSKVConfig(),
	})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("replication did not converge")
	}
	res := c.Measure(10*sim.Millisecond, 50*sim.Millisecond)
	if res.Ops == 0 {
		t.Fatal("no ops through facade cluster")
	}
}

func TestPublicExperimentRegistry(t *testing.T) {
	if len(skv.ExperimentIDs()) == 0 {
		t.Fatal("no experiments registered")
	}
	if skv.RunExperiment("bogus") != nil {
		t.Fatal("bogus experiment id accepted")
	}
	p := skv.DefaultParams()
	if p.NICCoreSpeed >= 1 {
		t.Fatal("params facade broken")
	}
}
