GO ?= go

.PHONY: all build test vet race verify bench clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The cluster suite runs minutes of virtual time per scenario; race
# instrumentation pushes it past the default 10m package timeout.
race:
	$(GO) test -race -timeout 60m ./...

# Full pre-merge gate: everything CI runs.
verify: build test vet race

# Regenerate the paper-figure experiments (virtual-time, deterministic).
bench:
	$(GO) run ./cmd/skv-bench

clean:
	$(GO) clean ./...
