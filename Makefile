GO ?= go

.PHONY: all build test vet lint race verify bench bench-smoke bench-nic-smoke bench-cluster-smoke bench-reshard-smoke bench-quorum-smoke bench-tracking-smoke clean

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# Static analysis beyond vet. Gated on tool presence so the target never
# forces an install: CI installs staticcheck explicitly; a bare dev box
# skips with a note instead of failing.
lint:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	elif command -v golangci-lint >/dev/null 2>&1; then \
		golangci-lint run ./... ; \
	else \
		echo "lint: staticcheck/golangci-lint not installed, skipping"; \
	fi

# The cluster suite runs minutes of virtual time per scenario; race
# instrumentation pushes it past the default 10m package timeout.
race:
	$(GO) test -race -timeout 60m ./...

# Full pre-merge gate: everything CI runs.
verify: build test vet lint race

# Regenerate the paper-figure experiments (virtual-time, deterministic).
bench:
	$(GO) run ./cmd/skv-bench

# Run every experiment at tiny scale: proves each one still builds its
# cluster, runs, and renders. Numbers are meaningless at this scale.
bench-smoke:
	$(GO) run ./cmd/skv-bench -smoke

# The NIC read path alone (§IV-A ablation, host- vs NIC-served reads at
# 1/2/4 shards): the quick check that the sharded shadow replica still
# builds, applies the stream, and serves reads.
bench-nic-smoke:
	$(GO) run ./cmd/skv-bench -smoke -exp ablate-niccache

# The multi-master hash-slot path alone (ext-cluster, masters 1/2/4):
# the quick check that the slot plane still builds its groups, the
# slot-aware clients route and repair their maps, and scale-out holds.
bench-cluster-smoke:
	$(GO) run ./cmd/skv-bench -smoke -exp ext-cluster

# the quick check that live slot migration moves a range under load: the
# ASK/ASKING window, the per-key CAS transfer, and the final NODE flip.
bench-reshard-smoke:
	$(GO) run ./cmd/skv-bench -smoke -exp ext-reshard

bench-quorum-smoke:
	$(GO) run ./cmd/skv-bench -smoke -exp ext-quorum

# Client-side caching (ext-tracking): CLIENT TRACKING on the workload
# clients, NIC-pushed invalidations, and the tracked-vs-NIC-served read
# comparison, at tiny scale.
bench-tracking-smoke:
	$(GO) run ./cmd/skv-bench -smoke -exp ext-tracking

clean:
	$(GO) clean ./...
