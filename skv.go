// Package skv is a from-scratch Go reproduction of "SKV: A
// SmartNIC-Offloaded Distributed Key-Value Store" (IEEE CLUSTER 2022): a
// Redis-like storage engine plus a deterministic simulation of the paper's
// cluster substrate — RDMA verbs, kernel-TCP baseline, and an off-path
// BlueField-class SmartNIC — faithful enough to regenerate every figure of
// the paper's evaluation.
//
// The package root re-exports the library's main entry points; the
// implementation lives in the internal packages (see DESIGN.md for the full
// inventory):
//
//   - Storage engine: incremental-rehash dict, SDS strings, skiplists,
//     RESP protocol, RDB snapshots (internal/store and friends). Usable
//     standalone — NewStore — or over real TCP — NewNetServer (RESP
//     compatible for the implemented command set).
//   - Simulation: BuildCluster assembles original-Redis, RDMA-Redis, or SKV
//     deployments in virtual time; Experiments regenerates the paper's
//     figures (also available via cmd/skv-bench).
package skv

import (
	"skv/internal/bench"
	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/netserver"
	"skv/internal/store"
)

// Store is the key-value engine: numbered databases, the Redis command
// set implemented here (strings, keys, lists, hashes, sets, sorted sets),
// and TTL expiration.
type Store = store.Store

// NewStore creates an engine with n databases. clock supplies milliseconds
// (wall time for real deployments, virtual time inside simulations); seed
// drives internal randomization deterministically.
func NewStore(n int, seed int64, clock func() int64) *Store {
	return store.New(store.Options{DBs: n, Seed: seed, Clock: clock})
}

// NetServer serves a Store over real TCP with the RESP protocol.
type NetServer = netserver.Server

// NetServerOptions configures a NetServer.
type NetServerOptions = netserver.Options

// NewNetServer creates a TCP RESP server (see cmd/skv-server).
func NewNetServer(opts NetServerOptions) (*NetServer, error) {
	return netserver.New(opts)
}

// Cluster is a simulated deployment (master, slaves, clients, fabric).
type Cluster = cluster.Cluster

// ClusterConfig describes a simulated deployment.
type ClusterConfig = cluster.Config

// Systems under test for BuildCluster.
const (
	// KindTCP is original Redis over the kernel TCP stack.
	KindTCP = cluster.KindTCP
	// KindRDMA is RDMA-Redis (the paper's baseline).
	KindRDMA = cluster.KindRDMA
	// KindSKV is the SmartNIC-offloaded system.
	KindSKV = cluster.KindSKV
)

// SKVConfig carries the paper's SKV tunables (min-slaves, waiting-time via
// Params, thread-num).
type SKVConfig = core.Config

// DefaultSKVConfig mirrors the paper's default deployment.
func DefaultSKVConfig() SKVConfig { return core.DefaultConfig() }

// Params is the calibration parameter set of the simulation.
type Params = model.Params

// DefaultParams returns the paper-anchored calibration.
func DefaultParams() Params { return model.Default() }

// BuildCluster assembles a simulated deployment.
func BuildCluster(cfg ClusterConfig) *Cluster { return cluster.Build(cfg) }

// Experiment is one reproduced figure of the paper.
type Experiment = bench.Experiment

// Experiments regenerates every figure and ablation in paper order.
func Experiments() []*Experiment { return bench.All() }

// RunExperiment regenerates a single figure by id (bench.IDs lists them);
// nil for unknown ids.
func RunExperiment(id string) *Experiment { return bench.ByID(id) }

// ExperimentIDs lists the available experiment identifiers.
func ExperimentIDs() []string { return bench.IDs() }
