module skv

go 1.22
