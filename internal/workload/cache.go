package workload

// cache is the bounded invalidation-coherent client cache behind tracked
// GETs. Eviction is FIFO by first insertion (no map iteration — eviction
// order must be deterministic across runs). The cache itself is dumb
// storage: coherence comes from the owner dropping entries on invalidation
// pushes, redirects, and reconnects.
type cache struct {
	max  int
	m    map[string][]byte
	fifo []string // insertion order; may hold tombstones of dropped keys
}

func newCache(max int) *cache {
	return &cache{max: max, m: make(map[string][]byte)}
}

func (c *cache) len() int { return len(c.m) }

func (c *cache) get(k string) ([]byte, bool) {
	v, ok := c.m[k]
	return v, ok
}

// put inserts or refreshes an entry, evicting the oldest live entry when
// the bound is hit. A refresh keeps the key's original FIFO position.
func (c *cache) put(k string, v []byte) {
	if _, exists := c.m[k]; !exists {
		for len(c.m) >= c.max {
			if !c.evictOldest() {
				return // bound smaller than one live entry; never cache
			}
		}
		c.fifo = append(c.fifo, k)
	}
	c.m[k] = v
}

// evictOldest drops the oldest live entry, skipping tombstones of keys
// already invalidated. Returns false if nothing was evictable.
func (c *cache) evictOldest() bool {
	for len(c.fifo) > 0 {
		k := c.fifo[0]
		c.fifo = c.fifo[1:]
		if _, ok := c.m[k]; ok {
			delete(c.m, k)
			return true
		}
	}
	return false
}

// invalidate drops one key; reports whether an entry was actually present
// (its fifo slot becomes a tombstone).
func (c *cache) invalidate(k string) bool {
	if _, ok := c.m[k]; !ok {
		return false
	}
	delete(c.m, k)
	return true
}

func (c *cache) flush() {
	c.m = make(map[string][]byte)
	c.fifo = nil
}

// entries snapshots the cache for coherence oracles.
func (c *cache) entries() map[string]string {
	out := make(map[string]string, len(c.m))
	for k, v := range c.m {
		out[k] = string(v)
	}
	return out
}
