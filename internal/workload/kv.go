package workload

import (
	"fmt"

	"skv/internal/fabric"
	"skv/internal/model"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/slots"
	"skv/internal/stats"
	"skv/internal/transport"
)

// KV is the one benchmark-client surface. Both load generators — the plain
// closed-loop client and the slot-aware cluster client — implement it, so
// harnesses (benches, chaos scenarios, examples) drive either through the
// same interface and read the same Stats, regardless of topology.
type KV interface {
	// Name returns the client's name (stable across reconnects).
	Name() string
	// Start dials and begins the closed loop(s).
	Start()
	// Stop ends the loop after in-flight requests complete.
	Stop()
	// SetWarmup discards latency samples recorded before the given time.
	SetWarmup(until sim.Time)
	// SetSeries attaches a completion-over-time series (Fig 14).
	SetSeries(s *stats.TimeSeries)
	// Stats returns a copy of the client's counters.
	Stats() Stats
	// Histogram returns the client's latency histogram (after warm-up).
	Histogram() *stats.Histogram
	// CacheEntries returns a copy of the tracked client cache, nil when
	// tracking is off — the hook coherence oracles compare against stores.
	CacheEntries() map[string]string
}

// Options selects what kind of client New builds and how it behaves.
type Options struct {
	// Addrs seeds the server addresses (endpoint names, resolved through
	// Env.Resolve). A plain client dials Addrs[0]; a slot client learns the
	// rest of the topology through MOVED redirects from its seed.
	Addrs []string
	// Pipeline is the number of requests kept in flight (redis-benchmark
	// -P). 1 = classic closed loop. For slot clients the window is per
	// replication group.
	Pipeline int
	// Slots selects the slot-aware cluster client (requires Env.Table).
	Slots bool
	// Tracking negotiates CLIENT TRACKING after every (re)dial and serves
	// tracked GETs from a local invalidation-coherent cache.
	Tracking bool
	// CacheSize bounds the tracked cache in entries (0 = DefaultCacheSize).
	CacheSize int
}

// Env is the simulated world a client is built into — everything that is a
// property of the deployment rather than of the client's behavior.
type Env struct {
	Eng    *sim.Engine
	Params *model.Params
	// EP is the client machine's host endpoint.
	EP *fabric.Endpoint
	// MakeStack abstracts the transport choice (TCP vs RDMA).
	MakeStack func(*fabric.Endpoint, *sim.Proc) transport.Stack
	Gen       *Generator
	// Wakeup is the client proc's wakeup cost.
	Wakeup sim.Duration
	// Port is the server port every data connection dials.
	Port int
	// Resolve maps a server address (an endpoint name) to its endpoint.
	Resolve func(addr string) *fabric.Endpoint
	// Table is the deployment's authoritative slot map (Options.Slots).
	Table *slots.Map
	// Invalidation, when non-nil, is the out-of-band invalidation push
	// endpoint (the master's SmartNIC): a tracking client subscribes there
	// and asks the server to REDIRECT invalidations to that subscription.
	// Nil keeps invalidations in-band ('>' pushes on the data connection).
	Invalidation *fabric.Endpoint
	// InvalidationPort is the port the subscription dials (Invalidation).
	InvalidationPort int
}

// Stats is a copy of one client's counters. Slot-routing fields stay zero
// for plain clients; tracking fields stay zero with tracking off.
type Stats struct {
	// Sent and Done count requests put on the wire and replies consumed;
	// ErrReplies the error replies among them (redirects excluded).
	Sent       uint64
	Done       uint64
	ErrReplies uint64

	// Tracking: Hits are GETs served from the local cache (also counted in
	// Done), Misses tracked GETs that went to the network, Invalidations
	// the invalidation pushes applied, Flushes the whole-cache drops
	// (reconnects, topology changes, subscription loss).
	Hits          uint64
	Misses        uint64
	Invalidations uint64
	Flushes       uint64

	// Slot routing (see SlotClient's doc comment for the semantics).
	Moved        uint64
	Asked        uint64
	TryAgain     uint64
	MapRefreshes uint64
	Redials      uint64
	// GroupDone / GroupErrs break network completions and error replies
	// down by serving group (cache hits count toward neither — a hit is
	// served by nobody).
	GroupDone []uint64
	GroupErrs []uint64
}

// New builds a client. The concrete type is chosen by opts.Slots; callers
// only ever see the KV interface.
func New(name string, env Env, opts Options) KV {
	if opts.Slots {
		if env.Table == nil {
			panic(fmt.Sprintf("workload: client %s: Options.Slots requires Env.Table", name))
		}
		return newSlotClient(name, env, opts)
	}
	if len(opts.Addrs) != 1 {
		panic(fmt.Sprintf("workload: client %s: a plain client needs exactly one address, got %d", name, len(opts.Addrs)))
	}
	return newClient(name, env, opts)
}

// DefaultCacheSize bounds the tracked cache when Options.CacheSize is 0.
const DefaultCacheSize = 4096

// kvbase is the state both client kinds share: the simulated machine (core,
// proc, transport stack), the generator, measurement plumbing, the common
// counters, and the tracked cache.
type kvbase struct {
	name   string
	eng    *sim.Engine
	params *model.Params
	proc   *sim.Proc
	stack  transport.Stack
	gen    *Generator

	pipeline int
	running  bool

	warmupUntil sim.Time
	hist        *stats.Histogram
	series      *stats.TimeSeries

	sent       uint64
	done       uint64
	errReplies uint64

	tracking bool
	cache    *cache
	hits          uint64
	misses        uint64
	invalidations uint64
	flushes       uint64
}

func newKVBase(name string, env Env, opts Options) kvbase {
	coreRes := sim.NewCore(env.Eng, name+"-core", env.Params.HostCoreSpeed)
	proc := sim.NewProc(env.Eng, coreRes, env.Wakeup)
	b := kvbase{
		name:     name,
		eng:      env.Eng,
		params:   env.Params,
		proc:     proc,
		stack:    env.MakeStack(env.EP, proc),
		gen:      env.Gen,
		pipeline: opts.Pipeline,
		hist:     stats.NewHistogram(),
		tracking: opts.Tracking,
	}
	if opts.Tracking {
		size := opts.CacheSize
		if size <= 0 {
			size = DefaultCacheSize
		}
		b.cache = newCache(size)
	}
	return b
}

func (b *kvbase) Name() string                  { return b.name }
func (b *kvbase) Stop()                         { b.running = false }
func (b *kvbase) SetWarmup(until sim.Time)      { b.warmupUntil = until }
func (b *kvbase) SetSeries(s *stats.TimeSeries) { b.series = s }
func (b *kvbase) Histogram() *stats.Histogram   { return b.hist }

func (b *kvbase) baseStats() Stats {
	return Stats{
		Sent: b.sent, Done: b.done, ErrReplies: b.errReplies,
		Hits: b.hits, Misses: b.misses,
		Invalidations: b.invalidations, Flushes: b.flushes,
	}
}

// CacheEntries snapshots the tracked cache (nil when tracking is off).
func (b *kvbase) CacheEntries() map[string]string {
	if b.cache == nil {
		return nil
	}
	return b.cache.entries()
}

// record books one completion's latency if past warm-up.
func (b *kvbase) record(sentAt sim.Time) {
	now := b.eng.Now()
	if now >= b.warmupUntil {
		b.hist.Record(now.Sub(sentAt))
		if b.series != nil {
			b.series.Record(now)
		}
	}
}

// localHit completes one tracked GET from the cache: the value is already
// in client memory, so the op costs one think-time beat on the client core
// and never touches the wire. refill re-arms the closed-loop window slot
// the hit occupied.
func (b *kvbase) localHit(sentAt sim.Time, refill func()) {
	b.hits++
	b.proc.Post(b.params.ClientThinkCPU, func() {
		b.done++
		b.record(sentAt)
		refill()
	})
}

// flushCache empties the tracked cache (reconnects, subscription loss,
// topology changes — any event after which pushed invalidations may have
// been missed).
func (b *kvbase) flushCache() {
	if b.cache == nil || b.cache.len() == 0 {
		return
	}
	b.cache.flush()
	b.flushes++
}

// pushedKey extracts the invalidated key from a tracking push frame, or
// ok=false for pushes the client does not understand (ignored).
func pushedKey(v resp.Value) (string, bool) {
	if len(v.Array) != 2 || string(v.Array[0].Str) != "invalidate" {
		return "", false
	}
	return string(v.Array[1].Str), true
}
