// Package workload implements the benchmark load generators: the
// redis-benchmark-equivalent closed-loop clients the paper's evaluation
// uses ("each client issues queries as quickly as possible"), plus key and
// value generators with uniform or Zipfian key popularity.
package workload

import (
	"fmt"
	"math/rand"

	"skv/internal/core"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

// Op is the command a generator emits.
type Op int

// Operation kinds.
const (
	OpSet Op = iota
	OpGet
)

// Generator produces commands for one client.
type Generator struct {
	rnd *rand.Rand
	// KeySpace is the number of distinct keys.
	KeySpace int
	// ValueSize is the SET payload size in bytes.
	ValueSize int
	// SetRatio is the fraction of SETs (1.0 = pure SET, 0.0 = pure GET).
	SetRatio float64
	// Zipf enables a Zipfian key distribution instead of uniform.
	Zipf bool

	zipf  *rand.Zipf
	value []byte
}

// DefaultZipfS is the Zipfian skew exponent used when none is given — the
// value the evaluation has always used.
const DefaultZipfS = 1.1

// NewGenerator creates a generator with deterministic randomness and the
// default Zipfian skew.
func NewGenerator(seed int64, keySpace, valueSize int, setRatio float64, zipfian bool) *Generator {
	return NewGeneratorSkew(seed, keySpace, valueSize, setRatio, zipfian, DefaultZipfS)
}

// NewGeneratorSkew is NewGenerator with an explicit Zipfian skew exponent s
// (must be > 1; ignored for uniform distributions). The same seed and
// s = DefaultZipfS reproduce NewGenerator's stream bit-for-bit.
func NewGeneratorSkew(seed int64, keySpace, valueSize int, setRatio float64, zipfian bool, s float64) *Generator {
	rnd := rand.New(rand.NewSource(seed))
	g := &Generator{
		rnd:       rnd,
		KeySpace:  keySpace,
		ValueSize: valueSize,
		SetRatio:  setRatio,
		Zipf:      zipfian,
	}
	if zipfian {
		g.zipf = rand.NewZipf(rnd, s, 1, uint64(keySpace-1))
	}
	g.value = make([]byte, valueSize)
	for i := range g.value {
		g.value[i] = 'a' + byte(i%26)
	}
	return g
}

func (g *Generator) key() string {
	var k uint64
	if g.Zipf {
		k = g.zipf.Uint64()
	} else {
		k = uint64(g.rnd.Intn(g.KeySpace))
	}
	return fmt.Sprintf("key:%010d", k)
}

// Next produces the next encoded command and its kind.
func (g *Generator) Next() ([]byte, Op) {
	cmd, op, _ := g.NextKeyed()
	return cmd, op
}

// NextKeyed is Next plus the key the command targets, for routing layers
// (slot-aware clients) that must know where a command goes. It draws from
// the same RNG stream as Next — interleaving the two is safe.
func (g *Generator) NextKeyed() ([]byte, Op, string) {
	if g.rnd.Float64() < g.SetRatio {
		k := g.key()
		return resp.EncodeCommandBytes([]byte("SET"), []byte(k), g.value), OpSet, k
	}
	k := g.key()
	return resp.EncodeCommandBytes([]byte("GET"), []byte(k)), OpGet, k
}

// client is the plain closed-loop benchmark connection: send a command,
// wait for the reply, record the latency, immediately send the next. With
// tracking on it negotiates CLIENT TRACKING after the dial and serves
// tracked GETs from the kvbase cache — either with in-band '>' pushes on
// the data connection, or (Env.Invalidation set) with an out-of-band
// subscription to the master's SmartNIC, where the server REDIRECTs
// invalidations by subscriber name.
type client struct {
	kvbase
	env  Env
	addr string

	conn     transport.Conn
	reader   resp.Reader
	inflight []clientReq // FIFO, matches reply order

	// Out-of-band invalidation subscription (redirect mode).
	subConn transport.Conn
	// cacheOn arms local serving: set when the tracked handshake for the
	// current connection (and, in redirect mode, the subscription ack) is
	// up, cleared — with a cache flush — whenever either channel drops and
	// pushes may have been missed.
	cacheOn bool
}

// clientReq is one in-flight request. marker requests are protocol filler
// (the CLIENT TRACKING handshake): their replies are consumed without
// accounting. poisoned GETs raced an invalidation push and must not
// populate the cache — the reply may carry the pre-invalidation value.
type clientReq struct {
	at       sim.Time
	key      string
	get      bool
	poisoned bool
	marker   bool
}

func newClient(name string, env Env, opts Options) *client {
	return &client{kvbase: newKVBase(name, env, opts), env: env, addr: opts.Addrs[0]}
}

// subRetryDelay spaces re-subscription attempts after a push-channel loss.
const subRetryDelay = 20 * sim.Millisecond

// Start dials and begins the closed loop. In redirect mode the data dial
// waits for the subscription ack: the NIC must know the subscriber before
// any interest recorded for it is forwarded, or a push could be dropped
// while the client caches the value it covered.
func (c *client) Start() {
	if c.pipeline <= 0 {
		c.pipeline = 1
	}
	c.running = true
	if c.tracking && c.env.Invalidation != nil {
		c.subscribe()
		return
	}
	c.dialData()
}

func (c *client) subscribe() {
	if !c.running {
		return
	}
	c.stack.Dial(c.env.Invalidation, c.env.InvalidationPort, func(conn transport.Conn, err error) {
		if err != nil {
			panic(fmt.Sprintf("workload: client %s invalidation dial failed: %v", c.name, err))
		}
		c.subConn = conn
		conn.SetHandler(func(data []byte) { c.onSubData(conn, data) })
		conn.SetCloseHandler(func() {
			if c.subConn != conn {
				return
			}
			// The push channel died: invalidations may have been lost, so
			// the cache cannot be trusted until a new subscription is acked.
			c.subConn = nil
			c.cacheOn = false
			c.flushCache()
			c.eng.After(subRetryDelay, func() { c.subscribe() })
		})
		conn.Send(core.EncodeTrackHello(c.name))
	})
}

func (c *client) onSubData(conn transport.Conn, data []byte) {
	if c.subConn != conn {
		return
	}
	ok := core.ParseSubscriberFrames(data, func() {
		c.cacheOn = true
		if c.conn == nil {
			c.dialData()
		}
	}, c.applyInvalidation)
	if !ok {
		panic(fmt.Sprintf("workload: client %s got garbage on the invalidation channel", c.name))
	}
}

// applyInvalidation drops the key and poisons in-flight GETs for it: a
// reply already on the wire may carry the value the push just retired.
func (c *client) applyInvalidation(key string) {
	c.invalidations++
	c.cache.invalidate(key)
	c.poison(key)
}

func (c *client) poison(key string) {
	for i := range c.inflight {
		if c.inflight[i].get && c.inflight[i].key == key {
			c.inflight[i].poisoned = true
		}
	}
}

func (c *client) dialData() {
	c.stack.Dial(c.env.Resolve(c.addr), c.env.Port, func(conn transport.Conn, err error) {
		if err != nil {
			panic(fmt.Sprintf("workload: client %s dial failed: %v", c.name, err))
		}
		c.conn = conn
		conn.SetHandler(func(data []byte) { c.onReply(data) })
		if c.tracking {
			conn.SetCloseHandler(func() {
				if c.conn != conn {
					return
				}
				c.conn = nil
				c.cacheOn = false
				c.flushCache()
			})
			args := []string{"client", "tracking", "on"}
			if c.env.Invalidation != nil {
				args = append(args, "redirect", c.name)
			} else {
				c.cacheOn = true // in-band: pushes share this connection's FIFO
			}
			c.inflight = append(c.inflight, clientReq{marker: true})
			conn.Send(resp.EncodeCommand(args...))
		}
		for i := 0; i < c.pipeline; i++ {
			c.sendNext()
		}
	})
}

func (c *client) Stats() Stats { return c.baseStats() }

func (c *client) sendNext() {
	if !c.running || c.conn == nil {
		return
	}
	cmd, op, key := c.gen.NextKeyed()
	c.proc.Core.Charge(c.params.ClientThinkCPU)
	if c.tracking {
		if op == OpGet && c.cacheOn {
			if _, ok := c.cache.get(key); ok {
				c.localHit(c.eng.Now(), func() { c.sendNext() })
				return
			}
			c.misses++
		}
		if op == OpSet {
			// Read-your-writes: drop our own copy now — the push confirming
			// this write would arrive only after the ack.
			c.cache.invalidate(key)
			c.poison(key)
		}
	}
	c.inflight = append(c.inflight, clientReq{at: c.eng.Now(), key: key, get: op == OpGet})
	c.sent++
	c.conn.Send(cmd)
}

func (c *client) onReply(data []byte) {
	c.reader.Feed(data)
	for {
		v, ok, err := c.reader.ReadValue()
		if err != nil {
			panic(fmt.Sprintf("workload: client %s got protocol garbage: %v", c.name, err))
		}
		if !ok {
			return
		}
		if v.IsPush() {
			if key, isInv := pushedKey(v); isInv {
				c.applyInvalidation(key)
			}
			continue
		}
		if len(c.inflight) > 0 && c.inflight[0].marker {
			c.inflight = c.inflight[1:]
			if v.IsError() {
				panic(fmt.Sprintf("workload: client %s tracking handshake rejected: %s", c.name, v.Str))
			}
			continue
		}
		now := c.eng.Now()
		c.done++
		if v.IsError() {
			c.errReplies++
		}
		if len(c.inflight) > 0 {
			req := c.inflight[0]
			c.inflight = c.inflight[1:]
			if now >= c.warmupUntil {
				c.hist.Record(now.Sub(req.at))
				if c.series != nil {
					c.series.Record(now)
				}
			}
			if req.get && c.cacheOn && !req.poisoned && v.Type == resp.TypeBulk && !v.Null {
				c.cache.put(req.key, v.Str)
			}
		}
		c.sendNext()
	}
}
