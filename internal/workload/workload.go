// Package workload implements the benchmark load generators: the
// redis-benchmark-equivalent closed-loop clients the paper's evaluation
// uses ("each client issues queries as quickly as possible"), plus key and
// value generators with uniform or Zipfian key popularity.
package workload

import (
	"fmt"
	"math/rand"

	"skv/internal/fabric"
	"skv/internal/model"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/stats"
	"skv/internal/transport"
)

// Op is the command a generator emits.
type Op int

// Operation kinds.
const (
	OpSet Op = iota
	OpGet
)

// Generator produces commands for one client.
type Generator struct {
	rnd *rand.Rand
	// KeySpace is the number of distinct keys.
	KeySpace int
	// ValueSize is the SET payload size in bytes.
	ValueSize int
	// SetRatio is the fraction of SETs (1.0 = pure SET, 0.0 = pure GET).
	SetRatio float64
	// Zipf enables a Zipfian key distribution instead of uniform.
	Zipf bool

	zipf  *rand.Zipf
	value []byte
}

// DefaultZipfS is the Zipfian skew exponent used when none is given — the
// value the evaluation has always used.
const DefaultZipfS = 1.1

// NewGenerator creates a generator with deterministic randomness and the
// default Zipfian skew.
func NewGenerator(seed int64, keySpace, valueSize int, setRatio float64, zipfian bool) *Generator {
	return NewGeneratorSkew(seed, keySpace, valueSize, setRatio, zipfian, DefaultZipfS)
}

// NewGeneratorSkew is NewGenerator with an explicit Zipfian skew exponent s
// (must be > 1; ignored for uniform distributions). The same seed and
// s = DefaultZipfS reproduce NewGenerator's stream bit-for-bit.
func NewGeneratorSkew(seed int64, keySpace, valueSize int, setRatio float64, zipfian bool, s float64) *Generator {
	rnd := rand.New(rand.NewSource(seed))
	g := &Generator{
		rnd:       rnd,
		KeySpace:  keySpace,
		ValueSize: valueSize,
		SetRatio:  setRatio,
		Zipf:      zipfian,
	}
	if zipfian {
		g.zipf = rand.NewZipf(rnd, s, 1, uint64(keySpace-1))
	}
	g.value = make([]byte, valueSize)
	for i := range g.value {
		g.value[i] = 'a' + byte(i%26)
	}
	return g
}

func (g *Generator) key() string {
	var k uint64
	if g.Zipf {
		k = g.zipf.Uint64()
	} else {
		k = uint64(g.rnd.Intn(g.KeySpace))
	}
	return fmt.Sprintf("key:%010d", k)
}

// Next produces the next encoded command and its kind.
func (g *Generator) Next() ([]byte, Op) {
	cmd, op, _ := g.NextKeyed()
	return cmd, op
}

// NextKeyed is Next plus the key the command targets, for routing layers
// (slot-aware clients) that must know where a command goes. It draws from
// the same RNG stream as Next — interleaving the two is safe.
func (g *Generator) NextKeyed() ([]byte, Op, string) {
	if g.rnd.Float64() < g.SetRatio {
		k := g.key()
		return resp.EncodeCommandBytes([]byte("SET"), []byte(k), g.value), OpSet, k
	}
	k := g.key()
	return resp.EncodeCommandBytes([]byte("GET"), []byte(k)), OpGet, k
}

// Client is one closed-loop benchmark connection: send a command, wait for
// the reply, record the latency, immediately send the next.
type Client struct {
	Name string

	eng    *sim.Engine
	params *model.Params
	proc   *sim.Proc
	stack  transport.Stack
	gen    *Generator

	conn    transport.Conn
	reader  resp.Reader
	sentAt  []sim.Time // FIFO of in-flight send times (pipelining)
	running bool

	// Pipeline is the number of requests kept in flight (redis-benchmark
	// -P). 1 = classic closed loop.
	Pipeline int

	// WarmupUntil discards samples recorded before this virtual time.
	WarmupUntil sim.Time
	// Hist records request latencies (after warm-up).
	Hist *stats.Histogram
	// Series, when non-nil, counts completions over time (Fig 14).
	Series *stats.TimeSeries

	// Sent and Done count all requests, ErrReplies the error replies
	// (min-slaves violations surface here).
	Sent       uint64
	Done       uint64
	ErrReplies uint64
}

// NewClient builds a closed-loop client on its own core. makeStack
// abstracts the transport choice (TCP vs RDMA).
func NewClient(name string, eng *sim.Engine, params *model.Params, ep *fabric.Endpoint,
	makeStack func(*fabric.Endpoint, *sim.Proc) transport.Stack, gen *Generator, wakeup sim.Duration) *Client {
	core := sim.NewCore(eng, name+"-core", params.HostCoreSpeed)
	proc := sim.NewProc(eng, core, wakeup)
	return &Client{
		Name:   name,
		eng:    eng,
		params: params,
		proc:   proc,
		stack:  makeStack(ep, proc),
		gen:    gen,
		Hist:   stats.NewHistogram(),
	}
}

// Connect dials the server and starts the closed loop once connected.
func (c *Client) Connect(server *fabric.Endpoint, port int) {
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	c.stack.Dial(server, port, func(conn transport.Conn, err error) {
		if err != nil {
			panic(fmt.Sprintf("workload: client %s dial failed: %v", c.Name, err))
		}
		c.conn = conn
		conn.SetHandler(func(data []byte) { c.onReply(data) })
		c.running = true
		for i := 0; i < c.Pipeline; i++ {
			c.sendNext()
		}
	})
}

// Stop ends the loop after the in-flight request completes.
func (c *Client) Stop() { c.running = false }

func (c *Client) sendNext() {
	if !c.running {
		return
	}
	cmd, _ := c.gen.Next()
	c.proc.Core.Charge(c.params.ClientThinkCPU)
	c.sentAt = append(c.sentAt, c.eng.Now())
	c.Sent++
	c.conn.Send(cmd)
}

func (c *Client) onReply(data []byte) {
	c.reader.Feed(data)
	for {
		v, ok, err := c.reader.ReadValue()
		if err != nil {
			panic(fmt.Sprintf("workload: client %s got protocol garbage: %v", c.Name, err))
		}
		if !ok {
			return
		}
		now := c.eng.Now()
		c.Done++
		if v.IsError() {
			c.ErrReplies++
		}
		if len(c.sentAt) > 0 {
			if now >= c.WarmupUntil {
				c.Hist.Record(now.Sub(c.sentAt[0]))
				if c.Series != nil {
					c.Series.Record(now)
				}
			}
			c.sentAt = c.sentAt[1:]
		}
		c.sendNext()
	}
}
