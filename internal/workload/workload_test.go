package workload

import (
	"bytes"
	"strings"
	"testing"

	"skv/internal/fabric"
	"skv/internal/model"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/tcpsim"
	"skv/internal/transport"
)

func TestGeneratorPureSet(t *testing.T) {
	g := NewGenerator(1, 1000, 64, 1.0, false)
	for i := 0; i < 100; i++ {
		cmd, op := g.Next()
		if op != OpSet {
			t.Fatal("pure-SET generator emitted a GET")
		}
		var r resp.Reader
		r.Feed(cmd)
		argv, ok, err := r.ReadCommand()
		if err != nil || !ok || len(argv) != 3 {
			t.Fatalf("bad command: %q", cmd)
		}
		if string(argv[0]) != "SET" || len(argv[2]) != 64 {
			t.Fatalf("argv %q value len %d", argv[0], len(argv[2]))
		}
		if !strings.HasPrefix(string(argv[1]), "key:") {
			t.Fatalf("key %q", argv[1])
		}
	}
}

func TestGeneratorPureGet(t *testing.T) {
	g := NewGenerator(2, 1000, 64, 0.0, false)
	for i := 0; i < 100; i++ {
		cmd, op := g.Next()
		if op != OpGet {
			t.Fatal("pure-GET generator emitted a SET")
		}
		if !bytes.Contains(cmd, []byte("GET")) {
			t.Fatalf("command %q", cmd)
		}
	}
}

func TestGeneratorMixedRatio(t *testing.T) {
	g := NewGenerator(3, 1000, 8, 0.3, false)
	sets := 0
	const n = 5000
	for i := 0; i < n; i++ {
		if _, op := g.Next(); op == OpSet {
			sets++
		}
	}
	ratio := float64(sets) / n
	if ratio < 0.27 || ratio > 0.33 {
		t.Fatalf("SET ratio %.3f, want ≈0.30", ratio)
	}
}

func TestGeneratorKeySpaceBounded(t *testing.T) {
	g := NewGenerator(4, 10, 8, 1.0, false)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		cmd, _ := g.Next()
		var r resp.Reader
		r.Feed(cmd)
		argv, _, _ := r.ReadCommand()
		seen[string(argv[1])] = true
	}
	if len(seen) > 10 {
		t.Fatalf("keyspace 10 produced %d distinct keys", len(seen))
	}
	if len(seen) < 8 {
		t.Fatalf("uniform generator covered only %d/10 keys", len(seen))
	}
}

func TestGeneratorZipfSkew(t *testing.T) {
	g := NewGenerator(5, 10_000, 8, 1.0, true)
	counts := map[string]int{}
	const n = 20_000
	for i := 0; i < n; i++ {
		cmd, _ := g.Next()
		var r resp.Reader
		r.Feed(cmd)
		argv, _, _ := r.ReadCommand()
		counts[string(argv[1])]++
	}
	// Zipf: the hottest key should take a large share; uniform would give
	// each key ≈2 hits.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < n/20 {
		t.Fatalf("hottest key hit %d/%d times; not Zipfian", max, n)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	a := NewGenerator(7, 100, 16, 0.5, true)
	b := NewGenerator(7, 100, 16, 0.5, true)
	for i := 0; i < 200; i++ {
		ca, oa := a.Next()
		cb, ob := b.Next()
		if oa != ob || !bytes.Equal(ca, cb) {
			t.Fatal("same-seed generators diverged")
		}
	}
}

// TestClientClosedLoop runs a client against a scripted echo server in the
// simulation and checks the closed-loop accounting.
func TestClientClosedLoop(t *testing.T) {
	eng := sim.New(9)
	p := model.Default()
	net := fabric.New(eng, &p)
	srvM := net.NewMachine("srv", false)
	cliM := net.NewMachine("cli", false)

	// A trivial server replying +OK to every command.
	srvCore := sim.NewCore(eng, "srv", 1.0)
	srvProc := sim.NewProc(eng, srvCore, p.TCPWakeup)
	srvStack := tcpsim.New(net, srvM.Host, srvProc)
	srvStack.Listen(6379, func(conn transport.Conn) {
		var r resp.Reader
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			for {
				_, ok, err := r.ReadCommand()
				if err != nil || !ok {
					return
				}
				conn.Send(resp.AppendSimple(nil, "OK"))
			}
		})
	})

	gen := NewGenerator(11, 100, 32, 1.0, false)
	mk := func(ep *fabric.Endpoint, proc *sim.Proc) transport.Stack {
		return tcpsim.New(net, ep, proc)
	}
	cl := New("c0", Env{Eng: eng, Params: &p, EP: cliM.Host, MakeStack: mk, Gen: gen,
		Wakeup: p.ClientWakeup, Port: 6379,
		Resolve: func(string) *fabric.Endpoint { return srvM.Host }},
		Options{Addrs: []string{srvM.Host.Name()}})
	cl.Start()
	eng.Run(sim.Time(100 * sim.Millisecond))
	cl.Stop()
	eng.Run(sim.Time(110 * sim.Millisecond))

	st := cl.Stats()
	if st.Done < 1000 {
		t.Fatalf("closed loop completed only %d ops in 100ms", st.Done)
	}
	if st.Sent != st.Done && st.Sent != st.Done+1 {
		t.Fatalf("closed-loop accounting: sent=%d done=%d", st.Sent, st.Done)
	}
	if cl.Histogram().Count() == 0 {
		t.Fatal("no latencies recorded")
	}
	if st.ErrReplies != 0 {
		t.Fatalf("unexpected error replies: %d", st.ErrReplies)
	}
	if mean := cl.Histogram().Mean(); mean <= 0 || mean > sim.Duration(sim.Millisecond) {
		t.Fatalf("implausible mean latency %v", mean)
	}
}

func TestClientWarmupDiscardsSamples(t *testing.T) {
	eng := sim.New(10)
	p := model.Default()
	net := fabric.New(eng, &p)
	srvM := net.NewMachine("srv", false)
	cliM := net.NewMachine("cli", false)
	srvProc := sim.NewProc(eng, sim.NewCore(eng, "srv", 1.0), p.TCPWakeup)
	srvStack := tcpsim.New(net, srvM.Host, srvProc)
	srvStack.Listen(6379, func(conn transport.Conn) {
		conn.SetHandler(func(data []byte) { conn.Send(resp.AppendSimple(nil, "OK")) })
	})
	gen := NewGenerator(11, 100, 8, 1.0, false)
	mk := func(ep *fabric.Endpoint, proc *sim.Proc) transport.Stack {
		return tcpsim.New(net, ep, proc)
	}
	cl := New("c0", Env{Eng: eng, Params: &p, EP: cliM.Host, MakeStack: mk, Gen: gen,
		Wakeup: p.ClientWakeup, Port: 6379,
		Resolve: func(string) *fabric.Endpoint { return srvM.Host }},
		Options{Addrs: []string{srvM.Host.Name()}})
	cl.SetWarmup(sim.Time(50 * sim.Millisecond))
	cl.Start()
	eng.Run(sim.Time(100 * sim.Millisecond))
	if cl.Histogram().Count() >= cl.Stats().Done {
		t.Fatalf("warm-up did not discard: hist=%d done=%d", cl.Histogram().Count(), cl.Stats().Done)
	}
	if cl.Histogram().Count() == 0 {
		t.Fatal("no post-warmup samples")
	}
}

func TestClientPipelining(t *testing.T) {
	eng := sim.New(12)
	p := model.Default()
	net := fabric.New(eng, &p)
	srvM := net.NewMachine("srv", false)
	cliM := net.NewMachine("cli", false)
	srvProc := sim.NewProc(eng, sim.NewCore(eng, "srv", 1.0), p.TCPWakeup)
	srvStack := tcpsim.New(net, srvM.Host, srvProc)
	srvStack.Listen(6379, func(conn transport.Conn) {
		var r resp.Reader
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			for {
				_, ok, err := r.ReadCommand()
				if err != nil || !ok {
					return
				}
				conn.Send(resp.AppendSimple(nil, "OK"))
			}
		})
	})
	mk := func(ep *fabric.Endpoint, proc *sim.Proc) transport.Stack {
		return tcpsim.New(net, ep, proc)
	}
	resolve := func(string) *fabric.Endpoint { return srvM.Host }
	run := func(depth int) uint64 {
		gen := NewGenerator(13, 100, 16, 1.0, false)
		cl := New("p", Env{Eng: eng, Params: &p, EP: cliM.Host, MakeStack: mk, Gen: gen,
			Wakeup: p.ClientWakeup, Port: 6379, Resolve: resolve},
			Options{Addrs: []string{srvM.Host.Name()}, Pipeline: depth})
		cl.Start()
		start := eng.Now()
		eng.Run(start.Add(50 * sim.Millisecond))
		cl.Stop()
		eng.Run(eng.Now().Add(10 * sim.Millisecond))
		return cl.Stats().Done
	}
	// Separate machines per run would be cleaner but one sequential reuse
	// is fine: measure depth-1 then depth-8 on fresh clients.
	d1 := run(1)
	cliM2 := net.NewMachine("cli2", false)
	mk2 := func(ep *fabric.Endpoint, proc *sim.Proc) transport.Stack {
		return tcpsim.New(net, ep, proc)
	}
	gen := NewGenerator(14, 100, 16, 1.0, false)
	cl := New("p8", Env{Eng: eng, Params: &p, EP: cliM2.Host, MakeStack: mk2, Gen: gen,
		Wakeup: p.ClientWakeup, Port: 6379, Resolve: resolve},
		Options{Addrs: []string{srvM.Host.Name()}, Pipeline: 8})
	cl.Start()
	start := eng.Now()
	eng.Run(start.Add(50 * sim.Millisecond))
	cl.Stop()
	eng.Run(eng.Now().Add(10 * sim.Millisecond))
	d8 := cl.Stats().Done
	if d8 <= d1 {
		t.Fatalf("pipelining did not help: depth1=%d depth8=%d", d1, d8)
	}
	if cl.Histogram().Count() == 0 {
		t.Fatal("no latencies recorded under pipelining")
	}
}
