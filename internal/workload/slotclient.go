package workload

import (
	"fmt"
	"strings"

	"skv/internal/fabric"
	"skv/internal/model"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/slots"
	"skv/internal/stats"
	"skv/internal/transport"
)

// SlotClient is the cluster-mode benchmark client: slot-aware closed loops.
// It keeps a client-side copy of the hash-slot map, routes every command to
// the group that owns its key's slot over one connection per group, and
// repairs its map when a server answers MOVED (refreshing from the
// authoritative table, standing in for a CLUSTER SLOTS round trip).
//
// The closed-loop window is PER GROUP, not global: each group gets its own
// Pipeline-deep window, refilled only by completions of requests targeting
// that group (as cluster benchmarks keep one pipeline per node connection).
// A shared window would let a single dead group absorb every in-flight slot
// and starve the healthy groups — exactly the blast radius the hash-slot
// design exists to prevent. Refills draw from the shared generator and
// discard keys owned by other groups (rejection sampling), so the key
// distribution is preserved while the loops stay independent. Connection
// loss, dial timeouts, and a stall watchdog re-route the affected in-flight
// requests after a short back-off.
type SlotClient struct {
	Name string

	eng    *sim.Engine
	params *model.Params
	proc   *sim.Proc
	stack  transport.Stack
	gen    *Generator

	// table is the deployment's authoritative slot map; refreshes copy from
	// it (the simulation's stand-in for asking any node CLUSTER SLOTS).
	table *slots.Map
	// resolve maps a slot-map address (an endpoint name) to its endpoint.
	resolve func(addr string) *fabric.Endpoint
	port    int

	// Client-side view of the slot map. Bootstrapped deliberately stale —
	// epoch 0, every slot owned by group 0, only the seed address known —
	// exactly like a real cluster client that learns the topology through
	// MOVED redirects from its seed node.
	epoch uint64
	owner []uint16
	addrs []string

	conns   map[int]*slotConn
	running bool

	// Pipeline is the number of requests kept in flight (redis-benchmark
	// -P). 1 = classic closed loop.
	Pipeline int
	// DialTimeout bounds a dial whose handshake was swallowed by a downed
	// endpoint; RetryDelay spaces reconnect attempts after a failure.
	DialTimeout sim.Duration
	RetryDelay  sim.Duration
	// RequestTimeout is the stall watchdog: a connection with in-flight
	// requests and no traffic for this long is torn down and its requests
	// re-routed. This is what detects a wedged master — the process keeps
	// its endpoints up and just goes silent, so no close event ever comes.
	RequestTimeout sim.Duration

	// WarmupUntil discards samples recorded before this virtual time.
	WarmupUntil sim.Time
	// Hist records request latencies (after warm-up).
	Hist *stats.Histogram
	// Series, when non-nil, counts completions over time.
	Series *stats.TimeSeries

	// Sent and Done count all requests, ErrReplies the non-redirect error
	// replies. Moved counts MOVED redirects (each also triggers a map
	// refresh unless the view is already current), Asked the ASK redirects
	// (one-shot retries that deliberately do NOT refresh the map — the
	// migration window is transient and the source still owns the slot),
	// TryAgain the TRYAGAIN replies retried after a back-off, MapRefreshes
	// the copies taken from the authoritative table, Redials the reconnect
	// attempts after a close or dial failure.
	Sent         uint64
	Done         uint64
	ErrReplies   uint64
	Moved        uint64
	Asked        uint64
	TryAgain     uint64
	MapRefreshes uint64
	Redials      uint64
	// GroupDone / GroupErrs break completions and error replies down by the
	// group that served them (per-slot availability during failover).
	GroupDone []uint64
	GroupErrs []uint64
}

// askingCmd is the one-shot admission prefix sent before an ASK retry.
var askingCmd = resp.EncodeCommand("ASKING")

// slotConn is one connection to one replication group's current address.
type slotConn struct {
	group    int
	addr     string
	conn     transport.Conn
	reader   resp.Reader
	inflight []slotReq // FIFO, matches reply order
	queue    []slotReq // parked while the dial is outstanding
	// lastActivity is the last send or receive, for the stall watchdog.
	lastActivity sim.Time
}

// slotReq is one routed request; sentAt is the first-issue time so redirect
// and retry hops count toward the recorded latency. target is the group
// whose window the request occupies (its authoritative slot owner at
// generation time) — completion refills that window, wherever the reply
// actually came from. marker requests are protocol filler (the ASKING that
// precedes an ASK retry): their replies are consumed without accounting,
// and they are dropped — not re-dispatched — when a connection is recovered
// (the paired data request re-routes by slot and earns a fresh ASK if the
// migration is still open).
type slotReq struct {
	cmd    []byte
	key    string
	target int
	sentAt sim.Time
	marker bool
}

// NewSlotClient builds a slot-aware closed-loop client on its own core.
func NewSlotClient(name string, eng *sim.Engine, params *model.Params, ep *fabric.Endpoint,
	makeStack func(*fabric.Endpoint, *sim.Proc) transport.Stack, gen *Generator,
	wakeup sim.Duration, table *slots.Map, resolve func(addr string) *fabric.Endpoint, port int) *SlotClient {
	core := sim.NewCore(eng, name+"-core", params.HostCoreSpeed)
	proc := sim.NewProc(eng, core, wakeup)
	c := &SlotClient{
		Name:    name,
		eng:     eng,
		params:  params,
		proc:    proc,
		stack:   makeStack(ep, proc),
		gen:     gen,
		table:   table,
		resolve: resolve,
		port:    port,
		owner:   make([]uint16, slots.NumSlots),
		addrs:   make([]string, table.Groups()),
		conns:   make(map[int]*slotConn),
		Hist:    stats.NewHistogram(),
	}
	c.addrs[0] = table.Addr(0) // seed node
	c.GroupDone = make([]uint64, table.Groups())
	c.GroupErrs = make([]uint64, table.Groups())
	return c
}

// Start begins the per-group closed loops (dialing lazily as routes are
// needed). Groups that own no slots get no window.
func (c *SlotClient) Start() {
	if c.Pipeline <= 0 {
		c.Pipeline = 1
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 250 * sim.Millisecond
	}
	if c.RetryDelay <= 0 {
		c.RetryDelay = 20 * sim.Millisecond
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 250 * sim.Millisecond
	}
	c.eng.Every(c.RequestTimeout, c.checkStalls)
	c.running = true
	for g := 0; g < c.table.Groups(); g++ {
		for i := 0; i < c.Pipeline; i++ {
			c.sendNextFor(g)
		}
	}
}

// checkStalls tears down connections whose in-flight requests have seen no
// traffic for RequestTimeout. Groups are scanned in index order — never by
// map iteration — so recovery ordering is deterministic across runs.
func (c *SlotClient) checkStalls() {
	now := c.eng.Now()
	for g := 0; g < len(c.addrs); g++ {
		sc := c.conns[g]
		if sc == nil || sc.conn == nil || len(sc.inflight) == 0 {
			continue
		}
		if now.Sub(sc.lastActivity) >= c.RequestTimeout {
			c.recoverReqs(sc)
		}
	}
}

// Stop ends the loop after the in-flight requests complete.
func (c *SlotClient) Stop() { c.running = false }

// sendNextFor refills target group tg's window with the next generated
// command whose key tg owns (draws for other groups are discarded — their
// own loops will produce equivalent draws). Ownership is read from the
// authoritative table: generation is workload synthesis, not routing — the
// possibly-stale client view only decides where the request is SENT.
func (c *SlotClient) sendNextFor(tg int) {
	if !c.running || c.table.Count(tg) == 0 {
		return
	}
	for {
		cmd, _, key := c.gen.NextKeyed()
		c.proc.Core.Charge(c.params.ClientThinkCPU)
		if c.table.Owner(slots.Slot([]byte(key))) != tg {
			continue
		}
		c.Sent++
		c.dispatch(slotReq{cmd: cmd, key: key, target: tg, sentAt: c.eng.Now()})
		return
	}
}

// dispatch routes one request by its key's slot under the current view.
func (c *SlotClient) dispatch(r slotReq) {
	c.sendTo(int(c.owner[slots.Slot([]byte(r.key))]), r)
}

// sendTo queues one request on group g's connection, dialing if needed.
// dispatch computes g from the slot map; the ASK path forces it.
func (c *SlotClient) sendTo(g int, r slotReq) {
	sc := c.conns[g]
	if sc == nil {
		sc = &slotConn{group: g, addr: c.addrs[g]}
		c.conns[g] = sc
		sc.queue = append(sc.queue, r)
		c.dial(sc)
		return
	}
	if sc.conn == nil {
		sc.queue = append(sc.queue, r) // dial outstanding
		return
	}
	sc.inflight = append(sc.inflight, r)
	sc.lastActivity = c.eng.Now()
	sc.conn.Send(r.cmd)
}

func (c *SlotClient) dial(sc *slotConn) {
	c.Redials++
	c.eng.After(c.DialTimeout, func() {
		if c.conns[sc.group] == sc && sc.conn == nil {
			// Handshake swallowed by a dead endpoint: give up on this
			// attempt and re-route its requests.
			c.recoverReqs(sc)
		}
	})
	c.stack.Dial(c.resolve(sc.addr), c.port, func(conn transport.Conn, err error) {
		if c.conns[sc.group] != sc || sc.conn != nil {
			if err == nil {
				conn.Close() // superseded
			}
			return
		}
		if err != nil {
			c.recoverReqs(sc)
			return
		}
		sc.conn = conn
		conn.SetHandler(func(data []byte) { c.onReply(sc, conn, data) })
		conn.SetCloseHandler(func() {
			if c.conns[sc.group] == sc && sc.conn == conn {
				sc.conn = nil
				c.recoverReqs(sc)
			}
		})
		q := sc.queue
		sc.queue = nil
		sc.lastActivity = c.eng.Now()
		for _, r := range q {
			sc.inflight = append(sc.inflight, r)
			conn.Send(r.cmd)
		}
	})
}

// recoverReqs retires a broken connection and re-dispatches everything it
// carried after RetryDelay, refreshing the slot map first (the group's
// address may have moved to a promoted slave in the meantime).
func (c *SlotClient) recoverReqs(sc *slotConn) {
	if c.conns[sc.group] != sc {
		return
	}
	delete(c.conns, sc.group)
	reqs := append(sc.inflight, sc.queue...)
	sc.inflight, sc.queue = nil, nil
	if sc.conn != nil {
		conn := sc.conn
		sc.conn = nil
		conn.Close()
	}
	c.eng.After(c.RetryDelay, func() {
		c.refreshMap()
		for _, r := range reqs {
			if r.marker {
				continue // ASKING filler: its data request re-routes alone
			}
			c.dispatch(r)
		}
	})
}

// askRetry performs the one-shot ASK protocol: send ASKING then the same
// request to the redirect's address. Unlike MOVED this must NOT refresh the
// slot map — the source still owns the slot until the migration finishes,
// and adopting the target early would bounce every other key in the slot.
// The address is resolved to a group through the authoritative table (the
// simulation's stand-in for a real client keying connections by address).
func (c *SlotClient) askRetry(addr string, req slotReq) bool {
	g := -1
	for i := 0; i < c.table.Groups(); i++ {
		if c.table.Addr(i) == addr {
			g = i
			break
		}
	}
	if g < 0 {
		return false // address not in the deployment: caller falls back
	}
	if c.addrs[g] != addr {
		// Our view has a stale (or unlearned) address for this group; an
		// ASK names the live endpoint, so adopt it. Any connection to the
		// old address is retired and its requests re-route normally.
		if sc := c.conns[g]; sc != nil && sc.addr != addr {
			c.recoverReqs(sc)
		}
		c.addrs[g] = addr
	}
	c.sendTo(g, slotReq{cmd: askingCmd, marker: true})
	c.sendTo(g, req)
	return true
}

// refreshMap copies the authoritative table if it is newer than our view,
// then retires connections whose group address changed.
func (c *SlotClient) refreshMap() {
	if c.epoch == c.table.Epoch() {
		return
	}
	c.proc.Core.Charge(c.params.ClientThinkCPU)
	c.epoch = c.table.CopyInto(c.owner, c.addrs)
	c.MapRefreshes++
	for g := 0; g < len(c.addrs); g++ { // index order: deterministic
		if sc := c.conns[g]; sc != nil && sc.addr != c.addrs[g] {
			c.recoverReqs(sc)
		}
	}
}

func (c *SlotClient) onReply(sc *slotConn, conn transport.Conn, data []byte) {
	if c.conns[sc.group] != sc || sc.conn != conn {
		return
	}
	sc.lastActivity = c.eng.Now()
	sc.reader.Feed(data)
	for {
		v, ok, err := sc.reader.ReadValue()
		if err != nil {
			panic(fmt.Sprintf("workload: slot client %s got protocol garbage: %v", c.Name, err))
		}
		if !ok {
			return
		}
		if len(sc.inflight) == 0 {
			continue // reply for a request already re-routed elsewhere
		}
		req := sc.inflight[0]
		sc.inflight = sc.inflight[1:]
		if req.marker {
			continue // +OK for an ASKING prefix: no accounting, no refill
		}
		if v.IsError() {
			msg := string(v.Str)
			kind, _, addr, _ := slots.ParseRedirectKind(msg)
			switch kind {
			case slots.RedirectMoved:
				// Stale view: repair the map and re-issue the same request
				// (sentAt preserved — the extra hop is real latency).
				c.Moved++
				c.refreshMap()
				c.dispatch(req)
				continue
			case slots.RedirectAsk:
				c.Asked++
				if c.askRetry(addr, req) {
					continue
				}
				// Unknown address (should not happen in a converged
				// deployment): fall back to a map refresh and re-route.
				c.refreshMap()
				c.dispatch(req)
				continue
			}
			if strings.HasPrefix(msg, "TRYAGAIN") {
				// Half-migrated multi-key window: back off and retry the
				// same request (sentAt preserved).
				c.TryAgain++
				c.eng.After(c.RetryDelay, func() { c.dispatch(req) })
				continue
			}
			c.ErrReplies++
			c.GroupErrs[sc.group]++
		}
		now := c.eng.Now()
		c.Done++
		c.GroupDone[sc.group]++
		if now >= c.WarmupUntil {
			c.Hist.Record(now.Sub(req.sentAt))
			if c.Series != nil {
				c.Series.Record(now)
			}
		}
		c.sendNextFor(req.target)
	}
}
