package workload

import (
	"fmt"
	"strings"

	"skv/internal/fabric"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/slots"
	"skv/internal/transport"
)

// slotClient is the cluster-mode benchmark client: slot-aware closed loops.
// It keeps a client-side copy of the hash-slot map, routes every command to
// the group that owns its key's slot over one connection per group, and
// repairs its map when a server answers MOVED (refreshing from the
// authoritative table, standing in for a CLUSTER SLOTS round trip).
//
// The closed-loop window is PER GROUP, not global: each group gets its own
// Pipeline-deep window, refilled only by completions of requests targeting
// that group (as cluster benchmarks keep one pipeline per node connection).
// A shared window would let a single dead group absorb every in-flight slot
// and starve the healthy groups — exactly the blast radius the hash-slot
// design exists to prevent. Refills draw from the shared generator and
// discard keys owned by other groups (rejection sampling), so the key
// distribution is preserved while the loops stay independent. Connection
// loss, dial timeouts, and a stall watchdog re-route the affected in-flight
// requests after a short back-off.
//
// With tracking on, every connection negotiates CLIENT TRACKING right
// after its dial — in-band mode only: invalidations arrive as '>' pushes
// on the data connections, FIFO with the replies of the node that recorded
// the interest. The cache is flushed whenever a connection is recovered or
// the slot map is refreshed (pushes may have been missed / interest may
// now live on a node we no longer talk to), and single keys are dropped on
// MOVED/ASK redirects and on the client's own writes.
type slotClient struct {
	kvbase

	// table is the deployment's authoritative slot map; refreshes copy from
	// it (the simulation's stand-in for asking any node CLUSTER SLOTS).
	table *slots.Map
	// resolve maps a slot-map address (an endpoint name) to its endpoint.
	resolve func(addr string) *fabric.Endpoint
	port    int

	// Client-side view of the slot map. Bootstrapped deliberately stale —
	// epoch 0, every slot owned by group 0, only the seed address known —
	// exactly like a real cluster client that learns the topology through
	// MOVED redirects from its seed node.
	epoch uint64
	owner []uint16
	addrs []string

	conns map[int]*slotConn

	// dialTimeout bounds a dial whose handshake was swallowed by a downed
	// endpoint; retryDelay spaces reconnect attempts after a failure.
	// requestTimeout is the stall watchdog: a connection with in-flight
	// requests and no traffic for this long is torn down and its requests
	// re-routed. This is what detects a wedged master — the process keeps
	// its endpoints up and just goes silent, so no close event ever comes.
	dialTimeout    sim.Duration
	retryDelay     sim.Duration
	requestTimeout sim.Duration

	// moved counts MOVED redirects (each also triggers a map refresh unless
	// the view is already current), asked the ASK redirects (one-shot
	// retries that deliberately do NOT refresh the map — the migration
	// window is transient and the source still owns the slot), tryAgain the
	// TRYAGAIN replies retried after a back-off, mapRefreshes the copies
	// taken from the authoritative table, redials the reconnect attempts
	// after a close or dial failure.
	moved        uint64
	asked        uint64
	tryAgain     uint64
	mapRefreshes uint64
	redials      uint64
	// groupDone / groupErrs break completions and error replies down by the
	// group that served them (per-slot availability during failover).
	groupDone []uint64
	groupErrs []uint64
}

// askingCmd is the one-shot admission prefix sent before an ASK retry;
// trackOnCmd is the per-connection tracking handshake.
var (
	askingCmd  = resp.EncodeCommand("ASKING")
	trackOnCmd = resp.EncodeCommand("client", "tracking", "on")
)

// slotConn is one connection to one replication group's current address.
type slotConn struct {
	group    int
	addr     string
	conn     transport.Conn
	reader   resp.Reader
	inflight []slotReq // FIFO, matches reply order
	queue    []slotReq // parked while the dial is outstanding
	// lastActivity is the last send or receive, for the stall watchdog.
	lastActivity sim.Time
}

// slotReq is one routed request; sentAt is the first-issue time so redirect
// and retry hops count toward the recorded latency. target is the group
// whose window the request occupies (its authoritative slot owner at
// generation time) — completion refills that window, wherever the reply
// actually came from. marker requests are protocol filler (the ASKING that
// precedes an ASK retry, the tracking handshake): their replies are
// consumed without accounting, and they are dropped — not re-dispatched —
// when a connection is recovered (the paired data request re-routes by
// slot and earns a fresh ASK if the migration is still open). poisoned
// GETs raced an invalidation push and must not populate the cache.
type slotReq struct {
	cmd      []byte
	key      string
	target   int
	sentAt   sim.Time
	get      bool
	marker   bool
	poisoned bool
}

// newSlotClient builds a slot-aware closed-loop client on its own core.
func newSlotClient(name string, env Env, opts Options) *slotClient {
	c := &slotClient{
		kvbase:  newKVBase(name, env, opts),
		table:   env.Table,
		resolve: env.Resolve,
		port:    env.Port,
		owner:   make([]uint16, slots.NumSlots),
		addrs:   make([]string, env.Table.Groups()),
		conns:   make(map[int]*slotConn),
	}
	c.addrs[0] = env.Table.Addr(0) // seed node
	c.groupDone = make([]uint64, env.Table.Groups())
	c.groupErrs = make([]uint64, env.Table.Groups())
	return c
}

func (c *slotClient) Stats() Stats {
	st := c.baseStats()
	st.Moved, st.Asked, st.TryAgain = c.moved, c.asked, c.tryAgain
	st.MapRefreshes, st.Redials = c.mapRefreshes, c.redials
	st.GroupDone = append([]uint64(nil), c.groupDone...)
	st.GroupErrs = append([]uint64(nil), c.groupErrs...)
	return st
}

// Start begins the per-group closed loops (dialing lazily as routes are
// needed). Groups that own no slots get no window.
func (c *slotClient) Start() {
	if c.pipeline <= 0 {
		c.pipeline = 1
	}
	if c.dialTimeout <= 0 {
		c.dialTimeout = 250 * sim.Millisecond
	}
	if c.retryDelay <= 0 {
		c.retryDelay = 20 * sim.Millisecond
	}
	if c.requestTimeout <= 0 {
		c.requestTimeout = 250 * sim.Millisecond
	}
	c.eng.Every(c.requestTimeout, c.checkStalls)
	c.running = true
	for g := 0; g < c.table.Groups(); g++ {
		for i := 0; i < c.pipeline; i++ {
			c.sendNextFor(g)
		}
	}
}

// checkStalls tears down connections whose in-flight requests have seen no
// traffic for requestTimeout. Groups are scanned in index order — never by
// map iteration — so recovery ordering is deterministic across runs.
func (c *slotClient) checkStalls() {
	now := c.eng.Now()
	for g := 0; g < len(c.addrs); g++ {
		sc := c.conns[g]
		if sc == nil || sc.conn == nil || len(sc.inflight) == 0 {
			continue
		}
		if now.Sub(sc.lastActivity) >= c.requestTimeout {
			c.recoverReqs(sc)
		}
	}
}

// sendNextFor refills target group tg's window with the next generated
// command whose key tg owns (draws for other groups are discarded — their
// own loops will produce equivalent draws). Ownership is read from the
// authoritative table: generation is workload synthesis, not routing — the
// possibly-stale client view only decides where the request is SENT.
func (c *slotClient) sendNextFor(tg int) {
	if !c.running || c.table.Count(tg) == 0 {
		return
	}
	for {
		cmd, op, key := c.gen.NextKeyed()
		c.proc.Core.Charge(c.params.ClientThinkCPU)
		if c.table.Owner(slots.Slot([]byte(key))) != tg {
			continue
		}
		if c.tracking {
			if op == OpGet {
				if _, ok := c.cache.get(key); ok {
					c.localHit(c.eng.Now(), func() { c.sendNextFor(tg) })
					return
				}
				c.misses++
			} else if op == OpSet {
				// Read-your-writes: drop our own copy now — the push
				// confirming this write would arrive only after the ack.
				c.cache.invalidate(key)
				c.poison(key)
			}
		}
		c.sent++
		c.dispatch(slotReq{cmd: cmd, key: key, target: tg, sentAt: c.eng.Now(), get: op == OpGet})
		return
	}
}

// poison marks every in-flight or queued GET for key: its reply may carry
// the value an invalidation push just retired.
func (c *slotClient) poison(key string) {
	for g := 0; g < len(c.addrs); g++ {
		sc := c.conns[g]
		if sc == nil {
			continue
		}
		for i := range sc.inflight {
			if sc.inflight[i].get && sc.inflight[i].key == key {
				sc.inflight[i].poisoned = true
			}
		}
		for i := range sc.queue {
			if sc.queue[i].get && sc.queue[i].key == key {
				sc.queue[i].poisoned = true
			}
		}
	}
}

func (c *slotClient) applyInvalidation(key string) {
	c.invalidations++
	c.cache.invalidate(key)
	c.poison(key)
}

// dropKey drops one cache entry on a redirect: the key's interest now
// lives (or will be re-recorded) on another node, so the cached copy can
// no longer be trusted to see its invalidation.
func (c *slotClient) dropKey(key string) {
	if c.tracking {
		c.cache.invalidate(key)
	}
}

// dispatch routes one request by its key's slot under the current view.
func (c *slotClient) dispatch(r slotReq) {
	c.sendTo(int(c.owner[slots.Slot([]byte(r.key))]), r)
}

// sendTo queues one request on group g's connection, dialing if needed.
// dispatch computes g from the slot map; the ASK path forces it.
func (c *slotClient) sendTo(g int, r slotReq) {
	sc := c.conns[g]
	if sc == nil {
		sc = &slotConn{group: g, addr: c.addrs[g]}
		c.conns[g] = sc
		sc.queue = append(sc.queue, r)
		c.dial(sc)
		return
	}
	if sc.conn == nil {
		sc.queue = append(sc.queue, r) // dial outstanding
		return
	}
	sc.inflight = append(sc.inflight, r)
	sc.lastActivity = c.eng.Now()
	sc.conn.Send(r.cmd)
}

func (c *slotClient) dial(sc *slotConn) {
	c.redials++
	c.eng.After(c.dialTimeout, func() {
		if c.conns[sc.group] == sc && sc.conn == nil {
			// Handshake swallowed by a dead endpoint: give up on this
			// attempt and re-route its requests.
			c.recoverReqs(sc)
		}
	})
	c.stack.Dial(c.resolve(sc.addr), c.port, func(conn transport.Conn, err error) {
		if c.conns[sc.group] != sc || sc.conn != nil {
			if err == nil {
				conn.Close() // superseded
			}
			return
		}
		if err != nil {
			c.recoverReqs(sc)
			return
		}
		sc.conn = conn
		conn.SetHandler(func(data []byte) { c.onReply(sc, conn, data) })
		conn.SetCloseHandler(func() {
			if c.conns[sc.group] == sc && sc.conn == conn {
				sc.conn = nil
				c.recoverReqs(sc)
			}
		})
		if c.tracking {
			// Handshake first: FIFO guarantees the node records the
			// tracking mode before admitting any queued GET's interest.
			sc.inflight = append(sc.inflight, slotReq{cmd: trackOnCmd, marker: true})
			conn.Send(trackOnCmd)
		}
		q := sc.queue
		sc.queue = nil
		sc.lastActivity = c.eng.Now()
		for _, r := range q {
			sc.inflight = append(sc.inflight, r)
			conn.Send(r.cmd)
		}
	})
}

// recoverReqs retires a broken connection and re-dispatches everything it
// carried after retryDelay, refreshing the slot map first (the group's
// address may have moved to a promoted slave in the meantime). With
// tracking on the cache is flushed: pushes may have died with the
// connection, and the interest recorded on the lost node is gone.
func (c *slotClient) recoverReqs(sc *slotConn) {
	if c.conns[sc.group] != sc {
		return
	}
	delete(c.conns, sc.group)
	reqs := append(sc.inflight, sc.queue...)
	sc.inflight, sc.queue = nil, nil
	if sc.conn != nil {
		conn := sc.conn
		sc.conn = nil
		conn.Close()
	}
	if c.tracking {
		c.flushCache()
	}
	c.eng.After(c.retryDelay, func() {
		c.refreshMap()
		for _, r := range reqs {
			if r.marker {
				continue // ASKING filler: its data request re-routes alone
			}
			c.dispatch(r)
		}
	})
}

// askRetry performs the one-shot ASK protocol: send ASKING then the same
// request to the redirect's address. Unlike MOVED this must NOT refresh the
// slot map — the source still owns the slot until the migration finishes,
// and adopting the target early would bounce every other key in the slot.
// The address is resolved to a group through the authoritative table (the
// simulation's stand-in for a real client keying connections by address).
func (c *slotClient) askRetry(addr string, req slotReq) bool {
	g := -1
	for i := 0; i < c.table.Groups(); i++ {
		if c.table.Addr(i) == addr {
			g = i
			break
		}
	}
	if g < 0 {
		return false // address not in the deployment: caller falls back
	}
	if c.addrs[g] != addr {
		// Our view has a stale (or unlearned) address for this group; an
		// ASK names the live endpoint, so adopt it. Any connection to the
		// old address is retired and its requests re-route normally.
		if sc := c.conns[g]; sc != nil && sc.addr != addr {
			c.recoverReqs(sc)
		}
		c.addrs[g] = addr
	}
	c.sendTo(g, slotReq{cmd: askingCmd, marker: true})
	c.sendTo(g, req)
	return true
}

// refreshMap copies the authoritative table if it is newer than our view,
// then retires connections whose group address changed. With tracking on a
// topology change flushes the cache: entries may now be owned by nodes
// that hold no interest for us.
func (c *slotClient) refreshMap() {
	if c.epoch == c.table.Epoch() {
		return
	}
	c.proc.Core.Charge(c.params.ClientThinkCPU)
	c.epoch = c.table.CopyInto(c.owner, c.addrs)
	c.mapRefreshes++
	if c.tracking {
		c.flushCache()
	}
	for g := 0; g < len(c.addrs); g++ { // index order: deterministic
		if sc := c.conns[g]; sc != nil && sc.addr != c.addrs[g] {
			c.recoverReqs(sc)
		}
	}
}

func (c *slotClient) onReply(sc *slotConn, conn transport.Conn, data []byte) {
	if c.conns[sc.group] != sc || sc.conn != conn {
		return
	}
	sc.lastActivity = c.eng.Now()
	sc.reader.Feed(data)
	for {
		v, ok, err := sc.reader.ReadValue()
		if err != nil {
			panic(fmt.Sprintf("workload: slot client %s got protocol garbage: %v", c.name, err))
		}
		if !ok {
			return
		}
		if v.IsPush() {
			if key, isInv := pushedKey(v); isInv {
				c.applyInvalidation(key)
			}
			continue
		}
		if len(sc.inflight) == 0 {
			continue // reply for a request already re-routed elsewhere
		}
		req := sc.inflight[0]
		sc.inflight = sc.inflight[1:]
		if req.marker {
			continue // +OK for an ASKING/handshake prefix: no accounting, no refill
		}
		if v.IsError() {
			msg := string(v.Str)
			kind, _, addr, _ := slots.ParseRedirectKind(msg)
			switch kind {
			case slots.RedirectMoved:
				// Stale view: repair the map and re-issue the same request
				// (sentAt preserved — the extra hop is real latency).
				c.moved++
				c.dropKey(req.key)
				c.refreshMap()
				c.dispatch(req)
				continue
			case slots.RedirectAsk:
				c.asked++
				c.dropKey(req.key)
				if c.askRetry(addr, req) {
					continue
				}
				// Unknown address (should not happen in a converged
				// deployment): fall back to a map refresh and re-route.
				c.refreshMap()
				c.dispatch(req)
				continue
			}
			if strings.HasPrefix(msg, "TRYAGAIN") {
				// Half-migrated multi-key window: back off and retry the
				// same request (sentAt preserved).
				c.tryAgain++
				c.eng.After(c.retryDelay, func() { c.dispatch(req) })
				continue
			}
			c.errReplies++
			c.groupErrs[sc.group]++
		}
		now := c.eng.Now()
		c.done++
		c.groupDone[sc.group]++
		if now >= c.warmupUntil {
			c.hist.Record(now.Sub(req.sentAt))
			if c.series != nil {
				c.series.Record(now)
			}
		}
		if req.get && c.tracking && !req.poisoned && v.Type == resp.TypeBulk && !v.Null {
			c.cache.put(req.key, v.Str)
		}
		c.sendNextFor(req.target)
	}
}
