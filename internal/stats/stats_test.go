package stats

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"skv/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Percentile(99) != 0 {
		t.Fatal("empty histogram not zeroed")
	}
	for i := 1; i <= 100; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count=%d", h.Count())
	}
	if m := h.Mean(); m < 50*sim.Microsecond || m > 51*sim.Microsecond {
		t.Fatalf("mean=%v", m)
	}
	if p := h.Percentile(50); p < 49*sim.Microsecond || p > 51*sim.Microsecond {
		t.Fatalf("p50=%v", p)
	}
	if p := h.Percentile(99); p < 98*sim.Microsecond || p > 100*sim.Microsecond {
		t.Fatalf("p99=%v", p)
	}
	if h.Max() != 100*sim.Microsecond {
		t.Fatalf("max=%v", h.Max())
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram()
	samples := []sim.Duration{
		0,
		sim.Millisecond - 100,
		sim.Millisecond,
		50 * sim.Millisecond,
		100 * sim.Millisecond,
		5 * sim.Second,
		20 * sim.Second, // overflow bucket
		-5,              // clamped to 0
	}
	for _, s := range samples {
		h.Record(s)
	}
	if h.Count() != uint64(len(samples)) {
		t.Fatalf("count=%d", h.Count())
	}
	// p100 must land in the top region.
	if p := h.Percentile(100); p < 5*sim.Second {
		t.Fatalf("p100=%v", p)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := 0; i < 100; i++ {
		a.Record(10 * sim.Microsecond)
		b.Record(30 * sim.Microsecond)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Fatalf("merged count=%d", a.Count())
	}
	if m := a.Mean(); m != 20*sim.Microsecond {
		t.Fatalf("merged mean=%v", m)
	}
	if a.Max() != 30*sim.Microsecond {
		t.Fatalf("merged max=%v", a.Max())
	}
}

// Property: histogram percentiles track exact percentiles within bucket
// resolution for sub-millisecond samples (100ns buckets).
func TestHistogramPercentileAccuracy(t *testing.T) {
	f := func(seed int64) bool {
		rnd := rand.New(rand.NewSource(seed))
		h := NewHistogram()
		var all []sim.Duration
		for i := 0; i < 2000; i++ {
			d := sim.Duration(rnd.Intn(1_000_000)) // < 1ms
			h.Record(d)
			all = append(all, d)
		}
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for _, p := range []float64{50, 90, 99} {
			idx := int(p/100*float64(len(all))) - 1
			if idx < 0 {
				idx = 0
			}
			exact := all[idx]
			got := h.Percentile(p)
			diff := got - exact
			if diff < 0 {
				diff = -diff
			}
			if diff > 200 { // two buckets of slack
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Regression: the nearest-rank target must be the ceiling of p/100·n, not
// the truncation — truncation reported percentiles one sample low whenever
// p/100·n is not an integer.
func TestHistogramPercentileCeilingRank(t *testing.T) {
	h := NewHistogram()
	for _, d := range []sim.Duration{1 * sim.Microsecond, 2 * sim.Microsecond, 3 * sim.Microsecond} {
		h.Record(d)
	}
	// ceil(0.50·3)=2 → 2µs; truncation gave rank 1 → 1µs.
	if p := h.Percentile(50); p != 2*sim.Microsecond {
		t.Fatalf("p50 of {1,2,3}µs = %v, want 2µs", p)
	}
	// ceil(0.99·3)=3 → 3µs.
	if p := h.Percentile(99); p != 3*sim.Microsecond {
		t.Fatalf("p99 of {1,2,3}µs = %v, want 3µs", p)
	}
	if p := h.Percentile(100); p != 3*sim.Microsecond {
		t.Fatalf("p100 of {1,2,3}µs = %v, want the max", p)
	}

	h2 := NewHistogram()
	for i := 1; i <= 10; i++ {
		h2.Record(sim.Duration(i) * sim.Microsecond)
	}
	// ceil(0.95·10)=10 → 10µs; truncation gave rank 9 → 9µs.
	if p := h2.Percentile(95); p != 10*sim.Microsecond {
		t.Fatalf("p95 of 1..10µs = %v, want 10µs", p)
	}
	// Exact multiple: ceil(0.50·10)=5 → 5µs (unchanged by the fix).
	if p := h2.Percentile(50); p != 5*sim.Microsecond {
		t.Fatalf("p50 of 1..10µs = %v, want 5µs", p)
	}
}

// Regression: samples ≥ 10s land in the overflow bucket, which the
// cumulative walk used to skip — every percentile ranking into it reported
// the 10s cap instead of participating in the walk, and p100 ignored the
// recorded max.
func TestHistogramOverflowBucketPercentiles(t *testing.T) {
	h := NewHistogram()
	h.Record(1 * sim.Millisecond)
	h.Record(25 * sim.Second)
	h.Record(30 * sim.Second)

	if p := h.Percentile(100); p != 30*sim.Second {
		t.Fatalf("p100 = %v, want the recorded max 30s", p)
	}
	// ceil(0.99·3)=3: the rank is an overflow sample; the walk must reach it
	// and report the recorded max (the only bound kept for ≥10s samples).
	if p := h.Percentile(99); p != 30*sim.Second {
		t.Fatalf("p99 = %v, want 30s", p)
	}
	// ceil(0.50·3)=2: also an overflow sample.
	if p := h.Percentile(50); p != 30*sim.Second {
		t.Fatalf("p50 = %v, want 30s", p)
	}
	// Rank 1 is still the 1ms sample.
	if p := h.Percentile(10); p != 1*sim.Millisecond {
		t.Fatalf("p10 = %v, want 1ms", p)
	}

	// All-overflow histogram: every percentile is the max.
	h2 := NewHistogram()
	h2.Record(12 * sim.Second)
	if p := h2.Percentile(50); p != 12*sim.Second {
		t.Fatalf("all-overflow p50 = %v, want 12s", p)
	}
}

// Regression: Percentile guarded p ≥ 100 but not p ≤ 0. p = 0 survived by
// accident (Ceil(0) = 0, clamped up to rank 1), but any negative p went
// through uint64(math.Ceil(negative)) — which wraps to an enormous rank,
// gets clamped DOWN to n, and silently reports the maximum where the
// minimum bucket is the only defensible answer.
func TestHistogramPercentileLowBound(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10; i++ {
		h.Record(sim.Duration(i) * sim.Microsecond)
	}
	// Rank 1 lands in the 1µs sample's 100ns bucket.
	want := h.Percentile(1) // ceil(0.01·10) = 1: the smallest sample
	if want >= 2*sim.Microsecond {
		t.Fatalf("p1 = %v, expected the smallest sample's bucket", want)
	}
	if p := h.Percentile(0); p != want {
		t.Fatalf("p0 = %v, want %v (rank 1)", p, want)
	}
	if p := h.Percentile(-1); p != want {
		t.Fatalf("p(-1) = %v, want %v (rank 1) — negative p must clamp, not wrap", p, want)
	}
	if p := h.Percentile(-1e9); p != want {
		t.Fatalf("p(-1e9) = %v, want %v (rank 1)", p, want)
	}
	// Empty histogram: still zero for out-of-range p.
	h2 := NewHistogram()
	if p := h2.Percentile(-5); p != 0 {
		t.Fatalf("empty p(-5) = %v, want 0", p)
	}
}

func TestHistogramString(t *testing.T) {
	h := NewHistogram()
	h.Record(5 * sim.Microsecond)
	if s := h.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(100 * sim.Millisecond)
	for i := 0; i < 10; i++ {
		ts.Record(sim.Time(50 * int64(sim.Millisecond))) // bucket 0
	}
	ts.Record(sim.Time(250 * int64(sim.Millisecond))) // bucket 2
	buckets := ts.Buckets()
	if len(buckets) != 3 || buckets[0] != 10 || buckets[1] != 0 || buckets[2] != 1 {
		t.Fatalf("buckets=%v", buckets)
	}
	rates := ts.Rates()
	if rates[0] != 100 { // 10 events / 0.1s
		t.Fatalf("rate[0]=%v", rates[0])
	}
	if ts.Interval() != 100*sim.Millisecond {
		t.Fatal("interval accessor")
	}
}
