// Package stats provides the latency histogram and throughput time series
// used by the benchmark harness: redis-benchmark-style average and tail
// percentiles, and per-interval operation counts for availability plots
// (paper Fig 14).
package stats

import (
	"fmt"
	"math"

	"skv/internal/sim"
)

// Histogram records durations in variable-resolution buckets, HdrHistogram
// style: 100ns resolution below 1ms, 10µs below 100ms, 1ms above, capped at
// 10s. Memory is constant; percentiles are exact to bucket resolution.
type Histogram struct {
	lo   []uint64 // [0, 1ms) at 100ns
	mid  []uint64 // [1ms, 100ms) at 10µs
	hi   []uint64 // [100ms, 10s) at 1ms
	over uint64   // ≥ 10s
	n    uint64
	sum  sim.Duration
	max  sim.Duration
}

// NewHistogram creates an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{
		lo:  make([]uint64, 10_000),
		mid: make([]uint64, 9_900),
		hi:  make([]uint64, 9_900),
	}
}

// Record adds one sample.
func (h *Histogram) Record(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.n++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	switch {
	case d < sim.Millisecond:
		h.lo[d/100]++
	case d < 100*sim.Millisecond:
		h.mid[(d-sim.Millisecond)/(10*sim.Microsecond)]++
	case d < 10*sim.Second:
		idx := (d - 100*sim.Millisecond) / sim.Millisecond
		if int(idx) >= len(h.hi) {
			idx = sim.Duration(len(h.hi) - 1)
		}
		h.hi[idx]++
	default:
		h.over++
	}
}

// Count reports the number of samples.
func (h *Histogram) Count() uint64 { return h.n }

// Mean reports the average sample.
func (h *Histogram) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.n)
}

// Max reports the largest sample.
func (h *Histogram) Max() sim.Duration { return h.max }

// Percentile reports the p-th percentile to bucket resolution. The rank is
// the ceiling of p/100·n (nearest-rank definition), so p50 of {1,2,3} is
// the 2nd sample, not the 1st. p is clamped to [0, 100]: p ≤ 0 reports the
// smallest sample's bucket (rank 1) — a negative p must NOT fall through
// the rank arithmetic, where uint64(math.Ceil(negative)) wraps to a huge
// rank and silently reports the maximum instead of the minimum. p ≥ 100 —
// and any percentile landing in the ≥10s overflow bucket — reports the
// exact recorded maximum.
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.n == 0 {
		return 0
	}
	if p >= 100 {
		return h.max
	}
	if p <= 0 {
		p = 0
	}
	target := uint64(math.Ceil(p / 100 * float64(h.n)))
	if target < 1 {
		target = 1
	}
	if target > h.n {
		target = h.n
	}
	var seen uint64
	for i, c := range h.lo {
		seen += c
		if seen >= target {
			return sim.Duration(i) * 100
		}
	}
	for i, c := range h.mid {
		seen += c
		if seen >= target {
			return sim.Millisecond + sim.Duration(i)*10*sim.Microsecond
		}
	}
	for i, c := range h.hi {
		seen += c
		if seen >= target {
			return 100*sim.Millisecond + sim.Duration(i)*sim.Millisecond
		}
	}
	// The rank falls among the ≥10s overflow samples; the best (and only)
	// bound the histogram keeps for them is the recorded maximum.
	return h.max
}

// Merge folds other into h.
func (h *Histogram) Merge(other *Histogram) {
	for i, c := range other.lo {
		h.lo[i] += c
	}
	for i, c := range other.mid {
		h.mid[i] += c
	}
	for i, c := range other.hi {
		h.hi[i] += c
	}
	h.over += other.over
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// String renders count/mean/p50/p99 for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%.1fµs p99=%.1fµs max=%.1fµs",
		h.n, h.Mean().Micros(), h.Percentile(50).Micros(), h.Percentile(99).Micros(), h.max.Micros())
}

// TimeSeries counts events in fixed virtual-time intervals.
type TimeSeries struct {
	interval sim.Duration
	counts   []uint64
}

// NewTimeSeries creates a series with the given bucket width.
func NewTimeSeries(interval sim.Duration) *TimeSeries {
	return &TimeSeries{interval: interval}
}

// Record counts one event at virtual time t.
func (ts *TimeSeries) Record(t sim.Time) {
	idx := int(sim.Duration(t) / ts.interval)
	for len(ts.counts) <= idx {
		ts.counts = append(ts.counts, 0)
	}
	ts.counts[idx]++
}

// Interval reports the bucket width.
func (ts *TimeSeries) Interval() sim.Duration { return ts.interval }

// Buckets reports the raw per-interval counts.
func (ts *TimeSeries) Buckets() []uint64 { return ts.counts }

// Rates reports per-interval event rates in events/second.
func (ts *TimeSeries) Rates() []float64 {
	out := make([]float64, len(ts.counts))
	sec := ts.interval.Seconds()
	for i, c := range ts.counts {
		out[i] = float64(c) / sec
	}
	return out
}
