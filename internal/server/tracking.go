// Client-side caching support (CLIENT TRACKING): per-connection key
// interest, recorded at command admission, and push-style invalidation on
// every dirty write. Two modes:
//
//   - In-band (CLIENT TRACKING ON): interest lands in the server's own
//     bounded table and invalidation pushes ride the client's data
//     connection as RESP3 push frames. This is the baseline path — and the
//     self-healing fallback a promoted SKV slave uses before its Nic-KV
//     wiring exists.
//   - Redirect (CLIENT TRACKING ON REDIRECT <name>): the server only
//     forwards interest to the offload layer (Host-KV → Nic-KV) via
//     OnTrackInterest; the NIC owns the table and pushes invalidations on
//     its own subscription channel, costing zero host dispatch cycles.
//     Honored only when an offload layer wired OnTrackInterest.
//
// Connections that never issue CLIENT TRACKING pay nothing: every hook
// below is gated on per-client flags or table emptiness, so the legacy
// event stream is preserved bit-for-bit.
package server

import (
	"strings"

	"skv/internal/resp"
	"skv/internal/store"
	"skv/internal/tracking"
)

// TrackingLen reports the number of distinct keys in the server's in-band
// interest table (0 when no client ever turned tracking on).
func (s *Server) TrackingLen() int {
	if s.track == nil {
		return 0
	}
	return s.track.Len()
}

// TrackingSubscribers reports how many connections hold in-band interest.
func (s *Server) TrackingSubscribers() int {
	if s.track == nil {
		return 0
	}
	return s.track.Subscribers()
}

// cmdClient handles the CLIENT command (only the TRACKING subcommand is
// modeled). "CLIENT TRACKING ON [REDIRECT <name>]" / "CLIENT TRACKING OFF".
func (s *Server) cmdClient(c *client, argv [][]byte) {
	if len(argv) < 3 || !strings.EqualFold(string(argv[1]), "tracking") {
		s.reply(c, resp.AppendError(nil, "ERR unknown CLIENT subcommand"))
		return
	}
	switch strings.ToLower(string(argv[2])) {
	case "on":
		redirect := ""
		if len(argv) == 5 && strings.EqualFold(string(argv[3]), "redirect") {
			redirect = string(argv[4])
		} else if len(argv) != 3 {
			s.reply(c, resp.AppendError(nil, "ERR syntax error in CLIENT TRACKING"))
			return
		}
		s.dropTracking(c) // re-negotiation resets prior state
		c.trackOn = true
		if redirect != "" && s.OnTrackInterest != nil {
			// Offloaded mode: the NIC owns the table, keyed by the client's
			// chosen subscription name.
			c.trackRedirect = true
			c.trackName = redirect
		} else {
			// In-band mode (or no offload layer to redirect to): track
			// locally under a synthetic per-connection name.
			c.trackRedirect = false
			c.trackName = "#" + itoa(c.id)
			if s.track == nil {
				s.track = tracking.New(s.params.TrackTableMax)
				s.trackLocal = make(map[string]*client)
				s.track.OnEvict = s.pushEvicted
			}
			s.trackLocal[c.trackName] = c
		}
		s.reply(c, resp.AppendSimple(nil, "OK"))
	case "off":
		s.dropTracking(c)
		s.reply(c, resp.AppendSimple(nil, "OK"))
	default:
		s.reply(c, resp.AppendError(nil, "ERR syntax error in CLIENT TRACKING"))
	}
}

// dropTracking forgets every interest held by c (CLIENT TRACKING OFF,
// re-negotiation, or disconnect). Without this, churning subscribers would
// leave the interest tables permanently populated.
func (s *Server) dropTracking(c *client) {
	if !c.trackOn {
		return
	}
	c.trackOn = false
	if c.trackRedirect {
		if s.OnTrackDrop != nil {
			s.OnTrackDrop(c.trackName)
		}
	} else if s.track != nil {
		s.track.DropSub(c.trackName)
		delete(s.trackLocal, c.trackName)
	}
	c.trackRedirect = false
	c.trackName = ""
}

// recordInterest registers c's interest in every key a tracked read
// touches. Runs at admission (after the slot check) so in sharded mode the
// interest exists before the read is even routed — an invalidation for a
// concurrently-merging write can therefore arrive before the read's reply,
// which the client side handles by poisoning the in-flight read.
func (s *Server) recordInterest(c *client, cmd *store.Command, argv [][]byte) {
	s.coreFor(c).Charge(s.params.TrackInterestCPU)
	cmd.EachKey(argv, func(key []byte) {
		if c.trackRedirect {
			s.OnTrackInterest(c.trackName, string(key))
		} else {
			s.track.Add(string(key), c.trackName)
		}
	})
}

// pushInvalidations tells every in-band subscriber interested in a dirty
// write's keys that their cached copies are stale. Interest is one-shot.
// Keyless dirty commands (FLUSHDB and friends) invalidate the whole table.
// Called from execute (single-threaded + barrier writes) and the sharded
// merge stage, both on the dispatch proc; gated on table occupancy so the
// untracked hot path adds zero work.
func (s *Server) pushInvalidations(cmd *store.Command, argv [][]byte) {
	if s.track == nil || s.track.Len() == 0 {
		return
	}
	if cmd == nil || cmd.FirstKey == 0 {
		for _, e := range s.track.TakeAll() {
			s.pushKeyTo(e.Key, e.Subs)
		}
		return
	}
	cmd.EachKey(argv, func(key []byte) {
		k := string(key)
		if subs := s.track.Take(k); subs != nil {
			s.pushKeyTo(k, subs)
		}
	})
}

// pushEvicted is the table's OnEvict hook: a key squeezed out by the
// bound gets a synthetic invalidation so its subscribers re-fetch rather
// than serve it stale forever.
func (s *Server) pushEvicted(key string, subs []string) {
	s.pushKeyTo(key, subs)
}

// pushKeyTo emits one RESP3 invalidate push frame per live subscriber.
func (s *Server) pushKeyTo(key string, subs []string) {
	for _, name := range subs {
		c := s.trackLocal[name]
		if c == nil || c.closed {
			continue
		}
		s.coreFor(c).Charge(s.params.ReplyBuildCPU)
		c.conn.Send(resp.AppendInvalidatePush(nil, []byte(key)))
	}
}

// itoa is a tiny allocation-light uint formatter for synthetic names.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
