package server

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/tcpsim"
	"skv/internal/transport"
)

// TestPSyncDedupesSlaveHandles checks the re-sync leak fix: a slave that
// re-runs the sync handshake on a fresh connection supersedes its old
// handle instead of accumulating a second one (which feedSlaves would keep
// charging CPU for and sending to forever).
func TestPSyncDedupesSlaveHandles(t *testing.T) {
	w := newWorld(11)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	if n := len(master.SlaveAckOffsets()); n != 1 {
		t.Fatalf("handles after first sync: %d", n)
	}
	// The same slave re-syncs on a brand-new connection (transient link
	// blip, agent restart): the master must still track exactly one handle.
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	if n := len(master.SlaveAckOffsets()); n != 1 {
		t.Fatalf("stale slave handle leaked: %d handles", n)
	}
	c := w.dial(t, master)
	c.do(t, "SET", "k", "v")
	w.run()
	reply, _ := slave.Store().Exec(0, [][]byte{[]byte("GET"), []byte("k")})
	if string(reply) != "$1\r\nv\r\n" {
		t.Fatalf("slave did not converge after re-sync: %q", reply)
	}
}

// TestBatchedFeedCoalescesPipelinedWrites checks the ReplStream batching on
// the baseline fan-out path: pipelined writes arriving in one event-loop
// burst ride fewer flushes than commands, and the slave still converges to
// the full keyspace.
func TestBatchedFeedCoalescesPipelinedWrites(t *testing.T) {
	w := newWorld(12)
	w.p.ReplBatchMaxCmds = 4
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	const writes = 8
	var pipe []byte
	for i := 0; i < writes; i++ {
		pipe = append(pipe, resp.EncodeCommand("SET", fmt.Sprintf("k%d", i), "v")...)
	}
	w.eng.After(0, func() { c.conn.Send(pipe) })
	w.run()
	if master.WritesPropagated != writes {
		t.Fatalf("WritesPropagated=%d", master.WritesPropagated)
	}
	if flushed := master.ReplStream().BatchesFlushed; flushed >= writes {
		t.Fatalf("no coalescing: %d batches for %d writes", flushed, writes)
	}
	for i := 0; i < writes; i++ {
		reply, _ := slave.Store().Exec(0, [][]byte{[]byte("GET"), []byte(fmt.Sprintf("k%d", i))})
		if string(reply) == "$-1\r\n" {
			t.Fatalf("k%d missing on slave", i)
		}
	}
	if master.ReplOffset() != slave.MasterOffset() {
		t.Fatalf("offsets diverged: master %d, slave %d", master.ReplOffset(), slave.MasterOffset())
	}
}

// TestBatchSizeOnePreservesPerWriteFeeds pins the compatibility contract on
// the default configuration: one flush per propagated write.
func TestBatchSizeOnePreservesPerWriteFeeds(t *testing.T) {
	w := newWorld(13)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	for i := 0; i < 5; i++ {
		c.do(t, "SET", fmt.Sprintf("k%d", i), "v")
	}
	if master.ReplStream().BatchesFlushed != master.WritesPropagated {
		t.Fatalf("batch=1 flushed %d batches for %d writes",
			master.ReplStream().BatchesFlushed, master.WritesPropagated)
	}
}

// TestPSyncMidBatchGetsConsistentOffsets drives a second slave's sync
// handshake into the middle of a pipelined write burst at a large batch
// size. cmdPSync must flush the pending batch before snapshotting offsets;
// otherwise the joining slave receives the pending bytes twice (backlog
// delta + live flush) and — INCR not being idempotent — diverges.
func TestPSyncMidBatchGetsConsistentOffsets(t *testing.T) {
	for _, joinAt := range []sim.Duration{0, sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond} {
		w := newWorld(14)
		w.p.ReplBatchMaxCmds = 64
		master := w.server("m", 6379)
		slave1 := w.server("sl1", 6379)
		slave2 := w.server("sl2", 6379)
		slave1.SlaveOf(master.Stack().Endpoint(), 6379)
		w.run()
		c := w.dial(t, master)
		const bursts, perBurst = 10, 20
		for b := 0; b < bursts; b++ {
			at := w.eng.Now().Add(sim.Duration(b) * sim.Millisecond)
			w.eng.At(at, func() {
				var pipe []byte
				for i := 0; i < perBurst; i++ {
					pipe = append(pipe, resp.EncodeCommand("INCR", "ctr")...)
				}
				c.conn.Send(pipe)
			})
		}
		w.eng.At(w.eng.Now().Add(joinAt), func() {
			slave2.SlaveOf(master.Stack().Endpoint(), 6379)
		})
		w.eng.Run(w.eng.Now().Add(500 * sim.Millisecond))
		want, _ := master.Store().Exec(0, [][]byte{[]byte("GET"), []byte("ctr")})
		for i, sl := range []*Server{slave1, slave2} {
			got, _ := sl.Store().Exec(0, [][]byte{[]byte("GET"), []byte("ctr")})
			if string(got) != string(want) {
				t.Fatalf("joinAt=%v: slave%d ctr=%q master=%q (double/lost application)",
					joinAt, i+1, got, want)
			}
		}
		if m, s2 := master.ReplOffset(), slave2.MasterOffset(); m != s2 {
			t.Fatalf("joinAt=%v: offsets diverged: master %d, slave2 %d", joinAt, m, s2)
		}
	}
}

// TestPSyncStreamContinuity joins a raw PSYNC client around a pipelined
// write burst and checks stream byte accounting: the snapshot offset in the
// FULLRESYNC reply plus every stream byte subsequently delivered must equal
// the master's final offset — no byte delivered twice, none lost — across a
// sweep of join instants at a large batch size.
func TestPSyncStreamContinuity(t *testing.T) {
	hit := false
	for us := 0; us <= 60; us += 2 {
		w := newWorld(15)
		w.p.ReplBatchMaxCmds = 1000 // only quiesce flushes
		master := w.server("m", 6379)
		writer := w.dial(t, master)

		// Raw client recording every message verbatim.
		m := w.net.NewMachine("raw"+nextID(), false)
		proc := sim.NewProc(w.eng, sim.NewCore(w.eng, m.Name+"-core", 1.0), w.p.TCPWakeup)
		stack := tcpsim.New(w.net, m.Host, proc)
		var raw transport.Conn
		var msgs [][]byte
		stack.Dial(master.Stack().Endpoint(), 6379, func(c transport.Conn, err error) {
			if err != nil {
				t.Fatalf("raw dial: %v", err)
			}
			raw = c
			c.SetHandler(func(data []byte) { msgs = append(msgs, append([]byte(nil), data...)) })
		})
		w.run()

		var pipe []byte
		for i := 0; i < 50; i++ {
			pipe = append(pipe, resp.EncodeCommand("INCR", "ctr")...)
		}
		base := w.eng.Now()
		w.eng.At(base, func() { writer.conn.Send(pipe) })
		w.eng.At(base.Add(sim.Duration(us)*sim.Microsecond), func() {
			raw.Send(resp.EncodeCommand("PSYNC", "?", "-1"))
		})
		// A second burst after the handshake: the stream must deliver exactly
		// these bytes to the new slave, nothing more.
		w.eng.At(base.Add(2*sim.Millisecond), func() { writer.conn.Send(pipe) })
		w.eng.Run(base.Add(200 * sim.Millisecond))

		if len(msgs) < 2 {
			t.Fatalf("us=%d: handshake incomplete (%d messages)", us, len(msgs))
		}
		var head resp.Reader
		head.Feed(msgs[0])
		v, ok, err := head.ReadValue()
		if err != nil || !ok || v.Type != resp.TypeSimple {
			t.Fatalf("us=%d: bad PSYNC reply %q", us, msgs[0])
		}
		fields := strings.Fields(string(v.Str))
		if len(fields) != 3 || fields[0] != "FULLRESYNC" {
			t.Fatalf("us=%d: reply %q", us, v.Str)
		}
		snap, _ := strconv.ParseInt(fields[2], 10, 64)
		if snap < master.ReplOffset() {
			hit = true // joined before the final write: live stream exercised
		}
		streamBytes := int64(0)
		for _, msg := range msgs[2:] { // msgs[1] is the RDB dump
			streamBytes += int64(len(msg))
		}
		if got, want := snap+streamBytes, master.ReplOffset(); got != want {
			t.Fatalf("us=%d: snapshot %d + stream %d = %d, master offset %d (bytes double-delivered or lost)",
				us, snap, streamBytes, got, want)
		}
	}
	if !hit {
		t.Fatal("sweep never joined before the final write; test lost its bite")
	}
}

// TestPSyncFlushesPendingBatch is the white-box pin on the barrier in
// cmdPSync: when a PSYNC is processed in the same event-loop instant as
// writes whose batch is still pending (possible if a future transport or
// scheduler interleaves them), the handler must flush before snapshotting,
// so the joining slave's backlog delta covers the batch and the live stream
// never re-delivers it.
func TestPSyncFlushesPendingBatch(t *testing.T) {
	w := newWorld(16)
	w.p.ReplBatchMaxCmds = 1000
	master := w.server("m", 6379)
	sc := w.dial(t, master)
	var cl *client
	for _, c := range master.clients {
		cl = c
	}
	if cl == nil {
		t.Fatal("no server-side client object")
	}
	var sent int
	w.eng.At(w.eng.Now(), func() {
		// Three writes enter the stream mid-tick; the batch stays pending.
		argv := [][]byte{[]byte("INCR"), []byte("ctr")}
		for i := 0; i < 3; i++ {
			master.store.Exec(0, argv)
			master.propagate(0, argv)
		}
		if master.repl.Pending() == 0 {
			t.Error("no pending batch to test against")
		}
		// The PSYNC handler runs before the scheduled quiesce flush.
		master.processCommand(cl, [][]byte{[]byte("PSYNC"), []byte("?"), []byte("-1")})
		if master.repl.Pending() != 0 {
			t.Error("cmdPSync left the batch pending: snapshot offsets exclude it")
		}
		sent = len(master.slaves)
	})
	w.run()
	if sent != 1 {
		t.Fatalf("psync registered %d slave handles", sent)
	}
	// The handle's ack offset must cover the flushed batch.
	if off := master.SlaveAckOffsets()[0]; off != master.ReplOffset() {
		t.Fatalf("snapshot offset %d, stream end %d", off, master.ReplOffset())
	}
	_ = sc
}
