package server

import (
	"fmt"
	"strings"
	"testing"

	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/tcpsim"
)

// shardedServer builds a server with a sharded dispatch plane (Shards > 1
// spawns that many shard procs, each on its own core).
func (w *world) shardedServer(name string, port, shards int) *Server {
	m := w.net.NewMachine(name, false)
	core := sim.NewCore(w.eng, name+"-core", 1.0)
	proc := sim.NewProc(w.eng, core, w.p.TCPWakeup)
	stack := tcpsim.New(w.net, m.Host, proc)
	return New(Options{
		Name:   name,
		Params: w.p,
		Seed:   seed(name),
		Port:   port,
		Shards: shards,
	}, w.eng, stack, proc)
}

func TestShardedServerBasicCommands(t *testing.T) {
	w := newWorld(41)
	srv := w.shardedServer("s", 6379, 4)
	if srv.NumShards() != 4 {
		t.Fatalf("NumShards = %d", srv.NumShards())
	}
	if n := len(srv.ShardRegistries()); n != 4 {
		t.Fatalf("ShardRegistries = %d", n)
	}
	if n := len(srv.ShardProcs()); n != 4 {
		t.Fatalf("ShardProcs = %d", n)
	}
	c := w.dial(t, srv)
	if v := c.do(t, "SET", "k", "v"); !v.IsOK() {
		t.Fatalf("SET: %s", v.String())
	}
	if v := c.do(t, "GET", "k"); v.String() != "v" {
		t.Fatalf("GET: %s", v.String())
	}
	if v := c.do(t, "PING"); v.String() != "PONG" {
		t.Fatalf("PING: %s", v.String())
	}
	// SELECT stays connection-local on the dispatch plane.
	if v := c.do(t, "SELECT", "1"); !v.IsOK() {
		t.Fatalf("SELECT: %s", v.String())
	}
	if v := c.do(t, "GET", "k"); !v.Null {
		t.Fatalf("db1 GET: %s", v.String())
	}
	c.do(t, "SELECT", "0")
	// Barrier commands fan in across shards.
	if v := c.do(t, "DBSIZE"); v.Int != 1 {
		t.Fatalf("DBSIZE: %s", v.String())
	}
	if v := c.do(t, "FLUSHALL"); !v.IsOK() {
		t.Fatalf("FLUSHALL: %s", v.String())
	}
	if v := c.do(t, "DBSIZE"); v.Int != 0 {
		t.Fatalf("DBSIZE after FLUSHALL: %s", v.String())
	}
	if routed := srv.Metrics().Counter("server.shard.routed").Value(); routed == 0 {
		t.Fatal("no commands were routed to shard procs")
	}
	if fenced := srv.Metrics().Counter("server.shard.barriers").Value(); fenced == 0 {
		t.Fatal("no barrier commands were counted")
	}
}

// TestShardedPipelinedRepliesInOrder is the re-sequencing contract: a
// pipelined burst mixing routed, inline, and barrier commands must come
// back in exact request order even though shards finish asynchronously.
func TestShardedPipelinedRepliesInOrder(t *testing.T) {
	w := newWorld(42)
	srv := w.shardedServer("s", 6379, 4)
	c := w.dial(t, srv)

	var pipe []byte
	var want []string
	add := func(expect string, args ...string) {
		pipe = append(pipe, resp.EncodeCommand(args...)...)
		want = append(want, expect)
	}
	for i := 0; i < 12; i++ {
		add("OK", "SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	add("PONG", "PING")                       // inline between routed writes
	add("OK", "MSET", "k0", "m0", "k7", "m7") // cross-shard barrier
	add(":12", "DBSIZE")                      // barrier: 12 keys, MSET overwrote two
	for i := 0; i < 12; i++ {
		exp := fmt.Sprintf("v%d", i)
		if i == 0 {
			exp = "m0"
		} else if i == 7 {
			exp = "m7"
		}
		add(exp, "GET", fmt.Sprintf("k%d", i))
	}
	add(":2", "DEL", "k0", "k7") // multi-shard DEL barrier
	add(":10", "DBSIZE")

	before := len(c.got)
	w.eng.After(0, func() { c.conn.Send(pipe) })
	w.run()
	got := c.got[before:]
	if len(got) != len(want) {
		t.Fatalf("got %d replies, want %d", len(got), len(want))
	}
	for i, v := range got {
		s := v.String()
		if v.Type == resp.TypeInteger {
			s = fmt.Sprintf(":%d", v.Int)
		}
		if s != want[i] {
			t.Fatalf("reply %d = %q, want %q (full: %v)", i, s, want[i], renderAll(got))
		}
	}
}

func renderAll(vs []resp.Value) []string {
	out := make([]string, len(vs))
	for i, v := range vs {
		out[i] = v.String()
	}
	return out
}

// TestShardedTwoClientsInterleaved checks per-client sequencing is
// independent: two pipelined clients each see their own replies in order.
func TestShardedTwoClientsInterleaved(t *testing.T) {
	w := newWorld(43)
	srv := w.shardedServer("s", 6379, 4)
	c1 := w.dial(t, srv)
	c2 := w.dial(t, srv)
	var p1, p2 []byte
	for i := 0; i < 20; i++ {
		p1 = append(p1, resp.EncodeCommand("SET", fmt.Sprintf("a%d", i), "1")...)
		p2 = append(p2, resp.EncodeCommand("SET", fmt.Sprintf("b%d", i), "2")...)
	}
	p1 = append(p1, resp.EncodeCommand("DBSIZE")...)
	p2 = append(p2, resp.EncodeCommand("GET", "b3")...)
	b1, b2 := len(c1.got), len(c2.got)
	w.eng.After(0, func() { c1.conn.Send(p1) })
	w.eng.After(0, func() { c2.conn.Send(p2) })
	w.run()
	g1, g2 := c1.got[b1:], c2.got[b2:]
	if len(g1) != 21 || len(g2) != 21 {
		t.Fatalf("reply counts: %d, %d (want 21 each)", len(g1), len(g2))
	}
	for i := 0; i < 20; i++ {
		if !g1[i].IsOK() || !g2[i].IsOK() {
			t.Fatalf("SET reply %d: %s / %s", i, g1[i].String(), g2[i].String())
		}
	}
	// The two bursts interleave in virtual time: c1's DBSIZE barrier sees at
	// least its own 20 keys, at most all 40.
	if g1[20].Int < 20 || g1[20].Int > 40 {
		t.Fatalf("DBSIZE = %s, want 20..40", g1[20].String())
	}
	if g2[20].String() != "2" {
		t.Fatalf("GET b3 = %s", g2[20].String())
	}
	if n := srv.Store().DBSize(0); n != 40 {
		t.Fatalf("final DBSize = %d, want 40", n)
	}
}

// TestShardedScanAndRandomKey exercises the shard-aware cursor through the
// wire protocol.
func TestShardedScanAndRandomKey(t *testing.T) {
	w := newWorld(44)
	srv := w.shardedServer("s", 6379, 4)
	c := w.dial(t, srv)
	want := map[string]bool{}
	var pipe []byte
	for i := 0; i < 60; i++ {
		k := fmt.Sprintf("key:%d", i)
		want[k] = true
		pipe = append(pipe, resp.EncodeCommand("SET", k, "v")...)
	}
	w.eng.After(0, func() { c.conn.Send(pipe) })
	w.run()

	got := map[string]bool{}
	cursor := "0"
	for rounds := 0; ; rounds++ {
		if rounds > 200 {
			t.Fatal("SCAN never terminated")
		}
		v := c.do(t, "SCAN", cursor, "COUNT", "9")
		for _, e := range v.Array[1].Array {
			got[string(e.Str)] = true
		}
		cursor = string(v.Array[0].Str)
		if cursor == "0" {
			break
		}
	}
	if len(got) != len(want) {
		t.Fatalf("SCAN covered %d/%d keys", len(got), len(want))
	}
	if v := c.do(t, "RANDOMKEY"); v.Null || !want[v.String()] {
		t.Fatalf("RANDOMKEY = %s", v.String())
	}
	if v := c.do(t, "KEYS", "key:1?"); len(v.Array) != 10 {
		t.Fatalf("KEYS key:1? returned %d", len(v.Array))
	}
}

// TestShardedMasterReplicates: a sharded master feeds the ordinary
// replication pipeline; slaves (with a different shard count) converge to
// the same keyspace, and offsets agree.
func TestShardedMasterReplicates(t *testing.T) {
	w := newWorld(45)
	master := w.shardedServer("m", 6379, 4)
	slave := w.shardedServer("sl", 6379, 2)
	legacy := w.server("sl2", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	legacy.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	if !slave.SyncedWithMaster() || !legacy.SyncedWithMaster() {
		t.Fatal("slaves did not sync")
	}
	c := w.dial(t, master)
	var pipe []byte
	for i := 0; i < 40; i++ {
		pipe = append(pipe, resp.EncodeCommand("SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))...)
	}
	pipe = append(pipe, resp.EncodeCommand("DEL", "k3", "k17")...) // cross-shard write barrier
	pipe = append(pipe, resp.EncodeCommand("LPUSH", "lst", "a", "b", "c")...)
	w.eng.After(0, func() { c.conn.Send(pipe) })
	w.run()
	w.run()
	for _, sl := range []*Server{slave, legacy} {
		if got := sl.Store().DBSize(0); got != master.Store().DBSize(0) {
			t.Fatalf("%s: DBSize %d, master %d", sl.Name(), got, master.Store().DBSize(0))
		}
		for i := 0; i < 40; i++ {
			k := fmt.Sprintf("k%d", i)
			mr, _ := master.Store().Exec(0, [][]byte{[]byte("GET"), []byte(k)})
			sr, _ := sl.Store().Exec(0, [][]byte{[]byte("GET"), []byte(k)})
			if string(mr) != string(sr) {
				t.Fatalf("%s: %s diverged: %q vs %q", sl.Name(), k, sr, mr)
			}
		}
		if sl.MasterOffset() != master.ReplOffset() {
			t.Fatalf("%s: offset %d, master %d", sl.Name(), sl.MasterOffset(), master.ReplOffset())
		}
	}
}

// TestShardedWait: WAIT on a sharded master counts acked replicas exactly
// like the single-threaded server — but without fencing the pipeline. The
// target offset is the caller's own last propagated write, so WAIT takes
// the fence-free classWait path and must not touch the barrier counter.
func TestShardedWait(t *testing.T) {
	w := newWorld(46)
	master := w.shardedServer("m", 6379, 4)
	s1 := w.server("sl1", 6379)
	s2 := w.server("sl2", 6379)
	s1.SlaveOf(master.Stack().Endpoint(), 6379)
	s2.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	c.do(t, "SET", "k", "v")
	barriers := master.Metrics().Counter("server.shard.barriers").Value()
	// The WAIT reply defers until both replicas ACK (every 100ms cron), so
	// run well past the ACK period.
	before := len(c.got)
	w.eng.After(0, func() { c.conn.Send(resp.EncodeCommand("WAIT", "2", "2000")) })
	w.eng.Run(w.eng.Now().Add(700 * sim.Millisecond))
	if len(c.got) <= before {
		t.Fatal("no WAIT reply")
	}
	if v := c.got[len(c.got)-1]; v.Type != resp.TypeInteger || v.Int != 2 {
		t.Fatalf("WAIT = %s, want :2", v.String())
	}
	if got := master.Metrics().Counter("server.shard.barriers").Value(); got != barriers {
		t.Fatalf("WAIT took the barrier path: barriers %d -> %d", barriers, got)
	}
	if got := master.Metrics().Counter("server.shard.waits").Value(); got != 1 {
		t.Fatalf("server.shard.waits = %d, want 1", got)
	}

	// Pipelined SET+WAIT in one frame: the WAIT parks in the client's gated
	// queue until the SET merges (recording its offset), then resolves
	// against that write — still with no fence.
	before = len(c.got)
	pipe := append(resp.EncodeCommand("SET", "k2", "v2"), resp.EncodeCommand("WAIT", "2", "2000")...)
	w.eng.After(0, func() { c.conn.Send(pipe) })
	w.eng.Run(w.eng.Now().Add(700 * sim.Millisecond))
	got := c.got[before:]
	if len(got) != 2 {
		t.Fatalf("pipelined SET+WAIT: %d replies, want 2", len(got))
	}
	if !got[0].IsOK() {
		t.Fatalf("pipelined SET: %s", got[0].String())
	}
	if got[1].Type != resp.TypeInteger || got[1].Int != 2 {
		t.Fatalf("pipelined WAIT = %s, want :2", got[1].String())
	}
	if got := master.Metrics().Counter("server.shard.barriers").Value(); got != barriers {
		t.Fatalf("pipelined WAIT took the barrier path: barriers %d -> %d", barriers, got)
	}
}

// TestShardedFullSyncSkipsExpiredKeys is the satellite regression: a key
// whose TTL lapsed before the slave attached must not be resurrected by the
// full-sync RDB dump.
func TestShardedFullSyncSkipsExpiredKeys(t *testing.T) {
	for _, shards := range []int{1, 4} {
		w := newWorld(47)
		m := w.net.NewMachine("m", false)
		core := sim.NewCore(w.eng, "m-core", 1.0)
		proc := sim.NewProc(w.eng, core, w.p.TCPWakeup)
		stack := tcpsim.New(w.net, m.Host, proc)
		master := New(Options{
			Name: "m", Params: w.p, Seed: 1, Port: 6379,
			Shards: shards, DisableCron: true, // no active expiry: the lapsed key stays resident
		}, w.eng, stack, proc)
		c := w.dial(t, master)
		c.do(t, "SET", "live", "v")
		c.do(t, "SET", "dead", "v")
		c.do(t, "PEXPIRE", "dead", "10")
		w.run() // 500ms of virtual time: the TTL lapses
		if master.Store().DBSize(0) != 2 {
			t.Fatalf("shards=%d: master should still hold the lapsed key physically, DBSize=%d",
				shards, master.Store().DBSize(0))
		}
		slave := New(Options{
			Name: "sl", Params: w.p, Seed: 2, Port: 6379, DisableCron: true,
		}, w.eng, tcpsim.New(w.net, w.net.NewMachine("sl", false).Host,
			sim.NewProc(w.eng, sim.NewCore(w.eng, "sl-core", 1.0), w.p.TCPWakeup)),
			sim.NewProc(w.eng, sim.NewCore(w.eng, "sl-core2", 1.0), w.p.TCPWakeup))
		slave.SlaveOf(master.Stack().Endpoint(), 6379)
		w.run()
		if !slave.SyncedWithMaster() {
			t.Fatalf("shards=%d: slave did not sync", shards)
		}
		if got := slave.Store().DBSize(0); got != 1 {
			t.Fatalf("shards=%d: slave DBSize=%d, want 1 (expired key must not ride the dump)", shards, got)
		}
		reply, _ := slave.Store().Exec(0, [][]byte{[]byte("EXISTS"), []byte("dead")})
		if string(reply) != ":0\r\n" {
			t.Fatalf("shards=%d: expired key resurrected on slave: %q", shards, reply)
		}
	}
}

// TestShardedReadonlySlave: write gating happens on the dispatch plane
// before routing.
func TestShardedReadonlySlave(t *testing.T) {
	w := newWorld(48)
	master := w.server("m", 6379)
	slave := w.shardedServer("sl", 6379, 4)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, slave)
	if v := c.do(t, "SET", "k", "v"); !v.IsError() || !strings.Contains(v.String(), "READONLY") {
		t.Fatalf("sharded slave accepted write: %s", v.String())
	}
	if v := c.do(t, "GET", "nope"); !v.Null {
		t.Fatalf("sharded slave read: %s", v.String())
	}
}
