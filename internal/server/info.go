package server

import (
	"fmt"

	"skv/internal/sim"
	"skv/internal/store"
)

// infoSections is the server's store.InfoProvider: it assembles the
// Redis-style INFO sections from live node state. The store appends its
// Keyspace section after these.
func (s *Server) infoSections() []store.InfoSection {
	secs := []store.InfoSection{
		s.infoServer(),
		s.infoClients(),
		s.infoReplication(),
		s.infoStats(),
	}
	for _, fn := range s.extraInfo {
		secs = append(secs, fn())
	}
	return secs
}

func (s *Server) infoServer() store.InfoSection {
	return store.InfoSection{Name: "Server", Lines: []string{
		"server_name:" + s.name,
		"transport:" + s.stack.Transport(),
		fmt.Sprintf("tcp_port:%d", s.port),
		fmt.Sprintf("sim_time_ms:%d", int64(s.eng.Now()/sim.Time(sim.Millisecond))),
		fmt.Sprintf("process_alive:%d", boolBit(s.alive)),
	}}
}

func (s *Server) infoClients() store.InfoSection {
	connected := 0
	for _, c := range s.clients {
		if !c.isSlaveLink {
			connected++
		}
	}
	return store.InfoSection{Name: "Clients", Lines: []string{
		fmt.Sprintf("connected_clients:%d", connected),
		fmt.Sprintf("blocked_clients:%d", s.acks.Waiting()),
	}}
}

// infoReplication mirrors Redis's Replication section. On a master the
// per-replica lines carry the acknowledged offset and its lag behind
// master_repl_offset; both the baseline (REPLCONF ACK) and SKV (Nic-KV
// status frames) feed the consistency tracker this reads. The section also
// exposes the consistency plane itself: the acked-offset watermark every
// replica has covered, and the write replies currently parked on a quorum.
func (s *Server) infoReplication() store.InfoSection {
	lines := []string{"role:" + s.role.String()}
	if s.role == RoleMaster {
		masterOff := s.ReplOffset()
		ids, offs := s.acks.Replicas()
		// Bulk-sourced offsets (Nic-KV status frames) carry no identities.
		withAddrs := !s.acks.BulkSource()
		lines = append(lines,
			fmt.Sprintf("connected_slaves:%d", len(offs)),
			"master_replid:"+s.replID,
			fmt.Sprintf("master_repl_offset:%d", masterOff),
		)
		for i, off := range offs {
			lag := masterOff - off
			if lag < 0 {
				lag = 0
			}
			if withAddrs {
				lines = append(lines, fmt.Sprintf("slave%d:addr=%s,offset=%d,lag=%d", i, ids[i], off, lag))
			} else {
				lines = append(lines, fmt.Sprintf("slave%d:offset=%d,lag=%d", i, off, lag))
			}
		}
		lines = append(lines,
			fmt.Sprintf("min_ack_offset:%d", s.acks.MinAckOffset()),
			fmt.Sprintf("parked_writes:%d", s.acks.Parked()),
			"write_consistency:"+s.defLevel.String(),
		)
		return store.InfoSection{Name: "Replication", Lines: lines}
	}
	status := "down"
	if s.SyncedWithMaster() {
		status = "up"
	}
	lines = append(lines,
		"master_link_status:"+status,
		fmt.Sprintf("slave_repl_offset:%d", s.MasterOffset()),
		"slave_read_only:1",
	)
	if s.master != nil && s.master.masterReplID != "" {
		lines = append(lines, "master_replid:"+s.master.masterReplID)
	}
	return store.InfoSection{Name: "Replication", Lines: lines}
}

func (s *Server) infoStats() store.InfoSection {
	return store.InfoSection{Name: "Stats", Lines: []string{
		fmt.Sprintf("total_commands_processed:%d", s.CommandsProcessed),
		fmt.Sprintf("total_writes_propagated:%d", s.WritesPropagated),
		fmt.Sprintf("err_replies_sent:%d", s.ErrRepliesSent),
		fmt.Sprintf("repl_stream_cmds:%d", s.repl.CmdsAppended),
		fmt.Sprintf("repl_stream_batches:%d", s.repl.BatchesFlushed),
		fmt.Sprintf("dirty:%d", s.store.Dirty),
	}}
}

func boolBit(b bool) int {
	if b {
		return 1
	}
	return 0
}
