package server

import (
	"fmt"
	"strconv"
	"strings"

	"skv/internal/fabric"
	"skv/internal/rdb"
	"skv/internal/replstream"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

// ---- Master side ----

// propagate enters a write into the replication stream and returns the
// replication offset the write ends at (what WAIT must see acked). The
// replstream Writer owns backlog append, SELECT injection, and batching;
// flushed batches come back through flushReplBatch.
func (s *Server) propagate(db int, argv [][]byte) int64 {
	s.WritesPropagated++
	return s.repl.Append(db, argv)
}

// ReplStream exposes the replication stream writer (stats, forced flushes
// in tests).
func (s *Server) ReplStream() *replstream.Writer { return s.repl }

// flushReplBatch delivers one flushed batch downstream: the SKV offload
// hook when installed, the default per-slave fan-out otherwise. Batches
// flushed after a crash are dropped — the bytes are already in the backlog,
// and offset-aware consumers resynchronize from there.
func (s *Server) flushReplBatch(b replstream.Batch) {
	if !s.alive {
		return
	}
	if s.OnPropagate != nil {
		s.OnPropagate(b)
		return
	}
	s.feedSlaves(b)
}

// feedSlaves is the RDMA-Redis/original-Redis steady-state replication: the
// master writes the batch into every slave's output buffer and flushes it —
// consuming CPU (and a posted work request, inside conn.Send) per slave per
// batch. Unbatched (the default) that is per slave per write: exactly the
// overhead Fig 7 measures and SKV offloads. With batching, one send
// amortizes the feed cost over every write coalesced in the tick.
func (s *Server) feedSlaves(b replstream.Batch) {
	p := s.params
	for _, sl := range s.slaves {
		s.proc.Core.Charge(p.ReplFeedSlaveCPU)
		if p.ReplFeedJitterP > 0 && s.rnd.Float64() < p.ReplFeedJitterP {
			// Output-buffer growth / backlog trim slow path.
			s.proc.Core.Charge(p.ReplFeedJitterCPU)
		}
		sl.client.conn.Send(b.Data)
	}
}

// cmdPSync implements the master side of the synchronization handshake:
// partial resync from the backlog when possible, full RDB transfer
// otherwise (paper §III-C initial synchronization, inherited from Redis).
func (s *Server) cmdPSync(c *client, argv [][]byte) {
	if len(argv) != 3 {
		s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'psync' command"))
		return
	}
	wantID := string(argv[1])
	wantOff, err := strconv.ParseInt(string(argv[2]), 10, 64)
	if err != nil {
		s.reply(c, resp.AppendError(nil, "ERR invalid offset"))
		return
	}
	// Flush any batched stream bytes first: the offsets snapshotted below
	// must cover everything already sent, or the joining slave would see
	// the pending batch twice (once in the backlog delta, once live).
	s.repl.Flush()
	c.isSlaveLink = true
	// The replication channel belongs to the dispatch proc — the merge stage
	// feeds it and the stream's costs stay on the serialized-order owner —
	// so a routing-plane connection hands itself back before the snapshot.
	s.disownClient(c)
	sl := &slaveHandle{client: c, addr: endpointName(c.conn.RemoteAddr())}
	// A slave that re-syncs on a fresh connection must not leave its old
	// handle behind: feedSlaves would keep charging CPU for and sending to
	// the dead channel forever. Dedupe by remote endpoint.
	s.dropSlaveHandle(sl.addr)
	if wantID == s.replID {
		if delta, okRange := s.backlog.Range(wantOff); okRange {
			// Partial resynchronization.
			s.acks.SetReplica(sl.addr, wantOff)
			s.slaves = append(s.slaves, sl)
			s.reply(c, resp.AppendSimple(nil, "CONTINUE"))
			if len(delta) > 0 {
				s.proc.Core.Charge(s.params.ReplFeedSlaveCPU)
				c.conn.Send(delta)
			}
			return
		}
	}
	// Full resynchronization: persist all data (the paper's step ②; the
	// fork plus serialization consume master CPU) and ship the RDB file.
	s.reply(c, resp.AppendSimple(nil, fmt.Sprintf("FULLRESYNC %s %d", s.replID, s.ReplOffset())))
	s.proc.Core.Charge(s.params.ForkCPU)
	dump := rdb.Dump(s.store)
	s.proc.Core.Charge(sim.Duration(float64(len(dump)) * s.params.RDBPerByte))
	s.acks.SetReplica(sl.addr, s.ReplOffset())
	s.slaves = append(s.slaves, sl)
	c.conn.Send(dump)
}

// endpointName strips the per-connection suffix ("host:#7", "host:qp3")
// from a transport address, leaving the fabric endpoint name: the identity
// a re-syncing slave keeps across connections.
func endpointName(addr string) string {
	if i := strings.IndexByte(addr, ':'); i >= 0 {
		return addr[:i]
	}
	return addr
}

// dropSlaveHandle removes any attached slave handle whose connection
// terminates at addr (a re-syncing slave superseding its old channel).
func (s *Server) dropSlaveHandle(addr string) {
	kept := s.slaves[:0]
	for _, sl := range s.slaves {
		if sl.addr == addr {
			continue
		}
		kept = append(kept, sl)
	}
	s.slaves = kept
	s.acks.DropReplica(addr)
}

// cmdReplConf handles REPLCONF; ACK carries the slave's replication
// progress (paper §III-C step ③: the progress report).
func (s *Server) cmdReplConf(c *client, argv [][]byte) {
	if len(argv) >= 3 && strings.EqualFold(string(argv[1]), "ACK") {
		off, err := strconv.ParseInt(string(argv[2]), 10, 64)
		if err == nil {
			for _, sl := range s.slaves {
				if sl.client == c {
					// Ack pushes progress into the consistency plane, which
					// fires whatever WAITs and parked replies it satisfies.
					s.acks.Ack(sl.addr, off)
				}
			}
		}
		return // ACK gets no reply
	}
	s.reply(c, resp.AppendSimple(nil, "OK"))
}

func (s *Server) cmdSlaveOf(c *client, argv [][]byte) {
	if len(argv) == 3 && strings.EqualFold(string(argv[1]), "NO") && strings.EqualFold(string(argv[2]), "ONE") {
		s.PromoteToMaster()
		s.reply(c, resp.AppendSimple(nil, "OK"))
		return
	}
	// In-simulation addressing is by endpoint, not hostname; the harness
	// wires replication via the SlaveOf API.
	s.reply(c, resp.AppendError(nil, "ERR use the SlaveOf API in simulation"))
}

// SlaveAckOffsets reports each attached slave's acknowledged offset (from
// the consistency tracker, in attach order).
func (s *Server) SlaveAckOffsets() []int64 { return s.acks.Offsets() }

// ---- Slave side ----

// linkState tracks the replication handshake progress.
type linkState int

const (
	linkConnecting linkState = iota
	linkWaitPsyncReply
	linkWaitRDB
	linkStreaming
)

// masterLink is the slave's connection to its master.
type masterLink struct {
	srv        *Server
	conn       transport.Conn
	targetEP   *fabric.Endpoint
	targetPort int
	state      linkState

	masterReplID string
	offset       int64
	// applier decodes the (possibly batched) replication stream: command
	// framing and SELECT context live in replstream, shared with the SKV
	// slave agent.
	applier *replstream.Applier
}

// MasterOffset reports the slave's replication offset (bytes of stream
// applied or in the query buffer).
func (s *Server) MasterOffset() int64 {
	if s.master == nil {
		return 0
	}
	return s.master.offset
}

// SyncedWithMaster reports whether the slave reached steady-state
// streaming.
func (s *Server) SyncedWithMaster() bool {
	return s.master != nil && s.master.state == linkStreaming
}

// SlaveOf connects this server as a slave of the given master endpoint
// (the SLAVEOF command's effect). Passing nil promotes to master.
func (s *Server) SlaveOf(target *fabric.Endpoint, port int) {
	if target == nil {
		s.PromoteToMaster()
		return
	}
	s.role = RoleSlave
	ml := &masterLink{srv: s, targetEP: target, targetPort: port, state: linkConnecting}
	ml.applier = replstream.NewApplier(func(db int, argv [][]byte) {
		// "Every time the slave node receives a new command, it executes
		// the command immediately to ensure that its data is consistent
		// with the master node."
		s.proc.Core.Charge(s.params.SlaveApplyCPU)
		s.store.Exec(db, argv)
	})
	// Carry over prior sync state for partial resynchronization.
	if s.master != nil {
		ml.masterReplID = s.master.masterReplID
		ml.offset = s.master.offset
	}
	s.master = ml
	s.stack.Dial(target, port, func(conn transport.Conn, err error) {
		if !s.alive || s.master != ml {
			return
		}
		if err != nil {
			// Master unreachable: retry after a beat (the paper's slave
			// checks for master info "at every certain interval").
			s.eng.After(500*sim.Millisecond, func() {
				if s.alive && s.master == ml {
					s.SlaveOf(target, port)
				}
			})
			return
		}
		ml.conn = conn
		conn.SetHandler(func(data []byte) { ml.onMessage(data) })
		conn.SetCloseHandler(func() {})
		id := ml.masterReplID
		if id == "" {
			id = "?"
		}
		ml.state = linkWaitPsyncReply
		s.proc.Core.Charge(s.params.ReplyBuildCPU)
		conn.Send(resp.EncodeCommand("PSYNC", id, strconv.FormatInt(ml.offset, 10)))
	})
}

// onMessage drives the slave-side sync state machine.
func (ml *masterLink) onMessage(data []byte) {
	s := ml.srv
	if !s.alive || s.master != ml {
		return
	}
	switch ml.state {
	case linkWaitPsyncReply:
		var r resp.Reader
		r.Feed(data)
		v, ok, err := r.ReadValue()
		if err != nil || !ok || v.Type != resp.TypeSimple {
			return
		}
		fields := strings.Fields(string(v.Str))
		switch {
		case len(fields) == 3 && fields[0] == "FULLRESYNC":
			ml.masterReplID = fields[1]
			off, _ := strconv.ParseInt(fields[2], 10, 64)
			ml.offset = off
			ml.state = linkWaitRDB
		case len(fields) >= 1 && fields[0] == "CONTINUE":
			ml.state = linkStreaming
		}
		// Any trailing bytes in the same message are stream data.
		if rest := data[len(data)-r.Buffered():]; len(rest) > 0 && ml.state == linkStreaming {
			ml.onMessage(rest)
		}
	case linkWaitRDB:
		// The RDB payload: charge load cost proportional to size.
		s.proc.Core.Charge(sim.Duration(float64(len(data)) * s.params.RDBPerByte))
		if err := rdb.Load(s.store, data); err != nil {
			// Corrupt transfer: restart sync from scratch.
			ml.masterReplID = ""
			ml.offset = 0
			s.SlaveOf(ml.targetEP, ml.targetPort)
			return
		}
		ml.state = linkStreaming
	case linkStreaming:
		ml.offset += int64(len(data))
		ml.applier.Feed(data)
	}
}

// sendAck reports replication progress to the master (REPLCONF ACK).
func (ml *masterLink) sendAck() {
	if ml.conn == nil || ml.state != linkStreaming {
		return
	}
	ml.srv.proc.Core.Charge(ml.srv.params.ReplyBuildCPU)
	ml.conn.Send(resp.EncodeCommand("REPLCONF", "ACK", strconv.FormatInt(ml.offset, 10)))
}
