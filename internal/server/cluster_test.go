package server

import (
	"fmt"
	"strings"
	"testing"

	"skv/internal/sim"
	"skv/internal/slots"
	"skv/internal/tcpsim"
)

// clusterServer builds a server attached to a routing table (optionally
// sharded, to cover the sequencedReply redirect path).
func clusterServer(w *world, name string, shards int, cr *ClusterRouting) *Server {
	m := w.net.NewMachine(name, false)
	core := sim.NewCore(w.eng, name+"-core", 1.0)
	proc := sim.NewProc(w.eng, core, w.p.TCPWakeup)
	stack := tcpsim.New(w.net, m.Host, proc)
	return New(Options{Name: name, Params: w.p, Seed: seed(name), Port: 6379,
		Shards: shards, Cluster: cr}, w.eng, stack, proc)
}

// twoGroupMap splits the slot space evenly between this node (group 0,
// address "self") and a remote group 1 at address "other".
func twoGroupMap(t *testing.T) *slots.Map {
	t.Helper()
	m, err := slots.NewMap(2, nil, []string{"self", "other"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Golden slot facts the tests lean on (pinned in internal/slots):
// Slot("bar")=5061 and Slot("hello")=866 → group 0 under an even 2-way
// split; Slot("foo")=12182 → group 1.

func TestClusterSlotCheckRedirects(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			w := newWorld(9)
			m := twoGroupMap(t)
			srv := clusterServer(w, "n0", shards, &ClusterRouting{Self: 0, Map: m, Port: 6379})
			c := w.dial(t, srv)

			if v := c.do(t, "SET", "bar", "v"); !v.IsOK() {
				t.Fatalf("SET of an owned key: %s", v.String())
			}
			if v := c.do(t, "GET", "bar"); v.String() != "v" {
				t.Fatalf("GET of an owned key: %s", v.String())
			}
			v := c.do(t, "SET", "foo", "v")
			if !v.IsError() || v.String() != "MOVED 12182 other:6379" {
				t.Fatalf("SET of a foreign key: %q", v.String())
			}
			if got := srv.Store().DBSize(0); got != 1 {
				t.Fatalf("foreign key executed anyway: dbsize=%d", got)
			}
			// Multi-key commands: same slot via hashtags works, spanning
			// slots is CROSSSLOT.
			if v := c.do(t, "MSET", "{bar}x", "1", "{bar}y", "2"); !v.IsOK() {
				t.Fatalf("same-slot MSET: %s", v.String())
			}
			v = c.do(t, "MSET", "bar", "1", "hello", "2")
			if !v.IsError() || !strings.HasPrefix(v.String(), "CROSSSLOT") {
				t.Fatalf("cross-slot MSET: %q", v.String())
			}
			// Keyless commands are never slot-checked.
			if v := c.do(t, "PING"); v.String() != "PONG" {
				t.Fatalf("PING: %s", v.String())
			}
			if n := srv.Metrics().Counter("server.cluster.moved").Value(); n != 1 {
				t.Fatalf("moved counter = %d, want 1", n)
			}
			if n := srv.Metrics().Counter("server.cluster.crossslot").Value(); n != 1 {
				t.Fatalf("crossslot counter = %d, want 1", n)
			}

			// Resharding the slot to this node (epoch bump) makes the same
			// key acceptable — the check reads the live shared table.
			if err := m.Assign(12182, 12182, 0); err != nil {
				t.Fatalf("Assign: %v", err)
			}
			if v := c.do(t, "SET", "foo", "v"); !v.IsOK() {
				t.Fatalf("SET after reshard: %s", v.String())
			}
		})
	}
}

func TestClusterCommand(t *testing.T) {
	w := newWorld(11)
	m := twoGroupMap(t)
	srv := clusterServer(w, "n0", 0, &ClusterRouting{Self: 0, Map: m, Port: 6379})
	c := w.dial(t, srv)

	if v := c.do(t, "CLUSTER", "KEYSLOT", "foo"); v.Int != 12182 {
		t.Fatalf("KEYSLOT foo = %s", v.String())
	}
	v := c.do(t, "CLUSTER", "SLOTS")
	if len(v.Array) != 2 {
		t.Fatalf("SLOTS returned %d ranges: %s", len(v.Array), v.String())
	}
	first := v.Array[0]
	if first.Array[0].Int != 0 || first.Array[1].Int != 8191 {
		t.Fatalf("first range: %s", first.String())
	}
	if got := first.Array[2].Array[0].String(); got != "self" {
		t.Fatalf("first range addr: %q", got)
	}
	if got := v.Array[1].Array[2].Array[0].String(); got != "other" {
		t.Fatalf("second range addr: %q", got)
	}
	info := c.do(t, "CLUSTER", "INFO").String()
	for _, want := range []string{"cluster_enabled:1", "cluster_slots_assigned:16384",
		"cluster_size:2", "cluster_my_group:0", "cluster_current_epoch:1"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
	if v := c.do(t, "CLUSTER", "NONSENSE"); !v.IsError() {
		t.Fatalf("unknown subcommand accepted: %s", v.String())
	}
}

// TestClusterCommandOutsideCluster: a single-master server still answers
// CLUSTER (clients probe it), reporting a disabled cluster, and never
// slot-checks commands.
func TestClusterCommandOutsideCluster(t *testing.T) {
	w := newWorld(13)
	srv := w.server("plain", 6379)
	c := w.dial(t, srv)

	if v := c.do(t, "SET", "foo", "v"); !v.IsOK() { // foreign in cluster mode
		t.Fatalf("SET: %s", v.String())
	}
	if v := c.do(t, "CLUSTER", "KEYSLOT", "foo"); v.Int != 12182 {
		t.Fatalf("KEYSLOT: %s", v.String())
	}
	if v := c.do(t, "CLUSTER", "SLOTS"); len(v.Array) != 0 || v.Null {
		t.Fatalf("SLOTS on plain server: %s", v.String())
	}
	info := c.do(t, "CLUSTER", "INFO").String()
	if !strings.Contains(info, "cluster_enabled:0") {
		t.Fatalf("INFO: %s", info)
	}
}

// TestClusterMigrationWindowSource covers the source side of a live slot
// migration at both pipeline shapes: present keys serve locally, absent
// keys ASK to the target, half-present multi-key commands get TRYAGAIN,
// the mover's data commands are exempt, and the SETSLOT NODE flip turns
// the slot's traffic into MOVED.
func TestClusterMigrationWindowSource(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			w := newWorld(17)
			m := twoGroupMap(t)
			srv := clusterServer(w, "n0", shards, &ClusterRouting{Self: 0, Map: m, Port: 6379})
			c := w.dial(t, srv)

			// Slot("bar") = 5061 is owned by group 0. Seed one present key.
			if v := c.do(t, "SET", "bar", "v"); !v.IsOK() {
				t.Fatalf("SET: %s", v.String())
			}
			if v := c.do(t, "CLUSTER", "SETSLOT", "5061", "MIGRATING", "1"); !v.IsOK() {
				t.Fatalf("SETSLOT MIGRATING: %s", v.String())
			}
			// Present key: served at the source, no redirect.
			if v := c.do(t, "GET", "bar"); v.String() != "v" {
				t.Fatalf("GET of a present migrating key: %s", v.String())
			}
			// Absent key in the migrating slot ({bar}gone co-locates): ASK.
			v := c.do(t, "GET", "{bar}gone")
			if !v.IsError() || v.String() != "ASK 5061 other:6379" {
				t.Fatalf("GET of an absent migrating key: %q", v.String())
			}
			// Writes to absent keys redirect too — new keys are born at the
			// target during the window.
			v = c.do(t, "SET", "{bar}new", "x")
			if !v.IsError() || v.String() != "ASK 5061 other:6379" {
				t.Fatalf("SET of an absent migrating key: %q", v.String())
			}
			// Half-present multi-key command: TRYAGAIN.
			v = c.do(t, "MGET", "bar", "{bar}gone")
			if !v.IsError() || !strings.HasPrefix(v.String(), "TRYAGAIN") {
				t.Fatalf("half-present MGET: %q", v.String())
			}
			// The mover's data plane answers absence directly.
			if v := c.do(t, "DUMP", "{bar}gone"); !v.Null {
				t.Fatalf("DUMP of an absent migrating key: %s", v.String())
			}
			// The migration surface reports the slot's keys.
			if v := c.do(t, "CLUSTER", "COUNTKEYSINSLOT", "5061"); v.Int != 1 {
				t.Fatalf("COUNTKEYSINSLOT: %s", v.String())
			}
			v = c.do(t, "CLUSTER", "GETKEYSINSLOT", "5061", "10")
			if len(v.Array) != 1 || v.Array[0].String() != "bar" {
				t.Fatalf("GETKEYSINSLOT: %s", v.String())
			}
			// Move the one key the way the mover does: DUMP + MIGRATEDEL.
			payload := c.do(t, "DUMP", "bar")
			if payload.Null {
				t.Fatal("DUMP of a present key returned nil")
			}
			if v := c.do(t, "MIGRATEDEL", "bar", string(payload.Str)); v.Int != 1 {
				t.Fatalf("MIGRATEDEL: %s", v.String())
			}
			// Now the key is absent: reads ASK.
			v = c.do(t, "GET", "bar")
			if !v.IsError() || v.String() != "ASK 5061 other:6379" {
				t.Fatalf("GET after the move: %q", v.String())
			}
			// The flip: subsequent traffic is MOVED, not ASK.
			epoch := m.Epoch()
			if v := c.do(t, "CLUSTER", "SETSLOT", "5061", "NODE", "1"); !v.IsOK() {
				t.Fatalf("SETSLOT NODE: %s", v.String())
			}
			if m.Epoch() <= epoch {
				t.Fatal("flip did not bump the epoch")
			}
			v = c.do(t, "GET", "bar")
			if !v.IsError() || v.String() != "MOVED 5061 other:6379" {
				t.Fatalf("GET after the flip: %q", v.String())
			}
			if n := srv.Metrics().Counter("server.cluster.asked").Value(); n != 3 {
				t.Fatalf("asked counter = %d, want 3", n)
			}
			if n := srv.Metrics().Counter("server.cluster.tryagain").Value(); n != 1 {
				t.Fatalf("tryagain counter = %d, want 1", n)
			}
		})
	}
}

// TestClusterMigrationWindowTarget covers the import side: without ASKING
// the un-owned slot redirects MOVED; after ASKING exactly one command is
// admitted (the flag is one-shot).
func TestClusterMigrationWindowTarget(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			w := newWorld(19)
			m := twoGroupMap(t)
			srv := clusterServer(w, "n0", shards, &ClusterRouting{Self: 0, Map: m, Port: 6379})
			c := w.dial(t, srv)

			// Slot("foo") = 12182 is owned by group 1; this node imports it.
			if v := c.do(t, "CLUSTER", "SETSLOT", "12182", "IMPORTING", "1"); !v.IsOK() {
				t.Fatalf("SETSLOT IMPORTING: %s", v.String())
			}
			// Without ASKING the table still rules: MOVED.
			v := c.do(t, "SET", "foo", "v1")
			if !v.IsError() || v.String() != "MOVED 12182 other:6379" {
				t.Fatalf("SET without ASKING: %q", v.String())
			}
			// ASKING admits the next command...
			if v := c.do(t, "ASKING"); !v.IsOK() {
				t.Fatalf("ASKING: %s", v.String())
			}
			if v := c.do(t, "SET", "foo", "v1"); !v.IsOK() {
				t.Fatalf("SET with ASKING: %s", v.String())
			}
			// ...and only the next command: the flag is one-shot.
			v = c.do(t, "GET", "foo")
			if !v.IsError() || v.String() != "MOVED 12182 other:6379" {
				t.Fatalf("GET after the one-shot expired: %q", v.String())
			}
			if v := c.do(t, "ASKING"); !v.IsOK() {
				t.Fatalf("ASKING: %s", v.String())
			}
			if v := c.do(t, "GET", "foo"); v.String() != "v1" {
				t.Fatalf("GET with ASKING: %s", v.String())
			}
			// ASKING does not bypass slots that are not importing.
			if v := c.do(t, "ASKING"); !v.IsOK() {
				t.Fatalf("ASKING: %s", v.String())
			}
			// Slot("qux") = 9995: group 1's, but not importing here.
			v = c.do(t, "SET", "qux", "x")
			if !v.IsError() || !strings.HasPrefix(v.String(), "MOVED") {
				t.Fatalf("ASKING admitted a non-importing foreign slot: %q", v.String())
			}
			if n := srv.Metrics().Counter("server.cluster.imported").Value(); n != 2 {
				t.Fatalf("imported counter = %d, want 2", n)
			}
			// SETSLOT validation: cannot import an owned slot or migrate a
			// foreign one.
			if v := c.do(t, "CLUSTER", "SETSLOT", "5061", "IMPORTING", "1"); !v.IsError() {
				t.Fatalf("IMPORTING an owned slot accepted: %s", v.String())
			}
			if v := c.do(t, "CLUSTER", "SETSLOT", "12182", "MIGRATING", "0"); !v.IsError() {
				t.Fatalf("MIGRATING a foreign slot accepted: %s", v.String())
			}
			if v := c.do(t, "CLUSTER", "SETSLOT", "99999", "NODE", "0"); !v.IsError() {
				t.Fatalf("NODE with an invalid slot accepted: %s", v.String())
			}
			// STABLE clears the import mark: ASKING no longer admits.
			if v := c.do(t, "CLUSTER", "SETSLOT", "12182", "STABLE"); !v.IsOK() {
				t.Fatalf("SETSLOT STABLE: %s", v.String())
			}
			if v := c.do(t, "ASKING"); !v.IsOK() {
				t.Fatalf("ASKING: %s", v.String())
			}
			v = c.do(t, "GET", "foo")
			if !v.IsError() || !strings.HasPrefix(v.String(), "MOVED") {
				t.Fatalf("GET after STABLE: %q", v.String())
			}
		})
	}
}

// TestClusterRedirectGrammar round-trips the wire grammar the slot clients
// parse.
func TestClusterRedirectGrammar(t *testing.T) {
	slot, addr, port, ok := slots.ParseRedirect(slots.MovedMessage(12182, "other", 6379))
	if !ok || slot != 12182 || addr != "other" || port != 6379 {
		t.Fatalf("parse failed: %d %q %d %t", slot, addr, port, ok)
	}
	if _, _, _, ok := slots.ParseRedirect("ERR something else"); ok {
		t.Fatal("garbage parsed as a redirect")
	}
}
