package server

import (
	"fmt"
	"strings"
	"testing"

	"skv/internal/sim"
	"skv/internal/slots"
	"skv/internal/tcpsim"
)

// clusterServer builds a server attached to a routing table (optionally
// sharded, to cover the sequencedReply redirect path).
func clusterServer(w *world, name string, shards int, cr *ClusterRouting) *Server {
	m := w.net.NewMachine(name, false)
	core := sim.NewCore(w.eng, name+"-core", 1.0)
	proc := sim.NewProc(w.eng, core, w.p.TCPWakeup)
	stack := tcpsim.New(w.net, m.Host, proc)
	return New(Options{Name: name, Params: w.p, Seed: seed(name), Port: 6379,
		Shards: shards, Cluster: cr}, w.eng, stack, proc)
}

// twoGroupMap splits the slot space evenly between this node (group 0,
// address "self") and a remote group 1 at address "other".
func twoGroupMap(t *testing.T) *slots.Map {
	t.Helper()
	m, err := slots.NewMap(2, nil, []string{"self", "other"})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// Golden slot facts the tests lean on (pinned in internal/slots):
// Slot("bar")=5061 and Slot("hello")=866 → group 0 under an even 2-way
// split; Slot("foo")=12182 → group 1.

func TestClusterSlotCheckRedirects(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			w := newWorld(9)
			m := twoGroupMap(t)
			srv := clusterServer(w, "n0", shards, &ClusterRouting{Self: 0, Map: m, Port: 6379})
			c := w.dial(t, srv)

			if v := c.do(t, "SET", "bar", "v"); !v.IsOK() {
				t.Fatalf("SET of an owned key: %s", v.String())
			}
			if v := c.do(t, "GET", "bar"); v.String() != "v" {
				t.Fatalf("GET of an owned key: %s", v.String())
			}
			v := c.do(t, "SET", "foo", "v")
			if !v.IsError() || v.String() != "MOVED 12182 other:6379" {
				t.Fatalf("SET of a foreign key: %q", v.String())
			}
			if got := srv.Store().DBSize(0); got != 1 {
				t.Fatalf("foreign key executed anyway: dbsize=%d", got)
			}
			// Multi-key commands: same slot via hashtags works, spanning
			// slots is CROSSSLOT.
			if v := c.do(t, "MSET", "{bar}x", "1", "{bar}y", "2"); !v.IsOK() {
				t.Fatalf("same-slot MSET: %s", v.String())
			}
			v = c.do(t, "MSET", "bar", "1", "hello", "2")
			if !v.IsError() || !strings.HasPrefix(v.String(), "CROSSSLOT") {
				t.Fatalf("cross-slot MSET: %q", v.String())
			}
			// Keyless commands are never slot-checked.
			if v := c.do(t, "PING"); v.String() != "PONG" {
				t.Fatalf("PING: %s", v.String())
			}
			if n := srv.Metrics().Counter("server.cluster.moved").Value(); n != 1 {
				t.Fatalf("moved counter = %d, want 1", n)
			}
			if n := srv.Metrics().Counter("server.cluster.crossslot").Value(); n != 1 {
				t.Fatalf("crossslot counter = %d, want 1", n)
			}

			// Resharding the slot to this node (epoch bump) makes the same
			// key acceptable — the check reads the live shared table.
			m.Assign(12182, 12182, 0)
			if v := c.do(t, "SET", "foo", "v"); !v.IsOK() {
				t.Fatalf("SET after reshard: %s", v.String())
			}
		})
	}
}

func TestClusterCommand(t *testing.T) {
	w := newWorld(11)
	m := twoGroupMap(t)
	srv := clusterServer(w, "n0", 0, &ClusterRouting{Self: 0, Map: m, Port: 6379})
	c := w.dial(t, srv)

	if v := c.do(t, "CLUSTER", "KEYSLOT", "foo"); v.Int != 12182 {
		t.Fatalf("KEYSLOT foo = %s", v.String())
	}
	v := c.do(t, "CLUSTER", "SLOTS")
	if len(v.Array) != 2 {
		t.Fatalf("SLOTS returned %d ranges: %s", len(v.Array), v.String())
	}
	first := v.Array[0]
	if first.Array[0].Int != 0 || first.Array[1].Int != 8191 {
		t.Fatalf("first range: %s", first.String())
	}
	if got := first.Array[2].Array[0].String(); got != "self" {
		t.Fatalf("first range addr: %q", got)
	}
	if got := v.Array[1].Array[2].Array[0].String(); got != "other" {
		t.Fatalf("second range addr: %q", got)
	}
	info := c.do(t, "CLUSTER", "INFO").String()
	for _, want := range []string{"cluster_enabled:1", "cluster_slots_assigned:16384",
		"cluster_size:2", "cluster_my_group:0", "cluster_current_epoch:1"} {
		if !strings.Contains(info, want) {
			t.Fatalf("INFO missing %q:\n%s", want, info)
		}
	}
	if v := c.do(t, "CLUSTER", "NONSENSE"); !v.IsError() {
		t.Fatalf("unknown subcommand accepted: %s", v.String())
	}
}

// TestClusterCommandOutsideCluster: a single-master server still answers
// CLUSTER (clients probe it), reporting a disabled cluster, and never
// slot-checks commands.
func TestClusterCommandOutsideCluster(t *testing.T) {
	w := newWorld(13)
	srv := w.server("plain", 6379)
	c := w.dial(t, srv)

	if v := c.do(t, "SET", "foo", "v"); !v.IsOK() { // foreign in cluster mode
		t.Fatalf("SET: %s", v.String())
	}
	if v := c.do(t, "CLUSTER", "KEYSLOT", "foo"); v.Int != 12182 {
		t.Fatalf("KEYSLOT: %s", v.String())
	}
	if v := c.do(t, "CLUSTER", "SLOTS"); len(v.Array) != 0 || v.Null {
		t.Fatalf("SLOTS on plain server: %s", v.String())
	}
	info := c.do(t, "CLUSTER", "INFO").String()
	if !strings.Contains(info, "cluster_enabled:0") {
		t.Fatalf("INFO: %s", info)
	}
}

// TestClusterRedirectGrammar round-trips the wire grammar the slot clients
// parse.
func TestClusterRedirectGrammar(t *testing.T) {
	slot, addr, port, ok := slots.ParseRedirect(slots.MovedMessage(12182, "other", 6379))
	if !ok || slot != 12182 || addr != "other" || port != 6379 {
		t.Fatalf("parse failed: %d %q %d %t", slot, addr, port, ok)
	}
	if _, _, _, ok := slots.ParseRedirect("ERR something else"); ok {
		t.Fatal("garbage parsed as a redirect")
	}
}
