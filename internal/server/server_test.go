package server

import (
	"strings"
	"testing"

	"skv/internal/fabric"
	"skv/internal/model"
	"skv/internal/replstream"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/tcpsim"
	"skv/internal/transport"
)

// world wires an engine, fabric and helper constructors for server tests.
type world struct {
	eng *sim.Engine
	net *fabric.Network
	p   *model.Params
}

func newWorld(seed int64) *world {
	eng := sim.New(seed)
	p := model.Default()
	return &world{eng: eng, net: fabric.New(eng, &p), p: &p}
}

// run advances the simulation a bounded slice of virtual time (the cron
// time events keep the queue non-empty forever, so Run(0) would not
// return).
func (w *world) run() { w.eng.Run(w.eng.Now().Add(500 * sim.Millisecond)) }

func (w *world) server(name string, port int) *Server {
	m := w.net.NewMachine(name, false)
	core := sim.NewCore(w.eng, name+"-core", 1.0)
	proc := sim.NewProc(w.eng, core, w.p.TCPWakeup)
	stack := tcpsim.New(w.net, m.Host, proc)
	return New(Options{Name: name, Params: w.p, Seed: seed(name), Port: port}, w.eng, stack, proc)
}

func seed(name string) int64 {
	var s int64
	for _, c := range name {
		s = s*31 + int64(c)
	}
	return s
}

// scriptClient drives a server over the simulated fabric.
type scriptClient struct {
	w      *world
	conn   transport.Conn
	reader resp.Reader
	got    []resp.Value
}

func (w *world) dial(t *testing.T, srv *Server) *scriptClient {
	t.Helper()
	m := w.net.NewMachine("cli-"+srv.Name()+nextID(), false)
	core := sim.NewCore(w.eng, m.Name+"-core", 1.0)
	proc := sim.NewProc(w.eng, core, w.p.TCPWakeup)
	stack := tcpsim.New(w.net, m.Host, proc)
	sc := &scriptClient{w: w}
	stack.Dial(srv.Stack().Endpoint(), srv.Port(), func(c transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		sc.conn = c
		c.SetHandler(func(data []byte) {
			sc.reader.Feed(data)
			for {
				v, ok, err := sc.reader.ReadValue()
				if err != nil || !ok {
					return
				}
				sc.got = append(sc.got, v)
			}
		})
	})
	w.run()
	if sc.conn == nil {
		t.Fatal("client never connected")
	}
	return sc
}

var idCounter int

func nextID() string {
	idCounter++
	return string(rune('a' + idCounter%26))
}

// do sends a command and runs the engine until quiescent, returning the
// last reply received.
func (sc *scriptClient) do(t *testing.T, args ...string) resp.Value {
	t.Helper()
	before := len(sc.got)
	sc.w.eng.After(0, func() { sc.conn.Send(resp.EncodeCommand(args...)) })
	sc.w.eng.Run(sc.w.eng.Now().Add(50 * sim.Millisecond))
	if len(sc.got) <= before {
		t.Fatalf("no reply to %v", args)
	}
	return sc.got[len(sc.got)-1]
}

func TestServerExecutesCommands(t *testing.T) {
	w := newWorld(1)
	srv := w.server("s", 6379)
	c := w.dial(t, srv)
	if v := c.do(t, "SET", "k", "v"); !v.IsOK() {
		t.Fatalf("SET: %s", v.String())
	}
	if v := c.do(t, "GET", "k"); v.String() != "v" {
		t.Fatalf("GET: %s", v.String())
	}
	if srv.CommandsProcessed < 2 {
		t.Fatalf("CommandsProcessed=%d", srv.CommandsProcessed)
	}
}

func TestServerSelect(t *testing.T) {
	w := newWorld(2)
	srv := w.server("s", 6379)
	c := w.dial(t, srv)
	c.do(t, "SET", "k", "db0")
	if v := c.do(t, "SELECT", "1"); !v.IsOK() {
		t.Fatalf("SELECT: %s", v.String())
	}
	if v := c.do(t, "GET", "k"); !v.Null {
		t.Fatalf("db1 GET: %s", v.String())
	}
	if v := c.do(t, "SELECT", "99"); !v.IsError() {
		t.Fatal("SELECT 99 accepted")
	}
}

func TestSlaveRefusesWrites(t *testing.T) {
	w := newWorld(3)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	if !slave.SyncedWithMaster() {
		t.Fatal("slave did not sync")
	}
	c := w.dial(t, slave)
	if v := c.do(t, "SET", "k", "v"); !v.IsError() || !strings.Contains(v.String(), "READONLY") {
		t.Fatalf("slave write: %s", v.String())
	}
	if v := c.do(t, "GET", "anything"); v.IsError() {
		t.Fatalf("slave read refused: %s", v.String())
	}
}

func TestFullResyncTransfersDataset(t *testing.T) {
	w := newWorld(4)
	master := w.server("m", 6379)
	c := w.dial(t, master)
	for i := 0; i < 50; i++ {
		c.do(t, "SET", "key"+nextID()+string(rune('0'+i%10)), "value")
	}
	preKeys := master.Store().DBSize(0)
	if preKeys == 0 {
		t.Fatal("no keys on master")
	}
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	if !slave.SyncedWithMaster() {
		t.Fatal("slave did not sync")
	}
	if got := slave.Store().DBSize(0); got != preKeys {
		t.Fatalf("slave keys=%d master=%d after full resync", got, preKeys)
	}
	// Steady state: a new write reaches the slave.
	c.do(t, "SET", "fresh", "val")
	reply, _ := slave.Store().Exec(0, [][]byte{[]byte("GET"), []byte("fresh")})
	if string(reply) != "$3\r\nval\r\n" {
		t.Fatalf("steady-state propagation: %q", reply)
	}
}

func TestPartialResyncViaBacklog(t *testing.T) {
	w := newWorld(5)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	c.do(t, "SET", "a", "1")

	// Knock the slave out, write more, then recover: the gap fits in the
	// backlog so the slave must take the CONTINUE path (no RDB load).
	slave.Crash()
	c.do(t, "SET", "b", "2")
	c.do(t, "SET", "c", "3")
	slave.Recover()
	w.run()
	if !slave.SyncedWithMaster() {
		t.Fatal("slave did not resync")
	}
	for _, k := range []string{"a", "b", "c"} {
		reply, _ := slave.Store().Exec(0, [][]byte{[]byte("GET"), []byte(k)})
		if reply[0] != '$' || string(reply) == "$-1\r\n" {
			t.Fatalf("key %s missing after partial resync: %q", k, reply)
		}
	}
}

func TestSlaveAcksAdvanceMasterView(t *testing.T) {
	w := newWorld(6)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	for i := 0; i < 20; i++ {
		c.do(t, "SET", "k", "v")
	}
	// Run past a cron period so the slave sends REPLCONF ACK.
	w.eng.Run(w.eng.Now().Add(300 * sim.Millisecond))
	offs := master.SlaveAckOffsets()
	if len(offs) != 1 {
		t.Fatalf("slave handles: %d", len(offs))
	}
	if offs[0] != master.ReplOffset() {
		t.Fatalf("ack offset %d != master offset %d", offs[0], master.ReplOffset())
	}
}

func TestWriteGateBlocksWrites(t *testing.T) {
	w := newWorld(7)
	srv := w.server("s", 6379)
	srv.WriteGate = func() string { return "NOREPLICAS nope" }
	c := w.dial(t, srv)
	if v := c.do(t, "SET", "k", "v"); !v.IsError() {
		t.Fatalf("gated write accepted: %s", v.String())
	}
	if v := c.do(t, "GET", "k"); v.IsError() {
		t.Fatal("gate must not block reads")
	}
	if srv.ErrRepliesSent == 0 {
		t.Fatal("ErrRepliesSent not counted")
	}
}

func TestOnPropagateHookReplacesFanout(t *testing.T) {
	w := newWorld(8)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	var hooked []replstream.Batch
	master.OnPropagate = func(b replstream.Batch) { hooked = append(hooked, b) }
	c := w.dial(t, master)
	c.do(t, "SET", "k", "v")
	if len(hooked) != 1 {
		t.Fatalf("hook called %d times", len(hooked))
	}
	// The default fan-out must NOT have run: slave never saw the write.
	reply, _ := slave.Store().Exec(0, [][]byte{[]byte("GET"), []byte("k")})
	if string(reply) != "$-1\r\n" {
		t.Fatal("default fan-out ran despite OnPropagate hook")
	}
	// But the backlog was still appended (offsets must advance).
	if master.ReplOffset() == 0 {
		t.Fatal("backlog not written")
	}
}

func TestProtocolErrorClosesConnection(t *testing.T) {
	w := newWorld(9)
	srv := w.server("s", 6379)
	c := w.dial(t, srv)
	w.eng.After(0, func() { c.conn.Send([]byte("*1\r\n:5\r\n")) }) // ints not allowed in commands
	w.run()
	if len(c.got) == 0 || !c.got[len(c.got)-1].IsError() {
		t.Fatal("no protocol error reply")
	}
}

func TestUnknownAndPingCommands(t *testing.T) {
	w := newWorld(10)
	srv := w.server("s", 6379)
	c := w.dial(t, srv)
	if v := c.do(t, "PING"); v.String() != "PONG" {
		t.Fatalf("PING: %s", v.String())
	}
	if v := c.do(t, "WHATISTHIS"); !v.IsError() {
		t.Fatal("unknown command accepted")
	}
}

func TestCrashStopsProcessingRecoverResumes(t *testing.T) {
	w := newWorld(11)
	srv := w.server("s", 6379)
	c := w.dial(t, srv)
	c.do(t, "SET", "k", "1")
	srv.Crash()
	before := len(c.got)
	w.eng.After(0, func() { c.conn.Send(resp.EncodeCommand("GET", "k")) })
	w.run()
	if len(c.got) != before {
		t.Fatal("crashed server replied")
	}
	srv.Recover()
	if v := c.do(t, "GET", "k"); v.String() != "1" {
		t.Fatalf("after recover: %s", v.String())
	}
}

func TestRoleTransitions(t *testing.T) {
	w := newWorld(12)
	srv := w.server("s", 6379)
	if srv.Role() != RoleMaster {
		t.Fatal("fresh server should be master")
	}
	srv.SetRole(RoleSlave)
	if srv.Role() != RoleSlave || srv.Role().String() != "slave" {
		t.Fatal("SetRole failed")
	}
	changed := false
	srv.OnRoleChange = func(r Role) { changed = r == RoleMaster }
	srv.PromoteToMaster()
	if !changed || srv.Role() != RoleMaster {
		t.Fatal("promotion failed")
	}
}

func TestSlaveOfCommandNoOne(t *testing.T) {
	w := newWorld(13)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, slave)
	if v := c.do(t, "SLAVEOF", "NO", "ONE"); !v.IsOK() {
		t.Fatalf("SLAVEOF NO ONE: %s", v.String())
	}
	if slave.Role() != RoleMaster {
		t.Fatal("SLAVEOF NO ONE did not promote")
	}
	if v := c.do(t, "SET", "now-writable", "1"); !v.IsOK() {
		t.Fatalf("write after promotion: %s", v.String())
	}
}

func TestSelectPropagatesInReplicationStream(t *testing.T) {
	w := newWorld(14)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	c.do(t, "SELECT", "2")
	c.do(t, "SET", "indb2", "yes")
	c.do(t, "SELECT", "0")
	c.do(t, "SET", "indb0", "yes")
	w.run()
	r2, _ := slave.Store().Exec(2, [][]byte{[]byte("GET"), []byte("indb2")})
	r0, _ := slave.Store().Exec(0, [][]byte{[]byte("GET"), []byte("indb0")})
	if string(r2) != "$3\r\nyes\r\n" {
		t.Fatalf("db2 write not replicated to slave db2: %q", r2)
	}
	if string(r0) != "$3\r\nyes\r\n" {
		t.Fatalf("db0 write after SELECT-back not replicated: %q", r0)
	}
	rWrong, _ := slave.Store().Exec(0, [][]byte{[]byte("GET"), []byte("indb2")})
	if string(rWrong) != "$-1\r\n" {
		t.Fatal("db2 key leaked into slave db0")
	}
}

func TestExpiryReplicates(t *testing.T) {
	w := newWorld(15)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	c.do(t, "SET", "k", "v")
	c.do(t, "PEXPIRE", "k", "200")
	w.run() // 500ms ≫ 200ms TTL
	reply, _ := slave.Store().Exec(0, [][]byte{[]byte("GET"), []byte("k")})
	if string(reply) != "$-1\r\n" {
		t.Fatalf("expired key still on slave: %q", reply)
	}
}

func TestWaitCommandBaseline(t *testing.T) {
	w := newWorld(16)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	c.do(t, "SET", "k", "v")
	// One replica must acknowledge within a cron period (ACK every 100ms);
	// the WAIT reply is deferred, so run past the ACK.
	waitFor := func(args ...string) resp.Value {
		before := len(c.got)
		w.eng.After(0, func() { c.conn.Send(resp.EncodeCommand(args...)) })
		w.eng.Run(w.eng.Now().Add(700 * sim.Millisecond))
		if len(c.got) <= before {
			t.Fatalf("no reply to %v", args)
		}
		return c.got[len(c.got)-1]
	}
	v := waitFor("WAIT", "1", "500")
	if v.Type != resp.TypeInteger || v.Int < 1 {
		t.Fatalf("WAIT 1: %s", v.String())
	}
	// Asking for more replicas than exist must time out with the count.
	v = waitFor("WAIT", "5", "200")
	if v.Type != resp.TypeInteger || v.Int >= 5 {
		t.Fatalf("WAIT 5 should time out with <5: %s", v.String())
	}
}

func TestWaitRejectsOnSlaveAndBadArgs(t *testing.T) {
	w := newWorld(17)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, slave)
	if v := c.do(t, "WAIT", "1", "10"); !v.IsError() {
		t.Fatalf("WAIT on replica: %s", v.String())
	}
	cm := w.dial(t, master)
	if v := cm.do(t, "WAIT", "x", "10"); !v.IsError() {
		t.Fatalf("WAIT bad arg: %s", v.String())
	}
	if v := cm.do(t, "WAIT", "1"); !v.IsError() {
		t.Fatalf("WAIT arity: %s", v.String())
	}
}

func TestWaitZeroReplicasImmediate(t *testing.T) {
	w := newWorld(18)
	master := w.server("m", 6379)
	c := w.dial(t, master)
	if v := c.do(t, "WAIT", "0", "0"); v.Type != resp.TypeInteger || v.Int != 0 {
		t.Fatalf("WAIT 0 0: %s", v.String())
	}
}
