package server

// The sharded dispatch plane (HostShards > 1): the server's original proc
// becomes a dispatch stage that parses RESP and routes each command by key
// hash to one of N shard procs, each pinned to its own core and owning a
// disjoint slice of every numbered database. Completed commands merge back
// on the dispatch proc, which propagates writes into the replication stream
// in a single deterministic serialized order — so the backlog, offsets,
// WAIT, PSYNC, and the Nic-KV offload path are byte-for-byte the same
// pipeline the single-threaded server feeds.
//
// Ordering rules:
//
//   - Single-shard key commands route to their shard's proc and execute in
//     arrival order per shard (same key ⇒ same shard ⇒ client order kept).
//   - Replies re-sequence per client: a command's reply is held until every
//     earlier command from that client has replied, so pipelined clients
//     see RESP replies in request order even when shards finish out of
//     order.
//   - Cross-shard commands (KEYS, DBSIZE, FLUSHALL/FLUSHDB, SCAN,
//     RANDOMKEY, multi-shard MSET/DEL/MGET, ...) and ordering-sensitive
//     server commands (PSYNC, SLAVEOF) are barriers: they wait until
//     every routed command has executed AND merged (inflight == 0), then
//     run inline on the dispatch proc. While a barrier waits, later
//     arrivals from every client queue behind it, preserving the global
//     arrival order around the fence.
//   - WAIT is fence-free: each write's merge records its replication
//     offset on the issuing client (the consistency tracker's per-owner
//     write offset), so WAIT only needs its own client's preceding
//     commands merged. It runs at its reply turn in the client's sequence
//     (parked in client.gated if earlier commands are still in flight) and
//     never quiesces the other clients' traffic.
//   - Quorum writes (WriteConsistency != async) are likewise
//     sequence-ordered but fence-free: the write executes and merges
//     normally, but its reply parks on the consistency tracker holding its
//     re-sequencer turn until W replicas acknowledge the write's offset.
//   - Connection-state commands (SELECT, REPLCONF, PING, ECHO, INFO) run
//     inline on the dispatch proc without fencing; their replies still
//     re-sequence.
//
// The routing plane (RouteListeners > 1, requires HostShards > 1) splits
// the front half of the dispatch stage — transport receive, RESP parse,
// classification, shard handoff, inline execution, and reply emission —
// across N routing procs, each on its own core, with client connections
// pinned round-robin at accept. The dispatch proc is demoted to a thin
// merge/order stage: it keeps ONLY the serialized replication order (merge
// + propagate), write gating and barrier admission, and the replication
// channels themselves (PSYNC links hand themselves back via disownClient).
// Admission is multi-producer — routing procs call route() from their own
// events — but order stays deterministic because every event interleaves
// through the one engine queue, and the merge stage remains the single
// serialization point. Barriers from a routing proc never run on the
// routing event: they defer to the dispatch proc (holdq + drainHeld), so a
// quiesced-pipeline command always executes where the pipeline is visible.
//
// All of this is virtual-time concurrency inside one goroutine: the shard
// and routing procs interleave deterministically through the engine's event
// queue, so two identical runs merge (and therefore replicate) in identical
// order.

import (
	"skv/internal/metrics"
	"skv/internal/sim"
	"skv/internal/store"
	"skv/internal/transport"
)

// command admission classes.
const (
	classInline = iota
	classRouted
	classBarrier
	// classWait: WAIT is sequence-ordered but fence-free. Each write's
	// merge already recorded its replication offset on the issuing client
	// (the consistency tracker), so WAIT only needs to run after the
	// client's preceding commands have merged — not after the whole
	// pipeline drains. It executes on the dispatch proc at its reply turn,
	// parked in client.gated until then.
	classWait
)

// heldCmd is one command queued behind a pending barrier.
type heldCmd struct {
	c    *client
	cmd  *store.Command
	argv [][]byte
}

// shardEngine is the per-server sharding state: shard procs, per-shard
// instrument registries, the barrier hold queue, and the inline reply
// capture used for re-sequencing.
type shardEngine struct {
	s     *Server
	procs []*sim.Proc
	regs  []*metrics.Registry

	// Routing plane (RouteListeners > 1): per-listener procs, registries,
	// and instruments. Empty slices = dispatch-owned pipeline (legacy).
	routeProcs []*sim.Proc
	routeRegs  []*metrics.Registry
	routeCmds  []*metrics.Counter
	routeConns []*metrics.Counter
	nextRoute  int

	// Per-shard instruments (resolved once; the hot path never rebuilds
	// names).
	shardCmds []*metrics.Counter
	shardExec []*metrics.LatencyHist
	shardKeys []*metrics.Gauge

	// Dispatch-plane instruments.
	routed  *metrics.Counter
	inlined *metrics.Counter
	fenced  *metrics.Counter
	waits   *metrics.Counter

	// inflight counts commands routed to a shard whose merge has not yet
	// run. Barriers wait for zero.
	inflight int
	holding  bool
	holdq    []heldCmd

	// Inline reply capture: while an inline command executes out of reply
	// order, s.reply diverts its bytes here instead of the connection.
	capturing bool
	capClient *client
	capBuf    []byte

	// Barrier park context: while a barrier command executes, execute()'s
	// write-gating path can park its reply on the consistency tracker
	// instead of emitting it. barrierParked tells runBarrier to leave the
	// re-sequencer turn open; the parked fire completes it.
	barrierC      *client
	barrierSeq    uint64
	barrierParked bool
}

func newShardEngine(s *Server, name string, shards, listeners int) *shardEngine {
	e := &shardEngine{s: s}
	for i := 0; i < shards; i++ {
		core := sim.NewCore(s.eng, shardCoreName(name, i), s.params.HostCoreSpeed)
		e.procs = append(e.procs, sim.NewProc(s.eng, core, s.proc.WakeupCost))
		reg := metrics.NewRegistry(shardCoreNamePrefix(name, i), s.eng.Now)
		e.regs = append(e.regs, reg)
		e.shardCmds = append(e.shardCmds, reg.Counter("shard.cmds"))
		e.shardExec = append(e.shardExec, reg.Histogram("shard.exec"))
		e.shardKeys = append(e.shardKeys, reg.Gauge("shard.keys"))
	}
	// The routing plane only exists with listeners > 1: a single listener
	// would be the dispatch proc wearing a different name, and keeping the
	// plane strictly off preserves the legacy pipeline bit-for-bit.
	if listeners > 1 {
		for i := 0; i < listeners; i++ {
			core := sim.NewCore(s.eng, routeCoreName(name, i), s.params.HostCoreSpeed)
			e.routeProcs = append(e.routeProcs, sim.NewProc(s.eng, core, s.proc.WakeupCost))
			reg := metrics.NewRegistry(routeCoreNamePrefix(name, i), s.eng.Now)
			e.routeRegs = append(e.routeRegs, reg)
			e.routeCmds = append(e.routeCmds, reg.Counter("route.cmds"))
			e.routeConns = append(e.routeConns, reg.Counter("route.conns"))
		}
		// The demoted dispatch proc owns no connections: nothing arrives on
		// an epoll fd or completion channel it could block on — only merge
		// posts from the shard procs. A dedicated merge stage busy-polls its
		// queue (the DPDK/SPDK reactor discipline), so it stops paying the
		// completion-channel wake on every idle→busy transition that the
		// connection-owning PR-5 dispatch proc had to pay. The routing procs
		// keep the blocking wakeup — they DO own connections.
		s.proc.WakeupCost = 0
	}
	e.routed = s.metrics.Counter("server.shard.routed")
	e.inlined = s.metrics.Counter("server.shard.inline")
	e.fenced = s.metrics.Counter("server.shard.barriers")
	e.waits = s.metrics.Counter("server.shard.waits")
	return e
}

func shardCoreName(name string, i int) string {
	return shardCoreNamePrefix(name, i) + "-core"
}

func shardCoreNamePrefix(name string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return name + "/shard" + digits[i:i+1]
	}
	return name + "/shard" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}

func routeCoreName(name string, i int) string {
	return routeCoreNamePrefix(name, i) + "-core"
}

func routeCoreNamePrefix(name string, i int) string {
	const digits = "0123456789"
	if i < 10 {
		return name + "/route" + digits[i:i+1]
	}
	return name + "/route" + digits[i/10:i/10+1] + digits[i%10:i%10+1]
}

// routing reports whether the routing plane is on (RouteListeners > 1).
func (e *shardEngine) routing() bool { return len(e.routeProcs) > 0 }

// adoptClient pins a freshly accepted connection to a routing proc,
// round-robin: the proc delivers the connection's reads, and its core is
// charged for the receive path, parse, routing, inline execution, and
// reply emission. No-op with the routing plane off.
func (e *shardEngine) adoptClient(c *client) {
	if !e.routing() {
		return
	}
	i := e.nextRoute
	e.nextRoute = (e.nextRoute + 1) % len(e.routeProcs)
	c.owner = e.routeProcs[i]
	c.route = i + 1
	e.routeConns[i].Inc()
	if pa, ok := c.conn.(transport.ProcAssignable); ok {
		pa.AssignProc(c.owner)
	}
}

// route is the sharded continuation of dispatchCommand: parse cost is
// already charged (on the routing core when the routing plane owns the
// connection); decide where the command runs. Multi-producer: routing
// procs call this from their own events, the dispatch proc from its own —
// arrival order across producers is the engine's deterministic event order.
func (e *shardEngine) route(c *client, cmd *store.Command, argv [][]byte) {
	if c.route > 0 {
		e.routeCmds[c.route-1].Inc()
	}
	if e.holding {
		e.holdq = append(e.holdq, heldCmd{c: c, cmd: cmd, argv: argv})
		return
	}
	e.admitFrom(c, cmd, argv, false)
}

// admitFrom classifies and launches one command. onDispatch is true when
// the caller is the dispatch proc's own event (the barrier drain): with
// the routing plane on, a barrier is only ever EXECUTED from there —
// admitted from a routing proc it always defers through the hold queue,
// even at inflight == 0, so quiesced-pipeline commands run on the stage
// that owns the serialized order (and never re-defer themselves forever).
func (e *shardEngine) admitFrom(c *client, cmd *store.Command, argv [][]byte, onDispatch bool) {
	s := e.s
	// Write gating stays on the dispatch plane, before routing, exactly
	// where the single-threaded server checks it.
	if cmd != nil && cmd.Write && !cmd.Server {
		if s.role == RoleSlave {
			e.sequencedReply(c, readonlyError())
			return
		}
		if s.WriteGate != nil {
			if msg := s.WriteGate(); msg != "" {
				s.ErrRepliesSent++
				e.sequencedReply(c, gateError(msg))
				return
			}
		}
	}
	class, si := e.classify(cmd, argv)
	switch class {
	case classRouted:
		e.runShard(c, cmd, argv, si)
	case classWait:
		e.runWait(c, cmd, argv)
	case classBarrier:
		if e.inflight == 0 && (!e.routing() || onDispatch) {
			e.runBarrier(c, cmd, argv)
			return
		}
		e.holding = true
		e.holdq = append(e.holdq, heldCmd{c: c, cmd: cmd, argv: argv})
		if e.routing() && e.inflight == 0 {
			// Nothing will merge to trigger the drain: hand off now.
			e.s.proc.Post(0, e.drainHeld)
		}
	default:
		e.runInline(c, cmd, argv)
	}
}

// classify decides a command's admission class and, for routed commands,
// its target shard.
func (e *shardEngine) classify(cmd *store.Command, argv [][]byte) (int, int) {
	if cmd == nil {
		return classInline, 0 // unknown command: error reply, no keyspace
	}
	if cmd.Server {
		switch cmd.Name {
		case "psync", "slaveof", "replicaof":
			// Ordering-sensitive: PSYNC snapshots the keyspace and stream
			// offset, SLAVEOF flips the role. Both must observe a quiesced
			// pipeline.
			return classBarrier, 0
		case "wait":
			// Fence-free: the target offset is the caller's own last-write
			// offset, recorded at each write's merge; no global quiesce
			// needed.
			return classWait, 0
		case "cluster":
			if len(argv) >= 2 {
				switch string(argv[1]) {
				case "setslot", "SETSLOT", "getkeysinslot", "GETKEYSINSLOT",
					"countkeysinslot", "COUNTKEYSINSLOT":
					// Migration control plane: SETSLOT NODE flips slot
					// ownership and GETKEYSINSLOT decides the mover's
					// termination — both must observe a quiesced pipeline so
					// no in-flight command straddles the state change.
					return classBarrier, 0
				}
			}
			return classInline, 0 // keyslot, slots, info
		}
		return classInline, 0 // select, replconf, asking, skv.consistency
	}
	if cmd.FirstKey <= 0 {
		switch cmd.Name {
		case "ping", "echo", "info":
			return classInline, 0
		}
		// Whole-keyspace commands: KEYS, DBSIZE, SCAN, RANDOMKEY,
		// FLUSHDB, FLUSHALL.
		return classBarrier, 0
	}
	si := -1
	multi := false
	cmd.EachKey(argv, func(k []byte) {
		ks := store.ShardOfKey(k, len(e.procs))
		if si == -1 {
			si = ks
		} else if ks != si {
			multi = true
		}
	})
	if si == -1 {
		return classInline, 0 // too few args: store replies with arity error
	}
	if multi {
		return classBarrier, 0 // keys span shards: fence and run fanned-in
	}
	return classRouted, si
}

// runShard posts the command to its shard proc and arranges the merge. The
// execution-cost jitter draw happens here, at route time, so the RNG
// sequence follows command arrival order deterministically.
func (e *shardEngine) runShard(c *client, cmd *store.Command, argv [][]byte, si int) {
	s := e.s
	p := s.params
	if c.owner != nil {
		// Routing plane: the route decision + shard handoff happen on the
		// owning routing core; the dispatch core sees only the merge.
		c.owner.Core.Charge(p.RouteCPU)
	} else {
		s.proc.Core.Charge(p.ShardRouteCPU)
	}
	e.routed.Inc()
	e.shardCmds[si].Inc()
	seq := c.seqNext
	c.seqNext++
	dbi := c.db
	// The consistency decision is made at admission, in arrival order, so a
	// pipelined SKV.CONSISTENCY override applies to exactly the commands
	// behind it — the merge stage may observe a later override otherwise.
	need, wire := s.gateNeed(c)
	cost := s.execCost(cmd, argv)
	e.inflight++
	e.procs[si].Post(cost, func() {
		var reply []byte
		var dirty bool
		if s.alive {
			// Live migration: decide ASK/TRYAGAIN here, on the shard proc at
			// execution time — an admission-time presence check would race
			// writes already queued ahead of this command in the shard FIFO.
			if redirect := s.migrationCheck(cmd, dbi, argv); redirect != nil {
				reply = redirect
			} else {
				reply, dirty = s.store.Dispatch(cmd, dbi, argv)
			}
		}
		e.shardExec[si].Observe(cost)
		s.proc.Post(p.ShardMergeCPU, func() {
			// Merge stage, on the dispatch proc: replication order is
			// merge-arrival order — a single serialized stream. The write's
			// end offset lands on the issuing client (max-assign — a
			// client's writes to different shards can merge out of order) so
			// a later WAIT blocks on exactly this client's writes.
			if s.alive && dirty && s.role == RoleMaster {
				off := s.propagate(dbi, argv)
				s.acks.NoteWrite(c.id, off)
				s.pushInvalidations(cmd, argv)
				if need > 0 {
					// Quorum write: sequence-ordered but fence-free, like
					// classWait — the reply holds its re-sequencer turn until
					// W replicas ack, while the pipeline keeps flowing
					// (mergeDone runs now, so barriers never wait on acks).
					s.acks.ParkWrite(c.id, off, need, func() { e.complete(c, seq, reply) })
					if s.OnWriteGate != nil {
						s.OnWriteGate(off, wire)
					}
					e.mergeDone()
					return
				}
			}
			e.complete(c, seq, reply)
			e.mergeDone()
		})
	})
}

// runInline executes a command synchronously on the dispatch proc. If
// earlier commands from the client are still in flight, the reply is
// captured and re-sequenced instead of sent.
func (e *shardEngine) runInline(c *client, cmd *store.Command, argv [][]byte) {
	e.inlined.Inc()
	seq := c.seqNext
	c.seqNext++
	if seq == c.seqEmit {
		c.seqEmit++
		e.s.execute(c, cmd, argv)
		return
	}
	e.capturing, e.capClient, e.capBuf = true, c, nil
	e.s.execute(c, cmd, argv)
	buf := e.capBuf
	e.capturing, e.capClient, e.capBuf = false, nil, nil
	e.complete(c, seq, buf)
}

// runWait admits a WAIT without fencing. It must still observe the
// caller's preceding writes (their merges record offsets), so it runs at
// its sequence turn: immediately when the client has nothing in flight,
// otherwise parked in client.gated until complete() drains up to it. Other
// clients' traffic keeps flowing through the shards either way.
func (e *shardEngine) runWait(c *client, cmd *store.Command, argv [][]byte) {
	e.waits.Inc()
	seq := c.seqNext
	c.seqNext++
	if seq == c.seqEmit {
		c.seqEmit++
		e.s.execute(c, cmd, argv)
		return
	}
	if c.gated == nil {
		c.gated = make(map[uint64]gatedCmd)
	}
	c.gated[seq] = gatedCmd{cmd: cmd, argv: argv}
}

// runBarrier executes a cross-shard or ordering-sensitive command inline
// with the pipeline quiesced (inflight == 0, so every client's reply
// sequence is already drained and replies go out directly).
func (e *shardEngine) runBarrier(c *client, cmd *store.Command, argv [][]byte) {
	s := e.s
	e.fenced.Inc()
	// Fencing costs one cross-shard synchronization per shard core.
	s.proc.Core.Charge(s.params.ShardFenceCPU * sim.Duration(len(e.procs)))
	seq := c.seqNext
	c.seqNext++
	e.barrierC, e.barrierSeq, e.barrierParked = c, seq, false
	if seq == c.seqEmit {
		// The quiesced pipeline has drained every earlier reply (the legacy
		// invariant — always true in async mode): execute directly.
		c.seqEmit = seq + 1
		s.execute(c, cmd, argv)
		if e.barrierParked {
			// The write reply parked on the consistency tracker: reclaim the
			// emit turn so later replies queue behind it until it fires.
			c.seqEmit = seq
		}
	} else {
		// An earlier parked write still owns this client's emit turn:
		// execute now (the barrier fence already quiesced the shards) but
		// re-sequence the reply behind the parked one.
		e.capturing, e.capClient, e.capBuf = true, c, nil
		s.execute(c, cmd, argv)
		buf := e.capBuf
		e.capturing, e.capClient, e.capBuf = false, nil, nil
		if !e.barrierParked {
			e.complete(c, seq, buf)
		}
	}
	e.barrierC, e.barrierParked = nil, false
}

// sequencedReply emits a dispatch-plane reply (error paths) through the
// per-client re-sequencer.
func (e *shardEngine) sequencedReply(c *client, data []byte) {
	seq := c.seqNext
	c.seqNext++
	if seq == c.seqEmit {
		c.seqEmit++
		e.s.reply(c, data)
		return
	}
	e.complete(c, seq, data)
}

// complete records a command's reply (nil = none) and emits every
// consecutive ready reply in client request order. Sequence-ordered parked
// commands (WAIT) execute when the drain reaches their turn.
func (e *shardEngine) complete(c *client, seq uint64, reply []byte) {
	if c.pending == nil {
		c.pending = make(map[uint64][]byte)
	}
	c.pending[seq] = reply
	s := e.s
	for {
		if g, ok := c.gated[c.seqEmit]; ok {
			delete(c.gated, c.seqEmit)
			c.seqEmit++
			if s.alive && !c.closed {
				s.execute(c, g.cmd, g.argv)
			}
			continue
		}
		data, ok := c.pending[c.seqEmit]
		if !ok {
			return
		}
		delete(c.pending, c.seqEmit)
		c.seqEmit++
		if len(data) > 0 && s.alive && !c.closed {
			s.coreFor(c).Charge(s.params.ReplyBuildCPU)
			c.conn.Send(data)
		}
	}
}

// mergeDone retires one routed command; when the pipeline drains with a
// barrier waiting, the barrier runs and everything held behind it re-enters
// admission in arrival order.
func (e *shardEngine) mergeDone() {
	e.inflight--
	if e.inflight == 0 && e.holding {
		e.drainHeld()
	}
}

// drainHeld runs on the dispatch proc with the pipeline quiesced: the held
// barrier executes here, and everything queued behind it re-enters
// admission in arrival order. Re-admitted routed commands raise inflight
// again; a second barrier in the queue re-arms holding and the loop
// re-queues the tail for the next drain.
func (e *shardEngine) drainHeld() {
	if e.inflight != 0 || !e.holding {
		return
	}
	if !e.s.alive {
		e.holding = false
		e.holdq = nil
		return
	}
	q := e.holdq
	e.holdq = nil
	e.holding = false
	for len(q) > 0 {
		h := q[0]
		q = q[1:]
		if e.holding {
			e.holdq = append(e.holdq, h)
			continue
		}
		if h.c.closed {
			// The client disconnected while its command sat behind the
			// barrier: admitting it would execute for (and build replies,
			// park WAITs, and charge cores on behalf of) a dead connection.
			continue
		}
		e.admitFrom(h.c, h.cmd, h.argv, true)
	}
}

// cron posts the per-shard time event to every shard proc: each shard
// actively expires and rehashes only the keys it owns, on its own core.
func (e *shardEngine) cron() {
	s := e.s
	for i, proc := range e.procs {
		si := i
		proc.Post(s.params.CronCPU, func() {
			if !s.alive {
				return
			}
			s.store.ActiveExpireCycleShard(si, 20)
			s.store.RehashStepShard(si, 100)
			keys := 0
			for dbi := 0; dbi < s.store.NumDBs(); dbi++ {
				keys += s.store.ShardSize(dbi, si)
			}
			e.shardKeys[si].Set(int64(keys))
		})
	}
}

// Registries exposes the per-shard instrument registries (cluster
// snapshots).
func (e *shardEngine) Registries() []*metrics.Registry { return e.regs }

// Procs exposes the shard procs (utilization measurements).
func (e *shardEngine) Procs() []*sim.Proc { return e.procs }
