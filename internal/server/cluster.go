package server

// Cluster-mode admission: when a server is one node of a multi-master
// hash-slot cluster (Options.Cluster non-nil), every keyed command is
// checked against the shared epoch-versioned routing table before it is
// routed or executed. Keys spanning slots are rejected with CROSSSLOT
// (cross-group fan-out is the client's job, mirroring the single-master
// fan-in semantics of the sharded dispatch plane); keys owned by another
// replication group are redirected with MOVED. The check applies to every
// node of the group — master and slaves alike serve only their group's
// slots — and runs at admission, before the shard plane, so redirects
// re-sequence through the same reply path as write-gate errors.
//
// The CLUSTER command (SLOTS / INFO / KEYSLOT) exposes the minimal
// topology surface slot-aware clients need.

import (
	"fmt"
	"strconv"
	"strings"

	"skv/internal/metrics"
	"skv/internal/resp"
	"skv/internal/slots"
	"skv/internal/store"
)

// ClusterRouting attaches a server to a multi-master hash-slot cluster:
// the shared routing table, the replication group this node belongs to,
// and the client port MOVED redirects should name. All nodes of a
// deployment share one *slots.Map by reference; topology layers (the
// cluster builder) mutate it on failover, and every node observes the
// new epoch immediately — modeling the gossip-converged steady state
// rather than the convergence protocol itself.
type ClusterRouting struct {
	// Self is this node's replication group index.
	Self int
	// Map is the shared authoritative slot table.
	Map *slots.Map
	// Port is the client port redirects advertise.
	Port int
}

// clusterInstruments are the admission-plane redirect counters.
type clusterInstruments struct {
	moved     *metrics.Counter
	crossSlot *metrics.Counter
	asked     *metrics.Counter
	tryAgain  *metrics.Counter
	imported  *metrics.Counter
}

func newClusterInstruments(reg *metrics.Registry) *clusterInstruments {
	return &clusterInstruments{
		moved:     reg.Counter("server.cluster.moved"),
		crossSlot: reg.Counter("server.cluster.crossslot"),
		asked:     reg.Counter("server.cluster.asked"),
		tryAgain:  reg.Counter("server.cluster.tryagain"),
		imported:  reg.Counter("server.cluster.imported"),
	}
}

// slotCheck validates a keyed command against the slot table. It returns
// nil when this node may admit the command — it owns every key's slot, or
// the slot is importing here and the client prefixed ASKING — or the
// redirect/error reply to emit instead of executing. The caller has
// already charged SlotCheckCPU on the admitting core.
func (s *Server) slotCheck(c *client, cmd *store.Command, argv [][]byte) []byte {
	asking := c.asking
	c.asking = false // one-shot, consumed by this command
	slot := -1
	cross := false
	cmd.EachKey(argv, func(k []byte) {
		ks := slots.Slot(k)
		if slot == -1 {
			slot = ks
		} else if ks != slot {
			cross = true
		}
	})
	if slot == -1 {
		return nil // too few args: the store replies with an arity error
	}
	if cross {
		s.clusterStats.crossSlot.Inc()
		s.ErrRepliesSent++
		return resp.AppendError(nil, slots.CrossSlotMessage)
	}
	cr := s.cluster
	if g := cr.Map.Owner(slot); g != cr.Self {
		// A slot mid-import is served here for clients that were ASK-
		// redirected by the migrating owner, even though the table still
		// names the source as owner.
		if asking {
			if _, importing := cr.Map.Importing(slot); importing {
				s.clusterStats.imported.Inc()
				return nil
			}
		}
		s.clusterStats.moved.Inc()
		return resp.AppendError(nil, slots.MovedMessage(slot, cr.Map.Addr(g), cr.Port))
	}
	return nil
}

// migrationDataCmd reports whether a command belongs to the mover's data
// plane. DUMP and MIGRATEDEL answer key absence directly (nil / :0) —
// redirecting them with ASK would deadlock the mover against itself —
// and RESTORE targets keys the importing side does not own yet.
func migrationDataCmd(cmd *store.Command) bool {
	switch cmd.Name {
	case "dump", "restore", "migratedel":
		return true
	}
	return false
}

// migrationCheck is the execution-time half of the ASK protocol, called
// with the command about to run against the store (single-threaded path,
// barrier drains, and each shard proc). When every key of a MIGRATING
// slot is still present the command serves locally; when every key is
// absent the keys have moved (or never existed — indistinguishable, and
// the target answers both correctly) and the client is ASK-redirected to
// the import target; a half-present multi-key command gets TRYAGAIN until
// the mover drains the stragglers. Runs at execution, not admission,
// because presence can change while a command waits in a shard FIFO. Slots
// without migration state take the zero-cost early return, keeping the
// no-migration pipeline byte-identical.
func (s *Server) migrationCheck(cmd *store.Command, dbi int, argv [][]byte) []byte {
	cr := s.cluster
	if cr == nil || cmd == nil || cmd.Server || cmd.FirstKey <= 0 {
		return nil
	}
	slot := -1
	cmd.EachKey(argv, func(k []byte) {
		if slot == -1 {
			slot = slots.Slot(k)
		}
	})
	if slot == -1 {
		return nil
	}
	target, migrating := cr.Map.Migrating(slot)
	if !migrating || cr.Map.Owner(slot) != cr.Self {
		return nil
	}
	if migrationDataCmd(cmd) {
		return nil
	}
	present, absent := 0, 0
	cmd.EachKey(argv, func(k []byte) {
		if s.store.Has(dbi, string(k)) {
			present++
		} else {
			absent++
		}
	})
	if absent == 0 {
		return nil // fully here: serve at the source
	}
	if present == 0 {
		s.clusterStats.asked.Inc()
		return resp.AppendError(nil, slots.AskMessage(slot, cr.Map.Addr(target), cr.Port))
	}
	s.clusterStats.tryAgain.Inc()
	s.ErrRepliesSent++
	return resp.AppendError(nil, slots.TryAgainMessage)
}

// cmdCluster implements the minimal CLUSTER surface. Like Redis, KEYSLOT
// and INFO answer on any node; SLOTS reports the routing table (empty
// when cluster support is disabled).
func (s *Server) cmdCluster(c *client, argv [][]byte) {
	if len(argv) < 2 {
		s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'cluster' command"))
		return
	}
	switch strings.ToLower(string(argv[1])) {
	case "keyslot":
		if len(argv) != 3 {
			s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'cluster|keyslot' command"))
			return
		}
		s.reply(c, resp.AppendInt(nil, int64(slots.Slot(argv[2]))))
	case "slots":
		if s.cluster == nil {
			s.reply(c, resp.AppendArrayHeader(nil, 0))
			return
		}
		var b []byte
		ranges := s.cluster.Map.Ranges()
		b = resp.AppendArrayHeader(b, len(ranges))
		for _, r := range ranges {
			b = resp.AppendArrayHeader(b, 3)
			b = resp.AppendInt(b, int64(r.Start))
			b = resp.AppendInt(b, int64(r.End))
			b = resp.AppendArrayHeader(b, 2)
			b = resp.AppendBulkString(b, s.cluster.Map.Addr(r.Group))
			b = resp.AppendInt(b, int64(s.cluster.Port))
		}
		s.reply(c, b)
	case "info":
		var b strings.Builder
		if s.cluster == nil {
			b.WriteString("cluster_enabled:0\r\ncluster_state:ok\r\ncluster_slots_assigned:0\r\ncluster_known_nodes:1\r\ncluster_size:0\r\ncluster_current_epoch:0\r\n")
		} else {
			fmt.Fprintf(&b, "cluster_enabled:1\r\ncluster_state:ok\r\ncluster_slots_assigned:%d\r\ncluster_known_nodes:%d\r\ncluster_size:%d\r\ncluster_current_epoch:%d\r\ncluster_my_group:%d\r\n",
				slots.NumSlots, s.cluster.Map.Groups(), s.cluster.Map.Groups(), s.cluster.Map.Epoch(), s.cluster.Self)
		}
		s.reply(c, resp.AppendBulkString(nil, b.String()))
	case "setslot":
		s.cmdClusterSetSlot(c, argv)
	case "getkeysinslot":
		if s.cluster == nil {
			s.reply(c, resp.AppendError(nil, "ERR This instance has cluster support disabled"))
			return
		}
		if len(argv) != 4 {
			s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'cluster|getkeysinslot' command"))
			return
		}
		slot, err1 := strconv.Atoi(string(argv[2]))
		count, err2 := strconv.Atoi(string(argv[3]))
		if err1 != nil || err2 != nil || slot < 0 || slot >= slots.NumSlots || count < 0 {
			s.reply(c, resp.AppendError(nil, "ERR Invalid slot or count"))
			return
		}
		keys := s.store.KeysWhere(c.db, count, func(k string) bool {
			return slots.Slot([]byte(k)) == slot
		})
		b := resp.AppendArrayHeader(nil, len(keys))
		for _, k := range keys {
			b = resp.AppendBulkString(b, k)
		}
		s.reply(c, b)
	case "countkeysinslot":
		if s.cluster == nil {
			s.reply(c, resp.AppendError(nil, "ERR This instance has cluster support disabled"))
			return
		}
		if len(argv) != 3 {
			s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'cluster|countkeysinslot' command"))
			return
		}
		slot, err := strconv.Atoi(string(argv[2]))
		if err != nil || slot < 0 || slot >= slots.NumSlots {
			s.reply(c, resp.AppendError(nil, "ERR Invalid slot"))
			return
		}
		n := len(s.store.KeysWhere(c.db, 0, func(k string) bool {
			return slots.Slot([]byte(k)) == slot
		}))
		s.reply(c, resp.AppendInt(nil, int64(n)))
	default:
		s.reply(c, resp.AppendError(nil, fmt.Sprintf("ERR Unknown CLUSTER subcommand or wrong number of arguments for '%s'", string(argv[1]))))
	}
}

// cmdClusterSetSlot drives a slot's migration state machine:
//
//	CLUSTER SETSLOT <slot> IMPORTING <source-group>  (run at the target)
//	CLUSTER SETSLOT <slot> MIGRATING <target-group>  (run at the source)
//	CLUSTER SETSLOT <slot> NODE <group>              (the atomic ownership flip)
//	CLUSTER SETSLOT <slot> STABLE                    (abort: clear both marks)
//
// Groups stand in for Redis's node IDs — the simulated control plane
// addresses replication groups, not individual nodes. All four mutate the
// shared epoch-versioned table, so every node of the deployment observes
// the new state at once (the converged-gossip modeling assumption). In
// sharded mode the dispatch plane runs SETSLOT as a barrier: the flip
// never lands while commands for the slot sit in a shard FIFO.
func (s *Server) cmdClusterSetSlot(c *client, argv [][]byte) {
	if s.cluster == nil {
		s.reply(c, resp.AppendError(nil, "ERR This instance has cluster support disabled"))
		return
	}
	if len(argv) < 4 {
		s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'cluster|setslot' command"))
		return
	}
	slot, err := strconv.Atoi(string(argv[2]))
	if err != nil || slot < 0 || slot >= slots.NumSlots {
		s.reply(c, resp.AppendError(nil, "ERR Invalid slot"))
		return
	}
	cr := s.cluster
	group := -1
	sub := strings.ToLower(string(argv[3]))
	if sub != "stable" {
		if len(argv) != 5 {
			s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'cluster|setslot' command"))
			return
		}
		group, err = strconv.Atoi(string(argv[4]))
		if err != nil {
			s.reply(c, resp.AppendError(nil, "ERR Invalid group"))
			return
		}
	}
	switch sub {
	case "migrating":
		if cr.Map.Owner(slot) != cr.Self {
			s.reply(c, resp.AppendError(nil, fmt.Sprintf("ERR I'm not the owner of hash slot %d", slot)))
			return
		}
		err = cr.Map.SetMigrating(slot, group)
	case "importing":
		if cr.Map.Owner(slot) == cr.Self {
			s.reply(c, resp.AppendError(nil, fmt.Sprintf("ERR I'm already the owner of hash slot %d", slot)))
			return
		}
		err = cr.Map.SetImporting(slot, group)
	case "node":
		err = cr.Map.Assign(slot, slot, group)
	case "stable":
		cr.Map.ClearMigration(slot)
	default:
		s.reply(c, resp.AppendError(nil, "ERR Invalid CLUSTER SETSLOT action or number of arguments"))
		return
	}
	if err != nil {
		s.reply(c, resp.AppendError(nil, "ERR "+err.Error()))
		return
	}
	s.reply(c, resp.AppendSimple(nil, "OK"))
}
