package server

// Cluster-mode admission: when a server is one node of a multi-master
// hash-slot cluster (Options.Cluster non-nil), every keyed command is
// checked against the shared epoch-versioned routing table before it is
// routed or executed. Keys spanning slots are rejected with CROSSSLOT
// (cross-group fan-out is the client's job, mirroring the single-master
// fan-in semantics of the sharded dispatch plane); keys owned by another
// replication group are redirected with MOVED. The check applies to every
// node of the group — master and slaves alike serve only their group's
// slots — and runs at admission, before the shard plane, so redirects
// re-sequence through the same reply path as write-gate errors.
//
// The CLUSTER command (SLOTS / INFO / KEYSLOT) exposes the minimal
// topology surface slot-aware clients need.

import (
	"fmt"
	"strings"

	"skv/internal/metrics"
	"skv/internal/resp"
	"skv/internal/slots"
	"skv/internal/store"
)

// ClusterRouting attaches a server to a multi-master hash-slot cluster:
// the shared routing table, the replication group this node belongs to,
// and the client port MOVED redirects should name. All nodes of a
// deployment share one *slots.Map by reference; topology layers (the
// cluster builder) mutate it on failover, and every node observes the
// new epoch immediately — modeling the gossip-converged steady state
// rather than the convergence protocol itself.
type ClusterRouting struct {
	// Self is this node's replication group index.
	Self int
	// Map is the shared authoritative slot table.
	Map *slots.Map
	// Port is the client port redirects advertise.
	Port int
}

// clusterInstruments are the admission-plane redirect counters.
type clusterInstruments struct {
	moved     *metrics.Counter
	crossSlot *metrics.Counter
}

func newClusterInstruments(reg *metrics.Registry) *clusterInstruments {
	return &clusterInstruments{
		moved:     reg.Counter("server.cluster.moved"),
		crossSlot: reg.Counter("server.cluster.crossslot"),
	}
}

// slotCheck validates a keyed command against the slot table. It returns
// nil when this node owns every key's slot, or the redirect/error reply
// to emit instead of executing. The caller has already charged
// SlotCheckCPU on the admitting core.
func (s *Server) slotCheck(cmd *store.Command, argv [][]byte) []byte {
	slot := -1
	cross := false
	cmd.EachKey(argv, func(k []byte) {
		ks := slots.Slot(k)
		if slot == -1 {
			slot = ks
		} else if ks != slot {
			cross = true
		}
	})
	if slot == -1 {
		return nil // too few args: the store replies with an arity error
	}
	if cross {
		s.clusterStats.crossSlot.Inc()
		s.ErrRepliesSent++
		return resp.AppendError(nil, slots.CrossSlotMessage)
	}
	cr := s.cluster
	if g := cr.Map.Owner(slot); g != cr.Self {
		s.clusterStats.moved.Inc()
		return resp.AppendError(nil, slots.MovedMessage(slot, cr.Map.Addr(g), cr.Port))
	}
	return nil
}

// cmdCluster implements the minimal CLUSTER surface. Like Redis, KEYSLOT
// and INFO answer on any node; SLOTS reports the routing table (empty
// when cluster support is disabled).
func (s *Server) cmdCluster(c *client, argv [][]byte) {
	if len(argv) < 2 {
		s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'cluster' command"))
		return
	}
	switch strings.ToLower(string(argv[1])) {
	case "keyslot":
		if len(argv) != 3 {
			s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'cluster|keyslot' command"))
			return
		}
		s.reply(c, resp.AppendInt(nil, int64(slots.Slot(argv[2]))))
	case "slots":
		if s.cluster == nil {
			s.reply(c, resp.AppendArrayHeader(nil, 0))
			return
		}
		var b []byte
		ranges := s.cluster.Map.Ranges()
		b = resp.AppendArrayHeader(b, len(ranges))
		for _, r := range ranges {
			b = resp.AppendArrayHeader(b, 3)
			b = resp.AppendInt(b, int64(r.Start))
			b = resp.AppendInt(b, int64(r.End))
			b = resp.AppendArrayHeader(b, 2)
			b = resp.AppendBulkString(b, s.cluster.Map.Addr(r.Group))
			b = resp.AppendInt(b, int64(s.cluster.Port))
		}
		s.reply(c, b)
	case "info":
		var b strings.Builder
		if s.cluster == nil {
			b.WriteString("cluster_enabled:0\r\ncluster_state:ok\r\ncluster_slots_assigned:0\r\ncluster_known_nodes:1\r\ncluster_size:0\r\ncluster_current_epoch:0\r\n")
		} else {
			fmt.Fprintf(&b, "cluster_enabled:1\r\ncluster_state:ok\r\ncluster_slots_assigned:%d\r\ncluster_known_nodes:%d\r\ncluster_size:%d\r\ncluster_current_epoch:%d\r\ncluster_my_group:%d\r\n",
				slots.NumSlots, s.cluster.Map.Groups(), s.cluster.Map.Groups(), s.cluster.Map.Epoch(), s.cluster.Self)
		}
		s.reply(c, resp.AppendBulkString(nil, b.String()))
	default:
		s.reply(c, resp.AppendError(nil, fmt.Sprintf("ERR Unknown CLUSTER subcommand or wrong number of arguments for '%s'", string(argv[1]))))
	}
}
