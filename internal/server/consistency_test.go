package server

import (
	"strings"
	"testing"

	"skv/internal/consistency"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/tcpsim"
)

// quorumServer builds a master whose default write consistency is quorum(w),
// optionally sharded.
func (w *world) quorumServer(name string, shards, qw int) *Server {
	m := w.net.NewMachine(name, false)
	core := sim.NewCore(w.eng, name+"-core", 1.0)
	proc := sim.NewProc(w.eng, core, w.p.TCPWakeup)
	stack := tcpsim.New(w.net, m.Host, proc)
	return New(Options{
		Name: name, Params: w.p, Seed: seed(name), Port: 6379,
		Shards:           shards,
		WriteConsistency: consistency.Quorum,
		WriteQuorum:      qw,
	}, w.eng, stack, proc)
}

// ---- WAIT edge cases (satellite: blocking semantics) ---------------------

// TestWaitZeroTimeoutBlocksWithoutTimer: WAIT <n> 0 must block indefinitely
// — arming a zero-duration timer would instead fire the timeout path
// immediately and reply with the current count.
func TestWaitZeroTimeoutBlocksWithoutTimer(t *testing.T) {
	w := newWorld(61)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	c.do(t, "SET", "k", "v")
	// Two replicas can never ack with one attached: the WAIT must still be
	// parked (not timed out, not errored) after multiple seconds.
	before := len(c.got)
	w.eng.After(0, func() { c.conn.Send(resp.EncodeCommand("WAIT", "2", "0")) })
	w.eng.Run(w.eng.Now().Add(5 * sim.Second))
	if len(c.got) != before {
		t.Fatalf("WAIT 2 0 replied %s; want indefinite block", c.got[len(c.got)-1].String())
	}
	if master.Acks().Waiting() != 1 {
		t.Fatalf("blocked waiter not parked: Waiting=%d", master.Acks().Waiting())
	}
	// A satisfiable WAIT with timeout 0 resolves on replica progress alone.
	c2 := w.dial(t, master)
	c2.do(t, "SET", "k2", "v")
	before2 := len(c2.got)
	w.eng.After(0, func() { c2.conn.Send(resp.EncodeCommand("WAIT", "1", "0")) })
	w.eng.Run(w.eng.Now().Add(700 * sim.Millisecond))
	if len(c2.got) <= before2 {
		t.Fatal("WAIT 1 0 never resolved on ack progress")
	}
	if v := c2.got[len(c2.got)-1]; v.Type != resp.TypeInteger || v.Int < 1 {
		t.Fatalf("WAIT 1 0: %s", v.String())
	}
}

// TestWaitNeedZeroImmediate: WAIT 0 <t> replies in the same beat with the
// replica count at the client's write offset, even while that write is
// still unreplicated.
func TestWaitNeedZeroImmediate(t *testing.T) {
	w := newWorld(62)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	before := len(c.got)
	w.eng.After(0, func() {
		// Pipelined SET+WAIT: the WAIT runs before any ack can arrive.
		pipe := append(resp.EncodeCommand("SET", "k", "v"), resp.EncodeCommand("WAIT", "0", "500")...)
		c.conn.Send(pipe)
	})
	w.eng.Run(w.eng.Now().Add(10 * sim.Millisecond)) // ≪ ack cron and timeout
	if len(c.got) != before+2 {
		t.Fatalf("got %d replies, want SET+WAIT immediately", len(c.got)-before)
	}
	if v := c.got[len(c.got)-1]; v.Type != resp.TypeInteger {
		t.Fatalf("WAIT 0: %s", v.String())
	}
}

// TestWaitAfterFailoverTargetsPromotedMaster: after the old master dies and
// a slave is promoted with a re-pointed replica, WAIT issued against the
// promoted master must resolve from the PROMOTED node's ack tracker — its
// own replica's progress — not from any state inherited from the old
// topology.
func TestWaitAfterFailoverTargetsPromotedMaster(t *testing.T) {
	w := newWorld(63)
	master := w.server("m", 6379)
	s1 := w.server("s1", 6379)
	s2 := w.server("s2", 6379)
	s1.SlaveOf(master.Stack().Endpoint(), 6379)
	s2.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	// Failover: the master dies, s1 takes over, s2 re-points to s1.
	master.Crash()
	s1.PromoteToMaster()
	s2.SlaveOf(s1.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, s1)
	if v := c.do(t, "SET", "k", "after-failover"); !v.IsOK() {
		t.Fatalf("SET on promoted master: %s", v.String())
	}
	before := len(c.got)
	w.eng.After(0, func() { c.conn.Send(resp.EncodeCommand("WAIT", "1", "800")) })
	w.eng.Run(w.eng.Now().Add(1 * sim.Second))
	if len(c.got) <= before {
		t.Fatal("WAIT on promoted master never replied")
	}
	if v := c.got[len(c.got)-1]; v.Type != resp.TypeInteger || v.Int != 1 {
		t.Fatalf("WAIT after failover: %s (want 1 — s2's ack against the promoted master)", v.String())
	}
}

// ---- Quorum write path (single-threaded pipeline) ------------------------

// TestQuorumWriteParksReplyUntilAck: with WriteConsistency=quorum the write
// executes immediately but its reply is withheld until the slave's ack
// covers it; reads on other connections are never blocked.
func TestQuorumWriteParksReplyUntilAck(t *testing.T) {
	w := newWorld(64)
	master := w.quorumServer("m", 0, 1)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	other := w.dial(t, master)
	before := len(c.got)
	w.eng.After(0, func() { c.conn.Send(resp.EncodeCommand("SET", "k", "v")) })
	w.eng.Run(w.eng.Now().Add(5 * sim.Millisecond)) // ≪ the 100ms ack cron
	if len(c.got) != before {
		t.Fatalf("quorum SET replied before any slave ack: %s", c.got[len(c.got)-1].String())
	}
	if master.Acks().Parked() != 1 {
		t.Fatalf("Parked = %d, want 1", master.Acks().Parked())
	}
	// The write itself already executed — other clients see it.
	if v := other.do(t, "GET", "k"); v.String() != "v" {
		t.Fatalf("GET during park: %s", v.String())
	}
	w.eng.Run(w.eng.Now().Add(500 * sim.Millisecond))
	if len(c.got) <= before {
		t.Fatal("quorum SET never released")
	}
	if v := c.got[len(c.got)-1]; !v.IsOK() {
		t.Fatalf("released reply: %s", v.String())
	}
	if master.Acks().Parked() != 0 {
		t.Fatalf("Parked after release = %d", master.Acks().Parked())
	}
}

// TestQuorumPipelinedReplyOrder: a parked write must not let later replies
// on the same connection overtake it — the pipelined GET's reply queues
// behind the gated SET.
func TestQuorumPipelinedReplyOrder(t *testing.T) {
	w := newWorld(65)
	master := w.quorumServer("m", 0, 1)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	before := len(c.got)
	w.eng.After(0, func() {
		pipe := append(resp.EncodeCommand("SET", "k", "v"), resp.EncodeCommand("GET", "k")...)
		c.conn.Send(pipe)
	})
	w.eng.Run(w.eng.Now().Add(5 * sim.Millisecond))
	if got := len(c.got) - before; got != 0 {
		t.Fatalf("%d replies surfaced while the SET is parked (GET overtook the gate)", got)
	}
	w.eng.Run(w.eng.Now().Add(700 * sim.Millisecond))
	if got := len(c.got) - before; got != 2 {
		t.Fatalf("%d replies after release, want 2", got)
	}
	if !c.got[before].IsOK() {
		t.Fatalf("first reply %s, want +OK (the SET)", c.got[before].String())
	}
	if c.got[before+1].String() != "v" {
		t.Fatalf("second reply %s, want the GET's value", c.got[before+1].String())
	}
}

// TestQuorumShardedPipeline runs the same contract through the sharded
// dispatch plane: routed writes park holding their re-sequencer turn, and a
// barrier write (FLUSHALL) parks without deadlocking the fence.
func TestQuorumShardedPipeline(t *testing.T) {
	w := newWorld(66)
	master := w.quorumServer("m", 4, 1)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	before := len(c.got)
	w.eng.After(0, func() {
		pipe := resp.EncodeCommand("SET", "a", "1")
		pipe = append(pipe, resp.EncodeCommand("GET", "a")...)
		pipe = append(pipe, resp.EncodeCommand("FLUSHALL")...)
		pipe = append(pipe, resp.EncodeCommand("DBSIZE")...)
		c.conn.Send(pipe)
	})
	w.eng.Run(w.eng.Now().Add(5 * sim.Millisecond))
	if got := len(c.got) - before; got != 0 {
		t.Fatalf("%d replies surfaced while writes are parked", got)
	}
	w.eng.Run(w.eng.Now().Add(900 * sim.Millisecond))
	if got := len(c.got) - before; got != 4 {
		t.Fatalf("%d replies, want 4", got)
	}
	if !c.got[before].IsOK() {
		t.Fatalf("SET reply: %s", c.got[before].String())
	}
	if c.got[before+1].String() != "1" {
		t.Fatalf("GET reply: %s", c.got[before+1].String())
	}
	if !c.got[before+2].IsOK() {
		t.Fatalf("FLUSHALL reply: %s", c.got[before+2].String())
	}
	if v := c.got[before+3]; v.Int != 0 {
		t.Fatalf("DBSIZE reply: %s", v.String())
	}
}

// ---- SKV.CONSISTENCY per-connection override -----------------------------

func TestConsistencyCommandReportAndOverride(t *testing.T) {
	w := newWorld(67)
	master := w.server("m", 6379)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	if v := c.do(t, "SKV.CONSISTENCY"); v.String() != "async" {
		t.Fatalf("default level: %s", v.String())
	}
	if v := c.do(t, "SKV.CONSISTENCY", "quorum", "1"); !v.IsOK() {
		t.Fatalf("set quorum: %s", v.String())
	}
	if v := c.do(t, "SKV.CONSISTENCY"); v.String() != "quorum 1" {
		t.Fatalf("report after override: %s", v.String())
	}
	// The override gates this connection's writes now.
	before := len(c.got)
	w.eng.After(0, func() { c.conn.Send(resp.EncodeCommand("SET", "k", "v")) })
	w.eng.Run(w.eng.Now().Add(5 * sim.Millisecond))
	if len(c.got) != before {
		t.Fatal("override did not gate the write")
	}
	w.eng.Run(w.eng.Now().Add(500 * sim.Millisecond))
	if len(c.got) <= before || !c.got[len(c.got)-1].IsOK() {
		t.Fatal("gated write never released")
	}
	// Dropping the override restores immediate replies.
	if v := c.do(t, "SKV.CONSISTENCY", "default"); !v.IsOK() {
		t.Fatalf("reset: %s", v.String())
	}
	before = len(c.got)
	w.eng.After(0, func() { c.conn.Send(resp.EncodeCommand("SET", "k2", "v")) })
	w.eng.Run(w.eng.Now().Add(5 * sim.Millisecond))
	if len(c.got) != before+1 || !c.got[len(c.got)-1].IsOK() {
		t.Fatal("async write did not reply immediately after reset")
	}
	// Another connection is unaffected by the override.
	c2 := w.dial(t, master)
	if v := c2.do(t, "SET", "k3", "v"); !v.IsOK() {
		t.Fatalf("other connection gated: %s", v.String())
	}
}

func TestConsistencyCommandErrors(t *testing.T) {
	w := newWorld(68)
	master := w.server("m", 6379)
	c := w.dial(t, master)
	if v := c.do(t, "SKV.CONSISTENCY", "eventual"); !v.IsError() {
		t.Fatalf("unknown level accepted: %s", v.String())
	}
	if v := c.do(t, "SKV.CONSISTENCY", "async", "2"); !v.IsError() {
		t.Fatalf("W on async accepted: %s", v.String())
	}
	if v := c.do(t, "SKV.CONSISTENCY", "all", "2"); !v.IsError() {
		t.Fatalf("W on all accepted: %s", v.String())
	}
	if v := c.do(t, "SKV.CONSISTENCY", "quorum", "0"); !v.IsError() {
		t.Fatalf("W=0 accepted: %s", v.String())
	}
	if v := c.do(t, "SKV.CONSISTENCY", "quorum", "x"); !v.IsError() {
		t.Fatalf("W=x accepted: %s", v.String())
	}
	if v := c.do(t, "SKV.CONSISTENCY", "quorum", "2", "3"); !v.IsError() {
		t.Fatalf("arity accepted: %s", v.String())
	}
}

// ---- Disconnect hygiene (satellite: no leaks on client teardown) ---------

// TestDisconnectDropsWaitersAndParkedWrites: a client that vanishes while a
// WAIT is blocked and a quorum write is parked must leave nothing behind —
// no waiter, no parked reply, no per-client offset.
func TestDisconnectDropsWaitersAndParkedWrites(t *testing.T) {
	w := newWorld(69)
	master := w.quorumServer("m", 0, 2) // W=2 with one slave: parks forever
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()

	cw := w.dial(t, master) // parks a write
	w.eng.After(0, func() { cw.conn.Send(resp.EncodeCommand("SET", "k", "v")) })
	cb := w.dial(t, master) // blocks a WAIT (needs its own write first)
	w.eng.After(0, func() { cb.conn.Send(resp.EncodeCommand("SKV.CONSISTENCY", "async")) })
	w.eng.After(0, func() { cb.conn.Send(resp.EncodeCommand("SET", "k2", "v")) })
	w.eng.After(sim.Millisecond, func() { cb.conn.Send(resp.EncodeCommand("WAIT", "2", "0")) })
	w.eng.Run(w.eng.Now().Add(300 * sim.Millisecond))
	if p := master.Acks().Parked(); p != 1 {
		t.Fatalf("Parked = %d, want 1", p)
	}
	if wt := master.Acks().Waiting(); wt != 1 {
		t.Fatalf("Waiting = %d, want 1", wt)
	}
	cw.conn.Close()
	cb.conn.Close()
	w.run()
	if p := master.Acks().Parked(); p != 0 {
		t.Fatalf("parked write leaked across disconnect: %d", p)
	}
	if wt := master.Acks().Waiting(); wt != 0 {
		t.Fatalf("waiter leaked across disconnect: %d", wt)
	}
	// The server keeps serving.
	c := w.dial(t, master)
	if v := c.do(t, "GET", "k"); v.String() != "v" {
		t.Fatalf("GET after disconnects: %s", v.String())
	}
}

// TestShardedHoldQueueSkipsClosedClients: commands held behind a barrier
// fence whose client disconnects before the fence drains must be discarded,
// not executed into a dead connection's reply path. A long pipelined burst
// from another client keeps the dispatch pipeline busy (inflight > 0) so
// the dead client's FLUSHALL+SET sit in the hold queue when its close
// lands.
func TestShardedHoldQueueSkipsClosedClients(t *testing.T) {
	const burst = 300
	w := newWorld(70)
	master := w.quorumServer("m", 4, 1)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	busy := w.dial(t, master)
	dead := w.dial(t, master)
	wp := master.WritesPropagated
	w.eng.After(0, func() {
		// One key: every write lands on the same shard, so the shard proc
		// (serial) lags the dispatch proc and the pipeline stays busy long
		// after the dead client's pipe is parsed.
		var pipe []byte
		for i := 0; i < burst; i++ {
			pipe = append(pipe, resp.EncodeCommand("SET", "busy", "v")...)
		}
		busy.conn.Send(pipe)
	})
	// The burst is parsed and routed in one dispatch event ~80μs in, then
	// the shard chews through it for ~450μs. The dead client's barrier
	// lands mid-backlog and its close is processed well before the drain.
	w.eng.After(150*sim.Microsecond, func() {
		pipe := append(resp.EncodeCommand("FLUSHALL"), resp.EncodeCommand("SET", "dead", "x")...)
		dead.conn.Send(pipe)
	})
	w.eng.After(250*sim.Microsecond, func() { dead.conn.Close() })
	w.run()
	w.run()
	if master.Acks().Parked() != 0 || master.Acks().Waiting() != 0 {
		t.Fatalf("leak after disconnect: parked=%d waiting=%d",
			master.Acks().Parked(), master.Acks().Waiting())
	}
	// The dead client's FLUSHALL and SET were both skipped at the drain.
	if master.WritesPropagated != wp+burst {
		t.Fatalf("WritesPropagated = %d, want %d (busy burst only; the dead client's commands dropped)",
			master.WritesPropagated, wp+burst)
	}
	c2 := w.dial(t, master)
	if v := c2.do(t, "GET", "busy"); v.String() != "v" {
		t.Fatalf("dead client's FLUSHALL executed: GET busy = %s", v.String())
	}
	if v := c2.do(t, "GET", "dead"); !v.Null {
		t.Fatalf("dead client's held write executed: %s", v.String())
	}
	// The busy client got all of its replies after the cron ack released
	// them.
	n := 0
	for _, v := range busy.got {
		if v.IsOK() {
			n++
		}
	}
	if n != burst {
		t.Fatalf("busy client got %d OKs, want %d", n, burst)
	}
}

// ---- INFO surface (satellite: consistency observability) -----------------

// TestInfoReplicationConsistencyFieldsDeterministic: the Replication section
// carries the consistency plane's gauges, and two identical runs render the
// section byte-identically.
func TestInfoReplicationConsistencyFieldsDeterministic(t *testing.T) {
	render := func() string {
		w := newWorld(71)
		master := w.quorumServer("m", 0, 1)
		slave := w.server("sl", 6379)
		slave.SlaveOf(master.Stack().Endpoint(), 6379)
		w.run()
		c := w.dial(t, master)
		// The quorum default parks the SET's reply until the ack cron runs;
		// give it a full window before reading INFO.
		w.eng.After(0, func() { c.conn.Send(resp.EncodeCommand("SET", "k", "v")) })
		w.run()
		v := c.do(t, "INFO", "replication")
		return string(v.Str)
	}
	a := render()
	for _, want := range []string{"min_ack_offset:", "parked_writes:0", "write_consistency:quorum"} {
		if !strings.Contains(a, want) {
			t.Fatalf("INFO Replication missing %q:\n%s", want, a)
		}
	}
	if b := render(); a != b {
		t.Fatalf("INFO Replication not deterministic:\n--- run1\n%s\n--- run2\n%s", a, b)
	}
}
