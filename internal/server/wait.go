package server

import (
	"strconv"

	"skv/internal/resp"
	"skv/internal/sim"
)

// WAIT numreplicas timeout-ms — block the issuing client until at least
// numreplicas replicas have acknowledged all writes issued before WAIT, or
// the timeout fires; reply with the number of replicas that did. The reply
// is deferred (the server keeps serving other clients), matching Redis
// semantics.
//
// The replica-progress source is pluggable: the baseline master reads its
// slaves' REPLCONF ACK offsets; the SKV master reads the per-slave offsets
// Nic-KV reports in its status frames (set via WaitOffsets).

// waiter is one blocked WAIT.
type waiter struct {
	c      *client
	target int64
	need   int
	timer  *sim.Event
	done   bool
}

func (s *Server) cmdWait(c *client, argv [][]byte) {
	if len(argv) != 3 {
		s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'wait' command"))
		return
	}
	need, err1 := strconv.Atoi(string(argv[1]))
	timeoutMs, err2 := strconv.ParseInt(string(argv[2]), 10, 64)
	if err1 != nil || err2 != nil || need < 0 || timeoutMs < 0 {
		s.reply(c, resp.AppendError(nil, "ERR value is not an integer or out of range"))
		return
	}
	if s.role == RoleSlave {
		s.reply(c, resp.AppendError(nil, "ERR WAIT cannot be used with replica instances"))
		return
	}
	// Per-caller target (Redis client->woff): block until the offsets of
	// *this client's* preceding writes are acked, not until the global
	// replication offset is covered. A client that never wrote has target 0
	// and returns immediately with the replica count.
	w := &waiter{c: c, target: c.lastWriteOff, need: need}
	if s.ackedReplicas(w.target) >= need {
		s.reply(c, resp.AppendInt(nil, int64(s.ackedReplicas(w.target))))
		return
	}
	s.waiters = append(s.waiters, w)
	if timeoutMs > 0 {
		w.timer = s.eng.After(sim.Duration(timeoutMs)*sim.Millisecond, func() {
			if w.done || !s.alive {
				return
			}
			s.finishWaiter(w)
		})
	}
}

// ackedReplicas counts replicas whose acknowledged offset covers target.
func (s *Server) ackedReplicas(target int64) int {
	var offs []int64
	if s.WaitOffsets != nil {
		offs = s.WaitOffsets()
	} else {
		offs = s.SlaveAckOffsets()
	}
	n := 0
	for _, off := range offs {
		if off >= target {
			n++
		}
	}
	return n
}

// CheckWaiters re-evaluates blocked WAITs; called whenever replica progress
// arrives (REPLCONF ACK on the baseline, Nic-KV status on SKV).
func (s *Server) CheckWaiters() {
	if len(s.waiters) == 0 {
		return
	}
	remaining := s.waiters[:0]
	for _, w := range s.waiters {
		if w.done {
			continue
		}
		if s.ackedReplicas(w.target) >= w.need {
			s.finishWaiter(w)
			continue
		}
		remaining = append(remaining, w)
	}
	s.waiters = remaining
}

// finishWaiter replies with the current count and retires the waiter.
func (s *Server) finishWaiter(w *waiter) {
	if w.done {
		return
	}
	w.done = true
	if w.timer != nil {
		w.timer.Cancel()
	}
	s.coreFor(w.c).Charge(s.params.ReplyBuildCPU)
	s.reply(w.c, resp.AppendInt(nil, int64(s.ackedReplicas(w.target))))
}
