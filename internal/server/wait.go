package server

import (
	"fmt"
	"strconv"
	"strings"

	"skv/internal/consistency"
	"skv/internal/resp"
	"skv/internal/sim"
)

// WAIT numreplicas timeout-ms — block the issuing client until at least
// numreplicas replicas have acknowledged all writes issued before WAIT, or
// the timeout fires; reply with the number of replicas that did. The reply
// is deferred (the server keeps serving other clients), matching Redis
// semantics. timeout=0 blocks indefinitely (no timer is armed).
//
// The replica-progress source is the consistency tracker: the baseline
// master pushes its slaves' REPLCONF ACK offsets into it, the SKV master
// pushes the per-slave offsets Nic-KV reports in its status frames.

func (s *Server) cmdWait(c *client, argv [][]byte) {
	if len(argv) != 3 {
		s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'wait' command"))
		return
	}
	need, err1 := strconv.Atoi(string(argv[1]))
	timeoutMs, err2 := strconv.ParseInt(string(argv[2]), 10, 64)
	if err1 != nil || err2 != nil || need < 0 || timeoutMs < 0 {
		s.reply(c, resp.AppendError(nil, "ERR value is not an integer or out of range"))
		return
	}
	if s.role == RoleSlave {
		s.reply(c, resp.AppendError(nil, "ERR WAIT cannot be used with replica instances"))
		return
	}
	// Per-caller target (Redis client->woff): block until the offsets of
	// *this client's* preceding writes are acked, not until the global
	// replication offset is covered. A client that never wrote has target 0
	// and returns immediately with the replica count.
	target := s.acks.LastWrite(c.id)
	if s.acks.AckedAt(target) >= need {
		s.reply(c, resp.AppendInt(nil, int64(s.acks.AckedAt(target))))
		return
	}
	w := &consistency.Waiter{Target: target, Need: need, Owner: c.id}
	w.Fire = func(acked int) {
		// Mirrors the legacy finishWaiter cost shape: the deferred reply
		// charges its build explicitly, then s.reply charges the send.
		s.coreFor(c).Charge(s.params.ReplyBuildCPU)
		s.reply(c, resp.AppendInt(nil, int64(acked)))
	}
	if timeoutMs > 0 {
		timer := s.eng.After(sim.Duration(timeoutMs)*sim.Millisecond, func() {
			if w.Done() || !s.alive {
				return
			}
			s.acks.FinishNow(w)
		})
		w.Stop = timer.Cancel
	}
	s.acks.Park(w)
}

// SKV.CONSISTENCY [level [W]] — inspect or override this connection's write
// consistency. With no arguments it reports the effective level; "default"
// drops the override; "async"/"quorum [W]"/"all" set one. The override is
// admission-ordered: it applies to every later command on the connection and
// to none before it, in both the single-threaded and sharded pipelines.
func (s *Server) cmdConsistency(c *client, argv [][]byte) {
	switch len(argv) {
	case 1:
		lvl, w := s.levelFor(c)
		if lvl == consistency.Quorum {
			s.reply(c, resp.AppendBulkString(nil, fmt.Sprintf("%s %d", lvl, effW(w))))
			return
		}
		s.reply(c, resp.AppendBulkString(nil, lvl.String()))
	case 2, 3:
		name := string(argv[1])
		if len(argv) == 2 && strings.EqualFold(name, "default") {
			c.consOv = false
			s.reply(c, resp.AppendSimple(nil, "OK"))
			return
		}
		lvl, ok := consistency.ParseLevel(name)
		if !ok {
			s.reply(c, resp.AppendError(nil, "ERR unknown consistency level '"+name+"'"))
			return
		}
		w := s.defW
		if len(argv) == 3 {
			if lvl != consistency.Quorum {
				s.reply(c, resp.AppendError(nil, "ERR a replica count only applies to quorum"))
				return
			}
			n, err := strconv.Atoi(string(argv[2]))
			if err != nil || n < 1 {
				s.reply(c, resp.AppendError(nil, "ERR value is not an integer or out of range"))
				return
			}
			w = n
		}
		c.consOv, c.consLevel, c.consW = true, lvl, w
		s.reply(c, resp.AppendSimple(nil, "OK"))
	default:
		s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'skv.consistency' command"))
	}
}

// effW clamps a configured quorum width to its effective minimum.
func effW(w int) int {
	if w < 1 {
		return 1
	}
	return w
}
