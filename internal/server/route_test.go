package server

import (
	"fmt"
	"strings"
	"testing"

	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/tcpsim"
)

// routedServer builds a server with both planes on: Shards shard procs
// behind the dispatch/merge stage, fronted by Listeners routing procs that
// own RESP parse + key-hash routing for their pinned connections.
func (w *world) routedServer(name string, port, shards, listeners int) *Server {
	m := w.net.NewMachine(name, false)
	core := sim.NewCore(w.eng, name+"-core", 1.0)
	proc := sim.NewProc(w.eng, core, w.p.TCPWakeup)
	stack := tcpsim.New(w.net, m.Host, proc)
	return New(Options{
		Name:      name,
		Params:    w.p,
		Seed:      seed(name),
		Port:      port,
		Shards:    shards,
		Listeners: listeners,
	}, w.eng, stack, proc)
}

func TestRoutedServerBasicCommands(t *testing.T) {
	w := newWorld(61)
	srv := w.routedServer("s", 6379, 4, 2)
	if n := srv.NumRouteListeners(); n != 2 {
		t.Fatalf("NumRouteListeners = %d", n)
	}
	if n := len(srv.RouteRegistries()); n != 2 {
		t.Fatalf("RouteRegistries = %d", n)
	}
	if n := len(srv.RouteProcs()); n != 2 {
		t.Fatalf("RouteProcs = %d", n)
	}
	// Connections pin round-robin: with two clients, each listener owns one.
	c1 := w.dial(t, srv)
	c2 := w.dial(t, srv)
	if v := c1.do(t, "SET", "k", "v"); !v.IsOK() {
		t.Fatalf("SET: %s", v.String())
	}
	if v := c2.do(t, "GET", "k"); v.String() != "v" {
		t.Fatalf("GET: %s", v.String())
	}
	if v := c1.do(t, "PING"); v.String() != "PONG" {
		t.Fatalf("PING: %s", v.String())
	}
	// Barriers fan in across shards, executed on the dispatch proc.
	if v := c2.do(t, "DBSIZE"); v.Int != 1 {
		t.Fatalf("DBSIZE: %s", v.String())
	}
	for i, reg := range srv.RouteRegistries() {
		if got := reg.Counter("route.conns").Value(); got != 1 {
			t.Fatalf("listener %d adopted %d conns, want 1", i, got)
		}
		if got := reg.Counter("route.cmds").Value(); got == 0 {
			t.Fatalf("listener %d routed no commands", i)
		}
	}
	// The routing cores, not the dispatch core, paid for parse + routing.
	for i, rp := range srv.RouteProcs() {
		if rp.Core.BusyUntil() == 0 {
			t.Fatalf("routing core %d never charged", i)
		}
	}
}

// TestRoutedPipelinedRepliesInOrder is the re-sequencing contract under the
// routing plane: a pipelined burst mixing routed, inline, and barrier
// commands must come back in exact request order, with barriers deferring
// from the routing proc to the dispatch proc.
func TestRoutedPipelinedRepliesInOrder(t *testing.T) {
	for _, listeners := range []int{2, 4} {
		w := newWorld(62)
		srv := w.routedServer("s", 6379, 4, listeners)
		c := w.dial(t, srv)

		var pipe []byte
		var want []string
		add := func(expect string, args ...string) {
			pipe = append(pipe, resp.EncodeCommand(args...)...)
			want = append(want, expect)
		}
		for i := 0; i < 12; i++ {
			add("OK", "SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
		}
		add("PONG", "PING")                       // inline on the routing proc
		add("OK", "MSET", "k0", "m0", "k7", "m7") // cross-shard barrier: deferred to dispatch
		add(":12", "DBSIZE")
		for i := 0; i < 12; i++ {
			exp := fmt.Sprintf("v%d", i)
			if i == 0 {
				exp = "m0"
			} else if i == 7 {
				exp = "m7"
			}
			add(exp, "GET", fmt.Sprintf("k%d", i))
		}
		add(":2", "DEL", "k0", "k7")
		add(":10", "DBSIZE")

		before := len(c.got)
		w.eng.After(0, func() { c.conn.Send(pipe) })
		w.run()
		got := c.got[before:]
		if len(got) != len(want) {
			t.Fatalf("listeners=%d: got %d replies, want %d", listeners, len(got), len(want))
		}
		for i, v := range got {
			s := v.String()
			if v.Type == resp.TypeInteger {
				s = fmt.Sprintf(":%d", v.Int)
			}
			if s != want[i] {
				t.Fatalf("listeners=%d: reply %d = %q, want %q (full: %v)",
					listeners, i, s, want[i], renderAll(got))
			}
		}
		if fenced := srv.Metrics().Counter("server.shard.barriers").Value(); fenced == 0 {
			t.Fatalf("listeners=%d: no barriers counted", listeners)
		}
	}
}

// TestRoutedBarrierOnlyPipeline: a barrier admitted from a routing proc at
// inflight == 0 must still execute (it defers through the hold queue to the
// dispatch proc and must not re-defer itself forever).
func TestRoutedBarrierOnlyPipeline(t *testing.T) {
	w := newWorld(63)
	srv := w.routedServer("s", 6379, 4, 2)
	c := w.dial(t, srv)
	// First command on a quiet connection is a barrier: nothing in flight.
	if v := c.do(t, "DBSIZE"); v.Int != 0 {
		t.Fatalf("DBSIZE: %s", v.String())
	}
	// Back-to-back barriers with nothing between them.
	pipe := append(resp.EncodeCommand("FLUSHALL"), resp.EncodeCommand("DBSIZE")...)
	pipe = append(pipe, resp.EncodeCommand("KEYS", "*")...)
	before := len(c.got)
	w.eng.After(0, func() { c.conn.Send(pipe) })
	w.run()
	got := c.got[before:]
	if len(got) != 3 {
		t.Fatalf("barrier-only pipeline: %d replies, want 3", len(got))
	}
	if !got[0].IsOK() || got[1].Int != 0 || len(got[2].Array) != 0 {
		t.Fatalf("barrier-only pipeline replies: %v", renderAll(got))
	}
	if n := srv.Metrics().Counter("server.shard.barriers").Value(); n != 4 {
		t.Fatalf("barriers = %d, want 4", n)
	}
}

// TestRoutedTwoClientsInterleaved: per-client sequencing is independent
// across listeners; the serialized keyspace converges.
func TestRoutedTwoClientsInterleaved(t *testing.T) {
	w := newWorld(64)
	srv := w.routedServer("s", 6379, 4, 2)
	c1 := w.dial(t, srv)
	c2 := w.dial(t, srv)
	var p1, p2 []byte
	for i := 0; i < 20; i++ {
		p1 = append(p1, resp.EncodeCommand("SET", fmt.Sprintf("a%d", i), "1")...)
		p2 = append(p2, resp.EncodeCommand("SET", fmt.Sprintf("b%d", i), "2")...)
	}
	p1 = append(p1, resp.EncodeCommand("DBSIZE")...)
	p2 = append(p2, resp.EncodeCommand("GET", "b3")...)
	b1, b2 := len(c1.got), len(c2.got)
	w.eng.After(0, func() { c1.conn.Send(p1) })
	w.eng.After(0, func() { c2.conn.Send(p2) })
	w.run()
	g1, g2 := c1.got[b1:], c2.got[b2:]
	if len(g1) != 21 || len(g2) != 21 {
		t.Fatalf("reply counts: %d, %d (want 21 each)", len(g1), len(g2))
	}
	for i := 0; i < 20; i++ {
		if !g1[i].IsOK() || !g2[i].IsOK() {
			t.Fatalf("SET reply %d: %s / %s", i, g1[i].String(), g2[i].String())
		}
	}
	if g1[20].Int < 20 || g1[20].Int > 40 {
		t.Fatalf("DBSIZE = %s, want 20..40", g1[20].String())
	}
	if g2[20].String() != "2" {
		t.Fatalf("GET b3 = %s", g2[20].String())
	}
	if n := srv.Store().DBSize(0); n != 40 {
		t.Fatalf("final DBSize = %d, want 40", n)
	}
}

// TestShardedGatedErrorMidPipeline is the sequencedReply regression
// (satellite): an error reply produced on the admission plane (write gate,
// READONLY) for a pipelined client whose earlier commands are still in
// flight must be re-sequenced, not emitted early — and must not be lost.
// Exercised with the dispatch-owned plane and the routing plane.
func TestShardedGatedErrorMidPipeline(t *testing.T) {
	for _, listeners := range []int{1, 2} {
		w := newWorld(65)
		srv := w.routedServer("s", 6379, 4, listeners)
		c := w.dial(t, srv)
		c.do(t, "SET", "k", "v")
		srv.WriteGate = func() string { return "NOREPLICAS Not enough good replicas to write." }
		// GET is routed (in flight on a shard proc when the gated SET is
		// admitted); the SET's error reply must wait its turn; PING is inline
		// behind both.
		pipe := append(resp.EncodeCommand("GET", "k"), resp.EncodeCommand("SET", "x", "y")...)
		pipe = append(pipe, resp.EncodeCommand("PING")...)
		before := len(c.got)
		w.eng.After(0, func() { c.conn.Send(pipe) })
		w.run()
		got := c.got[before:]
		if len(got) != 3 {
			t.Fatalf("listeners=%d: %d replies, want 3 (%v)", listeners, len(got), renderAll(got))
		}
		if got[0].String() != "v" {
			t.Fatalf("listeners=%d: reply 0 = %s, want v", listeners, got[0].String())
		}
		if !got[1].IsError() || !strings.Contains(got[1].String(), "NOREPLICAS") {
			t.Fatalf("listeners=%d: reply 1 = %s, want NOREPLICAS error", listeners, got[1].String())
		}
		if got[2].String() != "PONG" {
			t.Fatalf("listeners=%d: reply 2 = %s, want PONG", listeners, got[2].String())
		}
		if v := c.do(t, "EXISTS", "x"); v.Int != 0 {
			t.Fatalf("listeners=%d: gated write landed", listeners)
		}
	}
}

// TestRoutedMasterReplicates: a routed master's PSYNC link hands itself
// back to the dispatch proc (the merge stage feeds it); replication and
// offsets stay exact.
func TestRoutedMasterReplicates(t *testing.T) {
	w := newWorld(66)
	master := w.routedServer("m", 6379, 4, 2)
	slave := w.server("sl", 6379)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	if !slave.SyncedWithMaster() {
		t.Fatal("slave did not sync")
	}
	c := w.dial(t, master)
	var pipe []byte
	for i := 0; i < 40; i++ {
		pipe = append(pipe, resp.EncodeCommand("SET", fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))...)
	}
	pipe = append(pipe, resp.EncodeCommand("DEL", "k3", "k17")...)
	w.eng.After(0, func() { c.conn.Send(pipe) })
	w.run()
	w.run()
	if got := slave.Store().DBSize(0); got != master.Store().DBSize(0) {
		t.Fatalf("DBSize %d, master %d", got, master.Store().DBSize(0))
	}
	if slave.MasterOffset() != master.ReplOffset() {
		t.Fatalf("offset %d, master %d", slave.MasterOffset(), master.ReplOffset())
	}
}

// TestRoutedWait: WAIT stays fence-free under the routing plane, including
// pipelined SET+WAIT where the WAIT parks until the SET merges.
func TestRoutedWait(t *testing.T) {
	w := newWorld(67)
	master := w.routedServer("m", 6379, 4, 2)
	s1 := w.server("sl1", 6379)
	s2 := w.server("sl2", 6379)
	s1.SlaveOf(master.Stack().Endpoint(), 6379)
	s2.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, master)
	c.do(t, "SET", "k", "v")
	barriers := master.Metrics().Counter("server.shard.barriers").Value()
	before := len(c.got)
	pipe := append(resp.EncodeCommand("SET", "k2", "v2"), resp.EncodeCommand("WAIT", "2", "2000")...)
	w.eng.After(0, func() { c.conn.Send(pipe) })
	w.eng.Run(w.eng.Now().Add(700 * sim.Millisecond))
	got := c.got[before:]
	if len(got) != 2 {
		t.Fatalf("pipelined SET+WAIT: %d replies, want 2", len(got))
	}
	if !got[0].IsOK() {
		t.Fatalf("pipelined SET: %s", got[0].String())
	}
	if got[1].Type != resp.TypeInteger || got[1].Int != 2 {
		t.Fatalf("pipelined WAIT = %s, want :2", got[1].String())
	}
	if got := master.Metrics().Counter("server.shard.barriers").Value(); got != barriers {
		t.Fatalf("WAIT took the barrier path: barriers %d -> %d", barriers, got)
	}
}

// TestRoutedListenersOneIsLegacy: Listeners = 1 (or 0) must not build a
// routing plane at all — the dispatch-owned pipeline is bit-for-bit PR-5.
func TestRoutedListenersOneIsLegacy(t *testing.T) {
	w := newWorld(68)
	for _, listeners := range []int{0, 1} {
		srv := w.routedServer(fmt.Sprintf("s%d", listeners), 6379, 4, listeners)
		if n := srv.NumRouteListeners(); n != 0 {
			t.Fatalf("Listeners=%d: NumRouteListeners = %d, want 0", listeners, n)
		}
		if n := len(srv.RouteRegistries()); n != 0 {
			t.Fatalf("Listeners=%d: RouteRegistries = %d, want 0", listeners, n)
		}
	}
	// And a single-threaded server (Shards <= 1) ignores Listeners entirely.
	srv := w.routedServer("s1t", 6379, 1, 4)
	if n := srv.NumRouteListeners(); n != 0 {
		t.Fatalf("Shards=1: NumRouteListeners = %d, want 0", n)
	}
	c := w.dial(t, srv)
	if v := c.do(t, "SET", "k", "v"); !v.IsOK() {
		t.Fatalf("SET: %s", v.String())
	}
}

// TestRoutedReadonlySlave: the READONLY veto happens at admission on the
// dispatch plane; under the routing plane the error still re-sequences per
// client.
func TestRoutedReadonlySlave(t *testing.T) {
	w := newWorld(69)
	master := w.server("m", 6379)
	slave := w.routedServer("sl", 6379, 4, 2)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()
	c := w.dial(t, slave)
	if v := c.do(t, "SET", "k", "v"); !v.IsError() || !strings.Contains(v.String(), "READONLY") {
		t.Fatalf("routed slave accepted write: %s", v.String())
	}
	if v := c.do(t, "GET", "nope"); !v.Null {
		t.Fatalf("routed slave read: %s", v.String())
	}
}
