// Package server implements the Redis-like single-threaded key-value server
// SKV builds on (paper §II-B, Fig 4): an event loop handling file events
// (client sockets / RDMA connections) and time events (serverCron), client
// objects with query and reply buffers, command dispatch into the store,
// and master-slave replication.
//
// Instantiated over internal/tcpsim it is the "original Redis" baseline;
// over internal/rconn it is RDMA-Redis. The SKV system in internal/core
// reuses it with the replication path redirected to the SmartNIC.
package server

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"skv/internal/backlog"
	"skv/internal/consistency"
	"skv/internal/fabric"
	"skv/internal/metrics"
	"skv/internal/model"
	"skv/internal/replstream"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/store"
	"skv/internal/tracking"
	"skv/internal/transport"
)

// Role is the node's replication role.
type Role int

// Replication roles.
const (
	RoleMaster Role = iota
	RoleSlave
)

func (r Role) String() string {
	if r == RoleSlave {
		return "slave"
	}
	return "master"
}

// Options configures a Server.
type Options struct {
	// Name identifies the server in logs and stats.
	Name string
	// Params supplies the cost model; nil uses model.Default().
	Params *model.Params
	// Seed drives the server's internal randomness deterministically.
	Seed int64
	// NumDBs is the SELECT-able database count (default 16).
	NumDBs int
	// BacklogSize is the replication backlog capacity (default 1MB).
	BacklogSize int
	// Port is the listen port (default 6379).
	Port int
	// DisableCron turns off serverCron time events (microbenchmarks only).
	DisableCron bool
	// Shards splits the keyspace across this many shard procs, each on its
	// own core, behind a dispatch/merge pipeline (model.Params.HostShards).
	// 0 or 1 keeps the single-threaded event loop bit-for-bit.
	Shards int
	// Listeners splits RESP parse + key-hash routing across this many
	// routing procs in front of the dispatch proc
	// (model.Params.RouteListeners). Client connections pin round-robin to
	// the routing procs, which pay the transport receive path, parse,
	// classification and shard handoff; the dispatch proc keeps only the
	// merge/order stage. 0 or 1 keeps the dispatch-owned pipeline
	// bit-for-bit. Ignored unless Shards > 1.
	Listeners int
	// Cluster, when non-nil, makes the node one member of a multi-master
	// hash-slot cluster: keyed commands are checked against the shared
	// routing table at admission and redirected (MOVED) or rejected
	// (CROSSSLOT) when this node's group does not own them. nil keeps the
	// single-master server bit-for-bit: no slot check, no extra charge.
	Cluster *ClusterRouting
	// WriteConsistency is the default write consistency level (per-client
	// overrides via SKV.CONSISTENCY). Async — the zero value — keeps the
	// legacy reply-before-replication path bit-for-bit.
	WriteConsistency consistency.Level
	// WriteQuorum is W for Quorum consistency (min 1).
	WriteQuorum int
}

// Server is one key-value node: a single-threaded process bound to a
// transport stack.
type Server struct {
	name   string
	eng    *sim.Engine
	proc   *sim.Proc
	stack  transport.Stack
	params *model.Params
	rnd    *rand.Rand

	store   *store.Store
	backlog *backlog.Backlog
	replID  string
	role    Role
	port    int

	clients      map[uint64]*client
	nextClientID uint64

	// Master-side replication state. repl owns the replication stream:
	// backlog append, SELECT injection, offset accounting, and per-tick
	// batching (internal/replstream).
	slaves []*slaveHandle
	repl   *replstream.Writer
	// WriteGate, when non-nil, can veto writes (SKV's min-slaves rule).
	WriteGate func() string

	// Slave-side replication state.
	master *masterLink

	// OnPropagate, when non-nil, replaces the default feed-each-slave
	// replication path with the SKV offload (the batch goes to Nic-KV as
	// one replication request). The backlog has already been appended when
	// it runs.
	OnPropagate func(replstream.Batch)

	// OnRoleChange is invoked after promotion/demotion (failover tests).
	OnRoleChange func(Role)

	// acks is the consistency plane: per-replica acknowledged offsets
	// (REPLCONF ACKs on the baseline, Nic-KV status frames on SKV),
	// per-client last-write offsets, blocked WAITs, and parked write
	// replies (internal/consistency).
	acks *consistency.AckTracker
	// defLevel/defW are the configured write consistency defaults.
	defLevel consistency.Level
	defW     int
	// OnWriteGate, when non-nil, is told about every parked write reply
	// (end offset, required ack count; 0 = all valid slaves) so an offload
	// layer can enforce the gate off-host: the SKV Host-KV forwards it to
	// Nic-KV, which releases the reply once W slaves acknowledged — the
	// host CPU never polls.
	OnWriteGate func(endOff int64, need int)

	// Client-side caching (CLIENT TRACKING, see tracking.go). track is the
	// in-band interest table, allocated on first use; trackLocal resolves
	// synthetic subscriber names back to connections. OnTrackInterest /
	// OnTrackDrop, when non-nil, let redirect-mode tracking offload the
	// table to Nic-KV: the server forwards interest and forgets it.
	track           *tracking.Table
	trackLocal      map[string]*client
	OnTrackInterest func(name, key string)
	OnTrackDrop     func(name string)

	alive bool
	cron  *sim.Ticker

	// Stats.
	CommandsProcessed uint64
	WritesPropagated  uint64
	ErrRepliesSent    uint64

	// shard is the multi-core dispatch plane, nil in single-threaded mode
	// (Options.Shards <= 1).
	shard *shardEngine

	// cluster is the hash-slot routing state (nil outside cluster mode);
	// clusterStats are the admission-plane redirect counters.
	cluster      *ClusterRouting
	clusterStats *clusterInstruments

	// metrics is the node's instrument registry; cmdStats caches the
	// per-command counter/histogram pair so the hot path never rebuilds
	// instrument names.
	metrics  *metrics.Registry
	cmdStats map[string]*cmdInstruments
	// extraInfo holds INFO sections registered by embedding layers (the SKV
	// Host-KV section).
	extraInfo []func() store.InfoSection
}

// cmdInstruments is the per-command metrics pair: invocation count and
// CPU-service-time histogram.
type cmdInstruments struct {
	calls   *metrics.Counter
	service *metrics.LatencyHist
}

// client mirrors the Redis client object: per-connection buffers and state.
type client struct {
	id     uint64
	conn   transport.Conn
	reader resp.Reader
	db     int
	// isSlaveLink marks the connection as a replication channel to a slave.
	isSlaveLink bool
	closed      bool

	// owner, when non-nil, is the routing proc this connection is pinned to
	// (RouteListeners > 1): it delivers the connection's reads and its core
	// is charged for parse, route, inline execution and reply emission.
	// nil = the dispatch proc owns the connection (legacy pipeline).
	owner *sim.Proc
	// route is 1 + the owning routing proc's index (0 = dispatch-owned).
	route int

	// Reply re-sequencing (sharded mode only): seqNext numbers commands in
	// arrival order, seqEmit is the next reply the connection may carry,
	// pending holds completed-but-unemittable replies (nil = no reply).
	seqNext uint64
	seqEmit uint64
	pending map[uint64][]byte

	// gated holds commands (sharded mode) that must run in sequence order
	// on the dispatch proc — WAIT — parked until seqEmit reaches them.
	gated map[uint64]gatedCmd

	// asking is the one-shot ASK escape: the previous command on this
	// connection was ASKING, so the next keyed command may address an
	// importing slot this node does not own. Consumed by slotCheck.
	asking bool

	// consOv, when set, overrides the server's write consistency defaults
	// for this connection (SKV.CONSISTENCY).
	consOv    bool
	consLevel consistency.Level
	consW     int

	// trackOn marks the connection as a CLIENT TRACKING subscriber;
	// trackRedirect sends its interest to the offload layer instead of the
	// local table; trackName is its subscriber identity in whichever table
	// holds the interest.
	trackOn       bool
	trackRedirect bool
	trackName     string

	// outq (single-threaded mode) preserves per-connection RESP reply
	// order while an earlier write reply sits parked on the consistency
	// tracker: later replies queue as ready slots behind the parked one
	// and drain in order when it fires. Empty in async mode — replies go
	// straight out, bit-for-bit legacy.
	outq []*outSlot
}

// outSlot is one queued reply: a placeholder until ready.
type outSlot struct {
	data  []byte
	ready bool
}

// gatedCmd is a parked sequence-ordered command (see client.gated).
type gatedCmd struct {
	cmd  *store.Command
	argv [][]byte
}

// slaveHandle is the master's view of one attached slave; its acknowledged
// offset lives on the consistency tracker, keyed by addr.
type slaveHandle struct {
	client *client
	addr   string
}

// New creates a server on the given transport stack. The stack's process is
// the server's single thread.
func New(opts Options, eng *sim.Engine, stack transport.Stack, proc *sim.Proc) *Server {
	p := opts.Params
	if p == nil {
		def := model.Default()
		p = &def
	}
	if opts.NumDBs == 0 {
		opts.NumDBs = 16
	}
	if opts.BacklogSize == 0 {
		opts.BacklogSize = 1 << 20
	}
	if opts.Port == 0 {
		opts.Port = 6379
	}
	rnd := rand.New(rand.NewSource(opts.Seed ^ 0x5b17))
	s := &Server{
		name:     opts.Name,
		eng:      eng,
		proc:     proc,
		stack:    stack,
		params:   p,
		rnd:      rnd,
		backlog:  backlog.New(opts.BacklogSize),
		replID:   fmt.Sprintf("%016x%016x", rnd.Uint64(), rnd.Uint64()),
		clients:  make(map[uint64]*client),
		port:     opts.Port,
		alive:    true,
		metrics:  metrics.NewRegistry(opts.Name, eng.Now),
		cmdStats: make(map[string]*cmdInstruments),
		cluster:  opts.Cluster,
		defLevel: opts.WriteConsistency,
		defW:     opts.WriteQuorum,
	}
	s.acks = consistency.NewTracker(s.metrics)
	if s.cluster != nil {
		s.clusterStats = newClusterInstruments(s.metrics)
	}
	shards := opts.Shards
	if shards < 1 {
		shards = 1
	}
	s.store = store.New(store.Options{DBs: opts.NumDBs, Shards: shards, Seed: opts.Seed ^ 0x57a7e, Clock: func() int64 {
		return int64(eng.Now() / sim.Time(sim.Millisecond))
	}})
	s.store.InfoProvider = s.infoSections
	if shards > 1 {
		s.shard = newShardEngine(s, opts.Name, shards, opts.Listeners)
	}
	s.repl = replstream.NewWriter(replstream.WriterConfig{
		Backlog:  s.backlog,
		MaxCmds:  p.ReplBatchMaxCmds,
		MaxBytes: p.ReplBatchMaxBytes,
		Flush:    s.flushReplBatch,
		Metrics:  s.metrics,
		// Partial batches flush when this server's core drains its queued
		// work — the event-loop quiesce point. Under load that coalesces
		// every write processed in the same busy period; idle, it fires at
		// the current instant, right after the producing event cascade.
		// BusyUntil only covers the task in flight, so the timer re-arms
		// while more work sits queued behind it: a fast core with a deep
		// queue (the demoted merge stage) is mid-busy-period, not quiesced,
		// and flushing there would collapse every batch to one command.
		// With ReplBatchMaxDelay set, the quiesce flush is replaced by a
		// doorbell-coalescing timer — an underloaded producer quiesces
		// between every two writes, which would collapse every batch to
		// one command.
		Schedule: func(fn func()) {
			if d := p.ReplBatchMaxDelay; d > 0 {
				eng.After(d, fn)
				return
			}
			var arm func()
			arm = func() {
				eng.After(s.proc.Core.BusyUntil().Sub(eng.Now()), func() {
					if s.proc.Core.QueueLen() > 0 {
						arm()
						return
					}
					fn()
				})
			}
			arm()
		},
	})
	stack.Listen(opts.Port, s.accept)
	if !opts.DisableCron {
		s.cron = eng.Every(p.CronPeriod, s.serverCron)
	}
	return s
}

// Accessors used by the SKV layer and the benchmark harness.

// Name reports the server's identifier.
func (s *Server) Name() string { return s.name }

// Store exposes the keyspace.
func (s *Server) Store() *store.Store { return s.store }

// Backlog exposes the replication backlog.
func (s *Server) Backlog() *backlog.Backlog { return s.backlog }

// Proc exposes the server's single-threaded process.
func (s *Server) Proc() *sim.Proc { return s.proc }

// Params exposes the cost model.
func (s *Server) Params() *model.Params { return s.params }

// Engine exposes the simulation engine.
func (s *Server) Engine() *sim.Engine { return s.eng }

// Stack exposes the transport stack.
func (s *Server) Stack() transport.Stack { return s.stack }

// Role reports the current replication role.
func (s *Server) Role() Role { return s.role }

// ReplID reports the replication ID.
func (s *Server) ReplID() string { return s.replID }

// ReplOffset reports the master replication offset (bytes of write stream).
func (s *Server) ReplOffset() int64 { return s.backlog.EndOffset() }

// Port reports the listen port.
func (s *Server) Port() int { return s.port }

// Alive reports whether the process is running (false after Crash).
func (s *Server) Alive() bool { return s.alive }

// SlaveCount reports the number of attached slaves (master side).
func (s *Server) SlaveCount() int { return len(s.slaves) }

// Metrics exposes the node's instrument registry.
func (s *Server) Metrics() *metrics.Registry { return s.metrics }

// Acks exposes the consistency plane: replica ack offsets, per-client write
// offsets, blocked WAITs, and parked write replies. The SKV Host-KV pushes
// Nic-KV status offsets and ack-release watermarks through this.
func (s *Server) Acks() *consistency.AckTracker { return s.acks }

// CheckWaiters re-evaluates blocked WAITs and parked writes against the
// tracker's current replica offsets (kept for layers and tests that push
// progress out of band; Ack/SetAll already check internally).
func (s *Server) CheckWaiters() { s.acks.Check() }

// NumShards reports how many shard procs execute keyspace commands (1 in
// single-threaded mode).
func (s *Server) NumShards() int {
	if s.shard == nil {
		return 1
	}
	return len(s.shard.procs)
}

// ShardRegistries exposes the per-shard instrument registries (empty in
// single-threaded mode).
func (s *Server) ShardRegistries() []*metrics.Registry {
	if s.shard == nil {
		return nil
	}
	return s.shard.Registries()
}

// ShardProcs exposes the shard procs (empty in single-threaded mode); the
// bench harness reads their cores' utilization.
func (s *Server) ShardProcs() []*sim.Proc {
	if s.shard == nil {
		return nil
	}
	return s.shard.Procs()
}

// NumRouteListeners reports how many routing procs front the dispatch proc
// (0 when the routing plane is off).
func (s *Server) NumRouteListeners() int {
	if s.shard == nil {
		return 0
	}
	return len(s.shard.routeProcs)
}

// RouteRegistries exposes the per-listener instrument registries (empty
// when the routing plane is off).
func (s *Server) RouteRegistries() []*metrics.Registry {
	if s.shard == nil {
		return nil
	}
	return s.shard.routeRegs
}

// RouteProcs exposes the routing procs (empty when the routing plane is
// off); the bench harness reads their cores' utilization.
func (s *Server) RouteProcs() []*sim.Proc {
	if s.shard == nil {
		return nil
	}
	return s.shard.routeProcs
}

// AddInfoSection registers an extra INFO section producer (the SKV layer
// adds its offload section through this).
func (s *Server) AddInfoSection(fn func() store.InfoSection) {
	s.extraInfo = append(s.extraInfo, fn)
}

// cmdInstrumentsFor returns the cached per-command instruments, resolving
// them on first use.
func (s *Server) cmdInstrumentsFor(name string) *cmdInstruments {
	ci := s.cmdStats[name]
	if ci == nil {
		ci = &cmdInstruments{
			calls:   s.metrics.Counter("server.cmd." + name + ".calls"),
			service: s.metrics.Histogram("server.cmd." + name + ".service"),
		}
		s.cmdStats[name] = ci
	}
	return ci
}

// serverCron is the periodic time event: active expiry, rehash steps,
// replication bookkeeping. Its CPU cost is a deliberate tail-latency source.
func (s *Server) serverCron() {
	if !s.alive {
		return
	}
	s.proc.Post(s.params.CronCPU, func() {
		if s.shard != nil {
			// Sharded: each shard core expires and rehashes its own slice.
			s.shard.cron()
		} else {
			s.store.ActiveExpireCycle(20)
			s.store.RehashStep(100)
		}
		if s.role == RoleSlave && s.master != nil {
			s.master.sendAck()
		}
	})
}

// accept handles a new inbound connection.
func (s *Server) accept(conn transport.Conn) {
	if !s.alive {
		return
	}
	s.nextClientID++
	c := &client{id: s.nextClientID, conn: conn}
	s.clients[c.id] = c
	if s.shard != nil {
		s.shard.adoptClient(c)
	}
	conn.SetHandler(func(data []byte) { s.readQueryFromClient(c, data) })
	conn.SetCloseHandler(func() { s.freeClient(c) })
}

// coreFor is the CPU core charged for work done on behalf of c: the owning
// routing core when the routing plane has the connection, the dispatch core
// otherwise. With RouteListeners <= 1 every client is dispatch-owned, so the
// charge sequence is bit-for-bit the legacy pipeline's.
func (s *Server) coreFor(c *client) *sim.Core {
	if c != nil && c.owner != nil {
		return c.owner.Core
	}
	return s.proc.Core
}

// disownClient returns a routing-plane connection to the dispatch proc:
// replication channels (PSYNC) must live where the merge stage feeds them,
// and their costs belong to the serialized-stream owner.
func (s *Server) disownClient(c *client) {
	if c.owner == nil {
		return
	}
	c.owner = nil
	c.route = 0
	if pa, ok := c.conn.(transport.ProcAssignable); ok {
		pa.AssignProc(s.proc)
	}
}

func (s *Server) freeClient(c *client) {
	c.closed = true
	delete(s.clients, c.id)
	for i, sl := range s.slaves {
		if sl.client == c {
			s.slaves = append(s.slaves[:i], s.slaves[i+1:]...)
			s.acks.DropReplica(sl.addr)
			break
		}
	}
	// Retire everything the consistency plane holds for this client:
	// blocked WAITs (timers cancelled, nothing replied — the connection is
	// gone) and parked write replies.
	s.acks.DropOwner(c.id)
	s.dropTracking(c)
	c.outq = nil
}

// readQueryFromClient is the file-event read callback (paper Fig 4): feed
// the query buffer, parse complete commands, execute each.
func (s *Server) readQueryFromClient(c *client, data []byte) {
	if !s.alive {
		return
	}
	c.reader.Feed(data)
	for {
		argv, ok, err := c.reader.ReadCommand()
		if err != nil {
			s.coreFor(c).Charge(s.params.ReplyBuildCPU)
			c.conn.Send(resp.AppendError(nil, "ERR Protocol error"))
			c.conn.Close()
			s.freeClient(c)
			return
		}
		if !ok {
			return
		}
		s.processCommand(c, argv)
		if !s.alive {
			return
		}
	}
}

// execCost models the CPU consumed executing a command body. cmd may be
// nil (unknown command: the store's error path is charged like the default
// case).
func (s *Server) execCost(cmd *store.Command, argv [][]byte) sim.Duration {
	p := s.params
	var base sim.Duration
	var payload int
	name := ""
	if cmd != nil {
		name = cmd.Name
	}
	switch name {
	case "get":
		base = p.CmdExecGetCPU
		if len(argv) > 1 {
			payload = len(argv[1])
		}
	case "set":
		base = p.CmdExecSetCPU
		if len(argv) > 2 {
			payload = len(argv[2])
		}
	default:
		base = p.CmdExecSetCPU
		for _, a := range argv[1:] {
			payload += len(a)
		}
	}
	cost := base + sim.Duration(float64(payload)*p.CmdExecPerByte)
	if p.ExecJitterSigma > 0 {
		f := math.Exp(p.ExecJitterSigma * s.rnd.NormFloat64() * 0.5)
		cost = sim.Duration(float64(cost) * f)
	}
	return cost
}

// processCommand runs one parsed command on behalf of a client: charge
// parse+execute CPU, dispatch (server-level commands first, then the
// store), reply, and propagate writes.
func (s *Server) processCommand(c *client, argv [][]byte) {
	// One allocation-free descriptor lookup covers server-level dispatch,
	// the write check, the cost model, and the store's execution.
	cmd := store.LookupCommand(argv[0])
	name := "unknown"
	if cmd != nil {
		name = cmd.Name
	}
	ci := s.cmdInstrumentsFor(name)
	ci.calls.Inc()
	// Service time is the CPU this command consumes on the core serving the
	// connection (the routing core when the routing plane owns it): the
	// busy-point advance across dispatch. Deterministic, unlike wall time.
	core := s.coreFor(c)
	busyStart := core.BusyUntil()
	if now := s.eng.Now(); busyStart < now {
		busyStart = now
	}
	s.dispatchCommand(c, cmd, argv)
	ci.service.Observe(core.BusyUntil().Sub(busyStart))
}

func (s *Server) dispatchCommand(c *client, cmd *store.Command, argv [][]byte) {
	size := 0
	for _, a := range argv {
		size += len(a) + 14 // RESP framing overhead per arg
	}
	s.coreFor(c).Charge(s.params.ParseCost(size))
	s.CommandsProcessed++

	// ASKING is handled at admission, not execution: its flag must be
	// visible to the NEXT command's slot check, which also runs at
	// admission — deferring ASKING behind a barrier hold queue while the
	// next command's check reads a stale flag would break the protocol.
	if s.cluster != nil && cmd != nil && cmd.Server && cmd.Name == "asking" {
		c.asking = true
		ack := resp.AppendSimple(nil, "OK")
		if s.shard != nil {
			s.shard.sequencedReply(c, ack)
		} else {
			s.reply(c, ack)
		}
		return
	}

	// Cluster mode: verify this node's group owns every key's slot before
	// the command enters the pipeline. Redirects re-sequence like any other
	// admission-plane reply, so pipelined clients see them in request order.
	if s.cluster != nil && cmd != nil && !cmd.Server && cmd.FirstKey > 0 {
		s.coreFor(c).Charge(s.params.SlotCheckCPU)
		if redirect := s.slotCheck(c, cmd, argv); redirect != nil {
			if s.shard != nil {
				s.shard.sequencedReply(c, redirect)
			} else {
				s.reply(c, redirect)
			}
			return
		}
	}

	// Tracked reads register interest at admission, before routing: the
	// interest must exist before any later write's invalidation fires, and
	// admission order is the one order both the single-threaded and the
	// sharded pipeline share.
	if c.trackOn && cmd != nil && !cmd.Write && !cmd.Server && cmd.FirstKey > 0 {
		s.recordInterest(c, cmd, argv)
	}

	if s.shard != nil {
		// Multi-core mode: hand the parsed command to the dispatch plane,
		// which routes it to a shard proc, fences it, or runs it inline.
		s.shard.route(c, cmd, argv)
		return
	}
	s.execute(c, cmd, argv)
}

// execute runs one resolved command to completion on the current event:
// server-level dispatch, write gating, execution cost, store dispatch,
// propagation, reply. The single-threaded server calls it straight from
// dispatchCommand; the sharded dispatch plane calls it for inline and
// barrier commands.
func (s *Server) execute(c *client, cmd *store.Command, argv [][]byte) {
	// Server-level commands (connection state, replication handshake).
	if cmd != nil && cmd.Server {
		switch cmd.Name {
		case "select":
			s.cmdSelect(c, argv)
		case "psync":
			s.cmdPSync(c, argv)
		case "replconf":
			s.cmdReplConf(c, argv)
		case "slaveof", "replicaof":
			s.cmdSlaveOf(c, argv)
		case "wait":
			s.cmdWait(c, argv)
		case "skv.consistency":
			s.cmdConsistency(c, argv)
		case "cluster":
			s.cmdCluster(c, argv)
		case "client":
			s.cmdClient(c, argv)
		case "asking":
			// Outside cluster mode (or when reaching execution through a
			// barrier drain) ASKING is a harmless no-op acknowledgement; in
			// cluster mode the admission path answers it before this point.
			s.reply(c, resp.AppendSimple(nil, "OK"))
		}
		return
	}

	// Writes are refused on slaves and when the write gate (min-slaves)
	// vetoes them. (The sharded plane performs these checks before routing;
	// re-checking here is harmless for barrier commands.)
	if cmd != nil && cmd.Write {
		if s.role == RoleSlave {
			s.reply(c, readonlyError())
			return
		}
		if s.WriteGate != nil {
			if msg := s.WriteGate(); msg != "" {
				s.ErrRepliesSent++
				s.reply(c, gateError(msg))
				return
			}
		}
	}

	// Live migration: a key in a MIGRATING slot that is no longer here has
	// moved to the target — answer ASK (or TRYAGAIN for a half-present
	// multi-key command) at execution time, when presence is definitive.
	if redirect := s.migrationCheck(cmd, c.db, argv); redirect != nil {
		s.reply(c, redirect)
		return
	}

	s.coreFor(c).Charge(s.execCost(cmd, argv))
	reply, dirty := s.store.Dispatch(cmd, c.db, argv)
	if dirty && s.role == RoleMaster {
		off := s.propagate(c.db, argv)
		s.acks.NoteWrite(c.id, off)
		s.pushInvalidations(cmd, argv)
		if need, wire := s.gateNeed(c); need > 0 {
			s.parkWrite(c, off, need, wire, reply)
			return
		}
	}
	s.reply(c, reply)
}

func readonlyError() []byte {
	return resp.AppendError(nil, "READONLY You can't write against a read only replica.")
}

func gateError(msg string) []byte { return resp.AppendError(nil, msg) }

// reply writes the RESP reply to the client (the addReply →
// sendReplyToClient path). In sharded mode, an inline command executing
// ahead of its reply turn diverts its bytes into the dispatch plane's
// capture buffer for re-sequencing.
func (s *Server) reply(c *client, data []byte) {
	if s.shard != nil && s.shard.capturing && c == s.shard.capClient {
		s.shard.capBuf = append(s.shard.capBuf, data...)
		return
	}
	if len(c.outq) > 0 {
		// An earlier write reply is parked on the consistency tracker:
		// queue behind it so the connection still sees replies in request
		// order. The build cost is charged when the slot drains.
		c.outq = append(c.outq, &outSlot{data: data, ready: true})
		return
	}
	s.coreFor(c).Charge(s.params.ReplyBuildCPU)
	c.conn.Send(data)
}

// levelFor resolves the effective write consistency for a connection.
func (s *Server) levelFor(c *client) (consistency.Level, int) {
	if c.consOv {
		return c.consLevel, c.consW
	}
	return s.defLevel, s.defW
}

// gateNeed maps the connection's consistency level to the replica-ack count
// a write reply must wait for; need 0 (async) means reply immediately.
// wire is the count encoded into the msgGate frame for the offload layer:
// for "all" it is the 0 sentinel — the NIC resolves it against its live
// valid-slave view, which is authoritative in SKV mode (the host's bulk
// tracker only refreshes on ProbePeriod status frames and may lag or be
// empty), while need keeps a host-side fallback for the tracker.
func (s *Server) gateNeed(c *client) (need, wire int) {
	lvl, w := s.levelFor(c)
	switch lvl {
	case consistency.Quorum:
		if w < 1 {
			w = 1
		}
		return w, w
	case consistency.All:
		n := s.acks.ReplicaCount()
		if n < 1 {
			n = 1
		}
		return n, 0
	}
	return 0, 0
}

// parkWrite withholds a write reply until need replicas acknowledge off.
// Single-threaded mode parks a placeholder slot in the client's reply queue;
// a sharded barrier write (the only sharded path that reaches execute's
// gating) reclaims its re-sequencer turn instead. Either way the offload
// layer is told about the gate so Nic-KV can release it off-host.
func (s *Server) parkWrite(c *client, off int64, need, wire int, reply []byte) {
	if s.shard != nil && s.shard.barrierC == c {
		e := s.shard
		seq := e.barrierSeq
		e.barrierParked = true
		s.acks.ParkWrite(c.id, off, need, func() { e.complete(c, seq, reply) })
	} else {
		slot := &outSlot{}
		c.outq = append(c.outq, slot)
		s.acks.ParkWrite(c.id, off, need, func() {
			slot.data, slot.ready = reply, true
			s.drainOut(c)
		})
	}
	if s.OnWriteGate != nil {
		s.OnWriteGate(off, wire)
	}
}

// drainOut emits every consecutive ready reply at the head of the client's
// queue (single-threaded parked-write path).
func (s *Server) drainOut(c *client) {
	for len(c.outq) > 0 && c.outq[0].ready {
		slot := c.outq[0]
		c.outq = c.outq[1:]
		if s.alive && !c.closed {
			s.coreFor(c).Charge(s.params.ReplyBuildCPU)
			c.conn.Send(slot.data)
		}
	}
}

func (s *Server) cmdSelect(c *client, argv [][]byte) {
	if len(argv) != 2 {
		s.reply(c, resp.AppendError(nil, "ERR wrong number of arguments for 'select' command"))
		return
	}
	n, err := strconv.Atoi(string(argv[1]))
	if err != nil || n < 0 || n >= s.store.NumDBs() {
		s.reply(c, resp.AppendError(nil, "ERR DB index is out of range"))
		return
	}
	c.db = n
	s.reply(c, resp.AppendSimple(nil, "OK"))
}

// Crash stops the process: no more events are handled until Recover. The
// transport endpoints stay up (the machine is alive; the Host-KV process
// died), so peers observe silence, exactly what Nic-KV's probe-based
// failure detector is built to catch (paper §III-D, Fig 14).
func (s *Server) Crash() {
	s.alive = false
	if s.cron != nil {
		s.cron.Stop()
	}
}

// Recover restarts the process. A slave re-establishes replication with its
// master (partial resync via the backlog when possible).
func (s *Server) Recover() {
	if s.alive {
		return
	}
	s.alive = true
	if s.cron != nil {
		s.cron = s.eng.Every(s.params.CronPeriod, s.serverCron)
	}
	if s.role == RoleSlave && s.master != nil {
		target, port := s.master.targetEP, s.master.targetPort
		s.master = nil
		s.SlaveOf(target, port)
	}
}

// SetRole forces the replication role without side effects (the SKV layer
// manages its own synchronization).
func (s *Server) SetRole(r Role) { s.role = r }

// PromoteToMaster switches a slave into master role (SKV failover).
func (s *Server) PromoteToMaster() {
	if s.role == RoleMaster {
		return
	}
	s.role = RoleMaster
	s.master = nil
	if s.OnRoleChange != nil {
		s.OnRoleChange(RoleMaster)
	}
}

// DemoteRole returns a promoted node to the slave role without touching
// replication links (the SKV slave agent resynchronizes itself) and fires
// OnRoleChange so topology layers — the cluster slot table — observe the
// demotion exactly like they observed the promotion.
func (s *Server) DemoteRole() {
	if s.role == RoleSlave {
		return
	}
	s.role = RoleSlave
	if s.OnRoleChange != nil {
		s.OnRoleChange(RoleSlave)
	}
}

// DemoteToSlaveOf turns a (promoted) master back into a slave of target.
func (s *Server) DemoteToSlaveOf(target *fabric.Endpoint, port int) {
	s.role = RoleSlave
	if s.OnRoleChange != nil {
		s.OnRoleChange(RoleSlave)
	}
	s.SlaveOf(target, port)
}
