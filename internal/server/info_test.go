package server

import (
	"strings"
	"testing"

	"skv/internal/resp"
	"skv/internal/sim"
)

// infoLines parses a sectioned INFO reply into its non-blank lines.
func infoLines(t *testing.T, v resp.Value) []string {
	t.Helper()
	if v.Type != resp.TypeBulk {
		t.Fatalf("INFO reply type = %v (%s)", v.Type, v.String())
	}
	var out []string
	for _, ln := range strings.Split(v.String(), "\r\n") {
		if ln != "" {
			out = append(out, ln)
		}
	}
	return out
}

func hasLine(lines []string, want string) bool {
	for _, ln := range lines {
		if ln == want || strings.HasPrefix(ln, want) {
			return true
		}
	}
	return false
}

func TestInfoSectionsOnLiveMaster(t *testing.T) {
	w := newWorld(50)
	master := w.server("m", 6379)
	slave := w.server("sl", 6380)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()

	c := w.dial(t, master)
	c.do(t, "SET", "k", "v")
	w.eng.Run(w.eng.Now().Add(time200ms))

	lines := infoLines(t, c.do(t, "INFO"))
	for _, want := range []string{
		"# Server", "server_name:m", "# Clients", "# Replication",
		"role:master", "connected_slaves:1", "master_repl_offset:",
		"# Stats", "total_commands_processed:", "# Keyspace",
	} {
		if !hasLine(lines, want) {
			t.Fatalf("INFO missing %q:\n%s", want, strings.Join(lines, "\n"))
		}
	}
}

const time200ms = 200 * sim.Millisecond

func TestInfoReplicationSectionArgument(t *testing.T) {
	w := newWorld(51)
	master := w.server("m", 6379)
	slave := w.server("sl", 6380)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()

	c := w.dial(t, master)
	c.do(t, "SET", "k", "v")
	w.eng.Run(w.eng.Now().Add(time200ms))

	lines := infoLines(t, c.do(t, "INFO", "replication"))
	if lines[0] != "# Replication" {
		t.Fatalf("first line = %q", lines[0])
	}
	for _, want := range []string{"role:master", "master_repl_offset:", "slave0:addr="} {
		if !hasLine(lines, want) {
			t.Fatalf("INFO replication missing %q:\n%s", want, strings.Join(lines, "\n"))
		}
	}
	// The slave has acked everything by now: lag must be reported as 0.
	if !hasLine(lines, "connected_slaves:1") {
		t.Fatalf("no connected_slaves line:\n%s", strings.Join(lines, "\n"))
	}
	for _, ln := range lines {
		if strings.HasPrefix(ln, "slave0:") && !strings.HasSuffix(ln, ",lag=0") {
			t.Fatalf("slave0 lag not converged: %q", ln)
		}
	}
	// Only the requested section comes back.
	if hasLine(lines, "# Server") || hasLine(lines, "# Keyspace") {
		t.Fatalf("INFO replication leaked sections:\n%s", strings.Join(lines, "\n"))
	}

	if v := c.do(t, "INFO", "nosuchsection"); !v.IsError() ||
		!strings.Contains(v.String(), "unknown INFO section") {
		t.Fatalf("unknown section reply = %s", v.String())
	}
}

func TestInfoReplicationOnSlave(t *testing.T) {
	w := newWorld(52)
	master := w.server("m", 6379)
	slave := w.server("sl", 6380)
	slave.SlaveOf(master.Stack().Endpoint(), 6379)
	w.run()

	c := w.dial(t, slave)
	lines := infoLines(t, c.do(t, "INFO", "replication"))
	for _, want := range []string{"role:slave", "master_link_status:up", "slave_repl_offset:", "slave_read_only:1"} {
		if !hasLine(lines, want) {
			t.Fatalf("slave INFO replication missing %q:\n%s", want, strings.Join(lines, "\n"))
		}
	}
}

func TestServerCommandMetrics(t *testing.T) {
	w := newWorld(53)
	srv := w.server("m", 6379)
	c := w.dial(t, srv)
	c.do(t, "SET", "k", "v")
	c.do(t, "SET", "k", "v2")
	c.do(t, "GET", "k")

	snap := srv.Metrics().Snapshot()
	if snap.Node != "m" {
		t.Fatalf("registry node = %q", snap.Node)
	}
	if got := snap.Counters["server.cmd.set.calls"]; got != 2 {
		t.Fatalf("set calls = %d want 2", got)
	}
	if got := snap.Counters["server.cmd.get.calls"]; got != 1 {
		t.Fatalf("get calls = %d want 1", got)
	}
	hs, ok := snap.Hists["server.cmd.set.service"]
	if !ok || hs.Count != 2 {
		t.Fatalf("set service hist = %+v ok=%v", hs, ok)
	}
	if hs.Max <= 0 {
		t.Fatalf("set service time must be positive, got %v", hs.Max)
	}
}
