package sim

import "fmt"

// Core models one hardware thread: a serializing CPU resource. Work
// submitted with Exec runs to completion in FIFO order; a core with
// Speed < 1 (e.g. a SmartNIC ARM core) stretches every cost proportionally.
//
// Costs are expressed at reference-core speed: a cost of 1µs takes 1µs on a
// Speed-1.0 host core and 1µs/Speed on a slower core.
type Core struct {
	eng  *Engine
	name string

	// Speed is the core's throughput relative to the reference host core.
	Speed float64

	queue       []coreTask
	dispatching bool

	busyUntil Time
	busyAccum Duration // total busy time, for utilization reporting
	started   Time     // time of first dispatch, for utilization reporting
	everBusy  bool
}

type coreTask struct {
	cost Duration
	fn   func()
}

// NewCore creates a core attached to the engine. speed is relative to the
// reference host core (1.0).
func NewCore(eng *Engine, name string, speed float64) *Core {
	if speed <= 0 {
		panic(fmt.Sprintf("sim: core %s must have positive speed, got %v", name, speed))
	}
	return &Core{eng: eng, name: name, Speed: speed}
}

// Name reports the identifier given at construction.
func (c *Core) Name() string { return c.name }

// scale converts a reference-speed cost into wall (virtual) time on this core.
func (c *Core) scale(cost Duration) Duration {
	if cost <= 0 {
		return 0
	}
	return Duration(float64(cost)/c.Speed + 0.5)
}

// Exec enqueues work that consumes cost CPU, then runs fn at its completion
// time. Queued work runs strictly FIFO; fn may call Charge to consume
// additional CPU discovered during processing, which delays everything
// queued behind it.
func (c *Core) Exec(cost Duration, fn func()) {
	c.queue = append(c.queue, coreTask{cost: cost, fn: fn})
	if !c.dispatching {
		c.dispatching = true
		c.dispatch()
	}
}

func (c *Core) dispatch() {
	t := c.queue[0]
	c.queue = c.queue[1:]
	start := c.eng.Now()
	if c.busyUntil > start {
		start = c.busyUntil
	}
	if !c.everBusy {
		c.everBusy = true
		c.started = start
	}
	d := c.scale(t.cost)
	c.busyUntil = start.Add(d)
	c.busyAccum += d
	c.eng.At(c.busyUntil, func() {
		if t.fn != nil {
			t.fn()
		}
		if len(c.queue) > 0 {
			c.dispatch()
		} else {
			c.dispatching = false
		}
	})
}

// Charge consumes additional CPU at the core's current completion point and
// returns the new completion time. It is intended to be called from inside a
// function started by Exec, when the amount of work only becomes known while
// processing (e.g. a command handler that decides to send N replication
// messages). Work queued behind the caller is delayed accordingly.
func (c *Core) Charge(cost Duration) Time {
	now := c.eng.Now()
	if c.busyUntil < now {
		c.busyUntil = now
	}
	d := c.scale(cost)
	c.busyUntil = c.busyUntil.Add(d)
	c.busyAccum += d
	return c.busyUntil
}

// BusyUntil reports the virtual time at which the core becomes free.
func (c *Core) BusyUntil() Time { return c.busyUntil }

// Idle reports whether the core has no queued or in-flight work now.
func (c *Core) Idle() bool { return !c.dispatching && c.busyUntil <= c.eng.Now() }

// QueueLen reports the number of tasks waiting behind the current one.
func (c *Core) QueueLen() int { return len(c.queue) }

// Utilization reports the fraction of time the core spent busy between its
// first use and the given end time.
func (c *Core) Utilization(end Time) float64 {
	if !c.everBusy || end <= c.started {
		return 0
	}
	total := end.Sub(c.started)
	u := float64(c.busyAccum) / float64(total)
	if u > 1 {
		u = 1
	}
	return u
}

// BusyTime reports the total CPU time consumed on this core so far.
func (c *Core) BusyTime() Duration { return c.busyAccum }
