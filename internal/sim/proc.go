package sim

// Proc models a single-threaded event-loop process (a Redis server, a
// Nic-KV instance, a benchmark client) pinned to a Core. Incoming events —
// message deliveries, timer fires — are queued and serviced one at a time in
// arrival order.
//
// The wakeup cost models the epoll_wait return / completion-channel wake
// path: it is charged only on an idle→busy transition, so a saturated
// process amortizes it across the batch of queued events, exactly the
// adaptive-batching effect that lets a single Redis thread reach hundreds of
// kops/s.
type Proc struct {
	Core *Core
	eng  *Engine

	// WakeupCost is charged when the process transitions from idle to busy.
	WakeupCost Duration

	queue     []queuedTask
	scheduled bool

	// Wakeups counts idle→busy transitions (for CPU-efficiency reporting).
	Wakeups uint64
	// Handled counts serviced tasks.
	Handled uint64
}

type queuedTask struct {
	cost Duration
	fn   func()
}

// NewProc creates a process on the given core.
func NewProc(eng *Engine, core *Core, wakeup Duration) *Proc {
	return &Proc{Core: core, eng: eng, WakeupCost: wakeup}
}

// Post enqueues a task that consumes cost CPU before its effects (fn) are
// applied. fn runs at the task's completion time and may consume further CPU
// with p.Core.Charge; any message it sends departs at the charged time.
func (p *Proc) Post(cost Duration, fn func()) {
	p.queue = append(p.queue, queuedTask{cost: cost, fn: fn})
	if !p.scheduled {
		p.scheduled = true
		wake := Duration(0)
		if p.Core.Idle() {
			wake = p.WakeupCost
			p.Wakeups++
		}
		p.runNext(wake)
	}
}

func (p *Proc) runNext(extra Duration) {
	t := p.queue[0]
	p.queue = p.queue[1:]
	p.Core.Exec(extra+t.cost, func() {
		p.Handled++
		if t.fn != nil {
			t.fn()
		}
		if len(p.queue) > 0 {
			p.runNext(0)
		} else {
			p.scheduled = false
		}
	})
}

// QueueLen reports the number of tasks waiting (not counting the one being
// serviced).
func (p *Proc) QueueLen() int { return len(p.queue) }
