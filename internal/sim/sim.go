// Package sim implements a deterministic discrete-event simulation engine.
//
// The engine drives all SKV cluster experiments in virtual time: a binary
// heap of timestamped events, a virtual clock, and CPU resources (Core) that
// serialize work the way a single hardware thread does. Determinism is
// guaranteed by tie-breaking simultaneous events on a monotone sequence
// number and by giving every component its own seeded RNG.
//
// Virtual time is measured in integer nanoseconds (Time). All latency and
// throughput numbers reported by the benchmark harness derive from this
// clock, which makes experiment output bit-for-bit reproducible.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is a point in virtual time, in nanoseconds since simulation start.
type Time int64

// Duration is a span of virtual time, in nanoseconds.
type Duration int64

// Convenient duration units.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Micros reports the duration in (possibly fractional) microseconds.
func (d Duration) Micros() float64 { return float64(d) / 1e3 }

// Millis reports the duration in (possibly fractional) milliseconds.
func (d Duration) Millis() float64 { return float64(d) / 1e6 }

// Seconds reports the duration in (possibly fractional) seconds.
func (d Duration) Seconds() float64 { return float64(d) / 1e9 }

// Add offsets a point in time by a duration.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub reports the duration elapsed from u to t.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", float64(t)/1e9)
}

// Event is a scheduled callback. It can be cancelled before it fires.
type Event struct {
	at       Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 once popped
}

// Cancel prevents the event from firing. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Event) Cancel() {
	if e != nil {
		e.canceled = true
		e.fn = nil
	}
}

// Canceled reports whether Cancel was called.
func (e *Event) Canceled() bool { return e.canceled }

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Time { return e.at }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is the simulation kernel: a virtual clock plus an event queue.
// It is not safe for concurrent use; the whole simulated world runs on the
// calling goroutine, which is what makes runs deterministic.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	rng     *rand.Rand
	stopped bool

	// Processed counts events executed so far (for runaway detection and
	// test assertions).
	Processed uint64
}

// New creates an engine whose component RNGs derive from seed.
func New(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now reports the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Rand returns the engine's root RNG. Components that need independent
// streams should use NewRand.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// NewRand derives an independent, deterministic RNG stream for a component.
func (e *Engine) NewRand() *rand.Rand {
	return rand.New(rand.NewSource(e.rng.Int63()))
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it would silently reorder causality.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	e.seq++
	ev := &Event{at: t, seq: e.seq, fn: fn}
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d from now. Negative d is clamped to zero.
func (e *Engine) After(d Duration, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now.Add(d), fn)
}

// Ticker is a handle for a periodic schedule created by Every.
type Ticker struct {
	stopped bool
	ev      *Event
}

// Stop halts the periodic series. Safe to call multiple times.
func (t *Ticker) Stop() {
	t.stopped = true
	t.ev.Cancel()
}

// Every schedules fn to run every period, starting after the first period.
func (e *Engine) Every(period Duration, fn func()) *Ticker {
	if period <= 0 {
		panic("sim: Every requires a positive period")
	}
	t := &Ticker{}
	var tick func()
	tick = func() {
		if t.stopped {
			return
		}
		fn()
		if !t.stopped {
			t.ev = e.After(period, tick)
		}
	}
	t.ev = e.After(period, tick)
	return t
}

// Stop makes Run return after the event currently executing (if any).
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the queue empties, the horizon passes, or Stop
// is called. A horizon of 0 means "no horizon". It returns the virtual time
// at which it stopped.
func (e *Engine) Run(horizon Time) Time {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := e.events[0]
		if horizon > 0 && ev.at > horizon {
			e.now = horizon
			return e.now
		}
		heap.Pop(&e.events)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.Processed++
		fn()
	}
	if horizon > 0 && e.now < horizon && !e.stopped {
		e.now = horizon
	}
	return e.now
}

// RunFor advances the simulation by d from the current time (scenario
// scripts read better with relative horizons).
func (e *Engine) RunFor(d Duration) Time { return e.Run(e.now.Add(d)) }

// Pending reports the number of events still queued (including cancelled
// events not yet popped).
func (e *Engine) Pending() int { return len(e.events) }
