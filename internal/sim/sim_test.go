package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := New(1)
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("events out of order: %v", got)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %v, want 30", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := New(1)
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", got)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := New(1)
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run(0)
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestEngineHorizon(t *testing.T) {
	e := New(1)
	ran := 0
	e.At(10, func() { ran++ })
	e.At(100, func() { ran++ })
	end := e.Run(50)
	if ran != 1 {
		t.Fatalf("ran %d events before horizon, want 1", ran)
	}
	if end != 50 {
		t.Fatalf("stopped at %v, want 50", end)
	}
	e.Run(0)
	if ran != 2 {
		t.Fatalf("second Run did not resume; ran=%d", ran)
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := New(1)
	var at Time
	e.At(100, func() {
		e.After(25, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 125 {
		t.Fatalf("After fired at %v, want 125", at)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := New(1)
	e.At(100, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(50, func() {})
	})
	e.Run(0)
}

func TestEngineEvery(t *testing.T) {
	e := New(1)
	count := 0
	var h *Ticker
	h = e.Every(10, func() {
		count++
		if count == 3 {
			h.Stop()
		}
	})
	e.Run(1000)
	if count != 3 {
		t.Fatalf("periodic fired %d times, want 3", count)
	}
}

func TestEngineStop(t *testing.T) {
	e := New(1)
	ran := 0
	e.At(10, func() { ran++; e.Stop() })
	e.At(20, func() { ran++ })
	e.Run(0)
	if ran != 1 {
		t.Fatalf("Stop did not halt run; ran=%d", ran)
	}
}

func TestCoreSerializes(t *testing.T) {
	e := New(1)
	c := NewCore(e, "host0", 1.0)
	var done []Time
	e.At(0, func() {
		c.Exec(100, func() { done = append(done, e.Now()) })
		c.Exec(50, func() { done = append(done, e.Now()) })
	})
	e.Run(0)
	if len(done) != 2 || done[0] != 100 || done[1] != 150 {
		t.Fatalf("core completions = %v, want [100 150]", done)
	}
}

func TestCoreSpeedScaling(t *testing.T) {
	e := New(1)
	slow := NewCore(e, "arm0", 0.25)
	var at Time
	e.At(0, func() {
		slow.Exec(100, func() { at = e.Now() })
	})
	e.Run(0)
	if at != 400 {
		t.Fatalf("0.25-speed core finished 100ns job at %v, want 400", at)
	}
}

func TestCoreCharge(t *testing.T) {
	e := New(1)
	c := NewCore(e, "c", 1.0)
	var depart Time
	e.At(0, func() {
		c.Exec(100, func() {
			depart = c.Charge(30)
		})
		c.Exec(10, func() {
			if e.Now() != 140 {
				t.Errorf("second task finished at %v, want 140 (after charge)", e.Now())
			}
		})
	})
	e.Run(0)
	if depart != 130 {
		t.Fatalf("Charge returned %v, want 130", depart)
	}
}

func TestCoreUtilization(t *testing.T) {
	e := New(1)
	c := NewCore(e, "c", 1.0)
	e.At(0, func() { c.Exec(50, func() {}) })
	e.Run(100)
	u := c.Utilization(100)
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want 0.5", u)
	}
}

func TestProcFIFOAndWakeup(t *testing.T) {
	e := New(1)
	c := NewCore(e, "c", 1.0)
	p := NewProc(e, c, 10) // 10ns wakeup
	var done []Time
	e.At(0, func() {
		p.Post(100, func() { done = append(done, e.Now()) })
		p.Post(100, func() { done = append(done, e.Now()) })
	})
	e.Run(0)
	// First task pays the wakeup (10) + 100; second is batched: no wakeup.
	if len(done) != 2 || done[0] != 110 || done[1] != 210 {
		t.Fatalf("proc completions = %v, want [110 210]", done)
	}
	if p.Wakeups != 1 {
		t.Fatalf("wakeups = %d, want 1 (batching)", p.Wakeups)
	}
}

func TestProcIdleTransitionPaysWakeupAgain(t *testing.T) {
	e := New(1)
	c := NewCore(e, "c", 1.0)
	p := NewProc(e, c, 10)
	e.At(0, func() { p.Post(100, nil) })
	e.At(500, func() { p.Post(100, nil) })
	e.Run(0)
	if p.Wakeups != 2 {
		t.Fatalf("wakeups = %d, want 2", p.Wakeups)
	}
	if p.Handled != 2 {
		t.Fatalf("handled = %d, want 2", p.Handled)
	}
}

// Property: for any batch of task costs, a Proc finishes them in FIFO order
// with total elapsed = wakeup + sum(costs), regardless of cost values.
func TestProcBatchProperty(t *testing.T) {
	f := func(costs []uint16) bool {
		if len(costs) == 0 {
			return true
		}
		e := New(1)
		c := NewCore(e, "c", 1.0)
		p := NewProc(e, c, 7)
		var last Time
		sum := Duration(7)
		e.At(0, func() {
			for _, cost := range costs {
				d := Duration(cost)
				sum += d
				p.Post(d, func() { last = e.Now() })
			}
		})
		e.Run(0)
		return last == Time(sum) && p.Wakeups == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: engine execution is deterministic — two engines fed the same
// schedule process events at identical times.
func TestEngineDeterminism(t *testing.T) {
	run := func(seed int64) []Time {
		e := New(seed)
		var log []Time
		var step func(depth int)
		step = func(depth int) {
			log = append(log, e.Now())
			if depth <= 0 {
				return
			}
			d := Duration(e.Rand().Intn(100) + 1)
			e.After(d, func() { step(depth - 1) })
			e.After(d*2, func() { step(depth - 2) })
		}
		e.At(0, func() { step(6) })
		e.Run(0)
		return log
	}
	a, b := run(42), run(42)
	if len(a) != len(b) {
		t.Fatalf("different event counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestDurationConversions(t *testing.T) {
	if (1500 * Nanosecond).Micros() != 1.5 {
		t.Error("Micros conversion wrong")
	}
	if (2500 * Microsecond).Millis() != 2.5 {
		t.Error("Millis conversion wrong")
	}
	if (1500 * Millisecond).Seconds() != 1.5 {
		t.Error("Seconds conversion wrong")
	}
	if Time(1000).Add(500) != Time(1500) {
		t.Error("Time.Add wrong")
	}
	if Time(1500).Sub(Time(1000)) != 500 {
		t.Error("Time.Sub wrong")
	}
}
