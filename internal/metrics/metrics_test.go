package metrics

import (
	"strings"
	"testing"

	"skv/internal/sim"
)

func TestNilSafety(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	g := r.Gauge("y")
	h := r.Histogram("z")
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(-1)
	h.Observe(sim.Millisecond)
	if c.Value() != 0 || g.Value() != 0 || h.Hist() != nil {
		t.Fatal("nil instruments must be no-ops")
	}
	if r.Node() != "" {
		t.Fatal("nil registry node must be empty")
	}
	if s := r.Snapshot(); s.Node != "" || len(s.Counters) != 0 {
		t.Fatal("nil registry snapshot must be zero")
	}
	var tl *Timeline
	tl.Record(EventPromote, "n")
	if tl.Events() != nil || tl.String() != "" {
		t.Fatal("nil timeline must be a no-op")
	}
}

func TestRegistryInstruments(t *testing.T) {
	var now sim.Time
	r := NewRegistry("node0", func() sim.Time { return now })
	c := r.Counter("a.b")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter=%d want 3", c.Value())
	}
	if r.Counter("a.b") != c {
		t.Fatal("same name must return same counter")
	}
	g := r.Gauge("lag")
	g.Set(10)
	g.Add(-4)
	if g.Value() != 6 {
		t.Fatalf("gauge=%d want 6", g.Value())
	}
	h := r.Histogram("lat")
	h.Observe(2 * sim.Microsecond)
	h.Observe(4 * sim.Microsecond)
	if h.Hist().Count() != 2 {
		t.Fatalf("hist count=%d want 2", h.Hist().Count())
	}

	now = sim.Time(5 * sim.Millisecond)
	s := r.Snapshot()
	if s.Node != "node0" || s.At != now {
		t.Fatalf("snapshot node=%q at=%d", s.Node, int64(s.At))
	}
	if s.Counters["a.b"] != 3 || s.Gauges["lag"] != 6 {
		t.Fatalf("snapshot values wrong: %+v", s)
	}
	hs := s.Hists["lat"]
	if hs.Count != 2 || hs.Max != 4*sim.Microsecond {
		t.Fatalf("hist stat wrong: %+v", hs)
	}
}

func TestSnapshotStringDeterministic(t *testing.T) {
	build := func() string {
		var now sim.Time = sim.Time(7 * sim.Millisecond)
		r := NewRegistry("n", func() sim.Time { return now })
		// Create in different orders; output must still be sorted.
		r.Counter("z.last").Add(1)
		r.Counter("a.first").Add(2)
		r.Gauge("mid").Set(-3)
		r.Histogram("lat").Observe(3 * sim.Microsecond)
		return r.Snapshot().String()
	}
	s1, s2 := build(), build()
	if s1 != s2 {
		t.Fatalf("snapshot rendering not deterministic:\n%s\nvs\n%s", s1, s2)
	}
	lines := strings.Split(strings.TrimSpace(s1), "\n")
	want := []string{
		"node=n at=7000000",
		"counter a.first 2",
		"counter z.last 1",
		"gauge mid -3",
	}
	for i, w := range want {
		if lines[i] != w {
			t.Fatalf("line %d = %q, want %q", i, lines[i], w)
		}
	}
	if !strings.HasPrefix(lines[4], "hist lat n=1 ") {
		t.Fatalf("hist line = %q", lines[4])
	}
}

func TestTimeline(t *testing.T) {
	var now sim.Time
	tl := NewTimeline(func() sim.Time { return now })
	now = sim.Time(100 * sim.Millisecond)
	tl.Record(EventProbeMiss, "master")
	now = sim.Time(300 * sim.Millisecond)
	tl.Record(EventMarkDown, "master")
	tl.Record(EventPromote, "slave0/host")

	ev := tl.Events()
	if len(ev) != 3 {
		t.Fatalf("events=%d want 3", len(ev))
	}
	if first, ok := tl.First(EventMarkDown); !ok || first.At != sim.Time(300*sim.Millisecond) {
		t.Fatalf("First(MarkDown) = %+v ok=%v", first, ok)
	}
	if _, ok := tl.First(EventRestore); ok {
		t.Fatal("First(Restore) should not exist")
	}
	if e, ok := tl.FirstAfter(EventProbeMiss, sim.Time(200*sim.Millisecond)); ok {
		t.Fatalf("FirstAfter should miss: %+v", e)
	}
	out := tl.String()
	if !strings.Contains(out, "mark-down") || !strings.Contains(out, "promote") {
		t.Fatalf("timeline render missing events:\n%s", out)
	}
}
