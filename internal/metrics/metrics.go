// Package metrics is the observability plane: a deterministic per-node
// registry of named counters, gauges, and latency histograms, stamped with
// virtual (simulation) time only — never wall time — so two runs with the
// same seed produce byte-identical snapshots.
//
// Instrument names follow a dotted <layer>.<object>[.<detail>] scheme
// ("fabric.tx.msgs", "rdma.wr.write_imm", "server.cmd.get.service",
// "nickv.lag.slave0/host"); see DESIGN.md for the naming rules.
//
// Every accessor and instrument method is nil-receiver safe: a layer can
// hold a possibly-nil *Registry (or a *Counter resolved from one) and use
// it unconditionally — with no registry installed, all operations are
// no-ops. That keeps the hot paths free of "if metrics != nil" branching.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"skv/internal/sim"
	"skv/internal/stats"
)

// Counter is a monotonically increasing uint64 instrument.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value reports the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is an instantaneous int64 instrument (replication lag, queue
// depth).
type Gauge struct{ v int64 }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v = v
}

// Add moves the gauge by d.
func (g *Gauge) Add(d int64) {
	if g == nil {
		return
	}
	g.v += d
}

// Value reports the current gauge value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v
}

// LatencyHist is a latency instrument backed by stats.Histogram.
type LatencyHist struct{ h *stats.Histogram }

// Observe records one duration sample.
func (l *LatencyHist) Observe(d sim.Duration) {
	if l == nil {
		return
	}
	l.h.Record(d)
}

// Hist exposes the underlying histogram (nil without a registry).
func (l *LatencyHist) Hist() *stats.Histogram {
	if l == nil {
		return nil
	}
	return l.h
}

// Registry is one node's instrument namespace. Instruments are created on
// first use and live for the registry's lifetime.
type Registry struct {
	node string
	now  func() sim.Time

	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*LatencyHist
}

// NewRegistry creates a registry for the named node, stamping snapshots
// with the given virtual clock.
func NewRegistry(node string, now func() sim.Time) *Registry {
	return &Registry{
		node:     node,
		now:      now,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*LatencyHist),
	}
}

// Node reports the registry's node name ("" on a nil registry).
func (r *Registry) Node() string {
	if r == nil {
		return ""
	}
	return r.node
}

// Counter returns the named counter, creating it on first use. Nil registry
// returns a nil (no-op) counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named latency histogram, creating it on first use.
func (r *Registry) Histogram(name string) *LatencyHist {
	if r == nil {
		return nil
	}
	l := r.hists[name]
	if l == nil {
		l = &LatencyHist{h: stats.NewHistogram()}
		r.hists[name] = l
	}
	return l
}

// HistStat is the summarized form of one latency histogram in a snapshot.
type HistStat struct {
	Count uint64
	Mean  sim.Duration
	P50   sim.Duration
	P99   sim.Duration
	Max   sim.Duration
}

// Snapshot is a point-in-time copy of every instrument in a registry,
// stamped with the virtual time it was taken.
type Snapshot struct {
	Node     string
	At       sim.Time
	Counters map[string]uint64
	Gauges   map[string]int64
	Hists    map[string]HistStat
}

// Snapshot captures the registry's current state. A nil registry yields a
// zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	s := Snapshot{
		Node:     r.node,
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]int64, len(r.gauges)),
		Hists:    make(map[string]HistStat, len(r.hists)),
	}
	if r.now != nil {
		s.At = r.now()
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.v
	}
	for name, l := range r.hists {
		s.Hists[name] = HistStat{
			Count: l.h.Count(),
			Mean:  l.h.Mean(),
			P50:   l.h.Percentile(50),
			P99:   l.h.Percentile(99),
			Max:   l.h.Max(),
		}
	}
	return s
}

// String renders the snapshot deterministically: one instrument per line,
// sorted by kind then name, with durations in integer nanoseconds. Two
// identical sim runs must render byte-identical strings.
func (s Snapshot) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "node=%s at=%d\n", s.Node, int64(s.At))
	for _, name := range sortedKeys(s.Counters) {
		fmt.Fprintf(&b, "counter %s %d\n", name, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		fmt.Fprintf(&b, "gauge %s %d\n", name, s.Gauges[name])
	}
	for _, name := range sortedKeys(s.Hists) {
		h := s.Hists[name]
		fmt.Fprintf(&b, "hist %s n=%d mean=%d p50=%d p99=%d max=%d\n",
			name, h.Count, int64(h.Mean), int64(h.P50), int64(h.P99), int64(h.Max))
	}
	return b.String()
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
