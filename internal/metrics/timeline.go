package metrics

import (
	"fmt"
	"strings"

	"skv/internal/sim"
)

// EventType classifies one failure-detector / failover transition.
type EventType int

// Failover timeline event types, in the order the §III-D chain emits them:
// probe-miss → mark-down → (promote | mark-up) → restore → demote.
const (
	// EventProbeMiss: a probed node had not acked its latest probe by the
	// next probe tick (the first externally visible sign of trouble).
	EventProbeMiss EventType = iota
	// EventMarkDown: the failure detector set the invalid flag (waiting-time
	// exceeded, or the control connection died).
	EventMarkDown
	// EventMarkUp: a node previously marked down acked a probe again and the
	// invalid flag was removed.
	EventMarkUp
	// EventPromote: Nic-KV ordered a slave to take over as master.
	EventPromote
	// EventDemote: a previously promoted slave was ordered back into the
	// slave role.
	EventDemote
	// EventRestore: the original master returned and was reinstated.
	EventRestore
)

func (t EventType) String() string {
	switch t {
	case EventProbeMiss:
		return "probe-miss"
	case EventMarkDown:
		return "mark-down"
	case EventMarkUp:
		return "mark-up"
	case EventPromote:
		return "promote"
	case EventDemote:
		return "demote"
	case EventRestore:
		return "restore"
	}
	return fmt.Sprintf("EventType(%d)", int(t))
}

// Event is one recorded transition.
type Event struct {
	At   sim.Time
	Type EventType
	Node string
}

func (e Event) String() string {
	return fmt.Sprintf("%10.3fms  %-10s %s",
		float64(e.At)/float64(sim.Millisecond), e.Type, e.Node)
}

// Timeline records failure-detection and failover transitions as typed,
// sim-clock-stamped events, in the order they happened. Like the registry
// instruments, all methods are nil-receiver safe.
type Timeline struct {
	now    func() sim.Time
	events []Event
}

// NewTimeline creates a timeline stamping events with the given virtual
// clock.
func NewTimeline(now func() sim.Time) *Timeline {
	return &Timeline{now: now}
}

// Record appends one event at the current virtual time.
func (t *Timeline) Record(typ EventType, node string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{At: t.now(), Type: typ, Node: node})
}

// Events returns the recorded events in order.
func (t *Timeline) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// First returns the earliest event of the given type, and whether one
// exists.
func (t *Timeline) First(typ EventType) (Event, bool) {
	for _, e := range t.Events() {
		if e.Type == typ {
			return e, true
		}
	}
	return Event{}, false
}

// FirstAfter returns the earliest event of the given type at or after the
// given time, and whether one exists.
func (t *Timeline) FirstAfter(typ EventType, at sim.Time) (Event, bool) {
	for _, e := range t.Events() {
		if e.Type == typ && e.At >= at {
			return e, true
		}
	}
	return Event{}, false
}

// String renders the timeline, one event per line, deterministically.
func (t *Timeline) String() string {
	var b strings.Builder
	for _, e := range t.Events() {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}
