// Package backlog implements the replication backlog: the fixed-size ring
// buffer of recent write-command bytes that makes partial resynchronization
// possible (paper §III-C: "If the range is contained in the backlog buffer,
// the data within the range in the backlog buffer will be sent to the slave
// node").
//
// Offsets are global: the master's replication offset only ever grows, and
// the backlog can serve any byte range still inside the ring.
package backlog

// Backlog is the ring buffer plus the global offset bookkeeping.
type Backlog struct {
	buf     []byte
	idx     int   // next write position in buf
	histlen int   // bytes of valid history in buf (≤ len(buf))
	endOff  int64 // global offset of the next byte to be written
}

// New creates a backlog of the given capacity in bytes.
func New(size int) *Backlog {
	if size <= 0 {
		size = 1 << 20
	}
	return &Backlog{buf: make([]byte, size)}
}

// Write appends command bytes, overwriting the oldest history when full.
func (b *Backlog) Write(p []byte) {
	b.endOff += int64(len(p))
	for len(p) > 0 {
		n := copy(b.buf[b.idx:], p)
		b.idx = (b.idx + n) % len(b.buf)
		p = p[n:]
		b.histlen += n
	}
	if b.histlen > len(b.buf) {
		b.histlen = len(b.buf)
	}
}

// EndOffset reports the global offset one past the last written byte.
func (b *Backlog) EndOffset() int64 { return b.endOff }

// FirstOffset reports the global offset of the oldest retained byte.
func (b *Backlog) FirstOffset() int64 { return b.endOff - int64(b.histlen) }

// HistLen reports the number of retained bytes.
func (b *Backlog) HistLen() int { return b.histlen }

// Size reports the ring capacity.
func (b *Backlog) Size() int { return len(b.buf) }

// Range copies the bytes from global offset from (inclusive) to the end of
// history. ok is false when the requested range has been overwritten — the
// caller must fall back to a full resynchronization.
func (b *Backlog) Range(from int64) ([]byte, bool) {
	if from > b.endOff || from < b.FirstOffset() {
		return nil, false
	}
	n := int(b.endOff - from)
	if n == 0 {
		return []byte{}, true
	}
	out := make([]byte, n)
	// Position of `from` inside the ring.
	start := (b.idx - b.histlen + int(from-b.FirstOffset())) % len(b.buf)
	if start < 0 {
		start += len(b.buf)
	}
	for i := 0; i < n; {
		c := copy(out[i:], b.buf[start:])
		i += c
		start = (start + c) % len(b.buf)
	}
	return out, true
}
