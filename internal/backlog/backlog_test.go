package backlog

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestWriteAndRange(t *testing.T) {
	b := New(64)
	b.Write([]byte("hello"))
	b.Write([]byte("world"))
	if b.EndOffset() != 10 || b.FirstOffset() != 0 {
		t.Fatalf("offsets: first=%d end=%d", b.FirstOffset(), b.EndOffset())
	}
	got, ok := b.Range(0)
	if !ok || string(got) != "helloworld" {
		t.Fatalf("Range(0) = %q,%v", got, ok)
	}
	got, ok = b.Range(5)
	if !ok || string(got) != "world" {
		t.Fatalf("Range(5) = %q,%v", got, ok)
	}
	got, ok = b.Range(10)
	if !ok || len(got) != 0 {
		t.Fatalf("Range(end) = %q,%v", got, ok)
	}
}

func TestOverwriteOldHistory(t *testing.T) {
	b := New(8)
	b.Write([]byte("0123456789AB")) // 12 bytes into an 8-byte ring
	if b.FirstOffset() != 4 || b.EndOffset() != 12 {
		t.Fatalf("offsets: first=%d end=%d", b.FirstOffset(), b.EndOffset())
	}
	if _, ok := b.Range(0); ok {
		t.Fatal("overwritten range should not be servable")
	}
	got, ok := b.Range(4)
	if !ok || string(got) != "456789AB" {
		t.Fatalf("Range(4) = %q,%v", got, ok)
	}
	got, ok = b.Range(9)
	if !ok || string(got) != "9AB" {
		t.Fatalf("Range(9) = %q,%v", got, ok)
	}
}

func TestFutureOffsetRejected(t *testing.T) {
	b := New(16)
	b.Write([]byte("xyz"))
	if _, ok := b.Range(4); ok {
		t.Fatal("future offset served")
	}
}

func TestWriteLargerThanRing(t *testing.T) {
	b := New(4)
	b.Write([]byte("abcdefghij")) // 10 bytes into 4-byte ring
	if b.HistLen() != 4 {
		t.Fatalf("histlen=%d", b.HistLen())
	}
	got, ok := b.Range(6)
	if !ok || string(got) != "ghij" {
		t.Fatalf("Range(6) = %q,%v", got, ok)
	}
}

func TestDefaultSize(t *testing.T) {
	b := New(0)
	if b.Size() != 1<<20 {
		t.Fatalf("default size=%d", b.Size())
	}
}

// Property: for arbitrary write sequences, Range(from) always equals the
// tail of the concatenated history, for every servable offset.
func TestRangeMatchesHistoryProperty(t *testing.T) {
	f := func(chunks [][]byte, ringPow uint8) bool {
		size := 1 << (ringPow%8 + 2) // 4..512
		b := New(size)
		var hist []byte
		for _, c := range chunks {
			b.Write(c)
			hist = append(hist, c...)
		}
		// Probe a handful of offsets including boundaries.
		probes := []int64{b.FirstOffset(), b.FirstOffset() + 1, (b.FirstOffset() + b.EndOffset()) / 2, b.EndOffset() - 1, b.EndOffset()}
		for _, p := range probes {
			if p < b.FirstOffset() || p > b.EndOffset() || p < 0 {
				continue
			}
			got, ok := b.Range(p)
			if !ok {
				return false
			}
			want := hist[p:]
			if !bytes.Equal(got, want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
