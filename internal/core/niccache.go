package core

import (
	"skv/internal/replstream"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/store"
	"skv/internal/transport"
)

// This file implements the design §IV-A *rejects* — serving reads from
// data stored on the SmartNIC, as KV-Direct and Xenic do on their (on-path
// / FPGA) hardware — so the decision can be measured rather than asserted:
// "If SKV follows this idea, the latency of accessing data will increase
// significantly due to the weaker processors and relatively larger RDMA
// latency of the off-path SmartNIC."
//
// When Config.ServeReadsFromNIC is set, Nic-KV maintains a shadow replica
// of the keyspace (applied from the replication stream it already relays)
// and accepts client connections on the SmartNIC endpoint, serving read
// commands from the ARM cores. Write commands are refused with a -MOVED
// error pointing at the master. The ablate-niccache experiment compares
// this against the paper's host-served reads.

// nicClient is one client connection served by the SmartNIC.
type nicClient struct {
	conn   transport.Conn
	reader resp.Reader
	db     int
}

// initReadServing sets up the shadow store and the client listener. Called
// from NewNicKV when the config asks for it.
func (n *NicKV) initReadServing() {
	n.replica = store.New(16, 0x51CA, func() int64 {
		return int64(n.eng.Now() / sim.Time(sim.Millisecond))
	})
	n.replApplier = replstream.NewApplier(func(_ int, argv [][]byte) {
		// Single-db ablation: SELECT context is consumed by the Applier and
		// everything lands in db 0.
		n.proc.Core.Charge(n.params.SlaveApplyCPU)
		n.replica.Exec(0, argv)
	})
	n.Stack.Listen(ClientPort, func(conn transport.Conn) {
		c := &nicClient{conn: conn}
		conn.SetHandler(func(data []byte) { n.onClientData(c, data) })
	})
}

// applyToReplica mirrors replicated command bytes (possibly a whole batch)
// into the shadow store, consuming ARM-core cycles like any other apply.
func (n *NicKV) applyToReplica(cmd []byte) {
	if n.replica == nil {
		return
	}
	n.replApplier.Feed(cmd)
}

// PreloadReplica installs a key directly in the shadow store (the ablation
// warms the NIC replica the same way the master is warmed).
func (n *NicKV) PreloadReplica(key string, value []byte) {
	if n.replica == nil {
		return
	}
	n.replica.Exec(0, [][]byte{[]byte("SET"), []byte(key), value})
}

// ReplicaSize reports the shadow store's key count (tests).
func (n *NicKV) ReplicaSize() int {
	if n.replica == nil {
		return 0
	}
	return n.replica.DBSize(0)
}

// onClientData serves client commands on the SmartNIC ARM core.
func (n *NicKV) onClientData(c *nicClient, data []byte) {
	c.reader.Feed(data)
	for {
		argv, okCmd, err := c.reader.ReadCommand()
		if err != nil {
			n.proc.Core.Charge(n.params.ReplyBuildCPU)
			c.conn.Send(resp.AppendError(nil, "ERR Protocol error"))
			c.conn.Close()
			return
		}
		if !okCmd {
			return
		}
		n.serveClientCommand(c, argv)
	}
}

func (n *NicKV) serveClientCommand(c *nicClient, argv [][]byte) {
	size := 0
	for _, a := range argv {
		size += len(a) + 14
	}
	// Everything here runs on the (slow) ARM core: parse, execute, reply.
	n.proc.Core.Charge(n.params.ParseCost(size))
	if cmd := store.LookupCommand(argv[0]); cmd != nil && cmd.Write {
		n.proc.Core.Charge(n.params.ReplyBuildCPU)
		c.conn.Send(resp.AppendError(nil, "MOVED write commands go to the master host"))
		return
	}
	var payload int
	if len(argv) > 1 {
		payload = len(argv[1])
	}
	n.proc.Core.Charge(n.params.CmdExecGetCPU +
		sim.Duration(float64(payload)*n.params.CmdExecPerByte))
	reply, _ := n.replica.Exec(c.db, argv)
	n.proc.Core.Charge(n.params.ReplyBuildCPU)
	c.conn.Send(reply)
}
