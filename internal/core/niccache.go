package core

import (
	"fmt"
	"strconv"

	"skv/internal/replstream"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/store"
	"skv/internal/transport"
)

// This file implements the design §IV-A *rejects* — serving reads from
// data stored on the SmartNIC, as KV-Direct and Xenic do on their (on-path
// / FPGA) hardware — so the decision can be measured rather than asserted:
// "If SKV follows this idea, the latency of accessing data will increase
// significantly due to the weaker processors and relatively larger RDMA
// latency of the off-path SmartNIC."
//
// When Config.ServeReadsFromNIC is set, Nic-KV maintains a shadow replica
// of the keyspace (applied from the replication stream it already relays)
// and accepts client connections on the SmartNIC endpoint, serving read
// commands from the ARM cores. Write commands are refused with a -MOVED
// error pointing at the master. The ablate-niccache experiment compares
// this against the paper's host-served reads.
//
// The replica mirrors the host's shard layout: with Params.HostShards > 1,
// min(HostShards, NICCores) ARM shard cores each own a key-hash slice of
// the replica (the same store.ShardOfKey placement the host uses). The
// main ARM core stays the dispatch stage — it decodes the stream and
// parses client reads, then routes each single-key operation to its shard
// core; replies and apply retirements merge back on the main core, with
// per-client re-sequencing exactly like the host dispatch plane. One shard
// (the default) is bit-for-bit the legacy single-core read path.

// nicClient is one client connection served by the SmartNIC.
type nicClient struct {
	conn   transport.Conn
	reader resp.Reader
	db     int

	// Reply re-sequencing (sharded replica only): same scheme as the host
	// dispatch plane — seqNext numbers commands in arrival order, seqEmit
	// is the next reply the connection may carry, pending holds completed
	// replies that cannot be emitted yet.
	seqNext uint64
	seqEmit uint64
	pending map[uint64][]byte

	// track marks the connection as a CLIENT TRACKING subscriber; its
	// interest lands in the NIC's own table and invalidations come back
	// in-band as RESP3 push frames on this data connection.
	track     bool
	trackName string
}

// nicApplyOp is one decoded replicated command queued for the sharded
// apply pipeline. shard < 0 marks a fence (cross-shard or keyless command)
// that must observe a quiesced pipeline.
type nicApplyOp struct {
	db    int
	argv  [][]byte
	cmd   *store.Command
	shard int
}

// initReadServing sets up the shadow store, the per-shard ARM cores when
// the host runs sharded, and the client listener. Called from NewNicKV
// when the config asks for it; name is the machine name (core naming).
func (n *NicKV) initReadServing(name string) {
	rshards := n.params.HostShards
	if rshards < 1 {
		rshards = 1
	}
	if rshards > n.params.NICCores {
		rshards = n.params.NICCores
	}
	n.rshards = rshards
	n.replica = store.New(store.Options{Shards: rshards, Seed: 0x51CA, Clock: func() int64 {
		return int64(n.eng.Now() / sim.Time(sim.Millisecond))
	}})
	n.metrics.Gauge("nickv.replica.shards").Set(int64(rshards))
	n.mReplicaGaps = n.metrics.Counter("nickv.replica.gaps")
	if rshards > 1 {
		n.mReplicaRouted = n.metrics.Counter("nickv.replica.routed")
		n.mReplicaFenced = n.metrics.Counter("nickv.replica.fenced")
		for i := 0; i < rshards; i++ {
			c := sim.NewCore(n.eng, fmt.Sprintf("%s-nic-rshard%d", name, i), n.params.NICCoreSpeed)
			n.rprocs = append(n.rprocs, sim.NewProc(n.eng, c, n.params.CompChannelWake))
		}
	}
	n.replApplier = replstream.NewApplier(func(db int, argv [][]byte) {
		n.applyDecoded(db, argv)
	})
	n.Stack.Listen(ClientPort, func(conn transport.Conn) {
		c := &nicClient{conn: conn}
		conn.SetHandler(func(data []byte) { n.onClientData(c, data) })
		conn.SetCloseHandler(func() {
			if c.track {
				c.track = false
				n.dropSubscriber(c.trackName)
			}
		})
	})
}

// applyToReplica mirrors replicated command bytes (possibly a whole batch)
// into the shadow store, consuming ARM-core cycles like any other apply.
// off is the stream offset the bytes start at: replayed bytes (a master
// resending from its backlog after a reconnect) are trimmed rather than
// double-applied, and a jump past the expected offset is counted as a gap
// (nickv.replica.gaps) — the replica's divergence diagnostic.
func (n *NicKV) applyToReplica(off int64, cmd []byte) {
	if n.replica == nil {
		return
	}
	if n.replicaOff > 0 {
		switch {
		case off > n.replicaOff:
			n.mReplicaGaps.Inc()
		case off < n.replicaOff:
			skip := n.replicaOff - off
			if skip >= int64(len(cmd)) {
				return
			}
			cmd = cmd[skip:]
			off = n.replicaOff
		}
	}
	n.replicaOff = off + int64(len(cmd))
	n.replApplier.Feed(cmd)
}

// applyDecoded is the applier's per-command sink. One shard keeps the
// legacy path: apply synchronously on the main ARM core, honoring the
// stream's SELECT context. Sharded, the command queues into the apply
// pipeline and drains to its shard core.
func (n *NicKV) applyDecoded(db int, argv [][]byte) {
	if n.rshards <= 1 {
		n.proc.Core.Charge(n.params.SlaveApplyCPU)
		n.replica.Exec(db, argv)
		return
	}
	cmd := store.LookupCommand(argv[0])
	n.applyq = append(n.applyq, nicApplyOp{db: db, argv: argv, cmd: cmd, shard: n.replicaShardOf(cmd, argv)})
	n.drainApply()
}

// replicaShardOf maps a command to the replica shard that owns all its
// keys, or -1 when it has none or they span shards (fence).
func (n *NicKV) replicaShardOf(cmd *store.Command, argv [][]byte) int {
	if cmd == nil || cmd.Server || cmd.FirstKey <= 0 {
		return -1
	}
	si := -1
	multi := false
	cmd.EachKey(argv, func(k []byte) {
		ks := store.ShardOfKey(k, n.rshards)
		if si == -1 {
			si = ks
		} else if ks != si {
			multi = true
		}
	})
	if multi {
		return -1
	}
	return si
}

// drainApply admits queued apply ops in stream order: routed ops post to
// their shard core (route cost on the main core, apply cost on the shard,
// merge cost back on the main core); a fence waits for the pipeline to
// drain (applyInflight == 0) and then runs inline. Per-key order is
// preserved by shard-FIFO execution; the fence preserves global order
// around cross-shard commands.
func (n *NicKV) drainApply() {
	for len(n.applyq) > 0 {
		op := n.applyq[0]
		if op.shard < 0 {
			if n.applyInflight > 0 {
				return
			}
			n.applyq = n.applyq[1:]
			n.mReplicaFenced.Inc()
			n.proc.Core.Charge(n.params.NicShardFenceCPU*sim.Duration(n.rshards) + n.params.SlaveApplyCPU)
			n.replica.Exec(op.db, op.argv)
			continue
		}
		n.applyq = n.applyq[1:]
		n.mReplicaRouted.Inc()
		n.proc.Core.Charge(n.params.NicShardRouteCPU)
		n.applyInflight++
		n.rprocs[op.shard].Post(n.params.SlaveApplyCPU, func() {
			n.replica.Dispatch(op.cmd, op.db, op.argv)
			n.proc.Post(n.params.NicShardMergeCPU, func() {
				n.applyInflight--
				n.drainApply()
			})
		})
	}
}

// PreloadReplica installs a key directly in the shadow store (the ablation
// warms the NIC replica the same way the master is warmed).
func (n *NicKV) PreloadReplica(key string, value []byte) {
	if n.replica == nil {
		return
	}
	n.replica.Exec(0, [][]byte{[]byte("SET"), []byte(key), value})
}

// ReplicaSize reports the shadow store's db-0 key count (tests).
func (n *NicKV) ReplicaSize() int {
	if n.replica == nil {
		return 0
	}
	return n.replica.DBSize(0)
}

// ReplicaStore exposes the shadow store (keyspace-equality tests); nil
// unless read serving is enabled.
func (n *NicKV) ReplicaStore() *store.Store { return n.replica }

// ReplicaProcs exposes the per-shard replica procs (utilization reporting);
// empty with one shard.
func (n *NicKV) ReplicaProcs() []*sim.Proc { return n.rprocs }

// onClientData serves client commands on the SmartNIC ARM core.
func (n *NicKV) onClientData(c *nicClient, data []byte) {
	c.reader.Feed(data)
	for {
		argv, okCmd, err := c.reader.ReadCommand()
		if err != nil {
			n.proc.Core.Charge(n.params.ReplyBuildCPU)
			c.conn.Send(resp.AppendError(nil, "ERR Protocol error"))
			c.conn.Close()
			return
		}
		if !okCmd {
			return
		}
		n.serveClientCommand(c, argv)
	}
}

// selectReply handles SELECT on a NIC client — the shadow replica keeps
// every numbered database, so NIC clients switch dbs exactly like host
// clients do. Returns the RESP reply.
func (n *NicKV) selectReply(c *nicClient, argv [][]byte) []byte {
	if len(argv) != 2 {
		return resp.AppendError(nil, "ERR wrong number of arguments for 'select' command")
	}
	dbi, err := strconv.Atoi(string(argv[1]))
	if err != nil || dbi < 0 || dbi >= n.replica.NumDBs() {
		return resp.AppendError(nil, "ERR DB index is out of range")
	}
	c.db = dbi
	return resp.AppendSimple(nil, "OK")
}

func (n *NicKV) serveClientCommand(c *nicClient, argv [][]byte) {
	size := 0
	for _, a := range argv {
		size += len(a) + 14
	}
	// Parse runs on the (slow) main ARM core in either layout.
	n.proc.Core.Charge(n.params.ParseCost(size))
	cmd := store.LookupCommand(argv[0])
	if n.rshards > 1 {
		n.serveSharded(c, cmd, argv)
		return
	}
	// Legacy single-core path: execute and reply on the main ARM core.
	if cmd != nil && cmd.Write {
		n.proc.Core.Charge(n.params.ReplyBuildCPU)
		c.conn.Send(movedError())
		return
	}
	if cmd != nil && cmd.Name == "select" {
		reply := n.selectReply(c, argv)
		n.proc.Core.Charge(n.params.ReplyBuildCPU)
		c.conn.Send(reply)
		return
	}
	if cmd != nil && cmd.Server && cmd.Name == "client" {
		reply := n.nicClientCmd(c, argv)
		n.proc.Core.Charge(n.params.ReplyBuildCPU)
		c.conn.Send(reply)
		return
	}
	n.nicRecordInterest(c, cmd, argv)
	n.proc.Core.Charge(n.execReadCost(argv))
	reply, _ := n.replica.Exec(c.db, argv)
	n.proc.Core.Charge(n.params.ReplyBuildCPU)
	c.conn.Send(reply)
}

// serveSharded routes a parsed client command through the replica shard
// cores: single-key reads execute on the shard core owning the key, with
// the reply merged back and re-sequenced per client on the main core;
// everything else (MOVED for writes, SELECT, keyless or cross-shard reads)
// runs inline on the main core but still replies in request order.
func (n *NicKV) serveSharded(c *nicClient, cmd *store.Command, argv [][]byte) {
	seq := c.seqNext
	c.seqNext++
	if cmd != nil && cmd.Write {
		n.completeRead(c, seq, movedError())
		return
	}
	if cmd != nil && cmd.Name == "select" {
		n.completeRead(c, seq, n.selectReply(c, argv))
		return
	}
	if cmd != nil && cmd.Server && cmd.Name == "client" {
		n.completeRead(c, seq, n.nicClientCmd(c, argv))
		return
	}
	// Interest records at admission, on the main core, before the read is
	// routed — so it exists before any later write's fan-out pushes, and a
	// push can only overtake the read's reply (which the client handles by
	// poisoning the in-flight read), never miss it.
	n.nicRecordInterest(c, cmd, argv)
	if si := n.replicaShardOf(cmd, argv); si >= 0 {
		n.proc.Core.Charge(n.params.NicShardRouteCPU)
		dbi := c.db
		cost := n.execReadCost(argv)
		n.rprocs[si].Post(cost, func() {
			reply, _ := n.replica.Dispatch(cmd, dbi, argv)
			n.proc.Post(n.params.NicShardMergeCPU, func() {
				n.completeRead(c, seq, reply)
			})
		})
		return
	}
	n.proc.Core.Charge(n.execReadCost(argv))
	reply, _ := n.replica.Exec(c.db, argv)
	n.completeRead(c, seq, reply)
}

// completeRead records a reply and emits every consecutive ready reply in
// the client's request order (reply-build cost charged per emitted reply,
// on the main ARM core).
func (n *NicKV) completeRead(c *nicClient, seq uint64, data []byte) {
	if c.pending == nil {
		c.pending = make(map[uint64][]byte)
	}
	c.pending[seq] = data
	for {
		d, ok := c.pending[c.seqEmit]
		if !ok {
			return
		}
		delete(c.pending, c.seqEmit)
		c.seqEmit++
		if len(d) > 0 {
			n.proc.Core.Charge(n.params.ReplyBuildCPU)
			c.conn.Send(d)
		}
	}
}

// execReadCost is the ARM-core execution cost of one read: base GET cost
// plus a per-byte term on the first argument.
func (n *NicKV) execReadCost(argv [][]byte) sim.Duration {
	var payload int
	if len(argv) > 1 {
		payload = len(argv[1])
	}
	return n.params.CmdExecGetCPU +
		sim.Duration(float64(payload)*n.params.CmdExecPerByte)
}

func movedError() []byte {
	return resp.AppendError(nil, "MOVED write commands go to the master host")
}
