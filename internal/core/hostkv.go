package core

import (
	"fmt"

	"skv/internal/fabric"
	"skv/internal/metrics"
	"skv/internal/rdb"
	"skv/internal/replstream"
	"skv/internal/server"
	"skv/internal/sim"
	"skv/internal/store"
	"skv/internal/transport"
)

// HostKV is the master-side glue that turns a plain server.Server into an
// SKV master: every write becomes a single replication request posted to
// Nic-KV (one work request instead of one per slave), and the initial
// synchronization payload is served directly to joining slaves (§III-C).
type HostKV struct {
	Srv *server.Server
	cfg Config
	net *fabric.Network

	nicEP   *fabric.Endpoint
	nicConn transport.Conn

	// Latest Nic-KV status report.
	validSlaves    int
	minSlaveOffset int64
	slaveOffsets   []int64
	statusSeen     bool
	// nicReplThreads is the effective replication thread count Nic-KV last
	// reported (ThreadNum after the NIC clamps it to its core count); 0
	// until the first status frame carrying the field arrives.
	nicReplThreads int

	// payloadConns are the direct master→slave connections used for the
	// initial-sync payload (§III-C step ③).
	payloadConns map[string]transport.Conn
	pendingSends map[string][][]byte

	// Stats.
	FullSyncs    uint64
	PartialSyncs uint64
	// ReplReqsSent counts frames (work requests) posted to Nic-KV;
	// CmdsOffloaded counts the commands they carried. The ratio
	// ReplReqsSent/CmdsOffloaded is the WR amortization batching buys.
	ReplReqsSent  uint64
	CmdsOffloaded uint64

	// Offload round-trip instruments, resolved from the server's registry.
	mReplReqs      *metrics.Counter
	mCmdsOffloaded *metrics.Counter
	mFullSyncs     *metrics.Counter
	mPartialSyncs  *metrics.Counter
	mProbeAcks     *metrics.Counter
}

// AttachMaster wires an SKV master: connects to Nic-KV, redirects the
// server's replication path to the SmartNIC, and installs the
// min-slaves/lag write gate.
func AttachMaster(srv *server.Server, net *fabric.Network, nicEP *fabric.Endpoint, cfg Config) *HostKV {
	h := &HostKV{
		Srv:          srv,
		cfg:          cfg,
		net:          net,
		nicEP:        nicEP,
		payloadConns: make(map[string]transport.Conn),
		pendingSends: make(map[string][][]byte),

		mReplReqs:      srv.Metrics().Counter("hostkv.repl_reqs"),
		mCmdsOffloaded: srv.Metrics().Counter("hostkv.cmds_offloaded"),
		mFullSyncs:     srv.Metrics().Counter("hostkv.full_syncs"),
		mPartialSyncs:  srv.Metrics().Counter("hostkv.partial_syncs"),
		mProbeAcks:     srv.Metrics().Counter("hostkv.probe_acks"),
	}
	srv.OnPropagate = h.propagate
	srv.AddInfoSection(h.infoSection)
	srv.WriteGate = h.gate
	// SKV masters learn replica progress from Nic-KV status frames, not from
	// per-slave REPLCONF ACK links: the tracker's replica set is bulk-sourced.
	srv.Acks().UseBulkSource()
	// Quorum/all writes tell the NIC where the reply is gated; the NIC holds
	// it until enough slaves report past the write ("the host CPU never sees
	// the wait").
	srv.OnWriteGate = h.writeGate
	// Redirect-mode CLIENT TRACKING: the host only forwards interest; the
	// invalidation table lives on Nic-KV, which pushes invalidations on the
	// replication fan-out path without any host dispatch cycles. Inert (and
	// cost-free) unless a client negotiates tracking.
	srv.OnTrackInterest = h.trackInterest
	srv.OnTrackDrop = h.trackDrop
	srv.Stack().Dial(nicEP, NicPort, func(conn transport.Conn, err error) {
		if err != nil {
			panic("core: master cannot reach Nic-KV: " + err.Error())
		}
		h.nicConn = conn
		conn.SetHandler(h.onNicMessage)
		conn.Send([]byte{msgMasterHello})
	})
	return h
}

// SeverConnections simulates the master process dying together with its
// links: the Nic-KV control connection and the direct payload connections
// are closed (a dead process's QPs flush with errors; peers see the close).
func (h *HostKV) SeverConnections() {
	if h.nicConn != nil {
		h.nicConn.Close()
		h.nicConn = nil
	}
	for id, conn := range h.payloadConns {
		conn.Close()
		delete(h.payloadConns, id)
	}
	h.pendingSends = make(map[string][][]byte)
	h.statusSeen = false
}

// ReconnectNic re-establishes the Nic-KV control connection after a master
// process restart and re-announces the master with msgMasterHello, retrying
// until Nic-KV is reachable. This is the path §III-D's restore handles: a
// recovered master reappearing on a brand-new connection.
func (h *HostKV) ReconnectNic() {
	if !h.Srv.Alive() {
		return
	}
	h.Srv.Stack().Dial(h.nicEP, NicPort, func(conn transport.Conn, err error) {
		if err != nil {
			h.Srv.Engine().After(500*sim.Millisecond, h.ReconnectNic)
			return
		}
		h.nicConn = conn
		conn.SetHandler(h.onNicMessage)
		conn.Send([]byte{msgMasterHello})
	})
}

// ValidSlaves reports the latest slave availability Nic-KV announced.
func (h *HostKV) ValidSlaves() int { return h.validSlaves }

// propagate replaces feedSlaves: one replication request to the SmartNIC
// per flushed batch, regardless of the slave count. The entire steady-state
// replication then happens in the background on the NIC while the master
// returns to its clients ("the host CPU only needs to post one WR for the
// replication of each SET command", §V-C). With ReplBatchMaxCmds > 1 the
// batch carries several commands, so one WR covers N writes. Single-command
// batches use the legacy msgReplReq frame so the batch=1 wire format (and
// timing) is byte-identical to the unbatched path.
func (h *HostKV) propagate(b replstream.Batch) {
	if h.nicConn == nil {
		return // NIC connection still handshaking; backlog covers the gap
	}
	h.Srv.Proc().Core.Charge(h.Srv.Params().ReplOffloadReqCPU)
	var frame []byte
	if b.Cmds == 1 {
		frame = []byte{msgReplReq}
		frame = appendU64(frame, uint64(b.Start))
	} else {
		frame = []byte{msgReplReqBatch}
		frame = appendU64(frame, uint64(b.Start))
		frame = appendU64(frame, uint64(b.Cmds))
	}
	frame = append(frame, b.Data...)
	h.ReplReqsSent++
	h.CmdsOffloaded += uint64(b.Cmds)
	h.mReplReqs.Inc()
	h.mCmdsOffloaded.Add(uint64(b.Cmds))
	h.nicConn.Send(frame)
}

// writeGate posts one gate frame to Nic-KV for a quorum/all write: the
// reply parked at endOff may only fire once `need` slaves (0 = all the NIC
// considers valid) have replicated past it. The NIC answers with msgAckRelease watermarks; the frame rides
// the same FIFO connection as the replication requests, so a gate never
// overtakes the stream bytes it covers. One extra WR per gated write — the
// host still never polls or blocks.
func (h *HostKV) writeGate(endOff int64, need int) {
	if h.nicConn == nil {
		return // handshake in flight; the status-frame fallback releases it
	}
	h.Srv.Proc().Core.Charge(h.Srv.Params().ReplOffloadReqCPU)
	frame := []byte{msgGate}
	frame = appendU64(frame, uint64(endOff))
	frame = appendU64(frame, uint64(need))
	h.nicConn.Send(frame)
}

// trackInterest forwards one tracked read's key interest to Nic-KV. It
// rides the same FIFO connection as the replication requests, so the NIC
// is guaranteed to hold the interest before any later write's fan-out —
// the ordering that makes missed invalidations impossible.
func (h *HostKV) trackInterest(name, key string) {
	if h.nicConn == nil {
		return // handshake in flight; the client re-registers on its next read
	}
	h.Srv.Proc().Core.Charge(h.Srv.Params().TrackInterestCPU)
	frame := []byte{msgTrackKey}
	frame = appendStr(frame, name)
	frame = appendStr(frame, key)
	h.nicConn.Send(frame)
}

// trackDrop tells Nic-KV to forget every interest held by subscriber name
// (CLIENT TRACKING OFF or client disconnect).
func (h *HostKV) trackDrop(name string) {
	if h.nicConn == nil {
		return
	}
	h.Srv.Proc().Core.Charge(h.Srv.Params().TrackInterestCPU)
	frame := []byte{msgTrackDrop}
	frame = appendStr(frame, name)
	h.nicConn.Send(frame)
}

// infoSection is the SKV block of the master's INFO output: the offload
// accounting plus the slave availability picture Nic-KV last reported.
func (h *HostKV) infoSection() store.InfoSection {
	return store.InfoSection{Name: "SKV", Lines: []string{
		fmt.Sprintf("valid_slaves:%d", h.validSlaves),
		fmt.Sprintf("min_slave_offset:%d", h.minSlaveOffset),
		fmt.Sprintf("repl_reqs_sent:%d", h.ReplReqsSent),
		fmt.Sprintf("cmds_offloaded:%d", h.CmdsOffloaded),
		fmt.Sprintf("full_syncs:%d", h.FullSyncs),
		fmt.Sprintf("partial_syncs:%d", h.PartialSyncs),
		fmt.Sprintf("nic_repl_threads:%d", h.nicReplThreads),
	}}
}

// gate vetoes writes when availability or replication lag violate the
// configured bounds (§III-C/§III-D).
func (h *HostKV) gate() string {
	if h.cfg.MinSlaves > 0 {
		if !h.statusSeen || h.validSlaves < h.cfg.MinSlaves {
			return "NOREPLICAS Not enough available slaves to accept writes."
		}
	}
	if h.cfg.MaxLag > 0 && h.statusSeen && h.validSlaves > 0 {
		if lag := h.Srv.ReplOffset() - h.minSlaveOffset; lag > h.cfg.MaxLag {
			return "LAGGING Replication progress is too slow."
		}
	}
	return ""
}

func (h *HostKV) onNicMessage(data []byte) {
	if len(data) == 0 || !h.Srv.Alive() {
		return
	}
	r := &frameReader{b: data, pos: 1}
	switch data[0] {
	case msgProbe:
		// "When the master node and the slave nodes receive this message,
		// they reply to Nic-KV immediately."
		h.Srv.Proc().Core.Charge(h.Srv.Params().ProbeCPU)
		h.mProbeAcks.Inc()
		h.nicConn.Send([]byte{msgProbeAck})
	case msgNewSlave:
		id := r.str()
		replID := r.str()
		off := r.i64()
		if r.bad {
			return
		}
		h.serveNewSlave(id, replID, off)
	case msgStatus:
		count := int(r.u64())
		minOff := r.i64()
		offs := make([]int64, 0, count)
		for i := 0; i < count; i++ {
			offs = append(offs, r.i64())
		}
		if r.bad {
			return
		}
		if count == 0 || minOff < 0 {
			minOff = 0 // defensive: a frame from an older Nic-KV build
		}
		// Trailing effective-thread field: absent on frames from older
		// Nic-KV builds, so only read it when the bytes are there.
		if len(r.b)-r.pos >= 8 {
			h.nicReplThreads = int(r.u64())
		}
		h.minSlaveOffset = minOff
		h.validSlaves = count
		h.slaveOffsets = offs
		h.statusSeen = true
		// Feed the consistency plane: SetAll re-evaluates WAITers and parked
		// replies, so even if a gate release frame were lost the next status
		// report unblocks whatever the offsets now satisfy.
		h.Srv.Acks().SetAll(offs)
	case msgAckRelease:
		off := r.i64()
		if r.bad {
			return
		}
		// The NIC released every gated reply at or below this watermark.
		h.Srv.Acks().ReleaseUpTo(off)
	}
}

// serveNewSlave performs the master's part of the initial synchronization
// phase: persist everything (fork + RDB serialization cost), establish the
// direct connection to the slave, compare replication offsets, and send
// either the backlog range (partial) or the full data file (§III-C Fig 8).
func (h *HostKV) serveNewSlave(id, replID string, off int64) {
	srv := h.Srv
	p := srv.Params()

	// Persist all key-value data (paper: this happens before the offset
	// comparison).
	srv.Proc().Core.Charge(p.ForkCPU)
	dump := rdb.Dump(srv.Store())
	srv.Proc().Core.Charge(sim.Duration(float64(len(dump)) * p.RDBPerByte))

	var frame []byte
	if replID == srv.ReplID() {
		if delta, okRange := srv.Backlog().Range(off); okRange {
			// Deviation inside the backlog (or zero): partial resync.
			h.PartialSyncs++
			h.mPartialSyncs.Inc()
			frame = []byte{msgPayloadBacklog}
			frame = appendStr(frame, srv.ReplID())
			frame = appendU64(frame, uint64(off))
			frame = append(frame, delta...)
		}
	}
	if frame == nil {
		h.FullSyncs++
		h.mFullSyncs.Inc()
		frame = []byte{msgPayloadRDB}
		frame = appendStr(frame, srv.ReplID())
		frame = appendU64(frame, uint64(srv.ReplOffset()))
		frame = append(frame, dump...)
	}
	h.sendPayload(id, frame)
}

// sendPayload delivers an initial-sync frame over the direct master→slave
// connection, dialing it on first use.
func (h *HostKV) sendPayload(id string, frame []byte) {
	if conn, okConn := h.payloadConns[id]; okConn && !conn.Closed() {
		conn.Send(frame)
		return
	}
	h.pendingSends[id] = append(h.pendingSends[id], frame)
	if len(h.pendingSends[id]) > 1 {
		return // dial already in flight
	}
	ep := h.net.EndpointByName(id)
	if ep == nil {
		delete(h.pendingSends, id)
		return
	}
	h.Srv.Stack().Dial(ep, ReplPort, func(conn transport.Conn, err error) {
		queued := h.pendingSends[id]
		delete(h.pendingSends, id)
		if err != nil {
			return // slave vanished; it will re-request sync
		}
		h.payloadConns[id] = conn
		for _, f := range queued {
			conn.Send(f)
		}
	})
}
