// Package core implements SKV itself (paper §III–§IV): the split of the
// distributed key-value store across the host and the off-path SmartNIC.
//
//   - HostKV (hostkv.go) runs on the master host: it executes commands,
//     stores all key-value pairs (§IV-A: data stays in host memory), and for
//     every write posts a single replication request to the SmartNIC instead
//     of feeding each slave itself.
//   - NicKV (nickv.go) runs on the SmartNIC ARM cores: it maintains the
//     node list, fans replicated commands out to all slaves
//     (WRITE_WITH_IMM through internal/rconn), handles the initial
//     synchronization handshake, probes node liveness every second, and
//     performs failover (§III-D).
//   - SlaveAgent (slaveagent.go) runs on each slave host: it initiates
//     synchronization through the SmartNIC, receives the initial payload
//     directly from the master, applies the steady-state command stream
//     from Nic-KV, and answers probes.
//
// All control and replication traffic uses a compact binary framing over
// the RDMA message transport; offsets in the stream frames let slaves
// deduplicate the overlap between the initial payload and the live stream
// and detect gaps after crashes (triggering automatic resynchronization).
package core

import (
	"encoding/binary"

	"skv/internal/consistency"
	"skv/internal/sim"
)

// Well-known ports in an SKV deployment.
const (
	// ClientPort is where Host-KV serves clients.
	ClientPort = 6379
	// ReplPort is where a slave's Host-KV accepts the initial-sync payload
	// connection from the master.
	ReplPort = 6380
	// NicPort is where Nic-KV listens (on the SmartNIC endpoint).
	NicPort = 7000
)

// Message tags (first byte of every SKV frame).
const (
	msgMasterHello    = 'M' // master → NIC: identifies the master connection
	msgInitSync       = 'I' // slave → NIC: id, last master replID, offset
	msgNewSlave       = 'N' // NIC → master: id, replID, offset
	msgReplReq        = 'R' // master → NIC: startOff, encoded command
	msgReplReqBatch   = 'Q' // master → NIC: startOff, cmd count, concatenated commands
	msgCmdStream      = 'C' // NIC → slave: startOff, encoded command(s)
	msgProbe          = 'P' // NIC → any node
	msgProbeAck       = 'A' // node → NIC
	msgPayloadRDB     = 'Y' // master → slave: replID, baseOff, RDB bytes
	msgPayloadBacklog = 'B' // master → slave: replID, startOff, stream bytes
	msgProgress       = 'G' // slave → NIC: replication offset
	msgStatus         = 'S' // NIC → master: valid slave count, min offset
	msgPromote        = 'F' // NIC → slave: become master (failover)
	msgDemote         = 'D' // NIC → node: resume slave role
	msgGate           = 'E' // master → NIC: endOff, need — gate the reply until need slaves reach endOff
	msgAckRelease     = 'K' // NIC → master: released watermark (every gated reply ≤ it may fire)
	msgCmdStreamAck   = 'c' // NIC → slave: like msgCmdStream but demands an immediate progress report
	msgTrackHello     = 'T' // subscriber → NIC: name — register an invalidation push channel (echoed back as the ack)
	msgTrackKey       = 't' // master → NIC: name, key — record one subscriber's interest in one key
	msgTrackDrop      = 'x' // master → NIC: name — drop every interest of one subscriber
	msgInvalidate     = 'V' // NIC → subscriber: key — a tracked key changed; drop the cached copy
)

// ---- tracking-plane subscriber codec ----
//
// The workload clients speak these two frames directly: a tracking client
// subscribes on the Nic-KV port with a hello and then consumes invalidation
// pushes. (The master→NIC interest frames stay internal to this package.)

// EncodeTrackHello frames the subscription hello; Nic-KV echoes the bare
// tag back as the acknowledgment that the push channel is armed.
func EncodeTrackHello(name string) []byte {
	return appendStr([]byte{msgTrackHello}, name)
}

// ParseSubscriberFrames walks a NIC→subscriber byte sequence — frames are
// self-delimiting, so coalesced deliveries parse too — invoking onAck for
// each hello acknowledgment and onKey for each invalidated key. Returns
// false on malformed input.
func ParseSubscriberFrames(b []byte, onAck func(), onKey func(key string)) bool {
	for len(b) > 0 {
		switch b[0] {
		case msgTrackHello:
			b = b[1:]
			onAck()
		case msgInvalidate:
			r := &frameReader{b: b[1:]}
			k := r.str()
			if r.bad {
				return false
			}
			b = r.rest()
			onKey(k)
		default:
			return false
		}
	}
	return true
}

// ---- frame encoding helpers ----

func appendU64(dst []byte, v uint64) []byte {
	var tmp [8]byte
	binary.BigEndian.PutUint64(tmp[:], v)
	return append(dst, tmp[:]...)
}

func appendStr(dst []byte, s string) []byte {
	var tmp [2]byte
	binary.BigEndian.PutUint16(tmp[:], uint16(len(s)))
	dst = append(dst, tmp[:]...)
	return append(dst, s...)
}

// frameReader decodes a received frame.
type frameReader struct {
	b   []byte
	pos int
	bad bool
}

func (r *frameReader) u64() uint64 {
	if r.pos+8 > len(r.b) {
		r.bad = true
		return 0
	}
	v := binary.BigEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v
}

func (r *frameReader) i64() int64 { return int64(r.u64()) }

func (r *frameReader) str() string {
	if r.pos+2 > len(r.b) {
		r.bad = true
		return ""
	}
	n := int(binary.BigEndian.Uint16(r.b[r.pos:]))
	r.pos += 2
	if r.pos+n > len(r.b) {
		r.bad = true
		return ""
	}
	s := string(r.b[r.pos : r.pos+n])
	r.pos += n
	return s
}

func (r *frameReader) rest() []byte {
	if r.bad {
		return nil
	}
	return r.b[r.pos:]
}

// Config carries the SKV-specific tunables the paper names.
type Config struct {
	// MinSlaves: with fewer available slaves, writes fail (§III-D).
	MinSlaves int
	// MaxLag: when the slowest valid slave is more than this many stream
	// bytes behind, writes fail ("if the progress is too slow ... it will
	// return an error message to the client", §III-C). 0 disables.
	MaxLag int64
	// ThreadNum is the number of SmartNIC cores used for replication
	// (§III-C thread-num; the default 1 disables multi-threading, as in the
	// paper). Clamped to min(NIC cores, slave count) at run time.
	ThreadNum int
	// ProgressInterval is how often slaves report replication progress to
	// Nic-KV (§III-C step ③).
	ProgressInterval sim.Duration
	// ServeReadsFromNIC enables the design §IV-A rejects: Nic-KV keeps a
	// shadow replica and serves read commands from the SmartNIC. Derived
	// from cluster.Config.NicReads when building through the cluster
	// package — set it directly only when wiring core components by hand.
	ServeReadsFromNIC bool
	// Group labels this SKV unit's replication group in a multi-master
	// deployment (e.g. "g1"): per-slave lag gauges become
	// nickv.lag.<group>.<id> and the failover timeline's master label
	// becomes <group>.master, so snapshots from N groups never collide.
	// Empty (the single-master default) keeps every legacy metric name.
	Group string
	// WriteConsistency selects the cluster's write acknowledgment level.
	// Nic-KV consults it in two places: failover policy (quorum/all promote
	// the valid slave with the highest reported offset, so every released
	// write survives the master's crash) and stream fan-out (gated writes go
	// out as msgCmdStreamAck, demanding an immediate progress report instead
	// of waiting for the slave's ProgressInterval cron). Async — the zero
	// value — keeps the legacy first-valid-node promotion and plain stream
	// frames bit-for-bit.
	WriteConsistency consistency.Level
}

// DefaultConfig mirrors the paper's default deployment.
func DefaultConfig() Config {
	return Config{
		MinSlaves:        0,
		MaxLag:           0,
		ThreadNum:        1,
		ProgressInterval: 500 * sim.Millisecond,
	}
}
