package core

import (
	"sort"

	"skv/internal/fabric"
	"skv/internal/metrics"
	"skv/internal/rdb"
	"skv/internal/replstream"
	"skv/internal/server"
	"skv/internal/sim"
	"skv/internal/transport"
)

// SlaveAgent is the slave-side glue of SKV: it executes the SLAVEOF flow
// through the SmartNIC (initial sync request → payload from master →
// steady-state stream from Nic-KV), answers probes, and reacts to
// promote/demote orders during failover.
type SlaveAgent struct {
	Srv *server.Server
	cfg Config
	net *fabric.Network

	nicEP   *fabric.Endpoint
	nicConn transport.Conn
	id      string
	// dialGen invalidates stale dial callbacks/timeouts when a newer
	// connection attempt supersedes them (reconnect after a link failure).
	dialGen uint64
	// everConnected distinguishes the initial attach from reconnects (which
	// count as resynchronizations).
	everConnected bool

	masterReplID string
	offset       int64
	synced       bool
	// buffered holds stream chunks that arrived before the initial payload
	// (or across a detected gap); offsets deduplicate on drain.
	buffered []streamChunk

	// applier decodes the replication stream (command framing + SELECT
	// context), shared with the baseline masterLink consumer.
	applier *replstream.Applier

	progress *sim.Ticker

	// Stats.
	Applied  uint64
	Resyncs  uint64
	Promoted uint64
	Demoted  uint64

	mApplied  *metrics.Counter
	mResyncs  *metrics.Counter
	mPromoted *metrics.Counter
	mDemoted  *metrics.Counter
}

type streamChunk struct {
	off  int64
	data []byte
}

// AttachSlave wires an SKV slave: listens for the master's payload
// connection, connects to Nic-KV, and sends the initial synchronization
// request (the effect of executing SLAVEOF on the slave, §III-C).
func AttachSlave(srv *server.Server, net *fabric.Network, nicEP *fabric.Endpoint, cfg Config) *SlaveAgent {
	a := &SlaveAgent{
		Srv:   srv,
		cfg:   cfg,
		net:   net,
		nicEP: nicEP,
		id:    srv.Stack().Endpoint().Name(),

		mApplied:  srv.Metrics().Counter("slaveagent.applied"),
		mResyncs:  srv.Metrics().Counter("slaveagent.resyncs"),
		mPromoted: srv.Metrics().Counter("slaveagent.promoted"),
		mDemoted:  srv.Metrics().Counter("slaveagent.demoted"),
	}
	a.applier = replstream.NewApplier(func(db int, argv [][]byte) {
		a.Srv.Proc().Core.Charge(a.Srv.Params().SlaveApplyCPU)
		a.Srv.Store().Exec(db, argv)
		a.Applied++
		a.mApplied.Inc()
	})
	srv.SetRole(server.RoleSlave)
	// Accept the direct payload connection from the master.
	srv.Stack().Listen(ReplPort, func(conn transport.Conn) {
		conn.SetHandler(func(data []byte) { a.onPayload(data) })
	})
	a.connectToNic()
	if cfg.ProgressInterval > 0 {
		a.progress = srv.Engine().Every(cfg.ProgressInterval, a.reportProgress)
	}
	return a
}

// Offset reports the slave's replication offset.
func (a *SlaveAgent) Offset() int64 { return a.offset }

// Synced reports whether the slave is in the steady-state phase.
func (a *SlaveAgent) Synced() bool { return a.synced }

// nicReconnectDelay is the slave's re-check interval when Nic-KV is
// unreachable (the paper's slave re-checks master info periodically), and
// nicDialTimeout bounds a dial whose handshake segments were swallowed by a
// partition or a downed endpoint (no RST ever comes back).
const (
	nicReconnectDelay = 500 * sim.Millisecond
	nicDialTimeout    = 1 * sim.Second
)

func (a *SlaveAgent) connectToNic() {
	a.dialGen++
	gen := a.dialGen
	if !a.Srv.Alive() {
		a.Srv.Engine().After(nicReconnectDelay, func() {
			if gen == a.dialGen {
				a.connectToNic()
			}
		})
		return
	}
	a.Srv.Engine().After(nicDialTimeout, func() {
		if gen == a.dialGen && a.nicConn == nil {
			a.connectToNic()
		}
	})
	a.Srv.Stack().Dial(a.nicEP, NicPort, func(conn transport.Conn, err error) {
		if gen != a.dialGen {
			if err == nil {
				conn.Close() // superseded by a newer attempt
			}
			return
		}
		if err != nil {
			a.Srv.Engine().After(nicReconnectDelay, func() {
				if gen == a.dialGen {
					a.connectToNic()
				}
			})
			return
		}
		a.nicConn = conn
		if a.everConnected {
			a.Resyncs++
			a.mResyncs.Inc()
		}
		a.everConnected = true
		conn.SetHandler(a.onNicMessage)
		conn.SetCloseHandler(func() {
			if a.nicConn != conn {
				return
			}
			// Lost the Nic-KV control connection (link failure or Nic-KV
			// restart): fall out of steady state and re-establish.
			a.nicConn = nil
			a.synced = false
			a.Srv.Engine().After(nicReconnectDelay, a.connectToNic)
		})
		a.sendInitSync()
	})
}

// sendInitSync sends the initial synchronization request to the SmartNIC
// on the master node (§III-C step ①): replication ID, offset, identity.
func (a *SlaveAgent) sendInitSync() {
	if a.nicConn == nil {
		return
	}
	a.synced = false
	frame := []byte{msgInitSync}
	frame = appendStr(frame, a.id)
	frame = appendStr(frame, a.masterReplID)
	frame = appendU64(frame, uint64(a.offset))
	a.nicConn.Send(frame)
}

// Resync forces a fresh synchronization (used after recovery).
func (a *SlaveAgent) Resync() {
	a.Resyncs++
	a.mResyncs.Inc()
	a.sendInitSync()
}

func (a *SlaveAgent) onNicMessage(data []byte) {
	if len(data) == 0 || !a.Srv.Alive() {
		return
	}
	r := &frameReader{b: data, pos: 1}
	switch data[0] {
	case msgProbe:
		if a.nicConn == nil {
			return // probe raced a connection teardown
		}
		a.Srv.Proc().Core.Charge(a.Srv.Params().ProbeCPU)
		a.nicConn.Send([]byte{msgProbeAck})
	case msgCmdStream:
		off := r.i64()
		cmd := r.rest()
		if r.bad {
			return
		}
		a.onStream(off, cmd)
	case msgCmdStreamAck:
		// A gated stream chunk (or an empty ack-demand ping at our own
		// offset): apply like a normal chunk, then report progress right
		// away — a master reply is parked on this offset, and the next
		// ProgressInterval cron tick is too far away.
		off := r.i64()
		cmd := r.rest()
		if r.bad {
			return
		}
		a.onStream(off, cmd)
		a.reportProgress()
	case msgPromote:
		// Failover: become the master (§III-D).
		a.Promoted++
		a.mPromoted.Inc()
		a.Srv.PromoteToMaster()
	case msgDemote:
		// Original master recovered: downgrade and resynchronize.
		// DemoteRole (not bare SetRole) so OnRoleChange fires and topology
		// layers repair their routing tables symmetrically with promotion.
		a.Demoted++
		a.mDemoted.Inc()
		a.Srv.DemoteRole()
		a.Resync()
	}
}

// onStream handles one steady-state replication chunk. Offsets make the
// overlap with the initial payload idempotent and expose gaps (a crashed
// and recovered slave sees a jump and triggers resynchronization).
func (a *SlaveAgent) onStream(off int64, cmd []byte) {
	if a.Srv.Role() == server.RoleMaster {
		return // promoted: no longer a stream consumer
	}
	if !a.synced {
		a.buffered = append(a.buffered, streamChunk{off: off, data: append([]byte(nil), cmd...)})
		return
	}
	switch {
	case off+int64(len(cmd)) <= a.offset:
		// Entirely before our offset: already covered by the payload.
		return
	case off > a.offset:
		// Gap: we missed stream traffic (e.g. while crashed). Buffer and
		// request resynchronization from the current offset.
		a.buffered = append(a.buffered, streamChunk{off: off, data: append([]byte(nil), cmd...)})
		a.Resync()
		return
	}
	a.apply(cmd[a.offset-off:])
	a.offset = off + int64(len(cmd))
}

// apply executes replicated command bytes immediately (§III-C: "Every time
// the slave node receives a new command, it executes the command
// immediately"). Decoding — command framing and SELECT context — lives in
// the shared replstream Applier.
func (a *SlaveAgent) apply(data []byte) {
	a.applier.Feed(data)
}

// onPayload handles the initial-sync payload from the master (§III-C step
// ③): either the full data file or the backlog range.
func (a *SlaveAgent) onPayload(data []byte) {
	if len(data) == 0 || !a.Srv.Alive() {
		return
	}
	p := a.Srv.Params()
	r := &frameReader{b: data, pos: 1}
	switch data[0] {
	case msgPayloadRDB:
		replID := r.str()
		base := r.i64()
		body := r.rest()
		if r.bad {
			return
		}
		a.Srv.Proc().Core.Charge(sim.Duration(float64(len(body)) * p.RDBPerByte))
		if err := rdb.Load(a.Srv.Store(), body); err != nil {
			a.Resync()
			return
		}
		a.masterReplID = replID
		a.offset = base
		a.enterSteadyState()
	case msgPayloadBacklog:
		replID := r.str()
		start := r.i64()
		body := r.rest()
		if r.bad {
			return
		}
		a.masterReplID = replID
		if skip := a.offset - start; skip > 0 {
			if skip >= int64(len(body)) {
				body = nil
			} else {
				body = body[skip:]
			}
		} else {
			a.offset = start
		}
		a.apply(body)
		a.offset += int64(len(body))
		a.enterSteadyState()
	}
}

// enterSteadyState drains buffered stream chunks and switches to live
// application. The buffer holds frames in ARRIVAL order, which is not
// offset order once a resync raced the live stream (chunks buffered before
// and after the gap interleave): draining as-is would apply commands out of
// order or re-trigger spurious gap resyncs, so order and deduplicate first.
func (a *SlaveAgent) enterSteadyState() {
	a.synced = true
	buf := orderChunks(a.buffered)
	a.buffered = nil
	for i, ch := range buf {
		if !a.synced {
			// A genuine gap re-triggered resync mid-drain: keep the rest
			// buffered for the next payload instead of dropping it.
			a.buffered = append(a.buffered, buf[i:]...)
			return
		}
		a.onStream(ch.off, ch.data)
	}
}

// orderChunks sorts buffered stream chunks by offset and drops duplicate
// offsets (the same frame can be buffered twice across a resync).
func orderChunks(buf []streamChunk) []streamChunk {
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].off < buf[j].off })
	out := buf[:0]
	for i, ch := range buf {
		if i > 0 && ch.off == buf[i-1].off {
			continue
		}
		out = append(out, ch)
	}
	return out
}

// reportProgress sends the replication offset to Nic-KV (§III-C step ③).
func (a *SlaveAgent) reportProgress() {
	if a.nicConn == nil || !a.Srv.Alive() || !a.synced {
		return
	}
	a.Srv.Proc().Post(a.Srv.Params().ReplyBuildCPU, func() {
		if a.nicConn == nil || !a.Srv.Alive() {
			return
		}
		frame := []byte{msgProgress}
		frame = appendU64(frame, uint64(a.offset))
		a.nicConn.Send(frame)
	})
}
