package core

import (
	"testing"
	"testing/quick"

	"skv/internal/sim"
)

func TestFrameRoundTrip(t *testing.T) {
	frame := []byte{msgInitSync}
	frame = appendStr(frame, "slave0/host")
	frame = appendStr(frame, "replid-abc")
	frame = appendU64(frame, 123456789)

	r := &frameReader{b: frame, pos: 1}
	if got := r.str(); got != "slave0/host" {
		t.Fatalf("id=%q", got)
	}
	if got := r.str(); got != "replid-abc" {
		t.Fatalf("replid=%q", got)
	}
	if got := r.i64(); got != 123456789 {
		t.Fatalf("offset=%d", got)
	}
	if r.bad {
		t.Fatal("reader flagged bad on valid frame")
	}
}

func TestFrameReaderRest(t *testing.T) {
	frame := []byte{msgReplReq}
	frame = appendU64(frame, 42)
	frame = append(frame, []byte("command-bytes")...)
	r := &frameReader{b: frame, pos: 1}
	if off := r.i64(); off != 42 {
		t.Fatalf("off=%d", off)
	}
	if got := string(r.rest()); got != "command-bytes" {
		t.Fatalf("rest=%q", got)
	}
}

func TestFrameReaderTruncationSetsBad(t *testing.T) {
	cases := [][]byte{
		{msgInitSync},                    // nothing after tag
		{msgInitSync, 0x00},              // half a length prefix
		{msgInitSync, 0x00, 0x05, 'a'},   // promised 5, delivered 1
		append([]byte{msgReplReq}, 1, 2), // partial u64
	}
	for i, frame := range cases {
		r := &frameReader{b: frame, pos: 1}
		switch frame[0] {
		case msgInitSync:
			r.str()
		case msgReplReq:
			r.u64()
		}
		if !r.bad {
			t.Errorf("case %d: truncated frame not flagged", i)
		}
		if r.rest() != nil {
			t.Errorf("case %d: rest() on bad frame not nil", i)
		}
	}
}

// Property: string + u64 sequences round-trip for arbitrary content.
func TestFrameEncodingProperty(t *testing.T) {
	f := func(a, b string, n uint64) bool {
		if len(a) > 60000 || len(b) > 60000 {
			return true
		}
		frame := []byte{0xAA}
		frame = appendStr(frame, a)
		frame = appendU64(frame, n)
		frame = appendStr(frame, b)
		r := &frameReader{b: frame, pos: 1}
		return r.str() == a && r.u64() == n && r.str() == b && !r.bad
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultConfig(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.ThreadNum != 1 {
		t.Error("paper default is single-threaded NIC replication")
	}
	if cfg.MinSlaves != 0 || cfg.MaxLag != 0 {
		t.Error("gates should default off")
	}
	if cfg.ProgressInterval <= 0 {
		t.Error("progress reports must be periodic")
	}
	_ = sim.Second
}

func TestPortAssignments(t *testing.T) {
	// The three planes must not collide.
	if ClientPort == ReplPort || ClientPort == NicPort || ReplPort == NicPort {
		t.Fatal("port collision")
	}
}
