package core

import "testing"

func decodeStatus(t *testing.T, frame []byte) (count int, minOff int64, offs []int64, threads int) {
	t.Helper()
	if len(frame) == 0 || frame[0] != msgStatus {
		t.Fatalf("not a status frame: % x", frame)
	}
	r := &frameReader{b: frame, pos: 1}
	count = int(r.u64())
	minOff = r.i64()
	for i := 0; i < count; i++ {
		offs = append(offs, r.i64())
	}
	if r.bad {
		t.Fatalf("truncated status frame: % x", frame)
	}
	threads = -1 // absent (an older frame)
	if len(r.b)-r.pos >= 8 {
		threads = int(r.u64())
	}
	return count, minOff, offs, threads
}

func TestStatusFrameWithSlaves(t *testing.T) {
	count, minOff, offs, threads := decodeStatus(t, statusFrame([]int64{300, 100, 200}, 2))
	if count != 3 || minOff != 100 {
		t.Fatalf("count=%d minOff=%d, want 3/100", count, minOff)
	}
	if len(offs) != 3 || offs[0] != 300 || offs[1] != 100 || offs[2] != 200 {
		t.Fatalf("offsets %v", offs)
	}
	if threads != 2 {
		t.Fatalf("effective threads %d, want 2", threads)
	}
}

func TestStatusFrameWithZeroValidSlaves(t *testing.T) {
	// The empty report used to encode the -1 "unset" sentinel, which decodes
	// through uint64 into a huge bogus offset on the master side.
	count, minOff, _, threads := decodeStatus(t, statusFrame(nil, 1))
	if count != 0 {
		t.Fatalf("count=%d want 0", count)
	}
	if minOff != 0 {
		t.Fatalf("empty status frame encodes minOff=%d, want 0", minOff)
	}
	if threads != 1 {
		t.Fatalf("effective threads %d, want 1", threads)
	}
}

// TestStatusFrameWithoutThreadsField pins backward compatibility: a frame
// from a build that predates the trailing effective-thread field must still
// decode, with the field reported as absent.
func TestStatusFrameWithoutThreadsField(t *testing.T) {
	frame := []byte{msgStatus}
	frame = appendU64(frame, 1)
	frame = appendU64(frame, 50)
	frame = appendU64(frame, 50)
	count, minOff, offs, threads := decodeStatus(t, frame)
	if count != 1 || minOff != 50 || len(offs) != 1 {
		t.Fatalf("count=%d minOff=%d offs=%v", count, minOff, offs)
	}
	if threads != -1 {
		t.Fatalf("threads=%d, want -1 (absent)", threads)
	}
}

func TestOrderChunksSortsAndDeduplicates(t *testing.T) {
	buf := []streamChunk{
		{off: 200, data: []byte("c")},
		{off: 0, data: []byte("a")},
		{off: 100, data: []byte("b")},
		{off: 100, data: []byte("b")}, // duplicate buffered across a resync
	}
	out := orderChunks(buf)
	if len(out) != 3 {
		t.Fatalf("got %d chunks, want 3 (duplicate dropped)", len(out))
	}
	for i, want := range []int64{0, 100, 200} {
		if out[i].off != want {
			t.Fatalf("chunk %d at offset %d, want %d (drain order must be offset order)", i, out[i].off, want)
		}
	}
}
