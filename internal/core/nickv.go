package core

import (
	"fmt"

	"skv/internal/consistency"
	"skv/internal/fabric"
	"skv/internal/metrics"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/replstream"
	"skv/internal/sim"
	"skv/internal/store"
	"skv/internal/transport"
)

// nicGate is one reply the master parked on a quorum: the write ending at
// end may be acknowledged once need valid slaves have replicated past it
// (need 0 = every slave the NIC considers valid at release time).
// Gates arrive in stream-offset order (the master's writes are sequenced),
// so the queue releases strictly FIFO: a later, weaker gate never releases
// ahead of an unsatisfied stricter one — the msgAckRelease watermark is a
// plain high-water mark and the master trusts it unconditionally.
type nicGate struct {
	end  int64
	need int
}

// nodeEntry is one slave in the node list Nic-KV maintains on the SmartNIC
// ("a node list storing the corresponding relationship between the master
// node and the slave node is maintained on the SmartNIC", §III-C).
type nodeEntry struct {
	id     string // fabric endpoint name of the slave host
	conn   transport.Conn
	replID string
	offset int64

	valid       bool // cleared by the failure detector (§III-D invalid flag)
	lastAck     sim.Time
	probeSentAt sim.Time
	threadIdx   int

	// lag is the node's backlog-lag gauge (nickv.lag.<id>): bytes of stream
	// fanned out but not yet acknowledged through progress reports.
	lag *metrics.Gauge
}

// NicKV is the SmartNIC-resident component of SKV. It runs on the NIC's
// ARM cores (weak, Speed<1) behind the NIC switch, and never handles
// client requests — it only cooperates with other server nodes (§III-C).
type NicKV struct {
	eng    *sim.Engine
	params *model.Params
	net    *fabric.Network
	cfg    Config

	// Stack is the RDMA transport on the SmartNIC endpoint, driven by the
	// main ARM core.
	Stack *rconn.Stack
	proc  *sim.Proc

	// threads are the optional extra replication procs (thread-num > 1),
	// each on its own ARM core; slaves are spread across them evenly.
	threads []*sim.Proc

	nodes   []*nodeEntry
	byConn  map[transport.Conn]*nodeEntry
	nextThr int

	masterConn    transport.Conn
	masterValid   bool
	masterLastAck sim.Time
	masterProbeAt sim.Time
	promotedID    string

	// gates is the FIFO of reply gates the master posted (quorum/all writes).
	// Empty in async deployments, so the legacy fan-out path is untouched.
	gates []nicGate

	probeTicker *sim.Ticker

	// Shadow replica for the §IV-A ablation (nil unless enabled). With
	// rshards > 1 the replica mirrors the host shard layout: rprocs are the
	// per-shard ARM cores, applyq/applyInflight the apply pipeline, and
	// replicaOff the stream offset the replica has consumed up to (replay
	// trimming + gap detection). See niccache.go.
	replica       *store.Store
	replApplier   *replstream.Applier
	rshards       int
	rprocs        []*sim.Proc
	applyq        []nicApplyOp
	applyInflight int
	replicaOff    int64

	mReplicaGaps   *metrics.Counter
	mReplicaRouted *metrics.Counter
	mReplicaFenced *metrics.Counter

	// track is the client-side-caching invalidation plane (nil until a
	// subscriber or interest frame arrives): the interest table, the armed
	// push channels, and their reverse map. See nictrack.go.
	track *nicTracking

	// Stats for tests and ablations. ReplRequests counts frames from the
	// master, ReplCmds the commands they carried (equal unless batching);
	// StreamSent counts frames pushed to slaves. InvalidationsPushed counts
	// invalidation pushes to tracking subscribers.
	ReplRequests        uint64
	ReplCmds            uint64
	StreamSent          uint64
	Failovers           uint64
	MasterRestores      uint64
	InvalidationsPushed uint64

	// metrics/timeline are the NIC's observability plane: counters and the
	// probe-RTT histogram in the registry, failure-detector and failover
	// transitions as typed timeline events.
	metrics  *metrics.Registry
	timeline *metrics.Timeline
	// streamEnd is the stream offset one past the last fanned-out byte (the
	// reference point for the per-slave lag gauges).
	streamEnd int64

	mReplRequests *metrics.Counter
	mReplCmds     *metrics.Counter
	mStreamSent   *metrics.Counter
	mProbesSent   *metrics.Counter
	mProbeAcks    *metrics.Counter
	mMarkDowns    *metrics.Counter
	mMarkUps      *metrics.Counter
	mGatesQueued   *metrics.Counter
	mGateReleases  *metrics.Counter
	gGatesPending  *metrics.Gauge
	probeRTT       *metrics.LatencyHist
	mInvalidations *metrics.Counter
}

// NewNicKV boots Nic-KV on the SmartNIC endpoint of machine m. It creates
// the ARM cores, the main event-loop process, optional replication threads,
// the listener on NicPort, and the 1-second probe time event.
func NewNicKV(eng *sim.Engine, net *fabric.Network, m *fabric.Machine, params *model.Params, cfg Config) *NicKV {
	if m.NIC == nil {
		panic("core: NewNicKV on a machine without a SmartNIC")
	}
	if cfg.ThreadNum < 1 {
		cfg.ThreadNum = 1
	}
	if cfg.ThreadNum > params.NICCores {
		cfg.ThreadNum = params.NICCores
	}
	mainCore := sim.NewCore(eng, m.Name+"-nic-core0", params.NICCoreSpeed)
	proc := sim.NewProc(eng, mainCore, params.CompChannelWake)
	reg := metrics.NewRegistry(m.NIC.Name(), eng.Now)
	n := &NicKV{
		eng:      eng,
		params:   params,
		net:      net,
		cfg:      cfg,
		Stack:    rconn.New(net, m.NIC, proc),
		proc:     proc,
		byConn:   make(map[transport.Conn]*nodeEntry),
		metrics:  reg,
		timeline: metrics.NewTimeline(eng.Now),

		mReplRequests: reg.Counter("nickv.repl.requests"),
		mReplCmds:     reg.Counter("nickv.repl.cmds"),
		mStreamSent:   reg.Counter("nickv.stream.sent"),
		mProbesSent:   reg.Counter("nickv.probe.sent"),
		mProbeAcks:    reg.Counter("nickv.probe.acks"),
		mMarkDowns:    reg.Counter("nickv.node.mark_down"),
		mMarkUps:      reg.Counter("nickv.node.mark_up"),
		mGatesQueued:   reg.Counter("nickv.gate.queued"),
		mGateReleases:  reg.Counter("nickv.gate.releases"),
		gGatesPending:  reg.Gauge("nickv.gate.pending"),
		probeRTT:       reg.Histogram("nickv.probe.rtt"),
		mInvalidations: reg.Counter("nickv.track.invalidations"),
	}
	n.Stack.Device().SetMetrics(reg)
	// cfg.ThreadNum was clamped to [1, NICCores] above; record what the NIC
	// actually runs so operators see the clamp, not the requested number.
	reg.Gauge("nickv.threads.effective").Set(int64(cfg.ThreadNum))
	for i := 1; i < cfg.ThreadNum; i++ {
		c := sim.NewCore(eng, fmt.Sprintf("%s-nic-core%d", m.Name, i), params.NICCoreSpeed)
		n.threads = append(n.threads, sim.NewProc(eng, c, params.CompChannelWake))
	}
	n.Stack.Listen(NicPort, n.accept)
	n.probeTicker = eng.Every(params.ProbePeriod, n.probeTick)
	if cfg.ServeReadsFromNIC {
		n.initReadServing(m.Name)
	}
	return n
}

// Proc exposes the main ARM-core process (utilization reporting).
func (n *NicKV) Proc() *sim.Proc { return n.proc }

// Metrics exposes the NIC's instrument registry.
func (n *NicKV) Metrics() *metrics.Registry { return n.metrics }

// Timeline exposes the failover timeline tracer.
func (n *NicKV) Timeline() *metrics.Timeline { return n.timeline }

// EffectiveThreads reports how many replication threads Nic-KV actually
// runs after clamping the configured ThreadNum to the ARM core count.
func (n *NicKV) EffectiveThreads() int { return n.cfg.ThreadNum }

// masterNode is the timeline/metrics label for the master, which Nic-KV
// addresses by its control connection rather than a node-list entry.
const masterNode = "master"

// masterLabel is the timeline label for this NIC's master: the legacy
// "master" in a single-master deployment, group-qualified (e.g.
// "g1.master") when the SKV unit is one replication group of many.
func (n *NicKV) masterLabel() string {
	if n.cfg.Group != "" {
		return n.cfg.Group + "." + masterNode
	}
	return masterNode
}

// lagGaugeName namespaces the per-slave lag gauge by replication group so
// multi-master snapshots never collide; Group == "" keeps the legacy
// nickv.lag.<id> name bit-for-bit.
func (n *NicKV) lagGaugeName(id string) string {
	if n.cfg.Group != "" {
		return "nickv.lag." + n.cfg.Group + "." + id
	}
	return "nickv.lag." + id
}

// markNodeDown sets the invalid flag on a node-list entry, recording the
// transition once.
func (n *NicKV) markNodeDown(nd *nodeEntry) {
	if !nd.valid {
		return
	}
	nd.valid = false
	n.mMarkDowns.Inc()
	n.timeline.Record(metrics.EventMarkDown, nd.id)
}

// NodeCount reports the node-list length.
func (n *NicKV) NodeCount() int { return len(n.nodes) }

// eachValidSlave visits every node that currently counts as a valid slave:
// not flagged by the failure detector and not promoted to master. The one
// definition of "valid slave" shared by availability reporting, status
// frames, and replication fan-out.
func (n *NicKV) eachValidSlave(fn func(*nodeEntry)) {
	for _, nd := range n.nodes {
		if nd.valid && nd.id != n.promotedID {
			fn(nd)
		}
	}
}

// ValidSlaves reports the slaves currently marked valid (excluding a
// promoted node).
func (n *NicKV) ValidSlaves() int {
	c := 0
	n.eachValidSlave(func(*nodeEntry) { c++ })
	return c
}

func (n *NicKV) accept(conn transport.Conn) {
	conn.SetHandler(func(data []byte) { n.onMessage(conn, data) })
	conn.SetCloseHandler(func() {
		if nd := n.byConn[conn]; nd != nil {
			n.markNodeDown(nd)
			// Drop the dead connection so probeTick and fanOut stop feeding
			// it; the slave re-registers on a fresh connection.
			nd.conn = nil
		}
		delete(n.byConn, conn)
		// A dead subscription channel takes its interest with it: the
		// client flushes its cache on channel loss and re-registers, so
		// keeping stale entries would only pin the table.
		if n.track != nil {
			if name, ok := n.track.subByConn[conn]; ok {
				n.dropSubscriber(name)
			}
		}
		if conn == n.masterConn {
			n.masterConn = nil
			// Gated replies died with the master's client connections; a
			// restarted master re-posts gates for whatever it re-parks.
			n.gates = nil
			n.gGatesPending.Set(0)
			if n.masterValid {
				// The master's control connection died while it was still
				// considered healthy: treat it like a probe timeout.
				n.masterValid = false
				n.mMarkDowns.Inc()
				n.timeline.Record(metrics.EventMarkDown, n.masterLabel())
				n.failover()
			}
		}
	})
}

// onMessage dispatches one frame received on the SmartNIC. It runs on the
// main ARM core with the completion cost already charged by the transport.
func (n *NicKV) onMessage(conn transport.Conn, data []byte) {
	if len(data) == 0 {
		return
	}
	r := &frameReader{b: data, pos: 1}
	switch data[0] {
	case msgMasterHello:
		// The master announced itself. On a plain boot this just arms the
		// detector — but a hello while a slave is promoted is the original
		// master RETURNING after a failover (§III-D): it must go through
		// restoreMaster so the promoted slave is demoted, or both nodes
		// keep the master role (split-brain).
		n.masterConn = conn
		n.masterLastAck = n.eng.Now()
		n.masterProbeAt = 0 // fresh connection: restart the probe cycle
		if n.promotedID != "" {
			n.restoreMaster()
		} else {
			n.masterValid = true
		}
	case msgInitSync:
		id := r.str()
		replID := r.str()
		off := r.i64()
		if r.bad {
			return
		}
		n.registerSlave(id, replID, off, conn)
	case msgReplReq:
		n.ReplRequests++
		n.mReplRequests.Inc()
		n.proc.Core.Charge(n.params.NicParseReqCPU)
		off := r.i64()
		cmd := r.rest()
		if r.bad {
			return
		}
		n.fanOut(off, cmd, 1)
	case msgReplReqBatch:
		n.ReplRequests++
		n.mReplRequests.Inc()
		n.proc.Core.Charge(n.params.NicParseReqCPU)
		off := r.i64()
		cnt := int(r.u64())
		cmds := r.rest()
		if r.bad || cnt < 1 {
			return
		}
		n.fanOut(off, cmds, cnt)
	case msgProgress:
		if nd := n.byConn[conn]; nd != nil {
			nd.offset = r.i64()
			nd.lastAck = n.eng.Now()
			nd.lag.Set(lagBehind(n.streamEnd, nd.offset))
			n.checkGates()
		}
	case msgGate:
		end := r.i64()
		need := int(r.u64()) // 0 = all: resolved against the NIC's live valid-slave view
		if r.bad || need < 0 {
			return
		}
		n.proc.Core.Charge(n.params.NicParseReqCPU)
		n.mGatesQueued.Inc()
		n.gates = append(n.gates, nicGate{end: end, need: need})
		n.gGatesPending.Set(int64(len(n.gates)))
		if n.checkGates() {
			return
		}
		// The gate's stream bytes may already have fanned out as plain
		// msgCmdStream frames (gate frames trail the flush on the same FIFO
		// connection), in which case the slaves would sit on their
		// ProgressInterval cron before reporting. Demand a progress report
		// now from every valid slave still behind the gate.
		n.demandAcks(end)
	case msgTrackHello:
		name := r.str()
		if r.bad {
			return
		}
		n.registerSubscriber(name, conn)
	case msgTrackKey:
		name := r.str()
		key := r.str()
		if r.bad {
			return
		}
		n.trackInterest(name, key)
	case msgTrackDrop:
		name := r.str()
		if r.bad {
			return
		}
		n.dropSubscriber(name)
	case msgProbeAck:
		n.mProbeAcks.Inc()
		if conn == n.masterConn {
			n.masterLastAck = n.eng.Now()
			if n.masterProbeAt > 0 {
				n.probeRTT.Observe(n.eng.Now().Sub(n.masterProbeAt))
			}
			if !n.masterValid {
				n.restoreMaster()
			}
			return
		}
		if nd := n.byConn[conn]; nd != nil {
			nd.lastAck = n.eng.Now()
			if nd.probeSentAt > 0 {
				n.probeRTT.Observe(n.eng.Now().Sub(nd.probeSentAt))
			}
			if !nd.valid {
				// §III-D / Fig 14: recovered node — remove the invalid
				// flag and replicate normally as before.
				nd.valid = true
				n.mMarkUps.Inc()
				n.timeline.Record(metrics.EventMarkUp, nd.id)
				// A recovered node may tip a pending quorum over its need.
				n.checkGates()
			}
		}
	}
}

// checkGates pops every satisfied gate off the FIFO head and reports the
// highest released offset to the master in a single msgAckRelease frame.
// Returns whether anything was released. A gate is satisfied when `need`
// valid slaves have reported offsets at or past its end; the strict FIFO
// order means a stricter gate blocks weaker ones behind it, which keeps the
// release watermark sound (see nicGate).
func (n *NicKV) checkGates() bool {
	if len(n.gates) == 0 {
		return false
	}
	released := int64(-1)
	for len(n.gates) > 0 {
		g := n.gates[0]
		valid, cnt := 0, 0
		n.eachValidSlave(func(nd *nodeEntry) {
			valid++
			if nd.offset >= g.end {
				cnt++
			}
		})
		need := g.need
		if need == 0 {
			// "All": every slave the NIC currently considers valid. With no
			// valid slave the gate holds — the strictest level never
			// degrades to async when the replica set empties.
			if valid == 0 {
				break
			}
			need = valid
		}
		if cnt < need {
			break
		}
		released = g.end
		n.gates = n.gates[1:]
	}
	if released < 0 {
		return false
	}
	n.gGatesPending.Set(int64(len(n.gates)))
	if n.masterConn != nil {
		n.mGateReleases.Inc()
		n.proc.Core.Charge(n.params.NicFeedSlaveCPU)
		frame := []byte{msgAckRelease}
		frame = appendU64(frame, uint64(released))
		n.masterConn.Send(frame)
	}
	return true
}

// demandAcks pings every valid slave still behind `end` with an empty
// msgCmdStreamAck frame at the slave's own reported offset: a no-op for the
// stream (entirely before the slave's offset) that makes the agent report
// progress immediately instead of on its ProgressInterval cron.
func (n *NicKV) demandAcks(end int64) {
	n.eachValidSlave(func(nd *nodeEntry) {
		if nd.conn == nil || nd.offset >= end {
			return
		}
		n.proc.Core.Charge(n.params.NicFeedSlaveCPU)
		frame := []byte{msgCmdStreamAck}
		frame = appendU64(frame, uint64(nd.offset))
		nd.conn.Send(frame)
	})
}

// registerSlave implements §III-C step ①: create a client object for the
// new slave, append its replication status to the node list, and notify
// the master (step ②).
func (n *NicKV) registerSlave(id, replID string, off int64, conn transport.Conn) {
	nd := n.findNode(id)
	if nd == nil {
		nd = &nodeEntry{id: id, threadIdx: n.nextThr, lag: n.metrics.Gauge(n.lagGaugeName(id))}
		if len(n.threads) > 0 {
			n.nextThr = (n.nextThr + 1) % len(n.threads)
		}
		n.nodes = append(n.nodes, nd)
	}
	if nd.conn != nil && nd.conn != conn {
		delete(n.byConn, nd.conn)
	}
	nd.conn = conn
	nd.replID = replID
	nd.offset = off
	nd.valid = true
	nd.lastAck = n.eng.Now()
	n.byConn[conn] = nd
	if len(n.threads) > 0 {
		if ca, okAssign := conn.(rconn.CoreAssignable); okAssign {
			ca.AssignSendCore(n.threads[nd.threadIdx].Core)
		}
	}
	if n.masterConn != nil {
		frame := []byte{msgNewSlave}
		frame = appendStr(frame, id)
		frame = appendStr(frame, replID)
		frame = appendU64(frame, uint64(off))
		n.masterConn.Send(frame)
	}
	// A (re-)joining slave that kept its offset may satisfy a pending gate.
	n.checkGates()
}

func (n *NicKV) findNode(id string) *nodeEntry {
	for _, nd := range n.nodes {
		if nd.id == id {
			return nd
		}
	}
	return nil
}

// fanOut is the steady-state replication phase (§III-C, Fig 9): the command
// bytes are written to the send buffer of every valid slave and pushed with
// WRITE_WITH_IMM. A batched request fans out as ONE msgCmdStream frame per
// slave — one CPU charge and one send cover all cmds commands, which is
// where batching amortizes the per-slave feed cost. RESP commands
// self-frame, so the concatenated payload needs no inner lengths and the
// slave's offset-based dedup works unchanged. With thread-num > 1, slaves
// are spread evenly across the ARM cores; the default single-threaded mode
// does everything on the main core.
func (n *NicKV) fanOut(off int64, cmd []byte, cmds int) {
	n.ReplCmds += uint64(cmds)
	n.mReplCmds.Add(uint64(cmds))
	if end := off + int64(len(cmd)); end > n.streamEnd {
		n.streamEnd = end
	}
	n.applyToReplica(off, cmd)
	// While reply gates are pending, the stream goes out tagged
	// msgCmdStreamAck: each slave reports progress as soon as it applies the
	// chunk, so the gate releases at apply latency instead of the
	// ProgressInterval cron. Async deployments never queue gates and keep
	// the legacy frame byte-for-byte.
	tag := byte(msgCmdStream)
	if len(n.gates) > 0 {
		tag = msgCmdStreamAck
	}
	frame := []byte{tag}
	frame = appendU64(frame, uint64(off))
	frame = append(frame, cmd...)
	n.eachValidSlave(func(nd *nodeEntry) {
		if nd.conn == nil {
			return
		}
		n.StreamSent++
		n.mStreamSent.Inc()
		nd.lag.Set(lagBehind(n.streamEnd, nd.offset))
		if len(n.threads) > 0 {
			conn := nd.conn
			n.threads[nd.threadIdx].Post(n.params.NicFeedSlaveCPU, func() {
				conn.Send(frame)
			})
		} else {
			n.proc.Core.Charge(n.params.NicFeedSlaveCPU)
			nd.conn.Send(frame)
		}
	})
	// Invalidation pushes piggyback on the fan-out event: the same stream
	// chunk that just replicated is scanned for tracked keys. No-op (not
	// even a parse) unless the interest table is occupied.
	n.pushTrackInvalidations(cmd)
}

// probeTick fires every ProbePeriod on the NIC: check for overdue replies
// (declaring nodes crashed after waiting-time), send the next round of
// probes, and report status to the master.
func (n *NicKV) probeTick() {
	n.proc.Post(n.params.ProbeCPU, func() {
		now := n.eng.Now()
		deadline := n.params.WaitingTime

		// Failure detection (§III-D): a node whose last reply is older than
		// waiting-time is considered to have crashed and gets the invalid
		// flag in the node list. An outstanding probe that has produced no
		// reply yet counts as a miss on the timeline even before the
		// waiting-time deadline expires.
		for _, nd := range n.nodes {
			if nd.valid && nd.probeSentAt > 0 && nd.lastAck < nd.probeSentAt {
				n.timeline.Record(metrics.EventProbeMiss, nd.id)
			}
			if nd.valid && nd.probeSentAt > 0 && now.Sub(nd.lastAck) >= deadline {
				n.markNodeDown(nd)
			}
		}
		if n.masterConn != nil && n.masterValid && n.masterProbeAt > 0 &&
			n.masterLastAck < n.masterProbeAt {
			n.timeline.Record(metrics.EventProbeMiss, n.masterLabel())
		}
		if n.masterConn != nil && n.masterValid && n.masterProbeAt > 0 &&
			now.Sub(n.masterLastAck) >= deadline {
			n.masterValid = false
			n.mMarkDowns.Inc()
			n.timeline.Record(metrics.EventMarkDown, n.masterLabel())
			n.failover()
		}

		// Send probes.
		probe := []byte{msgProbe}
		if n.masterConn != nil {
			n.masterProbeAt = now
			n.mProbesSent.Inc()
			n.masterConn.Send(probe)
		}
		for _, nd := range n.nodes {
			if nd.conn != nil {
				nd.probeSentAt = now
				n.mProbesSent.Inc()
				nd.conn.Send(probe)
			}
		}

		// Status to the master: valid slave count, slowest offset, and each
		// valid slave's offset (the master's min-slaves / lag write gate
		// and WAIT consume this).
		if n.masterConn != nil && n.masterValid {
			var offs []int64
			n.eachValidSlave(func(nd *nodeEntry) { offs = append(offs, nd.offset) })
			n.masterConn.Send(statusFrame(offs, n.cfg.ThreadNum))
		}
	})
}

// statusFrame encodes the status report to the master: valid-slave count,
// slowest offset, each valid slave's offset, then the NIC's effective
// replication thread count (a trailing field — masters parse it only when
// present, so older frames stay decodable). With zero valid slaves the
// slowest offset is encoded as 0 — not the -1 sentinel, which as uint64
// would decode to 2^63-ish garbage and poison the master's lag gate.
func statusFrame(offs []int64, threads int) []byte {
	minOff := int64(-1)
	for _, off := range offs {
		if minOff < 0 || off < minOff {
			minOff = off
		}
	}
	if minOff < 0 {
		minOff = 0
	}
	frame := []byte{msgStatus}
	frame = appendU64(frame, uint64(len(offs)))
	frame = appendU64(frame, uint64(minOff))
	for _, off := range offs {
		frame = appendU64(frame, uint64(off))
	}
	frame = appendU64(frame, uint64(threads))
	return frame
}

// failover promotes a slave when the master is declared crashed (§III-D).
// Async keeps the legacy policy — the first available slave in node-list
// order. Quorum/all promote the valid slave with the highest reported
// offset: a gate only releases once `need` slaves' NIC-reported offsets
// cover the write, and the stream applies contiguously, so the max-offset
// node holds every write whose reply was released — the quorum's durability
// guarantee across master loss.
func (n *NicKV) failover() {
	if n.promotedID != "" {
		return // a promotion is already in effect; never stack a second one
	}
	var best *nodeEntry
	for _, nd := range n.nodes {
		if !nd.valid || nd.conn == nil {
			continue
		}
		if best == nil {
			best = nd
			if n.cfg.WriteConsistency == consistency.Async {
				break
			}
			continue
		}
		if nd.offset > best.offset {
			best = nd
		}
	}
	if best == nil {
		return
	}
	n.Failovers++
	n.promotedID = best.id
	n.timeline.Record(metrics.EventPromote, best.id)
	best.conn.Send([]byte{msgPromote})
}

// restoreMaster handles the original master's recovery: it continues as
// master and the previously promoted slave is downgraded (§III-D).
func (n *NicKV) restoreMaster() {
	n.masterValid = true
	n.MasterRestores++
	n.timeline.Record(metrics.EventRestore, n.masterLabel())
	if n.promotedID == "" {
		return
	}
	if nd := n.findNode(n.promotedID); nd != nil && nd.conn != nil {
		n.timeline.Record(metrics.EventDemote, nd.id)
		nd.conn.Send([]byte{msgDemote})
	}
	n.promotedID = ""
}

// lagBehind is the per-slave backlog lag: bytes fanned out past the node's
// acknowledged offset, clamped at zero (a freshly registered node may report
// an offset ahead of anything streamed this session).
func lagBehind(end, off int64) int64 {
	if lag := end - off; lag > 0 {
		return lag
	}
	return 0
}

// PromotedID reports the currently promoted node ("" when the original
// master is healthy).
func (n *NicKV) PromotedID() string { return n.promotedID }

// MasterValid reports the failure detector's view of the master.
func (n *NicKV) MasterValid() bool { return n.masterValid }
