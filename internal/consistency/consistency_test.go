package consistency

import (
	"testing"
)

func TestParseLevel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Level
		ok   bool
	}{
		{"async", Async, true},
		{"ASYNC", Async, true},
		{"Quorum", Quorum, true},
		{"all", All, true},
		{"none", 0, false},
		{"", 0, false},
	} {
		got, ok := ParseLevel(tc.in)
		if ok != tc.ok || (ok && got != tc.want) {
			t.Errorf("ParseLevel(%q) = %v, %v; want %v, %v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	if Async.String() != "async" || Quorum.String() != "quorum" || All.String() != "all" {
		t.Errorf("Level strings: %s/%s/%s", Async, Quorum, All)
	}
}

func TestAckedAtCountsReplicasPastTarget(t *testing.T) {
	tr := NewTracker(nil)
	tr.SetReplica("a", 10)
	tr.SetReplica("b", 5)
	tr.SetReplica("c", 0)
	if got := tr.AckedAt(5); got != 2 {
		t.Fatalf("AckedAt(5) = %d, want 2", got)
	}
	if got := tr.AckedAt(0); got != 3 {
		t.Fatalf("AckedAt(0) = %d, want 3", got)
	}
	if got := tr.MinAckOffset(); got != 0 {
		t.Fatalf("MinAckOffset = %d", got)
	}
	tr.DropReplica("c")
	if got := tr.AckedAt(5); got != 2 {
		t.Fatalf("AckedAt(5) after drop = %d", got)
	}
	if got := tr.MinAckOffset(); got != 5 {
		t.Fatalf("MinAckOffset after drop = %d", got)
	}
}

func TestWaiterFiresInFIFOOrderOnProgress(t *testing.T) {
	tr := NewTracker(nil)
	tr.SetReplica("a", 0)
	tr.SetReplica("b", 0)
	var fired []int
	park := func(id int, target int64, need int) *Waiter {
		w := &Waiter{Target: target, Need: need, Owner: uint64(id),
			Fire: func(acked int) { fired = append(fired, id) }}
		tr.Park(w)
		return w
	}
	park(1, 10, 1)
	park(2, 10, 2)
	park(3, 20, 1)
	if tr.Waiting() != 3 {
		t.Fatalf("Waiting = %d", tr.Waiting())
	}
	tr.Ack("a", 10) // satisfies 1 only
	tr.Ack("b", 15) // satisfies 2
	tr.Ack("a", 25) // satisfies 3
	if want := []int{1, 2, 3}; len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired %v, want %v", fired, want)
	}
	if tr.Waiting() != 0 {
		t.Fatalf("Waiting after fire = %d", tr.Waiting())
	}
}

func TestFinishNowFiresWithCurrentCount(t *testing.T) {
	tr := NewTracker(nil)
	tr.SetReplica("a", 7)
	got := -1
	w := &Waiter{Target: 10, Need: 2, Fire: func(acked int) { got = acked }}
	tr.Park(w)
	tr.FinishNow(w) // timeout path: reply with however many acked
	if got != 0 {
		t.Fatalf("FinishNow fired with %d, want 0 (nobody past 10)", got)
	}
	if tr.Waiting() != 0 {
		t.Fatalf("timed-out waiter still parked: %d", tr.Waiting())
	}
	if w.Done() != true {
		t.Fatal("waiter not marked done")
	}
	tr.FinishNow(w) // idempotent
	if got != 0 {
		t.Fatal("double fire")
	}
}

func TestDropOwnerDiscardsWithoutFiring(t *testing.T) {
	tr := NewTracker(nil)
	tr.SetReplica("a", 0)
	fired := false
	stopped := false
	tr.Park(&Waiter{Target: 5, Need: 1, Owner: 42,
		Fire: func(int) { fired = true },
		Stop: func() { stopped = true }})
	tr.ParkWrite(42, 5, 1, func() { fired = true })
	tr.NoteWrite(42, 5)
	tr.DropOwner(42)
	if tr.Waiting() != 0 || tr.Parked() != 0 {
		t.Fatalf("leak: waiting=%d parked=%d", tr.Waiting(), tr.Parked())
	}
	if !stopped {
		t.Fatal("timer not cancelled on disconnect")
	}
	if tr.LastWrite(42) != 0 {
		t.Fatalf("client offset leaked: %d", tr.LastWrite(42))
	}
	tr.Ack("a", 10)
	if fired {
		t.Fatal("dropped waiter fired after disconnect")
	}
}

func TestParkedWriteReleasesOnQuorum(t *testing.T) {
	tr := NewTracker(nil)
	tr.SetReplica("a", 0)
	tr.SetReplica("b", 0)
	var fired []int64
	tr.ParkWrite(1, 10, 2, func() { fired = append(fired, 10) })
	tr.ParkWrite(1, 20, 2, func() { fired = append(fired, 20) })
	tr.Ack("a", 30)
	if len(fired) != 0 {
		t.Fatalf("released on one ack: %v", fired)
	}
	tr.Ack("b", 12)
	if len(fired) != 1 || fired[0] != 10 {
		t.Fatalf("fired %v, want [10]", fired)
	}
	tr.Ack("b", 20)
	if len(fired) != 2 || fired[1] != 20 {
		t.Fatalf("fired %v, want [10 20]", fired)
	}
	if tr.Parked() != 0 {
		t.Fatalf("Parked = %d", tr.Parked())
	}
}

// TestReleaseUpToFiresEverythingBelowWatermark: the NIC's msgAckRelease is
// authoritative — it already verified the quorum — so the watermark releases
// parked writes regardless of what the tracker's (possibly stale) replica
// offsets say, but never past it.
func TestReleaseUpToFiresEverythingBelowWatermark(t *testing.T) {
	tr := NewTracker(nil)
	tr.UseBulkSource()
	var fired []int64
	tr.ParkWrite(1, 10, 2, func() { fired = append(fired, 10) })
	tr.ParkWrite(1, 20, 3, func() { fired = append(fired, 20) })
	tr.ParkWrite(1, 30, 1, func() { fired = append(fired, 30) })
	tr.ReleaseUpTo(20)
	if len(fired) != 2 || fired[0] != 10 || fired[1] != 20 {
		t.Fatalf("fired %v, want [10 20]", fired)
	}
	if tr.Parked() != 1 {
		t.Fatalf("Parked = %d, want 1", tr.Parked())
	}
	tr.ReleaseUpTo(29)
	if len(fired) != 2 {
		t.Fatalf("watermark 29 released offset 30: %v", fired)
	}
	tr.ReleaseUpTo(30)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want 3 entries", fired)
	}
}

func TestSetAllBulkOffsets(t *testing.T) {
	tr := NewTracker(nil)
	tr.UseBulkSource()
	if !tr.BulkSource() {
		t.Fatal("BulkSource not set")
	}
	fired := 0
	tr.Park(&Waiter{Target: 10, Need: 2, Fire: func(acked int) {
		fired = acked
	}})
	tr.SetAll([]int64{15, 12, 3})
	if fired != 2 {
		t.Fatalf("waiter fired with %d, want 2", fired)
	}
	if got := tr.ReplicaCount(); got != 3 {
		t.Fatalf("ReplicaCount = %d", got)
	}
	if got := tr.MinAckOffset(); got != 3 {
		t.Fatalf("MinAckOffset = %d", got)
	}
	// Shrinking reports drop replicas.
	tr.SetAll([]int64{20})
	if got := tr.ReplicaCount(); got != 1 {
		t.Fatalf("ReplicaCount after shrink = %d", got)
	}
}

func TestNoteWriteIsMonotone(t *testing.T) {
	tr := NewTracker(nil)
	tr.NoteWrite(1, 10)
	tr.NoteWrite(1, 5) // stale merge order must not regress the offset
	if got := tr.LastWrite(1); got != 10 {
		t.Fatalf("LastWrite = %d, want 10", got)
	}
}
