// Package consistency is the write-consistency plane: one AckTracker owns
// everything the server previously smeared across three layers — per-replica
// acknowledged offsets (baseline REPLCONF ACK or Nic-KV status frames),
// per-client last-write offsets (Redis client->woff), blocked WAITs, and
// parked write replies whose consistency level demands W replica acks before
// the client may see them.
//
// The tracker is deliberately passive simulation-wise: it charges no CPU and
// schedules no events. Callers push progress into it (Ack, SetAll) and it
// synchronously fires the waiters and parked replies that progress satisfies,
// in FIFO order, on the caller's event — so two identical runs retire waiters
// in identical order and the plane adds nothing to the event schedule when
// unused (WriteConsistency=async with no WAITs outstanding).
package consistency

import (
	"strings"

	"skv/internal/metrics"
)

// Level is a write consistency level.
type Level int

const (
	// Async replies to the client before replication fan-out completes —
	// the paper's Nic-KV behavior (§III) and the legacy default. An acked
	// write can be lost in the failover window.
	Async Level = iota
	// Quorum withholds the client reply until W replicas acknowledged the
	// write's replication offset.
	Quorum
	// All withholds the client reply until every currently attached
	// replica acknowledged it.
	All
)

func (l Level) String() string {
	switch l {
	case Quorum:
		return "quorum"
	case All:
		return "all"
	}
	return "async"
}

// ParseLevel resolves a level name (case-insensitive).
func ParseLevel(s string) (Level, bool) {
	switch strings.ToLower(s) {
	case "async":
		return Async, true
	case "quorum":
		return Quorum, true
	case "all":
		return All, true
	}
	return Async, false
}

// Waiter is one blocked WAIT: a client waiting for Need replicas to cover
// Target. Fire receives the satisfied replica count; Stop (optional) cancels
// the caller's timeout timer and runs exactly once, whether the waiter fires
// or is dropped with its client.
type Waiter struct {
	Target int64
	Need   int
	Owner  uint64
	Fire   func(acked int)
	Stop   func()
	done   bool
}

// Done reports whether the waiter has been retired (fired or dropped).
func (w *Waiter) Done() bool { return w.done }

// parkedWrite is a write reply withheld until Need replicas cover target.
type parkedWrite struct {
	target int64
	need   int
	owner  uint64
	fire   func()
	done   bool
}

// replica is one tracked replica: id is the remote endpoint name on the
// baseline (REPLCONF ACK path), empty in bulk mode (Nic-KV status frames
// carry offsets without identities).
type replica struct {
	id  string
	off int64
}

// AckTracker is the consistency plane's state for one master.
type AckTracker struct {
	replicas []replica
	bulk     bool

	clientOff map[uint64]int64

	waiters []*Waiter
	parked  []*parkedWrite

	// Instruments (nil-safe): the acked-offset watermark, the live parked
	// count, and lifetime park/release counters.
	minAck        *metrics.Gauge
	parkedGauge   *metrics.Gauge
	parkedTotal   *metrics.Counter
	releasedTotal *metrics.Counter
}

// NewTracker builds a tracker; reg may be nil (no instruments).
func NewTracker(reg *metrics.Registry) *AckTracker {
	t := &AckTracker{clientOff: make(map[uint64]int64)}
	if reg != nil {
		t.minAck = reg.Gauge("consistency.min_ack_offset")
		t.parkedGauge = reg.Gauge("consistency.parked_writes")
		t.parkedTotal = reg.Counter("consistency.writes_parked")
		t.releasedTotal = reg.Counter("consistency.writes_released")
	}
	return t
}

// ---- Replica progress ----

// UseBulkSource switches the tracker to bulk mode: the replica set arrives
// wholesale (SetAll from Nic-KV status frames) and carries no identities.
func (t *AckTracker) UseBulkSource() { t.bulk = true }

// BulkSource reports whether offsets come from a bulk source (SKV mode).
func (t *AckTracker) BulkSource() bool { return t.bulk }

// SetAll replaces the whole replica offset set (Nic-KV status frame) and
// fires whatever the new offsets satisfy.
func (t *AckTracker) SetAll(offs []int64) {
	if len(offs) == len(t.replicas) {
		for i, off := range offs {
			t.replicas[i].off = off
		}
	} else {
		t.replicas = t.replicas[:0]
		for _, off := range offs {
			t.replicas = append(t.replicas, replica{off: off})
		}
	}
	t.minAck.Set(t.MinAckOffset())
	t.Check()
}

// SetReplica registers (or re-registers) a replica at a starting offset —
// the PSYNC attach point. Registration alone fires nothing: the legacy
// machinery only re-evaluated waiters on progress reports, and a joining
// replica resolving a WAIT early would change the event schedule.
func (t *AckTracker) SetReplica(id string, off int64) {
	for i := range t.replicas {
		if t.replicas[i].id == id {
			t.replicas[i].off = off
			t.minAck.Set(t.MinAckOffset())
			return
		}
	}
	t.replicas = append(t.replicas, replica{id: id, off: off})
	t.minAck.Set(t.MinAckOffset())
}

// DropReplica forgets a replica (superseded or disconnected channel).
func (t *AckTracker) DropReplica(id string) {
	kept := t.replicas[:0]
	for _, r := range t.replicas {
		if r.id != id {
			kept = append(kept, r)
		}
	}
	t.replicas = kept
	t.minAck.Set(t.MinAckOffset())
}

// Ack records one replica's progress report (REPLCONF ACK) and fires
// whatever it satisfies.
func (t *AckTracker) Ack(id string, off int64) {
	for i := range t.replicas {
		if t.replicas[i].id == id {
			t.replicas[i].off = off
		}
	}
	t.minAck.Set(t.MinAckOffset())
	t.Check()
}

// Offsets reports every tracked replica's acknowledged offset, in
// registration order.
func (t *AckTracker) Offsets() []int64 {
	out := make([]int64, len(t.replicas))
	for i, r := range t.replicas {
		out[i] = r.off
	}
	return out
}

// Replicas reports replica identities and offsets in registration order
// (ids are empty strings in bulk mode).
func (t *AckTracker) Replicas() ([]string, []int64) {
	ids := make([]string, len(t.replicas))
	offs := make([]int64, len(t.replicas))
	for i, r := range t.replicas {
		ids[i] = r.id
		offs[i] = r.off
	}
	return ids, offs
}

// ReplicaCount reports how many replicas are tracked.
func (t *AckTracker) ReplicaCount() int { return len(t.replicas) }

// AckedAt counts replicas whose acknowledged offset covers target.
func (t *AckTracker) AckedAt(target int64) int {
	n := 0
	for _, r := range t.replicas {
		if r.off >= target {
			n++
		}
	}
	return n
}

// MinAckOffset is the acked-offset watermark: the highest offset every
// tracked replica has acknowledged (0 with no replicas).
func (t *AckTracker) MinAckOffset() int64 {
	if len(t.replicas) == 0 {
		return 0
	}
	min := t.replicas[0].off
	for _, r := range t.replicas[1:] {
		if r.off < min {
			min = r.off
		}
	}
	return min
}

// ---- Per-client write offsets ----

// NoteWrite records a client's propagated write ending at off. Max-assign:
// a client's writes to different shards can merge out of order.
func (t *AckTracker) NoteWrite(owner uint64, off int64) {
	if off > t.clientOff[owner] {
		t.clientOff[owner] = off
	}
}

// LastWrite reports the replication offset of the client's most recent
// propagated write (0 if it never wrote) — the WAIT target.
func (t *AckTracker) LastWrite(owner uint64) int64 { return t.clientOff[owner] }

// ---- Blocked WAITs ----

// Park blocks a WAIT. The caller has already checked the immediate path.
func (t *AckTracker) Park(w *Waiter) { t.waiters = append(t.waiters, w) }

// Waiting reports the blocked WAIT count (INFO blocked_clients).
func (t *AckTracker) Waiting() int { return len(t.waiters) }

// FinishNow fires a waiter with the current satisfied count regardless of
// whether it is covered — the WAIT timeout path. No-op once retired.
func (t *AckTracker) FinishNow(w *Waiter) {
	if w.done {
		return
	}
	t.retire(w, true)
	t.compactWaiters()
}

// ---- Parked write replies ----

// ParkWrite withholds a write reply until need replicas cover target (or a
// ReleaseUpTo watermark passes it). fire emits the reply.
func (t *AckTracker) ParkWrite(owner uint64, target int64, need int, fire func()) {
	t.parked = append(t.parked, &parkedWrite{target: target, need: need, owner: owner, fire: fire})
	t.parkedTotal.Inc()
	t.parkedGauge.Set(int64(len(t.parked)))
}

// Parked reports the live parked-write count.
func (t *AckTracker) Parked() int { return len(t.parked) }

// ReleaseUpTo fires every parked write whose target is covered by the
// watermark, regardless of its W — the authority (Nic-KV) has already
// verified the quorum. Replica offsets are untouched: the watermark says
// "these gates are satisfied", not which replicas satisfied them.
func (t *AckTracker) ReleaseUpTo(watermark int64) {
	fired := false
	for _, p := range t.parked {
		if !p.done && p.target <= watermark {
			p.done = true
			t.releasedTotal.Inc()
			p.fire()
			fired = true
		}
	}
	if fired {
		t.compactParked()
	}
}

// ---- Progress evaluation ----

// Check re-evaluates blocked WAITs and parked writes against the current
// replica offsets; called on every progress push and exported for layers
// that substituted their own offsets (legacy Server.CheckWaiters).
func (t *AckTracker) Check() {
	if len(t.waiters) > 0 {
		fired := false
		for _, w := range t.waiters {
			if !w.done && t.AckedAt(w.Target) >= w.Need {
				t.retire(w, true)
				fired = true
			}
		}
		if fired {
			t.compactWaiters()
		}
	}
	if len(t.parked) > 0 {
		fired := false
		for _, p := range t.parked {
			if !p.done && t.AckedAt(p.target) >= p.need {
				p.done = true
				t.releasedTotal.Inc()
				p.fire()
				fired = true
			}
		}
		if fired {
			t.compactParked()
		}
	}
}

// DropOwner forgets everything owned by a disconnecting client: its write
// offset, its blocked WAITs (timers cancelled, nothing fired — there is no
// connection left to reply to), and its parked write replies.
func (t *AckTracker) DropOwner(owner uint64) {
	delete(t.clientOff, owner)
	changed := false
	for _, w := range t.waiters {
		if !w.done && w.Owner == owner {
			t.retire(w, false)
			changed = true
		}
	}
	if changed {
		t.compactWaiters()
	}
	changed = false
	for _, p := range t.parked {
		if !p.done && p.owner == owner {
			p.done = true
			changed = true
		}
	}
	if changed {
		t.compactParked()
	}
}

// retire marks a waiter done, stops its timer, and optionally fires it.
func (t *AckTracker) retire(w *Waiter, fire bool) {
	w.done = true
	if w.Stop != nil {
		w.Stop()
		w.Stop = nil
	}
	if fire && w.Fire != nil {
		w.Fire(t.AckedAt(w.Target))
	}
}

func (t *AckTracker) compactWaiters() {
	kept := t.waiters[:0]
	for _, w := range t.waiters {
		if !w.done {
			kept = append(kept, w)
		}
	}
	for i := len(kept); i < len(t.waiters); i++ {
		t.waiters[i] = nil
	}
	t.waiters = kept
}

func (t *AckTracker) compactParked() {
	kept := t.parked[:0]
	for _, p := range t.parked {
		if !p.done {
			kept = append(kept, p)
		}
	}
	for i := len(kept); i < len(t.parked); i++ {
		t.parked[i] = nil
	}
	t.parked = kept
	t.parkedGauge.Set(int64(len(t.parked)))
}
