// Package rdma simulates the subset of the InfiniBand verbs API that SKV's
// communication module uses (paper §III-B): protection domains, memory
// regions, reliable-connected queue pairs, completion queues with event
// channels, and the SEND/RECV, RDMA WRITE, WRITE_WITH_IMM and RDMA READ
// operations, plus an RDMA_CM-style connection manager.
//
// Cost accounting follows the paper's performance argument:
//
//   - Posting a work request (ibv_post_send) consumes host CPU
//     (model.CPUPostWR) on the core driving the device. This is the cost the
//     SKV master eliminates by posting one WR per write instead of one per
//     slave.
//   - One-sided WRITE/READ consume no CPU at the passive side.
//   - Harvesting a completion costs model.CPUCompletion; consumers that
//     block on the completion event channel additionally pay a wakeup
//     (charged by their Proc, amortized under load — §III-B's
//     ibv_get_cq_event design).
//   - On-wire latency comes from the fabric path model plus sender/receiver
//     NIC processing, reproducing Fig 3.
package rdma

import (
	"fmt"

	"skv/internal/sim"
)

// Opcode identifies a verbs operation.
type Opcode int

// Supported verbs operations.
const (
	OpSend Opcode = iota
	OpRecv
	OpWrite
	OpWriteImm
	OpRead
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpRecv:
		return "RECV"
	case OpWrite:
		return "WRITE"
	case OpWriteImm:
		return "WRITE_WITH_IMM"
	case OpRead:
		return "READ"
	}
	return fmt.Sprintf("Opcode(%d)", int(o))
}

// Status is the completion status of a work request.
type Status int

// Completion statuses.
const (
	StatusSuccess Status = iota
	StatusRemoteAccessErr
	StatusFlushed // QP destroyed with the WR outstanding
)

// WC is a work completion (ibv_wc).
type WC struct {
	WRID     uint64
	Op       Opcode
	Status   Status
	Imm      uint32
	ImmValid bool
	ByteLen  int
	// Data is the received payload for RECV completions of SENDs, or the
	// fetched payload for READ completions.
	Data []byte
	// QPN identifies the local QP the completion belongs to.
	QPN uint32
}

// CQ is a completion queue with an optional event channel. RequestNotify
// arms a one-shot notification (ibv_req_notify_cq); when a completion
// arrives while armed, the notify callback fires once and the CQ disarms,
// matching the ack-and-rearm discipline the paper describes.
type CQ struct {
	dev    *Device
	items  []WC
	armed  bool
	notify func()

	// Completions counts all CQEs ever pushed (for tests).
	Completions uint64
}

// OnNotify installs the event-channel callback.
func (cq *CQ) OnNotify(fn func()) { cq.notify = fn }

// RequestNotify arms the completion event channel. If completions are
// already pending, the notification fires immediately (edge-triggered verbs
// semantics require the consumer to poll after arming; firing immediately
// models that race being handled).
func (cq *CQ) RequestNotify() {
	cq.armed = true
	if len(cq.items) > 0 {
		cq.fire()
	}
}

func (cq *CQ) fire() {
	if cq.armed && cq.notify != nil {
		cq.armed = false
		if cq.dev != nil {
			cq.dev.m.cqWakeups.Inc()
		}
		cq.notify()
	}
}

func (cq *CQ) push(wc WC) {
	cq.items = append(cq.items, wc)
	cq.Completions++
	if cq.dev != nil {
		cq.dev.m.cqCompletions.Inc()
	}
	cq.fire()
}

// Poll drains up to max completions (max <= 0 means all). The caller is
// responsible for charging model.CPUCompletion per harvested CQE on its
// core; helper ChargePoll does both.
func (cq *CQ) Poll(max int) []WC {
	if max <= 0 || max >= len(cq.items) {
		out := cq.items
		cq.items = nil
		return out
	}
	out := cq.items[:max]
	cq.items = append([]WC(nil), cq.items[max:]...)
	return out
}

// ChargePoll polls all pending completions and charges the completion
// harvesting cost on the given core.
func (cq *CQ) ChargePoll(core *sim.Core) []WC {
	out := cq.Poll(0)
	if n := len(out); n > 0 && core != nil {
		core.Charge(sim.Duration(n) * cq.dev.net.Params().CPUCompletion)
	}
	return out
}

// Pending reports the number of unharvested completions.
func (cq *CQ) Pending() int { return len(cq.items) }

// PD is a protection domain.
type PD struct {
	dev *Device
}

// MR is a registered memory region backed by real bytes, addressed remotely
// by its RKey.
type MR struct {
	pd    *PD
	buf   []byte
	rkey  uint32
	dereg bool
}

// RKey is the remote access key.
func (mr *MR) RKey() uint32 { return mr.rkey }

// Len reports the region size.
func (mr *MR) Len() int { return len(mr.buf) }

// Bytes exposes the underlying memory (the receive side reads messages out
// of it, exactly as a verbs application reads its registered buffer).
func (mr *MR) Bytes() []byte { return mr.buf }

// Deregister invalidates the region; subsequent remote writes fail with
// StatusRemoteAccessErr.
func (mr *MR) Deregister() {
	mr.dereg = true
	delete(mr.pd.dev.mrs, mr.rkey)
}

// RegisterMR allocates and registers a region of the given size.
func (pd *PD) RegisterMR(size int) *MR {
	dev := pd.dev
	dev.nextRKey++
	mr := &MR{pd: pd, buf: make([]byte, size), rkey: dev.nextRKey}
	dev.mrs[mr.rkey] = mr
	return mr
}

// SendWR is a send-queue work request.
type SendWR struct {
	WRID uint64
	Op   Opcode // OpSend, OpWrite, OpWriteImm, OpRead
	Data []byte // payload for SEND/WRITE*; nil for READ
	// RemoteKey/RemoteOff address the peer MR for WRITE*/READ.
	RemoteKey uint32
	RemoteOff int
	// Len is the number of bytes to fetch for READ.
	Len int
	Imm uint32
	// Signaled requests a completion on the sender's CQ (unsignaled WRs
	// complete silently, like IBV_SEND_SIGNALED omitted).
	Signaled bool
}

// RecvWR is a receive-queue work request. For SENDs the payload is copied
// into the completion; for WRITE_WITH_IMM the recv is consumed purely to
// deliver the notification.
type RecvWR struct {
	WRID uint64
}

// packet is the fabric payload exchanged between devices.
type packet struct {
	kind   pktKind
	srcQPN uint32
	dstQPN uint32
	op     Opcode
	data   []byte
	rkey   uint32
	roff   int
	rlen   int
	imm    uint32
	immSet bool
	wrID   uint64
	sig    bool
	port   int
	status Status
}

type pktKind int

const (
	pktOp pktKind = iota
	pktAck
	pktReadResp
	pktConnReq
	pktConnAcc
	pktConnRej
)
