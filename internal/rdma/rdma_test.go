package rdma

import (
	"bytes"
	"testing"

	"skv/internal/fabric"
	"skv/internal/model"
	"skv/internal/sim"
)

type world struct {
	eng *sim.Engine
	net *fabric.Network
	p   *model.Params
}

func newWorld() *world {
	eng := sim.New(7)
	p := model.Default()
	return &world{eng: eng, net: fabric.New(eng, &p), p: &p}
}

// connectPair builds two machines with devices and returns a connected QP
// pair (client side, server side).
func connectPair(t *testing.T, w *world) (*QP, *QP, *Device, *Device) {
	t.Helper()
	ma := w.net.NewMachine("a", false)
	mb := w.net.NewMachine("b", false)
	ca := sim.NewCore(w.eng, "a0", 1.0)
	cb := sim.NewCore(w.eng, "b0", 1.0)
	da := NewDevice(w.net, ma.Host, ca)
	db := NewDevice(w.net, mb.Host, cb)

	var clientQP, serverQP *QP
	db.Listen(9000, func(qp *QP) { serverQP = qp })
	w.eng.At(0, func() {
		da.Connect(mb.Host, 9000, nil, nil, func(qp *QP, err error) {
			if err != nil {
				t.Errorf("connect failed: %v", err)
				return
			}
			clientQP = qp
		})
	})
	w.eng.Run(0)
	if clientQP == nil || serverQP == nil {
		t.Fatal("CM handshake did not complete")
	}
	return clientQP, serverQP, da, db
}

func TestCMConnect(t *testing.T) {
	w := newWorld()
	cq, sq, _, _ := connectPair(t, w)
	if cq.RemoteEndpoint().Name() != "b/host" || sq.RemoteEndpoint().Name() != "a/host" {
		t.Fatal("QP peers wired wrong")
	}
}

func TestCMConnectRefused(t *testing.T) {
	w := newWorld()
	ma := w.net.NewMachine("a", false)
	mb := w.net.NewMachine("b", false)
	da := NewDevice(w.net, ma.Host, sim.NewCore(w.eng, "a0", 1.0))
	NewDevice(w.net, mb.Host, sim.NewCore(w.eng, "b0", 1.0))
	var gotErr error
	called := false
	w.eng.At(0, func() {
		da.Connect(mb.Host, 1234, nil, nil, func(qp *QP, err error) {
			called = true
			gotErr = err
		})
	})
	w.eng.Run(0)
	if !called || gotErr == nil {
		t.Fatalf("expected refusal, called=%v err=%v", called, gotErr)
	}
}

func TestSendRecv(t *testing.T) {
	w := newWorld()
	cq, sq, _, _ := connectPair(t, w)
	var got []byte
	sq.RecvCQ.OnNotify(func() {
		for _, wc := range sq.RecvCQ.Poll(0) {
			if wc.Op == OpRecv && wc.Status == StatusSuccess {
				got = wc.Data
			}
		}
	})
	sq.RecvCQ.RequestNotify()
	w.eng.After(100, func() {
		sq.PostRecv(RecvWR{WRID: 1})
		if err := cq.PostSend(SendWR{WRID: 2, Op: OpSend, Data: []byte("hello"), Signaled: true}); err != nil {
			t.Errorf("PostSend: %v", err)
		}
	})
	w.eng.Run(0)
	if !bytes.Equal(got, []byte("hello")) {
		t.Fatalf("recv data = %q", got)
	}
}

func TestWriteIntoRemoteMR(t *testing.T) {
	w := newWorld()
	cq, sq, _, db := connectPair(t, w)
	pd := db.AllocPD()
	mr := pd.RegisterMR(1024)

	var senderWC *WC
	cq.SendCQ.OnNotify(func() {
		for _, wc := range cq.SendCQ.Poll(0) {
			wc := wc
			senderWC = &wc
		}
	})
	cq.SendCQ.RequestNotify()

	w.eng.After(0, func() {
		err := cq.PostSend(SendWR{
			WRID: 7, Op: OpWrite, Data: []byte("payload"),
			RemoteKey: mr.RKey(), RemoteOff: 100, Signaled: true,
		})
		if err != nil {
			t.Errorf("PostSend: %v", err)
		}
	})
	w.eng.Run(0)

	if !bytes.Equal(mr.Bytes()[100:107], []byte("payload")) {
		t.Fatal("WRITE did not land in remote MR")
	}
	if senderWC == nil || senderWC.WRID != 7 || senderWC.Status != StatusSuccess {
		t.Fatalf("sender completion missing/wrong: %+v", senderWC)
	}
	// One-sided: the passive side must not get a recv completion.
	if sq.RecvCQ.Pending() != 0 {
		t.Fatal("plain WRITE generated a remote completion")
	}
}

func TestWriteWithImmNotifiesReceiver(t *testing.T) {
	w := newWorld()
	cq, sq, _, db := connectPair(t, w)
	mr := db.AllocPD().RegisterMR(1024)

	var imm uint32
	var byteLen int
	sq.RecvCQ.OnNotify(func() {
		for _, wc := range sq.RecvCQ.Poll(0) {
			if wc.ImmValid {
				imm = wc.Imm
				byteLen = wc.ByteLen
			}
		}
	})
	sq.RecvCQ.RequestNotify()

	w.eng.After(0, func() {
		sq.PostRecv(RecvWR{WRID: 1})
		err := cq.PostSend(SendWR{
			WRID: 9, Op: OpWriteImm, Data: []byte("abcdef"),
			RemoteKey: mr.RKey(), RemoteOff: 0, Imm: 6, Signaled: false,
		})
		if err != nil {
			t.Errorf("PostSend: %v", err)
		}
	})
	w.eng.Run(0)
	if imm != 6 || byteLen != 6 {
		t.Fatalf("imm=%d byteLen=%d, want 6/6", imm, byteLen)
	}
	if !bytes.Equal(mr.Bytes()[:6], []byte("abcdef")) {
		t.Fatal("WRITE_WITH_IMM payload missing from MR")
	}
}

func TestWriteImmWithoutRecvIsStashedUntilPostRecv(t *testing.T) {
	w := newWorld()
	cq, sq, _, db := connectPair(t, w)
	mr := db.AllocPD().RegisterMR(64)

	got := 0
	sq.RecvCQ.OnNotify(func() {
		got += len(sq.RecvCQ.Poll(0))
		sq.RecvCQ.RequestNotify()
	})
	sq.RecvCQ.RequestNotify()

	w.eng.After(0, func() {
		_ = cq.PostSend(SendWR{Op: OpWriteImm, Data: []byte("x"), RemoteKey: mr.RKey(), Imm: 1})
	})
	w.eng.After(1_000_000, func() {
		if got != 0 {
			t.Error("completion delivered without a posted recv")
		}
		sq.PostRecv(RecvWR{WRID: 5})
	})
	w.eng.Run(0)
	if got != 1 {
		t.Fatalf("got %d completions after PostRecv, want 1 (RNR retry)", got)
	}
}

func TestWriteOutOfBoundsFailsRemoteAccess(t *testing.T) {
	w := newWorld()
	cq, _, _, db := connectPair(t, w)
	mr := db.AllocPD().RegisterMR(16)

	var st Status = -1
	cq.SendCQ.OnNotify(func() {
		for _, wc := range cq.SendCQ.Poll(0) {
			st = wc.Status
		}
	})
	cq.SendCQ.RequestNotify()
	w.eng.After(0, func() {
		_ = cq.PostSend(SendWR{Op: OpWrite, Data: make([]byte, 32), RemoteKey: mr.RKey(), RemoteOff: 0, Signaled: true})
	})
	w.eng.Run(0)
	if st != StatusRemoteAccessErr {
		t.Fatalf("status = %v, want RemoteAccessErr", st)
	}
}

func TestWriteToDeregisteredMRFails(t *testing.T) {
	w := newWorld()
	cq, _, _, db := connectPair(t, w)
	mr := db.AllocPD().RegisterMR(64)
	mr.Deregister()

	var st Status = -1
	cq.SendCQ.OnNotify(func() {
		for _, wc := range cq.SendCQ.Poll(0) {
			st = wc.Status
		}
	})
	cq.SendCQ.RequestNotify()
	w.eng.After(0, func() {
		_ = cq.PostSend(SendWR{Op: OpWrite, Data: []byte("x"), RemoteKey: mr.RKey(), Signaled: true})
	})
	w.eng.Run(0)
	if st != StatusRemoteAccessErr {
		t.Fatalf("status = %v, want RemoteAccessErr after Deregister", st)
	}
}

func TestRDMARead(t *testing.T) {
	w := newWorld()
	cq, _, _, db := connectPair(t, w)
	mr := db.AllocPD().RegisterMR(64)
	copy(mr.Bytes()[8:], []byte("remote-data"))

	var data []byte
	cq.SendCQ.OnNotify(func() {
		for _, wc := range cq.SendCQ.Poll(0) {
			if wc.Op == OpRead && wc.Status == StatusSuccess {
				data = wc.Data
			}
		}
	})
	cq.SendCQ.RequestNotify()
	w.eng.After(0, func() {
		_ = cq.PostSend(SendWR{WRID: 3, Op: OpRead, RemoteKey: mr.RKey(), RemoteOff: 8, Len: 11})
	})
	w.eng.Run(0)
	if string(data) != "remote-data" {
		t.Fatalf("READ returned %q", data)
	}
}

func TestPostSendChargesCPU(t *testing.T) {
	w := newWorld()
	cq, _, da, _ := connectPair(t, w)
	before := da.Core().BusyTime()
	w.eng.After(0, func() {
		for i := 0; i < 10; i++ {
			_ = cq.PostSend(SendWR{Op: OpSend, Data: []byte("x")})
		}
	})
	// No recv posted on the peer; we only care about sender CPU accounting.
	w.eng.Run(0)
	got := da.Core().BusyTime() - before
	want := 10 * w.p.CPUPostWR
	if got != want {
		t.Fatalf("10 posts consumed %v CPU, want %v", got, want)
	}
}

func TestOneSidedWriteConsumesNoRemoteCPU(t *testing.T) {
	w := newWorld()
	cq, _, _, db := connectPair(t, w)
	mr := db.AllocPD().RegisterMR(1 << 20)
	before := db.Core().BusyTime()
	w.eng.After(0, func() {
		for i := 0; i < 100; i++ {
			_ = cq.PostSend(SendWR{Op: OpWrite, Data: make([]byte, 4096), RemoteKey: mr.RKey(), RemoteOff: i * 4096})
		}
	})
	w.eng.Run(0)
	if got := db.Core().BusyTime() - before; got != 0 {
		t.Fatalf("passive side consumed %v CPU on one-sided writes", got)
	}
}

func TestCQNotifyEdgeTriggered(t *testing.T) {
	w := newWorld()
	cq, sq, _, _ := connectPair(t, w)
	notifies := 0
	sq.RecvCQ.OnNotify(func() { notifies++ }) // never re-arms
	sq.RecvCQ.RequestNotify()
	w.eng.After(0, func() {
		sq.PostRecvN(1, 8)
		for i := 0; i < 5; i++ {
			_ = cq.PostSend(SendWR{Op: OpSend, Data: []byte("m")})
		}
	})
	w.eng.Run(0)
	if notifies != 1 {
		t.Fatalf("notify fired %d times without re-arm, want 1", notifies)
	}
	if sq.RecvCQ.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", sq.RecvCQ.Pending())
	}
}

func TestCQRequestNotifyFiresImmediatelyWhenPending(t *testing.T) {
	w := newWorld()
	cq, sq, _, _ := connectPair(t, w)
	fired := false
	w.eng.After(0, func() {
		sq.PostRecv(RecvWR{})
		_ = cq.PostSend(SendWR{Op: OpSend, Data: []byte("m")})
	})
	w.eng.Run(0)
	sq.RecvCQ.OnNotify(func() { fired = true })
	sq.RecvCQ.RequestNotify()
	if !fired {
		t.Fatal("RequestNotify with pending completions did not fire")
	}
}

func TestClosedQPRejectsPost(t *testing.T) {
	w := newWorld()
	cq, _, _, _ := connectPair(t, w)
	cq.Close()
	if err := cq.PostSend(SendWR{Op: OpSend}); err == nil {
		t.Fatal("PostSend on closed QP succeeded")
	}
	if !cq.Closed() {
		t.Fatal("Closed() = false")
	}
}

func TestWriteLatencyMatchesFig3Scale(t *testing.T) {
	// Small WRITE host→host should land in the low single-digit µs,
	// consistent with the paper's Fig 3.
	w := newWorld()
	cq, _, _, db := connectPair(t, w)
	mr := db.AllocPD().RegisterMR(64)
	var landed sim.Time
	var start sim.Time
	w.eng.After(1_000_000, func() {
		start = w.eng.Now()
		_ = cq.PostSend(SendWR{Op: OpWrite, Data: make([]byte, 8), RemoteKey: mr.RKey(), Signaled: true})
	})
	cq.SendCQ.OnNotify(func() {
		cq.SendCQ.Poll(0)
		landed = w.eng.Now()
	})
	cq.SendCQ.RequestNotify()
	w.eng.Run(0)
	rt := landed.Sub(start)
	if rt < 1*sim.Microsecond || rt > 8*sim.Microsecond {
		t.Fatalf("8B WRITE completion after %v, want a few µs", rt)
	}
}

func TestPollMaxLimitsBatch(t *testing.T) {
	w := newWorld()
	cq, sq, _, _ := connectPair(t, w)
	w.eng.After(0, func() {
		sq.PostRecvN(0, 10)
		for i := 0; i < 10; i++ {
			_ = cq.PostSend(SendWR{Op: OpSend, Data: []byte("m")})
		}
	})
	w.eng.Run(0)
	if got := len(sq.RecvCQ.Poll(4)); got != 4 {
		t.Fatalf("Poll(4) returned %d", got)
	}
	if got := len(sq.RecvCQ.Poll(0)); got != 6 {
		t.Fatalf("Poll(0) after partial drain returned %d", got)
	}
}
