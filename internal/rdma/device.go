package rdma

import (
	"fmt"

	"skv/internal/fabric"
	"skv/internal/metrics"
	"skv/internal/sim"
)

// Device is the RDMA-capable NIC function attached to one fabric endpoint.
// The core given at construction is the CPU that drives the device's verbs
// calls (posting work requests consumes its cycles); completions and
// incoming one-sided operations consume no CPU until harvested.
type Device struct {
	net  *fabric.Network
	ep   *fabric.Endpoint
	core *sim.Core

	qps       map[uint32]*QP
	mrs       map[uint32]*MR
	listeners map[int]func(*QP)

	nextQPN  uint32
	nextRKey uint32
	nextReq  uint64
	pending  map[uint64]func(*QP, error) // in-flight Connect callbacks

	// m holds the device's resolved metrics instruments; all fields are
	// nil-safe no-ops until SetMetrics installs a registry.
	m devMetrics
}

// devMetrics is the verbs-level instrument set: work requests posted per
// verb, completions pushed, and completion-channel wakeups fired.
type devMetrics struct {
	wrSend     *metrics.Counter
	wrWrite    *metrics.Counter
	wrWriteImm *metrics.Counter
	wrRead     *metrics.Counter
	wrRecv     *metrics.Counter

	cqCompletions *metrics.Counter
	cqWakeups     *metrics.Counter
}

// SetMetrics wires the device's instruments into the given registry
// (normally the owning node's).
func (d *Device) SetMetrics(reg *metrics.Registry) {
	d.m = devMetrics{
		wrSend:        reg.Counter("rdma.wr.send"),
		wrWrite:       reg.Counter("rdma.wr.write"),
		wrWriteImm:    reg.Counter("rdma.wr.write_imm"),
		wrRead:        reg.Counter("rdma.wr.read"),
		wrRecv:        reg.Counter("rdma.wr.recv"),
		cqCompletions: reg.Counter("rdma.cq.completions"),
		cqWakeups:     reg.Counter("rdma.cq.wakeups"),
	}
}

// NewDevice opens a device on the endpoint, driven by the given core.
func NewDevice(net *fabric.Network, ep *fabric.Endpoint, core *sim.Core) *Device {
	d := &Device{
		net:       net,
		ep:        ep,
		core:      core,
		qps:       make(map[uint32]*QP),
		mrs:       make(map[uint32]*MR),
		listeners: make(map[int]func(*QP)),
		pending:   make(map[uint64]func(*QP, error)),
	}
	ep.Handle(d.recv)
	ep.OnSendOutcome(d.sendOutcome)
	return d
}

// sendOutcome observes the fate of every packet this device pushed onto the
// fabric. A streak of unacked sends (partition, down peer) spanning the
// RC retry window transitions the QP to the error state, exactly what
// retry-exhaustion does to a real reliable-connected QP.
func (d *Device) sendOutcome(m fabric.Message, acked bool) {
	p, ok := m.Payload.(packet)
	if !ok {
		return
	}
	qp := d.qps[p.srcQPN]
	if qp == nil || qp.closed {
		return
	}
	if acked {
		qp.unackedSince = -1
		return
	}
	now := d.net.Engine().Now()
	if qp.unackedSince < 0 {
		qp.unackedSince = now
		return
	}
	if now.Sub(qp.unackedSince) >= d.net.Params().RCRetryTimeout {
		qp.fail()
	}
}

// Endpoint reports the fabric endpoint the device is attached to.
func (d *Device) Endpoint() *fabric.Endpoint { return d.ep }

// Core reports the CPU core charged for verbs calls on this device.
func (d *Device) Core() *sim.Core { return d.core }

// AllocPD allocates a protection domain.
func (d *Device) AllocPD() *PD { return &PD{dev: d} }

// NewCQ creates a completion queue.
func (d *Device) NewCQ() *CQ { return &CQ{dev: d} }

// QP is a reliable-connected queue pair.
type QP struct {
	dev     *Device
	qpn     uint32
	peerEP  *fabric.Endpoint
	peerQPN uint32

	SendCQ *CQ
	RecvCQ *CQ

	recvQueue []RecvWR
	// stash holds arrived SEND/WRITE_WITH_IMM packets that found no posted
	// receive (receiver-not-ready); they complete when a recv is posted,
	// modelling RNR retry.
	stash  []packet
	closed bool

	// Context lets the application attach per-connection state (the client
	// object in Redis terms).
	Context any

	// sendCore, when non-nil, overrides the device core for PostSend cost
	// accounting — the thread that drives this QP's send queue (Nic-KV's
	// multi-threaded replication pins QPs to ARM cores).
	sendCore *sim.Core
	// recvCore, when non-nil, overrides the device core for receive-WR post
	// cost accounting — the thread that refills this QP's receive ring (the
	// sharded server's routing plane pins client QPs to routing cores).
	recvCore *sim.Core

	// PostedSends counts PostSend calls (CPU-accounting assertions in
	// tests and the WR-count ablation read this).
	PostedSends uint64

	// unackedSince is when the current streak of unacked sends began
	// (-1 when the last send was acked). Maintained by Device.sendOutcome.
	unackedSince sim.Time
	// onFail is invoked once when retry exhaustion fails the QP.
	onFail func()
	// Failed reports that the QP died of retry exhaustion.
	Failed bool
}

// OnFail registers fn to run when the QP transitions to the error state
// (retry exhaustion on a dead link). The QP is already closed when fn runs.
func (qp *QP) OnFail(fn func()) { qp.onFail = fn }

// fail moves the QP to the error state: close it and notify the owner.
func (qp *QP) fail() {
	if qp.closed {
		return
	}
	qp.Failed = true
	fn := qp.onFail
	qp.Close()
	if fn != nil {
		fn()
	}
}

// QPN reports the queue pair number.
func (qp *QP) QPN() uint32 { return qp.qpn }

// RemoteEndpoint reports the peer's fabric endpoint.
func (qp *QP) RemoteEndpoint() *fabric.Endpoint { return qp.peerEP }

// Closed reports whether Close was called.
func (qp *QP) Closed() bool { return qp.closed }

func (d *Device) newQP(sendCQ, recvCQ *CQ) *QP {
	d.nextQPN++
	qp := &QP{dev: d, qpn: d.nextQPN, SendCQ: sendCQ, RecvCQ: recvCQ, unackedSince: -1}
	d.qps[qp.qpn] = qp
	return qp
}

// Listen registers an accept handler for CM connection requests on port.
// The accept callback receives the fully connected QP.
func (d *Device) Listen(port int, accept func(*QP)) {
	if _, dup := d.listeners[port]; dup {
		panic(fmt.Sprintf("rdma: %s already listening on %d", d.ep.Name(), port))
	}
	d.listeners[port] = accept
}

// Connect initiates an RDMA_CM connection to a listener. cb runs when the
// handshake completes (or fails because nothing listens / peer is down —
// the latter surfaces as no callback at all, like a CM timeout, unless
// the caller arranges its own timer).
//
// The new QP uses freshly created send/recv CQs unless the caller passes
// non-nil ones.
func (d *Device) Connect(peer *fabric.Endpoint, port int, sendCQ, recvCQ *CQ, cb func(*QP, error)) {
	if sendCQ == nil {
		sendCQ = d.NewCQ()
	}
	if recvCQ == nil {
		recvCQ = d.NewCQ()
	}
	qp := d.newQP(sendCQ, recvCQ)
	qp.peerEP = peer
	d.nextReq++
	id := d.nextReq
	d.pending[id] = func(q *QP, err error) { cb(q, err) }
	d.send(peer, 64, packet{kind: pktConnReq, srcQPN: qp.qpn, port: port, wrID: id})
}

// send pushes a packet onto the fabric with RDMA NIC processing latency.
func (d *Device) send(dst *fabric.Endpoint, size int, p packet) {
	params := d.net.Params()
	extra := params.RDMASenderProc + params.RDMAReceiverProc
	d.net.Send(d.ep, dst, size, p, extra)
}

// recv handles a fabric delivery. This is NIC hardware processing: it never
// charges host CPU.
func (d *Device) recv(m fabric.Message) {
	p, ok := m.Payload.(packet)
	if !ok {
		return
	}
	switch p.kind {
	case pktConnReq:
		accept, listening := d.listeners[p.port]
		if !listening {
			d.send(m.Src, 64, packet{kind: pktConnRej, dstQPN: p.srcQPN, wrID: p.wrID})
			return
		}
		qp := d.newQP(d.NewCQ(), d.NewCQ())
		qp.peerEP = m.Src
		qp.peerQPN = p.srcQPN
		d.send(m.Src, 64, packet{kind: pktConnAcc, dstQPN: p.srcQPN, srcQPN: qp.qpn, wrID: p.wrID})
		accept(qp)
	case pktConnAcc:
		qp := d.qps[p.dstQPN]
		cb := d.pending[p.wrID]
		delete(d.pending, p.wrID)
		if qp == nil || cb == nil {
			return
		}
		qp.peerQPN = p.srcQPN
		cb(qp, nil)
	case pktConnRej:
		cb := d.pending[p.wrID]
		delete(d.pending, p.wrID)
		delete(d.qps, p.dstQPN)
		if cb != nil {
			cb(nil, fmt.Errorf("rdma: connection to %s refused", m.Src.Name()))
		}
	case pktOp:
		d.recvOp(m.Src, p)
	case pktAck:
		qp := d.qps[p.dstQPN]
		if qp == nil {
			return
		}
		qp.SendCQ.push(WC{WRID: p.wrID, Op: p.op, Status: p.status, QPN: qp.qpn})
	case pktReadResp:
		qp := d.qps[p.dstQPN]
		if qp == nil {
			return
		}
		qp.SendCQ.push(WC{WRID: p.wrID, Op: OpRead, Status: p.status, ByteLen: len(p.data), Data: p.data, QPN: qp.qpn})
	}
}

func (d *Device) recvOp(src *fabric.Endpoint, p packet) {
	qp := d.qps[p.dstQPN]
	if qp == nil || qp.closed {
		return // stale packet to a destroyed QP
	}
	switch p.op {
	case OpWrite, OpWriteImm:
		status := StatusSuccess
		mr := d.mrs[p.rkey]
		if mr == nil || mr.dereg || p.roff < 0 || p.roff+len(p.data) > len(mr.buf) {
			status = StatusRemoteAccessErr
		} else {
			copy(mr.buf[p.roff:], p.data)
		}
		if status == StatusSuccess && p.op == OpWriteImm {
			qp.consumeRecv(p)
		}
		if p.sig {
			d.send(src, 16, packet{kind: pktAck, dstQPN: p.srcQPN, wrID: p.wrID, op: p.op, status: status})
		}
	case OpSend:
		qp.consumeRecv(p)
		if p.sig {
			d.send(src, 16, packet{kind: pktAck, dstQPN: p.srcQPN, wrID: p.wrID, op: OpSend, status: StatusSuccess})
		}
	case OpRead:
		mr := d.mrs[p.rkey]
		status := StatusSuccess
		var data []byte
		if mr == nil || mr.dereg || p.roff < 0 || p.roff+p.rlen > len(mr.buf) {
			status = StatusRemoteAccessErr
		} else {
			data = append([]byte(nil), mr.buf[p.roff:p.roff+p.rlen]...)
		}
		d.send(src, len(data)+16, packet{kind: pktReadResp, dstQPN: p.srcQPN, wrID: p.wrID, data: data, status: status})
	}
}

// consumeRecv matches an inbound SEND/WRITE_WITH_IMM against a posted recv,
// or stashes it until one is posted (RNR retry semantics).
func (qp *QP) consumeRecv(p packet) {
	if len(qp.recvQueue) == 0 {
		qp.stash = append(qp.stash, p)
		return
	}
	rw := qp.recvQueue[0]
	qp.recvQueue = qp.recvQueue[1:]
	wc := WC{
		WRID:    rw.WRID,
		Op:      OpRecv,
		Status:  StatusSuccess,
		ByteLen: len(p.data),
		QPN:     qp.qpn,
	}
	if p.op == OpSend {
		wc.Data = p.data
	}
	if p.immSet {
		wc.Imm = p.imm
		wc.ImmValid = true
	}
	qp.RecvCQ.push(wc)
}

// PostRecv posts a receive work request. Charges CPUPostWR on the device's
// driving core.
func (qp *QP) PostRecv(wr RecvWR) {
	qp.chargePost()
	qp.dev.m.wrRecv.Inc()
	qp.recvQueue = append(qp.recvQueue, wr)
	if len(qp.stash) > 0 {
		p := qp.stash[0]
		qp.stash = qp.stash[1:]
		qp.consumeRecv(p)
	}
}

// PostRecvN posts n receives with sequential WRIDs starting at base,
// charging a single doorbell's worth of CPU (batched post, as real
// applications do when refilling the receive ring).
func (qp *QP) PostRecvN(base uint64, n int) {
	qp.chargePost()
	qp.dev.m.wrRecv.Add(uint64(n))
	for i := 0; i < n; i++ {
		qp.recvQueue = append(qp.recvQueue, RecvWR{WRID: base + uint64(i)})
	}
	for len(qp.stash) > 0 && len(qp.recvQueue) > 0 {
		p := qp.stash[0]
		qp.stash = qp.stash[1:]
		qp.consumeRecv(p)
	}
}

// SetSendCore pins the QP's send-side CPU accounting to a specific core.
func (qp *QP) SetSendCore(c *sim.Core) { qp.sendCore = c }

// SetRecvCore pins the QP's receive-WR post accounting to a specific core.
func (qp *QP) SetRecvCore(c *sim.Core) { qp.recvCore = c }

// postCore is the core charged for send-queue posts.
func (qp *QP) postCore() *sim.Core {
	if qp.sendCore != nil {
		return qp.sendCore
	}
	return qp.dev.core
}

func (qp *QP) chargePost() {
	core := qp.dev.core
	if qp.recvCore != nil {
		core = qp.recvCore
	}
	if core != nil {
		core.Charge(qp.dev.net.Params().CPUPostWR)
	}
}

// PostSend posts a send-queue work request (SEND, WRITE, WRITE_WITH_IMM or
// READ). Charges CPUPostWR on the driving core; the payload departs at the
// core's current completion point, so CPU queueing delays the wire exactly
// as a real doorbell written at the end of a busy handler would be.
func (qp *QP) PostSend(wr SendWR) error {
	if qp.closed {
		return fmt.Errorf("rdma: post on closed QP %d", qp.qpn)
	}
	if qp.peerEP == nil {
		return fmt.Errorf("rdma: QP %d not connected", qp.qpn)
	}
	qp.PostedSends++
	switch wr.Op {
	case OpSend:
		qp.dev.m.wrSend.Inc()
	case OpWrite:
		qp.dev.m.wrWrite.Inc()
	case OpWriteImm:
		qp.dev.m.wrWriteImm.Inc()
	case OpRead:
		qp.dev.m.wrRead.Inc()
	}
	if pc := qp.postCore(); pc != nil {
		pc.Charge(qp.dev.net.Params().CPUPostWR)
	}
	d := qp.dev
	p := packet{
		kind:   pktOp,
		srcQPN: qp.qpn,
		dstQPN: qp.peerQPN,
		op:     wr.Op,
		rkey:   wr.RemoteKey,
		roff:   wr.RemoteOff,
		rlen:   wr.Len,
		wrID:   wr.WRID,
		sig:    wr.Signaled,
	}
	size := 16
	if wr.Op != OpRead {
		p.data = append([]byte(nil), wr.Data...)
		size += len(wr.Data)
	}
	if wr.Op == OpWriteImm {
		p.imm = wr.Imm
		p.immSet = true
	}
	// The message leaves the NIC once the CPU has finished the work it is
	// currently charged with (the doorbell rings at the end of the handler).
	var depart sim.Duration
	if pc := qp.postCore(); pc != nil {
		depart = pc.BusyUntil().Sub(d.net.Engine().Now())
		if depart < 0 {
			depart = 0
		}
	}
	params := d.net.Params()
	extra := depart + params.RDMASenderProc + params.RDMAReceiverProc
	d.net.Send(d.ep, qp.peerEP, size, p, extra)
	return nil
}

// Close destroys the QP. Outstanding stashed packets are dropped.
func (qp *QP) Close() {
	if qp.closed {
		return
	}
	qp.closed = true
	delete(qp.dev.qps, qp.qpn)
	qp.stash = nil
	qp.recvQueue = nil
}
