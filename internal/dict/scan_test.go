package dict

import (
	"fmt"
	"testing"
)

// fullScan drives Scan until it wraps, collecting visited keys.
func fullScan(d *Dict, hook func()) map[string]int {
	seen := map[string]int{}
	cursor := uint64(0)
	for i := 0; ; i++ {
		cursor = d.Scan(cursor, func(k string, _ any) { seen[k]++ })
		if hook != nil {
			hook()
		}
		if cursor == 0 || i > 1<<20 {
			break
		}
	}
	return seen
}

func TestScanVisitsEverything(t *testing.T) {
	d := New(1)
	for i := 0; i < 1000; i++ {
		d.Set(fmt.Sprintf("key:%d", i), i)
	}
	seen := fullScan(d, nil)
	for i := 0; i < 1000; i++ {
		if seen[fmt.Sprintf("key:%d", i)] == 0 {
			t.Fatalf("key:%d never visited", i)
		}
	}
}

func TestScanEmptyDict(t *testing.T) {
	d := New(1)
	if c := d.Scan(0, func(string, any) { t.Fatal("callback on empty dict") }); c != 0 {
		t.Fatalf("cursor=%d on empty dict", c)
	}
}

func TestScanDuringRehash(t *testing.T) {
	d := New(1)
	for i := 0; i < 2000; i++ {
		d.Set(fmt.Sprintf("key:%d", i), i)
	}
	// Trigger a rehash and freeze it mid-flight by inserting past the load
	// factor; then scan while stepping the rehash between Scan calls.
	if !d.Rehashing() {
		// Force a rehash window by growing further.
		for i := 2000; !d.Rehashing() && i < 10000; i++ {
			d.Set(fmt.Sprintf("key:%d", i), i)
		}
	}
	seen := fullScan(d, func() { d.RehashStep(3) })
	for i := 0; i < 2000; i++ {
		if seen[fmt.Sprintf("key:%d", i)] == 0 {
			t.Fatalf("key:%d missed during concurrent rehash", i)
		}
	}
}

func TestScanGuaranteeUnderGrowth(t *testing.T) {
	// Stable keys inserted before the scan must all be seen even while the
	// table grows mid-scan from fresh inserts.
	d := New(2)
	const stable = 500
	for i := 0; i < stable; i++ {
		d.Set(fmt.Sprintf("stable:%d", i), i)
	}
	extra := 0
	seen := map[string]int{}
	cursor := uint64(0)
	for rounds := 0; ; rounds++ {
		cursor = d.Scan(cursor, func(k string, _ any) { seen[k]++ })
		// Insert churn between scan steps.
		for j := 0; j < 10; j++ {
			d.Set(fmt.Sprintf("extra:%d", extra), extra)
			extra++
		}
		if cursor == 0 || rounds > 1<<20 {
			break
		}
	}
	for i := 0; i < stable; i++ {
		if seen[fmt.Sprintf("stable:%d", i)] == 0 {
			t.Fatalf("stable:%d missed while table grew mid-scan", i)
		}
	}
}
