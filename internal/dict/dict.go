// Package dict implements the incrementally-rehashed chained hash table at
// the heart of Redis (dict.c), which SKV inherits as its primary storage
// structure (paper §I: "Redis uses hash table as a storage structure, which
// has high insertion and query performance").
//
// Two tables coexist during a rehash; every mutating operation migrates one
// bucket (a "rehash step"), and the server cron can donate extra steps, so
// no single command ever pays for a full resize.
package dict

import (
	"math/rand"
)

const (
	initialSize = 4
	// forceResizeRatio matches dict_force_resize_ratio: above this load
	// factor a resize happens even when one is normally avoided.
	forceResizeRatio = 5
)

type entry struct {
	key  string
	val  any
	next *entry
}

type table struct {
	buckets []*entry
	used    int
}

func (t *table) mask() uint64 { return uint64(len(t.buckets) - 1) }

// Dict is a hash table from string keys to arbitrary values. It is not safe
// for concurrent use; SKV's servers are single-threaded by design.
type Dict struct {
	ht        [2]table
	rehashidx int // -1 when not rehashing, else next bucket of ht[0] to move
	iterators int // safe iterators outstanding; pauses rehash steps
	rnd       *rand.Rand
}

// New creates an empty dict whose random sampling is driven by the seed
// (deterministic across runs with the same seed).
func New(seed int64) *Dict {
	return &Dict{rehashidx: -1, rnd: rand.New(rand.NewSource(seed))}
}

// fnv1a64 is the key hash (Redis uses siphash; FNV keeps us dependency-free
// and deterministic).
func fnv1a64(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// Len reports the number of entries across both tables.
func (d *Dict) Len() int { return d.ht[0].used + d.ht[1].used }

// Rehashing reports whether an incremental rehash is in progress.
func (d *Dict) Rehashing() bool { return d.rehashidx != -1 }

// expandIfNeeded applies the Redis growth policy.
func (d *Dict) expandIfNeeded() {
	if d.Rehashing() {
		return
	}
	if len(d.ht[0].buckets) == 0 {
		d.resize(initialSize)
		return
	}
	if d.ht[0].used >= len(d.ht[0].buckets) {
		d.resize(d.ht[0].used * 2)
	}
}

// resize starts an incremental rehash into a table of at least size buckets
// (rounded up to a power of two).
func (d *Dict) resize(size int) {
	real := initialSize
	for real < size {
		real *= 2
	}
	if real == len(d.ht[0].buckets) {
		return
	}
	nt := table{buckets: make([]*entry, real)}
	if len(d.ht[0].buckets) == 0 {
		d.ht[0] = nt // first allocation, nothing to migrate
		return
	}
	d.ht[1] = nt
	d.rehashidx = 0
}

// RehashStep migrates up to n buckets from ht[0] to ht[1]. It is invoked
// implicitly by mutating operations and explicitly by the server cron.
// Returns true while more work remains.
func (d *Dict) RehashStep(n int) bool {
	if !d.Rehashing() || d.iterators > 0 {
		return d.Rehashing()
	}
	// Limit empty-bucket scanning like dictRehash's empty_visits.
	emptyVisits := n * 10
	for ; n > 0; n-- {
		for d.rehashidx < len(d.ht[0].buckets) && d.ht[0].buckets[d.rehashidx] == nil {
			d.rehashidx++
			emptyVisits--
			if emptyVisits == 0 {
				return true
			}
		}
		if d.rehashidx >= len(d.ht[0].buckets) {
			break
		}
		e := d.ht[0].buckets[d.rehashidx]
		for e != nil {
			next := e.next
			idx := fnv1a64(e.key) & d.ht[1].mask()
			e.next = d.ht[1].buckets[idx]
			d.ht[1].buckets[idx] = e
			d.ht[0].used--
			d.ht[1].used++
			e = next
		}
		d.ht[0].buckets[d.rehashidx] = nil
		d.rehashidx++
	}
	if d.ht[0].used == 0 && d.Rehashing() {
		d.ht[0] = d.ht[1]
		d.ht[1] = table{}
		d.rehashidx = -1
		return false
	}
	return true
}

func (d *Dict) stepOnAccess() {
	if d.Rehashing() {
		d.RehashStep(1)
	}
}

// Set inserts or replaces a key. Returns true if the key was newly created.
func (d *Dict) Set(key string, val any) bool {
	d.stepOnAccess()
	d.expandIfNeeded()
	h := fnv1a64(key)
	// Replace in place if present (either table during rehash).
	tables := 1
	if d.Rehashing() {
		tables = 2
	}
	for i := 0; i < tables; i++ {
		if len(d.ht[i].buckets) == 0 {
			continue
		}
		for e := d.ht[i].buckets[h&d.ht[i].mask()]; e != nil; e = e.next {
			if e.key == key {
				e.val = val
				return false
			}
		}
	}
	// Insert into ht[1] if rehashing, else ht[0].
	ti := 0
	if d.Rehashing() {
		ti = 1
	}
	idx := h & d.ht[ti].mask()
	d.ht[ti].buckets[idx] = &entry{key: key, val: val, next: d.ht[ti].buckets[idx]}
	d.ht[ti].used++
	return true
}

// Get fetches a key's value; ok is false when absent.
func (d *Dict) Get(key string) (any, bool) {
	if d.Len() == 0 {
		return nil, false
	}
	d.stepOnAccess()
	h := fnv1a64(key)
	tables := 1
	if d.Rehashing() {
		tables = 2
	}
	for i := 0; i < tables; i++ {
		if len(d.ht[i].buckets) == 0 {
			continue
		}
		for e := d.ht[i].buckets[h&d.ht[i].mask()]; e != nil; e = e.next {
			if e.key == key {
				return e.val, true
			}
		}
	}
	return nil, false
}

// Delete removes a key, reporting whether it was present.
func (d *Dict) Delete(key string) bool {
	if d.Len() == 0 {
		return false
	}
	d.stepOnAccess()
	h := fnv1a64(key)
	tables := 1
	if d.Rehashing() {
		tables = 2
	}
	for i := 0; i < tables; i++ {
		if len(d.ht[i].buckets) == 0 {
			continue
		}
		idx := h & d.ht[i].mask()
		var prev *entry
		for e := d.ht[i].buckets[idx]; e != nil; e = e.next {
			if e.key == key {
				if prev == nil {
					d.ht[i].buckets[idx] = e.next
				} else {
					prev.next = e.next
				}
				d.ht[i].used--
				return true
			}
			prev = e
		}
	}
	return false
}

// RandomKey returns a uniformly-ish random key like dictGetRandomKey
// (random bucket, then random chain position). ok is false when empty.
func (d *Dict) RandomKey() (string, bool) {
	if d.Len() == 0 {
		return "", false
	}
	d.stepOnAccess()
	var e *entry
	for e == nil {
		if d.Rehashing() {
			total := len(d.ht[0].buckets) + len(d.ht[1].buckets)
			idx := d.rnd.Intn(total)
			if idx < len(d.ht[0].buckets) {
				e = d.ht[0].buckets[idx]
			} else {
				e = d.ht[1].buckets[idx-len(d.ht[0].buckets)]
			}
		} else {
			e = d.ht[0].buckets[d.rnd.Intn(len(d.ht[0].buckets))]
		}
	}
	n := 0
	for c := e; c != nil; c = c.next {
		n++
	}
	for skip := d.rnd.Intn(n); skip > 0; skip-- {
		e = e.next
	}
	return e.key, true
}

// Each calls fn for every entry. Mutation during iteration is not allowed
// except through the iterator-safe Delete of the current key after Each
// returns. Rehash steps are paused while iterating (safe-iterator
// semantics). Returning false from fn stops early.
func (d *Dict) Each(fn func(key string, val any) bool) {
	d.iterators++
	defer func() { d.iterators-- }()
	for i := 0; i < 2; i++ {
		for _, head := range d.ht[i].buckets {
			for e := head; e != nil; e = e.next {
				if !fn(e.key, e.val) {
					return
				}
			}
		}
	}
}

// Keys returns all keys (order unspecified but deterministic for a given
// insertion history).
func (d *Dict) Keys() []string {
	out := make([]string, 0, d.Len())
	d.Each(func(k string, _ any) bool {
		out = append(out, k)
		return true
	})
	return out
}

// BucketCount reports the allocated bucket count (both tables), used by
// tests asserting the growth policy.
func (d *Dict) BucketCount() int { return len(d.ht[0].buckets) + len(d.ht[1].buckets) }
