package dict

import "math/bits"

// Scan performs one step of a guarantee-preserving cursor iteration
// (dictScan): it visits every entry of the bucket(s) selected by cursor and
// returns the next cursor, 0 when the iteration has wrapped.
//
// The cursor walks the table in reverse-binary-increment order, which
// guarantees that every element present for the whole duration of the scan
// is returned at least once even across incremental rehashes (elements may
// be returned more than once; callers de-duplicate if needed) — the same
// contract as Redis SCAN.
func (d *Dict) Scan(cursor uint64, fn func(key string, val any)) uint64 {
	if d.Len() == 0 && !d.Rehashing() {
		return 0
	}
	if len(d.ht[0].buckets) == 0 {
		return 0
	}
	if !d.Rehashing() {
		m0 := d.ht[0].mask()
		for e := d.ht[0].buckets[cursor&m0]; e != nil; e = e.next {
			fn(e.key, e.val)
		}
		cursor |= ^m0
		cursor = rev(rev(cursor) + 1)
		return cursor
	}

	// Rehashing: iterate the smaller table's bucket, then every bucket of
	// the larger table that it expands into.
	small, large := &d.ht[0], &d.ht[1]
	if len(small.buckets) > len(large.buckets) {
		small, large = large, small
	}
	m0, m1 := small.mask(), large.mask()
	for e := small.buckets[cursor&m0]; e != nil; e = e.next {
		fn(e.key, e.val)
	}
	for {
		for e := large.buckets[cursor&m1]; e != nil; e = e.next {
			fn(e.key, e.val)
		}
		cursor |= ^m1
		cursor = rev(rev(cursor) + 1)
		if cursor&(m0^m1) == 0 {
			break
		}
	}
	return cursor
}

func rev(v uint64) uint64 { return bits.Reverse64(v) }
