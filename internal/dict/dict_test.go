package dict

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSetGetDelete(t *testing.T) {
	d := New(1)
	if created := d.Set("k", 1); !created {
		t.Fatal("first Set should create")
	}
	if created := d.Set("k", 2); created {
		t.Fatal("second Set should replace")
	}
	v, ok := d.Get("k")
	if !ok || v.(int) != 2 {
		t.Fatalf("Get = %v,%v", v, ok)
	}
	if !d.Delete("k") {
		t.Fatal("Delete existing failed")
	}
	if d.Delete("k") {
		t.Fatal("Delete missing succeeded")
	}
	if _, ok := d.Get("k"); ok {
		t.Fatal("deleted key still present")
	}
	if d.Len() != 0 {
		t.Fatalf("len=%d", d.Len())
	}
}

func TestGrowthTriggersIncrementalRehash(t *testing.T) {
	d := New(1)
	for i := 0; i < 100; i++ {
		d.Set(fmt.Sprintf("key:%d", i), i)
	}
	// With 100 entries, growth must have happened at least once; either
	// the rehash is done or in progress, and all keys are reachable.
	for i := 0; i < 100; i++ {
		v, ok := d.Get(fmt.Sprintf("key:%d", i))
		if !ok || v.(int) != i {
			t.Fatalf("key:%d lost during rehash (ok=%v)", i, ok)
		}
	}
	if d.Len() != 100 {
		t.Fatalf("len=%d", d.Len())
	}
}

func TestRehashCompletesViaSteps(t *testing.T) {
	d := New(1)
	for i := 0; i < 5000; i++ {
		d.Set(fmt.Sprintf("key:%d", i), i)
	}
	for i := 0; i < 100000 && d.Rehashing(); i++ {
		d.RehashStep(10)
	}
	if d.Rehashing() {
		t.Fatal("rehash never completed")
	}
	for i := 0; i < 5000; i++ {
		if _, ok := d.Get(fmt.Sprintf("key:%d", i)); !ok {
			t.Fatalf("key:%d lost after rehash", i)
		}
	}
}

func TestDeleteDuringRehash(t *testing.T) {
	d := New(1)
	for i := 0; i < 1000; i++ {
		d.Set(fmt.Sprintf("key:%d", i), i)
	}
	// Force a rehash to be mid-flight by growing, then delete half.
	for i := 0; i < 1000; i += 2 {
		if !d.Delete(fmt.Sprintf("key:%d", i)) {
			t.Fatalf("key:%d not deletable", i)
		}
	}
	if d.Len() != 500 {
		t.Fatalf("len=%d, want 500", d.Len())
	}
	for i := 1; i < 1000; i += 2 {
		if _, ok := d.Get(fmt.Sprintf("key:%d", i)); !ok {
			t.Fatalf("surviving key:%d missing", i)
		}
	}
}

func TestRandomKeyCoversEntries(t *testing.T) {
	d := New(42)
	for i := 0; i < 50; i++ {
		d.Set(fmt.Sprintf("key:%d", i), i)
	}
	seen := make(map[string]bool)
	for i := 0; i < 2000; i++ {
		k, ok := d.RandomKey()
		if !ok {
			t.Fatal("RandomKey failed on non-empty dict")
		}
		seen[k] = true
	}
	if len(seen) < 40 {
		t.Fatalf("random sampling too narrow: %d/50 keys seen", len(seen))
	}
	empty := New(1)
	if _, ok := empty.RandomKey(); ok {
		t.Fatal("RandomKey on empty dict returned ok")
	}
}

func TestEachVisitsAllOnce(t *testing.T) {
	d := New(1)
	want := map[string]int{}
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("key:%d", i)
		d.Set(k, i)
		want[k] = i
	}
	got := map[string]int{}
	d.Each(func(k string, v any) bool {
		if _, dup := got[k]; dup {
			t.Fatalf("key %s visited twice", k)
		}
		got[k] = v.(int)
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("visited %d, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %s value %d want %d", k, got[k], v)
		}
	}
}

func TestEachEarlyStop(t *testing.T) {
	d := New(1)
	for i := 0; i < 100; i++ {
		d.Set(fmt.Sprintf("k%d", i), i)
	}
	n := 0
	d.Each(func(string, any) bool {
		n++
		return n < 10
	})
	if n != 10 {
		t.Fatalf("early stop visited %d", n)
	}
}

func TestKeysLength(t *testing.T) {
	d := New(1)
	for i := 0; i < 64; i++ {
		d.Set(fmt.Sprintf("k%d", i), nil)
	}
	if got := len(d.Keys()); got != 64 {
		t.Fatalf("Keys len=%d", got)
	}
}

// Property: a Dict behaves exactly like map[string]int under an arbitrary
// operation sequence (model-based check).
func TestDictMatchesMapModel(t *testing.T) {
	type op struct {
		Kind uint8
		Key  uint8
		Val  int
	}
	f := func(ops []op) bool {
		d := New(7)
		m := map[string]int{}
		for _, o := range ops {
			key := fmt.Sprintf("k%d", o.Key%64)
			switch o.Kind % 3 {
			case 0:
				_, inMap := m[key]
				created := d.Set(key, o.Val)
				if created == inMap {
					return false
				}
				m[key] = o.Val
			case 1:
				v, ok := d.Get(key)
				mv, mok := m[key]
				if ok != mok || (ok && v.(int) != mv) {
					return false
				}
			case 2:
				_, inMap := m[key]
				if d.Delete(key) != inMap {
					return false
				}
				delete(m, key)
			}
			if d.Len() != len(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBucketGrowthPolicy(t *testing.T) {
	d := New(1)
	d.Set("a", 1)
	if d.BucketCount() != initialSize {
		t.Fatalf("initial buckets = %d, want %d", d.BucketCount(), initialSize)
	}
	for i := 0; i < 1000; i++ {
		d.Set(fmt.Sprintf("k%d", i), i)
	}
	if d.BucketCount() < 1000 {
		t.Fatalf("buckets = %d after 1000 inserts; growth policy broken", d.BucketCount())
	}
}
