package sds

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestNewAndBasics(t *testing.T) {
	s := NewString("hello")
	if s.Len() != 5 || s.String() != "hello" {
		t.Fatalf("basics: len=%d str=%q", s.Len(), s.String())
	}
	var zero SDS
	if zero.Len() != 0 || zero.String() != "" {
		t.Fatal("zero value not empty")
	}
}

func TestAppendGrows(t *testing.T) {
	s := New(nil)
	for i := 0; i < 1000; i++ {
		s.AppendString("ab")
	}
	if s.Len() != 2000 {
		t.Fatalf("len=%d", s.Len())
	}
	if s.Avail() < 0 {
		t.Fatal("negative avail")
	}
}

func TestAppendInt(t *testing.T) {
	s := NewString("n=")
	s.AppendInt(-42)
	if s.String() != "n=-42" {
		t.Fatalf("got %q", s.String())
	}
}

func TestSetRangeExtendsWithZeroPadding(t *testing.T) {
	s := NewString("Hello")
	n := s.SetRange(10, []byte("World"))
	if n != 15 {
		t.Fatalf("new length %d", n)
	}
	want := append([]byte("Hello"), 0, 0, 0, 0, 0)
	want = append(want, "World"...)
	if !bytes.Equal(s.Bytes(), want) {
		t.Fatalf("got %q", s.Bytes())
	}
}

func TestSetRangeOverwrite(t *testing.T) {
	s := NewString("Hello World")
	s.SetRange(6, []byte("Redis"))
	if s.String() != "Hello Redis" {
		t.Fatalf("got %q", s.String())
	}
}

func TestRangeSemantics(t *testing.T) {
	s := NewString("This is a string")
	cases := []struct {
		start, end int
		want       string
	}{
		{0, 3, "This"},
		{-3, -1, "ing"},
		{0, -1, "This is a string"},
		{10, 100, "string"},
		{5, 3, ""},
		{100, 200, ""},
		{-100, 3, "This"},
	}
	for _, c := range cases {
		if got := string(s.Range(c.start, c.end)); got != c.want {
			t.Errorf("Range(%d,%d) = %q, want %q", c.start, c.end, got, c.want)
		}
	}
	var empty SDS
	if empty.Range(0, -1) != nil {
		t.Error("range of empty should be nil")
	}
}

func TestClearKeepsCapacity(t *testing.T) {
	s := NewString("some content here")
	c := cap(s.buf)
	s.Clear()
	if s.Len() != 0 || cap(s.buf) != c {
		t.Fatal("Clear released capacity or kept length")
	}
}

func TestDupIsDeep(t *testing.T) {
	a := NewString("abc")
	b := a.Dup()
	b.AppendString("def")
	if a.String() != "abc" || b.String() != "abcdef" {
		t.Fatal("Dup not deep")
	}
}

func TestCmp(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"a", "b", -1}, {"b", "a", 1}, {"a", "a", 0},
		{"a", "ab", -1}, {"ab", "a", 1}, {"", "", 0},
	}
	for _, c := range cases {
		if got := NewString(c.a).Cmp(NewString(c.b)); got != c.want {
			t.Errorf("Cmp(%q,%q)=%d want %d", c.a, c.b, got, c.want)
		}
	}
}

// Property: Cmp agrees with bytes.Compare for arbitrary inputs.
func TestCmpMatchesBytesCompare(t *testing.T) {
	f := func(a, b []byte) bool {
		return New(a).Cmp(New(b)) == bytes.Compare(a, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: appending arbitrary chunks equals the concatenation.
func TestAppendConcatProperty(t *testing.T) {
	f := func(chunks [][]byte) bool {
		s := New(nil)
		var want []byte
		for _, c := range chunks {
			s.Append(c)
			want = append(want, c...)
		}
		return bytes.Equal(s.Bytes(), want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: SetRange then Range reads back what was written.
func TestSetRangeReadback(t *testing.T) {
	f := func(prefix []byte, off uint8, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		s := New(prefix)
		o := int(off)
		s.SetRange(o, data)
		got := s.Range(o, o+len(data)-1)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
