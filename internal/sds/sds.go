// Package sds implements simple dynamic strings in the style of Redis's
// sds library: a byte buffer that tracks its own length and grows with
// preallocation so repeated appends are amortized O(1).
//
// SKV inherits Redis's data-structure layer (paper §IV); sds backs string
// values, reply buffers, and the replication backlog's staging buffers.
package sds

import "strconv"

// maxPrealloc caps the doubling growth policy, mirroring
// SDS_MAX_PREALLOC (1MB) in Redis.
const maxPrealloc = 1 << 20

// SDS is a dynamic string. The zero value is an empty string ready to use.
type SDS struct {
	buf []byte
}

// New creates an SDS holding a copy of init.
func New(init []byte) *SDS {
	s := &SDS{}
	if len(init) > 0 {
		s.buf = append(make([]byte, 0, len(init)), init...)
	}
	return s
}

// NewString creates an SDS from a Go string.
func NewString(init string) *SDS { return New([]byte(init)) }

// Len reports the string length in bytes.
func (s *SDS) Len() int { return len(s.buf) }

// Avail reports the free capacity before reallocation.
func (s *SDS) Avail() int { return cap(s.buf) - len(s.buf) }

// Bytes exposes the underlying bytes. The slice is valid until the next
// mutating call.
func (s *SDS) Bytes() []byte { return s.buf }

// String copies the content out as a Go string.
func (s *SDS) String() string { return string(s.buf) }

// grow ensures room for n more bytes using the Redis preallocation policy:
// double the needed size below maxPrealloc, add maxPrealloc above it.
func (s *SDS) grow(n int) {
	need := len(s.buf) + n
	if need <= cap(s.buf) {
		return
	}
	var newCap int
	if need < maxPrealloc {
		newCap = need * 2
	} else {
		newCap = need + maxPrealloc
	}
	nb := make([]byte, len(s.buf), newCap)
	copy(nb, s.buf)
	s.buf = nb
}

// Append appends raw bytes.
func (s *SDS) Append(b []byte) *SDS {
	s.grow(len(b))
	s.buf = append(s.buf, b...)
	return s
}

// AppendString appends a Go string.
func (s *SDS) AppendString(str string) *SDS {
	s.grow(len(str))
	s.buf = append(s.buf, str...)
	return s
}

// AppendInt appends the decimal representation of i.
func (s *SDS) AppendInt(i int64) *SDS {
	s.grow(20)
	s.buf = strconv.AppendInt(s.buf, i, 10)
	return s
}

// SetRange overwrites bytes starting at offset, zero-padding any gap, and
// returns the new length (the semantics of Redis SETRANGE).
func (s *SDS) SetRange(offset int, b []byte) int {
	if offset < 0 {
		offset = 0
	}
	end := offset + len(b)
	if end > len(s.buf) {
		s.grow(end - len(s.buf))
		for len(s.buf) < end {
			s.buf = append(s.buf, 0)
		}
	}
	copy(s.buf[offset:], b)
	return len(s.buf)
}

// Range extracts the inclusive byte range [start, end] with Redis GETRANGE
// semantics: negative indices count from the end; out-of-range yields empty.
func (s *SDS) Range(start, end int) []byte {
	n := len(s.buf)
	if n == 0 {
		return nil
	}
	if start < 0 {
		start = n + start
		if start < 0 {
			start = 0
		}
	}
	if end < 0 {
		end = n + end
		if end < 0 {
			end = 0
		}
	}
	if end >= n {
		end = n - 1
	}
	if start > end || start >= n {
		return nil
	}
	out := make([]byte, end-start+1)
	copy(out, s.buf[start:end+1])
	return out
}

// Clear empties the string without releasing capacity (sdsclear).
func (s *SDS) Clear() { s.buf = s.buf[:0] }

// Dup returns a deep copy.
func (s *SDS) Dup() *SDS { return New(s.buf) }

// Cmp compares two strings lexicographically like bytes.Compare.
func (s *SDS) Cmp(o *SDS) int {
	a, b := s.buf, o.buf
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		switch {
		case a[i] < b[i]:
			return -1
		case a[i] > b[i]:
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}
