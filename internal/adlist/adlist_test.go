package adlist

import (
	"testing"
	"testing/quick"
)

func collect(l *List) []int {
	var out []int
	l.Each(func(v any) bool {
		out = append(out, v.(int))
		return true
	})
	return out
}

func TestPushPop(t *testing.T) {
	l := New()
	l.PushTail(2)
	l.PushHead(1)
	l.PushTail(3)
	if got := collect(l); len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if v, ok := l.PopHead(); !ok || v.(int) != 1 {
		t.Fatalf("PopHead %v %v", v, ok)
	}
	if v, ok := l.PopTail(); !ok || v.(int) != 3 {
		t.Fatalf("PopTail %v %v", v, ok)
	}
	if l.Len() != 1 {
		t.Fatalf("len=%d", l.Len())
	}
	l.PopHead()
	if _, ok := l.PopHead(); ok {
		t.Fatal("pop from empty returned ok")
	}
	if _, ok := l.PopTail(); ok {
		t.Fatal("pop tail from empty returned ok")
	}
}

func TestIndex(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.PushTail(i)
	}
	if l.Index(0).Value.(int) != 0 || l.Index(4).Value.(int) != 4 {
		t.Fatal("positive index wrong")
	}
	if l.Index(-1).Value.(int) != 4 || l.Index(-5).Value.(int) != 0 {
		t.Fatal("negative index wrong")
	}
	if l.Index(5) != nil || l.Index(-6) != nil {
		t.Fatal("out of range should be nil")
	}
}

func TestRemoveMiddle(t *testing.T) {
	l := New()
	for i := 0; i < 5; i++ {
		l.PushTail(i)
	}
	l.Remove(l.Index(2))
	if got := collect(l); len(got) != 4 || got[2] != 3 {
		t.Fatalf("after remove: %v", got)
	}
	if l.Head().Prev() != nil || l.Tail().Next() != nil {
		t.Fatal("boundary links broken")
	}
}

func TestRangeSemantics(t *testing.T) {
	l := New()
	for i := 0; i < 10; i++ {
		l.PushTail(i)
	}
	cases := []struct {
		start, stop int
		want        []int
	}{
		{0, 2, []int{0, 1, 2}},
		{-3, -1, []int{7, 8, 9}},
		{0, -1, []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}},
		{5, 100, []int{5, 6, 7, 8, 9}},
		{7, 3, nil},
		{100, 200, nil},
	}
	for _, c := range cases {
		got := l.Range(c.start, c.stop)
		if len(got) != len(c.want) {
			t.Errorf("Range(%d,%d) len=%d want %d", c.start, c.stop, len(got), len(c.want))
			continue
		}
		for i := range got {
			if got[i].(int) != c.want[i] {
				t.Errorf("Range(%d,%d)[%d]=%v want %d", c.start, c.stop, i, got[i], c.want[i])
			}
		}
	}
}

// Property: PushTail sequence then Each reproduces the input order, and
// Len matches.
func TestPushOrderProperty(t *testing.T) {
	f := func(vals []int) bool {
		l := New()
		for _, v := range vals {
			l.PushTail(v)
		}
		got := collect(l)
		if l.Len() != len(vals) || len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a list used as a deque matches a slice model.
func TestDequeModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Val  int
	}
	f := func(ops []op) bool {
		l := New()
		var m []int
		for _, o := range ops {
			switch o.Kind % 4 {
			case 0:
				l.PushHead(o.Val)
				m = append([]int{o.Val}, m...)
			case 1:
				l.PushTail(o.Val)
				m = append(m, o.Val)
			case 2:
				v, ok := l.PopHead()
				if ok != (len(m) > 0) {
					return false
				}
				if ok {
					if v.(int) != m[0] {
						return false
					}
					m = m[1:]
				}
			case 3:
				v, ok := l.PopTail()
				if ok != (len(m) > 0) {
					return false
				}
				if ok {
					if v.(int) != m[len(m)-1] {
						return false
					}
					m = m[:len(m)-1]
				}
			}
			if l.Len() != len(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
