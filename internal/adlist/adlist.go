// Package adlist is the doubly linked list Redis uses for list values and
// internal bookkeeping (adlist.c). SKV inherits it for LPUSH/RPUSH-family
// commands and for the server's client and slave lists.
package adlist

// Node is a list node carrying an arbitrary value.
type Node struct {
	prev, next *Node
	Value      any
}

// Prev returns the previous node or nil.
func (n *Node) Prev() *Node { return n.prev }

// Next returns the next node or nil.
func (n *Node) Next() *Node { return n.next }

// List is a doubly linked list. The zero value is an empty list.
type List struct {
	head, tail *Node
	length     int
}

// New creates an empty list.
func New() *List { return &List{} }

// Len reports the number of nodes.
func (l *List) Len() int { return l.length }

// Head returns the first node or nil.
func (l *List) Head() *Node { return l.head }

// Tail returns the last node or nil.
func (l *List) Tail() *Node { return l.tail }

// PushHead prepends a value.
func (l *List) PushHead(v any) *Node {
	n := &Node{Value: v}
	if l.head == nil {
		l.head, l.tail = n, n
	} else {
		n.next = l.head
		l.head.prev = n
		l.head = n
	}
	l.length++
	return n
}

// PushTail appends a value.
func (l *List) PushTail(v any) *Node {
	n := &Node{Value: v}
	if l.tail == nil {
		l.head, l.tail = n, n
	} else {
		n.prev = l.tail
		l.tail.next = n
		l.tail = n
	}
	l.length++
	return n
}

// PopHead removes and returns the first value; ok is false when empty.
func (l *List) PopHead() (any, bool) {
	if l.head == nil {
		return nil, false
	}
	n := l.head
	l.Remove(n)
	return n.Value, true
}

// PopTail removes and returns the last value; ok is false when empty.
func (l *List) PopTail() (any, bool) {
	if l.tail == nil {
		return nil, false
	}
	n := l.tail
	l.Remove(n)
	return n.Value, true
}

// Remove unlinks a node obtained from this list.
func (l *List) Remove(n *Node) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		l.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		l.tail = n.prev
	}
	n.prev, n.next = nil, nil
	l.length--
}

// Index returns the node at position i (negative counts from the tail,
// -1 being the last), or nil when out of range.
func (l *List) Index(i int) *Node {
	if i < 0 {
		i = -i - 1
		n := l.tail
		for i > 0 && n != nil {
			n = n.prev
			i--
		}
		return n
	}
	n := l.head
	for i > 0 && n != nil {
		n = n.next
		i--
	}
	return n
}

// Each calls fn front-to-back; returning false stops early.
func (l *List) Each(fn func(v any) bool) {
	for n := l.head; n != nil; n = n.next {
		if !fn(n.Value) {
			return
		}
	}
}

// Range collects values in the inclusive index window [start, stop] with
// Redis LRANGE semantics (negative indices from the end, clamping).
func (l *List) Range(start, stop int) []any {
	n := l.length
	if start < 0 {
		start = n + start
		if start < 0 {
			start = 0
		}
	}
	if stop < 0 {
		stop = n + stop
	}
	if start > stop || start >= n {
		return nil
	}
	if stop >= n {
		stop = n - 1
	}
	out := make([]any, 0, stop-start+1)
	node := l.Index(start)
	for i := start; i <= stop && node != nil; i++ {
		out = append(out, node.Value)
		node = node.next
	}
	return out
}
