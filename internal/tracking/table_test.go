package tracking

import (
	"fmt"
	"reflect"
	"testing"
)

func TestAddTakeOrder(t *testing.T) {
	tb := New(16)
	tb.Add("k", "b")
	tb.Add("k", "a")
	tb.Add("k", "b") // dup is idempotent
	if got := tb.Take("k"); !reflect.DeepEqual(got, []string{"b", "a"}) {
		t.Fatalf("Take order = %v, want first-interest order [b a]", got)
	}
	if tb.Take("k") != nil {
		t.Fatal("interest must be one-shot")
	}
	if tb.Len() != 0 || tb.Subscribers() != 0 {
		t.Fatalf("table not empty after Take: len=%d subs=%d", tb.Len(), tb.Subscribers())
	}
}

func TestTakeAllAdmissionOrder(t *testing.T) {
	tb := New(16)
	tb.Add("b", "s1")
	tb.Add("a", "s1")
	tb.Add("c", "s2")
	tb.Take("a") // leaves a tombstone in the fifo
	got := tb.TakeAll()
	want := []Entry{{Key: "b", Subs: []string{"s1"}}, {Key: "c", Subs: []string{"s2"}}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TakeAll = %v, want %v", got, want)
	}
	if tb.Len() != 0 {
		t.Fatalf("table not empty after TakeAll: %d", tb.Len())
	}
}

func TestDropSub(t *testing.T) {
	tb := New(16)
	tb.Add("k1", "a")
	tb.Add("k1", "b")
	tb.Add("k2", "a")
	tb.DropSub("a")
	if got := tb.Take("k1"); !reflect.DeepEqual(got, []string{"b"}) {
		t.Fatalf("k1 subs after DropSub(a) = %v, want [b]", got)
	}
	if tb.Take("k2") != nil {
		t.Fatal("k2 should be gone once its only subscriber left")
	}
	if tb.Len() != 0 || tb.Subscribers() != 0 {
		t.Fatalf("leak: len=%d subs=%d", tb.Len(), tb.Subscribers())
	}
}

func TestEvictionFIFO(t *testing.T) {
	tb := New(2)
	var evicted []string
	tb.OnEvict = func(key string, subs []string) {
		evicted = append(evicted, fmt.Sprintf("%s:%v", key, subs))
	}
	tb.Add("k1", "a")
	tb.Add("k2", "a")
	tb.Add("k3", "b") // evicts k1
	if want := []string{"k1:[a]"}; !reflect.DeepEqual(evicted, want) {
		t.Fatalf("evicted = %v, want %v", evicted, want)
	}
	if tb.Len() != 2 {
		t.Fatalf("len = %d, want 2", tb.Len())
	}
	// Re-adding an evicted key admits it at the tail.
	tb.Add("k1", "a") // evicts k2
	if want := []string{"k1:[a]", "k2:[a]"}; !reflect.DeepEqual(evicted, want) {
		t.Fatalf("evicted = %v, want %v", evicted, want)
	}
	if tb.Take("k3") == nil || tb.Take("k1") == nil {
		t.Fatal("k3 and k1 should survive")
	}
}

func TestTombstoneCompaction(t *testing.T) {
	tb := New(4)
	// Churn far past 2*Max fifo slots to force compaction repeatedly.
	for i := 0; i < 100; i++ {
		k := fmt.Sprintf("k%d", i)
		tb.Add(k, "s")
		tb.Take(k)
	}
	if len(tb.fifo) > 2*tb.Max {
		t.Fatalf("fifo not compacted: %d slots", len(tb.fifo))
	}
	if tb.Len() != 0 {
		t.Fatalf("len = %d, want 0", tb.Len())
	}
	// Table still works after compaction.
	tb.Add("x", "s")
	if got := tb.Take("x"); !reflect.DeepEqual(got, []string{"s"}) {
		t.Fatalf("Take after churn = %v", got)
	}
}

func TestDeterministicUnderChurn(t *testing.T) {
	run := func() []string {
		tb := New(3)
		var log []string
		tb.OnEvict = func(key string, subs []string) {
			log = append(log, fmt.Sprintf("evict %s %v", key, subs))
		}
		names := []string{"a", "b", "c"}
		for i := 0; i < 50; i++ {
			k := fmt.Sprintf("k%d", i%7)
			tb.Add(k, names[i%3])
			if i%5 == 0 {
				log = append(log, fmt.Sprintf("take %s %v", k, tb.Take(k)))
			}
			if i%11 == 0 {
				tb.DropSub(names[(i+1)%3])
			}
		}
		for _, e := range tb.TakeAll() {
			log = append(log, fmt.Sprintf("rest %s %v", e.Key, e.Subs))
		}
		return log
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d diverged:\n%v\nvs\n%v", i, got, first)
		}
	}
}
