// Package tracking implements the bounded invalidation interest table
// behind CLIENT TRACKING (§II-B of the Redis server-assisted caching
// design, carried over to SKV). One table instance lives wherever reads
// are admitted — the master for in-band tracking, Nic-KV for the
// redirect/offloaded mode — and maps each tracked key to the set of
// subscribers that must be told when it changes.
//
// Determinism: subscriber sets are kept in insertion order (not Go map
// order) so the wire order of invalidation pushes is identical across
// runs, and eviction is FIFO over distinct keys with lazy tombstones so
// the evicted key is a pure function of the operation history.
package tracking

// Entry is one tracked key and its subscribers, as returned by Take and
// TakeAll. Subs is in first-interest order.
type Entry struct {
	Key  string
	Subs []string
}

type keyEntry struct {
	subs   []string        // insertion-ordered subscriber names
	member map[string]bool // membership for O(1) dedupe
}

// Table is a bounded key→subscribers interest table. Not safe for
// concurrent use; in the simulator every table is confined to one proc.
type Table struct {
	// Max bounds the number of distinct tracked keys. When an Add would
	// exceed it, the oldest tracked key is evicted and OnEvict fires so
	// callers can push a synthetic invalidation (the evicted key's
	// subscribers would otherwise serve it stale forever).
	Max int
	// OnEvict, if set, is called with each evicted key and its
	// subscribers before the entry is dropped.
	OnEvict func(key string, subs []string)

	byKey  map[string]*keyEntry
	subs   map[string]map[string]bool // name → keys it is interested in
	fifo   []string                   // key admission order (may hold tombstones)
	inFifo map[string]bool            // keys currently holding a fifo slot
}

// New returns an empty table bounded to max distinct keys (0 = 65536).
func New(max int) *Table {
	if max <= 0 {
		max = 65536
	}
	return &Table{
		Max:    max,
		byKey:  make(map[string]*keyEntry),
		subs:   make(map[string]map[string]bool),
		fifo:   make([]string, 0, 16),
		inFifo: make(map[string]bool),
	}
}

// Len reports the number of distinct tracked keys.
func (t *Table) Len() int { return len(t.byKey) }

// Subscribers reports how many subscribers currently hold any interest.
func (t *Table) Subscribers() int { return len(t.subs) }

// Add records that subscriber name must be invalidated when key changes.
// Idempotent per (key, name) pair.
func (t *Table) Add(key, name string) {
	e := t.byKey[key]
	if e == nil {
		t.evictFor(key)
		e = &keyEntry{member: make(map[string]bool, 2)}
		t.byKey[key] = e
		if !t.inFifo[key] {
			t.fifo = append(t.fifo, key)
			t.inFifo[key] = true
			t.compact()
		}
	}
	if !e.member[name] {
		e.member[name] = true
		e.subs = append(e.subs, name)
	}
	ks := t.subs[name]
	if ks == nil {
		ks = make(map[string]bool, 4)
		t.subs[name] = ks
	}
	ks[key] = true
}

// Take removes key from the table and returns its subscribers in
// first-interest order (nil if untracked). Interest is one-shot, as in
// Redis: a subscriber must read the key again to re-register.
func (t *Table) Take(key string) []string {
	e := t.byKey[key]
	if e == nil {
		return nil
	}
	t.drop(key, e)
	return e.subs
}

// TakeAll empties the table and returns every entry in key admission
// order. Used for keyless dirty operations (FLUSHDB and friends).
func (t *Table) TakeAll() []Entry {
	if len(t.byKey) == 0 {
		return nil
	}
	out := make([]Entry, 0, len(t.byKey))
	for _, key := range t.fifo {
		e := t.byKey[key]
		if e == nil {
			continue // tombstone
		}
		out = append(out, Entry{Key: key, Subs: e.subs})
		t.drop(key, e)
	}
	return out
}

// DropSub forgets every interest held by subscriber name (disconnect).
// Keys whose last subscriber leaves are removed from the table.
func (t *Table) DropSub(name string) {
	ks := t.subs[name]
	if ks == nil {
		return
	}
	delete(t.subs, name)
	for key := range ks {
		e := t.byKey[key]
		if e == nil || !e.member[name] {
			continue
		}
		delete(e.member, name)
		for i, s := range e.subs {
			if s == name {
				e.subs = append(e.subs[:i], e.subs[i+1:]...)
				break
			}
		}
		if len(e.subs) == 0 {
			t.drop(key, e)
		}
	}
}

// drop removes key's entry and its per-subscriber back-references. The
// fifo slot is left as a tombstone (skipped lazily).
func (t *Table) drop(key string, e *keyEntry) {
	delete(t.byKey, key)
	for _, name := range e.subs {
		if ks := t.subs[name]; ks != nil {
			delete(ks, key)
			if len(ks) == 0 {
				delete(t.subs, name)
			}
		}
	}
}

// evictFor makes room for one more key, firing OnEvict for each victim.
func (t *Table) evictFor(key string) {
	for len(t.byKey) >= t.Max {
		victim := ""
		for len(t.fifo) > 0 {
			k := t.fifo[0]
			t.fifo = t.fifo[1:]
			delete(t.inFifo, k)
			if t.byKey[k] != nil {
				victim = k
				break
			}
		}
		if victim == "" {
			return // fifo exhausted (only tombstones) — cannot happen while byKey is full
		}
		e := t.byKey[victim]
		t.drop(victim, e)
		if t.OnEvict != nil {
			t.OnEvict(victim, e.subs)
		}
	}
}

// compact rebuilds the fifo without tombstones once they dominate.
func (t *Table) compact() {
	if len(t.fifo) <= 2*t.Max {
		return
	}
	live := t.fifo[:0]
	for _, k := range t.fifo {
		if t.byKey[k] != nil {
			live = append(live, k)
		} else {
			delete(t.inFifo, k)
		}
	}
	t.fifo = live
}
