package skiplist

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestInsertAndOrder(t *testing.T) {
	sl := New(1)
	sl.Insert("b", 2)
	sl.Insert("a", 1)
	sl.Insert("c", 3)
	sl.Insert("aa", 1) // same score, member tie-break
	var got []string
	sl.Each(func(m string, s float64) bool {
		got = append(got, m)
		return true
	})
	want := []string{"a", "aa", "b", "c"}
	if len(got) != 4 {
		t.Fatalf("len=%d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order %v, want %v", got, want)
		}
	}
}

func TestDelete(t *testing.T) {
	sl := New(1)
	sl.Insert("a", 1)
	sl.Insert("b", 2)
	if !sl.Delete("a", 1) {
		t.Fatal("delete existing failed")
	}
	if sl.Delete("a", 1) {
		t.Fatal("double delete succeeded")
	}
	if sl.Delete("b", 99) {
		t.Fatal("delete with wrong score succeeded")
	}
	if sl.Len() != 1 {
		t.Fatalf("len=%d", sl.Len())
	}
}

func TestRank(t *testing.T) {
	sl := New(1)
	for i := 0; i < 100; i++ {
		sl.Insert(fmt.Sprintf("m%03d", i), float64(i))
	}
	for i := 0; i < 100; i++ {
		r, ok := sl.Rank(fmt.Sprintf("m%03d", i), float64(i))
		if !ok || r != i {
			t.Fatalf("Rank(m%03d)=%d,%v want %d", i, r, ok, i)
		}
	}
	if _, ok := sl.Rank("missing", 5); ok {
		t.Fatal("rank of missing member ok")
	}
}

func TestRangeByRank(t *testing.T) {
	sl := New(1)
	for i := 0; i < 10; i++ {
		sl.Insert(fmt.Sprintf("m%d", i), float64(i))
	}
	cases := []struct {
		start, stop int
		wantLen     int
		first       string
	}{
		{0, 2, 3, "m0"},
		{-3, -1, 3, "m7"},
		{0, -1, 10, "m0"},
		{8, 100, 2, "m8"},
		{5, 2, 0, ""},
	}
	for _, c := range cases {
		got := sl.RangeByRank(c.start, c.stop)
		if len(got) != c.wantLen {
			t.Errorf("RangeByRank(%d,%d) len=%d want %d", c.start, c.stop, len(got), c.wantLen)
			continue
		}
		if c.wantLen > 0 && got[0].Member != c.first {
			t.Errorf("RangeByRank(%d,%d)[0]=%s want %s", c.start, c.stop, got[0].Member, c.first)
		}
	}
}

func TestRangeByScore(t *testing.T) {
	sl := New(1)
	for i := 0; i < 20; i++ {
		sl.Insert(fmt.Sprintf("m%02d", i), float64(i))
	}
	got := sl.RangeByScore(5, 8)
	if len(got) != 4 || got[0].Member != "m05" || got[3].Member != "m08" {
		t.Fatalf("RangeByScore(5,8) = %v", got)
	}
	if got := sl.RangeByScore(100, 200); got != nil {
		t.Fatal("out-of-range scores should return nil")
	}
}

// Property: skiplist iteration order equals sorting by (score, member), and
// ranks equal positions, under arbitrary insert sequences.
func TestOrderMatchesSortProperty(t *testing.T) {
	f := func(scores []uint8) bool {
		sl := New(99)
		type el struct {
			m string
			s float64
		}
		var model []el
		seen := map[string]bool{}
		for i, sc := range scores {
			m := fmt.Sprintf("m%d", i%32)
			if seen[m] {
				continue
			}
			seen[m] = true
			s := float64(sc % 16)
			sl.Insert(m, s)
			model = append(model, el{m, s})
		}
		sort.Slice(model, func(i, j int) bool {
			if model[i].s != model[j].s {
				return model[i].s < model[j].s
			}
			return model[i].m < model[j].m
		})
		i := 0
		okOrder := true
		sl.Each(func(m string, s float64) bool {
			if i >= len(model) || model[i].m != m || model[i].s != s {
				okOrder = false
				return false
			}
			i++
			return true
		})
		if !okOrder || i != len(model) {
			return false
		}
		for idx, e := range model {
			r, ok := sl.Rank(e.m, e.s)
			if !ok || r != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: random interleaved insert/delete keeps spans consistent (ranks
// remain correct).
func TestInsertDeleteSpansProperty(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	sl := New(5)
	live := map[string]float64{}
	for i := 0; i < 3000; i++ {
		if len(live) == 0 || rnd.Intn(3) != 0 {
			m := fmt.Sprintf("k%d", rnd.Intn(500))
			if _, exists := live[m]; exists {
				continue
			}
			s := float64(rnd.Intn(50))
			sl.Insert(m, s)
			live[m] = s
		} else {
			for m, s := range live {
				if !sl.Delete(m, s) {
					t.Fatalf("delete of live member %s failed", m)
				}
				delete(live, m)
				break
			}
		}
	}
	if sl.Len() != len(live) {
		t.Fatalf("len=%d model=%d", sl.Len(), len(live))
	}
	// Every live member's rank must match a full ordered walk.
	pos := 0
	sl.Each(func(m string, s float64) bool {
		r, ok := sl.Rank(m, s)
		if !ok || r != pos {
			t.Fatalf("rank of %s = %d,%v want %d", m, r, ok, pos)
		}
		pos++
		return true
	})
}
