// Package skiplist implements the score-ordered skip list backing Redis
// sorted sets (t_zset.c). SKV inherits it ("skip tables" in paper §IV) for
// the ZADD command family.
//
// Ordering is by (score, member) with member as the lexicographic
// tie-breaker, exactly like zslInsert. Rank queries are supported through
// per-level span counters.
package skiplist

import "math/rand"

const (
	maxLevel = 32
	// pBranch is the level promotion probability (ZSKIPLIST_P = 0.25).
	pBranch = 0.25
)

type levelLink struct {
	forward *node
	span    int
}

type node struct {
	member   string
	score    float64
	backward *node
	level    []levelLink
}

// SkipList is a sorted collection of (member, score) pairs.
type SkipList struct {
	header *node
	tail   *node
	length int
	level  int
	rnd    *rand.Rand
}

// New creates an empty skip list with a deterministic level generator.
func New(seed int64) *SkipList {
	return &SkipList{
		header: &node{level: make([]levelLink, maxLevel)},
		level:  1,
		rnd:    rand.New(rand.NewSource(seed)),
	}
}

// Len reports the number of elements.
func (sl *SkipList) Len() int { return sl.length }

func (sl *SkipList) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && sl.rnd.Float64() < pBranch {
		lvl++
	}
	return lvl
}

// less orders by score then member.
func less(score float64, member string, n *node) bool {
	if n.score != score {
		return n.score < score
	}
	return n.member < member
}

// Insert adds a member with the given score. The caller must guarantee the
// member is not already present (the zset object layer tracks members in a
// dict, like Redis).
func (sl *SkipList) Insert(member string, score float64) {
	var update [maxLevel]*node
	var rank [maxLevel]int
	x := sl.header
	for i := sl.level - 1; i >= 0; i-- {
		if i == sl.level-1 {
			rank[i] = 0
		} else {
			rank[i] = rank[i+1]
		}
		for x.level[i].forward != nil && less(score, member, x.level[i].forward) {
			rank[i] += x.level[i].span
			x = x.level[i].forward
		}
		update[i] = x
	}
	lvl := sl.randomLevel()
	if lvl > sl.level {
		for i := sl.level; i < lvl; i++ {
			rank[i] = 0
			update[i] = sl.header
			update[i].level[i].span = sl.length
		}
		sl.level = lvl
	}
	n := &node{member: member, score: score, level: make([]levelLink, lvl)}
	for i := 0; i < lvl; i++ {
		n.level[i].forward = update[i].level[i].forward
		update[i].level[i].forward = n
		n.level[i].span = update[i].level[i].span - (rank[0] - rank[i])
		update[i].level[i].span = rank[0] - rank[i] + 1
	}
	for i := lvl; i < sl.level; i++ {
		update[i].level[i].span++
	}
	if update[0] != sl.header {
		n.backward = update[0]
	}
	if n.level[0].forward != nil {
		n.level[0].forward.backward = n
	} else {
		sl.tail = n
	}
	sl.length++
}

// Delete removes a member with the given score, reporting success.
func (sl *SkipList) Delete(member string, score float64) bool {
	var update [maxLevel]*node
	x := sl.header
	for i := sl.level - 1; i >= 0; i-- {
		for x.level[i].forward != nil && less(score, member, x.level[i].forward) {
			x = x.level[i].forward
		}
		update[i] = x
	}
	x = x.level[0].forward
	if x == nil || x.score != score || x.member != member {
		return false
	}
	for i := 0; i < sl.level; i++ {
		if update[i].level[i].forward == x {
			update[i].level[i].span += x.level[i].span - 1
			update[i].level[i].forward = x.level[i].forward
		} else {
			update[i].level[i].span--
		}
	}
	if x.level[0].forward != nil {
		x.level[0].forward.backward = x.backward
	} else {
		sl.tail = x.backward
	}
	for sl.level > 1 && sl.header.level[sl.level-1].forward == nil {
		sl.level--
	}
	sl.length--
	return true
}

// Rank reports the 0-based rank of a member with the given score; ok is
// false when absent.
func (sl *SkipList) Rank(member string, score float64) (int, bool) {
	rank := 0
	x := sl.header
	for i := sl.level - 1; i >= 0; i-- {
		for x.level[i].forward != nil && less(score, member, x.level[i].forward) {
			rank += x.level[i].span
			x = x.level[i].forward
		}
	}
	x = x.level[0].forward
	if x != nil && x.score == score && x.member == member {
		return rank, true
	}
	return 0, false
}

// Element is one (member, score) pair returned by range queries.
type Element struct {
	Member string
	Score  float64
}

// RangeByRank collects elements with 0-based ranks in [start, stop]
// inclusive, with negative indices counting from the end (ZRANGE).
func (sl *SkipList) RangeByRank(start, stop int) []Element {
	n := sl.length
	if start < 0 {
		start = n + start
		if start < 0 {
			start = 0
		}
	}
	if stop < 0 {
		stop = n + stop
	}
	if start > stop || start >= n {
		return nil
	}
	if stop >= n {
		stop = n - 1
	}
	out := make([]Element, 0, stop-start+1)
	x := sl.nodeAtRank(start)
	for i := start; i <= stop && x != nil; i++ {
		out = append(out, Element{Member: x.member, Score: x.score})
		x = x.level[0].forward
	}
	return out
}

func (sl *SkipList) nodeAtRank(rank int) *node {
	traversed := -1 // header is rank -1
	x := sl.header
	for i := sl.level - 1; i >= 0; i-- {
		for x.level[i].forward != nil && traversed+x.level[i].span <= rank {
			traversed += x.level[i].span
			x = x.level[i].forward
		}
		if traversed == rank {
			return x
		}
	}
	return nil
}

// RangeByScore collects elements with score in [min, max] inclusive.
func (sl *SkipList) RangeByScore(min, max float64) []Element {
	var out []Element
	x := sl.header
	for i := sl.level - 1; i >= 0; i-- {
		for x.level[i].forward != nil && x.level[i].forward.score < min {
			x = x.level[i].forward
		}
	}
	x = x.level[0].forward
	for x != nil && x.score <= max {
		out = append(out, Element{Member: x.member, Score: x.score})
		x = x.level[0].forward
	}
	return out
}

// Each walks the list in order; returning false stops early.
func (sl *SkipList) Each(fn func(member string, score float64) bool) {
	for x := sl.header.level[0].forward; x != nil; x = x.level[0].forward {
		if !fn(x.member, x.score) {
			return
		}
	}
}
