// Per-slot failover harness: the multi-master counterpart of the chaos
// scenarios. It kills one replication group's master under slot-aware
// client load and samples a per-group availability timeline, so tests can
// assert the blast radius of a failover is exactly the victim group's slot
// range — every other group keeps serving with zero errors and no dip —
// and that the victim's slots come back once the SmartNIC promotes a slave
// and the slot map repoints them.
package cluster

import (
	"fmt"
	"strings"

	"skv/internal/core"
	"skv/internal/server"
	"skv/internal/sim"
)

// SlotAvailability is a sampled per-group availability timeline: completed
// operations (and error replies) per bucket per replication group, summed
// over all slot-aware clients.
type SlotAvailability struct {
	Bucket sim.Duration
	Start  sim.Time
	// Done[g][b] is group g's completed ops in bucket b; Errs likewise for
	// error replies.
	Done [][]uint64
	Errs [][]uint64

	c        *Cluster
	ticker   *sim.Ticker
	lastDone []uint64
	lastErrs []uint64
}

// Stop ends sampling (call when the load stops, so trailing idle buckets
// don't read as an outage).
func (a *SlotAvailability) Stop() { a.ticker.Stop() }

// SampleSlotAvailability starts bucketed sampling of per-group completions
// on a multi-master cluster. Buckets are deltas, so a zero entry means the
// group served nothing in that window.
func SampleSlotAvailability(c *Cluster, bucket sim.Duration) *SlotAvailability {
	a := &SlotAvailability{
		Bucket:   bucket,
		Start:    c.Eng.Now(),
		Done:     make([][]uint64, len(c.Groups)),
		Errs:     make([][]uint64, len(c.Groups)),
		c:        c,
		lastDone: make([]uint64, len(c.Groups)),
		lastErrs: make([]uint64, len(c.Groups)),
	}
	a.ticker = c.Eng.Every(bucket, a.sample)
	return a
}

func (a *SlotAvailability) sample() {
	done := make([]uint64, len(a.c.Groups))
	errs := make([]uint64, len(a.c.Groups))
	for _, cl := range a.c.Clients {
		st := cl.Stats()
		for g := range done {
			done[g] += st.GroupDone[g]
			errs[g] += st.GroupErrs[g]
		}
	}
	for g := range done {
		a.Done[g] = append(a.Done[g], done[g]-a.lastDone[g])
		a.Errs[g] = append(a.Errs[g], errs[g]-a.lastErrs[g])
	}
	a.lastDone = done
	a.lastErrs = errs
}

// String renders the timeline, one row per group (test and example output).
func (a *SlotAvailability) String() string {
	var b strings.Builder
	for g := range a.Done {
		fmt.Fprintf(&b, "g%d done=%v errs=%v\n", g, a.Done[g], a.Errs[g])
	}
	return b.String()
}

// Outage reports the victim-side shape of the timeline for one group: how
// many buckets served nothing (the outage window) and whether the group
// recovered (served again after its last empty bucket).
func (a *SlotAvailability) Outage(group int) (emptyBuckets int, recovered bool) {
	lastEmpty := -1
	for b, n := range a.Done[group] {
		if n == 0 {
			emptyBuckets++
			lastEmpty = b
		}
	}
	for b := lastEmpty + 1; b < len(a.Done[group]); b++ {
		if a.Done[group][b] > 0 {
			recovered = true
		}
	}
	return emptyBuckets, recovered && lastEmpty >= 0
}

// PerSlotFailoverResult is everything RunPerSlotFailover measured.
type PerSlotFailoverResult struct {
	C     *Cluster
	H     *Chaos
	Avail *SlotAvailability
	// Victim is the group whose master was crashed; Promoted the index of
	// the slave that took over.
	Victim   int
	Promoted int
}

// perSlotFailoverSpec pins the scenario's shape so two runs with the same
// seed are comparable (the determinism tests re-run it verbatim).
const (
	psfMasters     = 2
	psfSlaves      = 2 // per master
	psfClients     = 4
	psfPipeline    = 4
	psfVictim      = 1
	psfCrashAt     = 300 * sim.Millisecond
	psfRunFor      = 1500 * sim.Millisecond
	psfSettle      = 1 * sim.Second
	psfBucket      = 50 * sim.Millisecond
	psfProgressInt = 50 * sim.Millisecond
)

// RunPerSlotFailover builds a 2-group hash-slot deployment, crashes group
// 1's master mid-load, and returns the availability timeline plus the end
// state. The victim master is NOT restarted: the scenario ends with the
// promoted slave serving the group's slots (checked here), which is the
// steady state a real cluster runs in until an operator re-adds the node.
func RunPerSlotFailover(seed int64) (*PerSlotFailoverResult, error) {
	p := ChaosParams(0)
	c := Build(Config{
		Kind:     KindSKV,
		Cluster:  ClusterOpts{Masters: psfMasters, SlavesPerMaster: psfSlaves},
		Clients:  psfClients,
		Pipeline: psfPipeline,
		Seed:     seed,
		Params:   p,
		SKV:      core.Config{ProgressInterval: psfProgressInt},
	})
	if !c.AwaitReplication(2 * sim.Second) {
		return nil, fmt.Errorf("per-slot failover: initial replication did not complete")
	}
	h := NewChaos(c)
	h.Note("replication ready")
	c.StartClients()
	avail := SampleSlotAvailability(c, psfBucket)
	h.At(psfCrashAt, fmt.Sprintf("crash g%d master", psfVictim), func(c *Cluster) {
		c.Groups[psfVictim].Master.Crash()
	})
	c.Eng.RunFor(psfRunFor)
	avail.Stop()
	for _, cl := range c.Clients {
		cl.Stop()
	}
	h.Note("load stopped")
	c.Eng.RunFor(psfSettle)
	h.Note("settled")

	res := &PerSlotFailoverResult{C: c, H: h, Avail: avail, Victim: psfVictim, Promoted: -1}
	victim := c.Groups[psfVictim]
	for i, s := range victim.Slaves {
		if s.Alive() && s.Role() == server.RoleMaster {
			res.Promoted = i
		}
	}
	return res, res.check()
}

// check asserts the post-failover end state the ISSUE's acceptance criteria
// name; the availability-timeline assertions live in the tests so failures
// print the timeline.
func (r *PerSlotFailoverResult) check() error {
	var errs []string
	add := func(format string, a ...any) { errs = append(errs, fmt.Sprintf(format, a...)) }
	c := r.C
	victim := c.Groups[r.Victim]

	if r.Promoted < 0 {
		add("no slave of g%d was promoted to master", r.Victim)
	} else {
		promotedAddr := victim.SlaveMachines[r.Promoted].Host.Name()
		if got := c.SlotMap.Addr(r.Victim); got != promotedAddr {
			add("slot map points g%d at %q, want promoted slave %q", r.Victim, got, promotedAddr)
		}
	}
	if c.SlotMap.Epoch() <= 1 {
		add("slot map epoch %d never advanced past the initial epoch", c.SlotMap.Epoch())
	}
	// Survivor groups must still satisfy the full single-group invariants.
	for gi, g := range c.Groups {
		if gi == r.Victim {
			continue
		}
		for _, e := range checkGroupConvergence(g.Master, g.Slaves, g.SlaveAgents, g.NicKV) {
			add("g%d: %s", gi, e)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("per-slot failover: %s", strings.Join(errs, "; "))
}
