package cluster

import (
	"strings"
	"testing"

	"skv/internal/core"
	"skv/internal/metrics"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

// TestMetricsSnapshotsDeterministic runs the same measured SKV deployment
// twice: the full cross-node snapshot rendering must match byte for byte
// (the registry determinism contract — sim-clock stamps only, sorted
// rendering, no map-order or wall-time leakage).
func TestMetricsSnapshotsDeterministic(t *testing.T) {
	run := func() string {
		cfg := core.DefaultConfig()
		cfg.ProgressInterval = 50 * sim.Millisecond
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 2, Seed: 71,
			Params: fastProbeParams(), SKV: cfg})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatal("sync failed")
		}
		c.Measure(20*sim.Millisecond, 100*sim.Millisecond)
		return c.SnapshotsString()
	}
	s1, s2 := run(), run()
	if s1 != s2 {
		t.Fatalf("snapshots not deterministic:\n--- run1:\n%s--- run2:\n%s", s1, s2)
	}
	// The snapshot must actually cover every layer, not be trivially empty.
	for _, want := range []string{
		"node=fabric", "node=master", "node=slave0", "node=master/nic",
		"counter fabric.tx.msgs ", "counter rdma.wr.send ",
		"counter nickv.stream.sent ", "counter hostkv.repl_reqs ",
		"counter slaveagent.applied ", "counter server.cmd.set.calls ",
		"hist server.cmd.set.service ", "hist nickv.probe.rtt ",
	} {
		if !strings.Contains(s1, want) {
			t.Fatalf("snapshot missing %q:\n%s", want, s1)
		}
	}
}

// TestReplicationLagConverges drives writes through an SKV cluster, issues
// WAIT for full acknowledgement, and asserts the per-slave backlog-lag
// gauges on the NIC have converged to zero.
func TestReplicationLagConverges(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ProgressInterval = 50 * sim.Millisecond
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 1, Seed: 72,
		Params: fastProbeParams(), SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	c.Measure(10*sim.Millisecond, 50*sim.Millisecond)
	// Stop the load: the lag gauge can only converge to zero once the
	// stream quiesces and the slaves' progress reports catch up.
	for _, cl := range c.Clients {
		cl.Stop()
	}

	m := c.Net.NewMachine("waiter", false)
	proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, "waiter-core", 1.0), c.Params.ClientWakeup)
	stack := rconn.New(c.Net, m.Host, proc)
	var got *resp.Value
	stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		var r resp.Reader
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			if v, ok, _ := r.ReadValue(); ok {
				got = &v
			}
		})
		conn.Send(resp.EncodeCommand("WAIT", "2", "2000"))
	})
	c.Eng.Run(c.Eng.Now().Add(3 * sim.Second))
	if got == nil || got.Int != 2 {
		t.Fatalf("WAIT = %v, want :2", got)
	}

	snap := c.NicKV.Metrics().Snapshot()
	lags := 0
	for name, v := range snap.Gauges {
		if !strings.HasPrefix(name, "nickv.lag.") {
			continue
		}
		lags++
		if v != 0 {
			t.Errorf("gauge %s = %d after WAIT, want 0", name, v)
		}
	}
	if lags != 2 {
		t.Fatalf("lag gauges = %d, want one per slave (2); gauges: %v", lags, snap.Gauges)
	}
}

// TestFailoverTimelineOrdering crashes and restarts the master and checks
// the NIC's failover tracer recorded the §III-D chain in causal order with
// sane sim-clock stamps: probe-miss → mark-down(master) → promote →
// restore → demote.
func TestFailoverTimelineOrdering(t *testing.T) {
	var s Scenario
	for _, sc := range ChaosScenarios() {
		if sc.Name == "master-restart-split-brain" {
			s = sc
		}
	}
	if s.Name == "" {
		t.Fatal("master-restart scenario not found")
	}
	c, h, err := RunScenario(s)
	if err != nil {
		t.Fatalf("convergence failed:\n%v\ntrace:\n%s", err, h.TraceString())
	}
	tl := c.NicKV.Timeline()

	down, okDown := tl.First(metrics.EventMarkDown)
	promote, okPromote := tl.First(metrics.EventPromote)
	restore, okRestore := tl.First(metrics.EventRestore)
	demote, okDemote := tl.First(metrics.EventDemote)
	if !okDown || !okPromote || !okRestore || !okDemote {
		t.Fatalf("missing timeline events:\n%s", tl.String())
	}
	if down.Node != "master" {
		t.Fatalf("first mark-down is %q, want master:\n%s", down.Node, tl.String())
	}
	if miss, okMiss := tl.First(metrics.EventProbeMiss); !okMiss || miss.At > down.At {
		t.Fatalf("no probe-miss before mark-down:\n%s", tl.String())
	}
	if !(down.At <= promote.At && promote.At <= restore.At && restore.At <= demote.At) {
		t.Fatalf("events out of order:\n%s", tl.String())
	}
	if down.At <= 0 || demote.At >= c.Eng.Now() {
		t.Fatalf("timestamps out of range (now=%d):\n%s", int64(c.Eng.Now()), tl.String())
	}
	// The crash was scripted at 200ms and detection needs at least one
	// waiting-time (200ms): mark-down cannot plausibly precede 400ms-ish.
	if down.At < sim.Time(300*sim.Millisecond) {
		t.Fatalf("mark-down implausibly early at %v:\n%s", down.At, tl.String())
	}
	if promote.Node != demote.Node {
		t.Fatalf("promoted %q but demoted %q:\n%s", promote.Node, demote.Node, tl.String())
	}
}

// TestSKVMasterInfo asserts the live SKV master's INFO output: the
// Replication section reports master_repl_offset and one offset/lag line
// per slave (fed by Nic-KV's status frames), and the SKV section reports
// the offload counters.
func TestSKVMasterInfo(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ProgressInterval = 50 * sim.Millisecond
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 1, Seed: 73,
		Params: fastProbeParams(), SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	c.Measure(10*sim.Millisecond, 50*sim.Millisecond)
	c.Eng.Run(c.Eng.Now().Add(500 * sim.Millisecond))

	m := c.Net.NewMachine("infocli", false)
	proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, "infocli-core", 1.0), c.Params.ClientWakeup)
	stack := rconn.New(c.Net, m.Host, proc)
	var got *resp.Value
	stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		var r resp.Reader
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			if v, ok, _ := r.ReadValue(); ok {
				got = &v
			}
		})
		conn.Send(resp.EncodeCommand("INFO"))
	})
	c.Eng.Run(c.Eng.Now().Add(500 * sim.Millisecond))
	if got == nil || got.Type != resp.TypeBulk {
		t.Fatalf("INFO reply = %v", got)
	}
	body := got.String()
	for _, want := range []string{
		"# Replication", "role:master", "connected_slaves:2",
		"master_repl_offset:", "slave0:offset=", "slave1:offset=", ",lag=",
		"# SKV", "valid_slaves:2", "repl_reqs_sent:", "cmds_offloaded:",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("SKV master INFO missing %q:\n%s", want, body)
		}
	}
}
