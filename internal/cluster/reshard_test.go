package cluster

import (
	"testing"

	"skv/internal/core"
	"skv/internal/sim"
	"skv/internal/slots"
)

// TestReshardUnderLoad runs the live migration scenario: slots 0..255 move
// from g0 to g1 while slot-aware clients and the ledger writer keep the
// range hot. The invariant battery lives in ReshardResult.check (no lost
// acknowledged write, source drained, ownership flipped, groups converged);
// here we additionally pin that the ASK machinery actually fired — a
// migration nobody raced would pass check() without testing anything.
func TestReshardUnderLoad(t *testing.T) {
	r, err := RunReshardUnderLoad(42)
	if err != nil {
		if r != nil {
			t.Logf("trace:\n%s", r.H.TraceString())
			t.Logf("mover: moved=%d retries=%d compensations=%d slots=%d",
				r.M.KeysMoved, r.M.KeyRetries, r.M.Compensations, r.M.SlotsDone)
			t.Logf("ledger: acked=%d asked=%d moved=%d errs=%d",
				r.L.WritesAcked, r.L.Asked, r.L.Moved, r.L.Errs)
		}
		t.Fatal(err)
	}
	if r.M.SlotsDone != rshSlotEnd-rshSlotStart+1 {
		t.Errorf("mover flipped %d slots, want %d", r.M.SlotsDone, rshSlotEnd-rshSlotStart+1)
	}
	if r.L.Asked == 0 {
		t.Error("the ledger writer never got an ASK redirect — the migration window was never observed by a client")
	}
	var clientAsked, clientRefreshes uint64
	for _, cl := range r.C.Clients {
		st := cl.Stats()
		clientAsked += st.Asked
		clientRefreshes += st.MapRefreshes
	}
	if clientRefreshes == 0 {
		t.Error("no slot client ever refreshed its map — the final MOVED flip never reached the load")
	}
	t.Logf("mover: moved=%d retries=%d compensations=%d; ledger: acked=%d asked=%d moved=%d; clients: asked=%d refreshes=%d",
		r.M.KeysMoved, r.M.KeyRetries, r.M.Compensations, r.L.WritesAcked, r.L.Asked, r.L.Moved, clientAsked, clientRefreshes)
}

// TestReshardTraceDeterministic re-runs the identical scenario and demands
// byte-identical chaos traces and metric snapshots — the determinism
// contract the ISSUE's acceptance criteria names for the migration path.
func TestReshardTraceDeterministic(t *testing.T) {
	r1, err1 := RunReshardUnderLoad(42)
	r2, err2 := RunReshardUnderLoad(42)
	if err1 != nil || err2 != nil {
		t.Fatalf("scenario failed: %v / %v", err1, err2)
	}
	if r1.H.TraceString() != r2.H.TraceString() {
		t.Errorf("chaos traces diverged across identical reshard runs:\n--- run1:\n%s--- run2:\n%s",
			r1.H.TraceString(), r2.H.TraceString())
	}
	if r1.C.SnapshotsString() != r2.C.SnapshotsString() {
		t.Error("metric snapshots diverged across identical reshard runs")
	}
	if r1.M.KeysMoved != r2.M.KeysMoved || r1.L.WritesAcked != r2.L.WritesAcked {
		t.Errorf("mover/ledger counters diverged: moved %d vs %d, acked %d vs %d",
			r1.M.KeysMoved, r2.M.KeysMoved, r1.L.WritesAcked, r2.L.WritesAcked)
	}
}

// TestSlotClientRedirectSemantics is the client-side contract the tentpole
// fixes: an ASK is a one-shot detour that must NOT touch the client's slot
// map (the source still owns the slot), while a MOVED must refresh it. The
// test opens a migration window by hand — marks the slot, teleports its
// keys to the target — and counter-asserts MapRefreshes stays frozen while
// ASKs flow, then flips ownership and demands the refresh.
func TestSlotClientRedirectSemantics(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1},
		Clients: 2, Pipeline: 2, KeySpace: 200, GetRatio: 0.5,
		Seed: 91, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	c.StartClients()
	c.Eng.RunFor(150 * sim.Millisecond) // settle: bootstrap MOVEDs repair the maps

	sums := func() (asked, moved, refreshes uint64) {
		for _, cl := range c.Clients {
			st := cl.Stats()
			asked += st.Asked
			moved += st.Moved
			refreshes += st.MapRefreshes
		}
		return
	}
	asked0, moved0, refreshes0 := sums()
	if asked0 != 0 {
		t.Fatalf("%d ASKs before any migration window exists", asked0)
	}

	// Open a migration window on the slot of some live g0 key, moving every
	// key in the slot to g1 by hand (stores manipulated directly: this test
	// is about the client's reaction, not the mover's protocol; replication
	// is deliberately bypassed, so no convergence check below).
	src, tgt := c.Groups[0].Master.Store(), c.Groups[1].Master.Store()
	seed := src.KeysWhere(0, 1, func(string) bool { return true })
	if len(seed) == 0 {
		t.Fatal("no keys at g0 after the warm-up")
	}
	slot := slots.Slot([]byte(seed[0]))
	if c.SlotMap.Owner(slot) != 0 {
		t.Fatalf("slot %d not owned by g0", slot)
	}
	if err := c.SlotMap.SetImporting(slot, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.SlotMap.SetMigrating(slot, 1); err != nil {
		t.Fatal(err)
	}
	inSlot := func(k string) bool { return slots.Slot([]byte(k)) == slot }
	for _, k := range src.KeysWhere(0, 0, inSlot) {
		payload, ok := src.SerializedEntry(0, k)
		if !ok {
			continue
		}
		tgt.Exec(0, [][]byte{[]byte("restore"), []byte(k), payload})
		src.Exec(0, [][]byte{[]byte("del"), []byte(k)})
	}
	c.Eng.RunFor(150 * sim.Millisecond)

	asked1, _, refreshes1 := sums()
	if asked1 == 0 {
		t.Fatal("no client ever got an ASK inside the migration window")
	}
	if refreshes1 != refreshes0 {
		t.Fatalf("ASK redirects refreshed the slot map (%d -> %d refreshes) — ASK must be a one-shot detour",
			refreshes0, refreshes1)
	}

	// Flip ownership: now the same stale views must earn MOVED + a refresh.
	if err := c.SlotMap.Assign(slot, slot, 1); err != nil {
		t.Fatal(err)
	}
	c.Eng.RunFor(150 * sim.Millisecond)
	_, moved2, refreshes2 := sums()
	if moved2 == moved0 {
		t.Fatal("ownership flip produced no MOVED redirect")
	}
	if refreshes2 == refreshes1 {
		t.Fatal("a MOVED redirect did not refresh the slot map")
	}
	for _, cl := range c.Clients {
		cl.Stop()
	}
}
