package cluster

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGoldens regenerates the pinned chaos traces instead of comparing
// against them. Only rerun it when a change is *supposed* to alter the
// async-mode event schedule — the whole point of the pin is that refactors
// of the ack/consistency machinery must not.
var updateGoldens = flag.Bool("update-goldens", false, "rewrite testdata/chaos_trace_*.golden from the current build")

// TestChaosGoldenTraces pins every canned chaos scenario's trace, byte for
// byte, against goldens captured before the consistency-plane refactor
// (PR 9). The scenarios all run at the default WriteConsistency (async), so
// this is the contract that async mode stays bit-for-bit legacy: not just
// deterministic run-to-run, but identical to the pre-refactor build.
func TestChaosGoldenTraces(t *testing.T) {
	for _, s := range ChaosScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			_, h, err := RunScenario(s)
			if err != nil {
				t.Fatalf("scenario failed: %v\ntrace:\n%s", err, h.TraceString())
			}
			path := filepath.Join("testdata", "chaos_trace_"+s.Name+".golden")
			got := h.TraceString()
			if *updateGoldens {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run go test -run TestChaosGoldenTraces -args -update-goldens): %v", err)
			}
			if got != string(want) {
				t.Fatalf("trace diverged from pre-refactor golden %s:\n--- golden:\n%s--- got:\n%s", path, want, got)
			}
		})
	}
}
