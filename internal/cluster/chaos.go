// Chaos harness: scripted failure scenarios driven through the fabric fault
// plane (internal/fabric: partitions, loss, flapping endpoints) and the
// process crash/restart helpers below, with a deterministic timestamped
// trace. Every scenario ends with CheckConvergence, which asserts the SKV
// invariants §III-D is supposed to restore after any failure: exactly one
// master, no leftover promotion, every alive slave valid, synced, and at the
// master's replication offset.
package cluster

import (
	"fmt"
	"strings"

	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/server"
	"skv/internal/sim"
)

// TraceEntry is one recorded chaos event with a state snapshot taken right
// after it ran. Two runs of the same scenario with the same seed must
// produce identical traces (the harness's determinism contract).
type TraceEntry struct {
	At    sim.Time
	Label string
	State string
}

func (e TraceEntry) String() string {
	return fmt.Sprintf("%10.3fms  %-24s %s",
		float64(e.At)/float64(sim.Millisecond), e.Label, e.State)
}

// Chaos schedules scripted failures over a built cluster and records the
// trace. All At offsets are relative to the moment NewChaos was called
// (normally: right after initial replication completed).
type Chaos struct {
	C     *Cluster
	Trace []TraceEntry
	base  sim.Time
}

// NewChaos wraps a built cluster for scenario scripting.
func NewChaos(c *Cluster) *Chaos { return &Chaos{C: c, base: c.Eng.Now()} }

// Note appends a trace entry with the current state, without an action.
func (h *Chaos) Note(label string) {
	h.Trace = append(h.Trace, TraceEntry{At: h.C.Eng.Now(), Label: label, State: h.snapshot()})
}

// At schedules do at base+d and records it in the trace when it runs.
func (h *Chaos) At(d sim.Duration, label string, do func(c *Cluster)) {
	h.C.Eng.At(h.base.Add(d), func() {
		if do != nil {
			do(h.C)
		}
		h.Note(label)
	})
}

// TraceString renders the whole trace, one entry per line.
func (h *Chaos) TraceString() string {
	var b strings.Builder
	for _, e := range h.Trace {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// snapshot captures the failure-detector and replication state in one line:
// master validity, promotion, valid-slave count, failover/restore counters,
// roles (M=master role, s=slave role, x=crashed), and offsets. Multi-master
// deployments render one such block per group (g0{...} g1{...}) plus the
// slot map's epoch and current owner addresses; the single-master format is
// unchanged (chaos traces are a determinism oracle across refactors).
func (h *Chaos) snapshot() string {
	c := h.C
	if len(c.Groups) > 0 {
		var b strings.Builder
		for gi, g := range c.Groups {
			if gi > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "g%d{%s}", gi, groupSnapshot(g.Master, g.Slaves, g.SlaveAgents, g.NicKV))
		}
		fmt.Fprintf(&b, " ep=%d owners=[", c.SlotMap.Epoch())
		for gi := 0; gi < c.SlotMap.Groups(); gi++ {
			if gi > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(c.SlotMap.Addr(gi))
		}
		b.WriteByte(']')
		return b.String()
	}
	return groupSnapshot(c.Master, c.Slaves, c.SlaveAgents, c.NicKV)
}

// groupSnapshot renders one replication group's state (the legacy whole-
// cluster snapshot format).
func groupSnapshot(master *server.Server, slaves []*server.Server, agents []*core.SlaveAgent, nickv *core.NicKV) string {
	var b strings.Builder
	if nickv != nil {
		fmt.Fprintf(&b, "mv=%t prom=%q vs=%d fo=%d rst=%d ",
			nickv.MasterValid(), nickv.PromotedID(), nickv.ValidSlaves(),
			nickv.Failovers, nickv.MasterRestores)
	}
	role := func(s *server.Server) byte {
		if !s.Alive() {
			return 'x'
		}
		if s.Role() == server.RoleMaster {
			return 'M'
		}
		return 's'
	}
	roles := []byte{role(master)}
	for _, s := range slaves {
		roles = append(roles, role(s))
	}
	fmt.Fprintf(&b, "roles=%s moff=%d", roles, master.ReplOffset())
	if len(agents) > 0 {
		b.WriteString(" offs=[")
		for i, a := range agents {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", a.Offset())
			if !a.Synced() {
				b.WriteByte('*') // not in steady state
			}
		}
		b.WriteByte(']')
	}
	return b.String()
}

// ---- scheduling helpers -------------------------------------------------

// CrashMaster wedges the master process at base+d (endpoints stay up; peers
// observe silence — the failure mode §III-D's probes detect).
func (h *Chaos) CrashMaster(d sim.Duration) {
	h.At(d, "crash master", func(c *Cluster) { c.Master.Crash() })
}

// RestartMaster restarts the master process at base+d: its old connections
// die with it and Host-KV re-dials Nic-KV with a fresh master hello.
func (h *Chaos) RestartMaster(d sim.Duration) {
	h.At(d, "restart master", func(c *Cluster) { c.RestartMaster() })
}

// CrashSlave wedges slave i's process at base+d.
func (h *Chaos) CrashSlave(d sim.Duration, i int) {
	h.At(d, fmt.Sprintf("crash slave%d", i), func(c *Cluster) { c.Slaves[i].Crash() })
}

// RecoverSlave restarts slave i's process at base+d and resynchronizes.
func (h *Chaos) RecoverSlave(d sim.Duration, i int) {
	h.At(d, fmt.Sprintf("recover slave%d", i), func(c *Cluster) { c.RecoverSlave(i) })
}

// PartitionNicSlave cuts both directions between the SmartNIC and slave i's
// host at base+d.
func (h *Chaos) PartitionNicSlave(d sim.Duration, i int) {
	h.At(d, fmt.Sprintf("partition nic<->slave%d", i), func(c *Cluster) {
		c.Net.Faults().PartitionBoth(c.MasterMachine.NIC, c.SlaveMachines[i].Host)
	})
}

// HealNicSlave heals both directions between the SmartNIC and slave i's
// host at base+d; parked traffic flushes in order.
func (h *Chaos) HealNicSlave(d sim.Duration, i int) {
	h.At(d, fmt.Sprintf("heal nic<->slave%d", i), func(c *Cluster) {
		c.Net.Faults().HealBoth(c.MasterMachine.NIC, c.SlaveMachines[i].Host)
	})
}

// FlapSlave starts down/up cycles of slave i's host endpoint at base+d.
func (h *Chaos) FlapSlave(d sim.Duration, i int, downFor, upFor sim.Duration, cycles int) {
	h.At(d, fmt.Sprintf("flap slave%d", i), func(c *Cluster) {
		c.Net.Faults().FlapEndpoint(c.SlaveMachines[i].Host, downFor, upFor, cycles)
	})
}

// ---- cluster-level crash/restart helpers --------------------------------

// RecoverSlave restarts a crashed slave process. For SKV the agent forces a
// fresh synchronization (Fig 14's recovered node re-replicating from its
// offset); for the baselines Server.Recover re-runs SLAVEOF itself.
func (c *Cluster) RecoverSlave(i int) {
	c.Slaves[i].Recover()
	if c.Cfg.Kind == KindSKV && i < len(c.SlaveAgents) {
		c.SlaveAgents[i].Resync()
	}
}

// RestartMaster models a full master process restart, as opposed to
// Server.Recover alone (which models an un-wedged process whose connections
// survived): the dead process's Nic-KV control and payload connections are
// severed, the server restarts, and Host-KV re-announces itself to Nic-KV
// on a brand-new connection (msgMasterHello). This is the §III-D restore
// path — and the one that used to split-brain when a slave was promoted.
func (c *Cluster) RestartMaster() {
	if c.HostKV != nil {
		c.HostKV.SeverConnections()
	}
	c.Master.Recover()
	if c.HostKV != nil {
		c.HostKV.ReconnectNic()
	}
}

// CheckConvergence verifies the deployment settled back into the healthy
// SKV steady state. It returns nil when every invariant holds, or an error
// listing each violation. Multi-master deployments check every replication
// group independently, prefixing violations with the group (g0: ...).
func (c *Cluster) CheckConvergence() error {
	var errs []string
	if len(c.Groups) > 0 {
		for gi, g := range c.Groups {
			prefix := fmt.Sprintf("g%d: ", gi)
			for _, e := range checkGroupConvergence(g.Master, g.Slaves, g.SlaveAgents, g.NicKV) {
				errs = append(errs, prefix+e)
			}
		}
	} else {
		errs = checkGroupConvergence(c.Master, c.Slaves, c.SlaveAgents, c.NicKV)
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("not converged: %s", strings.Join(errs, "; "))
}

// checkGroupConvergence verifies one replication group's §III-D invariants:
// exactly one master, no leftover promotion, every alive slave valid,
// synced, at the master's offset, and holding the master's keyspace.
func checkGroupConvergence(master *server.Server, slaves []*server.Server, agents []*core.SlaveAgent, nickv *core.NicKV) []string {
	var errs []string
	add := func(format string, a ...any) { errs = append(errs, fmt.Sprintf(format, a...)) }

	masters := 0
	if master.Alive() && master.Role() == server.RoleMaster {
		masters++
	}
	for i, s := range slaves {
		if s.Alive() && s.Role() == server.RoleMaster {
			masters++
			add("slave%d is still in the master role", i)
		}
	}
	if masters != 1 {
		add("%d alive masters, want exactly 1", masters)
	}

	if nickv != nil {
		if !nickv.MasterValid() {
			add("Nic-KV considers the master invalid")
		}
		if p := nickv.PromotedID(); p != "" {
			add("Nic-KV still has %q promoted", p)
		}
		alive := 0
		for _, s := range slaves {
			if s.Alive() {
				alive++
			}
		}
		if v := nickv.ValidSlaves(); v != alive {
			add("Nic-KV sees %d valid slaves, want %d", v, alive)
		}
	}

	off := master.ReplOffset()
	for i, a := range agents {
		if !slaves[i].Alive() {
			continue
		}
		if !a.Synced() {
			add("slave%d is not in steady state", i)
			continue
		}
		if a.Offset() != off {
			add("slave%d offset %d != master offset %d", i, a.Offset(), off)
		}
	}

	want := master.Store().DBSize(0)
	for i, s := range slaves {
		if !s.Alive() {
			continue
		}
		if got := s.Store().DBSize(0); got != want {
			add("slave%d holds %d keys, master holds %d", i, got, want)
		}
	}
	return errs
}

// ---- scenarios ----------------------------------------------------------

// Scenario is one scripted failure sequence over a fresh SKV cluster.
type Scenario struct {
	Name    string
	Slaves  int
	Clients int
	Seed    int64
	// Masters/SlavesPerMaster build a multi-master deployment (see
	// Config.Masters); zero values keep the legacy single-master topology.
	Masters         int
	SlavesPerMaster int
	// Retry is the RC/TCP retransmission-timeout budget before a connection
	// errors out. 0 means 10s: links park traffic but never die (pure
	// probe-timeout scenarios). Short values force connection teardown and
	// re-establishment (flap scenarios).
	Retry  sim.Duration
	Script func(h *Chaos)
	// RunFor is the scripted horizon under client load; Settle is the quiet
	// period after load stops, before the convergence check.
	RunFor sim.Duration
	Settle sim.Duration
	// Tune, when non-nil, adjusts the model parameters after the chaos
	// profile is applied and before the cluster is built — the one hook for
	// running a scenario batched, sharded, or with any future knob, so new
	// knobs don't keep growing this struct.
	Tune func(*model.Params)
	// NicReads enables the NIC read path for the scenario (topology, not a
	// model parameter — see cluster.NicReadMode).
	NicReads NicReadMode
	// Tracking arms CLIENT TRACKING on the workload clients (Config.
	// Tracking); GetRatio shapes the load (Config.GetRatio — tracking
	// scenarios need reads to populate the caches). Zero values keep the
	// legacy pure-SET untracked load bit-for-bit.
	Tracking bool
	GetRatio float64
}

// ChaosParams compresses the failure-detection timescales (probe every
// 100ms, waiting-time 200ms — the cluster tests' fast profile) and installs
// the scenario's retry budget.
func ChaosParams(retry sim.Duration) *model.Params {
	p := model.Default()
	p.ProbePeriod = 100 * sim.Millisecond
	p.WaitingTime = 200 * sim.Millisecond
	if retry <= 0 {
		retry = 10 * sim.Second
	}
	p.RCRetryTimeout = retry
	p.TCPRetryTimeout = retry
	return &p
}

// RunScenario builds a fresh SKV cluster for the scenario, waits for
// initial replication, starts client load, runs the script, stops the load,
// settles, and checks convergence. The returned Chaos holds the trace.
func RunScenario(s Scenario) (*Cluster, *Chaos, error) {
	p := ChaosParams(s.Retry)
	if s.Tune != nil {
		s.Tune(p)
	}
	c := Build(Config{
		Kind:     KindSKV,
		Slaves:   s.Slaves,
		Clients:  s.Clients,
		Seed:     s.Seed,
		Params:   p,
		SKV:      core.Config{ProgressInterval: 50 * sim.Millisecond},
		NicReads: s.NicReads,
		Cluster:  ClusterOpts{Masters: s.Masters, SlavesPerMaster: s.SlavesPerMaster},
		Tracking: s.Tracking,
		GetRatio: s.GetRatio,
	})
	if !c.AwaitReplication(2 * sim.Second) {
		return c, nil, fmt.Errorf("%s: initial replication did not complete", s.Name)
	}
	h := NewChaos(c)
	h.Note("replication ready")
	c.StartClients()
	if s.Script != nil {
		s.Script(h)
	}
	c.Eng.RunFor(s.RunFor)
	for _, cl := range c.Clients {
		cl.Stop()
	}
	h.Note("load stopped")
	c.Eng.RunFor(s.Settle)
	h.Note("settled")
	return c, h, c.CheckConvergence()
}

// ChaosScenarios returns the canned failure scenarios the chaos tests (and
// examples/chaos) run. Each exercises a different §III-D path.
func ChaosScenarios() []Scenario {
	return []Scenario{
		// Master crash → probe timeout → failover; then a full master
		// restart: the recovered master reappears on a new connection and
		// the promoted slave must be demoted (the split-brain fix).
		{
			Name: "master-restart-split-brain", Slaves: 3, Clients: 1, Seed: 7,
			RunFor: 2 * sim.Second, Settle: 1500 * sim.Millisecond,
			Script: func(h *Chaos) {
				h.CrashMaster(200 * sim.Millisecond)
				h.RestartMaster(900 * sim.Millisecond)
			},
		},
		// Slave process crash → invalid flag → recovery → resync across the
		// missed stream (Fig 14's recovered-node path).
		{
			Name: "slave-crash-recover", Slaves: 3, Clients: 1, Seed: 11,
			RunFor: 2 * sim.Second, Settle: 1 * sim.Second,
			Script: func(h *Chaos) {
				h.CrashSlave(200*sim.Millisecond, 1)
				h.RecoverSlave(900*sim.Millisecond, 1)
			},
		},
		// Slave endpoint flaps: each down window outlasts both the
		// waiting-time (→ invalid) and the retry budget (→ connections
		// error out), so recovery exercises full re-dial + resync.
		{
			Name: "slave-flap-resync", Slaves: 3, Clients: 1, Seed: 13,
			Retry:  150 * sim.Millisecond,
			RunFor: 2500 * sim.Millisecond, Settle: 2 * sim.Second,
			Script: func(h *Chaos) {
				h.FlapSlave(200*sim.Millisecond, 1, 400*sim.Millisecond, 600*sim.Millisecond, 2)
			},
		},
		// NIC↔slave partition shorter than the retry budget: connections
		// survive, probes time out (invalid), the heal flushes parked
		// traffic in order and the probe-ack revalidates the slave.
		{
			Name: "nic-partition-probe-timeout", Slaves: 3, Clients: 1, Seed: 17,
			RunFor: 2 * sim.Second, Settle: 1500 * sim.Millisecond,
			Script: func(h *Chaos) {
				h.PartitionNicSlave(300*sim.Millisecond, 2)
				h.HealNicSlave(1100*sim.Millisecond, 2)
			},
		},
		// Lossy, spiky links under load: retransmission delay only — the
		// failure detector must NOT trip (no failovers), and replication
		// still converges.
		{
			Name: "lossy-links-under-load", Slaves: 3, Clients: 1, Seed: 23,
			RunFor: 1500 * sim.Millisecond, Settle: 1 * sim.Second,
			Script: func(h *Chaos) {
				h.At(100*sim.Millisecond, "loss 5% on slave links", func(c *Cluster) {
					f := c.Net.Faults()
					for _, m := range c.SlaveMachines {
						f.SetLossBoth(c.MasterMachine.NIC, m.Host, 0.05, 200*sim.Microsecond)
						f.SetDelay(c.MasterMachine.NIC, m.Host, 0, 0.02, 1*sim.Millisecond)
					}
				})
				h.At(1200*sim.Millisecond, "links clean again", func(c *Cluster) {
					f := c.Net.Faults()
					for _, m := range c.SlaveMachines {
						f.Clear(c.MasterMachine.NIC, m.Host)
						f.Clear(m.Host, c.MasterMachine.NIC)
					}
				})
			},
		},
	}
}
