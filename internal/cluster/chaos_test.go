package cluster

import (
	"testing"

	"skv/internal/core"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

// TestChaosScenarios runs every canned failure scenario twice: the first
// run must converge (and satisfy per-scenario expectations), and the second
// run must produce a byte-identical trace — the harness's determinism
// contract (same seed → same event sequence).
func TestChaosScenarios(t *testing.T) {
	for _, s := range ChaosScenarios() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c, h, err := RunScenario(s)
			if err != nil {
				t.Fatalf("convergence failed:\n%v\ntrace:\n%s", err, h.TraceString())
			}
			checkScenarioExpectations(t, s.Name, c, h)

			c2, h2, err2 := RunScenario(s)
			if err2 != nil {
				t.Fatalf("second run diverged in outcome: %v", err2)
			}
			if h.TraceString() != h2.TraceString() {
				t.Fatalf("trace not deterministic across identical runs:\n--- run1:\n%s--- run2:\n%s",
					h.TraceString(), h2.TraceString())
			}
			// The observability plane obeys the same determinism contract:
			// identical runs render identical metrics snapshots and failover
			// timelines, byte for byte.
			if s1, s2 := c.SnapshotsString(), c2.SnapshotsString(); s1 != s2 {
				t.Fatalf("metrics snapshots not deterministic:\n--- run1:\n%s--- run2:\n%s", s1, s2)
			}
			if t1, t2 := c.NicKV.Timeline().String(), c2.NicKV.Timeline().String(); t1 != t2 {
				t.Fatalf("failover timeline not deterministic:\n--- run1:\n%s--- run2:\n%s", t1, t2)
			}
		})
	}
}

// checkScenarioExpectations asserts the failure path each scenario is meant
// to exercise actually fired (convergence alone could hide a no-op script).
func checkScenarioExpectations(t *testing.T, name string, c *Cluster, h *Chaos) {
	t.Helper()
	switch name {
	case "master-restart-split-brain":
		if c.NicKV.Failovers == 0 {
			t.Error("master crash never triggered a failover")
		}
		if c.NicKV.MasterRestores == 0 {
			t.Error("master restart never triggered a restore")
		}
		if c.SlaveAgents[0].Promoted+c.SlaveAgents[1].Promoted+c.SlaveAgents[2].Promoted == 0 {
			t.Error("no slave was promoted")
		}
		if c.SlaveAgents[0].Demoted+c.SlaveAgents[1].Demoted+c.SlaveAgents[2].Demoted == 0 {
			t.Error("no slave was demoted after the master returned")
		}
	case "slave-crash-recover":
		if c.SlaveAgents[1].Resyncs == 0 {
			t.Error("recovered slave never resynchronized")
		}
		if c.NicKV.Failovers != 0 {
			t.Errorf("slave crash caused %d failovers", c.NicKV.Failovers)
		}
	case "slave-flap-resync":
		if c.SlaveAgents[1].Resyncs == 0 {
			t.Error("flapped slave never resynchronized")
		}
		if c.Net.Parked == 0 {
			t.Error("flap parked no traffic")
		}
	case "nic-partition-probe-timeout":
		if c.Net.Parked == 0 {
			t.Error("partition parked no traffic")
		}
		if c.NicKV.Failovers != 0 {
			t.Errorf("slave-side partition caused %d failovers", c.NicKV.Failovers)
		}
		sawInvalid := false
		for _, e := range h.Trace {
			if e.Label == "heal nic<->slave2" {
				sawInvalid = true
			}
		}
		if !sawInvalid {
			t.Error("heal event missing from trace")
		}
	case "lossy-links-under-load":
		if c.Net.Faults().Retransmits == 0 {
			t.Error("lossy links produced no retransmissions")
		}
		if c.NicKV.Failovers != 0 {
			t.Errorf("loss-induced delay tripped the failure detector (%d failovers)", c.NicKV.Failovers)
		}
		for i, cl := range c.Clients {
			if errs := cl.Stats().ErrReplies; errs != 0 {
				t.Errorf("client%d saw %d error replies under loss", i, errs)
			}
		}
	}
}

// TestWaitResolvesAfterSlaveFailure: a WAIT blocked on a replica that is
// then declared invalid must still resolve at its timeout, reporting the
// post-failure acknowledged count instead of hanging forever.
func TestWaitResolvesAfterSlaveFailure(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ProgressInterval = 50 * sim.Millisecond
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 1, Seed: 41,
		Params: ChaosParams(0), SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	// Kill slave0 before the write: it will never acknowledge the offset
	// the WAIT targets, and the probe detector declares it invalid while
	// the waiter is blocked.
	c.Slaves[0].Crash()

	m := c.Net.NewMachine("waiter", false)
	proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, "waiter-core", 1.0), c.Params.ClientWakeup)
	stack := rconn.New(c.Net, m.Host, proc)
	var waitReply *resp.Value
	var waitSent, replyAt sim.Time
	stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		var r resp.Reader
		sentWait := false
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			for {
				v, ok, _ := r.ReadValue()
				if !ok {
					return
				}
				if !sentWait {
					// First reply is the SET's +OK: now block on 2 replicas
					// with a 500ms timeout, while only one can ever ack.
					sentWait = true
					waitSent = c.Eng.Now()
					conn.Send(resp.EncodeCommand("WAIT", "2", "500"))
					continue
				}
				if waitReply == nil {
					vv := v
					waitReply = &vv
					replyAt = c.Eng.Now()
				}
			}
		})
		conn.Send(resp.EncodeCommand("SET", "wait-key", "wait-val"))
	})
	c.Eng.RunFor(3 * sim.Second)

	if waitReply == nil {
		t.Fatal("WAIT never replied after replica failure")
	}
	if waitReply.Type != resp.TypeInteger || waitReply.Int != 1 {
		t.Fatalf("WAIT after slave failure = %s, want :1 (the surviving replica)", waitReply.String())
	}
	if elapsed := replyAt.Sub(waitSent); elapsed < 450*sim.Millisecond {
		t.Fatalf("WAIT resolved after %v — expected to block until its 500ms timeout", elapsed)
	}
	if c.NicKV.ValidSlaves() != 1 {
		t.Fatalf("detector sees %d valid slaves, want 1", c.NicKV.ValidSlaves())
	}
}
