package cluster

import (
	"fmt"
	"testing"

	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

func batchParams(batch int) *model.Params {
	p := model.Default()
	p.ReplBatchMaxCmds = batch
	return &p
}

// TestSKVKeyspaceIdenticalAcrossBatchSizes runs the same scripted mixed
// workload on SKV clusters at batch sizes 1, 4 and 64 and requires the
// final keyspaces — master and every slave — to be logically identical.
// Batching may change when bytes travel, never what they say.
func TestSKVKeyspaceIdenticalAcrossBatchSizes(t *testing.T) {
	var ref map[string]string
	for _, batch := range []int{1, 4, 64} {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 0, Seed: 31,
			Params: batchParams(batch), SKV: core.DefaultConfig()})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("batch=%d: sync failed", batch)
		}
		randomWriter(t, c, 77, 2000)
		fp := fingerprint(c.Master.Store())
		if len(fp) == 0 {
			t.Fatalf("batch=%d: master keyspace empty", batch)
		}
		if ref == nil {
			ref = fp
		} else if len(fp) != len(ref) {
			t.Fatalf("batch=%d: master has %d keys, batch=1 had %d", batch, len(fp), len(ref))
		} else {
			for k, v := range ref {
				if fp[k] != v {
					t.Fatalf("batch=%d: master divergence at %s: %q vs %q", batch, k, fp[k], v)
				}
			}
		}
		for i := range c.Slaves {
			got := fingerprint(c.Slaves[i].Store())
			if len(got) != len(ref) {
				t.Fatalf("batch=%d: slave%d has %d keys, want %d", batch, i, len(got), len(ref))
			}
			for k, v := range ref {
				if got[k] != v {
					t.Fatalf("batch=%d: slave%d divergence at %s: %q vs %q", batch, i, k, got[k], v)
				}
			}
		}
	}
}

// TestSKVBatchingAmortizesWRs is the PR's headline number: with batching
// enabled on a 1-master/3-slave SET workload, the master posts FEWER
// replication work requests than it propagates writes — while every write
// still reaches Nic-KV (CmdsOffloaded accounts for all of them) and
// throughput does not regress against the unbatched run.
func TestSKVBatchingAmortizesWRs(t *testing.T) {
	run := func(batch int) (*Cluster, Result) {
		c := Build(Config{Kind: KindSKV, Slaves: 3, Clients: 4, Seed: 91,
			Pipeline: 8, Params: batchParams(batch), SKV: core.DefaultConfig()})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("batch=%d: sync failed", batch)
		}
		res := c.Measure(20*sim.Millisecond, 200*sim.Millisecond)
		c.Eng.Run(c.Eng.Now().Add(200 * sim.Millisecond))
		return c, res
	}

	c1, res1 := run(1)
	if c1.HostKV.ReplReqsSent != c1.Master.WritesPropagated {
		t.Fatalf("batch=1 must stay 1:1 — %d WRs for %d writes",
			c1.HostKV.ReplReqsSent, c1.Master.WritesPropagated)
	}

	c4, res4 := run(4)
	if c4.Master.WritesPropagated == 0 {
		t.Fatal("batch=4: no writes propagated")
	}
	if c4.HostKV.ReplReqsSent >= c4.Master.WritesPropagated {
		t.Fatalf("batching bought nothing: %d WRs for %d writes",
			c4.HostKV.ReplReqsSent, c4.Master.WritesPropagated)
	}
	// Every propagated write (plus any injected SELECTs, none here: single
	// db) must still be offloaded — batching drops nothing.
	if c4.HostKV.CmdsOffloaded != c4.Master.WritesPropagated {
		t.Fatalf("offloaded %d commands for %d writes", c4.HostKV.CmdsOffloaded, c4.Master.WritesPropagated)
	}
	if c4.NicKV.ReplCmds != c4.NicKV.ReplRequests &&
		c4.NicKV.ReplCmds < c4.NicKV.ReplRequests {
		t.Fatalf("Nic-KV cmd accounting broken: %d cmds in %d requests",
			c4.NicKV.ReplCmds, c4.NicKV.ReplRequests)
	}
	if res4.Throughput < res1.Throughput {
		t.Fatalf("batching regressed throughput: %.0f ops/s vs %.0f unbatched",
			res4.Throughput, res1.Throughput)
	}
	// Slaves converge despite the coalesced frames.
	keys := c4.Master.Store().DBSize(0)
	for i := range c4.Slaves {
		if got := c4.Slaves[i].Store().DBSize(0); got != keys {
			t.Errorf("batch=4: slave%d has %d keys, master %d", i, got, keys)
		}
	}
}

// TestWaitCommandAcrossBatchSizes checks WAIT semantics survive batching:
// the acknowledged-replica count still reaches the requested quorum, at
// every batch size, because partial batches flush on event-loop quiesce
// (WAIT never deadlocks on bytes parked in a pending batch).
func TestWaitCommandAcrossBatchSizes(t *testing.T) {
	for _, batch := range []int{1, 4, 64} {
		cfg := core.DefaultConfig()
		cfg.ProgressInterval = 50 * sim.Millisecond
		p := batchParams(batch)
		p.ProbePeriod = 100 * sim.Millisecond
		p.WaitingTime = 200 * sim.Millisecond
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 1, Seed: 34,
			Params: p, SKV: cfg})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("batch=%d: sync failed", batch)
		}
		c.Measure(10*sim.Millisecond, 50*sim.Millisecond)
		m := c.Net.NewMachine("waiter", false)
		proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, "waiter-core", 1.0), c.Params.ClientWakeup)
		stack := rconn.New(c.Net, m.Host, proc)
		var got *resp.Value
		stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			var r resp.Reader
			conn.SetHandler(func(data []byte) {
				r.Feed(data)
				if v, ok, _ := r.ReadValue(); ok {
					got = &v
				}
			})
			conn.Send(resp.EncodeCommand("WAIT", "2", "2000"))
		})
		c.Eng.Run(c.Eng.Now().Add(3 * sim.Second))
		if got == nil {
			t.Fatalf("batch=%d: WAIT never replied", batch)
		}
		if got.Type != resp.TypeInteger || got.Int != 2 {
			t.Fatalf("batch=%d: WAIT = %s, want :2", batch, got.String())
		}
	}
}

// TestChaosScenariosBatched re-runs the PR-1 failure scenarios with the
// replication stream batched at 4 and 64 commands: every scenario must
// still converge (single master, no promoted leftovers, identical
// keyspaces), and a repeated batched run must reproduce its trace exactly —
// batching must not break the determinism contract.
func TestChaosScenariosBatched(t *testing.T) {
	for _, batch := range []int{4, 64} {
		for _, s := range ChaosScenarios() {
			s := s
			batch := batch
			s.Tune = func(p *model.Params) { p.ReplBatchMaxCmds = batch }
			t.Run(fmt.Sprintf("%s/batch%d", s.Name, batch), func(t *testing.T) {
				c, h, err := RunScenario(s)
				if err != nil {
					t.Fatalf("convergence failed:\n%v\ntrace:\n%s", err, h.TraceString())
				}
				if batch == 4 && s.Name == "slave-crash-recover" {
					if c.SlaveAgents[1].Resyncs == 0 {
						t.Error("recovered slave never resynchronized")
					}
					_, h2, err2 := RunScenario(s)
					if err2 != nil {
						t.Fatalf("second run diverged in outcome: %v", err2)
					}
					if h.TraceString() != h2.TraceString() {
						t.Fatal("batched trace not deterministic across identical runs")
					}
				}
			})
		}
	}
}
