package cluster

import (
	"errors"
	"testing"

	"skv/internal/consistency"
	"skv/internal/core"
)

// TestConsistencyConfigValidate is the negative table for the consistency
// plane's Config surface: every meaningless combination is rejected with
// its typed sentinel (matchable via errors.Is), and the sensible ones pass.
func TestConsistencyConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want error // nil = must validate clean; non-nil = errors.Is target
		bad  bool  // must fail, no specific sentinel
	}{
		{
			name: "quorum larger than the slave count",
			cfg:  Config{Slaves: 2, Consistency: ConsistencyOpts{Level: consistency.Quorum, Quorum: 3}},
			want: ErrQuorumTooLarge,
		},
		{
			name: "quorum equal to the slave count is fine",
			cfg:  Config{Slaves: 2, Consistency: ConsistencyOpts{Level: consistency.Quorum, Quorum: 2}},
		},
		{
			name: "quorum on a slave-less topology",
			cfg:  Config{Consistency: ConsistencyOpts{Level: consistency.Quorum, Quorum: 1}},
			want: ErrQuorumNoSlaves,
		},
		{
			name: "all on a slave-less topology",
			cfg:  Config{Consistency: ConsistencyOpts{Level: consistency.All}},
			want: ErrQuorumNoSlaves,
		},
		{
			name: "quorum against per-group replicas on a multi-master deployment",
			cfg: Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 3, SlavesPerMaster: 1},
				Consistency: ConsistencyOpts{Level: consistency.Quorum, Quorum: 2}},
			want: ErrQuorumTooLarge,
		},
		{
			name: "multi-master quorum within the group size is fine",
			cfg: Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 3, SlavesPerMaster: 2},
				Consistency: ConsistencyOpts{Level: consistency.Quorum, Quorum: 2}},
		},
		{
			name: "W set while the level is async",
			cfg:  Config{Slaves: 2, Consistency: ConsistencyOpts{Quorum: 1}},
			want: ErrQuorumWithoutLevel,
		},
		{
			name: "W set while the level is all",
			cfg:  Config{Slaves: 2, Consistency: ConsistencyOpts{Level: consistency.All, Quorum: 1}},
			want: ErrQuorumWithoutLevel,
		},
		{
			name: "negative W",
			cfg:  Config{Slaves: 2, Consistency: ConsistencyOpts{Level: consistency.Quorum, Quorum: -1}},
			bad:  true,
		},
		{
			name: "SKV.WriteConsistency set directly instead of the cluster field",
			cfg:  Config{Kind: KindSKV, Slaves: 1, SKV: core.Config{WriteConsistency: consistency.All}},
			bad:  true,
		},
		{
			name: "all with slaves needs no W",
			cfg:  Config{Slaves: 3, Consistency: ConsistencyOpts{Level: consistency.All}},
		},
		{
			name: "async legacy zero value",
			cfg:  Config{Slaves: 2},
		},
		{
			name: "tracking with a cache bound is fine",
			cfg:  Config{Slaves: 1, Tracking: true, CacheSize: 256},
		},
		{
			name: "cache bound without tracking",
			cfg:  Config{Slaves: 1, CacheSize: 256},
			bad:  true,
		},
		{
			name: "negative cache bound",
			cfg:  Config{Slaves: 1, Tracking: true, CacheSize: -1},
			bad:  true,
		},
	} {
		err := tc.cfg.Validate()
		switch {
		case tc.want != nil:
			if !errors.Is(err, tc.want) {
				t.Errorf("%s: err = %v, want errors.Is(%v)", tc.name, err, tc.want)
			}
		case tc.bad:
			if err == nil {
				t.Errorf("%s: validated clean, want an error", tc.name)
			}
		default:
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
		}
	}
	// The sentinels are distinct — a sweep can branch on exactly one.
	if errors.Is(ErrQuorumTooLarge, ErrQuorumNoSlaves) || errors.Is(ErrQuorumNoSlaves, ErrQuorumWithoutLevel) {
		t.Fatal("consistency sentinels alias each other")
	}
}
