package cluster

import (
	"errors"
	"testing"

	"skv/internal/consistency"
	"skv/internal/core"
)

// TestConsistencyConfigValidate is the negative table for the consistency
// plane's Config surface: every meaningless combination is rejected with
// its typed sentinel (matchable via errors.Is), and the sensible ones pass.
func TestConsistencyConfigValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want error // nil = must validate clean; non-nil = errors.Is target
		bad  bool  // must fail, no specific sentinel
	}{
		{
			name: "quorum larger than the slave count",
			cfg:  Config{Slaves: 2, WriteConsistency: consistency.Quorum, WriteQuorum: 3},
			want: ErrQuorumTooLarge,
		},
		{
			name: "quorum equal to the slave count is fine",
			cfg:  Config{Slaves: 2, WriteConsistency: consistency.Quorum, WriteQuorum: 2},
		},
		{
			name: "quorum on a slave-less topology",
			cfg:  Config{WriteConsistency: consistency.Quorum, WriteQuorum: 1},
			want: ErrQuorumNoSlaves,
		},
		{
			name: "all on a slave-less topology",
			cfg:  Config{WriteConsistency: consistency.All},
			want: ErrQuorumNoSlaves,
		},
		{
			name: "quorum against per-group replicas on a multi-master deployment",
			cfg: Config{Kind: KindSKV, Masters: 3, SlavesPerMaster: 1,
				WriteConsistency: consistency.Quorum, WriteQuorum: 2},
			want: ErrQuorumTooLarge,
		},
		{
			name: "multi-master quorum within the group size is fine",
			cfg: Config{Kind: KindSKV, Masters: 3, SlavesPerMaster: 2,
				WriteConsistency: consistency.Quorum, WriteQuorum: 2},
		},
		{
			name: "W set while the level is async",
			cfg:  Config{Slaves: 2, WriteQuorum: 1},
			want: ErrQuorumWithoutLevel,
		},
		{
			name: "W set while the level is all",
			cfg:  Config{Slaves: 2, WriteConsistency: consistency.All, WriteQuorum: 1},
			want: ErrQuorumWithoutLevel,
		},
		{
			name: "negative W",
			cfg:  Config{Slaves: 2, WriteConsistency: consistency.Quorum, WriteQuorum: -1},
			bad:  true,
		},
		{
			name: "SKV.WriteConsistency set directly instead of the cluster field",
			cfg:  Config{Kind: KindSKV, Slaves: 1, SKV: core.Config{WriteConsistency: consistency.All}},
			bad:  true,
		},
		{
			name: "all with slaves needs no W",
			cfg:  Config{Slaves: 3, WriteConsistency: consistency.All},
		},
		{
			name: "async legacy zero value",
			cfg:  Config{Slaves: 2},
		},
	} {
		err := tc.cfg.Validate()
		switch {
		case tc.want != nil:
			if !errors.Is(err, tc.want) {
				t.Errorf("%s: err = %v, want errors.Is(%v)", tc.name, err, tc.want)
			}
		case tc.bad:
			if err == nil {
				t.Errorf("%s: validated clean, want an error", tc.name)
			}
		default:
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
		}
	}
	// The sentinels are distinct — a sweep can branch on exactly one.
	if errors.Is(ErrQuorumTooLarge, ErrQuorumNoSlaves) || errors.Is(ErrQuorumNoSlaves, ErrQuorumWithoutLevel) {
		t.Fatal("consistency sentinels alias each other")
	}
}
