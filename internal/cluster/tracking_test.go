package cluster

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"skv/internal/core"
	"skv/internal/fabric"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/server"
	"skv/internal/sim"
	"skv/internal/slots"
	"skv/internal/store"
	"skv/internal/tcpsim"
	"skv/internal/transport"
)

// ---- helpers ------------------------------------------------------------

// rawClient is a hand-driven connection for protocol-level tests: it
// collects every RESP value the peer sends.
type rawClient struct {
	conn transport.Conn
	vals []resp.Value
}

// dialRaw connects to ep:port with the deployment's client transport.
func dialRaw(t *testing.T, c *Cluster, name string, ep *fabric.Endpoint, port int) *rawClient {
	t.Helper()
	m := c.Net.NewMachine(name, false)
	proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, name+"-core", 1.0), c.Params.ClientWakeup)
	var stack transport.Stack
	if c.Cfg.Kind == KindTCP {
		stack = tcpsim.New(c.Net, m.Host, proc)
	} else {
		stack = rconn.New(c.Net, m.Host, proc)
	}
	rc := &rawClient{}
	stack.Dial(ep, port, func(conn transport.Conn, err error) {
		if err != nil {
			t.Errorf("%s: dial failed: %v", name, err)
			return
		}
		rc.conn = conn
		var r resp.Reader
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			for {
				v, ok, _ := r.ReadValue()
				if !ok {
					break
				}
				rc.vals = append(rc.vals, v)
			}
		})
	})
	c.Eng.RunFor(20 * sim.Millisecond)
	if rc.conn == nil {
		t.Fatalf("%s: never connected", name)
	}
	return rc
}

// storeVal reads one string key straight from a store, decoded.
func storeVal(t *testing.T, s *store.Store, key string) (string, bool) {
	t.Helper()
	reply, _ := s.Exec(0, [][]byte{[]byte("GET"), []byte(key)})
	var r resp.Reader
	r.Feed(reply)
	v, ok, err := r.ReadValue()
	if err != nil || !ok {
		t.Fatalf("undecodable GET reply for %q: %q", key, reply)
	}
	if v.Null || v.Type != resp.TypeBulk {
		return "", false
	}
	return string(v.Str), true
}

// aliveMaster finds the server currently holding the master role in one
// replication group (after a failover it may be a promoted slave).
func aliveMaster(t *testing.T, label string, master *server.Server, slaves []*server.Server) *server.Server {
	t.Helper()
	if master.Alive() && master.Role() == server.RoleMaster {
		return master
	}
	for _, s := range slaves {
		if s.Alive() && s.Role() == server.RoleMaster {
			return s
		}
	}
	t.Fatalf("%s: no alive master", label)
	return nil
}

// ownerStore resolves the authoritative store for a key: the owning
// group's current master in a hash-slot deployment, the (possibly
// promoted) master otherwise.
func ownerStore(t *testing.T, c *Cluster, key string) *store.Store {
	t.Helper()
	if len(c.Groups) > 0 {
		g := c.Groups[c.SlotMap.Owner(slots.Slot([]byte(key)))]
		return aliveMaster(t, fmt.Sprintf("g%d", g.Index), g.Master, g.Slaves).Store()
	}
	return aliveMaster(t, "cluster", c.Master, c.Slaves).Store()
}

// requireCachesCoherent is the staleness oracle: at quiesce, every entry a
// tracked client still caches must be byte-equal to the value the key's
// authoritative owner currently serves. A mismatch — or a cached key the
// owner no longer holds — is a stale locally-served read that survived.
// Returns the aggregate tracking counters for signal assertions.
func requireCachesCoherent(t *testing.T, label string, c *Cluster) (hits, invals uint64, entries int) {
	t.Helper()
	var errReplies uint64
	for _, cl := range c.Clients {
		st := cl.Stats()
		hits += st.Hits
		invals += st.Invalidations
		errReplies += st.ErrReplies
		for k, v := range cl.CacheEntries() {
			want, okV := storeVal(t, ownerStore(t, c, k), k)
			if !okV {
				t.Fatalf("%s: %s caches %q=%q but the owner no longer holds the key",
					label, cl.Name(), k, v)
			}
			if want != v {
				t.Fatalf("%s: stale cache entry on %s: %q=%q, owner serves %q",
					label, cl.Name(), k, v, want)
			}
			entries++
		}
	}
	if errReplies != 0 {
		t.Fatalf("%s: %d error replies leaked to tracked clients", label, errReplies)
	}
	return hits, invals, entries
}

// runTracked drives a built cluster's workload clients and settles.
func runTracked(t *testing.T, c *Cluster, load, settle sim.Duration) {
	t.Helper()
	if c.Cfg.Kind == KindSKV && !c.AwaitReplication(2*sim.Second) {
		t.Fatal("initial replication did not complete")
	}
	c.StartClients()
	c.Eng.RunFor(load)
	for _, cl := range c.Clients {
		cl.Stop()
	}
	c.Eng.RunFor(settle)
}

// ---- end-to-end smoke across deployment kinds ---------------------------

// TestTrackingSmokeInBand: on the baselines, CLIENT TRACKING is served
// entirely by the host (interest table + RESP3 pushes on the data
// connection). A mixed Zipfian load across three clients must produce
// cache hits, cross-client invalidations, no errors, and a coherent cache.
func TestTrackingSmokeInBand(t *testing.T) {
	for _, kind := range []Kind{KindTCP, KindRDMA} {
		c := Build(Config{Kind: kind, Slaves: 0, Clients: 3, Seed: 41,
			KeySpace: 300, GetRatio: 0.8, Zipf: true, Tracking: true})
		runTracked(t, c, 250*sim.Millisecond, 100*sim.Millisecond)
		hits, invals, entries := requireCachesCoherent(t, kind.String(), c)
		if hits == 0 {
			t.Fatalf("%s: no tracked GET was ever served locally", kind)
		}
		if invals == 0 {
			t.Fatalf("%s: no invalidation push was ever applied", kind)
		}
		if entries == 0 {
			t.Fatalf("%s: caches empty at quiesce", kind)
		}
		if c.Master.TrackingSubscribers() != 3 {
			t.Fatalf("%s: %d in-band subscribers, want 3", kind, c.Master.TrackingSubscribers())
		}
	}
}

// TestTrackingSmokeSKVRedirect: on SKV the interest table lives on the
// SmartNIC — the host only forwards interest, and invalidation pushes are
// generated on the NIC's replication fan-out path and delivered over the
// out-of-band subscription channel. The host-side table must stay empty.
func TestTrackingSmokeSKVRedirect(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 1, Clients: 3, Seed: 43,
		KeySpace: 300, GetRatio: 0.8, Zipf: true, Tracking: true,
		SKV: core.DefaultConfig()})
	runTracked(t, c, 250*sim.Millisecond, 100*sim.Millisecond)
	hits, invals, entries := requireCachesCoherent(t, "skv-redirect", c)
	if hits == 0 || invals == 0 || entries == 0 {
		t.Fatalf("tracking plane inert: hits=%d invals=%d entries=%d", hits, invals, entries)
	}
	if c.Master.TrackingLen() != 0 || c.Master.TrackingSubscribers() != 0 {
		t.Fatalf("redirect mode left interest on the host: keys=%d subs=%d",
			c.Master.TrackingLen(), c.Master.TrackingSubscribers())
	}
	if c.NicKV.TrackingSubscribers() != 3 {
		t.Fatalf("NIC holds %d subscribers, want 3", c.NicKV.TrackingSubscribers())
	}
	if c.NicKV.InvalidationsPushed == 0 {
		t.Fatal("NIC pushed no invalidations — pushes did not ride the fan-out path")
	}
}

// TestTrackingSmokeNicServedReads: with NicReads=clients the tracked GETs
// are served by the ARM cores and the interest table + pushes never touch
// the host at all. Clients are read-only (the NIC rejects writes); a
// host-connected writer seeds and then overwrites keys, and the overwrite
// must invalidate every NIC-side cache through the in-band RESP3 pushes.
func TestTrackingSmokeNicServedReads(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 1, Clients: 2, Seed: 47,
		KeySpace: 100, GetRatio: 1, Zipf: true, Tracking: true,
		NicReads: NicReadsClients, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("initial replication did not complete")
	}
	w := dialRaw(t, c, "seed-writer", c.MasterMachine.Host, core.ClientPort)
	key := func(i int) string { return fmt.Sprintf("key:%010d", i) }
	for i := 0; i < 100; i++ {
		w.conn.Send(resp.EncodeCommand("SET", key(i), fmt.Sprintf("seed%d", i)))
	}
	c.Eng.RunFor(100 * sim.Millisecond) // replicate into the NIC replica

	c.StartClients()
	c.Eng.RunFor(150 * sim.Millisecond) // caches fill from ARM-served GETs
	for i := 0; i < 20; i++ {
		w.conn.Send(resp.EncodeCommand("SET", key(i), fmt.Sprintf("new%d", i)))
	}
	c.Eng.RunFor(100 * sim.Millisecond)
	for _, cl := range c.Clients {
		cl.Stop()
	}
	c.Eng.RunFor(100 * sim.Millisecond)

	hits, invals, entries := requireCachesCoherent(t, "nic-clients", c)
	if hits == 0 || entries == 0 {
		t.Fatalf("NIC-served tracking inert: hits=%d entries=%d", hits, entries)
	}
	if invals == 0 {
		t.Fatal("overwrites through the host never invalidated the NIC-side caches")
	}
	if c.NicKV.InvalidationsPushed == 0 {
		t.Fatal("NIC invalidation counter never moved")
	}
	if c.Master.TrackingLen() != 0 {
		t.Fatalf("host recorded %d tracked keys in NIC-clients mode", c.Master.TrackingLen())
	}
}

// ---- satellite: interest dropped on disconnect --------------------------

// TestTrackingInterestDroppedOnDisconnectInBand is the churn regression:
// a client that negotiates tracking, records interest and disconnects must
// leave the host's interest table empty.
func TestTrackingInterestDroppedOnDisconnectInBand(t *testing.T) {
	c := Build(Config{Kind: KindTCP, Clients: 0, Seed: 51})
	rc := dialRaw(t, c, "churn", c.MasterMachine.Host, core.ClientPort)
	rc.conn.Send(resp.EncodeCommand("client", "tracking", "on"))
	rc.conn.Send(resp.EncodeCommand("GET", "a"))
	rc.conn.Send(resp.EncodeCommand("GET", "b"))
	c.Eng.RunFor(20 * sim.Millisecond)
	if len(rc.vals) == 0 || rc.vals[0].IsError() {
		t.Fatalf("tracking handshake failed: %v", rc.vals)
	}
	if got := c.Master.TrackingLen(); got != 2 {
		t.Fatalf("interest table holds %d keys, want 2", got)
	}
	if got := c.Master.TrackingSubscribers(); got != 1 {
		t.Fatalf("%d subscribers, want 1", got)
	}
	rc.conn.Close()
	c.Eng.RunFor(20 * sim.Millisecond)
	if keys, subs := c.Master.TrackingLen(), c.Master.TrackingSubscribers(); keys != 0 || subs != 0 {
		t.Fatalf("disconnect leaked interest: keys=%d subs=%d", keys, subs)
	}
}

// TestTrackingInterestDroppedOnDisconnectRedirect covers both teardown
// paths of the offloaded plane: the data connection's close must forward
// a drop to the NIC, and the subscription channel's own close must drop
// the subscriber from the accept loop.
func TestTrackingInterestDroppedOnDisconnectRedirect(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 1, Clients: 0, Seed: 53, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}

	// Arm the subscription channel first (the workload client does the same).
	sub := dialRaw(t, c, "churn-sub", c.MasterMachine.NIC, core.NicPort)
	sub.conn.Send(core.EncodeTrackHello("churn"))
	c.Eng.RunFor(20 * sim.Millisecond)
	if got := c.NicKV.TrackingSubscribers(); got != 1 {
		t.Fatalf("NIC holds %d subscribers after hello, want 1", got)
	}

	data := dialRaw(t, c, "churn-data", c.MasterMachine.Host, core.ClientPort)
	data.conn.Send(resp.EncodeCommand("client", "tracking", "on", "redirect", "churn"))
	data.conn.Send(resp.EncodeCommand("GET", "a"))
	data.conn.Send(resp.EncodeCommand("GET", "b"))
	c.Eng.RunFor(20 * sim.Millisecond)
	if got := c.NicKV.TrackingLen(); got != 2 {
		t.Fatalf("NIC interest table holds %d keys, want 2", got)
	}
	if got := c.Master.TrackingLen(); got != 0 {
		t.Fatalf("redirect mode recorded %d keys on the host", got)
	}

	// Path 1: the data connection dies → the server forwards a drop.
	data.conn.Close()
	c.Eng.RunFor(20 * sim.Millisecond)
	if keys, subs := c.NicKV.TrackingLen(), c.NicKV.TrackingSubscribers(); keys != 0 || subs != 0 {
		t.Fatalf("data-conn close leaked NIC interest: keys=%d subs=%d", keys, subs)
	}

	// Path 2: a fresh subscriber whose push channel itself dies.
	sub2 := dialRaw(t, c, "churn-sub2", c.MasterMachine.NIC, core.NicPort)
	sub2.conn.Send(core.EncodeTrackHello("churn2"))
	c.Eng.RunFor(20 * sim.Millisecond)
	if got := c.NicKV.TrackingSubscribers(); got != 1 {
		t.Fatalf("NIC holds %d subscribers after re-hello, want 1", got)
	}
	sub2.conn.Close()
	c.Eng.RunFor(20 * sim.Millisecond)
	if got := c.NicKV.TrackingSubscribers(); got != 0 {
		t.Fatalf("push-channel close leaked %d subscribers", got)
	}
}

// TestTrackingInterestDroppedOnDisconnectNicServed: same regression on the
// NIC-served read path, where the interest table and the data connection
// both live on the SmartNIC.
func TestTrackingInterestDroppedOnDisconnectNicServed(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 1, Clients: 0, Seed: 57,
		NicReads: NicReadsClients, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	rc := dialRaw(t, c, "churn-nic", c.MasterMachine.NIC, core.ClientPort)
	rc.conn.Send(resp.EncodeCommand("client", "tracking", "on"))
	rc.conn.Send(resp.EncodeCommand("GET", "a"))
	rc.conn.Send(resp.EncodeCommand("GET", "b"))
	c.Eng.RunFor(20 * sim.Millisecond)
	if len(rc.vals) == 0 || rc.vals[0].IsError() {
		t.Fatalf("NIC tracking handshake failed: %v", rc.vals)
	}
	if keys, subs := c.NicKV.TrackingLen(), c.NicKV.TrackingSubscribers(); keys != 2 || subs != 1 {
		t.Fatalf("NIC tracking state keys=%d subs=%d, want 2/1", keys, subs)
	}
	rc.conn.Close()
	c.Eng.RunFor(20 * sim.Millisecond)
	if keys, subs := c.NicKV.TrackingLen(), c.NicKV.TrackingSubscribers(); keys != 0 || subs != 0 {
		t.Fatalf("NIC-served disconnect leaked interest: keys=%d subs=%d", keys, subs)
	}
}

// ---- satellite: cache/keyspace equality across layouts ------------------

// TestTrackingCacheCoherentAcrossShards: the sharded execution pipeline
// must not reorder a write's merge against its invalidation push in any
// way a client could observe — after a mixed Zipfian run at 1, 2 and 4
// host shards every surviving cache entry equals the master's value.
func TestTrackingCacheCoherentAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		c := Build(Config{Kind: KindSKV, Slaves: 1, Clients: 2, Seed: 61,
			KeySpace: 400, GetRatio: 0.7, Zipf: true, Tracking: true,
			Params: shardParams(shards), SKV: core.DefaultConfig()})
		runTracked(t, c, 250*sim.Millisecond, 150*sim.Millisecond)
		label := fmt.Sprintf("shards=%d", shards)
		hits, invals, _ := requireCachesCoherent(t, label, c)
		if hits == 0 || invals == 0 {
			t.Fatalf("%s: tracking inert: hits=%d invals=%d", label, hits, invals)
		}
	}
}

// TestTrackingCacheCoherentMultiMaster: hash-slot deployments track
// in-band per master; MOVED/ASK redirects drop the affected key. After a
// routed mixed load, each cache entry must match the owning group's
// master.
func TestTrackingCacheCoherentMultiMaster(t *testing.T) {
	c := Build(Config{Kind: KindSKV,
		Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1},
		Clients: 2, Pipeline: 2, Seed: 63,
		KeySpace: 400, GetRatio: 0.7, Zipf: true, Tracking: true,
		SKV: core.DefaultConfig()})
	runTracked(t, c, 250*sim.Millisecond, 150*sim.Millisecond)
	hits, invals, _ := requireCachesCoherent(t, "multimaster", c)
	if hits == 0 || invals == 0 {
		t.Fatalf("multimaster tracking inert: hits=%d invals=%d", hits, invals)
	}
	var moved uint64
	for _, cl := range c.Clients {
		moved += cl.Stats().Moved
	}
	if moved == 0 {
		t.Fatal("no MOVED redirect exercised the cache-drop path")
	}
}

// ---- chaos: no stale read survives failover or resharding ---------------

// trackingDigest renders everything a tracked chaos run produced — the
// chaos trace, every metric snapshot, and each client's counters and
// sorted cache contents — for byte-identical rerun comparisons.
func trackingDigest(c *Cluster, h *Chaos) string {
	var b strings.Builder
	b.WriteString(h.TraceString())
	b.WriteString(c.SnapshotsString())
	for _, cl := range c.Clients {
		st := cl.Stats()
		fmt.Fprintf(&b, "%s sent=%d done=%d err=%d hits=%d miss=%d inv=%d flush=%d\n",
			cl.Name(), st.Sent, st.Done, st.ErrReplies, st.Hits, st.Misses,
			st.Invalidations, st.Flushes)
		ents := cl.CacheEntries()
		keys := make([]string, 0, len(ents))
		for k := range ents {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "  %s=%s\n", k, ents[k])
		}
	}
	return b.String()
}

// trackedScenario arms tracking and a read-heavy load on a canned chaos
// scenario.
func trackedScenario(s Scenario) Scenario {
	s.Tracking = true
	s.GetRatio = 0.6
	s.Clients = 2
	return s
}

// TestTrackingChaosNoStaleReads re-runs every chaos scenario with tracked
// redirect-mode clients: after convergence, no client may hold a cache
// entry differing from what the surviving master serves — across master
// crash/restart, slave churn, partitions and lossy links.
func TestTrackingChaosNoStaleReads(t *testing.T) {
	var invals uint64
	for _, s := range ChaosScenarios() {
		s := trackedScenario(s)
		t.Run(s.Name, func(t *testing.T) {
			c, h, err := RunScenario(s)
			if err != nil {
				t.Fatalf("convergence failed:\n%v\ntrace:\n%s", err, h.TraceString())
			}
			_, inv, _ := requireCachesCoherent(t, s.Name, c)
			invals += inv
		})
	}
	if invals == 0 {
		t.Error("no chaos scenario ever applied an invalidation — the oracle tested nothing")
	}
}

// TestTrackingChaosDeterministic pins the tracked failover scenario's
// whole observable state — trace, metric snapshots, client counters and
// cache contents — byte-identical across reruns.
func TestTrackingChaosDeterministic(t *testing.T) {
	runOnce := func() string {
		s := trackedScenario(ChaosScenarios()[0]) // master-restart-split-brain
		c, h, err := RunScenario(s)
		if err != nil {
			t.Fatalf("convergence failed:\n%v\ntrace:\n%s", err, h.TraceString())
		}
		return trackingDigest(c, h)
	}
	if a, b := runOnce(), runOnce(); a != b {
		t.Fatalf("tracked chaos run not deterministic:\n--- run1:\n%s--- run2:\n%s", a, b)
	}
}

// TestTrackingReshardNoStaleReads runs the live slot-migration scenario
// with tracked slot clients: the ledger oracle (acknowledged writes equal
// final-owner values) must hold, no cache entry may outlive the move with
// a stale value, and the whole run must be deterministic.
func TestTrackingReshardNoStaleReads(t *testing.T) {
	runOnce := func() (*ReshardResult, string) {
		r, err := RunReshardUnderLoadTracked(7)
		if err != nil {
			if r != nil {
				t.Logf("trace:\n%s", r.H.TraceString())
			}
			t.Fatal(err)
		}
		return r, trackingDigest(r.C, r.H)
	}
	r, digest := runOnce()
	hits, _, _ := requireCachesCoherent(t, "reshard", r.C)
	if hits == 0 {
		t.Fatal("no tracked GET was served locally during the reshard")
	}
	var moved, flushes uint64
	for _, cl := range r.C.Clients {
		st := cl.Stats()
		moved += st.Moved + st.Asked
		flushes += st.Flushes
	}
	if moved == 0 {
		t.Fatal("no redirect ever reached a tracked client during the move")
	}
	if flushes == 0 {
		t.Fatal("no topology change ever flushed a cache — the migration was invisible to tracking")
	}
	if _, digest2 := runOnce(); digest != digest2 {
		t.Fatal("tracked reshard run not deterministic across reruns")
	}
}
