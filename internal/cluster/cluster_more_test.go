package cluster

import (
	"testing"

	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

func TestTCPClusterWithSlavesPropagates(t *testing.T) {
	c := Build(Config{Kind: KindTCP, Slaves: 2, Clients: 2, Seed: 21})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("TCP slaves never synced")
	}
	c.Measure(20*sim.Millisecond, 100*sim.Millisecond)
	c.Eng.Run(c.Eng.Now().Add(100 * sim.Millisecond))
	keys := c.Master.Store().DBSize(0)
	if keys == 0 {
		t.Fatal("no keys written")
	}
	for i := range c.Slaves {
		if got := c.Slaves[i].Store().DBSize(0); got != keys {
			t.Fatalf("tcp slave%d keys=%d master=%d", i, got, keys)
		}
	}
}

func TestSKVMultiThreadedNicConsistency(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ThreadNum = 4
	c := Build(Config{Kind: KindSKV, Slaves: 6, Clients: 4, Seed: 22, SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	c.Measure(20*sim.Millisecond, 150*sim.Millisecond)
	c.Eng.Run(c.Eng.Now().Add(300 * sim.Millisecond))
	keys := c.Master.Store().DBSize(0)
	for i := range c.Slaves {
		if got := c.Slaves[i].Store().DBSize(0); got != keys {
			t.Fatalf("threaded fan-out: slave%d keys=%d master=%d", i, got, keys)
		}
	}
}

func TestSKVThreadNumReducesLagWithManySlaves(t *testing.T) {
	lagFor := func(threads int) int64 {
		cfg := core.DefaultConfig()
		cfg.ThreadNum = threads
		c := Build(Config{Kind: KindSKV, Slaves: 8, Clients: 8, Seed: 23, SKV: cfg})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatal("sync failed")
		}
		c.Measure(20*sim.Millisecond, 200*sim.Millisecond)
		minOff := int64(-1)
		for _, a := range c.SlaveAgents {
			if minOff < 0 || a.Offset() < minOff {
				minOff = a.Offset()
			}
		}
		return c.Master.ReplOffset() - minOff
	}
	single := lagFor(1)
	multi := lagFor(4)
	if single < 100_000 {
		t.Skipf("single-threaded NIC kept up (lag=%d); model changed?", single)
	}
	if multi >= single/4 {
		t.Fatalf("thread-num=4 lag %d not ≪ thread-num=1 lag %d", multi, single)
	}
}

func TestZipfWorkloadRuns(t *testing.T) {
	c := Build(Config{Kind: KindRDMA, Slaves: 0, Clients: 4, Seed: 24, Zipf: true, KeySpace: 100_000})
	res := c.Measure(20*sim.Millisecond, 100*sim.Millisecond)
	if res.Ops < 1000 || res.ErrReplies != 0 {
		t.Fatalf("zipf run: ops=%d errs=%d", res.Ops, res.ErrReplies)
	}
	// Zipf hot keys mean far fewer distinct keys than ops.
	if keys := c.Master.Store().DBSize(0); uint64(keys) >= res.Ops {
		t.Fatalf("zipf created %d keys for %d ops", keys, res.Ops)
	}
}

func TestMixedWorkload(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 4, Seed: 25, GetRatio: 0.7, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	res := c.Measure(20*sim.Millisecond, 150*sim.Millisecond)
	if res.Ops == 0 || res.ErrReplies != 0 {
		t.Fatalf("mixed run: %+v", res)
	}
	// Only the SET fraction is replicated.
	if c.HostKV.ReplReqsSent == 0 {
		t.Fatal("no writes replicated")
	}
	if c.HostKV.ReplReqsSent >= c.Master.CommandsProcessed {
		t.Fatal("GETs were replicated")
	}
}

func TestLargeValuesSurviveReplication(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 2, Seed: 26, ValueSize: 16384, KeySpace: 20, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	c.Measure(20*sim.Millisecond, 100*sim.Millisecond)
	c.Eng.Run(c.Eng.Now().Add(300 * sim.Millisecond))
	// Values are 16KB: verify a slave value byte-for-byte.
	probe := [][]byte{[]byte("GET"), []byte("key:0000000003")}
	want, _ := c.Master.Store().Exec(0, probe)
	if len(want) < 16000 {
		t.Skip("probe key unwritten in this seed")
	}
	for i := range c.Slaves {
		got, _ := c.Slaves[i].Store().Exec(0, probe)
		if string(got) != string(want) {
			t.Fatalf("slave%d 16KB value mismatch (len %d vs %d)", i, len(got), len(want))
		}
	}
}

func TestResultStringAndUtilization(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 1, Clients: 2, Seed: 27, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	res := c.Measure(20*sim.Millisecond, 100*sim.Millisecond)
	if res.String() == "" {
		t.Fatal("empty Result string")
	}
	if res.MasterUtil <= 0.5 || res.MasterUtil > 1.0 {
		t.Fatalf("master utilization %.2f implausible under saturation", res.MasterUtil)
	}
	if res.NicUtil <= 0 {
		t.Fatal("NIC utilization missing for SKV")
	}
	if res.System != "skv" {
		t.Fatalf("system name %q", res.System)
	}
}

func TestKindStrings(t *testing.T) {
	if KindTCP.String() != "redis" || KindRDMA.String() != "rdma-redis" || KindSKV.String() != "skv" {
		t.Fatal("kind names")
	}
}

func TestNicServedReadsReturnCorrectValues(t *testing.T) {
	// The §IV-A ablation path: clients talk to the SmartNIC, which serves
	// GETs from its shadow replica.
	c := Build(Config{Kind: KindSKV, Slaves: 0, Clients: 2, Seed: 28,
		GetRatio: 1.0, KeySpace: 100, SKV: core.DefaultConfig(),
		NicReads: NicReadsClients})
	for i := 0; i < 100; i++ {
		key := []byte("key:000000000" + string(rune('0'+i%10)))
		c.Master.Store().Exec(0, [][]byte{[]byte("SET"), key, []byte("val")})
	}
	for i := 0; i < 100; i++ {
		c.NicKV.PreloadReplica("key:000000000"+string(rune('0'+i%10)), []byte("val"))
	}
	res := c.Measure(10*sim.Millisecond, 50*sim.Millisecond)
	if res.Ops == 0 || res.ErrReplies != 0 {
		t.Fatalf("NIC-served reads: %+v", res)
	}
	if c.NicKV.ReplicaSize() == 0 {
		t.Fatal("replica empty")
	}
}

func TestNicReplicaTracksWrites(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 1, Clients: 2, Seed: 29, KeySpace: 50,
		SKV: core.DefaultConfig(), NicReads: NicReadsServe})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	c.Measure(10*sim.Millisecond, 100*sim.Millisecond)
	c.Eng.Run(c.Eng.Now().Add(100 * sim.Millisecond))
	// Every write relayed through the NIC also landed in the replica.
	if got, want := c.NicKV.ReplicaSize(), c.Master.Store().DBSize(0); got != want {
		t.Fatalf("NIC replica has %d keys, master %d", got, want)
	}
}

func TestSKVMaxLagGateTripsWhenNICOverloaded(t *testing.T) {
	// A crawling NIC (0.1× host) cannot keep up with 3-slave fan-out, so
	// replication lag grows; with MaxLag set, the master must start
	// refusing writes (§III-C: "If the progress is too slow ... it will
	// return an error message to the client").
	p := model.Default()
	p.NICCoreSpeed = 0.1
	cfg := core.DefaultConfig()
	cfg.MaxLag = 64 << 10
	cfg.ProgressInterval = 50 * sim.Millisecond
	c := Build(Config{Kind: KindSKV, Slaves: 3, Clients: 8, Seed: 32, Params: &p, SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	// Run load long enough for lag to build past 64KB and a status report
	// to deliver it.
	res := c.Measure(100*sim.Millisecond, 2*sim.Second)
	if res.ErrReplies == 0 {
		t.Fatalf("no LAGGING errors despite overloaded NIC (lag=%d)", replLagOf(c))
	}
}

func replLagOf(c *Cluster) int64 {
	minOff := int64(-1)
	for _, a := range c.SlaveAgents {
		if minOff < 0 || a.Offset() < minOff {
			minOff = a.Offset()
		}
	}
	return c.Master.ReplOffset() - minOff
}

func TestSKVSyncPathCounters(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 2, Seed: 33,
		Params: fastProbeParams(), SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	// Fresh slaves with replid "?" take the full-RDB path... unless the
	// master's backlog still covers offset 0 (fresh master), in which case
	// the partial path is correct. Either way both slaves were served.
	if c.HostKV.FullSyncs+c.HostKV.PartialSyncs < 2 {
		t.Fatalf("initial syncs served: full=%d partial=%d", c.HostKV.FullSyncs, c.HostKV.PartialSyncs)
	}
	c.StartClients()
	c.Eng.Run(c.Eng.Now().Add(200 * sim.Millisecond))

	// Crash a slave briefly: a 20ms outage at this load leaves a stream
	// gap well inside the 1MB backlog, so the resync must take the partial
	// (backlog-range) path. (A longer outage would overflow the backlog
	// and correctly fall back to a full RDB transfer.)
	partialBefore := c.HostKV.PartialSyncs
	fullBefore := c.HostKV.FullSyncs
	c.Slaves[0].Crash()
	c.Eng.Run(c.Eng.Now().Add(20 * sim.Millisecond))
	c.Slaves[0].Recover()
	c.Eng.Run(c.Eng.Now().Add(800 * sim.Millisecond))
	if c.HostKV.PartialSyncs <= partialBefore {
		t.Fatalf("recovery did not use the backlog path (partial %d→%d, full %d→%d)",
			partialBefore, c.HostKV.PartialSyncs, fullBefore, c.HostKV.FullSyncs)
	}
	// And the recovered slave converged.
	for _, cl := range c.Clients {
		cl.Stop()
	}
	c.Eng.Run(c.Eng.Now().Add(300 * sim.Millisecond))
	if got, want := c.Slaves[0].Store().DBSize(0), c.Master.Store().DBSize(0); got != want {
		t.Fatalf("recovered slave keys=%d master=%d", got, want)
	}
}

func TestWaitCommandOnSKVMaster(t *testing.T) {
	// WAIT on the SKV master consumes the per-slave offsets Nic-KV reports
	// in its status frames.
	cfg := core.DefaultConfig()
	cfg.ProgressInterval = 50 * sim.Millisecond
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 1, Seed: 34,
		Params: fastProbeParams(), SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	// Drive some writes, then issue WAIT through a raw connection.
	c.Measure(10*sim.Millisecond, 50*sim.Millisecond)
	m := c.Net.NewMachine("waiter", false)
	proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, "waiter-core", 1.0), c.Params.ClientWakeup)
	stack := rconn.New(c.Net, m.Host, proc)
	var got *resp.Value
	stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		var r resp.Reader
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			if v, ok, _ := r.ReadValue(); ok {
				got = &v
			}
		})
		conn.Send(resp.EncodeCommand("WAIT", "2", "2000"))
	})
	c.Eng.Run(c.Eng.Now().Add(3 * sim.Second))
	if got == nil {
		t.Fatal("WAIT never replied")
	}
	if got.Type != resp.TypeInteger || got.Int != 2 {
		t.Fatalf("WAIT on SKV master = %s, want :2", got.String())
	}
}
