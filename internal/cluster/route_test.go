package cluster

import (
	"fmt"
	"testing"

	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

func routeParams(shards, listeners int) *model.Params {
	p := model.Default()
	p.HostShards = shards
	p.RouteListeners = listeners
	return &p
}

// TestSKVKeyspaceIdenticalAcrossListenerCounts: the routing plane may move
// parse and routing onto different cores, never change a command's effect.
// The same scripted workload at 1, 2 and 4 listeners (4 shards) must leave
// identical keyspaces on the master and every slave, and each listener
// count must reproduce its own metric snapshots byte-for-byte on a second
// identical run.
func TestSKVKeyspaceIdenticalAcrossListenerCounts(t *testing.T) {
	runOnce := func(listeners int) (*Cluster, map[string]string) {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 0, Seed: 31,
			Params: routeParams(4, listeners), SKV: core.DefaultConfig()})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("listeners=%d: sync failed", listeners)
		}
		randomWriter(t, c, 77, 2000)
		return c, fingerprint(c.Master.Store())
	}
	var ref map[string]string
	for _, listeners := range []int{1, 2, 4} {
		c, fp := runOnce(listeners)
		if len(fp) == 0 {
			t.Fatalf("listeners=%d: master keyspace empty", listeners)
		}
		if ref == nil {
			ref = fp
		} else if len(fp) != len(ref) {
			t.Fatalf("listeners=%d: master has %d keys, listeners=1 had %d", listeners, len(fp), len(ref))
		} else {
			for k, v := range ref {
				if fp[k] != v {
					t.Fatalf("listeners=%d: master divergence at %s: %q vs %q", listeners, k, fp[k], v)
				}
			}
		}
		for i := range c.Slaves {
			got := fingerprint(c.Slaves[i].Store())
			if len(got) != len(ref) {
				t.Fatalf("listeners=%d: slave%d has %d keys, want %d", listeners, i, len(got), len(ref))
			}
			for k, v := range ref {
				if got[k] != v {
					t.Fatalf("listeners=%d: slave%d divergence at %s: %q vs %q", listeners, i, k, got[k], v)
				}
			}
		}
		// Determinism: an identical second run renders identical snapshots.
		c2, _ := runOnce(listeners)
		if c.SnapshotsString() != c2.SnapshotsString() {
			t.Fatalf("listeners=%d: metric snapshots differ across identical runs", listeners)
		}
	}
}

// TestRouteListenersOffAndOneIdentical pins the legacy contract:
// RouteListeners = 0 and RouteListeners = 1 are both "routing plane off",
// and must render byte-identical snapshots — the dispatch-owned pipeline
// unchanged from before the routing plane existed.
func TestRouteListenersOffAndOneIdentical(t *testing.T) {
	runOnce := func(listeners int) string {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 0, Seed: 31,
			Params: routeParams(4, listeners), SKV: core.DefaultConfig()})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("listeners=%d: sync failed", listeners)
		}
		randomWriter(t, c, 77, 2000)
		if n := c.Master.NumRouteListeners(); n != 0 {
			t.Fatalf("listeners=%d built %d routing procs, want none", listeners, n)
		}
		return c.SnapshotsString()
	}
	if runOnce(0) != runOnce(1) {
		t.Fatal("RouteListeners=0 and =1 diverged — the off state is not unique")
	}
}

// TestRoutedThroughputRelievesDispatch is the point of the tentpole: at 4
// shards the single dispatch core's parse stage is the bottleneck; moving
// parse + routing onto 2 routing cores must clear strictly more operations,
// and the routing cores must actually absorb the front-end work.
func TestRoutedThroughputRelievesDispatch(t *testing.T) {
	run := func(listeners int) Result {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 8, Pipeline: 8,
			Seed: 55, Params: routeParams(4, listeners), SKV: core.DefaultConfig()})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("listeners=%d: sync failed", listeners)
		}
		return c.Measure(20*sim.Millisecond, 200*sim.Millisecond)
	}
	res1 := run(1)
	res2 := run(2)
	if len(res1.RouteUtils) != 0 {
		t.Fatalf("listeners=1 reported routing cores: %v", res1.RouteUtils)
	}
	if len(res2.RouteUtils) != 2 {
		t.Fatalf("listeners=2 reported %d routing cores", len(res2.RouteUtils))
	}
	for i, u := range res2.RouteUtils {
		if u < 0.05 {
			t.Fatalf("routing core %d idle (%.3f): %v", i, u, res2.RouteUtils)
		}
	}
	if res2.Throughput <= res1.Throughput {
		t.Fatalf("routing plane bought nothing: %.0f ops/s at 2 listeners vs %.0f at 1",
			res2.Throughput, res1.Throughput)
	}
}

// TestChaosScenariosRouted re-runs the failure scenarios with the routing
// plane on: every scenario at (shards=4, listeners=2), the hardest scenario
// across the rest of the listeners × shards grid, and double-run
// determinism of both the failover timeline and the metric snapshots.
func TestChaosScenariosRouted(t *testing.T) {
	tune := func(shards, listeners int) func(p *model.Params) {
		return func(p *model.Params) {
			p.HostShards = shards
			p.RouteListeners = listeners
		}
	}
	for _, s := range ChaosScenarios() {
		s := s
		s.Tune = tune(4, 2)
		t.Run(fmt.Sprintf("%s/shards4-listeners2", s.Name), func(t *testing.T) {
			c, h, err := RunScenario(s)
			if err != nil {
				t.Fatalf("convergence failed:\n%v\ntrace:\n%s", err, h.TraceString())
			}
			if s.Name == "master-restart-split-brain" {
				c2, h2, err2 := RunScenario(s)
				if err2 != nil {
					t.Fatalf("second run diverged in outcome: %v", err2)
				}
				if h.TraceString() != h2.TraceString() {
					t.Fatal("routed failover timeline not deterministic across identical runs")
				}
				if c.SnapshotsString() != c2.SnapshotsString() {
					t.Fatal("routed metric snapshots not deterministic across identical runs")
				}
			}
		})
	}
	// The rest of the grid, on the scenario that kills and restarts the
	// master (PSYNC handoff, disown, full resync all exercised). shards=1
	// rows pin that listeners are ignored without a sharded plane.
	grid := []struct{ shards, listeners int }{
		{1, 2}, {1, 4}, {2, 2}, {2, 4}, {4, 4},
	}
	for _, g := range grid {
		g := g
		for _, s := range ChaosScenarios() {
			s := s
			if s.Name != "master-restart-split-brain" {
				continue
			}
			s.Tune = tune(g.shards, g.listeners)
			t.Run(fmt.Sprintf("%s/shards%d-listeners%d", s.Name, g.shards, g.listeners), func(t *testing.T) {
				_, h, err := RunScenario(s)
				if err != nil {
					t.Fatalf("convergence failed:\n%v\ntrace:\n%s", err, h.TraceString())
				}
			})
		}
	}
}

// TestRoutedBatchedDoorbellTimer pins the exact configuration the routed
// ext-shards rows run: routing listeners with replication batching on a
// doorbell-coalescing timer (ReplBatchMaxCmds=8, ReplBatchMaxDelay=5µs)
// instead of the quiesce flush — the quiesce point degenerates to batch=1
// on the demoted merge core. The coalesced stream must leave the same
// keyspace as the unbatched routed run, actually amortize doorbells, keep
// WAIT live (bytes parked behind the timer flush within the delay, never
// deadlock), and stay deterministic across identical runs.
func TestRoutedBatchedDoorbellTimer(t *testing.T) {
	timerParams := func() *model.Params {
		p := routeParams(4, 2)
		p.ReplBatchMaxCmds = 8
		p.ReplBatchMaxDelay = 5 * sim.Microsecond
		return p
	}
	runOnce := func(p *model.Params) *Cluster {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 0, Seed: 31,
			Params: p, SKV: core.DefaultConfig()})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatal("sync failed")
		}
		randomWriter(t, c, 77, 2000)
		return c
	}

	ref := fingerprint(runOnce(routeParams(4, 2)).Master.Store())
	c := runOnce(timerParams())
	fp := fingerprint(c.Master.Store())
	if len(fp) == 0 || len(fp) != len(ref) {
		t.Fatalf("master has %d keys, unbatched routed run had %d", len(fp), len(ref))
	}
	for k, v := range ref {
		if fp[k] != v {
			t.Fatalf("master divergence at %s: %q vs %q", k, fp[k], v)
		}
	}
	for i := range c.Slaves {
		got := fingerprint(c.Slaves[i].Store())
		if len(got) != len(ref) {
			t.Fatalf("slave%d has %d keys, want %d", i, len(got), len(ref))
		}
	}
	// The timer must actually coalesce: strictly fewer doorbells than
	// writes, with every write still offloaded.
	if c.HostKV.ReplReqsSent >= c.Master.WritesPropagated {
		t.Fatalf("timer coalesced nothing: %d WRs for %d writes",
			c.HostKV.ReplReqsSent, c.Master.WritesPropagated)
	}
	if c.HostKV.CmdsOffloaded != c.Master.WritesPropagated {
		t.Fatalf("offloaded %d commands for %d writes",
			c.HostKV.CmdsOffloaded, c.Master.WritesPropagated)
	}
	// Determinism: identical second run, identical snapshots.
	if c2 := runOnce(timerParams()); c.SnapshotsString() != c2.SnapshotsString() {
		t.Fatal("timer-batched snapshots differ across identical runs")
	}
}

// TestRoutedBatchedWaitLiveness: with the doorbell timer replacing the
// quiesce flush, a write parked in a partial batch still reaches the
// replicas within the coalescing delay — WAIT observes the quorum instead
// of deadlocking on bytes held back by the batcher.
func TestRoutedBatchedWaitLiveness(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ProgressInterval = 50 * sim.Millisecond
	p := routeParams(4, 2)
	p.ReplBatchMaxCmds = 8
	p.ReplBatchMaxDelay = 5 * sim.Microsecond
	p.ProbePeriod = 100 * sim.Millisecond
	p.WaitingTime = 200 * sim.Millisecond
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 1, Seed: 34,
		Params: p, SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	c.Measure(10*sim.Millisecond, 50*sim.Millisecond)
	m := c.Net.NewMachine("waiter", false)
	proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, "waiter-core", 1.0), c.Params.ClientWakeup)
	stack := rconn.New(c.Net, m.Host, proc)
	var got *resp.Value
	stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		var r resp.Reader
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			if v, ok, _ := r.ReadValue(); ok {
				got = &v
			}
		})
		conn.Send(resp.EncodeCommand("WAIT", "2", "2000"))
	})
	c.Eng.Run(c.Eng.Now().Add(3 * sim.Second))
	if got == nil {
		t.Fatal("WAIT never replied under the doorbell timer")
	}
	if got.Type != resp.TypeInteger || got.Int != 2 {
		t.Fatalf("WAIT = %s, want :2", got.String())
	}
}
