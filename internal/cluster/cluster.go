// Package cluster assembles full simulated deployments of the three
// systems the paper evaluates:
//
//   - KindTCP: original Redis — the server over the kernel TCP model.
//   - KindRDMA: RDMA-Redis — the same server over the verbs transport,
//     master feeding each slave itself (the paper's baseline).
//   - KindSKV: SKV — Host-KV + Nic-KV with replication and failure
//     detection offloaded to the SmartNIC.
//
// A cluster is one master (with a SmartNIC for SKV), N slave machines, and
// M closed-loop client machines, all on a 100Gb fabric, plus the measuring
// equipment (latency histograms, throughput series).
package cluster

import (
	"fmt"
	"strings"

	"skv/internal/core"
	"skv/internal/fabric"
	"skv/internal/metrics"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/server"
	"skv/internal/sim"
	"skv/internal/stats"
	"skv/internal/tcpsim"
	"skv/internal/transport"
	"skv/internal/workload"
)

// Kind selects the system under test.
type Kind int

// Systems under test.
const (
	// KindTCP is original Redis over the kernel TCP stack.
	KindTCP Kind = iota
	// KindRDMA is RDMA-Redis: verbs transport, host-driven replication.
	KindRDMA
	// KindSKV is the SmartNIC-offloaded system.
	KindSKV
)

func (k Kind) String() string {
	switch k {
	case KindTCP:
		return "redis"
	case KindRDMA:
		return "rdma-redis"
	case KindSKV:
		return "skv"
	}
	return "?"
}

// Config describes one deployment.
type Config struct {
	Kind    Kind
	Slaves  int
	Clients int
	// Params: nil uses model.Default().
	Params *model.Params
	Seed   int64

	// Workload shape.
	KeySpace  int     // default 10000
	ValueSize int     // default 64
	GetRatio  float64 // fraction of GETs; 0 = pure SET (the paper's default)
	Zipf      bool
	// Pipeline keeps N requests in flight per client (redis-benchmark -P;
	// default 1 = the paper's closed loop).
	Pipeline int

	// SKV-specific knobs. SKV.ServeReadsFromNIC is derived from NicReads by
	// Build — setting it directly is a configuration error.
	SKV core.Config

	// NicReads is the one authoritative NIC-read-path setting (the design
	// §IV-A ablation). Build derives core.Config.ServeReadsFromNIC from it
	// and rejects inconsistent combinations.
	NicReads NicReadMode

	// DisableCron switches off serverCron (microbenchmarks only).
	DisableCron bool
}

// NicReadMode selects how the cluster exercises the NIC read path.
type NicReadMode int

const (
	// NicReadsOff (the default) is the paper's design: all reads served by
	// the host, no shadow replica on the SmartNIC.
	NicReadsOff NicReadMode = iota
	// NicReadsServe enables the Nic-KV shadow replica and its client
	// listener, but the workload clients still target the master host —
	// used to compare the replica's keyspace against the master's.
	NicReadsServe
	// NicReadsClients additionally points the workload clients at the
	// SmartNIC endpoint, so reads are served by the ARM cores.
	NicReadsClients
)

func (m NicReadMode) String() string {
	switch m {
	case NicReadsOff:
		return "off"
	case NicReadsServe:
		return "serve"
	case NicReadsClients:
		return "clients"
	}
	return "?"
}

// Validate reports configuration errors Build would otherwise bake into a
// half-configured cluster.
func (cfg Config) Validate() error {
	if cfg.NicReads != NicReadsOff && cfg.Kind != KindSKV {
		return fmt.Errorf("cluster: NicReads=%s requires Kind=KindSKV (got %s): only the SKV deployment has a SmartNIC to serve reads from", cfg.NicReads, cfg.Kind)
	}
	if cfg.SKV.ServeReadsFromNIC && cfg.NicReads == NicReadsOff {
		return fmt.Errorf("cluster: SKV.ServeReadsFromNIC is derived from Config.NicReads; set NicReads=NicReadsServe or NicReadsClients instead")
	}
	return nil
}

// Cluster is a built deployment.
type Cluster struct {
	Cfg    Config
	Eng    *sim.Engine
	Net    *fabric.Network
	Params *model.Params

	Master      *server.Server
	Slaves      []*server.Server
	SlaveAgents []*core.SlaveAgent // SKV only
	HostKV      *core.HostKV       // SKV only
	NicKV       *core.NicKV        // SKV only
	Clients     []*workload.Client

	MasterMachine *fabric.Machine
	SlaveMachines []*fabric.Machine

	clientsStarted bool
}

// Build constructs the deployment. Nothing runs until the engine does.
// Build panics on an invalid Config (see Config.Validate) — a half-built
// cluster would silently measure the wrong system.
func Build(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.SKV.ServeReadsFromNIC = cfg.NicReads != NicReadsOff
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 10_000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	p := cfg.Params
	if p == nil {
		def := model.Default()
		p = &def
	}
	eng := sim.New(cfg.Seed + 1)
	net := fabric.New(eng, p)
	net.SetMetrics(metrics.NewRegistry("fabric", eng.Now))
	c := &Cluster{Cfg: cfg, Eng: eng, Net: net, Params: p}

	makeStack := func(ep *fabric.Endpoint, proc *sim.Proc) transport.Stack {
		if cfg.Kind == KindTCP {
			return tcpsim.New(net, ep, proc)
		}
		return rconn.New(net, ep, proc)
	}
	serverWakeup := p.CompChannelWake
	if cfg.Kind == KindTCP {
		serverWakeup = p.TCPWakeup
	}

	newServer := func(name string, m *fabric.Machine, seed int64) (*server.Server, transport.Stack) {
		coreRes := sim.NewCore(eng, name+"-core", p.HostCoreSpeed)
		proc := sim.NewProc(eng, coreRes, serverWakeup)
		stack := makeStack(m.Host, proc)
		srv := server.New(server.Options{
			Name:        name,
			Params:      p,
			Seed:        seed,
			Port:        core.ClientPort,
			DisableCron: cfg.DisableCron,
			Shards:      p.HostShards,
			Listeners:   p.RouteListeners,
		}, eng, stack, proc)
		if rs, okRDMA := stack.(*rconn.Stack); okRDMA {
			rs.Device().SetMetrics(srv.Metrics())
		}
		return srv, stack
	}

	// Master (with SmartNIC when SKV).
	c.MasterMachine = net.NewMachine("master", cfg.Kind == KindSKV)
	c.Master, _ = newServer("master", c.MasterMachine, cfg.Seed+100)

	if cfg.Kind == KindSKV {
		c.NicKV = core.NewNicKV(eng, net, c.MasterMachine, p, cfg.SKV)
		c.HostKV = core.AttachMaster(c.Master, net, c.MasterMachine.NIC, cfg.SKV)
	}

	// Slaves.
	for i := 0; i < cfg.Slaves; i++ {
		m := net.NewMachine(fmt.Sprintf("slave%d", i), false)
		c.SlaveMachines = append(c.SlaveMachines, m)
		srv, _ := newServer(fmt.Sprintf("slave%d", i), m, cfg.Seed+200+int64(i))
		c.Slaves = append(c.Slaves, srv)
		if cfg.Kind == KindSKV {
			// SLAVEOF through the SmartNIC (§III-C). Delay one tick so the
			// NIC listener exists before the first request.
			agent := core.AttachSlave(srv, net, c.MasterMachine.NIC, cfg.SKV)
			c.SlaveAgents = append(c.SlaveAgents, agent)
		} else {
			target := c.MasterMachine.Host
			srvRef := srv
			eng.At(0, func() { srvRef.SlaveOf(target, core.ClientPort) })
		}
	}

	// Clients, one machine each (the load generator box is never the
	// bottleneck, as with redis-benchmark on its own server).
	for i := 0; i < cfg.Clients; i++ {
		m := net.NewMachine(fmt.Sprintf("client%d", i), false)
		gen := workload.NewGenerator(cfg.Seed+300+int64(i), cfg.KeySpace, cfg.ValueSize, 1.0-cfg.GetRatio, cfg.Zipf)
		wakeup := p.ClientWakeup
		cl := workload.NewClient(fmt.Sprintf("client%d", i), eng, p, m.Host, makeStack, gen, wakeup)
		cl.Pipeline = cfg.Pipeline
		c.Clients = append(c.Clients, cl)
	}
	return c
}

// AwaitReplication runs the simulation until every slave reaches the
// steady-state replication phase, or the timeout elapses. Returns success.
func (c *Cluster) AwaitReplication(timeout sim.Duration) bool {
	deadline := c.Eng.Now().Add(timeout)
	for c.Eng.Now() < deadline {
		if c.replicationReady() {
			return true
		}
		c.Eng.Run(c.Eng.Now().Add(sim.Millisecond))
	}
	return c.replicationReady()
}

func (c *Cluster) replicationReady() bool {
	if c.Cfg.Kind == KindSKV {
		for _, a := range c.SlaveAgents {
			if !a.Synced() {
				return false
			}
		}
		return true
	}
	for _, s := range c.Slaves {
		if !s.SyncedWithMaster() {
			return false
		}
	}
	return true
}

// StartClients connects all clients to the master; their closed loops
// begin as soon as each dial completes.
func (c *Cluster) StartClients() {
	if c.clientsStarted {
		return
	}
	c.clientsStarted = true
	target := c.MasterMachine.Host
	if c.Cfg.NicReads == NicReadsClients {
		target = c.MasterMachine.NIC
	}
	for _, cl := range c.Clients {
		cl.Connect(target, core.ClientPort)
	}
}

// Result summarizes one measured run.
type Result struct {
	System     string
	Clients    int
	Slaves     int
	ValueSize  int
	Throughput float64 // operations per second
	Avg        sim.Duration
	P50        sim.Duration
	P99        sim.Duration
	Ops        uint64
	ErrReplies uint64
	// MasterUtil is the master dispatch core's busy fraction over the window.
	MasterUtil float64
	// ShardUtils is each master shard core's busy fraction (HostShards > 1).
	ShardUtils []float64
	// RouteUtils is each master routing core's busy fraction
	// (RouteListeners > 1).
	RouteUtils []float64
	// NicUtil is Nic-KV's main ARM core busy fraction (SKV only).
	NicUtil float64
}

func (r Result) String() string {
	return fmt.Sprintf("%-11s clients=%-3d slaves=%d val=%-5d  tput=%8.1f kops/s  avg=%7.1fµs  p50=%7.1fµs  p99=%7.1fµs",
		r.System, r.Clients, r.Slaves, r.ValueSize,
		r.Throughput/1000, r.Avg.Micros(), r.P50.Micros(), r.P99.Micros())
}

// Measure starts the clients (if not yet), lets the system warm up, then
// measures for the given duration and aggregates client-side statistics —
// the redis-benchmark protocol.
func (c *Cluster) Measure(warmup, duration sim.Duration) Result {
	c.StartClients()
	start := c.Eng.Now().Add(warmup)
	for _, cl := range c.Clients {
		cl.WarmupUntil = start
	}
	end := start.Add(duration)
	// Utilization is reported over the measure window — the same window
	// throughput and latency are measured over — so handshake, sync, and
	// warmup CPU don't pollute the busy fraction. Run to the window start,
	// snapshot each core's busy-time accumulator, then run the window.
	c.Eng.Run(start)
	busyAt := func(core *sim.Core) sim.Duration { return core.BusyTime() }
	masterBusy := busyAt(c.Master.Proc().Core)
	var shardBusy, routeBusy []sim.Duration
	for _, sp := range c.Master.ShardProcs() {
		shardBusy = append(shardBusy, busyAt(sp.Core))
	}
	for _, rp := range c.Master.RouteProcs() {
		routeBusy = append(routeBusy, busyAt(rp.Core))
	}
	var nicBusy sim.Duration
	if c.NicKV != nil {
		nicBusy = busyAt(c.NicKV.Proc().Core)
	}
	c.Eng.Run(end)
	windowUtil := func(before sim.Duration, core *sim.Core) float64 {
		u := float64(core.BusyTime()-before) / float64(duration)
		if u > 1 {
			u = 1
		}
		return u
	}

	agg := stats.NewHistogram()
	var errs uint64
	for _, cl := range c.Clients {
		agg.Merge(cl.Hist)
		errs += cl.ErrReplies
	}
	res := Result{
		System:     c.Cfg.Kind.String(),
		Clients:    len(c.Clients),
		Slaves:     len(c.Slaves),
		ValueSize:  c.Cfg.ValueSize,
		Throughput: float64(agg.Count()) / duration.Seconds(),
		Avg:        agg.Mean(),
		P50:        agg.Percentile(50),
		P99:        agg.Percentile(99),
		Ops:        agg.Count(),
		ErrReplies: errs,
		MasterUtil: windowUtil(masterBusy, c.Master.Proc().Core),
	}
	for i, sp := range c.Master.ShardProcs() {
		res.ShardUtils = append(res.ShardUtils, windowUtil(shardBusy[i], sp.Core))
	}
	for i, rp := range c.Master.RouteProcs() {
		res.RouteUtils = append(res.RouteUtils, windowUtil(routeBusy[i], rp.Core))
	}
	if c.NicKV != nil {
		res.NicUtil = windowUtil(nicBusy, c.NicKV.Proc().Core)
	}
	return res
}

// Run advances the simulation to the given horizon (helper for scenario
// scripts like the availability experiment).
func (c *Cluster) Run(until sim.Time) { c.Eng.Run(until) }

// Snapshots collects the metrics snapshot of every registry in the cluster
// — the fabric, the master, each slave, and (SKV) the NIC — ordered by node
// name so two identical runs render byte-identically.
func (c *Cluster) Snapshots() []metrics.Snapshot {
	var snaps []metrics.Snapshot
	if reg := c.Net.Metrics(); reg != nil {
		snaps = append(snaps, reg.Snapshot())
	}
	snaps = append(snaps, c.Master.Metrics().Snapshot())
	for _, reg := range c.Master.ShardRegistries() {
		snaps = append(snaps, reg.Snapshot())
	}
	for _, reg := range c.Master.RouteRegistries() {
		snaps = append(snaps, reg.Snapshot())
	}
	for _, s := range c.Slaves {
		snaps = append(snaps, s.Metrics().Snapshot())
		for _, reg := range s.ShardRegistries() {
			snaps = append(snaps, reg.Snapshot())
		}
		for _, reg := range s.RouteRegistries() {
			snaps = append(snaps, reg.Snapshot())
		}
	}
	if c.NicKV != nil {
		snaps = append(snaps, c.NicKV.Metrics().Snapshot())
	}
	for i := 1; i < len(snaps); i++ {
		for j := i; j > 0 && snaps[j].Node < snaps[j-1].Node; j-- {
			snaps[j], snaps[j-1] = snaps[j-1], snaps[j]
		}
	}
	return snaps
}

// SnapshotsString renders all cluster snapshots as one deterministic text
// block (test oracle: two identical sim runs must produce identical output).
func (c *Cluster) SnapshotsString() string {
	var b strings.Builder
	for _, s := range c.Snapshots() {
		b.WriteString(s.String())
	}
	return b.String()
}
