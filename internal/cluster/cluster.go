// Package cluster assembles full simulated deployments of the three
// systems the paper evaluates:
//
//   - KindTCP: original Redis — the server over the kernel TCP model.
//   - KindRDMA: RDMA-Redis — the same server over the verbs transport,
//     master feeding each slave itself (the paper's baseline).
//   - KindSKV: SKV — Host-KV + Nic-KV with replication and failure
//     detection offloaded to the SmartNIC.
//
// A cluster is one master (with a SmartNIC for SKV), N slave machines, and
// M closed-loop client machines, all on a 100Gb fabric, plus the measuring
// equipment (latency histograms, throughput series).
package cluster

import (
	"errors"
	"fmt"
	"strings"

	"skv/internal/consistency"
	"skv/internal/core"
	"skv/internal/fabric"
	"skv/internal/metrics"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/server"
	"skv/internal/sim"
	"skv/internal/slots"
	"skv/internal/stats"
	"skv/internal/tcpsim"
	"skv/internal/transport"
	"skv/internal/workload"
)

// Kind selects the system under test.
type Kind int

// Systems under test.
const (
	// KindTCP is original Redis over the kernel TCP stack.
	KindTCP Kind = iota
	// KindRDMA is RDMA-Redis: verbs transport, host-driven replication.
	KindRDMA
	// KindSKV is the SmartNIC-offloaded system.
	KindSKV
)

func (k Kind) String() string {
	switch k {
	case KindTCP:
		return "redis"
	case KindRDMA:
		return "rdma-redis"
	case KindSKV:
		return "skv"
	}
	return "?"
}

// Config describes one deployment.
type Config struct {
	Kind    Kind
	Slaves  int
	Clients int
	// Params: nil uses model.Default().
	Params *model.Params
	Seed   int64

	// Workload shape.
	KeySpace  int     // default 10000
	ValueSize int     // default 64
	GetRatio  float64 // fraction of GETs; 0 = pure SET (the paper's default)
	Zipf      bool
	// ZipfS is the Zipfian skew exponent (requires Zipf; must be > 1).
	// 0 uses workload.DefaultZipfS, the evaluation's historical value.
	ZipfS float64
	// Pipeline keeps N requests in flight per client (redis-benchmark -P;
	// default 1 = the paper's closed loop).
	Pipeline int

	// Cluster groups the horizontal-scale knobs (multi-master hash-slot
	// deployments). The zero value builds the legacy single-master topology.
	Cluster ClusterOpts

	// SKV-specific knobs. SKV.ServeReadsFromNIC is derived from NicReads by
	// Build — setting it directly is a configuration error.
	SKV core.Config

	// NicReads is the one authoritative NIC-read-path setting (the design
	// §IV-A ablation). Build derives core.Config.ServeReadsFromNIC from it
	// and rejects inconsistent combinations.
	NicReads NicReadMode

	// Consistency groups the write-acknowledgment knobs. The zero value is
	// the legacy async fire-and-forget default.
	Consistency ConsistencyOpts

	// Tracking enables CLIENT TRACKING on every workload client: clients
	// cache GET results locally and the deployment pushes invalidations on
	// writes (from the NIC fan-out path on SKV, from the merge stage on the
	// baselines). CacheSize bounds each client's cache in entries; 0 uses
	// the workload default.
	Tracking  bool
	CacheSize int

	// DisableCron switches off serverCron (microbenchmarks only).
	DisableCron bool
}

// ClusterOpts groups Config's horizontal-scale knobs.
type ClusterOpts struct {
	// Masters scales the deployment out into a hash-slot cluster of that
	// many replication groups, each a full SKV unit (master host + SmartNIC
	// + its own slaves) owning a contiguous share of the 16384 slots.
	// 0 or 1 builds the legacy single-master deployment bit-for-bit.
	Masters int
	// SlavesPerMaster is each group's slave count when Masters > 1 (the
	// multi-master replacement for Slaves, which then must stay 0).
	SlavesPerMaster int
	// SlotRanges overrides the even slot split when Masters > 1; nil
	// assigns slots.EvenSplit(Masters). Ranges must cover all 16384 slots
	// exactly once with group indices in [0, Masters).
	SlotRanges []slots.Range
}

// ConsistencyOpts groups Config's write-acknowledgment knobs.
type ConsistencyOpts struct {
	// Level is the deployment's default write acknowledgment level. Async —
	// the zero value — is the legacy fire-and-forget default: the master
	// replies as soon as the write executes. Quorum withholds each write's
	// reply until Quorum slaves have replicated it; All waits for every
	// attached slave. On SKV the NIC enforces the quorum (the host CPU never
	// sees the wait); baselines park the reply on the master's consistency
	// tracker like WAIT. Per-command overrides ride SKV.CONSISTENCY. Build
	// derives core.Config.WriteConsistency from this field — setting
	// SKV.WriteConsistency directly is a configuration error.
	Level consistency.Level
	// Quorum is the slave-ack count a quorum write needs (only meaningful
	// with Level=Quorum; 0 defaults to 1).
	Quorum int
}

// NicReadMode selects how the cluster exercises the NIC read path.
type NicReadMode int

const (
	// NicReadsOff (the default) is the paper's design: all reads served by
	// the host, no shadow replica on the SmartNIC.
	NicReadsOff NicReadMode = iota
	// NicReadsServe enables the Nic-KV shadow replica and its client
	// listener, but the workload clients still target the master host —
	// used to compare the replica's keyspace against the master's.
	NicReadsServe
	// NicReadsClients additionally points the workload clients at the
	// SmartNIC endpoint, so reads are served by the ARM cores.
	NicReadsClients
)

func (m NicReadMode) String() string {
	switch m {
	case NicReadsOff:
		return "off"
	case NicReadsServe:
		return "serve"
	case NicReadsClients:
		return "clients"
	}
	return "?"
}

// Typed consistency-configuration errors, matchable with errors.Is: tooling
// that sweeps configurations (benches, chaos harnesses) can tell "this
// combination is meaningless" apart from other validation failures.
var (
	// ErrQuorumTooLarge: WriteQuorum asks for more slave acks than the
	// topology has slaves — no write could ever be acknowledged.
	ErrQuorumTooLarge = errors.New("write quorum exceeds the deployment's slave count")
	// ErrQuorumNoSlaves: quorum/all consistency on a slave-less (legacy
	// single-node) topology — there is nobody to ack.
	ErrQuorumNoSlaves = errors.New("quorum/all write consistency requires at least one slave")
	// ErrQuorumWithoutLevel: WriteQuorum set while the consistency level
	// isn't quorum (async never parks; all derives its need from the
	// replica count).
	ErrQuorumWithoutLevel = errors.New("WriteQuorum is only meaningful with WriteConsistency=quorum")
)

// Validate reports configuration errors Build would otherwise bake into a
// half-configured cluster.
func (cfg Config) Validate() error {
	if cfg.NicReads != NicReadsOff && cfg.Kind != KindSKV {
		return fmt.Errorf("cluster: NicReads=%s requires Kind=KindSKV (got %s): only the SKV deployment has a SmartNIC to serve reads from", cfg.NicReads, cfg.Kind)
	}
	if cfg.SKV.ServeReadsFromNIC && cfg.NicReads == NicReadsOff {
		return fmt.Errorf("cluster: SKV.ServeReadsFromNIC is derived from Config.NicReads; set NicReads=NicReadsServe or NicReadsClients instead")
	}
	if cfg.ZipfS != 0 {
		if !cfg.Zipf {
			return fmt.Errorf("cluster: ZipfS=%v requires Zipf=true (the skew exponent only shapes the Zipfian distribution)", cfg.ZipfS)
		}
		if cfg.ZipfS <= 1 {
			return fmt.Errorf("cluster: ZipfS=%v is invalid; the Zipfian exponent must be > 1", cfg.ZipfS)
		}
	}
	if cfg.Cluster.Masters > 1 {
		if cfg.Kind != KindSKV {
			return fmt.Errorf("cluster: Masters=%d requires Kind=KindSKV (got %s): only SKV groups carry the SmartNIC failover plane the slot map repairs through", cfg.Cluster.Masters, cfg.Kind)
		}
		if cfg.Slaves != 0 {
			return fmt.Errorf("cluster: Masters=%d conflicts with the legacy Slaves field (got %d); size groups with SlavesPerMaster instead", cfg.Cluster.Masters, cfg.Slaves)
		}
		if cfg.Cluster.SlavesPerMaster < 1 {
			return fmt.Errorf("cluster: Masters=%d requires SlavesPerMaster >= 1 (got %d): a group without slaves has no failover target", cfg.Cluster.Masters, cfg.Cluster.SlavesPerMaster)
		}
		if cfg.NicReads == NicReadsClients {
			return fmt.Errorf("cluster: NicReads=clients is not supported with Masters>1; slot-aware clients route to group hosts")
		}
		if cfg.Cluster.SlotRanges != nil {
			if err := slots.ValidateRanges(cfg.Cluster.SlotRanges, cfg.Cluster.Masters); err != nil {
				return fmt.Errorf("cluster: bad SlotRanges: %w", err)
			}
		}
	} else {
		if cfg.Cluster.SlavesPerMaster != 0 {
			return fmt.Errorf("cluster: SlavesPerMaster=%d is only meaningful with Masters>1; use Slaves for the single-master deployment", cfg.Cluster.SlavesPerMaster)
		}
		if cfg.Cluster.SlotRanges != nil {
			return fmt.Errorf("cluster: SlotRanges is only meaningful with Masters>1")
		}
	}
	if cfg.SKV.WriteConsistency != consistency.Async {
		return fmt.Errorf("cluster: SKV.WriteConsistency is derived from Config.Consistency.Level; set the cluster-level field instead")
	}
	replicas := cfg.Slaves
	if cfg.Cluster.Masters > 1 {
		replicas = cfg.Cluster.SlavesPerMaster
	}
	if cfg.Consistency.Level != consistency.Async && replicas == 0 {
		return fmt.Errorf("cluster: WriteConsistency=%s on a topology with no slaves: %w", cfg.Consistency.Level, ErrQuorumNoSlaves)
	}
	if cfg.Consistency.Quorum < 0 {
		return fmt.Errorf("cluster: WriteQuorum=%d is invalid; the quorum must be >= 1", cfg.Consistency.Quorum)
	}
	if cfg.Consistency.Quorum != 0 && cfg.Consistency.Level != consistency.Quorum {
		return fmt.Errorf("cluster: WriteQuorum=%d with WriteConsistency=%s: %w", cfg.Consistency.Quorum, cfg.Consistency.Level, ErrQuorumWithoutLevel)
	}
	if cfg.Consistency.Level == consistency.Quorum && cfg.Consistency.Quorum > replicas {
		return fmt.Errorf("cluster: WriteQuorum=%d but the topology has %d slaves per master: %w", cfg.Consistency.Quorum, replicas, ErrQuorumTooLarge)
	}
	if cfg.CacheSize < 0 {
		return fmt.Errorf("cluster: CacheSize=%d is invalid; the client cache bound must be >= 0", cfg.CacheSize)
	}
	if cfg.CacheSize != 0 && !cfg.Tracking {
		return fmt.Errorf("cluster: CacheSize=%d is only meaningful with Tracking=true (the cache serves tracked GETs)", cfg.CacheSize)
	}
	return nil
}

// zipfS resolves the configured skew exponent.
func (cfg Config) zipfS() float64 {
	if cfg.ZipfS != 0 {
		return cfg.ZipfS
	}
	return workload.DefaultZipfS
}

// Group is one replication group of a multi-master deployment: a complete
// SKV unit (master host + SmartNIC offload + slaves) owning a share of the
// hash-slot space.
type Group struct {
	Index int

	Master      *server.Server
	Slaves      []*server.Server
	SlaveAgents []*core.SlaveAgent
	HostKV      *core.HostKV
	NicKV       *core.NicKV

	MasterMachine *fabric.Machine
	SlaveMachines []*fabric.Machine
}

// Cluster is a built deployment.
type Cluster struct {
	Cfg    Config
	Eng    *sim.Engine
	Net    *fabric.Network
	Params *model.Params

	Master      *server.Server
	Slaves      []*server.Server
	SlaveAgents []*core.SlaveAgent // SKV only
	HostKV      *core.HostKV       // SKV only
	NicKV       *core.NicKV        // SKV only
	// Clients is the workload: plain closed-loop clients on single-master
	// deployments, slot-aware clients when Masters > 1 — both behind the
	// one workload.KV interface.
	Clients []workload.KV

	MasterMachine *fabric.Machine
	SlaveMachines []*fabric.Machine

	// Multi-master state (Masters > 1). Groups holds every replication
	// group; the legacy fields above then alias group 0 (Master, HostKV,
	// NicKV, MasterMachine) or the concatenation across groups (Slaves,
	// SlaveAgents, SlaveMachines), so group-agnostic helpers keep working.
	// SlotMap is the deployment's authoritative hash-slot table, mutated by
	// per-group failover.
	Groups  []*Group
	SlotMap *slots.Map

	// epByName resolves slot-map addresses (endpoint names) for the
	// slot-aware clients.
	epByName map[string]*fabric.Endpoint

	clientsStarted bool
}

// Build constructs the deployment. Nothing runs until the engine does.
// Build panics on an invalid Config (see Config.Validate) — a half-built
// cluster would silently measure the wrong system.
func Build(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.SKV.ServeReadsFromNIC = cfg.NicReads != NicReadsOff
	cfg.SKV.WriteConsistency = cfg.Consistency.Level
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 10_000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	p := cfg.Params
	if p == nil {
		def := model.Default()
		p = &def
	}
	eng := sim.New(cfg.Seed + 1)
	net := fabric.New(eng, p)
	net.SetMetrics(metrics.NewRegistry("fabric", eng.Now))
	c := &Cluster{Cfg: cfg, Eng: eng, Net: net, Params: p}

	makeStack := func(ep *fabric.Endpoint, proc *sim.Proc) transport.Stack {
		if cfg.Kind == KindTCP {
			return tcpsim.New(net, ep, proc)
		}
		return rconn.New(net, ep, proc)
	}
	serverWakeup := p.CompChannelWake
	if cfg.Kind == KindTCP {
		serverWakeup = p.TCPWakeup
	}

	newServer := func(name string, m *fabric.Machine, seed int64, route *server.ClusterRouting) (*server.Server, transport.Stack) {
		coreRes := sim.NewCore(eng, name+"-core", p.HostCoreSpeed)
		proc := sim.NewProc(eng, coreRes, serverWakeup)
		stack := makeStack(m.Host, proc)
		srv := server.New(server.Options{
			Name:        name,
			Params:      p,
			Seed:        seed,
			Port:        core.ClientPort,
			DisableCron: cfg.DisableCron,
			Shards:      p.HostShards,
			Listeners:   p.RouteListeners,
			Cluster:     route,
			// Every node gets the consistency defaults — slaves too, since a
			// promoted slave must keep enforcing the deployment's level.
			WriteConsistency: cfg.Consistency.Level,
			WriteQuorum:      cfg.Consistency.Quorum,
		}, eng, stack, proc)
		if rs, okRDMA := stack.(*rconn.Stack); okRDMA {
			rs.Device().SetMetrics(srv.Metrics())
		}
		return srv, stack
	}

	if cfg.Cluster.Masters > 1 {
		c.buildMulti(newServer, makeStack)
		return c
	}

	// Master (with SmartNIC when SKV). Host endpoints register in epByName
	// so control processes (respPool users like the ack-loss ledger) can dial
	// nodes by name on the legacy topology too.
	c.epByName = make(map[string]*fabric.Endpoint)
	c.MasterMachine = net.NewMachine("master", cfg.Kind == KindSKV)
	c.epByName[c.MasterMachine.Host.Name()] = c.MasterMachine.Host
	c.Master, _ = newServer("master", c.MasterMachine, cfg.Seed+100, nil)

	if cfg.Kind == KindSKV {
		c.NicKV = core.NewNicKV(eng, net, c.MasterMachine, p, cfg.SKV)
		c.HostKV = core.AttachMaster(c.Master, net, c.MasterMachine.NIC, cfg.SKV)
	}

	// Slaves.
	for i := 0; i < cfg.Slaves; i++ {
		m := net.NewMachine(fmt.Sprintf("slave%d", i), false)
		c.SlaveMachines = append(c.SlaveMachines, m)
		c.epByName[m.Host.Name()] = m.Host
		srv, _ := newServer(fmt.Sprintf("slave%d", i), m, cfg.Seed+200+int64(i), nil)
		c.Slaves = append(c.Slaves, srv)
		if cfg.Kind == KindSKV {
			// SLAVEOF through the SmartNIC (§III-C). Delay one tick so the
			// NIC listener exists before the first request.
			agent := core.AttachSlave(srv, net, c.MasterMachine.NIC, cfg.SKV)
			c.SlaveAgents = append(c.SlaveAgents, agent)
		} else {
			target := c.MasterMachine.Host
			srvRef := srv
			eng.At(0, func() { srvRef.SlaveOf(target, core.ClientPort) })
		}
	}

	// Clients, one machine each (the load generator box is never the
	// bottleneck, as with redis-benchmark on its own server). The dial
	// target is fixed at build time: the master host, or the SmartNIC
	// endpoint when the workload exercises NIC-served reads.
	target := c.MasterMachine.Host
	if cfg.NicReads == NicReadsClients {
		target = c.MasterMachine.NIC
		c.epByName[target.Name()] = target
	}
	env := workload.Env{
		Eng: eng, Params: p, MakeStack: makeStack, Wakeup: p.ClientWakeup,
		Port: core.ClientPort, Resolve: c.resolveEP,
	}
	if cfg.Kind == KindSKV && cfg.Tracking && cfg.NicReads != NicReadsClients {
		// Redirect mode: the server forwards tracked interest to its NIC
		// and the NIC pushes invalidations out-of-band to the subscriber.
		env.Invalidation = c.MasterMachine.NIC
		env.InvalidationPort = core.NicPort
	}
	for i := 0; i < cfg.Clients; i++ {
		m := net.NewMachine(fmt.Sprintf("client%d", i), false)
		env := env
		env.EP = m.Host
		env.Gen = workload.NewGeneratorSkew(cfg.Seed+300+int64(i), cfg.KeySpace, cfg.ValueSize, 1.0-cfg.GetRatio, cfg.Zipf, cfg.zipfS())
		cl := workload.New(fmt.Sprintf("client%d", i), env, workload.Options{
			Addrs: []string{target.Name()}, Pipeline: cfg.Pipeline,
			Tracking: cfg.Tracking, CacheSize: cfg.CacheSize,
		})
		c.Clients = append(c.Clients, cl)
	}
	return c
}

// resolveEP maps a server address (an endpoint name) to its endpoint.
func (c *Cluster) resolveEP(addr string) *fabric.Endpoint {
	ep := c.epByName[addr]
	if ep == nil {
		panic(fmt.Sprintf("cluster: address %q resolves to no endpoint", addr))
	}
	return ep
}

// buildMulti assembles the hash-slot deployment: Masters replication
// groups, one shared epoch-versioned slot map every server routes against,
// and slot-aware clients. Group gi's machines are named g<gi>.master /
// g<gi>.slave<i>; seeds are offset by 1000*gi so groups draw independent
// but reproducible randomness. Client naming and seeding match the legacy
// path (the load is a property of the deployment, not of the group count).
func (c *Cluster) buildMulti(
	newServer func(name string, m *fabric.Machine, seed int64, route *server.ClusterRouting) (*server.Server, transport.Stack),
	makeStack func(*fabric.Endpoint, *sim.Proc) transport.Stack,
) {
	cfg := c.Cfg
	p := c.Params
	eng := c.Eng
	net := c.Net
	c.epByName = make(map[string]*fabric.Endpoint)

	// Master machines first: the slot map's addresses are their host
	// endpoint names, and every server is born already routing against it.
	masterMachines := make([]*fabric.Machine, cfg.Cluster.Masters)
	addrs := make([]string, cfg.Cluster.Masters)
	for gi := range masterMachines {
		m := net.NewMachine(fmt.Sprintf("g%d.master", gi), true)
		masterMachines[gi] = m
		addrs[gi] = m.Host.Name()
		c.epByName[m.Host.Name()] = m.Host
	}
	slotMap, err := slots.NewMap(cfg.Cluster.Masters, cfg.Cluster.SlotRanges, addrs)
	if err != nil {
		panic(fmt.Sprintf("cluster: slot map construction failed after validation: %v", err))
	}
	c.SlotMap = slotMap

	for gi := 0; gi < cfg.Cluster.Masters; gi++ {
		g := &Group{Index: gi, MasterMachine: masterMachines[gi]}
		route := &server.ClusterRouting{Self: gi, Map: slotMap, Port: core.ClientPort}
		skvCfg := cfg.SKV
		skvCfg.Group = fmt.Sprintf("g%d", gi)

		name := fmt.Sprintf("g%d.master", gi)
		g.Master, _ = newServer(name, g.MasterMachine, cfg.Seed+100+1000*int64(gi), route)
		g.NicKV = core.NewNicKV(eng, net, g.MasterMachine, p, skvCfg)
		g.HostKV = core.AttachMaster(g.Master, net, g.MasterMachine.NIC, skvCfg)

		for i := 0; i < cfg.Cluster.SlavesPerMaster; i++ {
			sname := fmt.Sprintf("g%d.slave%d", gi, i)
			m := net.NewMachine(sname, false)
			g.SlaveMachines = append(g.SlaveMachines, m)
			c.epByName[m.Host.Name()] = m.Host
			srv, _ := newServer(sname, m, cfg.Seed+200+1000*int64(gi)+int64(i), route)
			g.Slaves = append(g.Slaves, srv)
			agent := core.AttachSlave(srv, net, g.MasterMachine.NIC, skvCfg)
			g.SlaveAgents = append(g.SlaveAgents, agent)
			// Per-slot failover: promotion moves the group's slots to this
			// slave's address (epoch bump → clients repair on MOVED or
			// reconnect); demotion on master recovery moves them back. This
			// models the converged gossip state, not per-node propagation.
			gidx := gi
			slaveEP := m.Host
			masterEP := g.MasterMachine.Host
			srv.OnRoleChange = func(r server.Role) {
				if r == server.RoleMaster {
					slotMap.SetAddr(gidx, slaveEP.Name())
				} else {
					slotMap.SetAddr(gidx, masterEP.Name())
				}
			}
		}
		c.Groups = append(c.Groups, g)

		// Legacy aliases (group 0 / concatenations) keep group-agnostic
		// helpers like AwaitReplication working untouched.
		if gi == 0 {
			c.Master = g.Master
			c.HostKV = g.HostKV
			c.NicKV = g.NicKV
			c.MasterMachine = g.MasterMachine
		}
		c.Slaves = append(c.Slaves, g.Slaves...)
		c.SlaveAgents = append(c.SlaveAgents, g.SlaveAgents...)
		c.SlaveMachines = append(c.SlaveMachines, g.SlaveMachines...)
	}

	for i := 0; i < cfg.Clients; i++ {
		m := net.NewMachine(fmt.Sprintf("client%d", i), false)
		gen := workload.NewGeneratorSkew(cfg.Seed+300+int64(i), cfg.KeySpace, cfg.ValueSize, 1.0-cfg.GetRatio, cfg.Zipf, cfg.zipfS())
		cl := workload.New(fmt.Sprintf("client%d", i), workload.Env{
			Eng: eng, Params: p, EP: m.Host, MakeStack: makeStack, Gen: gen,
			Wakeup: p.ClientWakeup, Port: core.ClientPort,
			Resolve: c.resolveEP, Table: slotMap,
		}, workload.Options{
			Slots: true, Pipeline: cfg.Pipeline,
			Tracking: cfg.Tracking, CacheSize: cfg.CacheSize,
		})
		c.Clients = append(c.Clients, cl)
	}
}

// AwaitReplication runs the simulation until every slave reaches the
// steady-state replication phase, or the timeout elapses. Returns success.
func (c *Cluster) AwaitReplication(timeout sim.Duration) bool {
	deadline := c.Eng.Now().Add(timeout)
	for c.Eng.Now() < deadline {
		if c.replicationReady() {
			return true
		}
		c.Eng.Run(c.Eng.Now().Add(sim.Millisecond))
	}
	return c.replicationReady()
}

func (c *Cluster) replicationReady() bool {
	if c.Cfg.Kind == KindSKV {
		for _, a := range c.SlaveAgents {
			if !a.Synced() {
				return false
			}
		}
		return true
	}
	for _, s := range c.Slaves {
		if !s.SyncedWithMaster() {
			return false
		}
	}
	return true
}

// StartClients starts every client; their closed loops begin as soon as
// each dial completes.
func (c *Cluster) StartClients() {
	if c.clientsStarted {
		return
	}
	c.clientsStarted = true
	for _, cl := range c.Clients {
		cl.Start()
	}
}

// Result summarizes one measured run.
type Result struct {
	System     string
	Clients    int
	Slaves     int
	ValueSize  int
	Throughput float64 // operations per second
	Avg        sim.Duration
	P50        sim.Duration
	P99        sim.Duration
	Ops        uint64
	ErrReplies uint64
	// MasterUtil is the master dispatch core's busy fraction over the window.
	MasterUtil float64
	// ShardUtils is each master shard core's busy fraction (HostShards > 1).
	ShardUtils []float64
	// RouteUtils is each master routing core's busy fraction
	// (RouteListeners > 1).
	RouteUtils []float64
	// NicUtil is Nic-KV's main ARM core busy fraction (SKV only).
	NicUtil float64
	// Masters is the replication-group count (1 for legacy deployments).
	Masters int
	// GroupOps is the per-group operation count over the measure window
	// (Masters > 1 only) — the slot-load balance across groups.
	GroupOps []uint64
	// Moved counts MOVED redirects clients absorbed over the whole run
	// (Masters > 1 only).
	Moved uint64
}

func (r Result) String() string {
	return fmt.Sprintf("%-11s clients=%-3d slaves=%d val=%-5d  tput=%8.1f kops/s  avg=%7.1fµs  p50=%7.1fµs  p99=%7.1fµs",
		r.System, r.Clients, r.Slaves, r.ValueSize,
		r.Throughput/1000, r.Avg.Micros(), r.P50.Micros(), r.P99.Micros())
}

// Measure starts the clients (if not yet), lets the system warm up, then
// measures for the given duration and aggregates client-side statistics —
// the redis-benchmark protocol.
func (c *Cluster) Measure(warmup, duration sim.Duration) Result {
	c.StartClients()
	start := c.Eng.Now().Add(warmup)
	for _, cl := range c.Clients {
		cl.SetWarmup(start)
	}
	end := start.Add(duration)
	// Utilization is reported over the measure window — the same window
	// throughput and latency are measured over — so handshake, sync, and
	// warmup CPU don't pollute the busy fraction. Run to the window start,
	// snapshot each core's busy-time accumulator, then run the window.
	c.Eng.Run(start)
	busyAt := func(core *sim.Core) sim.Duration { return core.BusyTime() }
	masterBusy := busyAt(c.Master.Proc().Core)
	var shardBusy, routeBusy []sim.Duration
	for _, sp := range c.Master.ShardProcs() {
		shardBusy = append(shardBusy, busyAt(sp.Core))
	}
	for _, rp := range c.Master.RouteProcs() {
		routeBusy = append(routeBusy, busyAt(rp.Core))
	}
	var nicBusy sim.Duration
	if c.NicKV != nil {
		nicBusy = busyAt(c.NicKV.Proc().Core)
	}
	groupStart := make([]uint64, len(c.Groups))
	for _, cl := range c.Clients {
		for g, n := range cl.Stats().GroupDone {
			groupStart[g] += n
		}
	}
	c.Eng.Run(end)
	windowUtil := func(before sim.Duration, core *sim.Core) float64 {
		u := float64(core.BusyTime()-before) / float64(duration)
		if u > 1 {
			u = 1
		}
		return u
	}

	agg := stats.NewHistogram()
	var errs, moved uint64
	for _, cl := range c.Clients {
		agg.Merge(cl.Histogram())
		st := cl.Stats()
		errs += st.ErrReplies
		moved += st.Moved
	}
	nClients := len(c.Clients)
	masters := 1
	if len(c.Groups) > 0 {
		masters = len(c.Groups)
	}
	res := Result{
		System:     c.Cfg.Kind.String(),
		Clients:    nClients,
		Slaves:     len(c.Slaves),
		Masters:    masters,
		Moved:      moved,
		ValueSize:  c.Cfg.ValueSize,
		Throughput: float64(agg.Count()) / duration.Seconds(),
		Avg:        agg.Mean(),
		P50:        agg.Percentile(50),
		P99:        agg.Percentile(99),
		Ops:        agg.Count(),
		ErrReplies: errs,
		MasterUtil: windowUtil(masterBusy, c.Master.Proc().Core),
	}
	for i, sp := range c.Master.ShardProcs() {
		res.ShardUtils = append(res.ShardUtils, windowUtil(shardBusy[i], sp.Core))
	}
	for i, rp := range c.Master.RouteProcs() {
		res.RouteUtils = append(res.RouteUtils, windowUtil(routeBusy[i], rp.Core))
	}
	if c.NicKV != nil {
		res.NicUtil = windowUtil(nicBusy, c.NicKV.Proc().Core)
	}
	if len(c.Groups) > 0 {
		res.GroupOps = make([]uint64, len(c.Groups))
		for _, cl := range c.Clients {
			for g, n := range cl.Stats().GroupDone {
				res.GroupOps[g] += n
			}
		}
		for g := range res.GroupOps {
			res.GroupOps[g] -= groupStart[g]
		}
	}
	return res
}

// Run advances the simulation to the given horizon (helper for scenario
// scripts like the availability experiment).
func (c *Cluster) Run(until sim.Time) { c.Eng.Run(until) }

// Snapshots collects the metrics snapshot of every registry in the cluster
// — the fabric, the master, each slave, and (SKV) the NIC — ordered by node
// name so two identical runs render byte-identically.
func (c *Cluster) Snapshots() []metrics.Snapshot {
	var snaps []metrics.Snapshot
	if reg := c.Net.Metrics(); reg != nil {
		snaps = append(snaps, reg.Snapshot())
	}
	addServer := func(s *server.Server) {
		snaps = append(snaps, s.Metrics().Snapshot())
		for _, reg := range s.ShardRegistries() {
			snaps = append(snaps, reg.Snapshot())
		}
		for _, reg := range s.RouteRegistries() {
			snaps = append(snaps, reg.Snapshot())
		}
	}
	if len(c.Groups) > 0 {
		for _, g := range c.Groups {
			addServer(g.Master)
			for _, s := range g.Slaves {
				addServer(s)
			}
			if g.NicKV != nil {
				snaps = append(snaps, g.NicKV.Metrics().Snapshot())
			}
		}
	} else {
		addServer(c.Master)
		for _, s := range c.Slaves {
			addServer(s)
		}
		if c.NicKV != nil {
			snaps = append(snaps, c.NicKV.Metrics().Snapshot())
		}
	}
	for i := 1; i < len(snaps); i++ {
		for j := i; j > 0 && snaps[j].Node < snaps[j-1].Node; j-- {
			snaps[j], snaps[j-1] = snaps[j-1], snaps[j]
		}
	}
	return snaps
}

// SnapshotsString renders all cluster snapshots as one deterministic text
// block (test oracle: two identical sim runs must produce identical output).
func (c *Cluster) SnapshotsString() string {
	var b strings.Builder
	for _, s := range c.Snapshots() {
		b.WriteString(s.String())
	}
	return b.String()
}
