// Package cluster assembles full simulated deployments of the three
// systems the paper evaluates:
//
//   - KindTCP: original Redis — the server over the kernel TCP model.
//   - KindRDMA: RDMA-Redis — the same server over the verbs transport,
//     master feeding each slave itself (the paper's baseline).
//   - KindSKV: SKV — Host-KV + Nic-KV with replication and failure
//     detection offloaded to the SmartNIC.
//
// A cluster is one master (with a SmartNIC for SKV), N slave machines, and
// M closed-loop client machines, all on a 100Gb fabric, plus the measuring
// equipment (latency histograms, throughput series).
package cluster

import (
	"errors"
	"fmt"
	"strings"

	"skv/internal/consistency"
	"skv/internal/core"
	"skv/internal/fabric"
	"skv/internal/metrics"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/server"
	"skv/internal/sim"
	"skv/internal/slots"
	"skv/internal/stats"
	"skv/internal/tcpsim"
	"skv/internal/transport"
	"skv/internal/workload"
)

// Kind selects the system under test.
type Kind int

// Systems under test.
const (
	// KindTCP is original Redis over the kernel TCP stack.
	KindTCP Kind = iota
	// KindRDMA is RDMA-Redis: verbs transport, host-driven replication.
	KindRDMA
	// KindSKV is the SmartNIC-offloaded system.
	KindSKV
)

func (k Kind) String() string {
	switch k {
	case KindTCP:
		return "redis"
	case KindRDMA:
		return "rdma-redis"
	case KindSKV:
		return "skv"
	}
	return "?"
}

// Config describes one deployment.
type Config struct {
	Kind    Kind
	Slaves  int
	Clients int
	// Params: nil uses model.Default().
	Params *model.Params
	Seed   int64

	// Workload shape.
	KeySpace  int     // default 10000
	ValueSize int     // default 64
	GetRatio  float64 // fraction of GETs; 0 = pure SET (the paper's default)
	Zipf      bool
	// ZipfS is the Zipfian skew exponent (requires Zipf; must be > 1).
	// 0 uses workload.DefaultZipfS, the evaluation's historical value.
	ZipfS float64
	// Pipeline keeps N requests in flight per client (redis-benchmark -P;
	// default 1 = the paper's closed loop).
	Pipeline int

	// Masters scales the deployment out into a hash-slot cluster of that
	// many replication groups, each a full SKV unit (master host + SmartNIC
	// + its own slaves) owning a contiguous share of the 16384 slots.
	// 0 or 1 builds the legacy single-master deployment bit-for-bit.
	Masters int
	// SlavesPerMaster is each group's slave count when Masters > 1 (the
	// multi-master replacement for Slaves, which then must stay 0).
	SlavesPerMaster int
	// SlotRanges overrides the even slot split when Masters > 1; nil
	// assigns slots.EvenSplit(Masters). Ranges must cover all 16384 slots
	// exactly once with group indices in [0, Masters).
	SlotRanges []slots.Range

	// SKV-specific knobs. SKV.ServeReadsFromNIC is derived from NicReads by
	// Build — setting it directly is a configuration error.
	SKV core.Config

	// NicReads is the one authoritative NIC-read-path setting (the design
	// §IV-A ablation). Build derives core.Config.ServeReadsFromNIC from it
	// and rejects inconsistent combinations.
	NicReads NicReadMode

	// WriteConsistency is the deployment's default write acknowledgment
	// level. Async — the zero value — is the legacy fire-and-forget default:
	// the master replies as soon as the write executes. Quorum withholds each
	// write's reply until WriteQuorum slaves have replicated it; All waits
	// for every attached slave. On SKV the NIC enforces the quorum (the host
	// CPU never sees the wait); baselines park the reply on the master's
	// consistency tracker like WAIT. Per-command overrides ride
	// SKV.CONSISTENCY. Build derives core.Config.WriteConsistency from this
	// field — setting SKV.WriteConsistency directly is a configuration error.
	WriteConsistency consistency.Level
	// WriteQuorum is the slave-ack count a quorum write needs (only
	// meaningful with WriteConsistency=Quorum; 0 defaults to 1).
	WriteQuorum int

	// DisableCron switches off serverCron (microbenchmarks only).
	DisableCron bool
}

// NicReadMode selects how the cluster exercises the NIC read path.
type NicReadMode int

const (
	// NicReadsOff (the default) is the paper's design: all reads served by
	// the host, no shadow replica on the SmartNIC.
	NicReadsOff NicReadMode = iota
	// NicReadsServe enables the Nic-KV shadow replica and its client
	// listener, but the workload clients still target the master host —
	// used to compare the replica's keyspace against the master's.
	NicReadsServe
	// NicReadsClients additionally points the workload clients at the
	// SmartNIC endpoint, so reads are served by the ARM cores.
	NicReadsClients
)

func (m NicReadMode) String() string {
	switch m {
	case NicReadsOff:
		return "off"
	case NicReadsServe:
		return "serve"
	case NicReadsClients:
		return "clients"
	}
	return "?"
}

// Typed consistency-configuration errors, matchable with errors.Is: tooling
// that sweeps configurations (benches, chaos harnesses) can tell "this
// combination is meaningless" apart from other validation failures.
var (
	// ErrQuorumTooLarge: WriteQuorum asks for more slave acks than the
	// topology has slaves — no write could ever be acknowledged.
	ErrQuorumTooLarge = errors.New("write quorum exceeds the deployment's slave count")
	// ErrQuorumNoSlaves: quorum/all consistency on a slave-less (legacy
	// single-node) topology — there is nobody to ack.
	ErrQuorumNoSlaves = errors.New("quorum/all write consistency requires at least one slave")
	// ErrQuorumWithoutLevel: WriteQuorum set while the consistency level
	// isn't quorum (async never parks; all derives its need from the
	// replica count).
	ErrQuorumWithoutLevel = errors.New("WriteQuorum is only meaningful with WriteConsistency=quorum")
)

// Validate reports configuration errors Build would otherwise bake into a
// half-configured cluster.
func (cfg Config) Validate() error {
	if cfg.NicReads != NicReadsOff && cfg.Kind != KindSKV {
		return fmt.Errorf("cluster: NicReads=%s requires Kind=KindSKV (got %s): only the SKV deployment has a SmartNIC to serve reads from", cfg.NicReads, cfg.Kind)
	}
	if cfg.SKV.ServeReadsFromNIC && cfg.NicReads == NicReadsOff {
		return fmt.Errorf("cluster: SKV.ServeReadsFromNIC is derived from Config.NicReads; set NicReads=NicReadsServe or NicReadsClients instead")
	}
	if cfg.ZipfS != 0 {
		if !cfg.Zipf {
			return fmt.Errorf("cluster: ZipfS=%v requires Zipf=true (the skew exponent only shapes the Zipfian distribution)", cfg.ZipfS)
		}
		if cfg.ZipfS <= 1 {
			return fmt.Errorf("cluster: ZipfS=%v is invalid; the Zipfian exponent must be > 1", cfg.ZipfS)
		}
	}
	if cfg.Masters > 1 {
		if cfg.Kind != KindSKV {
			return fmt.Errorf("cluster: Masters=%d requires Kind=KindSKV (got %s): only SKV groups carry the SmartNIC failover plane the slot map repairs through", cfg.Masters, cfg.Kind)
		}
		if cfg.Slaves != 0 {
			return fmt.Errorf("cluster: Masters=%d conflicts with the legacy Slaves field (got %d); size groups with SlavesPerMaster instead", cfg.Masters, cfg.Slaves)
		}
		if cfg.SlavesPerMaster < 1 {
			return fmt.Errorf("cluster: Masters=%d requires SlavesPerMaster >= 1 (got %d): a group without slaves has no failover target", cfg.Masters, cfg.SlavesPerMaster)
		}
		if cfg.NicReads == NicReadsClients {
			return fmt.Errorf("cluster: NicReads=clients is not supported with Masters>1; slot-aware clients route to group hosts")
		}
		if cfg.SlotRanges != nil {
			if err := slots.ValidateRanges(cfg.SlotRanges, cfg.Masters); err != nil {
				return fmt.Errorf("cluster: bad SlotRanges: %w", err)
			}
		}
	} else {
		if cfg.SlavesPerMaster != 0 {
			return fmt.Errorf("cluster: SlavesPerMaster=%d is only meaningful with Masters>1; use Slaves for the single-master deployment", cfg.SlavesPerMaster)
		}
		if cfg.SlotRanges != nil {
			return fmt.Errorf("cluster: SlotRanges is only meaningful with Masters>1")
		}
	}
	if cfg.SKV.WriteConsistency != consistency.Async {
		return fmt.Errorf("cluster: SKV.WriteConsistency is derived from Config.WriteConsistency; set the cluster-level field instead")
	}
	replicas := cfg.Slaves
	if cfg.Masters > 1 {
		replicas = cfg.SlavesPerMaster
	}
	if cfg.WriteConsistency != consistency.Async && replicas == 0 {
		return fmt.Errorf("cluster: WriteConsistency=%s on a topology with no slaves: %w", cfg.WriteConsistency, ErrQuorumNoSlaves)
	}
	if cfg.WriteQuorum < 0 {
		return fmt.Errorf("cluster: WriteQuorum=%d is invalid; the quorum must be >= 1", cfg.WriteQuorum)
	}
	if cfg.WriteQuorum != 0 && cfg.WriteConsistency != consistency.Quorum {
		return fmt.Errorf("cluster: WriteQuorum=%d with WriteConsistency=%s: %w", cfg.WriteQuorum, cfg.WriteConsistency, ErrQuorumWithoutLevel)
	}
	if cfg.WriteConsistency == consistency.Quorum && cfg.WriteQuorum > replicas {
		return fmt.Errorf("cluster: WriteQuorum=%d but the topology has %d slaves per master: %w", cfg.WriteQuorum, replicas, ErrQuorumTooLarge)
	}
	return nil
}

// zipfS resolves the configured skew exponent.
func (cfg Config) zipfS() float64 {
	if cfg.ZipfS != 0 {
		return cfg.ZipfS
	}
	return workload.DefaultZipfS
}

// Group is one replication group of a multi-master deployment: a complete
// SKV unit (master host + SmartNIC offload + slaves) owning a share of the
// hash-slot space.
type Group struct {
	Index int

	Master      *server.Server
	Slaves      []*server.Server
	SlaveAgents []*core.SlaveAgent
	HostKV      *core.HostKV
	NicKV       *core.NicKV

	MasterMachine *fabric.Machine
	SlaveMachines []*fabric.Machine
}

// Cluster is a built deployment.
type Cluster struct {
	Cfg    Config
	Eng    *sim.Engine
	Net    *fabric.Network
	Params *model.Params

	Master      *server.Server
	Slaves      []*server.Server
	SlaveAgents []*core.SlaveAgent // SKV only
	HostKV      *core.HostKV       // SKV only
	NicKV       *core.NicKV        // SKV only
	Clients     []*workload.Client

	MasterMachine *fabric.Machine
	SlaveMachines []*fabric.Machine

	// Multi-master state (Masters > 1). Groups holds every replication
	// group; the legacy fields above then alias group 0 (Master, HostKV,
	// NicKV, MasterMachine) or the concatenation across groups (Slaves,
	// SlaveAgents, SlaveMachines), so group-agnostic helpers keep working.
	// SlotMap is the deployment's authoritative hash-slot table, mutated by
	// per-group failover; SlotClients replace Clients as the load.
	Groups      []*Group
	SlotMap     *slots.Map
	SlotClients []*workload.SlotClient

	// epByName resolves slot-map addresses (endpoint names) for the
	// slot-aware clients.
	epByName map[string]*fabric.Endpoint

	clientsStarted bool
}

// Build constructs the deployment. Nothing runs until the engine does.
// Build panics on an invalid Config (see Config.Validate) — a half-built
// cluster would silently measure the wrong system.
func Build(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg.SKV.ServeReadsFromNIC = cfg.NicReads != NicReadsOff
	cfg.SKV.WriteConsistency = cfg.WriteConsistency
	if cfg.Clients <= 0 {
		cfg.Clients = 1
	}
	if cfg.KeySpace <= 0 {
		cfg.KeySpace = 10_000
	}
	if cfg.ValueSize <= 0 {
		cfg.ValueSize = 64
	}
	p := cfg.Params
	if p == nil {
		def := model.Default()
		p = &def
	}
	eng := sim.New(cfg.Seed + 1)
	net := fabric.New(eng, p)
	net.SetMetrics(metrics.NewRegistry("fabric", eng.Now))
	c := &Cluster{Cfg: cfg, Eng: eng, Net: net, Params: p}

	makeStack := func(ep *fabric.Endpoint, proc *sim.Proc) transport.Stack {
		if cfg.Kind == KindTCP {
			return tcpsim.New(net, ep, proc)
		}
		return rconn.New(net, ep, proc)
	}
	serverWakeup := p.CompChannelWake
	if cfg.Kind == KindTCP {
		serverWakeup = p.TCPWakeup
	}

	newServer := func(name string, m *fabric.Machine, seed int64, route *server.ClusterRouting) (*server.Server, transport.Stack) {
		coreRes := sim.NewCore(eng, name+"-core", p.HostCoreSpeed)
		proc := sim.NewProc(eng, coreRes, serverWakeup)
		stack := makeStack(m.Host, proc)
		srv := server.New(server.Options{
			Name:        name,
			Params:      p,
			Seed:        seed,
			Port:        core.ClientPort,
			DisableCron: cfg.DisableCron,
			Shards:      p.HostShards,
			Listeners:   p.RouteListeners,
			Cluster:     route,
			// Every node gets the consistency defaults — slaves too, since a
			// promoted slave must keep enforcing the deployment's level.
			WriteConsistency: cfg.WriteConsistency,
			WriteQuorum:      cfg.WriteQuorum,
		}, eng, stack, proc)
		if rs, okRDMA := stack.(*rconn.Stack); okRDMA {
			rs.Device().SetMetrics(srv.Metrics())
		}
		return srv, stack
	}

	if cfg.Masters > 1 {
		c.buildMulti(newServer, makeStack)
		return c
	}

	// Master (with SmartNIC when SKV). Host endpoints register in epByName
	// so control processes (respPool users like the ack-loss ledger) can dial
	// nodes by name on the legacy topology too.
	c.epByName = make(map[string]*fabric.Endpoint)
	c.MasterMachine = net.NewMachine("master", cfg.Kind == KindSKV)
	c.epByName[c.MasterMachine.Host.Name()] = c.MasterMachine.Host
	c.Master, _ = newServer("master", c.MasterMachine, cfg.Seed+100, nil)

	if cfg.Kind == KindSKV {
		c.NicKV = core.NewNicKV(eng, net, c.MasterMachine, p, cfg.SKV)
		c.HostKV = core.AttachMaster(c.Master, net, c.MasterMachine.NIC, cfg.SKV)
	}

	// Slaves.
	for i := 0; i < cfg.Slaves; i++ {
		m := net.NewMachine(fmt.Sprintf("slave%d", i), false)
		c.SlaveMachines = append(c.SlaveMachines, m)
		c.epByName[m.Host.Name()] = m.Host
		srv, _ := newServer(fmt.Sprintf("slave%d", i), m, cfg.Seed+200+int64(i), nil)
		c.Slaves = append(c.Slaves, srv)
		if cfg.Kind == KindSKV {
			// SLAVEOF through the SmartNIC (§III-C). Delay one tick so the
			// NIC listener exists before the first request.
			agent := core.AttachSlave(srv, net, c.MasterMachine.NIC, cfg.SKV)
			c.SlaveAgents = append(c.SlaveAgents, agent)
		} else {
			target := c.MasterMachine.Host
			srvRef := srv
			eng.At(0, func() { srvRef.SlaveOf(target, core.ClientPort) })
		}
	}

	// Clients, one machine each (the load generator box is never the
	// bottleneck, as with redis-benchmark on its own server).
	for i := 0; i < cfg.Clients; i++ {
		m := net.NewMachine(fmt.Sprintf("client%d", i), false)
		gen := workload.NewGeneratorSkew(cfg.Seed+300+int64(i), cfg.KeySpace, cfg.ValueSize, 1.0-cfg.GetRatio, cfg.Zipf, cfg.zipfS())
		wakeup := p.ClientWakeup
		cl := workload.NewClient(fmt.Sprintf("client%d", i), eng, p, m.Host, makeStack, gen, wakeup)
		cl.Pipeline = cfg.Pipeline
		c.Clients = append(c.Clients, cl)
	}
	return c
}

// buildMulti assembles the hash-slot deployment: Masters replication
// groups, one shared epoch-versioned slot map every server routes against,
// and slot-aware clients. Group gi's machines are named g<gi>.master /
// g<gi>.slave<i>; seeds are offset by 1000*gi so groups draw independent
// but reproducible randomness. Client naming and seeding match the legacy
// path (the load is a property of the deployment, not of the group count).
func (c *Cluster) buildMulti(
	newServer func(name string, m *fabric.Machine, seed int64, route *server.ClusterRouting) (*server.Server, transport.Stack),
	makeStack func(*fabric.Endpoint, *sim.Proc) transport.Stack,
) {
	cfg := c.Cfg
	p := c.Params
	eng := c.Eng
	net := c.Net
	c.epByName = make(map[string]*fabric.Endpoint)

	// Master machines first: the slot map's addresses are their host
	// endpoint names, and every server is born already routing against it.
	masterMachines := make([]*fabric.Machine, cfg.Masters)
	addrs := make([]string, cfg.Masters)
	for gi := range masterMachines {
		m := net.NewMachine(fmt.Sprintf("g%d.master", gi), true)
		masterMachines[gi] = m
		addrs[gi] = m.Host.Name()
		c.epByName[m.Host.Name()] = m.Host
	}
	slotMap, err := slots.NewMap(cfg.Masters, cfg.SlotRanges, addrs)
	if err != nil {
		panic(fmt.Sprintf("cluster: slot map construction failed after validation: %v", err))
	}
	c.SlotMap = slotMap

	for gi := 0; gi < cfg.Masters; gi++ {
		g := &Group{Index: gi, MasterMachine: masterMachines[gi]}
		route := &server.ClusterRouting{Self: gi, Map: slotMap, Port: core.ClientPort}
		skvCfg := cfg.SKV
		skvCfg.Group = fmt.Sprintf("g%d", gi)

		name := fmt.Sprintf("g%d.master", gi)
		g.Master, _ = newServer(name, g.MasterMachine, cfg.Seed+100+1000*int64(gi), route)
		g.NicKV = core.NewNicKV(eng, net, g.MasterMachine, p, skvCfg)
		g.HostKV = core.AttachMaster(g.Master, net, g.MasterMachine.NIC, skvCfg)

		for i := 0; i < cfg.SlavesPerMaster; i++ {
			sname := fmt.Sprintf("g%d.slave%d", gi, i)
			m := net.NewMachine(sname, false)
			g.SlaveMachines = append(g.SlaveMachines, m)
			c.epByName[m.Host.Name()] = m.Host
			srv, _ := newServer(sname, m, cfg.Seed+200+1000*int64(gi)+int64(i), route)
			g.Slaves = append(g.Slaves, srv)
			agent := core.AttachSlave(srv, net, g.MasterMachine.NIC, skvCfg)
			g.SlaveAgents = append(g.SlaveAgents, agent)
			// Per-slot failover: promotion moves the group's slots to this
			// slave's address (epoch bump → clients repair on MOVED or
			// reconnect); demotion on master recovery moves them back. This
			// models the converged gossip state, not per-node propagation.
			gidx := gi
			slaveEP := m.Host
			masterEP := g.MasterMachine.Host
			srv.OnRoleChange = func(r server.Role) {
				if r == server.RoleMaster {
					slotMap.SetAddr(gidx, slaveEP.Name())
				} else {
					slotMap.SetAddr(gidx, masterEP.Name())
				}
			}
		}
		c.Groups = append(c.Groups, g)

		// Legacy aliases (group 0 / concatenations) keep group-agnostic
		// helpers like AwaitReplication working untouched.
		if gi == 0 {
			c.Master = g.Master
			c.HostKV = g.HostKV
			c.NicKV = g.NicKV
			c.MasterMachine = g.MasterMachine
		}
		c.Slaves = append(c.Slaves, g.Slaves...)
		c.SlaveAgents = append(c.SlaveAgents, g.SlaveAgents...)
		c.SlaveMachines = append(c.SlaveMachines, g.SlaveMachines...)
	}

	resolve := func(addr string) *fabric.Endpoint {
		ep := c.epByName[addr]
		if ep == nil {
			panic(fmt.Sprintf("cluster: slot map address %q resolves to no endpoint", addr))
		}
		return ep
	}
	for i := 0; i < cfg.Clients; i++ {
		m := net.NewMachine(fmt.Sprintf("client%d", i), false)
		gen := workload.NewGeneratorSkew(cfg.Seed+300+int64(i), cfg.KeySpace, cfg.ValueSize, 1.0-cfg.GetRatio, cfg.Zipf, cfg.zipfS())
		cl := workload.NewSlotClient(fmt.Sprintf("client%d", i), eng, p, m.Host, makeStack, gen,
			p.ClientWakeup, slotMap, resolve, core.ClientPort)
		cl.Pipeline = cfg.Pipeline
		c.SlotClients = append(c.SlotClients, cl)
	}
}

// AwaitReplication runs the simulation until every slave reaches the
// steady-state replication phase, or the timeout elapses. Returns success.
func (c *Cluster) AwaitReplication(timeout sim.Duration) bool {
	deadline := c.Eng.Now().Add(timeout)
	for c.Eng.Now() < deadline {
		if c.replicationReady() {
			return true
		}
		c.Eng.Run(c.Eng.Now().Add(sim.Millisecond))
	}
	return c.replicationReady()
}

func (c *Cluster) replicationReady() bool {
	if c.Cfg.Kind == KindSKV {
		for _, a := range c.SlaveAgents {
			if !a.Synced() {
				return false
			}
		}
		return true
	}
	for _, s := range c.Slaves {
		if !s.SyncedWithMaster() {
			return false
		}
	}
	return true
}

// StartClients connects all clients to the master; their closed loops
// begin as soon as each dial completes.
func (c *Cluster) StartClients() {
	if c.clientsStarted {
		return
	}
	c.clientsStarted = true
	if len(c.SlotClients) > 0 {
		for _, cl := range c.SlotClients {
			cl.Start()
		}
		return
	}
	target := c.MasterMachine.Host
	if c.Cfg.NicReads == NicReadsClients {
		target = c.MasterMachine.NIC
	}
	for _, cl := range c.Clients {
		cl.Connect(target, core.ClientPort)
	}
}

// Result summarizes one measured run.
type Result struct {
	System     string
	Clients    int
	Slaves     int
	ValueSize  int
	Throughput float64 // operations per second
	Avg        sim.Duration
	P50        sim.Duration
	P99        sim.Duration
	Ops        uint64
	ErrReplies uint64
	// MasterUtil is the master dispatch core's busy fraction over the window.
	MasterUtil float64
	// ShardUtils is each master shard core's busy fraction (HostShards > 1).
	ShardUtils []float64
	// RouteUtils is each master routing core's busy fraction
	// (RouteListeners > 1).
	RouteUtils []float64
	// NicUtil is Nic-KV's main ARM core busy fraction (SKV only).
	NicUtil float64
	// Masters is the replication-group count (1 for legacy deployments).
	Masters int
	// GroupOps is the per-group operation count over the measure window
	// (Masters > 1 only) — the slot-load balance across groups.
	GroupOps []uint64
	// Moved counts MOVED redirects clients absorbed over the whole run
	// (Masters > 1 only).
	Moved uint64
}

func (r Result) String() string {
	return fmt.Sprintf("%-11s clients=%-3d slaves=%d val=%-5d  tput=%8.1f kops/s  avg=%7.1fµs  p50=%7.1fµs  p99=%7.1fµs",
		r.System, r.Clients, r.Slaves, r.ValueSize,
		r.Throughput/1000, r.Avg.Micros(), r.P50.Micros(), r.P99.Micros())
}

// Measure starts the clients (if not yet), lets the system warm up, then
// measures for the given duration and aggregates client-side statistics —
// the redis-benchmark protocol.
func (c *Cluster) Measure(warmup, duration sim.Duration) Result {
	c.StartClients()
	start := c.Eng.Now().Add(warmup)
	for _, cl := range c.Clients {
		cl.WarmupUntil = start
	}
	for _, cl := range c.SlotClients {
		cl.WarmupUntil = start
	}
	end := start.Add(duration)
	// Utilization is reported over the measure window — the same window
	// throughput and latency are measured over — so handshake, sync, and
	// warmup CPU don't pollute the busy fraction. Run to the window start,
	// snapshot each core's busy-time accumulator, then run the window.
	c.Eng.Run(start)
	busyAt := func(core *sim.Core) sim.Duration { return core.BusyTime() }
	masterBusy := busyAt(c.Master.Proc().Core)
	var shardBusy, routeBusy []sim.Duration
	for _, sp := range c.Master.ShardProcs() {
		shardBusy = append(shardBusy, busyAt(sp.Core))
	}
	for _, rp := range c.Master.RouteProcs() {
		routeBusy = append(routeBusy, busyAt(rp.Core))
	}
	var nicBusy sim.Duration
	if c.NicKV != nil {
		nicBusy = busyAt(c.NicKV.Proc().Core)
	}
	groupStart := make([]uint64, len(c.Groups))
	for _, cl := range c.SlotClients {
		for g, n := range cl.GroupDone {
			groupStart[g] += n
		}
	}
	c.Eng.Run(end)
	windowUtil := func(before sim.Duration, core *sim.Core) float64 {
		u := float64(core.BusyTime()-before) / float64(duration)
		if u > 1 {
			u = 1
		}
		return u
	}

	agg := stats.NewHistogram()
	var errs, moved uint64
	for _, cl := range c.Clients {
		agg.Merge(cl.Hist)
		errs += cl.ErrReplies
	}
	for _, cl := range c.SlotClients {
		agg.Merge(cl.Hist)
		errs += cl.ErrReplies
		moved += cl.Moved
	}
	nClients := len(c.Clients)
	if len(c.SlotClients) > 0 {
		nClients = len(c.SlotClients)
	}
	masters := 1
	if len(c.Groups) > 0 {
		masters = len(c.Groups)
	}
	res := Result{
		System:     c.Cfg.Kind.String(),
		Clients:    nClients,
		Slaves:     len(c.Slaves),
		Masters:    masters,
		Moved:      moved,
		ValueSize:  c.Cfg.ValueSize,
		Throughput: float64(agg.Count()) / duration.Seconds(),
		Avg:        agg.Mean(),
		P50:        agg.Percentile(50),
		P99:        agg.Percentile(99),
		Ops:        agg.Count(),
		ErrReplies: errs,
		MasterUtil: windowUtil(masterBusy, c.Master.Proc().Core),
	}
	for i, sp := range c.Master.ShardProcs() {
		res.ShardUtils = append(res.ShardUtils, windowUtil(shardBusy[i], sp.Core))
	}
	for i, rp := range c.Master.RouteProcs() {
		res.RouteUtils = append(res.RouteUtils, windowUtil(routeBusy[i], rp.Core))
	}
	if c.NicKV != nil {
		res.NicUtil = windowUtil(nicBusy, c.NicKV.Proc().Core)
	}
	if len(c.Groups) > 0 {
		res.GroupOps = make([]uint64, len(c.Groups))
		for _, cl := range c.SlotClients {
			for g, n := range cl.GroupDone {
				res.GroupOps[g] += n
			}
		}
		for g := range res.GroupOps {
			res.GroupOps[g] -= groupStart[g]
		}
	}
	return res
}

// Run advances the simulation to the given horizon (helper for scenario
// scripts like the availability experiment).
func (c *Cluster) Run(until sim.Time) { c.Eng.Run(until) }

// Snapshots collects the metrics snapshot of every registry in the cluster
// — the fabric, the master, each slave, and (SKV) the NIC — ordered by node
// name so two identical runs render byte-identically.
func (c *Cluster) Snapshots() []metrics.Snapshot {
	var snaps []metrics.Snapshot
	if reg := c.Net.Metrics(); reg != nil {
		snaps = append(snaps, reg.Snapshot())
	}
	addServer := func(s *server.Server) {
		snaps = append(snaps, s.Metrics().Snapshot())
		for _, reg := range s.ShardRegistries() {
			snaps = append(snaps, reg.Snapshot())
		}
		for _, reg := range s.RouteRegistries() {
			snaps = append(snaps, reg.Snapshot())
		}
	}
	if len(c.Groups) > 0 {
		for _, g := range c.Groups {
			addServer(g.Master)
			for _, s := range g.Slaves {
				addServer(s)
			}
			if g.NicKV != nil {
				snaps = append(snaps, g.NicKV.Metrics().Snapshot())
			}
		}
	} else {
		addServer(c.Master)
		for _, s := range c.Slaves {
			addServer(s)
		}
		if c.NicKV != nil {
			snaps = append(snaps, c.NicKV.Metrics().Snapshot())
		}
	}
	for i := 1; i < len(snaps); i++ {
		for j := i; j > 0 && snaps[j].Node < snaps[j-1].Node; j-- {
			snaps[j], snaps[j-1] = snaps[j-1], snaps[j]
		}
	}
	return snaps
}

// SnapshotsString renders all cluster snapshots as one deterministic text
// block (test oracle: two identical sim runs must produce identical output).
func (c *Cluster) SnapshotsString() string {
	var b strings.Builder
	for _, s := range c.Snapshots() {
		b.WriteString(s.String())
	}
	return b.String()
}
