package cluster

import (
	"fmt"
	"testing"

	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/store"
	"skv/internal/transport"
)

// requireSameKeyspace fails the test unless the NIC shadow replica holds
// logically the same keyspace as the master store.
func requireSameKeyspace(t *testing.T, label string, master, replica *store.Store) {
	t.Helper()
	want := fingerprint(master)
	got := fingerprint(replica)
	if len(got) != len(want) {
		t.Fatalf("%s: NIC replica has %d keys, master %d", label, len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("%s: NIC replica divergence at %s: %q vs master %q", label, k, got[k], v)
		}
	}
}

// TestNicReplicaKeyspaceEqualsMasterAcrossShards drives the mixed write
// workload through the master and requires the NIC shadow replica — fed
// only from the replication stream it relays — to end logically identical
// to the master keyspace at 1, 2 and 4 host shards (the replica mirrors
// the host shard layout on the ARM cores).
func TestNicReplicaKeyspaceEqualsMasterAcrossShards(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 0, Seed: 31,
			Params: shardParams(shards), SKV: core.DefaultConfig(),
			NicReads: NicReadsServe})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("shards=%d: sync failed", shards)
		}
		randomWriter(t, c, 77, 2000)
		c.Eng.Run(c.Eng.Now().Add(200 * sim.Millisecond))
		if c.NicKV.ReplicaSize() == 0 {
			t.Fatalf("shards=%d: NIC replica empty after mixed workload", shards)
		}
		requireSameKeyspace(t, fmt.Sprintf("shards=%d", shards), c.Master.Store(), c.NicKV.ReplicaStore())
		if gaps := c.NicKV.Metrics().Counter("nickv.replica.gaps").Value(); gaps != 0 {
			t.Fatalf("shards=%d: replica saw %d stream gaps", shards, gaps)
		}
	}
}

// TestNicReplicaKeyspaceEqualsMasterRouted: the routing plane must not
// perturb the replication stream the NIC shadow replica is fed from — the
// merge stage still owns the one serialized order. Same oracle as above,
// with 2 and 4 routing listeners in front of 4 shards.
func TestNicReplicaKeyspaceEqualsMasterRouted(t *testing.T) {
	for _, listeners := range []int{2, 4} {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 0, Seed: 31,
			Params: routeParams(4, listeners), SKV: core.DefaultConfig(),
			NicReads: NicReadsServe})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("listeners=%d: sync failed", listeners)
		}
		randomWriter(t, c, 77, 2000)
		c.Eng.Run(c.Eng.Now().Add(200 * sim.Millisecond))
		if c.NicKV.ReplicaSize() == 0 {
			t.Fatalf("listeners=%d: NIC replica empty after mixed workload", listeners)
		}
		requireSameKeyspace(t, fmt.Sprintf("listeners=%d", listeners), c.Master.Store(), c.NicKV.ReplicaStore())
		if gaps := c.NicKV.Metrics().Counter("nickv.replica.gaps").Value(); gaps != 0 {
			t.Fatalf("listeners=%d: replica saw %d stream gaps", listeners, gaps)
		}
	}
}

// TestNicReplicaChaosKeyspaceEquality re-runs every chaos scenario with the
// NIC shadow replica enabled at 1, 2 and 4 host shards: after the cluster
// converges, the replica must match the master keyspace — failovers,
// partitions and reconnect replays (trimmed, not double-applied) included.
func TestNicReplicaChaosKeyspaceEquality(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		for _, s := range ChaosScenarios() {
			s := s
			shards := shards
			s.NicReads = NicReadsServe
			s.Tune = func(p *model.Params) { p.HostShards = shards }
			t.Run(fmt.Sprintf("%s/shards%d", s.Name, shards), func(t *testing.T) {
				c, h, err := RunScenario(s)
				if err != nil {
					t.Fatalf("convergence failed:\n%v\ntrace:\n%s", err, h.TraceString())
				}
				requireSameKeyspace(t, s.Name, c.Master.Store(), c.NicKV.ReplicaStore())
			})
		}
	}
}

// nicDo sends commands to an endpoint over a fresh connection and returns
// the replies, one per command, in order.
func nicDo(t *testing.T, c *Cluster, cmds [][]byte) []resp.Value {
	t.Helper()
	m := c.Net.NewMachine("nic-probe", false)
	proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, m.Name+"-core", 1.0), c.Params.ClientWakeup)
	stack := rconn.New(c.Net, m.Host, proc)
	var got []resp.Value
	ep := c.MasterMachine.NIC
	stack.Dial(ep, core.ClientPort, func(conn transport.Conn, err error) {
		if err != nil {
			t.Errorf("dial NIC: %v", err)
			return
		}
		var r resp.Reader
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			for {
				v, ok, _ := r.ReadValue()
				if !ok {
					break
				}
				got = append(got, v)
			}
		})
		for _, cmd := range cmds {
			conn.Send(cmd)
		}
	})
	c.Eng.Run(c.Eng.Now().Add(100 * sim.Millisecond))
	return got
}

// TestNicReplicaHonorsDBIndex is the satellite regression: the shadow
// replica used to flatten every numbered database into db 0 because the
// stream applier discarded the SELECT context. Writes to db 1 must land in
// the replica's db 1, and a NIC client must be able to SELECT into it.
func TestNicReplicaHonorsDBIndex(t *testing.T) {
	for _, shards := range []int{1, 4} {
		c := Build(Config{Kind: KindSKV, Slaves: 1, Clients: 0, Seed: 35,
			Params: shardParams(shards), SKV: core.DefaultConfig(),
			NicReads: NicReadsServe})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("shards=%d: sync failed", shards)
		}

		// Write through the master into db 0 and db 1 over a real client
		// connection so the writes flow through the replication machinery.
		m := c.Net.NewMachine("writer", false)
		proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, "writer-core", 1.0), c.Params.ClientWakeup)
		stack := rconn.New(c.Net, m.Host, proc)
		stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
			if err != nil {
				t.Errorf("dial master: %v", err)
				return
			}
			conn.Send(resp.EncodeCommand("SET", "k0", "zero"))
			conn.Send(resp.EncodeCommand("SELECT", "1"))
			conn.Send(resp.EncodeCommand("SET", "k1", "one"))
		})
		c.Eng.Run(c.Eng.Now().Add(200 * sim.Millisecond))

		rs := c.NicKV.ReplicaStore()
		if got := rs.DBSize(0); got != 1 {
			t.Fatalf("shards=%d: replica db0 has %d keys, want 1", shards, got)
		}
		if got := rs.DBSize(1); got != 1 {
			t.Fatalf("shards=%d: replica db1 has %d keys, want 1 (SELECT context lost)", shards, got)
		}

		// A NIC client can SELECT into db 1 and read the key from the ARM
		// cores.
		replies := nicDo(t, c, [][]byte{
			resp.EncodeCommand("GET", "k0"),
			resp.EncodeCommand("SELECT", "1"),
			resp.EncodeCommand("GET", "k1"),
			resp.EncodeCommand("SET", "nope", "x"),
		})
		if len(replies) != 4 {
			t.Fatalf("shards=%d: %d replies, want 4", shards, len(replies))
		}
		if replies[0].String() != "zero" {
			t.Fatalf("shards=%d: NIC GET k0 = %s", shards, replies[0].String())
		}
		if !replies[1].IsOK() {
			t.Fatalf("shards=%d: NIC SELECT 1 = %s", shards, replies[1].String())
		}
		if replies[2].String() != "one" {
			t.Fatalf("shards=%d: NIC GET k1 (db1) = %s", shards, replies[2].String())
		}
		if replies[3].Type != resp.TypeError {
			t.Fatalf("shards=%d: NIC SET accepted: %s", shards, replies[3].String())
		}
	}
}

// TestBuildRejectsInconsistentNicConfig pins the unified-knob contract:
// NicReads is the one authoritative setting, and the combinations Build
// used to half-accept now fail validation.
func TestBuildRejectsInconsistentNicConfig(t *testing.T) {
	if err := (Config{Kind: KindTCP, NicReads: NicReadsClients}).Validate(); err == nil {
		t.Fatal("NicReads on a NIC-less deployment passed validation")
	}
	if err := (Config{Kind: KindRDMA, NicReads: NicReadsServe}).Validate(); err == nil {
		t.Fatal("NicReads on KindRDMA passed validation")
	}
	skv := core.DefaultConfig()
	skv.ServeReadsFromNIC = true
	if err := (Config{Kind: KindSKV, SKV: skv}).Validate(); err == nil {
		t.Fatal("directly-set SKV.ServeReadsFromNIC without NicReads passed validation")
	}
	if err := (Config{Kind: KindSKV, NicReads: NicReadsServe}).Validate(); err != nil {
		t.Fatalf("valid SKV NicReads config rejected: %v", err)
	}
	if err := (Config{Kind: KindTCP}).Validate(); err != nil {
		t.Fatalf("valid baseline config rejected: %v", err)
	}
}
