package cluster

import (
	"strings"
	"testing"

	"skv/internal/core"
	"skv/internal/sim"
	"skv/internal/slots"
)

// TestMultiMasterValidate pins the Config surface: every invalid
// combination of the multi-master knobs is rejected with a clear error,
// and the valid shapes build.
func TestMultiMasterValidate(t *testing.T) {
	cases := []struct {
		name    string
		cfg     Config
		wantErr string // "" = valid
	}{
		{"legacy", Config{Kind: KindSKV, Slaves: 2}, ""},
		{"masters-1-is-legacy", Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 1}, Slaves: 2}, ""},
		{"multi-ok", Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1}}, ""},
		{"multi-custom-ranges", Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1,
			SlotRanges: []slots.Range{{Start: 0, End: 99, Group: 1}, {Start: 100, End: slots.NumSlots - 1, Group: 0}}}}, ""},
		{"multi-zipf-skew", Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1}, Zipf: true, ZipfS: 1.5}, ""},

		{"multi-needs-skv", Config{Kind: KindRDMA, Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1}}, "requires Kind=KindSKV"},
		{"multi-rejects-legacy-slaves", Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1}, Slaves: 3}, "conflicts with the legacy Slaves field"},
		{"multi-needs-slaves", Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 2}}, "SlavesPerMaster >= 1"},
		{"multi-rejects-nic-clients", Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1}, NicReads: NicReadsClients}, "NicReads=clients is not supported"},
		{"multi-bad-ranges", Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1,
			SlotRanges: []slots.Range{{Start: 0, End: 100, Group: 0}}}}, "bad SlotRanges"},
		{"legacy-rejects-spm", Config{Kind: KindSKV, Slaves: 2, Cluster: ClusterOpts{SlavesPerMaster: 1}}, "only meaningful with Masters>1"},
		{"legacy-rejects-ranges", Config{Kind: KindSKV, Slaves: 2,
			Cluster: ClusterOpts{SlotRanges: []slots.Range{{Start: 0, End: slots.NumSlots - 1, Group: 0}}}}, "only meaningful with Masters>1"},
		{"zipfs-needs-zipf", Config{Kind: KindSKV, Slaves: 2, ZipfS: 1.5}, "requires Zipf=true"},
		{"zipfs-must-exceed-one", Config{Kind: KindSKV, Slaves: 2, Zipf: true, ZipfS: 0.9}, "must be > 1"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: expected an error containing %q, got nil", tc.name, tc.wantErr)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.wantErr)
		}
	}
}

// TestMastersOneIdenticalToLegacy pins the refactor's off state: Masters=1
// must build the exact legacy topology — byte-identical metric snapshots
// and an identical keyspace under the same scripted workload.
func TestMastersOneIdenticalToLegacy(t *testing.T) {
	runOnce := func(masters int) (string, map[string]string) {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 0, Seed: 31,
			Cluster: ClusterOpts{Masters: masters}, SKV: core.DefaultConfig()})
		if c.SlotMap != nil || len(c.Groups) != 0 {
			t.Fatalf("masters=%d built multi-master state", masters)
		}
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("masters=%d: sync failed", masters)
		}
		randomWriter(t, c, 77, 2000)
		return c.SnapshotsString(), fingerprint(c.Master.Store())
	}
	snap0, fp0 := runOnce(0)
	snap1, fp1 := runOnce(1)
	if snap0 != snap1 {
		t.Fatal("Masters=0 and Masters=1 rendered different metric snapshots — the legacy topology is not preserved")
	}
	if len(fp0) == 0 || len(fp0) != len(fp1) {
		t.Fatalf("keyspace mismatch: %d vs %d keys", len(fp0), len(fp1))
	}
	for k, v := range fp0 {
		if fp1[k] != v {
			t.Fatalf("keyspace divergence at %s: %q vs %q", k, v, fp1[k])
		}
	}
}

// TestMastersOneChaosTraceIdentical extends the off-state pin to the chaos
// harness: the hardest scenario (master restart after failover) must
// produce byte-identical failure traces with Masters unset and Masters=1.
func TestMastersOneChaosTraceIdentical(t *testing.T) {
	runOnce := func(masters int) (string, string) {
		s := ChaosScenarios()[0] // master-restart-split-brain
		s.Masters = masters
		c, h, err := RunScenario(s)
		if err != nil {
			t.Fatalf("masters=%d: %v", masters, err)
		}
		return h.TraceString(), c.SnapshotsString()
	}
	trace0, snap0 := runOnce(0)
	trace1, snap1 := runOnce(1)
	if trace0 != trace1 {
		t.Fatalf("chaos traces diverged between Masters=0 and Masters=1:\n--- 0:\n%s--- 1:\n%s", trace0, trace1)
	}
	if snap0 != snap1 {
		t.Fatal("chaos metric snapshots diverged between Masters=0 and Masters=1")
	}
}

// TestMultiMasterKeyspacePartitioned drives slot-aware clients against a
// 2-group deployment and checks the routing contract end to end: work
// lands on both groups, bootstrap MOVED redirects repair the client maps,
// no error replies leak through, every key lives on the group that owns
// its slot, and each group's slaves replicate their master exactly.
func TestMultiMasterKeyspacePartitioned(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Cluster: ClusterOpts{Masters: 2, SlavesPerMaster: 1},
		Clients: 4, Pipeline: 4, Seed: 31, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	res := c.Measure(20*sim.Millisecond, 150*sim.Millisecond)
	for _, cl := range c.Clients {
		cl.Stop()
	}
	c.Eng.RunFor(500 * sim.Millisecond)

	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	if res.ErrReplies != 0 {
		t.Fatalf("%d error replies leaked to clients", res.ErrReplies)
	}
	if res.Moved == 0 {
		t.Fatal("no MOVED redirects: the stale client bootstrap never exercised the redirect path")
	}
	if len(res.GroupOps) != 2 || res.GroupOps[0] == 0 || res.GroupOps[1] == 0 {
		t.Fatalf("load did not reach both groups: %v", res.GroupOps)
	}
	var refreshes uint64
	for _, cl := range c.Clients {
		refreshes += cl.Stats().MapRefreshes
	}
	if refreshes == 0 {
		t.Fatal("no client ever refreshed its slot map")
	}
	if err := c.CheckConvergence(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for gi, g := range c.Groups {
		fp := fingerprint(g.Master.Store())
		total += len(fp)
		for k := range fp {
			key := strings.TrimPrefix(k, "0/")
			if got := c.SlotMap.Owner(slots.Slot([]byte(key))); got != gi {
				t.Fatalf("key %q lives on g%d but its slot belongs to g%d", key, gi, got)
			}
		}
		for si, s := range g.Slaves {
			got := fingerprint(s.Store())
			if len(got) != len(fp) {
				t.Fatalf("g%d slave%d holds %d keys, master holds %d", gi, si, len(got), len(fp))
			}
			for k, v := range fp {
				if got[k] != v {
					t.Fatalf("g%d slave%d diverged at %s", gi, si, k)
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no keys written anywhere")
	}
}

// TestMultiMasterThroughputScales: two groups with the same per-master
// tuning must clear well over 1.5x the aggregate SET throughput of one
// (the ext-cluster bench pins the full 1/2/4 sweep). The client count is
// the same in both runs — the slot clients' per-group windows keep the
// offered load per master constant as groups are added.
func TestMultiMasterThroughputScales(t *testing.T) {
	run := func(masters int) Result {
		cfg := Config{Kind: KindSKV, Clients: 8, Pipeline: 8,
			Seed: 67, SKV: core.DefaultConfig()}
		if masters == 1 {
			cfg.Slaves = 1
		} else {
			cfg.Cluster = ClusterOpts{Masters: masters, SlavesPerMaster: 1}
		}
		c := Build(cfg)
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("masters=%d: sync failed", masters)
		}
		return c.Measure(20*sim.Millisecond, 150*sim.Millisecond)
	}
	res1 := run(1)
	res2 := run(2)
	if res2.ErrReplies != 0 {
		t.Fatalf("masters=2: %d error replies", res2.ErrReplies)
	}
	scale := res2.Throughput / res1.Throughput
	if scale < 1.5 {
		t.Fatalf("2 masters scaled only %.2fx over 1 (%.0f vs %.0f ops/s)",
			scale, res2.Throughput, res1.Throughput)
	}
}

// TestPerSlotFailoverIsolation is the blast-radius contract: crash one
// group's master under load and the surviving group must show zero errors
// and no empty availability buckets, while the victim group blips and then
// recovers on the promoted slave. The whole scenario must also be
// deterministic: a second run reproduces the trace, the timeline, and the
// metric snapshots byte-for-byte.
func TestPerSlotFailoverIsolation(t *testing.T) {
	runOnce := func() *PerSlotFailoverResult {
		r, err := RunPerSlotFailover(7)
		if err != nil {
			if r != nil {
				t.Logf("timeline:\n%s", r.Avail.String())
				t.Logf("trace:\n%s", r.H.TraceString())
			}
			t.Fatal(err)
		}
		return r
	}
	r := runOnce()
	survivor := 0
	for b, n := range r.Avail.Done[survivor] {
		if n == 0 {
			t.Errorf("survivor g%d served nothing in bucket %d — failover bled across groups\n%s",
				survivor, b, r.Avail.String())
		}
	}
	for b, n := range r.Avail.Errs[survivor] {
		if n != 0 {
			t.Errorf("survivor g%d returned %d errors in bucket %d\n%s", survivor, n, b, r.Avail.String())
		}
	}
	empty, recovered := r.Avail.Outage(r.Victim)
	if empty == 0 {
		t.Errorf("victim g%d shows no outage at all — the crash did nothing\n%s", r.Victim, r.Avail.String())
	}
	if !recovered {
		t.Errorf("victim g%d never served again after the outage\n%s", r.Victim, r.Avail.String())
	}
	if r.Promoted < 0 {
		t.Error("no slave was promoted in the victim group")
	}

	r2 := runOnce()
	if r.H.TraceString() != r2.H.TraceString() {
		t.Error("chaos traces differ across identical per-slot failover runs")
	}
	if r.Avail.String() != r2.Avail.String() {
		t.Error("availability timelines differ across identical per-slot failover runs")
	}
	if r.C.SnapshotsString() != r2.C.SnapshotsString() {
		t.Error("metric snapshots differ across identical per-slot failover runs")
	}
}
