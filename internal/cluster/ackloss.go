// Ack-loss probe: the experiment behind the consistency plane's headline
// claim. A closed-loop ledger writer hammers a single-master SKV deployment
// whose replication stream is batched (so acknowledged bytes can sit
// unflushed on the master), the master crashes mid-load, the NIC fails over,
// and the probe then audits every write the cluster ACKNOWLEDGED against the
// promoted survivor's store. Under async consistency the batching window is
// a durability hole — acked writes die with the master. Under quorum/all the
// reply only fires after enough slaves hold the write and failover promotes
// the max-offset survivor, so the audit must come back clean.
package cluster

import (
	"fmt"
	"strconv"
	"strings"

	"skv/internal/consistency"
	"skv/internal/core"
	"skv/internal/resp"
	"skv/internal/server"
	"skv/internal/sim"
)

// ackLossSpec pins the probe's shape (the determinism tests re-run it
// verbatim and diff the traces).
const (
	aklSlaves       = 3
	aklLedgerKeys   = 8
	aklLedgerWindow = 4
	aklBatchCmds    = 64
	aklBatchDelay   = 2 * sim.Millisecond
	aklCrashAt      = 307 * sim.Millisecond
	aklRunFor       = 1300 * sim.Millisecond
	aklSettle       = 700 * sim.Millisecond
)

// ackLedger is the probe's oracle: a closed-loop writer that SETs a fixed
// key ring with a strictly increasing sequence per write and records, per
// key, the highest sequence the cluster acknowledged. Unlike the reshard
// ledger it never re-routes — the probe targets one master and stops cold
// when that master is crashed, so replies in flight at the crash are simply
// never recorded (an unacked write is allowed to be lost).
type ackLedger struct {
	pool *respPool
	addr string
	keys []string

	running bool
	seq     int
	acked   map[string]int // key -> highest acked seq

	WritesAcked uint64
	Errs        uint64
}

func newAckLedger(c *Cluster, addr string, n int) *ackLedger {
	l := &ackLedger{pool: newRespPool(c, "ackledger"), addr: addr, acked: map[string]int{}}
	for i := 0; i < n; i++ {
		l.keys = append(l.keys, fmt.Sprintf("akl:%d", i))
	}
	return l
}

func (l *ackLedger) start() {
	l.running = true
	for i := 0; i < aklLedgerWindow; i++ {
		l.next()
	}
}

func (l *ackLedger) stop() { l.running = false }

func (l *ackLedger) next() {
	if !l.running {
		return
	}
	l.pool.proc.Core.Charge(l.pool.c.Params.ClientThinkCPU)
	seq := l.seq
	l.seq++
	k := l.keys[seq%len(l.keys)]
	l.pool.send(l.addr, resp.EncodeCommand("SET", k, ackValue(k, seq)), func(rv resp.Value) {
		if !l.running {
			return // reply surfaced after the crash cutoff: not counted
		}
		if rv.IsError() {
			l.Errs++
		} else if prev, seen := l.acked[k]; !seen || seq > prev {
			l.acked[k] = seq
			l.WritesAcked++
		} else {
			l.WritesAcked++
		}
		l.next()
	})
}

// ackValue is the unique per-write payload; the audit parses the sequence
// back out of the survivor's store.
func ackValue(k string, seq int) string { return fmt.Sprintf("%s#%d", k, seq) }

func ackSeq(val string) (int, bool) {
	i := strings.LastIndexByte(val, '#')
	if i < 0 {
		return 0, false
	}
	n, err := strconv.Atoi(val[i+1:])
	if err != nil {
		return 0, false
	}
	return n, true
}

// AckLossResult is everything RunAckLossProbe measured.
type AckLossResult struct {
	C *Cluster
	H *Chaos

	// WritesAcked counts replies the ledger recorded before the crash; Lost
	// lists each acknowledged write the promoted survivor does not hold
	// (empty = the consistency level held its durability promise).
	WritesAcked uint64
	Lost        []string
	// Promoted names the slave the NIC promoted.
	Promoted string
}

// RunAckLossProbe builds a 1-master/3-slave SKV deployment at the given
// write consistency level, batches the replication stream (64 cmds / 2ms —
// the window that makes async acks volatile), crashes the master mid-load,
// and audits the ledger against the promoted survivor. The returned error
// covers harness failures (replication or failover never happened); lost
// writes are data, reported in AckLossResult.Lost.
func RunAckLossProbe(level consistency.Level, w int, seed int64) (*AckLossResult, error) {
	p := ChaosParams(0)
	p.ReplBatchMaxCmds = aklBatchCmds
	p.ReplBatchMaxDelay = aklBatchDelay
	c := Build(Config{
		Kind:        KindSKV,
		Slaves:      aklSlaves,
		Clients:     1,
		Seed:        seed,
		Params:      p,
		SKV:         core.Config{ProgressInterval: 50 * sim.Millisecond},
		Consistency: ConsistencyOpts{Level: level, Quorum: w},
	})
	if !c.AwaitReplication(2 * sim.Second) {
		return nil, fmt.Errorf("ackloss: initial replication did not complete")
	}
	h := NewChaos(c)
	h.Note("replication ready")

	ledger := newAckLedger(c, c.MasterMachine.Host.Name(), aklLedgerKeys)
	ledger.start()
	// Stop the ledger in the same instant the master dies: anything without
	// a recorded reply by then does not count as acknowledged.
	h.At(aklCrashAt, "crash master", func(c *Cluster) {
		ledger.stop()
		c.Master.Crash()
	})
	c.Eng.RunFor(aklRunFor)
	h.Note("load stopped")
	c.Eng.RunFor(aklSettle)
	h.Note("settled")

	res := &AckLossResult{C: c, H: h, WritesAcked: ledger.WritesAcked}
	if ledger.Errs > 0 {
		return res, fmt.Errorf("ackloss: ledger absorbed %d error replies", ledger.Errs)
	}
	if ledger.WritesAcked == 0 {
		return res, fmt.Errorf("ackloss: ledger acknowledged no writes before the crash")
	}
	if c.NicKV.Failovers == 0 || c.NicKV.PromotedID() == "" {
		return res, fmt.Errorf("ackloss: the NIC never failed over (promoted=%q)", c.NicKV.PromotedID())
	}
	res.Promoted = c.NicKV.PromotedID()

	// Audit: every acknowledged write must be visible on the promoted
	// survivor, either as the acked value itself or a later one (a write in
	// flight at the crash may have replicated without its reply landing).
	var surv *server.Server
	for _, s := range c.Slaves {
		if s.Alive() && s.Role() == server.RoleMaster {
			if surv != nil {
				return res, fmt.Errorf("ackloss: split brain — two promoted slaves")
			}
			surv = s
		}
	}
	if surv == nil {
		return res, fmt.Errorf("ackloss: no promoted slave is serving as master")
	}
	for _, k := range ledger.keys {
		ackedSeq, wasAcked := ledger.acked[k]
		if !wasAcked {
			continue
		}
		reply, _ := surv.Store().Exec(0, [][]byte{[]byte("get"), []byte(k)})
		var r resp.Reader
		r.Feed(reply)
		v, okV, _ := r.ReadValue()
		if !okV || v.Null {
			res.Lost = append(res.Lost, fmt.Sprintf("%s: acked seq %d, survivor holds nothing", k, ackedSeq))
			continue
		}
		gotSeq, okSeq := ackSeq(string(v.Str))
		if !okSeq {
			res.Lost = append(res.Lost, fmt.Sprintf("%s: acked seq %d, survivor holds garbage %q", k, ackedSeq, v.Str))
			continue
		}
		if gotSeq < ackedSeq {
			res.Lost = append(res.Lost, fmt.Sprintf("%s: acked seq %d, survivor stuck at seq %d", k, ackedSeq, gotSeq))
		}
	}
	return res, nil
}
