package cluster

import (
	"fmt"
	"testing"

	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/sim"
)

// fastProbeParams shrinks the failure-detection timescale so crash/recovery
// tests run quickly; ratios (waiting-time = 2×probe period) match defaults.
func fastProbeParams() *model.Params {
	p := model.Default()
	p.ProbePeriod = 100 * sim.Millisecond
	p.WaitingTime = 200 * sim.Millisecond
	return &p
}

func storeGet(c *Cluster, srvIdx int, key string) string {
	var reply []byte
	if srvIdx < 0 {
		reply, _ = c.Master.Store().Exec(0, [][]byte{[]byte("GET"), []byte(key)})
	} else {
		reply, _ = c.Slaves[srvIdx].Store().Exec(0, [][]byte{[]byte("GET"), []byte(key)})
	}
	return string(reply)
}

func TestTCPClusterServesClients(t *testing.T) {
	c := Build(Config{Kind: KindTCP, Slaves: 0, Clients: 2, Seed: 1})
	res := c.Measure(20*sim.Millisecond, 200*sim.Millisecond)
	if res.Ops < 1000 {
		t.Fatalf("TCP cluster did only %d ops", res.Ops)
	}
	if res.ErrReplies != 0 {
		t.Fatalf("unexpected error replies: %d", res.ErrReplies)
	}
	if res.Throughput < 50_000 || res.Throughput > 200_000 {
		t.Fatalf("TCP throughput %.0f ops/s outside plausible Redis range", res.Throughput)
	}
}

func TestRDMAClusterFasterThanTCP(t *testing.T) {
	tcp := Build(Config{Kind: KindTCP, Slaves: 0, Clients: 8, Seed: 2})
	rdma := Build(Config{Kind: KindRDMA, Slaves: 0, Clients: 8, Seed: 2})
	rt := tcp.Measure(20*sim.Millisecond, 200*sim.Millisecond)
	rr := rdma.Measure(20*sim.Millisecond, 200*sim.Millisecond)
	if rr.Throughput < 2*rt.Throughput {
		t.Fatalf("RDMA-Redis (%.0f) should be ≥2× Redis (%.0f) at 8 clients (Fig 10a)",
			rr.Throughput, rt.Throughput)
	}
}

func TestRDMAReplicationSyncsAndPropagates(t *testing.T) {
	c := Build(Config{Kind: KindRDMA, Slaves: 3, Clients: 4, Seed: 3})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("slaves never reached steady state")
	}
	res := c.Measure(20*sim.Millisecond, 100*sim.Millisecond)
	if res.Ops == 0 {
		t.Fatal("no ops measured")
	}
	// Let in-flight replication drain.
	c.Eng.Run(c.Eng.Now().Add(100 * sim.Millisecond))
	// Every slave's dataset must match the master for a sample of keys.
	keys := c.Master.Store().DBSize(0)
	if keys == 0 {
		t.Fatal("master has no keys after SET workload")
	}
	for i := range c.Slaves {
		if got := c.Slaves[i].Store().DBSize(0); got != keys {
			t.Errorf("slave%d has %d keys, master has %d", i, got, keys)
		}
	}
}

func TestSKVReplicationSyncsAndPropagates(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 3, Clients: 4, Seed: 4, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("SKV slaves never reached steady state")
	}
	res := c.Measure(20*sim.Millisecond, 100*sim.Millisecond)
	if res.Ops == 0 {
		t.Fatal("no ops measured")
	}
	c.Eng.Run(c.Eng.Now().Add(200 * sim.Millisecond))
	keys := c.Master.Store().DBSize(0)
	for i := range c.Slaves {
		if got := c.Slaves[i].Store().DBSize(0); got != keys {
			t.Errorf("slave%d has %d keys, master has %d", i, got, keys)
		}
	}
	// The headline mechanism: exactly one replication request per
	// propagated write, regardless of 3 slaves.
	if c.HostKV.ReplReqsSent != c.Master.WritesPropagated {
		t.Errorf("master sent %d repl requests for %d writes (must be 1:1)",
			c.HostKV.ReplReqsSent, c.Master.WritesPropagated)
	}
	if c.NicKV.ReplRequests == 0 {
		t.Error("Nic-KV saw no replication requests")
	}
}

func TestSKVValueConsistency(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 2, Seed: 5, KeySpace: 50, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	c.Measure(10*sim.Millisecond, 100*sim.Millisecond)
	c.Eng.Run(c.Eng.Now().Add(200 * sim.Millisecond))
	// Spot-check actual values, not just counts.
	mismatch := 0
	for k := 0; k < 50; k++ {
		key := fmt.Sprintf("key:%010d", k)
		want := storeGet(c, -1, key)
		for i := range c.Slaves {
			if got := storeGet(c, i, key); got != want {
				mismatch++
				t.Errorf("key %s: master=%q slave%d=%q", key, want, i, got)
				if mismatch > 5 {
					t.FailNow()
				}
			}
		}
	}
}

func TestSKVBeatsRDMARedisWithSlaves(t *testing.T) {
	rdma := Build(Config{Kind: KindRDMA, Slaves: 3, Clients: 8, Seed: 6})
	skv := Build(Config{Kind: KindSKV, Slaves: 3, Clients: 8, Seed: 6, SKV: core.DefaultConfig()})
	if !rdma.AwaitReplication(2*sim.Second) || !skv.AwaitReplication(2*sim.Second) {
		t.Fatal("sync failed")
	}
	rr := rdma.Measure(50*sim.Millisecond, 400*sim.Millisecond)
	rs := skv.Measure(50*sim.Millisecond, 400*sim.Millisecond)
	gain := rs.Throughput/rr.Throughput - 1
	if gain < 0.05 {
		t.Fatalf("SKV gain over RDMA-Redis = %.1f%% (skv=%.0f rdma=%.0f); paper reports ≈14%%",
			gain*100, rs.Throughput, rr.Throughput)
	}
	if rs.P99 >= rr.P99 {
		t.Fatalf("SKV p99 (%v) should beat RDMA-Redis p99 (%v)", rs.P99, rr.P99)
	}
}

func TestSKVSlaveFailureDetectedAndServiceContinues(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ProgressInterval = 50 * sim.Millisecond
	c := Build(Config{Kind: KindSKV, Slaves: 3, Clients: 4, Seed: 7, Params: fastProbeParams(), SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	c.StartClients()
	base := c.Eng.Now()
	// Crash slave 1, recover it later (the Fig 14 schedule, compressed).
	c.Eng.At(base.Add(200*sim.Millisecond), func() { c.Slaves[1].Crash() })
	c.Eng.At(base.Add(700*sim.Millisecond), func() { c.Slaves[1].Recover() })

	c.Eng.Run(base.Add(600 * sim.Millisecond))
	if c.NicKV.ValidSlaves() != 2 {
		t.Fatalf("after crash+waiting-time, valid slaves = %d, want 2", c.NicKV.ValidSlaves())
	}
	c.Eng.Run(base.Add(1400 * sim.Millisecond))
	if c.NicKV.ValidSlaves() != 3 {
		t.Fatalf("after recovery, valid slaves = %d, want 3", c.NicKV.ValidSlaves())
	}
	// The recovered slave must converge with the master again.
	c.Eng.Run(base.Add(1600 * sim.Millisecond))
	for _, cl := range c.Clients {
		cl.Stop()
	}
	c.Eng.Run(base.Add(2 * sim.Second))
	keys := c.Master.Store().DBSize(0)
	if got := c.Slaves[1].Store().DBSize(0); got != keys {
		t.Fatalf("recovered slave has %d keys, master %d", got, keys)
	}
	// The client never saw an error (Fig 14: "the client is not aware of
	// the failure of slave").
	for _, cl := range c.Clients {
		if errs := cl.Stats().ErrReplies; errs != 0 {
			t.Fatalf("client %s saw %d error replies during slave failure", cl.Name(), errs)
		}
	}
}

func TestSKVMasterFailoverAndRestore(t *testing.T) {
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 1, Seed: 8, Params: fastProbeParams(), SKV: core.DefaultConfig()})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	base := c.Eng.Now()
	c.Eng.At(base.Add(100*sim.Millisecond), func() { c.Master.Crash() })
	c.Eng.Run(base.Add(600 * sim.Millisecond))
	if c.NicKV.MasterValid() {
		t.Fatal("NIC still believes the master is alive")
	}
	if c.NicKV.PromotedID() == "" {
		t.Fatal("no slave was promoted")
	}
	promoted := -1
	for i, a := range c.SlaveAgents {
		if a.Promoted > 0 {
			promoted = i
		}
	}
	if promoted == -1 || c.Slaves[promoted].Role().String() != "master" {
		t.Fatalf("promoted slave index %d not in master role", promoted)
	}
	// Original master recovers: it resumes as master, the promoted node is
	// demoted (§III-D).
	c.Eng.At(c.Eng.Now(), func() { c.Master.Recover() })
	c.Eng.Run(c.Eng.Now().Add(600 * sim.Millisecond))
	if !c.NicKV.MasterValid() {
		t.Fatal("recovered master not restored")
	}
	if c.NicKV.PromotedID() != "" {
		t.Fatal("promoted node not demoted after master recovery")
	}
	if c.SlaveAgents[promoted].Demoted == 0 {
		t.Fatal("demote order never reached the promoted slave")
	}
	if c.Slaves[promoted].Role().String() != "slave" {
		t.Fatal("demoted node still in master role")
	}
}

func TestSKVMinSlavesGate(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.MinSlaves = 2
	c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 2, Seed: 9, Params: fastProbeParams(), SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	// Let a status report arrive, then run load: no errors with 2 slaves.
	c.Eng.Run(c.Eng.Now().Add(300 * sim.Millisecond))
	res := c.Measure(20*sim.Millisecond, 100*sim.Millisecond)
	if res.ErrReplies != 0 {
		t.Fatalf("errors with enough slaves: %d", res.ErrReplies)
	}
	// Crash one slave → below min-slaves → writes must fail.
	c.Eng.At(c.Eng.Now(), func() { c.Slaves[0].Crash() })
	c.Eng.Run(c.Eng.Now().Add(600 * sim.Millisecond)) // detection + status propagation
	before := totalErrs(c)
	c.Eng.Run(c.Eng.Now().Add(100 * sim.Millisecond))
	after := totalErrs(c)
	if after == before {
		t.Fatalf("no error replies after dropping below min-slaves (before=%d after=%d)", before, after)
	}
}

func totalErrs(c *Cluster) uint64 {
	var n uint64
	for _, cl := range c.Clients {
		n += cl.Stats().ErrReplies
	}
	return n
}

func TestDeterministicRuns(t *testing.T) {
	run := func() Result {
		c := Build(Config{Kind: KindSKV, Slaves: 3, Clients: 4, Seed: 11, SKV: core.DefaultConfig()})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatal("sync failed")
		}
		return c.Measure(20*sim.Millisecond, 100*sim.Millisecond)
	}
	a, b := run(), run()
	if a.Ops != b.Ops || a.Avg != b.Avg || a.P99 != b.P99 {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestGetWorkloadUnaffectedBySlaves(t *testing.T) {
	// Fig 13: GETs never touch the replication path.
	mk := func(kind Kind) Result {
		cfg := Config{Kind: kind, Slaves: 3, Clients: 8, Seed: 12, GetRatio: 1.0}
		if kind == KindSKV {
			cfg.SKV = core.DefaultConfig()
		}
		c := Build(cfg)
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatal("sync failed")
		}
		return c.Measure(50*sim.Millisecond, 300*sim.Millisecond)
	}
	rr := mk(KindRDMA)
	rs := mk(KindSKV)
	ratio := rs.Throughput / rr.Throughput
	if ratio < 0.97 || ratio > 1.03 {
		t.Fatalf("GET throughput should match: skv=%.0f rdma=%.0f (ratio %.3f)",
			rs.Throughput, rr.Throughput, ratio)
	}
}
