// Live slot migration harness: a SlotMigrator process that reshards a slot
// range between running replication groups through the servers' CLUSTER
// surface (SETSLOT IMPORTING/MIGRATING, GETKEYSINSLOT, DUMP / ASKING+RESTORE
// / MIGRATEDEL, final SETSLOT NODE flip), plus the chaos scenario that runs
// it under mixed slot-aware client load with a value-tracking ledger writer,
// so tests can assert the migration loses no acknowledged write and leaves
// no key served by two groups.
package cluster

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"

	"skv/internal/core"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/slots"
	"skv/internal/transport"
)

// poolRedial spaces reconnect attempts of a respPool connection.
const poolRedial = 20 * sim.Millisecond

// respPool is a minimal deterministic RESP client for in-simulation control
// processes (the slot mover, the ledger writer): one pipelined connection
// per server address, replies matched to callbacks in FIFO order. A closed
// or unreachable connection is re-dialed and the unanswered window resent —
// every command the pool's users issue is idempotent (reads, CAS writes,
// SETSLOT state changes), so replays are safe.
type respPool struct {
	c     *Cluster
	proc  *sim.Proc
	stack transport.Stack
	conns map[string]*poolConn
}

type poolConn struct {
	addr     string
	conn     transport.Conn
	dialing  bool
	reader   resp.Reader
	inflight [][]byte           // unanswered commands, send order
	pending  []func(resp.Value) // their callbacks, same order
}

// newRespPool gives the control process its own machine and core, so its
// protocol traffic rides the same fabric as the workload without stealing
// client or server CPU.
func newRespPool(c *Cluster, name string) *respPool {
	m := c.Net.NewMachine(name, false)
	cr := sim.NewCore(c.Eng, name+"-core", c.Params.HostCoreSpeed)
	proc := sim.NewProc(c.Eng, cr, c.Params.ClientWakeup)
	return &respPool{c: c, proc: proc, stack: rconn.New(c.Net, m.Host, proc), conns: map[string]*poolConn{}}
}

// send issues cmd to the server at addr and calls cb with its reply.
func (p *respPool) send(addr string, cmd []byte, cb func(resp.Value)) {
	pc := p.conns[addr]
	if pc == nil {
		pc = &poolConn{addr: addr}
		p.conns[addr] = pc
	}
	pc.inflight = append(pc.inflight, cmd)
	pc.pending = append(pc.pending, cb)
	if pc.conn != nil {
		pc.conn.Send(cmd)
	} else if !pc.dialing {
		p.dial(pc)
	}
}

func (p *respPool) dial(pc *poolConn) {
	pc.dialing = true
	ep := p.c.epByName[pc.addr]
	if ep == nil {
		panic(fmt.Sprintf("cluster: respPool address %q resolves to no endpoint", pc.addr))
	}
	p.stack.Dial(ep, core.ClientPort, func(conn transport.Conn, err error) {
		pc.dialing = false
		if err != nil {
			p.c.Eng.After(poolRedial, func() { p.redial(pc) })
			return
		}
		pc.conn = conn
		pc.reader = resp.Reader{}
		conn.SetHandler(func(data []byte) { p.onData(pc, conn, data) })
		conn.SetCloseHandler(func() {
			if pc.conn == conn {
				pc.conn = nil
				p.c.Eng.After(poolRedial, func() { p.redial(pc) })
			}
		})
		for _, cmd := range pc.inflight { // resend the unanswered window
			conn.Send(cmd)
		}
	})
}

func (p *respPool) redial(pc *poolConn) {
	if pc.conn == nil && !pc.dialing && len(pc.inflight) > 0 {
		p.dial(pc)
	}
}

func (p *respPool) onData(pc *poolConn, conn transport.Conn, data []byte) {
	if pc.conn != conn {
		return
	}
	pc.reader.Feed(data)
	for {
		v, ok, err := pc.reader.ReadValue()
		if err != nil {
			panic(fmt.Sprintf("cluster: respPool got protocol garbage from %s: %v", pc.addr, err))
		}
		if !ok {
			return
		}
		if len(pc.pending) == 0 {
			continue // reply to a command superseded by a resend
		}
		cb := pc.pending[0]
		pc.pending = pc.pending[1:]
		pc.inflight = pc.inflight[1:]
		cb(v)
	}
}

// poolAsking is the ASKING prefix control processes send before touching an
// importing slot on its target group.
var poolAsking = resp.EncodeCommand("ASKING")

// SlotMigrator reshards hash slots between running groups, key by key, over
// the same client protocol an external redis-cli --cluster reshard would
// use. It is sequential by design — one slot at a time, one key at a time —
// which keeps the schedule deterministic and bounds the migration's load on
// the donors to one in-flight command chain.
type SlotMigrator struct {
	c    *Cluster
	h    *Chaos // optional: trace notes for the determinism oracle
	pool *respPool

	// Batch is the GETKEYSINSLOT page size per drain round (default 32).
	Batch int

	// KeysMoved counts source keys committed at the target (MIGRATEDEL :1).
	// KeyRetries counts CAS misses (the key changed under the mover between
	// DUMP and MIGRATEDEL, forcing a re-dump). Compensations counts keys
	// that vanished at the source mid-move, where the mover deleted its own
	// stale transfer from the target. SlotsDone counts ownership flips.
	KeysMoved     uint64
	KeyRetries    uint64
	Compensations uint64
	SlotsDone     uint64
}

// NewSlotMigrator builds a mover for a multi-master cluster. h may be nil.
func NewSlotMigrator(c *Cluster, h *Chaos) *SlotMigrator {
	if c.SlotMap == nil {
		panic("cluster: SlotMigrator requires a multi-master deployment")
	}
	return &SlotMigrator{c: c, h: h, pool: newRespPool(c, "reshard"), Batch: 32}
}

func (m *SlotMigrator) note(label string) {
	if m.h != nil {
		m.h.Note(label)
	}
}

// Reshard migrates every slot in [start, end] to group target, then calls
// done. Slots the target already owns are skipped. The source of each slot
// is its owner at the moment the slot's migration starts, so a preceding
// failover simply redirects the mover to the promoted address.
func (m *SlotMigrator) Reshard(start, end, target int, done func()) {
	m.note(fmt.Sprintf("reshard [%d..%d] -> g%d begin", start, end, target))
	m.moveSlot(start, end, target, done)
}

func (m *SlotMigrator) moveSlot(slot, end, target int, done func()) {
	if slot > end {
		m.note(fmt.Sprintf("reshard done (%d keys, %d retries, %d compensations)",
			m.KeysMoved, m.KeyRetries, m.Compensations))
		if done != nil {
			done()
		}
		return
	}
	next := func() { m.moveSlot(slot+1, end, target, done) }
	src := m.c.SlotMap.Owner(slot)
	if src == target {
		next()
		return
	}
	srcAddr := m.c.SlotMap.Addr(src)
	tgtAddr := m.c.SlotMap.Addr(target)
	ss := strconv.Itoa(slot)
	// IMPORTING at the target strictly before MIGRATING at the source: from
	// the instant the source starts answering ASK, the target must already
	// admit ASKING requests for the slot.
	m.pool.send(tgtAddr, resp.EncodeCommand("CLUSTER", "SETSLOT", ss, "IMPORTING", strconv.Itoa(src)), func(v resp.Value) {
		m.expectOK(v, slot, "setslot importing")
		m.pool.send(srcAddr, resp.EncodeCommand("CLUSTER", "SETSLOT", ss, "MIGRATING", strconv.Itoa(target)), func(v resp.Value) {
			m.expectOK(v, slot, "setslot migrating")
			m.drainSlot(slot, srcAddr, tgtAddr, target, func() {
				m.SlotsDone++
				next()
			})
		})
	})
}

// drainSlot pages through the source's live keys in the slot and moves each;
// an empty page is the termination proof (during MIGRATING, a key absent at
// the source stays absent — writes to absent keys are ASK-redirected — so a
// quiesced empty GETKEYSINSLOT means the slot is fully drained) and triggers
// the atomic ownership flip.
func (m *SlotMigrator) drainSlot(slot int, srcAddr, tgtAddr string, target int, flipped func()) {
	ss := strconv.Itoa(slot)
	m.pool.send(srcAddr, resp.EncodeCommand("CLUSTER", "GETKEYSINSLOT", ss, strconv.Itoa(m.Batch)), func(v resp.Value) {
		if v.IsError() {
			panic(fmt.Sprintf("cluster: reshard slot %d: getkeysinslot: %s", slot, v.Str))
		}
		if len(v.Array) == 0 {
			m.pool.send(srcAddr, resp.EncodeCommand("CLUSTER", "SETSLOT", ss, "NODE", strconv.Itoa(target)), func(v resp.Value) {
				m.expectOK(v, slot, "setslot node")
				flipped()
			})
			return
		}
		keys := make([]string, len(v.Array))
		for i, e := range v.Array {
			keys[i] = string(e.Str)
		}
		m.moveKeys(keys, 0, srcAddr, tgtAddr, func() {
			m.drainSlot(slot, srcAddr, tgtAddr, target, flipped)
		})
	})
}

func (m *SlotMigrator) moveKeys(keys []string, i int, srcAddr, tgtAddr string, done func()) {
	if i >= len(keys) {
		done()
		return
	}
	m.moveKey(keys[i], nil, srcAddr, tgtAddr, func() {
		m.moveKeys(keys, i+1, srcAddr, tgtAddr, done)
	})
}

// moveKey transfers one key with the optimistic per-key protocol (DESIGN.md
// §13): DUMP at the source, ASKING+RESTORE IFEQ prev at the target, then
// MIGRATEDEL <payload> at the source — a compare-and-delete that commits the
// move only if the source value is still byte-identical to what the target
// now holds. A CAS miss re-dumps; prev carries the last payload the target
// applied, so concurrent ASKING client writes at the target are never
// clobbered (RESTORE IFEQ refuses them, and a :0 there means the target
// already holds a fresher authoritative value than the source copy).
func (m *SlotMigrator) moveKey(key string, prev []byte, srcAddr, tgtAddr string, done func()) {
	m.pool.proc.Core.Charge(m.c.Params.ClientThinkCPU)
	m.pool.send(srcAddr, resp.EncodeCommand("DUMP", key), func(v resp.Value) {
		if v.Null {
			// Gone at the source (a client deleted it, or it expired). If we
			// had already copied an attempt to the target, delete it there —
			// unless an ASKING client has since written a fresher value, in
			// which case the CAS leaves it alone.
			if prev != nil {
				m.Compensations++
				m.pool.send(tgtAddr, poolAsking, func(resp.Value) {})
				m.pool.send(tgtAddr, resp.EncodeCommandBytes([]byte("MIGRATEDEL"), []byte(key), prev), func(resp.Value) { done() })
				return
			}
			done()
			return
		}
		payload := append([]byte(nil), v.Str...)
		restore := [][]byte{[]byte("RESTORE"), []byte(key), payload, []byte("IFEQ"), prev}
		if prev == nil {
			restore[4] = []byte{}
		}
		m.pool.send(tgtAddr, poolAsking, func(resp.Value) {})
		m.pool.send(tgtAddr, resp.EncodeCommandBytes(restore...), func(v resp.Value) {
			if v.IsError() {
				panic(fmt.Sprintf("cluster: reshard restore %q: %s", key, v.Str))
			}
			if v.Int == 0 {
				// Target diverged from our last transfer: an ASKING client
				// wrote there, which can only happen once the key was gone
				// at the source. The target copy is authoritative; done.
				done()
				return
			}
			m.pool.send(srcAddr, resp.EncodeCommandBytes([]byte("MIGRATEDEL"), []byte(key), payload), func(v resp.Value) {
				if v.IsError() {
					panic(fmt.Sprintf("cluster: reshard migratedel %q: %s", key, v.Str))
				}
				if v.Int == 1 {
					m.KeysMoved++
					done()
					return
				}
				// The source value changed between DUMP and MIGRATEDEL:
				// re-dump, remembering what the target currently holds.
				m.KeyRetries++
				m.moveKey(key, payload, srcAddr, tgtAddr, done)
			})
		})
	})
}

func (m *SlotMigrator) expectOK(v resp.Value, slot int, step string) {
	if !v.IsOK() {
		panic(fmt.Sprintf("cluster: reshard slot %d: %s: %s", slot, step, v.String()))
	}
}

// reshardLedger is the scenario's correctness oracle: a closed-loop writer
// that SETs a fixed key set inside the migrated slot range with a unique
// value per write, follows MOVED and ASK redirects itself, and records the
// last value the cluster ACKNOWLEDGED per key. After the migration settles,
// every recorded value must sit in the final owner's store (no acknowledged
// write lost) and the source must hold none of the keys (no key left where
// two groups could serve it) — the two properties a doubly-served or lost
// migration would break.
type reshardLedger struct {
	c      *Cluster
	pool   *respPool
	keys   []string
	window int

	running bool
	seq     int
	acked   map[string]string

	WritesAcked uint64
	Asked       uint64
	Moved       uint64
	Errs        uint64
}

// newReshardLedger picks n deterministic keys hashing into [start, end].
func newReshardLedger(c *Cluster, start, end, n, window int) *reshardLedger {
	l := &reshardLedger{c: c, pool: newRespPool(c, "ledger"), window: window, acked: map[string]string{}}
	for i := 0; len(l.keys) < n; i++ {
		k := fmt.Sprintf("mig:%d", i)
		if s := slots.Slot([]byte(k)); s >= start && s <= end {
			l.keys = append(l.keys, k)
		}
	}
	return l
}

func (l *reshardLedger) start() {
	l.running = true
	for i := 0; i < l.window; i++ {
		l.next()
	}
}

func (l *reshardLedger) stop() { l.running = false }

func (l *reshardLedger) next() {
	if !l.running {
		return
	}
	l.pool.proc.Core.Charge(l.c.Params.ClientThinkCPU)
	k := l.keys[l.seq%len(l.keys)]
	v := fmt.Sprintf("%s#%d", k, l.seq)
	l.seq++
	l.route(k, v)
}

// route targets the key's current owner per the authoritative map (the
// ledger is an oracle, not a staleness test — SlotClient covers stale maps).
func (l *reshardLedger) route(k, v string) {
	addr := l.c.SlotMap.Addr(l.c.SlotMap.Owner(slots.Slot([]byte(k))))
	l.sendSet(addr, k, v, false)
}

func (l *reshardLedger) sendSet(addr, k, v string, asked bool) {
	if asked {
		l.pool.send(addr, poolAsking, func(resp.Value) {})
	}
	l.pool.send(addr, resp.EncodeCommand("SET", k, v), func(rv resp.Value) {
		if rv.IsError() {
			kind, _, raddr, _ := slots.ParseRedirectKind(string(rv.Str))
			switch kind {
			case slots.RedirectMoved:
				l.Moved++
				l.route(k, v) // ownership flipped under us: re-route
				return
			case slots.RedirectAsk:
				l.Asked++
				l.sendSet(raddr, k, v, true)
				return
			}
			l.Errs++
			l.next()
			return
		}
		l.acked[k] = v
		l.WritesAcked++
		l.next()
	})
}

// reshardSpec pins the scenario's shape (the determinism tests re-run it
// verbatim and diff the traces).
const (
	rshMasters      = 2
	rshSlaves       = 1 // per master
	rshClients      = 2
	rshPipeline     = 4
	rshKeySpace     = 4000
	rshGetRatio     = 0.5
	rshSlotStart    = 0
	rshSlotEnd      = 255
	rshTarget       = 1
	rshLedgerKeys   = 16
	rshLedgerWindow = 2
	rshMoveAt       = 150 * sim.Millisecond
	rshRunFor       = 1200 * sim.Millisecond
	rshSettle       = 1 * sim.Second
	rshNoteEvery    = 64 // slots per trace note while resharding
)

// ReshardResult is everything RunReshardUnderLoad measured.
type ReshardResult struct {
	C      *Cluster
	H      *Chaos
	M      *SlotMigrator
	L      *reshardLedger
	Done   bool // the mover flipped the whole range before the horizon
	DoneAt sim.Time
}

// RunReshardUnderLoad builds a 2-group hash-slot deployment, then live-
// migrates slots [rshSlotStart, rshSlotEnd] from group 0 to group 1 while
// slot-aware clients run a mixed GET/SET load over the whole keyspace and
// the ledger writer hammers keys inside the moving range. Returns the
// result plus the first invariant violation.
func RunReshardUnderLoad(seed int64) (*ReshardResult, error) {
	return runReshardUnderLoad(seed, false)
}

// RunReshardUnderLoadTracked is the same scenario with CLIENT TRACKING on
// every slot client: the caches must stay invalidation-coherent while the
// slot range moves owners (MOVED/ASK redirects drop cached keys).
func RunReshardUnderLoadTracked(seed int64) (*ReshardResult, error) {
	return runReshardUnderLoad(seed, true)
}

func runReshardUnderLoad(seed int64, tracked bool) (*ReshardResult, error) {
	p := ChaosParams(0)
	c := Build(Config{
		Kind:     KindSKV,
		Cluster:  ClusterOpts{Masters: rshMasters, SlavesPerMaster: rshSlaves},
		Clients:  rshClients,
		Pipeline: rshPipeline,
		KeySpace: rshKeySpace,
		GetRatio: rshGetRatio,
		Seed:     seed,
		Params:   p,
		SKV:      core.Config{ProgressInterval: 50 * sim.Millisecond},
		Tracking: tracked,
	})
	if !c.AwaitReplication(2 * sim.Second) {
		return nil, fmt.Errorf("reshard: initial replication did not complete")
	}
	h := NewChaos(c)
	h.Note("replication ready")
	c.StartClients()
	ledger := newReshardLedger(c, rshSlotStart, rshSlotEnd, rshLedgerKeys, rshLedgerWindow)
	ledger.start()
	m := NewSlotMigrator(c, h)
	res := &ReshardResult{C: c, H: h, M: m, L: ledger}
	h.At(rshMoveAt, "reshard begins", func(c *Cluster) {
		moveChunk(m, rshSlotStart, res)
	})
	c.Eng.RunFor(rshRunFor)
	ledger.stop()
	for _, cl := range c.Clients {
		cl.Stop()
	}
	h.Note("load stopped")
	c.Eng.RunFor(rshSettle)
	h.Note("settled")
	return res, res.check()
}

// moveChunk reshards rshNoteEvery slots at a time so the chaos trace
// records the migration's progress (a determinism oracle: two identical
// runs must interleave mover progress and load identically).
func moveChunk(m *SlotMigrator, from int, res *ReshardResult) {
	to := from + rshNoteEvery - 1
	if to > rshSlotEnd {
		to = rshSlotEnd
	}
	m.Reshard(from, to, rshTarget, func() {
		if to >= rshSlotEnd {
			res.Done = true
			res.DoneAt = res.C.Eng.Now()
			res.H.Note("reshard complete")
			return
		}
		moveChunk(m, to+1, res)
	})
}

// check asserts the scenario's acceptance invariants; timeline-shaped
// assertions live in the tests so failures print the trace.
func (r *ReshardResult) check() error {
	var errs []string
	add := func(format string, a ...any) { errs = append(errs, fmt.Sprintf(format, a...)) }
	c := r.C

	if !r.Done {
		add("migration did not finish before the horizon (slots done: %d)", r.M.SlotsDone)
	}
	for s := rshSlotStart; s <= rshSlotEnd; s++ {
		if g := c.SlotMap.Owner(s); g != rshTarget {
			add("slot %d still owned by g%d after the reshard", s, g)
			break
		}
		if _, mig := c.SlotMap.Migrating(s); mig {
			add("slot %d still marked MIGRATING after the flip", s)
			break
		}
		if _, imp := c.SlotMap.Importing(s); imp {
			add("slot %d still marked IMPORTING after the flip", s)
			break
		}
	}
	inRange := func(key string) bool {
		s := slots.Slot([]byte(key))
		return s >= rshSlotStart && s <= rshSlotEnd
	}
	// No key may remain where the old owner could still serve it.
	if left := c.Groups[0].Master.Store().KeysWhere(0, 0, inRange); len(left) > 0 {
		add("source still holds %d keys in the moved range (first: %q)", len(left), left[0])
	}
	// Every acknowledged ledger write must be the value the final owner
	// serves: a lost key, a lost update, or a doubly-served write (acked by
	// the source after the key had moved) would all surface as a mismatch.
	tgt := c.Groups[rshTarget].Master.Store()
	for _, k := range r.L.keys {
		v, okV := r.L.acked[k]
		if !okV {
			add("ledger key %q was never acknowledged", k)
			continue
		}
		reply, _ := tgt.Exec(0, [][]byte{[]byte("get"), []byte(k)})
		if want := resp.AppendBulkString(nil, v); !bytes.Equal(reply, want) {
			add("ledger key %q: final owner serves %q, last acked write was %q", k, reply, v)
		}
	}
	if r.L.Errs > 0 {
		add("ledger absorbed %d unexpected error replies", r.L.Errs)
	}
	if r.L.WritesAcked == 0 {
		add("ledger acknowledged no writes")
	}
	if r.M.KeysMoved == 0 {
		add("mover moved no keys")
	}
	if err := c.CheckConvergence(); err != nil {
		add("%v", err)
	}
	if len(errs) == 0 {
		return nil
	}
	return fmt.Errorf("reshard: %s", strings.Join(errs, "; "))
}
