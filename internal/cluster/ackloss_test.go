package cluster

import (
	"testing"

	"skv/internal/consistency"
)

// TestAckLossAsyncLosesAckedWrites pins the motivation for the consistency
// plane: with async (legacy) acknowledgments and a batched replication
// stream, a master crash destroys writes the cluster already acknowledged —
// the replies outran the replication. The probe must observe at least one
// lost acked write, or the quorum experiment has nothing to fix and the
// headline comparison is vacuous.
func TestAckLossAsyncLosesAckedWrites(t *testing.T) {
	res, err := RunAckLossProbe(consistency.Async, 0, 7)
	if err != nil {
		t.Fatalf("probe harness failed: %v\ntrace:\n%s", err, res.H.TraceString())
	}
	if res.WritesAcked == 0 {
		t.Fatal("no writes acknowledged before the crash")
	}
	if len(res.Lost) == 0 {
		t.Fatalf("async lost no acked writes (%d acked): the batching window never opened, probe lost its bite\ntrace:\n%s",
			res.WritesAcked, res.H.TraceString())
	}
	t.Logf("async: %d acked, %d lost (first: %s)", res.WritesAcked, len(res.Lost), res.Lost[0])
}

// TestAckLossQuorumLosesNothing is the headline: same topology, same crash,
// same batching window — but quorum (W=2) writes are only acknowledged once
// two slaves hold them, and the NIC promotes the max-offset survivor. Every
// acknowledged write must be on the promoted master.
func TestAckLossQuorumLosesNothing(t *testing.T) {
	res, err := RunAckLossProbe(consistency.Quorum, 2, 7)
	if err != nil {
		t.Fatalf("probe harness failed: %v\ntrace:\n%s", err, res.H.TraceString())
	}
	if res.WritesAcked == 0 {
		t.Fatal("no writes acknowledged before the crash")
	}
	for _, l := range res.Lost {
		t.Errorf("quorum lost an acked write: %s", l)
	}
	t.Logf("quorum: %d acked, %d lost, promoted %s", res.WritesAcked, len(res.Lost), res.Promoted)
}

// TestAckLossAllLosesNothing runs the strictest level: every attached slave
// must hold a write before its reply fires, so the audit is clean no matter
// which survivor the NIC promotes.
func TestAckLossAllLosesNothing(t *testing.T) {
	res, err := RunAckLossProbe(consistency.All, 0, 7)
	if err != nil {
		t.Fatalf("probe harness failed: %v\ntrace:\n%s", err, res.H.TraceString())
	}
	for _, l := range res.Lost {
		t.Errorf("all lost an acked write: %s", l)
	}
}

// TestAckLossDeterminism reruns the async and quorum probes and requires
// byte-identical traces and metrics — the probe is a chaos scenario and
// inherits the harness's determinism contract.
func TestAckLossDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name  string
		level consistency.Level
		w     int
	}{
		{"async", consistency.Async, 0},
		{"quorum", consistency.Quorum, 2},
	} {
		r1, err1 := RunAckLossProbe(tc.level, tc.w, 7)
		r2, err2 := RunAckLossProbe(tc.level, tc.w, 7)
		if err1 != nil || err2 != nil {
			t.Fatalf("%s: probe failed: %v / %v", tc.name, err1, err2)
		}
		if a, b := r1.H.TraceString(), r2.H.TraceString(); a != b {
			t.Fatalf("%s: traces diverged:\nrun1:\n%s\nrun2:\n%s", tc.name, a, b)
		}
		if a, b := r1.C.SnapshotsString(), r2.C.SnapshotsString(); a != b {
			t.Fatalf("%s: metric snapshots diverged", tc.name)
		}
	}
}
