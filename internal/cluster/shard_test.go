package cluster

import (
	"fmt"
	"testing"

	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

func shardParams(shards int) *model.Params {
	p := model.Default()
	p.HostShards = shards
	return &p
}

// TestSKVKeyspaceIdenticalAcrossShardCounts runs the same scripted mixed
// workload on SKV clusters with 1, 2 and 4 host shards and requires the
// final keyspaces — master and every slave — to be logically identical.
// Sharding may change which core executes a command, never its effect. Each
// shard count also runs twice and must produce byte-identical metric
// snapshots: the sharded pipeline stays inside the determinism contract.
func TestSKVKeyspaceIdenticalAcrossShardCounts(t *testing.T) {
	runOnce := func(shards int) (*Cluster, map[string]string) {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 0, Seed: 31,
			Params: shardParams(shards), SKV: core.DefaultConfig()})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("shards=%d: sync failed", shards)
		}
		randomWriter(t, c, 77, 2000)
		return c, fingerprint(c.Master.Store())
	}
	var ref map[string]string
	for _, shards := range []int{1, 2, 4} {
		c, fp := runOnce(shards)
		if len(fp) == 0 {
			t.Fatalf("shards=%d: master keyspace empty", shards)
		}
		if ref == nil {
			ref = fp
		} else if len(fp) != len(ref) {
			t.Fatalf("shards=%d: master has %d keys, shards=1 had %d", shards, len(fp), len(ref))
		} else {
			for k, v := range ref {
				if fp[k] != v {
					t.Fatalf("shards=%d: master divergence at %s: %q vs %q", shards, k, fp[k], v)
				}
			}
		}
		for i := range c.Slaves {
			got := fingerprint(c.Slaves[i].Store())
			if len(got) != len(ref) {
				t.Fatalf("shards=%d: slave%d has %d keys, want %d", shards, i, len(got), len(ref))
			}
			for k, v := range ref {
				if got[k] != v {
					t.Fatalf("shards=%d: slave%d divergence at %s: %q vs %q", shards, i, k, got[k], v)
				}
			}
		}
		// Determinism: an identical second run renders identical snapshots.
		c2, _ := runOnce(shards)
		if c.SnapshotsString() != c2.SnapshotsString() {
			t.Fatalf("shards=%d: metric snapshots differ across identical runs", shards)
		}
	}
}

// TestWaitCommandAcrossShardCounts checks WAIT semantics survive sharding:
// WAIT is a barrier on the dispatch plane, so the offset it snapshots
// covers every routed write admitted before it, and the acknowledged
// replica count still reaches quorum at every shard count.
func TestWaitCommandAcrossShardCounts(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		cfg := core.DefaultConfig()
		cfg.ProgressInterval = 50 * sim.Millisecond
		p := shardParams(shards)
		p.ProbePeriod = 100 * sim.Millisecond
		p.WaitingTime = 200 * sim.Millisecond
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 1, Seed: 34,
			Params: p, SKV: cfg})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("shards=%d: sync failed", shards)
		}
		c.Measure(10*sim.Millisecond, 50*sim.Millisecond)
		m := c.Net.NewMachine("waiter", false)
		proc := sim.NewProc(c.Eng, sim.NewCore(c.Eng, "waiter-core", 1.0), c.Params.ClientWakeup)
		stack := rconn.New(c.Net, m.Host, proc)
		var got *resp.Value
		stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			var r resp.Reader
			conn.SetHandler(func(data []byte) {
				r.Feed(data)
				if v, ok, _ := r.ReadValue(); ok {
					got = &v
				}
			})
			conn.Send(resp.EncodeCommand("WAIT", "2", "2000"))
		})
		c.Eng.Run(c.Eng.Now().Add(3 * sim.Second))
		if got == nil {
			t.Fatalf("shards=%d: WAIT never replied", shards)
		}
		if got.Type != resp.TypeInteger || got.Int != 2 {
			t.Fatalf("shards=%d: WAIT = %s, want :2", shards, got.String())
		}
	}
}

// TestShardedThroughputScales is the point of the refactor: with the
// keyspace execution spread over four cores, a saturating SET workload
// clears more operations than the single-threaded server, and the shard
// cores actually absorb work (nonzero utilization).
func TestShardedThroughputScales(t *testing.T) {
	run := func(shards int) Result {
		c := Build(Config{Kind: KindSKV, Slaves: 2, Clients: 8, Pipeline: 8,
			Seed: 55, Params: shardParams(shards), SKV: core.DefaultConfig()})
		if !c.AwaitReplication(2 * sim.Second) {
			t.Fatalf("shards=%d: sync failed", shards)
		}
		return c.Measure(20*sim.Millisecond, 200*sim.Millisecond)
	}
	res1 := run(1)
	res4 := run(4)
	if len(res1.ShardUtils) != 0 {
		t.Fatalf("shards=1 reported shard cores: %v", res1.ShardUtils)
	}
	if len(res4.ShardUtils) != 4 {
		t.Fatalf("shards=4 reported %d shard cores", len(res4.ShardUtils))
	}
	busy := 0
	for _, u := range res4.ShardUtils {
		if u > 0.05 {
			busy++
		}
	}
	if busy < 4 {
		t.Fatalf("only %d/4 shard cores absorbed load: %v", busy, res4.ShardUtils)
	}
	if res4.Throughput <= res1.Throughput {
		t.Fatalf("sharding bought nothing: %.0f ops/s at 4 shards vs %.0f at 1",
			res4.Throughput, res1.Throughput)
	}
}

// TestChaosScenariosSharded re-runs the PR-1 failure scenarios with the
// master and slaves running 2 and 4 host shards: every scenario must still
// converge (single master, no promoted leftovers, identical keyspaces), and
// a repeated sharded run must reproduce both its failover timeline and its
// metric snapshots byte-for-byte.
func TestChaosScenariosSharded(t *testing.T) {
	for _, shards := range []int{2, 4} {
		for _, s := range ChaosScenarios() {
			s := s
			shards := shards
			s.Tune = func(p *model.Params) { p.HostShards = shards }
			t.Run(fmt.Sprintf("%s/shards%d", s.Name, shards), func(t *testing.T) {
				c, h, err := RunScenario(s)
				if err != nil {
					t.Fatalf("convergence failed:\n%v\ntrace:\n%s", err, h.TraceString())
				}
				if shards == 4 && s.Name == "master-restart-split-brain" {
					c2, h2, err2 := RunScenario(s)
					if err2 != nil {
						t.Fatalf("second run diverged in outcome: %v", err2)
					}
					if h.TraceString() != h2.TraceString() {
						t.Fatal("sharded failover timeline not deterministic across identical runs")
					}
					if c.SnapshotsString() != c2.SnapshotsString() {
						t.Fatal("sharded metric snapshots not deterministic across identical runs")
					}
				}
			})
		}
	}
}
