package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"skv/internal/core"
	"skv/internal/obj"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/store"
	"skv/internal/tcpsim"
	"skv/internal/transport"
)

// canonicalObject renders an object's logical content order-independently.
func canonicalObject(o *obj.Object) string {
	switch o.Type {
	case obj.TString:
		return "s:" + string(o.StringBytes())
	case obj.TList:
		var parts []string
		o.List().Each(func(v any) bool {
			parts = append(parts, string(v.([]byte)))
			return true
		})
		return "l:" + strings.Join(parts, ",")
	case obj.THash:
		var parts []string
		o.HashEach(func(f string, v []byte) bool {
			parts = append(parts, f+"="+string(v))
			return true
		})
		sort.Strings(parts)
		return "h:" + strings.Join(parts, ",")
	case obj.TSet:
		var parts []string
		o.SetEach(func(m string) bool {
			parts = append(parts, m)
			return true
		})
		sort.Strings(parts)
		return "S:" + strings.Join(parts, ",")
	case obj.TZSet:
		var parts []string
		for _, e := range o.ZRangeByRank(0, -1) {
			parts = append(parts, fmt.Sprintf("%s:%g", e.Member, e.Score))
		}
		return "z:" + strings.Join(parts, ",")
	}
	return "?"
}

// fingerprint captures the whole live keyspace logically.
func fingerprint(s *store.Store) map[string]string {
	out := map[string]string{}
	s.EachEntry(func(dbi int, key string, o *obj.Object, _ int64) bool {
		out[fmt.Sprintf("%d/%s", dbi, key)] = canonicalObject(o)
		return true
	})
	return out
}

// randomWriter issues a random mixed write workload through a real client
// connection (so everything flows through the replication machinery).
func randomWriter(t *testing.T, c *Cluster, seed int64, n int) {
	t.Helper()
	rnd := rand.New(rand.NewSource(seed))
	m := c.Net.NewMachine(fmt.Sprintf("writer%d", seed), false)
	coreRes := sim.NewCore(c.Eng, m.Name+"-core", 1.0)
	proc := sim.NewProc(c.Eng, coreRes, c.Params.ClientWakeup)
	var stack transport.Stack
	if c.Cfg.Kind == KindTCP {
		stack = tcpsim.New(c.Net, m.Host, proc)
	} else {
		stack = rconn.New(c.Net, m.Host, proc)
	}

	var conn transport.Conn
	stack.Dial(c.MasterMachine.Host, core.ClientPort, func(cn transport.Conn, err error) {
		if err != nil {
			t.Errorf("writer dial: %v", err)
			return
		}
		conn = cn
	})
	c.Eng.Run(c.Eng.Now().Add(50 * sim.Millisecond))
	if conn == nil {
		t.Fatal("writer never connected")
	}

	key := func() string { return fmt.Sprintf("k%d", rnd.Intn(40)) }
	member := func() string { return fmt.Sprintf("m%d", rnd.Intn(8)) }
	sent := 0
	var sendBatch func()
	sendBatch = func() {
		for i := 0; i < 50 && sent < n; i++ {
			sent++
			var cmd []byte
			switch rnd.Intn(12) {
			case 0:
				cmd = resp.EncodeCommand("SET", key(), fmt.Sprintf("v%d", rnd.Intn(1000)))
			case 1:
				cmd = resp.EncodeCommand("DEL", key())
			case 2:
				cmd = resp.EncodeCommand("INCR", "counter:"+key())
			case 3:
				cmd = resp.EncodeCommand("APPEND", "str:"+key(), "x")
			case 4:
				cmd = resp.EncodeCommand("LPUSH", "list:"+key(), member())
			case 5:
				cmd = resp.EncodeCommand("RPUSH", "list:"+key(), member())
			case 6:
				cmd = resp.EncodeCommand("LPOP", "list:"+key())
			case 7:
				cmd = resp.EncodeCommand("HSET", "hash:"+key(), member(), fmt.Sprint(rnd.Intn(100)))
			case 8:
				cmd = resp.EncodeCommand("HDEL", "hash:"+key(), member())
			case 9:
				cmd = resp.EncodeCommand("SADD", "set:"+key(), member())
			case 10:
				cmd = resp.EncodeCommand("SREM", "set:"+key(), member())
			case 11:
				cmd = resp.EncodeCommand("ZADD", "zset:"+key(), fmt.Sprint(rnd.Intn(50)), member())
			}
			conn.Send(cmd)
		}
		if sent < n {
			c.Eng.After(sim.Millisecond, sendBatch)
		}
	}
	c.Eng.After(0, sendBatch)
	// Run long enough for all commands and replication to settle.
	c.Eng.Run(c.Eng.Now().Add(2 * sim.Second))
}

func TestReplicationLogicalEquivalenceSKV(t *testing.T) {
	runEquivalence(t, KindSKV)
}

func TestReplicationLogicalEquivalenceRDMA(t *testing.T) {
	runEquivalence(t, KindRDMA)
}

func runEquivalence(t *testing.T, kind Kind) {
	cfg := Config{Kind: kind, Slaves: 2, Clients: 0, Seed: 31}
	if kind == KindSKV {
		cfg.SKV = core.DefaultConfig()
	}
	// Clients:0 is coerced to 1 by Build; that client is simply never
	// started.
	c := Build(cfg)
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	randomWriter(t, c, 77, 2000)

	want := fingerprint(c.Master.Store())
	if len(want) == 0 {
		t.Fatal("master keyspace empty after random workload")
	}
	for i := range c.Slaves {
		got := fingerprint(c.Slaves[i].Store())
		if len(got) != len(want) {
			t.Errorf("slave%d has %d keys, master %d", i, len(got), len(want))
		}
		for k, v := range want {
			if got[k] != v {
				t.Errorf("slave%d divergence at %s:\n  master: %s\n  slave:  %s", i, k, v, got[k])
				return
			}
		}
	}
}
