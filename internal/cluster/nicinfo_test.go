package cluster

import (
	"fmt"
	"strings"
	"testing"

	"skv/internal/core"
	"skv/internal/sim"
)

// TestNicThreadClampSurfaced checks the observability contract around the
// ThreadNum clamp: asking for more replication threads than the SmartNIC
// has ARM cores silently ran fewer — now the effective count is a gauge on
// the NIC registry and a line in the master's INFO SKV section.
func TestNicThreadClampSurfaced(t *testing.T) {
	cfg := core.DefaultConfig()
	cfg.ThreadNum = 99 // far beyond the ARM core count: must clamp
	c := Build(Config{Kind: KindSKV, Slaves: 1, Clients: 0, Seed: 12, SKV: cfg})
	if !c.AwaitReplication(2 * sim.Second) {
		t.Fatal("sync failed")
	}
	eff := c.NicKV.EffectiveThreads()
	if eff != c.Params.NICCores {
		t.Fatalf("EffectiveThreads = %d, want clamp to NICCores = %d", eff, c.Params.NICCores)
	}
	if g := c.NicKV.Metrics().Gauge("nickv.threads.effective").Value(); g != int64(eff) {
		t.Fatalf("gauge nickv.threads.effective = %d, want %d", g, eff)
	}
	// The effective count rides the periodic status frame to the master and
	// surfaces in INFO; run past at least one probe period.
	c.Run(c.Eng.Now().Add(3 * sim.Second))
	reply, _ := c.Master.Store().Exec(0, [][]byte{[]byte("INFO")})
	wantLine := fmt.Sprintf("nic_repl_threads:%d", eff)
	if !strings.Contains(string(reply), wantLine) {
		t.Fatalf("INFO missing %q:\n%s", wantLine, reply)
	}
}
