// Package transport defines the message-oriented connection abstraction the
// SKV servers and clients are written against. Two implementations exist:
//
//   - internal/tcpsim — the kernel TCP stack model used by the "original
//     Redis" baseline (Fig 10's lower curve);
//   - internal/rconn — the RDMA verbs implementation of §III-B
//     (WRITE_WITH_IMM data path, SEND/RECV memory-region exchange,
//     completion event channels), used by RDMA-Redis and SKV.
//
// Both charge their transport's CPU and latency costs on the owning
// process's core, so a server's throughput ceiling emerges from the cost
// model rather than being asserted.
package transport

import (
	"skv/internal/fabric"
	"skv/internal/sim"
)

// Conn is a reliable, ordered, message-oriented connection endpoint.
type Conn interface {
	// Send transmits one application message. It charges the transport's
	// transmit CPU cost on the owner's core; the message departs once the
	// core finishes its currently charged work.
	Send(payload []byte)
	// SetHandler installs the receive callback. It is invoked from the
	// owning Proc with the transport's receive CPU cost already charged.
	SetHandler(fn func(payload []byte))
	// SetCloseHandler installs a callback invoked when the peer closes.
	SetCloseHandler(fn func())
	// Close tears the connection down and notifies the peer.
	Close()
	// Closed reports whether the connection is down.
	Closed() bool
	// LocalAddr and RemoteAddr identify the two fabric endpoints.
	LocalAddr() string
	RemoteAddr() string
	// Transport names the implementation ("tcp" or "rdma").
	Transport() string
}

// Stack is one endpoint's instance of a transport: it can accept and
// initiate connections. A Stack owns its fabric endpoint's receive path.
type Stack interface {
	// Listen registers an accept callback for the port.
	Listen(port int, accept func(Conn))
	// Dial asynchronously connects to a listener; cb receives the
	// connection or an error.
	Dial(remote *fabric.Endpoint, port int, cb func(Conn, error))
	// Endpoint reports the fabric endpoint this stack is bound to.
	Endpoint() *fabric.Endpoint
	// Transport names the implementation ("tcp" or "rdma").
	Transport() string
}

// ProcAssignable is implemented by connections whose delivery process can be
// reassigned after establishment: AssignProc moves the connection's receive
// delivery (and its receive/send CPU accounting) from the stack's owning
// process to the given one. The sharded server's routing plane uses this to
// pin each accepted client connection to a per-listener routing proc, so the
// transport receive path stops consuming dispatch-core cycles. Reassignment
// only affects deliveries scheduled after the call; it must be invoked from
// the owning engine's event context (accept callbacks qualify).
type ProcAssignable interface {
	AssignProc(p *sim.Proc)
}
