package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
)

// AblateNICCache measures the design §IV-A rejects: storing data on the
// SmartNIC and serving reads from its ARM cores (as KV-Direct and Xenic do
// on their very different hardware). The paper keeps all key-value pairs
// in host memory, predicting that NIC-served reads would be slower on an
// off-path SmartNIC due to the weaker processors and the extra NIC-switch
// hop; this experiment quantifies that.
func AblateNICCache() *Experiment {
	e := &Experiment{
		ID:    "ablate-niccache",
		Title: "GET served from host (SKV's choice, §IV-A) vs from SmartNIC replica",
		Header: []string{"clients",
			"host tput", "nic tput",
			"host avg µs", "nic avg µs",
			"host p99 µs", "nic p99 µs"},
		Notes: []string{
			"paper §IV-A: \"the latency of accessing data will increase significantly due to the weaker processors and relatively larger RDMA latency of the off-path SmartNIC\" — so SKV stores all key-value pairs on the host",
		},
	}
	for _, n := range []int{1, 4, 8} {
		host := runNICCacheVariant(n, false)
		nic := runNICCacheVariant(n, true)
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(n),
			kops(host.Throughput), kops(nic.Throughput),
			f1(host.Avg.Micros()), f1(nic.Avg.Micros()),
			f1(host.P99.Micros()), f1(nic.P99.Micros()),
		})
		if n == 8 {
			e.metric("tput_penalty_pct_8c", (1-nic.Throughput/host.Throughput)*100)
			e.metric("avg_latency_blowup_8c", nic.Avg.Micros()/host.Avg.Micros())
		}
	}
	return e
}

func runNICCacheVariant(clients int, fromNIC bool) cluster.Result {
	skvCfg := core.DefaultConfig()
	skvCfg.ServeReadsFromNIC = fromNIC
	cfg := cluster.Config{
		Kind: cluster.KindSKV, Slaves: 0, Clients: clients, Seed: 61,
		GetRatio: 1.0, SKV: skvCfg, ReadsFromNIC: fromNIC,
	}
	c := cluster.Build(cfg)
	// Warm both stores with the full keyspace so GETs hit real values.
	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = 'a' + byte(i%26)
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 10_000
	}
	for i := 0; i < cfg.KeySpace; i++ {
		key := fmt.Sprintf("key:%010d", i)
		c.Master.Store().Exec(0, [][]byte{[]byte("SET"), []byte(key), value})
		if fromNIC {
			c.NicKV.PreloadReplica(key, value)
		}
	}
	return c.Measure(warmup, measure)
}
