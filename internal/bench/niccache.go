package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/model"
)

// AblateNICCache measures the design §IV-A rejects: storing data on the
// SmartNIC and serving reads from its ARM cores (as KV-Direct and Xenic do
// on their very different hardware). The paper keeps all key-value pairs
// in host memory, predicting that NIC-served reads would be slower on an
// off-path SmartNIC due to the weaker processors and the extra NIC-switch
// hop; this experiment quantifies that.
//
// The shards dimension mirrors the Host-KV shard layout on the NIC: with
// HostShards > 1 the replica is split across that many ARM shard cores
// (reads route by key hash, the main ARM core dispatches and merges), so
// the rejected design is measured at its best, not just single-core.
func AblateNICCache() *Experiment {
	e := &Experiment{
		ID:    "ablate-niccache",
		Title: "GET served from host (SKV's choice, §IV-A) vs from SmartNIC replica",
		Header: []string{"shards", "clients",
			"host tput", "nic tput",
			"host avg µs", "nic avg µs",
			"host p99 µs", "nic p99 µs"},
		Notes: []string{
			"paper §IV-A: \"the latency of accessing data will increase significantly due to the weaker processors and relatively larger RDMA latency of the off-path SmartNIC\" — so SKV stores all key-value pairs on the host",
			"shards > 1 splits both the host keyspace and the NIC shadow replica across that many cores (the replica mirrors the host shard layout)",
		},
	}
	type point struct{ shards, clients int }
	points := []point{{1, 1}, {1, 4}, {1, 8}, {2, 8}, {4, 8}}
	for _, pt := range points {
		host := runNICCacheVariant(pt.clients, pt.shards, false)
		nic := runNICCacheVariant(pt.clients, pt.shards, true)
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(pt.shards), fmt.Sprint(pt.clients),
			kops(host.Throughput), kops(nic.Throughput),
			f1(host.Avg.Micros()), f1(nic.Avg.Micros()),
			f1(host.P99.Micros()), f1(nic.P99.Micros()),
		})
		if pt.clients == 8 {
			e.metric(fmt.Sprintf("host_kops_8c_shards%d", pt.shards), host.Throughput/1000)
			e.metric(fmt.Sprintf("nic_kops_8c_shards%d", pt.shards), nic.Throughput/1000)
		}
		if pt.shards == 1 && pt.clients == 8 {
			e.metric("tput_penalty_pct_8c", (1-nic.Throughput/host.Throughput)*100)
			e.metric("avg_latency_blowup_8c", nic.Avg.Micros()/host.Avg.Micros())
		}
	}
	if base := e.Metrics["nic_kops_8c_shards1"]; base > 0 {
		e.metric("nic_gain_pct_shards4", (e.Metrics["nic_kops_8c_shards4"]/base-1)*100)
	}
	return e
}

func runNICCacheVariant(clients, shards int, fromNIC bool) cluster.Result {
	mode := cluster.NicReadsOff
	if fromNIC {
		mode = cluster.NicReadsClients
	}
	p := model.Default()
	p.HostShards = shards
	cfg := cluster.Config{
		Kind: cluster.KindSKV, Slaves: 0, Clients: clients, Seed: 61,
		GetRatio: 1.0, Params: &p, SKV: core.DefaultConfig(), NicReads: mode,
	}
	c := cluster.Build(cfg)
	// Warm both stores with the full keyspace so GETs hit real values.
	value := make([]byte, cfg.ValueSize)
	for i := range value {
		value[i] = 'a' + byte(i%26)
	}
	if cfg.KeySpace == 0 {
		cfg.KeySpace = 10_000
	}
	for i := 0; i < cfg.KeySpace; i++ {
		key := fmt.Sprintf("key:%010d", i)
		c.Master.Store().Exec(0, [][]byte{[]byte("SET"), []byte(key), value})
		if fromNIC {
			c.NicKV.PreloadReplica(key, value)
		}
	}
	return c.Measure(warmup, measure)
}
