package bench

import (
	"strings"
	"testing"
)

func TestExperimentString(t *testing.T) {
	e := &Experiment{
		ID:     "x",
		Title:  "test",
		Header: []string{"col1", "longer-col"},
		Rows:   [][]string{{"a", "b"}, {"ccc", "d"}},
		Notes:  []string{"a note"},
	}
	out := e.String()
	for _, frag := range []string{"== x — test ==", "col1", "longer-col", "ccc", "note: a note"} {
		if !strings.Contains(out, frag) {
			t.Errorf("rendering missing %q:\n%s", frag, out)
		}
	}
}

func TestMetricStorage(t *testing.T) {
	e := &Experiment{}
	e.metric("k", 1.5)
	e.metric("k2", -3)
	if e.Metrics["k"] != 1.5 || e.Metrics["k2"] != -3 {
		t.Fatal("metrics not stored")
	}
}

func TestIDsAndByIDAgree(t *testing.T) {
	for _, id := range IDs() {
		// Don't run them (expensive); just check the dispatcher knows the
		// cheap one and rejects garbage.
		_ = id
	}
	if ByID("nonsense") != nil {
		t.Fatal("unknown id accepted")
	}
	if len(IDs()) != 21 {
		t.Fatalf("expected 21 experiments, got %d", len(IDs()))
	}
}

// TestExtShardsScalesInSmokeMode runs the sharding ablation at smoke scale
// and checks the acceptance properties: four shard cores clear more SETs
// than the single-threaded server, and sharding the dispatch/parse stage
// (listeners ≥ 2) clears more again than the dispatch-owned pipeline.
func TestExtShardsScalesInSmokeMode(t *testing.T) {
	savedWarmup, savedMeasure, savedSmoke := warmup, measure, smoke
	SetSmoke()
	defer func() { warmup, measure, smoke = savedWarmup, savedMeasure, savedSmoke }()
	e := ExtShards()
	if len(e.Rows) != 8 {
		t.Fatalf("rows: %d", len(e.Rows))
	}
	k1, k4 := e.Metrics["kops_shards1_l1"], e.Metrics["kops_shards4_l1"]
	if k1 <= 0 || k4 <= 0 {
		t.Fatalf("missing throughput metrics: %v", e.Metrics)
	}
	if k4 <= k1 {
		t.Fatalf("4 shards (%.1f kops/s) not faster than 1 (%.1f kops/s)", k4, k1)
	}
	if e.Metrics["gain_pct_shards4_l1"] <= 0 {
		t.Fatalf("gain_pct_shards4_l1 = %v", e.Metrics["gain_pct_shards4_l1"])
	}
	// The tentpole: routing listeners clear the dispatch-core ceiling.
	k4l2 := e.Metrics["kops_shards4_l2"]
	if k4l2 <= k4 {
		t.Fatalf("routing plane bought nothing: %.1f kops/s at 4 shards ×2 listeners vs %.1f at ×1", k4l2, k4)
	}
	// And the dispatch core is demoted to a thin merge stage.
	if du := e.Metrics["dispatch_util_pct_shards4_l2"]; du >= e.Metrics["dispatch_util_pct_shards4_l1"] {
		t.Fatalf("dispatch util did not drop: %.0f%% at ×2 listeners vs %.0f%% at ×1",
			du, e.Metrics["dispatch_util_pct_shards4_l1"])
	}
	// Per-caller WAIT: the probes must never trip the global barrier path.
	for _, key := range []string{"shards1_l1", "shards2_l1", "shards4_l1", "shards8_l1",
		"shards4_l2", "shards4_l4", "shards8_l2", "shards8_l4"} {
		if b := e.Metrics["wait_barriers_"+key]; b != 0 {
			t.Fatalf("WAIT probes fenced the pipeline at %s: %v barriers", key, b)
		}
	}
}

// TestAblateNICCacheScalesInSmokeMode runs the §IV-A ablation at smoke
// scale and checks the NIC read path scales with the shard count: the
// sharded shadow replica (4 ARM shard cores) must clear more GETs at 8
// clients than the single-core replica.
func TestAblateNICCacheScalesInSmokeMode(t *testing.T) {
	savedWarmup, savedMeasure, savedSmoke := warmup, measure, smoke
	SetSmoke()
	defer func() { warmup, measure, smoke = savedWarmup, savedMeasure, savedSmoke }()
	e := AblateNICCache()
	if len(e.Rows) != 5 {
		t.Fatalf("rows: %d", len(e.Rows))
	}
	n1, n4 := e.Metrics["nic_kops_8c_shards1"], e.Metrics["nic_kops_8c_shards4"]
	if n1 <= 0 || n4 <= 0 {
		t.Fatalf("missing NIC throughput metrics: %v", e.Metrics)
	}
	if n4 <= n1 {
		t.Fatalf("NIC reads at 4 shards (%.1f kops/s) not faster than 1 (%.1f kops/s)", n4, n1)
	}
	if e.Metrics["nic_gain_pct_shards4"] <= 0 {
		t.Fatalf("nic_gain_pct_shards4 = %v", e.Metrics["nic_gain_pct_shards4"])
	}
}

// TestExtTrackingBeatsNicReadsInSmokeMode runs the caching extension at
// smoke scale and checks the acceptance ordering: the tracked client
// cache must serve effective GET throughput above both the host-served
// and the NIC-served read paths at the default Zipfian skew, with a
// nonzero hit rate doing the lifting.
func TestExtTrackingBeatsNicReadsInSmokeMode(t *testing.T) {
	savedWarmup, savedMeasure, savedSmoke := warmup, measure, smoke
	SetSmoke()
	defer func() { warmup, measure, smoke = savedWarmup, savedMeasure, savedSmoke }()
	e := ExtTracking()
	if len(e.Rows) != 12 {
		t.Fatalf("rows: %d", len(e.Rows))
	}
	host := e.Metrics["host_kops_8c"]
	nic := e.Metrics["nic_kops_8c"]
	tracked := e.Metrics["tracked_host_kops_8c"]
	if host <= 0 || nic <= 0 || tracked <= 0 {
		t.Fatalf("missing throughput metrics: %v", e.Metrics)
	}
	if tracked <= nic {
		t.Fatalf("tracked GETs (%.1f kops/s) did not beat NIC-served reads (%.1f kops/s)", tracked, nic)
	}
	if tracked <= host {
		t.Fatalf("tracked GETs (%.1f kops/s) did not beat host-served reads (%.1f kops/s)", tracked, host)
	}
	if hr := e.Metrics["tracked_host_hit_rate_8c"]; hr <= 0 {
		t.Fatalf("tracked hit rate = %v", hr)
	}
	if e.Metrics["tracked_vs_nic_gain_pct_8c"] <= 0 {
		t.Fatalf("tracked_vs_nic_gain_pct_8c = %v", e.Metrics["tracked_vs_nic_gain_pct_8c"])
	}
}

func TestFig3RunsAndPreservesOrdering(t *testing.T) {
	e := Fig3()
	if e == nil || len(e.Rows) != 3 {
		t.Fatalf("fig3 rows: %+v", e)
	}
	hostHost := e.Metrics["host_host_64B_us"]
	remoteNIC := e.Metrics["remote_to_nic_64B_us"]
	localNIC := e.Metrics["local_to_nic_64B_us"]
	if !(localNIC < hostHost && hostHost < remoteNIC) {
		t.Fatalf("Fig 3 ordering violated: local=%v hosthost=%v remote=%v",
			localNIC, hostHost, remoteNIC)
	}
	// "Only a little lower": within 25%.
	if localNIC < 0.75*hostHost {
		t.Fatalf("local NIC latency too far below host↔host: %v vs %v", localNIC, hostHost)
	}
	// All in the low single-digit µs like the paper.
	for _, v := range []float64{hostHost, remoteNIC, localNIC} {
		if v < 0.5 || v > 10 {
			t.Fatalf("latency %vµs outside Fig 3 scale", v)
		}
	}
}
