package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/consistency"
	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/sim"
)

// ExtQuorum prices the consistency plane: the identical SKV deployment
// (1 master, 3 slaves, SET-only closed-loop load) measured at each write
// consistency level. Under async the reply fires from the host the moment
// the write executes; under quorum/all the Nic-KV withholds it until W
// slaves report the write's offset, so the client pays the replication
// apply latency — the gate releases column counts the NIC's msgAckRelease
// watermarks that fired the parked replies. The async↔quorum delta is the
// paper-level trade the ack-loss probe motivates: what zero acked-write
// loss under failover costs in throughput and tail latency.
func ExtQuorum() *Experiment {
	e := &Experiment{
		ID:    "ext-quorum",
		Title: "Tunable write consistency (SKV, 3 slaves, SET-only) — extension",
		Header: []string{"level", "kops/s", "p99 µs", "gate releases", "err replies"},
		Notes: []string{
			"extension beyond the paper: NIC-enforced quorum acknowledgments — the master gates each write's reply behind a msgGate frame and the Nic-KV releases a watermark once W slaves report the offset",
			"async is the legacy reply-on-execute path (zero gates); all waits for every attached slave",
			"rows share the deployment, seed and load; only the consistency level differs",
			"the ack-loss probe (internal/cluster/ackloss.go) demonstrates what the async rows risk: acked writes die with a crashed master, while quorum/all rows survive failover losslessly",
		},
	}
	for _, lv := range []struct {
		label string
		level consistency.Level
		w     int
	}{
		{"async", consistency.Async, 0},
		{"quorum W=1", consistency.Quorum, 1},
		{"quorum W=2", consistency.Quorum, 2},
		{"all", consistency.All, 0},
	} {
		p := model.Default()
		c := cluster.Build(cluster.Config{
			Kind: cluster.KindSKV, Slaves: 3, Clients: 8, Pipeline: 4,
			GetRatio: 0, Seed: 91, Params: &p, SKV: core.DefaultConfig(),
			Consistency: cluster.ConsistencyOpts{Level: lv.level, Quorum: lv.w},
		})
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ext-quorum: sync failed")
		}
		r := c.Measure(warmup, measure)
		if r.ErrReplies != 0 {
			panic(fmt.Sprintf("ext-quorum: %d error replies (%s)", r.ErrReplies, lv.label))
		}
		releases := c.NicKV.Metrics().Counter("nickv.gate.releases").Value()
		if lv.level == consistency.Async && releases != 0 {
			panic("ext-quorum: async rows must not gate")
		}
		if lv.level != consistency.Async && releases == 0 {
			panic(fmt.Sprintf("ext-quorum: %s released no gates — the NIC quorum path never engaged", lv.label))
		}
		e.Rows = append(e.Rows, []string{lv.label, kops(r.Throughput), f1(r.P99.Micros()),
			fmt.Sprint(releases), fmt.Sprint(r.ErrReplies)})
		key := map[string]string{"async": "async", "quorum W=1": "q1", "quorum W=2": "q2", "all": "all"}[lv.label]
		e.metric("kops_"+key, r.Throughput/1000)
		e.metric("p99_us_"+key, r.P99.Micros())
	}
	return e
}
