package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/sim"
)

// ExtBatch is an extension experiment beyond the paper: replication-stream
// batching (ReplBatchMaxCmds). Writes arriving within one event-loop busy
// period coalesce into a single batch, so the master posts one replication
// work request for many writes instead of one each. The wrs/write column is
// HostKV.ReplReqsSent / Server.WritesPropagated — 1.0 unbatched, dropping
// toward 1/batch as the budget grows; the equivalent rdma-redis ratio is
// ReplStream batches per write (each batch still costs one send per slave).
func ExtBatch() *Experiment {
	e := &Experiment{
		ID:    "ext-batch",
		Title: "Replication batching (SET, 8 clients ×8 deep, 3 slaves) — extension",
		Header: []string{"batch", "skv kops/s", "skv p99 µs", "skv wrs/write",
			"rdma kops/s", "rdma batches/write"},
		Notes: []string{
			"extension beyond the paper: batch=1 reproduces the unbatched stream bit-for-bit; larger budgets amortize the per-write WR post (SKV) and the per-write slave feed (rdma-redis)",
		},
	}
	for _, batch := range []int{1, 4, 16, 64} {
		p := model.Default()
		p.ReplBatchMaxCmds = batch
		cfg := cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: 8,
			Pipeline: 8, Seed: 64, Params: &p, SKV: core.DefaultConfig()}
		c := cluster.Build(cfg)
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ext-batch: skv sync failed")
		}
		rs := c.Measure(warmup, measure)
		wrsPerWrite := 1.0
		if w := c.Master.WritesPropagated; w > 0 {
			wrsPerWrite = float64(c.HostKV.ReplReqsSent) / float64(w)
		}

		pr := model.Default()
		pr.ReplBatchMaxCmds = batch
		cr := cluster.Build(cluster.Config{Kind: cluster.KindRDMA, Slaves: 3,
			Clients: 8, Pipeline: 8, Seed: 64, Params: &pr})
		if !cr.AwaitReplication(5 * sim.Second) {
			panic("ext-batch: rdma sync failed")
		}
		rr := cr.Measure(warmup, measure)
		batchesPerWrite := 1.0
		if w := cr.Master.WritesPropagated; w > 0 {
			batchesPerWrite = float64(cr.Master.ReplStream().BatchesFlushed) / float64(w)
		}

		e.Rows = append(e.Rows, []string{
			fmt.Sprint(batch),
			kops(rs.Throughput), f1(rs.P99.Micros()), fmt.Sprintf("%.3f", wrsPerWrite),
			kops(rr.Throughput), fmt.Sprintf("%.3f", batchesPerWrite),
		})
		e.metric(fmt.Sprintf("skv_kops_batch%d", batch), rs.Throughput/1000)
		e.metric(fmt.Sprintf("skv_p99_us_batch%d", batch), rs.P99.Micros())
		e.metric(fmt.Sprintf("skv_wrs_per_write_batch%d", batch), wrsPerWrite)
		e.metric(fmt.Sprintf("rdma_kops_batch%d", batch), rr.Throughput/1000)
		e.metric(fmt.Sprintf("rdma_batches_per_write_batch%d", batch), batchesPerWrite)
	}
	return e
}
