package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/sim"
)

// ExtCluster is the multi-master scale-out experiment: aggregate SET
// throughput as the deployment grows from one SKV replication group to
// two and four, each group a full master + slave + Nic-KV offload unit
// owning an even share of the 16384 hash slots. Every row uses the SAME
// per-master tuning (the best single-master configuration from
// ext-shards: 4 keyspace shards, 2 routing listeners, batched
// replication) and the SAME client count — the slot-aware clients keep
// one Pipeline-deep window per group, so the offered load per master is
// constant as groups are added and the sweep isolates scale-out, not
// extra clients. The masters=1 row is the legacy single-master topology
// bit-for-bit (no slot plane, no admission check).
func ExtCluster() *Experiment {
	e := &Experiment{
		ID:    "ext-cluster",
		Title: "Multi-master hash-slot scale-out (SET, 8 clients ×8 deep, 1 slave/master) — extension",
		Header: []string{"masters", "agg kops/s", "scale", "p99 µs",
			"group kops/s", "moved", "err replies"},
		Notes: []string{
			"extension beyond the paper: N full SKV units behind a 16384-slot CRC16 hash-slot map (Redis Cluster semantics: hashtags, MOVED, CROSSSLOT)",
			"same per-master tuning in every row (4 shards, 2 listeners, batched replication) and the same 8 clients — per-group pipeline windows keep per-master offered load constant, so the column isolates scale-out",
			"moved: MOVED redirects absorbed by the clients while warming their slot maps from the deliberately stale bootstrap (all slots at the seed node)",
			"masters=1 runs the legacy single-master build path bit-for-bit; it has no slot plane, so moved is '-'",
		},
	}
	base := -1.0
	for _, masters := range []int{1, 2, 4} {
		p := model.Default()
		p.HostShards = 4
		p.RouteListeners = 2
		p.ReplBatchMaxCmds = 8
		p.ReplBatchMaxDelay = 5 * sim.Microsecond
		cfg := cluster.Config{Kind: cluster.KindSKV, Clients: 8, Pipeline: 8,
			Seed: 67, Params: &p, SKV: core.DefaultConfig()}
		if masters == 1 {
			cfg.Slaves = 1
		} else {
			cfg.Cluster = cluster.ClusterOpts{Masters: masters, SlavesPerMaster: 1}
		}
		c := cluster.Build(cfg)
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ext-cluster: sync failed")
		}
		r := c.Measure(warmup, measure)
		if r.ErrReplies != 0 {
			panic(fmt.Sprintf("ext-cluster: %d error replies at %d masters", r.ErrReplies, masters))
		}
		window := measure.Seconds()
		groupCol, moved := "-", "-"
		if masters > 1 {
			groupCol = ""
			for gi, ops := range r.GroupOps {
				if gi > 0 {
					groupCol += "/"
				}
				groupCol += fmt.Sprintf("%.0f", float64(ops)/window/1000)
			}
			moved = fmt.Sprint(r.Moved)
			e.metric(fmt.Sprintf("moved_m%d", masters), float64(r.Moved))
		}
		scale := "1.00x"
		if base < 0 {
			base = r.Throughput
		} else {
			scale = fmt.Sprintf("%.2fx", r.Throughput/base)
			e.metric(fmt.Sprintf("scale_x_m%d", masters), r.Throughput/base)
		}
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(masters), kops(r.Throughput), scale, f1(r.P99.Micros()),
			groupCol, moved, fmt.Sprint(r.ErrReplies),
		})
		e.metric(fmt.Sprintf("kops_m%d", masters), r.Throughput/1000)
		e.metric(fmt.Sprintf("p99_us_m%d", masters), r.P99.Micros())
	}
	return e
}
