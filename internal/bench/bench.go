// Package bench regenerates every figure of the paper's evaluation
// (§II-A Fig 3, §III-C Fig 7, §V Figs 10–14) plus the ablations DESIGN.md
// calls out. Each experiment returns a table whose rows mirror the series
// the paper plots; EXPERIMENTS.md records the paper-vs-measured comparison.
package bench

import (
	"fmt"
	"strings"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/fabric"
	"skv/internal/model"
	"skv/internal/rdma"
	"skv/internal/sim"
	"skv/internal/stats"
)

// Experiment is one reproduced figure: a titled table plus key
// machine-readable metrics (consumed by the root benchmark harness).
type Experiment struct {
	ID     string
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
	// Metrics holds the headline numbers, e.g. "tput_gain_pct_8c".
	Metrics map[string]float64
}

// metric records one headline number.
func (e *Experiment) metric(key string, v float64) {
	if e.Metrics == nil {
		e.Metrics = make(map[string]float64)
	}
	e.Metrics[key] = v
}

// String renders the experiment as an aligned text table.
func (e *Experiment) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s — %s ==\n", e.ID, e.Title)
	widths := make([]int, len(e.Header))
	for i, h := range e.Header {
		widths[i] = len(h)
	}
	for _, row := range e.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(e.Header)
	for _, row := range e.Rows {
		writeRow(row)
	}
	for _, n := range e.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Standard measurement windows (virtual time). Vars, not consts: smoke mode
// shrinks them so CI can exercise every experiment end-to-end in seconds.
var (
	warmup  = 50 * sim.Millisecond
	measure = 300 * sim.Millisecond
	smoke   bool
)

// SetSmoke switches the package into smoke mode: tiny measurement windows
// and shortened failure-scenario horizons (with a proportionally faster
// failure detector, so the timeline experiments still see their events).
// The numbers that come out are statistically meaningless — smoke mode
// exists to prove in CI that every experiment builds its cluster, runs, and
// renders, not to regenerate the figures.
func SetSmoke() {
	smoke = true
	warmup = 5 * sim.Millisecond
	measure = 25 * sim.Millisecond
}

// Smoke reports whether smoke mode is on.
func Smoke() bool { return smoke }

func f1(v float64) string   { return fmt.Sprintf("%.1f", v) }
func kops(v float64) string { return fmt.Sprintf("%.1f", v/1000) }

// runOnce builds and measures one deployment.
func runOnce(cfg cluster.Config) cluster.Result {
	c := cluster.Build(cfg)
	if cfg.Slaves > 0 {
		if !c.AwaitReplication(5 * sim.Second) {
			panic(fmt.Sprintf("bench: replication never converged for %+v", cfg))
		}
	}
	return c.Measure(warmup, measure)
}

// Fig3 measures RDMA WRITE latency for the three paths of the paper's
// Fig 3: between two hosts, from the remote host to the SmartNIC, and from
// the local host to the SmartNIC.
func Fig3() *Experiment {
	sizes := []int{8, 64, 256, 1024, 4096}
	e := &Experiment{
		ID:     "fig3",
		Title:  "RDMA WRITE latency (µs) — the off-path SmartNIC looks like a separate endpoint",
		Header: append([]string{"path"}, sizesHeader(sizes)...),
		Notes: []string{
			"paper: host→local SmartNIC is only a little lower than host↔host; remote→SmartNIC slightly higher",
		},
	}

	paths := []struct {
		name string
		src  func(a, b *fabric.Machine) *fabric.Endpoint
		dst  func(a, b *fabric.Machine) *fabric.Endpoint
	}{
		{"host ↔ host", func(a, b *fabric.Machine) *fabric.Endpoint { return b.Host },
			func(a, b *fabric.Machine) *fabric.Endpoint { return a.Host }},
		{"remote host → SmartNIC", func(a, b *fabric.Machine) *fabric.Endpoint { return b.Host },
			func(a, b *fabric.Machine) *fabric.Endpoint { return a.NIC }},
		{"local host → SmartNIC", func(a, b *fabric.Machine) *fabric.Endpoint { return a.Host },
			func(a, b *fabric.Machine) *fabric.Endpoint { return a.NIC }},
	}

	keys := []string{"host_host", "remote_to_nic", "local_to_nic"}
	for pi, path := range paths {
		row := []string{path.name}
		for _, size := range sizes {
			lat := writeLatency(path.src, path.dst, size)
			row = append(row, f1(lat.Micros()))
			if size == 64 {
				e.metric(keys[pi]+"_64B_us", lat.Micros())
			}
		}
		e.Rows = append(e.Rows, row)
	}
	return e
}

func sizesHeader(sizes []int) []string {
	out := make([]string, len(sizes))
	for i, s := range sizes {
		out[i] = fmt.Sprintf("%dB", s)
	}
	return out
}

// writeLatency measures mean one-way WRITE_WITH_IMM latency (post → remote
// completion) over 100 operations, ib_write_lat style with CQ polling.
func writeLatency(srcSel, dstSel func(a, b *fabric.Machine) *fabric.Endpoint, size int) sim.Duration {
	p := model.Default()
	eng := sim.New(31)
	net := fabric.New(eng, &p)
	a := net.NewMachine("a", true)
	b := net.NewMachine("b", false)
	src, dst := srcSel(a, b), dstSel(a, b)

	speed := func(ep *fabric.Endpoint) float64 {
		if ep.Kind() == fabric.KindNIC {
			return p.NICCoreSpeed
		}
		return p.HostCoreSpeed
	}
	sdev := rdma.NewDevice(net, src, sim.NewCore(eng, "s", speed(src)))
	ddev := rdma.NewDevice(net, dst, sim.NewCore(eng, "d", speed(dst)))

	var qp *rdma.QP
	var peer *rdma.QP
	ddev.Listen(1, func(q *rdma.QP) { peer = q })
	sdev.Connect(dst, 1, nil, nil, func(q *rdma.QP, err error) {
		if err != nil {
			panic(err)
		}
		qp = q
	})
	eng.Run(0)
	mr := ddev.AllocPD().RegisterMR(size + 64)

	const iters = 100
	var total sim.Duration
	done := 0
	var postAt sim.Time
	var post func()
	peer.RecvCQ.OnNotify(func() {
		peer.RecvCQ.Poll(0)
		total += eng.Now().Sub(postAt)
		done++
		if done < iters {
			post()
		}
	})
	peer.RecvCQ.RequestNotify()
	post = func() {
		peer.PostRecv(rdma.RecvWR{})
		peer.RecvCQ.RequestNotify()
		postAt = eng.Now()
		_ = qp.PostSend(rdma.SendWR{
			Op: rdma.OpWriteImm, Data: make([]byte, size),
			RemoteKey: mr.RKey(), RemoteOff: 0, Imm: uint32(size),
		})
	}
	eng.After(0, post)
	eng.Run(0)
	return total / iters
}

// Fig7 reproduces the motivating measurement: RDMA-Redis SET performance
// with 0 vs 3 slaves (§III-C Fig 7: tail latency grows by more than 25%).
func Fig7() *Experiment {
	e := &Experiment{
		ID:     "fig7",
		Title:  "RDMA-Redis SET degradation with 3 slaves (8 clients)",
		Header: []string{"slaves", "tput kops/s", "avg µs", "p99 µs"},
		Notes:  []string{"paper: with 3 slaves, p99 grows by more than 25%, throughput drops significantly"},
	}
	var results []cluster.Result
	for _, slaves := range []int{0, 3} {
		r := runOnce(cluster.Config{Kind: cluster.KindRDMA, Slaves: slaves, Clients: 8, Seed: 41})
		results = append(results, r)
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(slaves), kops(r.Throughput), f1(r.Avg.Micros()), f1(r.P99.Micros()),
		})
	}
	e.metric("p99_increase_pct", (results[1].P99.Micros()/results[0].P99.Micros()-1)*100)
	e.metric("avg_increase_pct", (results[1].Avg.Micros()/results[0].Avg.Micros()-1)*100)
	e.metric("tput_drop_pct", (1-results[1].Throughput/results[0].Throughput)*100)
	return e
}

var fig10Clients = []int{1, 2, 4, 8, 16, 32}

// Fig10a reproduces throughput vs concurrency for original Redis and
// RDMA-Redis (no slaves, SET).
func Fig10a() *Experiment {
	e := &Experiment{
		ID:     "fig10a",
		Title:  "SET throughput vs concurrent clients (kops/s), no slaves",
		Header: []string{"clients", "redis", "rdma-redis"},
		Notes: []string{
			"paper: Redis saturates ≈130 kops/s by ~2 clients; RDMA-Redis exceeds 330 kops/s",
		},
	}
	for _, n := range fig10Clients {
		rt := runOnce(cluster.Config{Kind: cluster.KindTCP, Slaves: 0, Clients: n, Seed: 42})
		rr := runOnce(cluster.Config{Kind: cluster.KindRDMA, Slaves: 0, Clients: n, Seed: 42})
		e.Rows = append(e.Rows, []string{fmt.Sprint(n), kops(rt.Throughput), kops(rr.Throughput)})
		if n == 32 {
			e.metric("redis_kops_saturated", rt.Throughput/1000)
			e.metric("rdma_kops_saturated", rr.Throughput/1000)
		}
	}
	return e
}

// Fig10b reproduces p99 latency vs concurrency for the same sweep.
func Fig10b() *Experiment {
	e := &Experiment{
		ID:     "fig10b",
		Title:  "SET p99 latency vs concurrent clients (µs), no slaves",
		Header: []string{"clients", "redis", "rdma-redis"},
		Notes: []string{
			"paper: similar at low concurrency; Redis ≈2× RDMA-Redis at high concurrency",
		},
	}
	for _, n := range fig10Clients {
		rt := runOnce(cluster.Config{Kind: cluster.KindTCP, Slaves: 0, Clients: n, Seed: 43})
		rr := runOnce(cluster.Config{Kind: cluster.KindRDMA, Slaves: 0, Clients: n, Seed: 43})
		e.Rows = append(e.Rows, []string{fmt.Sprint(n), f1(rt.P99.Micros()), f1(rr.P99.Micros())})
		if n == 32 {
			e.metric("latency_ratio_32c", rt.P99.Micros()/rr.P99.Micros())
		}
	}
	return e
}

// Fig11 is the headline experiment: SKV vs RDMA-Redis executing SETs with
// 1 master + 3 slaves at 4/8/16 clients.
func Fig11() *Experiment {
	e := &Experiment{
		ID:    "fig11",
		Title: "SET with 3 slaves: SKV vs RDMA-Redis",
		Header: []string{"clients",
			"rdma tput", "skv tput", "tput gain",
			"rdma avg µs", "skv avg µs",
			"rdma p99 µs", "skv p99 µs", "p99 cut"},
		Notes: []string{
			"paper @8 clients: throughput +14%, average latency −14%, tail latency −21%",
		},
	}
	for _, n := range []int{4, 8, 16} {
		rr := runOnce(cluster.Config{Kind: cluster.KindRDMA, Slaves: 3, Clients: n, Seed: 44})
		rs := runOnce(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: n, Seed: 44, SKV: core.DefaultConfig()})
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(n),
			kops(rr.Throughput), kops(rs.Throughput),
			fmt.Sprintf("%+.1f%%", (rs.Throughput/rr.Throughput-1)*100),
			f1(rr.Avg.Micros()), f1(rs.Avg.Micros()),
			f1(rr.P99.Micros()), f1(rs.P99.Micros()),
			fmt.Sprintf("%+.1f%%", (rs.P99.Micros()/rr.P99.Micros()-1)*100),
		})
		if n == 8 {
			e.metric("tput_gain_pct_8c", (rs.Throughput/rr.Throughput-1)*100)
			e.metric("avg_cut_pct_8c", (1-rs.Avg.Micros()/rr.Avg.Micros())*100)
			e.metric("p99_cut_pct_8c", (1-rs.P99.Micros()/rr.P99.Micros())*100)
		}
	}
	return e
}

// Fig12 sweeps the value size (SET, 8 clients, 3 slaves).
func Fig12() *Experiment {
	e := &Experiment{
		ID:     "fig12",
		Title:  "SET throughput vs value size (kops/s), 8 clients, 3 slaves",
		Header: []string{"value", "rdma-redis", "skv"},
		Notes:  []string{"paper: SKV above RDMA-Redis at every value size"},
	}
	for _, size := range []int{64, 256, 1024, 4096, 16384} {
		rr := runOnce(cluster.Config{Kind: cluster.KindRDMA, Slaves: 3, Clients: 8, Seed: 45, ValueSize: size})
		rs := runOnce(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: 8, Seed: 45, ValueSize: size, SKV: core.DefaultConfig()})
		e.Rows = append(e.Rows, []string{
			fmt.Sprintf("%dB", size), kops(rr.Throughput), kops(rs.Throughput),
		})
		e.metric(fmt.Sprintf("gain_pct_%dB", size), (rs.Throughput/rr.Throughput-1)*100)
	}
	return e
}

// Fig13 runs the GET workload: the offload cannot help reads.
func Fig13() *Experiment {
	e := &Experiment{
		ID:     "fig13",
		Title:  "GET with 3 slaves: SKV vs RDMA-Redis",
		Header: []string{"clients", "rdma tput", "skv tput", "rdma p99 µs", "skv p99 µs"},
		Notes: []string{
			"paper: no difference — GETs are never replicated, both ≈340 kops/s at 8/16 clients",
		},
	}
	for _, n := range []int{4, 8, 16} {
		rr := runOnce(cluster.Config{Kind: cluster.KindRDMA, Slaves: 3, Clients: n, Seed: 46, GetRatio: 1.0})
		rs := runOnce(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: n, Seed: 46, GetRatio: 1.0, SKV: core.DefaultConfig()})
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(n), kops(rr.Throughput), kops(rs.Throughput),
			f1(rr.P99.Micros()), f1(rs.P99.Micros()),
		})
		if n == 8 {
			e.metric("tput_ratio_8c", rs.Throughput/rr.Throughput)
		}
	}
	return e
}

// Fig14 reproduces the availability experiment: a slave's Host-KV crashes
// under SET load; Nic-KV detects it via probes, replication continues to
// the surviving slaves, the client never notices; the slave later recovers
// and is folded back in.
func Fig14() *Experiment {
	e := &Experiment{
		ID:     "fig14",
		Title:  "Throughput during slave failure (SKV, 8 clients, 3 slaves)",
		Header: []string{"t (s)", "tput kops/s", "valid slaves", "event"},
		Notes: []string{
			"paper: crash detected at ~4s, recovery at ~9s, throughput stays above 300 kops/s, client unaware",
		},
	}
	horizon := 12 * sim.Second
	crashAfter := 1500 * sim.Millisecond
	recoverAfter := 6500 * sim.Millisecond
	var p *model.Params
	if smoke {
		// Shrink the outage script and speed the detector up to match, so
		// the crash/detect/recover transitions still happen on the short
		// horizon.
		horizon, crashAfter, recoverAfter = 3*sim.Second, 500*sim.Millisecond, 1500*sim.Millisecond
		pp := model.Default()
		pp.ProbePeriod = 100 * sim.Millisecond
		pp.WaitingTime = 300 * sim.Millisecond
		p = &pp
	}
	c := cluster.Build(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: 8, Seed: 47, Params: p, SKV: core.DefaultConfig()})
	if !c.AwaitReplication(5 * sim.Second) {
		panic("fig14: replication never converged")
	}
	series := stats.NewTimeSeries(500 * sim.Millisecond)
	for _, cl := range c.Clients {
		cl.SetSeries(series)
	}
	c.StartClients()
	base := c.Eng.Now()
	crashAt := base.Add(crashAfter)
	recoverAt := base.Add(recoverAfter)
	c.Eng.At(crashAt, func() { c.Slaves[1].Crash() })
	c.Eng.At(recoverAt, func() { c.Slaves[1].Recover() })

	// Sample the valid-slave count every 500ms.
	type sample struct {
		t     sim.Time
		valid int
	}
	var samples []sample
	for off := sim.Duration(0); off < horizon; off += 500 * sim.Millisecond {
		off := off
		c.Eng.At(base.Add(off), func() {
			samples = append(samples, sample{c.Eng.Now(), c.NicKV.ValidSlaves()})
		})
	}
	c.Eng.Run(base.Add(horizon))
	var errs uint64
	for _, cl := range c.Clients {
		errs += cl.Stats().ErrReplies
	}

	rates := series.Rates()
	for i, s := range samples {
		rate := 0.0
		bucket := int(sim.Duration(s.t) / series.Interval())
		if bucket < len(rates) {
			rate = rates[bucket]
		}
		event := ""
		switch {
		case s.t <= crashAt && crashAt < s.t.Add(500*sim.Millisecond):
			event = "slave1 Host-KV crashes"
		case i > 0 && samples[i-1].valid == 3 && s.valid == 2:
			event = "Nic-KV detects the failure (invalid flag set)"
		case s.t <= recoverAt && recoverAt < s.t.Add(500*sim.Millisecond):
			event = "slave1 recovers"
		case i > 0 && samples[i-1].valid == 2 && s.valid == 3:
			event = "Nic-KV removes the invalid flag"
		}
		e.Rows = append(e.Rows, []string{
			fmt.Sprintf("%.1f", sim.Duration(s.t-base).Seconds()),
			kops(rate), fmt.Sprint(s.valid), event,
		})
	}
	e.Notes = append(e.Notes, fmt.Sprintf("client error replies during the whole run: %d", errs))
	e.metric("client_errors", float64(errs))
	minRate := -1.0
	// Ignore the first and last (partial) buckets.
	for i := 1; i < len(rates)-1; i++ {
		if minRate < 0 || rates[i] < minRate {
			minRate = rates[i]
		}
	}
	e.metric("min_kops", minRate/1000)
	for i := 1; i < len(samples); i++ {
		if samples[i-1].valid == 3 && samples[i].valid == 2 {
			e.metric("detect_s", sim.Duration(samples[i].t-base).Seconds())
		}
		if samples[i-1].valid == 2 && samples[i].valid == 3 {
			e.metric("rejoin_s", sim.Duration(samples[i].t-base).Seconds())
		}
	}
	return e
}
