package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/sim"
)

// AblateSlaves sweeps the slave count: the mechanism behind Fig 11 is that
// the RDMA-Redis master's per-write cost grows linearly with the slave
// count (one output-buffer feed + one work request each) while SKV's is
// constant (one replication request to the NIC).
func AblateSlaves() *Experiment {
	e := &Experiment{
		ID:     "ablate-slaves",
		Title:  "SET throughput vs slave count (8 clients): offload win grows with fan-out",
		Header: []string{"slaves", "rdma-redis kops/s", "skv kops/s", "gain", "skv NIC util"},
	}
	for _, slaves := range []int{1, 2, 3, 4, 6, 8} {
		rr := runOnce(cluster.Config{Kind: cluster.KindRDMA, Slaves: slaves, Clients: 8, Seed: 51})
		rs := runOnce(cluster.Config{Kind: cluster.KindSKV, Slaves: slaves, Clients: 8, Seed: 51, SKV: core.DefaultConfig()})
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(slaves), kops(rr.Throughput), kops(rs.Throughput),
			fmt.Sprintf("%+.1f%%", (rs.Throughput/rr.Throughput-1)*100),
			fmt.Sprintf("%.0f%%", rs.NicUtil*100),
		})
		e.metric(fmt.Sprintf("gain_pct_%dslaves", slaves), (rs.Throughput/rr.Throughput-1)*100)
	}
	e.Notes = append(e.Notes,
		"challenge 2 (§II-C): past the point where the single ARM core saturates, SKV's client throughput keeps its lead but replication lags — see ablate-threads")
	return e
}

// AblateNICSpeed sweeps the ARM-core speed: why "simply putting everything
// on the SmartNIC" fails, and how weak the NIC may get before the offload
// stops keeping up.
func AblateNICSpeed() *Experiment {
	e := &Experiment{
		ID:     "ablate-nicspeed",
		Title:  "SKV sensitivity to SmartNIC core speed (SET, 8 clients, 3 slaves)",
		Header: []string{"NIC core speed", "skv kops/s", "NIC util", "repl lag bytes"},
	}
	for _, speed := range []float64{0.2, 0.35, 0.6, 0.8, 1.0} {
		p := model.Default()
		p.NICCoreSpeed = speed
		c := cluster.Build(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: 8, Seed: 52, Params: &p, SKV: core.DefaultConfig()})
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ablate-nicspeed: sync failed")
		}
		r := c.Measure(warmup, measure)
		lag := replicationLag(c)
		e.Rows = append(e.Rows, []string{
			fmt.Sprintf("%.2f×host", speed), kops(r.Throughput),
			fmt.Sprintf("%.0f%%", r.NicUtil*100), fmt.Sprint(lag),
		})
		e.metric(fmt.Sprintf("lag_bytes_speed%.2f", speed), float64(lag))
	}
	e.Notes = append(e.Notes,
		"client-visible throughput is insensitive (replication is asynchronous); a too-slow NIC shows up as replication lag")
	return e
}

// replicationLag reports the master-offset minus the slowest slave offset
// at the end of a run.
func replicationLag(c *cluster.Cluster) int64 {
	minOff := int64(-1)
	for _, a := range c.SlaveAgents {
		if minOff < 0 || a.Offset() < minOff {
			minOff = a.Offset()
		}
	}
	if minOff < 0 {
		return 0
	}
	lag := c.Master.ReplOffset() - minOff
	if lag < 0 {
		lag = 0
	}
	return lag
}

// AblateThreads sweeps thread-num (§III-C): multi-threaded replication on
// the NIC accelerates the background fan-out (lower lag) but cannot improve
// client latency or throughput — the paper's stated reason for defaulting
// to single-threaded mode.
func AblateThreads() *Experiment {
	e := &Experiment{
		ID:     "ablate-threads",
		Title:  "Nic-KV thread-num (SET, 8 clients, 8 slaves)",
		Header: []string{"thread-num", "client kops/s", "client p99 µs", "repl lag bytes"},
	}
	for _, threads := range []int{1, 2, 4, 8} {
		cfg := core.DefaultConfig()
		cfg.ThreadNum = threads
		c := cluster.Build(cluster.Config{Kind: cluster.KindSKV, Slaves: 8, Clients: 8, Seed: 53, SKV: cfg})
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ablate-threads: sync failed")
		}
		r := c.Measure(warmup, measure)
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(threads), kops(r.Throughput), f1(r.P99.Micros()), fmt.Sprint(replicationLag(c)),
		})
		e.metric(fmt.Sprintf("lag_bytes_%dthreads", threads), float64(replicationLag(c)))
		e.metric(fmt.Sprintf("client_kops_%dthreads", threads), r.Throughput/1000)
	}
	e.Notes = append(e.Notes,
		"paper §III-C: \"the speedup of replication cannot improve the latency and throughput of the execution of commands on the master node\"")
	return e
}

// All returns every experiment in paper order.
func All() []*Experiment {
	return []*Experiment{
		Fig3(), Fig7(), Fig10a(), Fig10b(), Fig11(), Fig12(), Fig13(), Fig14(),
		AblateSlaves(), AblateNICSpeed(), AblateThreads(), AblateNICCache(), AblateCPU(), ExtPipeline(), ExtBatch(), ExtFailover(), ExtShards(), ExtCluster(), ExtReshard(), ExtQuorum(), ExtTracking(),
	}
}

// ByID runs a single experiment by identifier, or nil if unknown.
func ByID(id string) *Experiment {
	switch id {
	case "fig3":
		return Fig3()
	case "fig7":
		return Fig7()
	case "fig10a":
		return Fig10a()
	case "fig10b":
		return Fig10b()
	case "fig11":
		return Fig11()
	case "fig12":
		return Fig12()
	case "fig13":
		return Fig13()
	case "fig14":
		return Fig14()
	case "ablate-slaves":
		return AblateSlaves()
	case "ablate-nicspeed":
		return AblateNICSpeed()
	case "ablate-threads":
		return AblateThreads()
	case "ablate-niccache":
		return AblateNICCache()
	case "ablate-cpu":
		return AblateCPU()
	case "ext-pipeline":
		return ExtPipeline()
	case "ext-batch":
		return ExtBatch()
	case "ext-failover":
		return ExtFailover()
	case "ext-shards":
		return ExtShards()
	case "ext-cluster":
		return ExtCluster()
	case "ext-reshard":
		return ExtReshard()
	case "ext-quorum":
		return ExtQuorum()
	case "ext-tracking":
		return ExtTracking()
	}
	return nil
}

// IDs lists the available experiment identifiers.
func IDs() []string {
	return []string{"fig3", "fig7", "fig10a", "fig10b", "fig11", "fig12", "fig13", "fig14",
		"ablate-slaves", "ablate-nicspeed", "ablate-threads", "ablate-niccache", "ablate-cpu", "ext-pipeline",
		"ext-batch", "ext-failover", "ext-shards", "ext-cluster", "ext-reshard", "ext-quorum", "ext-tracking"}
}

// unused placeholder to keep sim imported if windows change.
var _ = sim.Microsecond

// AblateCPU measures the design goal "low CPU consumption" directly: host
// CPU microseconds consumed per client operation on the master, for each
// system, with 3 slaves under SET load. SKV's saving is precisely the
// per-slave feed + work-request posting that moved to the SmartNIC.
func AblateCPU() *Experiment {
	e := &Experiment{
		ID:     "ablate-cpu",
		Title:  "Master host CPU per operation (SET, 8 clients, 3 slaves)",
		Header: []string{"system", "tput kops/s", "master µs/op", "NIC µs/op"},
		Notes: []string{
			"design goal 2 (§III-A): \"We hope to use single thread on host to reduce the number of occupied cores while maintaining high performance\"",
		},
	}
	for _, kind := range []cluster.Kind{cluster.KindRDMA, cluster.KindSKV} {
		cfg := cluster.Config{Kind: kind, Slaves: 3, Clients: 8, Seed: 62}
		if kind == cluster.KindSKV {
			cfg.SKV = core.DefaultConfig()
		}
		c := cluster.Build(cfg)
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ablate-cpu: sync failed")
		}
		busyBefore := c.Master.Proc().Core.BusyTime()
		var nicBefore sim.Duration
		if c.NicKV != nil {
			nicBefore = c.NicKV.Proc().Core.BusyTime()
		}
		opsBefore := c.Master.CommandsProcessed
		r := c.Measure(warmup, measure)
		ops := float64(c.Master.CommandsProcessed - opsBefore)
		hostPerOp := float64(c.Master.Proc().Core.BusyTime()-busyBefore) / ops / 1000
		nicPerOp := 0.0
		if c.NicKV != nil {
			nicPerOp = float64(c.NicKV.Proc().Core.BusyTime()-nicBefore) / ops / 1000
		}
		e.Rows = append(e.Rows, []string{
			kind.String(), kops(r.Throughput),
			fmt.Sprintf("%.2f", hostPerOp), fmt.Sprintf("%.2f", nicPerOp),
		})
		e.metric("host_us_per_op_"+kind.String(), hostPerOp)
	}
	return e
}
