package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/sim"
)

// reshardSlots is the migrated range: the low 512 slots of group 0's half
// (1/32 of the keyspace under the even 2-way split).
const reshardSlots = 511

// ExtReshard measures live slot migration under load: a 2-group deployment
// serves a mixed GET/SET workload while a SlotMigrator reshards slots
// 0..511 from group 0 to group 1 through the CLUSTER protocol (SETSLOT
// IMPORTING/MIGRATING, per-key DUMP / ASKING+RESTORE IFEQ / MIGRATEDEL,
// final NODE flip). The steady row is the identical deployment with no
// migration — the delta is the migration's whole client-visible cost, and
// the reshard row additionally reports what the mover did: keys moved, CAS
// retries (a client write raced the transfer and won), ASK redirects the
// clients absorbed, and the wall-clock (virtual) migration duration.
func ExtReshard() *Experiment {
	e := &Experiment{
		ID:    "ext-reshard",
		Title: "Live slot migration under load (2 masters, 50% GET, slots 0-511 rehomed) — extension",
		Header: []string{"phase", "kops/s", "p99 µs", "keys moved", "cas retries",
			"asks", "migration ms", "err replies"},
		Notes: []string{
			"extension beyond the paper: Redis-Cluster-style live resharding (ASK/ASKING window, per-key optimistic CAS transfer, atomic SETSLOT NODE flip) on the multi-master SKV deployment",
			"steady and reshard rows run the identical deployment and seed; only the mover differs, so the column deltas isolate the migration's cost",
			"cas retries: MIGRATEDEL found the source value changed since DUMP — the racing client write survived and the mover re-dumped",
			"asks: one-shot ASK redirects absorbed by slot-aware clients without refreshing their maps (MOVED, by contrast, refreshes)",
		},
	}
	for _, migrate := range []bool{false, true} {
		p := model.Default()
		p.HostShards = 4
		p.RouteListeners = 2
		p.ReplBatchMaxCmds = 8
		p.ReplBatchMaxDelay = 5 * sim.Microsecond
		c := cluster.Build(cluster.Config{Kind: cluster.KindSKV,
			Cluster: cluster.ClusterOpts{Masters: 2, SlavesPerMaster: 1}, Clients: 8, Pipeline: 8,
			GetRatio: 0.5, Seed: 73, Params: &p, SKV: core.DefaultConfig()})
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ext-reshard: sync failed")
		}
		var m *cluster.SlotMigrator
		var started sim.Time
		var doneIn sim.Duration
		done := false
		c.StartClients()
		if migrate {
			m = cluster.NewSlotMigrator(c, nil)
			c.Eng.At(c.Eng.Now().Add(warmup), func() {
				started = c.Eng.Now()
				m.Reshard(0, reshardSlots, 1, func() {
					done = true
					doneIn = c.Eng.Now().Sub(started)
				})
			})
		}
		r := c.Measure(warmup, measure)
		if r.ErrReplies != 0 {
			panic(fmt.Sprintf("ext-reshard: %d error replies (migrate=%t)", r.ErrReplies, migrate))
		}
		phase, moved, retries, asks, ms := "steady", "-", "-", "-", "-"
		if migrate {
			// Let a migration that outlives the measure window finish, so
			// the moved/duration columns describe the complete reshard.
			deadline := c.Eng.Now().Add(2 * sim.Second)
			for !done && c.Eng.Now() < deadline {
				c.Eng.Run(c.Eng.Now().Add(5 * sim.Millisecond))
			}
			if !done {
				panic("ext-reshard: migration did not finish within 2s of the measure window")
			}
			var asked uint64
			for _, cl := range c.Clients {
				asked += cl.Stats().Asked
			}
			phase = "reshard"
			moved = fmt.Sprint(m.KeysMoved)
			retries = fmt.Sprint(m.KeyRetries)
			asks = fmt.Sprint(asked)
			ms = f1(float64(doneIn) / float64(sim.Millisecond))
			e.metric("keys_moved", float64(m.KeysMoved))
			e.metric("cas_retries", float64(m.KeyRetries))
			e.metric("asks", float64(asked))
			e.metric("migration_ms", float64(doneIn)/float64(sim.Millisecond))
			e.metric("kops_reshard", r.Throughput/1000)
			e.metric("p99_us_reshard", r.P99.Micros())
		} else {
			e.metric("kops_steady", r.Throughput/1000)
			e.metric("p99_us_steady", r.P99.Micros())
		}
		e.Rows = append(e.Rows, []string{phase, kops(r.Throughput), f1(r.P99.Micros()),
			moved, retries, asks, ms, fmt.Sprint(r.ErrReplies)})
	}
	return e
}
