package bench

import (
	"fmt"
	"strings"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

// ExtShards is an extension experiment beyond the paper: the Host-KV
// keyspace sharded over multiple cores behind the deterministic dispatch
// plane, and the dispatch/parse stage itself sharded across routing
// listeners. Listeners=1 rows are the dispatch-owned pipeline: the dispatch
// core parses, routes, merges, and propagates — and saturates at ~575
// kops/s regardless of shard count. Listeners≥2 rows move transport
// receive, parse, routing, and reply emission onto per-listener cores;
// the dispatch core keeps only the merge/order stage (with replication
// batching amortizing the per-write offload doorbell), so the bottleneck
// finally leaves the front end. Replication, WAIT, PSYNC and the Nic-KV
// offload see one serialized stream in every row.
func ExtShards() *Experiment {
	e := &Experiment{
		ID:    "ext-shards",
		Title: "Host-KV keyspace + dispatch/parse sharding (SET, 8 clients ×8 deep, 3 slaves) — extension",
		Header: []string{"shards", "listeners", "skv kops/s", "p99 µs", "dispatch util",
			"route core utils", "shard core utils", "wait0 rtt µs", "wait barriers"},
		Notes: []string{
			"extension beyond the paper: shards=1 is the single-threaded server bit-for-bit (no dispatch plane); listeners=1 is the PR-5 dispatch-owned pipeline bit-for-bit",
			"replication, WAIT and the Nic-KV offload see one serialized stream at every shard and listener count",
			"listeners≥2 rows batch replication flushes (8 cmds or 5µs, whichever first) — the thin merge stage amortizes the offload doorbell behind a coalescing timer; listeners=1 rows keep the legacy per-write flush",
			"wait0 rtt: round-trip of WAIT 0 0 probed under full load — per-caller WAIT never quiesces the pipeline, so the barrier count stays 0 in every row",
		},
	}
	base := -1.0
	rows := []struct{ shards, listeners int }{
		{1, 1}, {2, 1}, {4, 1}, {8, 1}, {4, 2}, {4, 4}, {8, 2}, {8, 4},
	}
	for _, row := range rows {
		p := model.Default()
		p.HostShards = row.shards
		p.RouteListeners = row.listeners
		if row.listeners > 1 {
			// The routed rows' merge stage is deliberately thin: batch the
			// replication flush so the offload doorbell amortizes across
			// writes instead of re-bottlenecking the dispatch core. The
			// underloaded merge core quiesces between every two merges, so
			// partial batches need the coalescing timer, not the quiesce
			// flush, to accumulate.
			p.ReplBatchMaxCmds = 8
			p.ReplBatchMaxDelay = 5 * sim.Microsecond
		}
		c := cluster.Build(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: 8,
			Pipeline: 8, Seed: 67, Params: &p, SKV: core.DefaultConfig()})
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ext-shards: sync failed")
		}
		r := c.Measure(warmup, measure)
		waitRTT, waitBarriers := waitProbe(c, 5)
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(row.shards), fmt.Sprint(row.listeners), kops(r.Throughput), f1(r.P99.Micros()),
			fmt.Sprintf("%.0f%%", r.MasterUtil*100), utilCol(r.RouteUtils), utilCol(r.ShardUtils),
			f1(waitRTT.Micros()), fmt.Sprint(waitBarriers),
		})
		key := fmt.Sprintf("shards%d_l%d", row.shards, row.listeners)
		e.metric("kops_"+key, r.Throughput/1000)
		e.metric("p99_us_"+key, r.P99.Micros())
		e.metric("dispatch_util_pct_"+key, r.MasterUtil*100)
		e.metric("wait0_us_"+key, waitRTT.Micros())
		e.metric("wait_barriers_"+key, float64(waitBarriers))
		if row.shards == 1 && row.listeners == 1 {
			base = r.Throughput
		} else if base > 0 {
			e.metric("gain_pct_"+key, (r.Throughput/base-1)*100)
		}
	}
	return e
}

// utilCol renders a per-core utilization slice as "93%/94%/..." ("-" when
// the plane is off).
func utilCol(utils []float64) string {
	if len(utils) == 0 {
		return "-"
	}
	cols := make([]string, len(utils))
	for i, u := range utils {
		cols[i] = fmt.Sprintf("%.0f%%", u*100)
	}
	return strings.Join(cols, "/")
}

// waitProbe measures WAIT's dispatch-pipeline cost while the SET load is
// still running: a fresh client issues `WAIT 0 0` (need=0 resolves
// immediately, so the round-trip isolates queueing and any pipeline fence,
// not replica ack latency) `rounds` times and the probe reports the mean
// round-trip plus how many global barriers the probes triggered — zero
// under per-caller WAIT.
func waitProbe(c *cluster.Cluster, rounds int) (sim.Duration, uint64) {
	eng := c.Eng
	m := c.Net.NewMachine("wait-probe", false)
	proc := sim.NewProc(eng, sim.NewCore(eng, "wait-probe-core", 1.0), c.Params.ClientWakeup)
	stack := rconn.New(c.Net, m.Host, proc)
	before := c.Master.Metrics().Counter("server.shard.barriers").Value()
	var total sim.Duration
	done := 0
	var r resp.Reader
	var sentAt sim.Time
	stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
		if err != nil {
			return
		}
		send := func() {
			sentAt = eng.Now()
			conn.Send(resp.EncodeCommand("WAIT", "0", "0"))
		}
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			for {
				if _, ok, _ := r.ReadValue(); !ok {
					break
				}
				total += eng.Now().Sub(sentAt)
				if done++; done < rounds {
					send()
				}
			}
		})
		send()
	})
	eng.Run(eng.Now().Add(500 * sim.Millisecond))
	barriers := c.Master.Metrics().Counter("server.shard.barriers").Value() - before
	if done == 0 {
		return 0, barriers
	}
	return total / sim.Duration(done), barriers
}
