package bench

import (
	"fmt"
	"strings"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/sim"
)

// ExtShards is an extension experiment beyond the paper: the Host-KV
// keyspace sharded over multiple cores behind the deterministic dispatch
// plane. The dispatch core parses and routes; each shard core executes the
// commands whose keys hash to it; completed writes merge back into the one
// serialized replication stream. Throughput scales until the dispatch core
// itself saturates — the per-core utilization columns show the bottleneck
// migrating from execution to dispatch as the shard count grows.
func ExtShards() *Experiment {
	e := &Experiment{
		ID:    "ext-shards",
		Title: "Host-KV keyspace sharding (SET, 8 clients ×8 deep, 3 slaves) — extension",
		Header: []string{"shards", "skv kops/s", "p99 µs", "dispatch util", "shard core utils"},
		Notes: []string{
			"extension beyond the paper: shards=1 is the single-threaded server bit-for-bit (no dispatch plane)",
			"replication, WAIT and the Nic-KV offload see one serialized stream at every shard count",
		},
	}
	base := -1.0
	for _, shards := range []int{1, 2, 4, 8} {
		p := model.Default()
		p.HostShards = shards
		c := cluster.Build(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: 8,
			Pipeline: 8, Seed: 67, Params: &p, SKV: core.DefaultConfig()})
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ext-shards: sync failed")
		}
		r := c.Measure(warmup, measure)
		utils := make([]string, len(r.ShardUtils))
		for i, u := range r.ShardUtils {
			utils[i] = fmt.Sprintf("%.0f%%", u*100)
		}
		shardCol := strings.Join(utils, "/")
		if shardCol == "" {
			shardCol = "-"
		}
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(shards), kops(r.Throughput), f1(r.P99.Micros()),
			fmt.Sprintf("%.0f%%", r.MasterUtil*100), shardCol,
		})
		e.metric(fmt.Sprintf("kops_shards%d", shards), r.Throughput/1000)
		e.metric(fmt.Sprintf("p99_us_shards%d", shards), r.P99.Micros())
		e.metric(fmt.Sprintf("dispatch_util_pct_shards%d", shards), r.MasterUtil*100)
		if shards == 1 {
			base = r.Throughput
		} else if base > 0 {
			e.metric(fmt.Sprintf("gain_pct_shards%d", shards), (r.Throughput/base-1)*100)
		}
	}
	return e
}
