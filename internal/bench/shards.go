package bench

import (
	"fmt"
	"strings"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/model"
	"skv/internal/rconn"
	"skv/internal/resp"
	"skv/internal/sim"
	"skv/internal/transport"
)

// ExtShards is an extension experiment beyond the paper: the Host-KV
// keyspace sharded over multiple cores behind the deterministic dispatch
// plane. The dispatch core parses and routes; each shard core executes the
// commands whose keys hash to it; completed writes merge back into the one
// serialized replication stream. Throughput scales until the dispatch core
// itself saturates — the per-core utilization columns show the bottleneck
// migrating from execution to dispatch as the shard count grows.
func ExtShards() *Experiment {
	e := &Experiment{
		ID:    "ext-shards",
		Title: "Host-KV keyspace sharding (SET, 8 clients ×8 deep, 3 slaves) — extension",
		Header: []string{"shards", "skv kops/s", "p99 µs", "dispatch util", "shard core utils",
			"wait0 rtt µs", "wait barriers"},
		Notes: []string{
			"extension beyond the paper: shards=1 is the single-threaded server bit-for-bit (no dispatch plane)",
			"replication, WAIT and the Nic-KV offload see one serialized stream at every shard count",
			"wait0 rtt: round-trip of WAIT 0 0 probed under full load — per-caller WAIT no longer quiesces the dispatch pipeline, so the barrier count stays 0 at every shard count",
		},
	}
	base := -1.0
	for _, shards := range []int{1, 2, 4, 8} {
		p := model.Default()
		p.HostShards = shards
		c := cluster.Build(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: 8,
			Pipeline: 8, Seed: 67, Params: &p, SKV: core.DefaultConfig()})
		if !c.AwaitReplication(5 * sim.Second) {
			panic("ext-shards: sync failed")
		}
		r := c.Measure(warmup, measure)
		waitRTT, waitBarriers := waitProbe(c, 5)
		utils := make([]string, len(r.ShardUtils))
		for i, u := range r.ShardUtils {
			utils[i] = fmt.Sprintf("%.0f%%", u*100)
		}
		shardCol := strings.Join(utils, "/")
		if shardCol == "" {
			shardCol = "-"
		}
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(shards), kops(r.Throughput), f1(r.P99.Micros()),
			fmt.Sprintf("%.0f%%", r.MasterUtil*100), shardCol,
			f1(waitRTT.Micros()), fmt.Sprint(waitBarriers),
		})
		e.metric(fmt.Sprintf("kops_shards%d", shards), r.Throughput/1000)
		e.metric(fmt.Sprintf("p99_us_shards%d", shards), r.P99.Micros())
		e.metric(fmt.Sprintf("dispatch_util_pct_shards%d", shards), r.MasterUtil*100)
		e.metric(fmt.Sprintf("wait0_us_shards%d", shards), waitRTT.Micros())
		e.metric(fmt.Sprintf("wait_barriers_shards%d", shards), float64(waitBarriers))
		if shards == 1 {
			base = r.Throughput
		} else if base > 0 {
			e.metric(fmt.Sprintf("gain_pct_shards%d", shards), (r.Throughput/base-1)*100)
		}
	}
	return e
}

// waitProbe measures WAIT's dispatch-pipeline cost while the SET load is
// still running: a fresh client issues `WAIT 0 0` (need=0 resolves
// immediately, so the round-trip isolates queueing and any pipeline fence,
// not replica ack latency) `rounds` times and the probe reports the mean
// round-trip plus how many global barriers the probes triggered — zero
// under per-caller WAIT.
func waitProbe(c *cluster.Cluster, rounds int) (sim.Duration, uint64) {
	eng := c.Eng
	m := c.Net.NewMachine("wait-probe", false)
	proc := sim.NewProc(eng, sim.NewCore(eng, "wait-probe-core", 1.0), c.Params.ClientWakeup)
	stack := rconn.New(c.Net, m.Host, proc)
	before := c.Master.Metrics().Counter("server.shard.barriers").Value()
	var total sim.Duration
	done := 0
	var r resp.Reader
	var sentAt sim.Time
	stack.Dial(c.MasterMachine.Host, core.ClientPort, func(conn transport.Conn, err error) {
		if err != nil {
			return
		}
		send := func() {
			sentAt = eng.Now()
			conn.Send(resp.EncodeCommand("WAIT", "0", "0"))
		}
		conn.SetHandler(func(data []byte) {
			r.Feed(data)
			for {
				if _, ok, _ := r.ReadValue(); !ok {
					break
				}
				total += eng.Now().Sub(sentAt)
				if done++; done < rounds {
					send()
				}
			}
		})
		send()
	})
	eng.Run(eng.Now().Add(500 * sim.Millisecond))
	barriers := c.Master.Metrics().Counter("server.shard.barriers").Value() - before
	if done == 0 {
		return 0, barriers
	}
	return total / sim.Duration(done), barriers
}
