package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
)

// ExtTracking measures the client-side caching extension end to end: a
// closed-loop Zipfian GET workload over a preloaded keyspace, comparing
// where reads are served from — the host (SKV's §IV-A choice), the
// SmartNIC's ARM cores (the rejected design), and each of those with
// CLIENT TRACKING on, where the hot keys are served from the client's own
// invalidation-coherent cache at think-time cost. The headline: a tracked
// cache beats even the NIC-served read path, because the hottest keys
// never touch the wire at all — and unlike the NIC replica it needs no
// extra store, only the invalidation pushes the NIC already piggybacks on
// its replication fan-out.
func ExtTracking() *Experiment {
	e := &Experiment{
		ID:    "ext-tracking",
		Title: "GET throughput with client-side caching (Zipfian, preloaded keyspace)",
		Header: []string{"clients", "reads", "tracking",
			"tput kops/s", "hit rate", "avg µs", "p99 µs"},
		Notes: []string{
			"reads=host is SKV's §IV-A design; reads=nic serves GETs from the ARM shadow replica (NicReads=clients)",
			"tracking=on arms CLIENT TRACKING: tracked GETs hit the client cache, kept coherent by NIC-pushed invalidations",
			"pure-GET load (the NIC read path rejects writes); the chaos and coherence tests exercise the invalidation path",
		},
	}
	variants := []struct {
		reads   string
		mode    cluster.NicReadMode
		tracked bool
	}{
		{"host", cluster.NicReadsOff, false},
		{"nic", cluster.NicReadsClients, false},
		{"host", cluster.NicReadsOff, true},
		{"nic", cluster.NicReadsClients, true},
	}
	for _, n := range []int{4, 8, 16} {
		for _, v := range variants {
			r, hitRate := runTrackingVariant(n, v.mode, v.tracked)
			onOff := "off"
			if v.tracked {
				onOff = "on"
			}
			e.Rows = append(e.Rows, []string{
				fmt.Sprint(n), v.reads, onOff,
				kops(r.Throughput), fmt.Sprintf("%.0f%%", hitRate*100),
				f1(r.Avg.Micros()), f1(r.P99.Micros()),
			})
			if n == 8 {
				key := v.reads
				if v.tracked {
					key = "tracked_" + key
				}
				e.metric(key+"_kops_8c", r.Throughput/1000)
				if v.tracked {
					e.metric(key+"_hit_rate_8c", hitRate)
				}
			}
		}
	}
	if nic := e.Metrics["nic_kops_8c"]; nic > 0 {
		e.metric("tracked_vs_nic_gain_pct_8c",
			(e.Metrics["tracked_host_kops_8c"]/nic-1)*100)
	}
	return e
}

// runTrackingVariant builds one SKV deployment, preloads the keyspace into
// the host store (and, for NIC-served reads, the shadow replica), and
// measures the Zipfian GET closed loop.
func runTrackingVariant(clients int, mode cluster.NicReadMode, tracked bool) (cluster.Result, float64) {
	cfg := cluster.Config{
		Kind: cluster.KindSKV, Slaves: 0, Clients: clients, Seed: 71,
		GetRatio: 1.0, Zipf: true, Tracking: tracked,
		SKV: core.DefaultConfig(), NicReads: mode,
	}
	c := cluster.Build(cfg)
	value := make([]byte, 64)
	for i := range value {
		value[i] = 'a' + byte(i%26)
	}
	for i := 0; i < 10_000; i++ {
		key := fmt.Sprintf("key:%010d", i)
		c.Master.Store().Exec(0, [][]byte{[]byte("SET"), []byte(key), value})
		if mode == cluster.NicReadsClients {
			c.NicKV.PreloadReplica(key, value)
		}
	}
	r := c.Measure(warmup, measure)
	var hits, misses uint64
	for _, cl := range c.Clients {
		st := cl.Stats()
		hits += st.Hits
		misses += st.Misses
	}
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	return r, hitRate
}
