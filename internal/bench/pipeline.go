package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
)

// ExtPipeline is an extension experiment beyond the paper: redis-benchmark
// style pipelining (-P). Pipelining amortizes per-round-trip costs, so both
// systems gain throughput — but the master's per-write replication cost is
// NOT amortized, so SKV's relative advantage persists (and grows slightly)
// at depth.
func ExtPipeline() *Experiment {
	e := &Experiment{
		ID:    "ext-pipeline",
		Title: "SET throughput vs pipeline depth (8 clients, 3 slaves) — extension",
		Header: []string{"pipeline", "rdma-redis kops/s", "skv kops/s", "gain",
			"rdma p99 µs", "skv p99 µs"},
		Notes: []string{
			"extension beyond the paper: the offload win survives pipelining because replication cost is per write, not per round trip",
		},
	}
	for _, depth := range []int{1, 4, 16, 64} {
		rr := runOnce(cluster.Config{Kind: cluster.KindRDMA, Slaves: 3, Clients: 8, Seed: 63, Pipeline: depth})
		rs := runOnce(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: 8, Seed: 63, Pipeline: depth, SKV: core.DefaultConfig()})
		e.Rows = append(e.Rows, []string{
			fmt.Sprint(depth),
			kops(rr.Throughput), kops(rs.Throughput),
			fmt.Sprintf("%+.1f%%", (rs.Throughput/rr.Throughput-1)*100),
			f1(rr.P99.Micros()), f1(rs.P99.Micros()),
		})
		e.metric(fmt.Sprintf("gain_pct_depth%d", depth), (rs.Throughput/rr.Throughput-1)*100)
	}
	return e
}
