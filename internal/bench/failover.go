package bench

import (
	"fmt"

	"skv/internal/cluster"
	"skv/internal/core"
	"skv/internal/metrics"
	"skv/internal/model"
	"skv/internal/sim"
)

// ExtFailover measures the §III-D failure-detection and failover chain from
// the NIC's timeline tracer: crash the master under client load, restart it,
// and report each transition's latency relative to the crash (detection =
// first mark-down, failover = promote order, recovery = restore + demote).
// Default probe parameters (probe 1s, waiting-time 2s) — the paper's scale.
func ExtFailover() *Experiment {
	e := &Experiment{
		ID:     "ext-failover",
		Title:  "Failure detection and failover latency (SKV, 3 slaves, master crash + restart)",
		Header: []string{"event", "node", "t (s)", "since crash (s)"},
		Notes: []string{
			"timeline recorded by Nic-KV's failover tracer (probe-miss -> mark-down -> promote -> restore -> demote)",
			"detection latency is bounded by waiting-time + one probe period (paper: probe 1s, waiting-time 2s)",
		},
	}
	cfg := core.DefaultConfig()
	cfg.ProgressInterval = 50 * sim.Millisecond
	crashAfter := 1500 * sim.Millisecond
	restartAfter := 8 * sim.Second
	horizon := 14 * sim.Second
	var p *model.Params
	if smoke {
		crashAfter, restartAfter, horizon = 500*sim.Millisecond, 2*sim.Second, 4*sim.Second
		pp := model.Default()
		pp.ProbePeriod = 100 * sim.Millisecond
		pp.WaitingTime = 300 * sim.Millisecond
		p = &pp
	}
	c := cluster.Build(cluster.Config{Kind: cluster.KindSKV, Slaves: 3, Clients: 4, Seed: 53, Params: p, SKV: cfg})
	if !c.AwaitReplication(5 * sim.Second) {
		panic("ext-failover: replication never converged")
	}
	h := cluster.NewChaos(c)
	c.StartClients()
	base := c.Eng.Now()
	h.CrashMaster(crashAfter)
	h.RestartMaster(restartAfter)
	c.Eng.Run(base.Add(horizon))
	for _, cl := range c.Clients {
		cl.Stop()
	}
	c.Eng.RunFor(2 * sim.Second)

	crashAt := base.Add(crashAfter)
	tl := c.NicKV.Timeline()
	row := func(typ metrics.EventType) {
		ev, ok := tl.FirstAfter(typ, crashAt)
		if !ok {
			e.Rows = append(e.Rows, []string{typ.String(), "-", "-", "never"})
			return
		}
		e.Rows = append(e.Rows, []string{
			typ.String(), ev.Node,
			f2(float64(ev.At) / float64(sim.Second)),
			f2(ev.At.Sub(crashAt).Seconds()),
		})
		e.metric(typ.String()+"_s", ev.At.Sub(crashAt).Seconds())
	}
	row(metrics.EventProbeMiss)
	row(metrics.EventMarkDown)
	row(metrics.EventPromote)
	row(metrics.EventRestore)
	row(metrics.EventDemote)

	var errs uint64
	for _, cl := range c.Clients {
		errs += cl.Stats().ErrReplies
	}
	e.metric("err_replies", float64(errs))
	e.Notes = append(e.Notes, fmt.Sprintf("client error replies across the outage: %d", errs))

	// Detector health from the NIC's metrics snapshot: probe RTT and how
	// many probes went unanswered across the run.
	snap := c.NicKV.Metrics().Snapshot()
	if rtt, ok := snap.Hists["nickv.probe.rtt"]; ok && rtt.Count > 0 {
		e.metric("probe_rtt_p99_us", rtt.P99.Micros())
		e.Notes = append(e.Notes, fmt.Sprintf(
			"probe RTT (n=%d): p50=%.1fµs p99=%.1fµs — detection latency is dominated by waiting-time, not probe transit",
			rtt.Count, rtt.P50.Micros(), rtt.P99.Micros()))
	}
	e.metric("probes_sent", float64(snap.Counters["nickv.probe.sent"]))
	e.metric("probe_acks", float64(snap.Counters["nickv.probe.acks"]))
	return e
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
