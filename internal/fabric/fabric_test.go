package fabric

import (
	"testing"

	"skv/internal/model"
	"skv/internal/sim"
)

func testNet() (*sim.Engine, *Network, *model.Params) {
	eng := sim.New(1)
	p := model.Default()
	return eng, New(eng, &p), &p
}

func TestFig3LatencyOrdering(t *testing.T) {
	// The paper's Fig 3 ordering: host→local SmartNIC is only a little
	// lower than host↔host, and remote host→SmartNIC is a little higher.
	eng, n, _ := testNet()
	_ = eng
	a := n.NewMachine("a", true)
	b := n.NewMachine("b", false)

	hostHost := n.PathLatency(b.Host, a.Host)
	hostLocalNIC := n.PathLatency(a.Host, a.NIC)
	remoteToNIC := n.PathLatency(b.Host, a.NIC)

	if !(hostLocalNIC < hostHost) {
		t.Errorf("host→local NIC (%v) should be below host↔host (%v)", hostLocalNIC, hostHost)
	}
	if !(hostHost < remoteToNIC) {
		t.Errorf("host↔host (%v) should be below remote→NIC (%v)", hostHost, remoteToNIC)
	}
	// "Only a little lower": within 50% of each other.
	if float64(hostLocalNIC) < 0.5*float64(hostHost) {
		t.Errorf("host→local NIC (%v) too far below host↔host (%v); NIC should look like a separate endpoint", hostLocalNIC, hostHost)
	}
}

func TestPathLatencySymmetry(t *testing.T) {
	_, n, _ := testNet()
	a := n.NewMachine("a", true)
	b := n.NewMachine("b", true)
	pairs := [][2]*Endpoint{
		{a.Host, b.Host}, {a.Host, a.NIC}, {a.NIC, b.Host}, {a.NIC, b.NIC},
	}
	for _, pr := range pairs {
		if n.PathLatency(pr[0], pr[1]) != n.PathLatency(pr[1], pr[0]) {
			t.Errorf("asymmetric latency between %s and %s", pr[0].Name(), pr[1].Name())
		}
	}
}

func TestSendDelivers(t *testing.T) {
	eng, n, p := testNet()
	a := n.NewMachine("a", false)
	b := n.NewMachine("b", false)
	var got Message
	var at sim.Time
	b.Host.Handle(func(m Message) { got = m; at = eng.Now() })
	eng.At(0, func() { n.Send(a.Host, b.Host, 1000, "hello", 0) })
	eng.Run(0)
	if got.Payload != "hello" || got.Size != 1000 {
		t.Fatalf("bad delivery: %+v", got)
	}
	want := n.PathLatency(a.Host, b.Host) + p.TransferTime(1000)
	if at != sim.Time(want) {
		t.Fatalf("delivered at %v, want %v", at, want)
	}
}

func TestSendToDownEndpointDropped(t *testing.T) {
	eng, n, _ := testNet()
	a := n.NewMachine("a", false)
	b := n.NewMachine("b", false)
	delivered := false
	b.Host.Handle(func(Message) { delivered = true })
	b.Host.SetDown(true)
	eng.At(0, func() { n.Send(a.Host, b.Host, 10, nil, 0) })
	eng.Run(0)
	if delivered {
		t.Fatal("message delivered to down endpoint")
	}
	if n.Dropped != 1 {
		t.Fatalf("Dropped = %d, want 1", n.Dropped)
	}
}

func TestTransferTimeScalesWithSize(t *testing.T) {
	p := model.Default()
	small := p.TransferTime(64)
	big := p.TransferTime(64 * 1024)
	if big <= small {
		t.Fatalf("transfer time not increasing: %v vs %v", small, big)
	}
	// 64KB at 100Gb/s ≈ 5.24µs.
	if big < 5*sim.Microsecond || big > 6*sim.Microsecond {
		t.Fatalf("64KB transfer = %v, want ≈5.2µs", big)
	}
}

func TestDuplicateMachinePanics(t *testing.T) {
	_, n, _ := testNet()
	n.NewMachine("a", false)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate machine did not panic")
		}
	}()
	n.NewMachine("a", false)
}

func TestMachineLookupAndKinds(t *testing.T) {
	_, n, _ := testNet()
	a := n.NewMachine("a", true)
	if n.Machine("a") != a {
		t.Fatal("Machine lookup failed")
	}
	if n.Machine("zz") != nil {
		t.Fatal("missing machine should be nil")
	}
	if a.Host.Kind() != KindHost || a.NIC.Kind() != KindNIC {
		t.Fatal("endpoint kinds wrong")
	}
	if a.Host.Machine() != a || a.NIC.Machine() != a {
		t.Fatal("endpoint machine backref wrong")
	}
	if a.Host.Name() != "a/host" || a.NIC.Name() != "a/nic" {
		t.Fatalf("endpoint names wrong: %s %s", a.Host.Name(), a.NIC.Name())
	}
	if KindHost.String() != "host" || KindNIC.String() != "nic" {
		t.Fatal("Kind.String wrong")
	}
}

func TestNoSmartNICMeansNilNIC(t *testing.T) {
	_, n, _ := testNet()
	if m := n.NewMachine("plain", false); m.NIC != nil {
		t.Fatal("machine without SmartNIC has a NIC endpoint")
	}
}
