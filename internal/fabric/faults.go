// Deterministic fault injection for the fabric (chaos harness substrate).
//
// The plane models faults the way a reliable-connected transport experiences
// them, so the conn layers above stay coherent:
//
//   - Message loss on a link is transport retransmission: the message is
//     delivered late (a seeded geometric number of retransmit penalties),
//     never silently dropped, because an RC transport retries until acked.
//   - A partition parks messages on the link: if the partition heals before
//     the sender's retry window expires, the parked messages flow (delayed,
//     in order) exactly as retransmitted packets would; if it does not, the
//     sender's transport observes the unacked streak and fails the
//     connection (see Endpoint.OnSendOutcome and rdma/tcpsim).
//   - Partitions are asymmetric: blocking src→dst also withholds
//     transport-level acks for the dst→src direction, so a one-way
//     partition starves both sides' senders, as with real RC/TCP.
//   - Down endpoints (Endpoint.SetDown, also driven by FlapEndpoint) park
//     the same way while a fault plane is installed; bringing the endpoint
//     up flushes. Without a plane, down endpoints hard-drop (legacy).
//
// All randomness comes from one RNG seeded off the engine, and every
// decision is made in event order, so a given seed yields a bit-identical
// fault schedule and event trace.
package fabric

import (
	"math/rand"

	"skv/internal/sim"
)

// linkKey identifies one direction of one link.
type linkKey struct {
	src, dst *Endpoint
}

// linkFault is the fault configuration and parked traffic of one directed
// link.
type linkFault struct {
	partitioned bool

	lossProb    float64      // per-message probability of a "lost" packet
	lossPenalty sim.Duration // retransmit delay charged per loss draw

	extraDelay sim.Duration // fixed added latency
	spikeProb  float64      // per-message probability of a delay spike
	spikeDelay sim.Duration // spike magnitude

	parked []parkedMsg
}

// parkedMsg is a message held on a blocked link awaiting heal (the RC
// retransmission queue, observed from the wire).
type parkedMsg struct {
	src, dst *Endpoint
	size     int
	payload  any
	lat      sim.Duration // residual one-way latency to apply at flush
}

// Faults is a Network's fault-injection plane. Obtain it with
// Network.Faults(); all methods are safe to call from scheduled events.
type Faults struct {
	net   *Network
	rng   *rand.Rand
	links map[linkKey]*linkFault

	// Retransmits counts simulated loss→retransmission events.
	Retransmits uint64
	// ParkedCount counts messages parked on blocked links.
	ParkedCount uint64
	// Spikes counts delay-spike events.
	Spikes uint64
}

// Faults returns the network's fault-injection plane, installing it on
// first use. Installing the plane switches down-endpoint handling from
// hard-drop to park-and-flush (reliable-transport retransmission).
func (n *Network) Faults() *Faults {
	if n.faults == nil {
		n.faults = &Faults{
			net:   n,
			rng:   n.eng.NewRand(),
			links: make(map[linkKey]*linkFault),
		}
	}
	return n.faults
}

func (f *Faults) link(src, dst *Endpoint) *linkFault {
	k := linkKey{src, dst}
	lf := f.links[k]
	if lf == nil {
		lf = &linkFault{}
		f.links[k] = lf
	}
	return lf
}

// peek returns the link fault config without creating one.
func (f *Faults) peek(src, dst *Endpoint) *linkFault {
	return f.links[linkKey{src, dst}]
}

// Partition blocks the src→dst direction. Messages sent while blocked are
// parked and delivered (in order) if Heal arrives; senders are notified of
// the unacked sends so their transports can time the connection out.
func (f *Faults) Partition(src, dst *Endpoint) {
	f.link(src, dst).partitioned = true
}

// PartitionBoth blocks both directions between a and b.
func (f *Faults) PartitionBoth(a, b *Endpoint) {
	f.Partition(a, b)
	f.Partition(b, a)
}

// Heal unblocks src→dst and flushes parked messages in send order.
func (f *Faults) Heal(src, dst *Endpoint) {
	lf := f.peek(src, dst)
	if lf == nil || !lf.partitioned {
		return
	}
	lf.partitioned = false
	f.flush(lf)
}

// HealBoth unblocks both directions between a and b.
func (f *Faults) HealBoth(a, b *Endpoint) {
	f.Heal(a, b)
	f.Heal(b, a)
}

// HealAll lifts every partition (but keeps loss/delay settings).
func (f *Faults) HealAll() {
	for _, lf := range f.links {
		if lf.partitioned {
			lf.partitioned = false
			f.flush(lf)
		}
	}
}

// Partitioned reports whether src→dst is currently blocked.
func (f *Faults) Partitioned(src, dst *Endpoint) bool {
	lf := f.peek(src, dst)
	return lf != nil && lf.partitioned
}

// SetLoss configures seeded message loss on src→dst: each message is
// independently "lost" with probability prob; every loss costs penalty of
// retransmission delay (drawn geometrically, so bursts of consecutive
// losses compound). prob 0 disables.
func (f *Faults) SetLoss(src, dst *Endpoint, prob float64, penalty sim.Duration) {
	lf := f.link(src, dst)
	lf.lossProb = prob
	lf.lossPenalty = penalty
}

// SetLossBoth configures loss symmetrically.
func (f *Faults) SetLossBoth(a, b *Endpoint, prob float64, penalty sim.Duration) {
	f.SetLoss(a, b, prob, penalty)
	f.SetLoss(b, a, prob, penalty)
}

// SetDelay adds a fixed extra latency to src→dst plus seeded delay spikes:
// each message suffers spike with probability spikeProb.
func (f *Faults) SetDelay(src, dst *Endpoint, extra sim.Duration, spikeProb float64, spike sim.Duration) {
	lf := f.link(src, dst)
	lf.extraDelay = extra
	lf.spikeProb = spikeProb
	lf.spikeDelay = spike
}

// Clear removes all fault configuration from src→dst (flushing anything
// parked there).
func (f *Faults) Clear(src, dst *Endpoint) {
	lf := f.peek(src, dst)
	if lf == nil {
		return
	}
	wasPartitioned := lf.partitioned
	*lf = linkFault{parked: lf.parked}
	if wasPartitioned {
		f.flush(lf)
	}
	lf.parked = nil
}

// FlapEndpoint schedules cycles of endpoint flapping: down for downFor,
// then up for upFor, repeated cycles times, starting one downFor-free
// period from now... the first transition to down happens immediately.
func (f *Faults) FlapEndpoint(ep *Endpoint, downFor, upFor sim.Duration, cycles int) {
	eng := f.net.eng
	var at sim.Duration
	for i := 0; i < cycles; i++ {
		eng.After(at, func() { ep.SetDown(true) })
		eng.After(at+downFor, func() { ep.SetDown(false) })
		at += downFor + upFor
	}
}

// blocked reports whether a message src→dst must be parked right now.
func (f *Faults) blocked(src, dst *Endpoint) bool {
	if src.down || dst.down {
		return true
	}
	lf := f.peek(src, dst)
	return lf != nil && lf.partitioned
}

// send routes one message through the fault plane: park if the link is
// blocked, otherwise perturb latency per the link's loss/delay config and
// hand off to normal delivery.
func (f *Faults) send(src, dst *Endpoint, size int, payload any, lat sim.Duration) {
	n := f.net
	if f.blocked(src, dst) {
		lf := f.link(src, dst)
		lf.parked = append(lf.parked, parkedMsg{src: src, dst: dst, size: size, payload: payload, lat: lat})
		f.ParkedCount++
		n.Parked++
		n.mParked.Inc()
		// The sender's transport sees the ack timeout one latency later.
		msg := Message{Src: src, Dst: dst, Size: size, Payload: payload}
		n.eng.After(lat, func() { notifyOutcome(src, msg, false) })
		return
	}
	if lf := f.peek(src, dst); lf != nil {
		lat += lf.extraDelay
		if lf.lossProb > 0 {
			for f.rng.Float64() < lf.lossProb {
				lat += lf.lossPenalty
				f.Retransmits++
				n.mRetransmits.Inc()
			}
		}
		if lf.spikeProb > 0 && f.rng.Float64() < lf.spikeProb {
			lat += lf.spikeDelay
			f.Spikes++
			n.mSpikes.Inc()
		}
	}
	n.deliverAfter(src, dst, size, payload, lat)
}

// flush re-injects parked messages after a heal, preserving send order via
// the network's per-link FIFO arrival clamp.
func (f *Faults) flush(lf *linkFault) {
	parked := lf.parked
	lf.parked = nil
	for _, pm := range parked {
		if f.blocked(pm.src, pm.dst) {
			// Re-partitioned (or endpoint still down) before the flush
			// drained: park again.
			lf2 := f.link(pm.src, pm.dst)
			lf2.parked = append(lf2.parked, pm)
			continue
		}
		f.net.deliverAfter(pm.src, pm.dst, pm.size, pm.payload, pm.lat)
	}
}

// flushEndpoint releases everything parked because ep was down (called on
// SetDown(false)).
func (f *Faults) flushEndpoint(ep *Endpoint) {
	for k, lf := range f.links {
		if (k.src == ep || k.dst == ep) && len(lf.parked) > 0 && !lf.partitioned {
			f.flush(lf)
		}
	}
}
