// Package fabric models the physical cluster: machines connected by a
// 100Gb switch, optionally carrying an off-path SmartNIC (Mellanox
// BlueField class) whose embedded NIC switch directs traffic either to the
// host or to the NIC's ARM complex (paper §II-A, Fig 2).
//
// The fabric is a latency/bandwidth model, not a packet simulator: a message
// of S bytes from endpoint A to endpoint B arrives after
// pathLatency(A,B) + S/bandwidth. Path latency is composed from PCIe hops,
// wire+switch propagation, the NIC-switch hop, and the (slow) on-NIC memory
// subsystem, which together reproduce the paper's Fig 3 ordering:
//
//	host → local SmartNIC  <  host ↔ host  <  remote host → SmartNIC
//
// with all three within a few hundred nanoseconds of each other ("the
// SmartNIC is just like a separated endpoint in the network").
package fabric

import (
	"fmt"

	"skv/internal/metrics"
	"skv/internal/model"
	"skv/internal/sim"
)

// Kind distinguishes host endpoints from SmartNIC (ARM complex) endpoints.
type Kind int

const (
	// KindHost is a host NIC port backed by host memory over PCIe.
	KindHost Kind = iota
	// KindNIC is the SmartNIC ARM complex behind the embedded NIC switch.
	KindNIC
)

func (k Kind) String() string {
	if k == KindNIC {
		return "nic"
	}
	return "host"
}

// Endpoint is an addressable network attachment point.
type Endpoint struct {
	machine *Machine
	kind    Kind
	name    string
	net     *Network

	// down simulates a powered-off or unreachable endpoint: messages to it
	// are silently dropped (an RDMA peer would see timeouts). With a fault
	// plane installed (Network.Faults), traffic is parked and flushed on
	// recovery instead, the way a reliable transport's retransmission
	// behaves.
	down bool

	deliver func(Message)

	// sendOutcome, when set, observes the fate of every message sent from
	// this endpoint: acked=false for drops, parked (blocked-link) sends,
	// and deliveries whose reverse path is partitioned (the ack cannot
	// return). Transports use it to time out dead connections.
	sendOutcome func(Message, bool)
}

// Name reports the endpoint's unique fabric address.
func (e *Endpoint) Name() string { return e.name }

// Kind reports whether this is a host or NIC endpoint.
func (e *Endpoint) Kind() Kind { return e.kind }

// Machine reports the machine the endpoint belongs to.
func (e *Endpoint) Machine() *Machine { return e.machine }

// SetDown marks the endpoint unreachable (true) or reachable (false).
// Bringing an endpoint back up flushes traffic parked by the fault plane.
func (e *Endpoint) SetDown(down bool) {
	wasDown := e.down
	e.down = down
	if wasDown && !down && e.net != nil && e.net.faults != nil {
		e.net.faults.flushEndpoint(e)
	}
}

// Down reports whether the endpoint is unreachable.
func (e *Endpoint) Down() bool { return e.down }

// Handle registers the receive function invoked for each delivered message.
// Exactly one receiver (the RDMA device or TCP stack) owns an endpoint.
func (e *Endpoint) Handle(fn func(Message)) { e.deliver = fn }

// OnSendOutcome registers fn to observe the fate of messages sent from this
// endpoint: acked=true when the message was delivered and its transport-
// level ack can return, false otherwise. The transport layers use the
// unacked streak to fail connections the way RC retry-exhaustion / TCP RTO
// would.
func (e *Endpoint) OnSendOutcome(fn func(Message, bool)) { e.sendOutcome = fn }

func notifyOutcome(src *Endpoint, m Message, acked bool) {
	if src != nil && src.sendOutcome != nil {
		src.sendOutcome(m, acked)
	}
}

// Machine is one server chassis: a host endpoint and, if a SmartNIC is
// installed, a NIC endpoint sharing the same physical port.
type Machine struct {
	Name string
	Host *Endpoint
	NIC  *Endpoint // nil if no SmartNIC installed
}

// Message is one fabric-level datagram.
type Message struct {
	Src     *Endpoint
	Dst     *Endpoint
	Size    int
	Payload any
}

// Network is the set of machines and the switch connecting them.
type Network struct {
	eng      *sim.Engine
	params   *model.Params
	machines map[string]*Machine

	// lastArrival enforces FIFO delivery per (src,dst) pair, the ordering
	// guarantee of a reliable-connected transport: a large message sent
	// first cannot be overtaken by a small one sent later.
	lastArrival map[[2]*Endpoint]sim.Time

	// Delivered counts messages delivered (for tests/ablation reporting).
	Delivered uint64
	// Dropped counts messages dropped due to a down endpoint.
	Dropped uint64
	// Parked counts messages held on blocked links by the fault plane.
	Parked uint64

	// faults is the fault-injection plane, nil until Faults() installs it.
	faults *Faults

	// metrics is the fabric's registry (nil until SetMetrics); the resolved
	// instruments below are nil-safe no-ops without it.
	metrics      *metrics.Registry
	mTxMsgs      *metrics.Counter
	mTxBytes     *metrics.Counter
	mDelivered   *metrics.Counter
	mDropped     *metrics.Counter
	mParked      *metrics.Counter
	mRetransmits *metrics.Counter
	mSpikes      *metrics.Counter
}

// New creates an empty network on the engine with the given parameters.
func New(eng *sim.Engine, params *model.Params) *Network {
	return &Network{
		eng:         eng,
		params:      params,
		machines:    make(map[string]*Machine),
		lastArrival: make(map[[2]*Endpoint]sim.Time),
	}
}

// Engine exposes the simulation engine driving this network.
func (n *Network) Engine() *sim.Engine { return n.eng }

// SetMetrics installs the fabric's metrics registry and resolves the
// wire-level instruments (tx messages/bytes, deliveries, drops, parked
// traffic, retransmits, delay spikes).
func (n *Network) SetMetrics(reg *metrics.Registry) {
	n.metrics = reg
	n.mTxMsgs = reg.Counter("fabric.tx.msgs")
	n.mTxBytes = reg.Counter("fabric.tx.bytes")
	n.mDelivered = reg.Counter("fabric.rx.msgs")
	n.mDropped = reg.Counter("fabric.dropped")
	n.mParked = reg.Counter("fabric.parked")
	n.mRetransmits = reg.Counter("fabric.retransmits")
	n.mSpikes = reg.Counter("fabric.spikes")
}

// Metrics exposes the fabric registry (nil until SetMetrics).
func (n *Network) Metrics() *metrics.Registry { return n.metrics }

// Params exposes the calibration parameters.
func (n *Network) Params() *model.Params { return n.params }

// NewMachine adds a machine. If smartNIC is true the machine gets a NIC
// endpoint for the on-SmartNIC software (Nic-KV).
func (n *Network) NewMachine(name string, smartNIC bool) *Machine {
	if _, dup := n.machines[name]; dup {
		panic(fmt.Sprintf("fabric: duplicate machine %q", name))
	}
	m := &Machine{Name: name}
	m.Host = &Endpoint{machine: m, kind: KindHost, name: name + "/host", net: n}
	if smartNIC {
		m.NIC = &Endpoint{machine: m, kind: KindNIC, name: name + "/nic", net: n}
	}
	n.machines[name] = m
	return m
}

// Machine looks up a machine by name, or nil.
func (n *Network) Machine(name string) *Machine { return n.machines[name] }

// EndpointByName resolves an endpoint address of the form "machine/host" or
// "machine/nic", or nil when unknown. Message payloads that must name a
// node (SKV's initial-sync requests) carry these strings.
func (n *Network) EndpointByName(name string) *Endpoint {
	for _, m := range n.machines {
		if m.Host != nil && m.Host.name == name {
			return m.Host
		}
		if m.NIC != nil && m.NIC.name == name {
			return m.NIC
		}
	}
	return nil
}

// nicMemLatency is the extra latency of terminating traffic in the SmartNIC
// ARM complex (slow on-board DDR + full network stack on the NIC, §II-A2).
func (n *Network) nicMemLatency() sim.Duration {
	return n.params.NICSwitchLatency + n.params.PCIeLatency // ≈ stack+DDR cost
}

// PathLatency reports the one-way fabric latency between two endpoints,
// excluding serialization (size/bandwidth) and NIC processing.
func (n *Network) PathLatency(src, dst *Endpoint) sim.Duration {
	p := n.params
	if src == dst {
		return p.NICSwitchLatency // pure loopback through the NIC switch
	}
	var d sim.Duration
	// Source side: getting the data from its memory to the port.
	if src.kind == KindHost {
		d += p.PCIeLatency
	} else {
		d += n.nicMemLatency()
	}
	// Middle: same machine → only the embedded NIC switch; different
	// machine → wire + ToR switch.
	if src.machine == dst.machine {
		d += p.NICSwitchLatency
	} else {
		d += p.WireLatency
		// Reaching an ARM complex behind a remote NIC takes the extra
		// embedded-switch hop.
		if dst.kind == KindNIC || src.kind == KindNIC {
			d += p.NICSwitchLatency
		}
	}
	// Destination side: placing the data into its memory.
	if dst.kind == KindHost {
		d += p.PCIeLatency
	} else {
		d += n.nicMemLatency()
	}
	return d
}

// Send schedules delivery of a message. extra is additional latency the
// caller wants included (e.g. sender/receiver NIC processing from the RDMA
// model, or kernel-stack latency from the TCP model). With a fault plane
// installed the message is first routed through it (partition parking,
// loss→retransmit delay, delay spikes).
func (n *Network) Send(src, dst *Endpoint, size int, payload any, extra sim.Duration) {
	if dst == nil {
		panic("fabric: Send to nil endpoint")
	}
	n.mTxMsgs.Inc()
	n.mTxBytes.Add(uint64(size))
	lat := n.PathLatency(src, dst) + n.params.TransferTime(size) + extra
	if n.faults != nil {
		n.faults.send(src, dst, size, payload, lat)
		return
	}
	n.deliverAfter(src, dst, size, payload, lat)
}

// deliverAfter schedules actual delivery lat from now, preserving per-link
// FIFO ordering (a reliable-connected transport's guarantee).
func (n *Network) deliverAfter(src, dst *Endpoint, size int, payload any, lat sim.Duration) {
	key := [2]*Endpoint{src, dst}
	arrive := n.eng.Now().Add(lat)
	if last := n.lastArrival[key]; arrive < last {
		arrive = last
	}
	n.lastArrival[key] = arrive
	lat = arrive.Sub(n.eng.Now())
	n.eng.After(lat, func() {
		m := Message{Src: src, Dst: dst, Size: size, Payload: payload}
		if dst.down || dst.deliver == nil {
			n.Dropped++
			n.mDropped.Inc()
			notifyOutcome(src, m, false)
			return
		}
		n.Delivered++
		n.mDelivered.Inc()
		// The ack for this delivery travels dst→src; a partitioned reverse
		// path starves the sender of acks even though the data landed.
		acked := n.faults == nil || !n.faults.Partitioned(dst, src)
		dst.deliver(m)
		notifyOutcome(src, m, acked)
	})
}
