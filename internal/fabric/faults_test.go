package fabric

import (
	"testing"

	"skv/internal/model"
	"skv/internal/sim"
)

func faultsRig() (*sim.Engine, *Network, *Machine, *Machine) {
	eng := sim.New(99)
	p := model.Default()
	net := New(eng, &p)
	a := net.NewMachine("a", true)
	b := net.NewMachine("b", false)
	return eng, net, a, b
}

func TestPartitionParksAndHealDelivers(t *testing.T) {
	eng, net, a, b := faultsRig()
	var got []string
	b.Host.Handle(func(m Message) { got = append(got, m.Payload.(string)) })

	f := net.Faults()
	f.Partition(a.Host, b.Host)
	net.Send(a.Host, b.Host, 64, "one", 0)
	net.Send(a.Host, b.Host, 64, "two", 0)
	eng.RunFor(10 * sim.Millisecond)
	if len(got) != 0 {
		t.Fatalf("partitioned link delivered %v", got)
	}
	if net.Parked != 2 {
		t.Fatalf("Parked=%d want 2", net.Parked)
	}
	f.Heal(a.Host, b.Host)
	eng.RunFor(10 * sim.Millisecond)
	if len(got) != 2 || got[0] != "one" || got[1] != "two" {
		t.Fatalf("after heal got %v, want [one two] in order", got)
	}
}

func TestPartitionIsAsymmetric(t *testing.T) {
	eng, net, a, b := faultsRig()
	var fromA, fromB int
	a.Host.Handle(func(Message) { fromB++ })
	b.Host.Handle(func(Message) { fromA++ })

	net.Faults().Partition(a.Host, b.Host)
	net.Send(a.Host, b.Host, 64, "blocked", 0)
	net.Send(b.Host, a.Host, 64, "open", 0)
	eng.RunFor(10 * sim.Millisecond)
	if fromA != 0 || fromB != 1 {
		t.Fatalf("asymmetric partition: a→b delivered %d (want 0), b→a delivered %d (want 1)", fromA, fromB)
	}
}

func TestAsymmetricPartitionStarvesReverseAcks(t *testing.T) {
	eng, net, a, b := faultsRig()
	b.Host.Handle(func(Message) {})
	var acks []bool
	b.Host.OnSendOutcome(func(_ Message, acked bool) { acks = append(acks, acked) })
	a.Host.Handle(func(Message) {})

	// Block a→b only; b's sends are delivered but their acks (b←a... the
	// a→b direction) cannot return.
	net.Faults().Partition(a.Host, b.Host)
	net.Send(b.Host, a.Host, 64, "data", 0)
	eng.RunFor(10 * sim.Millisecond)
	if len(acks) != 1 || acks[0] {
		t.Fatalf("reverse-partitioned delivery acks=%v, want [false]", acks)
	}
}

func TestLossAddsDeterministicRetransmitDelay(t *testing.T) {
	run := func() []sim.Time {
		eng, net, a, b := faultsRig()
		var arrivals []sim.Time
		b.Host.Handle(func(Message) { arrivals = append(arrivals, eng.Now()) })
		net.Faults().SetLoss(a.Host, b.Host, 0.5, 1*sim.Millisecond)
		for i := 0; i < 20; i++ {
			net.Send(a.Host, b.Host, 64, i, 0)
		}
		eng.RunFor(200 * sim.Millisecond)
		if net.Faults().Retransmits == 0 {
			t.Fatal("no retransmits at 50% loss over 20 messages")
		}
		if len(arrivals) != 20 {
			t.Fatalf("reliable transport lost messages: %d/20 arrived", len(arrivals))
		}
		return arrivals
	}
	a1, a2 := run(), run()
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatalf("seeded loss not deterministic: arrival %d differs (%v vs %v)", i, a1[i], a2[i])
		}
	}
}

func TestDelaySpikes(t *testing.T) {
	eng, net, a, b := faultsRig()
	var arrivals []sim.Time
	b.Host.Handle(func(Message) { arrivals = append(arrivals, eng.Now()) })
	net.Faults().SetDelay(a.Host, b.Host, 100*sim.Microsecond, 1.0, 5*sim.Millisecond)
	net.Send(a.Host, b.Host, 64, "x", 0)
	eng.RunFor(50 * sim.Millisecond)
	if len(arrivals) != 1 {
		t.Fatal("message lost")
	}
	if arrivals[0] < sim.Time(5*sim.Millisecond) {
		t.Fatalf("spike (p=1.0) not applied: arrival at %v", arrivals[0])
	}
	if net.Faults().Spikes != 1 {
		t.Fatalf("Spikes=%d want 1", net.Faults().Spikes)
	}
}

func TestFlapEndpointParksWhileDownAndFlushesOnUp(t *testing.T) {
	eng, net, a, b := faultsRig()
	var got int
	b.Host.Handle(func(Message) { got++ })
	f := net.Faults()
	// Down 5ms, up 5ms, twice.
	f.FlapEndpoint(b.Host, 5*sim.Millisecond, 5*sim.Millisecond, 2)
	// Send one message during each down window and each up window.
	for _, at := range []sim.Duration{2, 7, 12, 17} {
		payload := at
		eng.After(at*sim.Millisecond, func() {
			net.Send(a.Host, b.Host, 64, payload, 0)
		})
	}
	eng.RunFor(100 * sim.Millisecond)
	if got != 4 {
		t.Fatalf("flapped endpoint delivered %d/4 (parked traffic must flush on up)", got)
	}
	if b.Host.Down() {
		t.Fatal("endpoint still down after flap cycles")
	}
}

func TestOutcomeNotifiedFalseForParkedSends(t *testing.T) {
	eng, net, a, b := faultsRig()
	b.Host.Handle(func(Message) {})
	var nacks int
	a.Host.OnSendOutcome(func(_ Message, acked bool) {
		if !acked {
			nacks++
		}
	})
	net.Faults().Partition(a.Host, b.Host)
	net.Send(a.Host, b.Host, 64, "x", 0)
	eng.RunFor(10 * sim.Millisecond)
	if nacks != 1 {
		t.Fatalf("parked send produced %d nack notifications, want 1", nacks)
	}
}

func TestClearRemovesFaults(t *testing.T) {
	eng, net, a, b := faultsRig()
	var got int
	b.Host.Handle(func(Message) { got++ })
	f := net.Faults()
	f.Partition(a.Host, b.Host)
	net.Send(a.Host, b.Host, 64, "x", 0)
	f.Clear(a.Host, b.Host)
	net.Send(a.Host, b.Host, 64, "y", 0)
	eng.RunFor(10 * sim.Millisecond)
	if got != 2 {
		t.Fatalf("after Clear got %d/2 messages", got)
	}
	if f.Partitioned(a.Host, b.Host) {
		t.Fatal("link still partitioned after Clear")
	}
}
