// Package replstream is the single home of the replication data path shared
// by every producer and consumer of the write stream: the baseline master's
// per-slave fan-out, Host-KV's SmartNIC offload, Nic-KV's NIC-side fan-out,
// and the slave-side appliers.
//
// The Writer owns everything that used to be hand-rolled in three places
// (server/repl.go, core/hostkv.go, core/nickv.go): backlog append,
// SELECT-context injection, offset accounting, and per-tick batching. A
// batch is a run of consecutively encoded commands plus the global stream
// offset of its first byte; because RESP commands are self-framing, a batch
// travels as plain concatenated bytes and any offset-aware consumer can
// slice it on command boundaries.
//
// Batching is the doorbell/work-request amortization off-path SmartNIC
// studies show dominates replication cost: instead of one send (and one
// posted WR) per write, the Writer accumulates commands and flushes either
// when a byte/command budget is hit or when the producing core quiesces
// (the event-loop tick ends). With a command budget of 1 the Writer flushes
// synchronously inside Append and reproduces the unbatched behaviour
// bit-for-bit.
//
// The Applier is the consume-side mirror: it decodes a replication byte
// stream (batched or not) back into commands, tracks the SELECT context,
// and hands each data command to an apply callback.
package replstream

import (
	"strconv"

	"skv/internal/backlog"
	"skv/internal/metrics"
	"skv/internal/resp"
)

// Batch is one flushed run of the replication stream.
type Batch struct {
	// Start is the global replication offset of Data[0].
	Start int64
	// Data is the concatenation of the batch's RESP-encoded commands.
	Data []byte
	// Cmds is the number of commands in Data (SELECT injections included).
	Cmds int
}

// End reports the global offset one past the batch's last byte.
func (b Batch) End() int64 { return b.Start + int64(len(b.Data)) }

// WriterConfig wires a Writer to its embedder.
type WriterConfig struct {
	// Backlog receives every appended byte (before any flush).
	Backlog *backlog.Backlog
	// MaxCmds flushes a batch once it holds this many commands; 1 (or less)
	// flushes synchronously inside Append — the unbatched behaviour.
	MaxCmds int
	// MaxBytes flushes a batch once it holds this many bytes (safety cap so
	// huge values don't ride the quiesce flush). 0 means 64KB.
	MaxBytes int
	// Flush delivers one batch downstream (fan-out to slaves, or the
	// replication request to Nic-KV).
	Flush func(Batch)
	// Schedule, when non-nil, defers a function to the producing core's
	// quiesce point (end of the current event-loop tick). It is used to
	// flush partial batches; with MaxCmds <= 1 it is never called.
	Schedule func(func())
	// Metrics, when non-nil, receives the stream's instruments: commands and
	// bytes streamed, and batches flushed by reason (repl.* names).
	Metrics *metrics.Registry
}

// Writer is the produce side of the replication stream: it appends writes
// to the backlog, injects SELECT context switches, accounts offsets, and
// batches commands for the downstream flush.
type Writer struct {
	cfg WriterConfig

	db           int // database the stream currently SELECTs
	pending      []byte
	pendingStart int64
	pendingCmds  int
	scheduled    bool

	// CmdsAppended counts commands entered into the stream (SELECTs
	// included); BatchesFlushed counts downstream flushes. Their ratio is
	// the WR-amortization factor the batching buys.
	CmdsAppended   uint64
	BatchesFlushed uint64

	// Registry instruments (no-ops without cfg.Metrics).
	mCmds        *metrics.Counter
	mBytes       *metrics.Counter
	mFlushCmd    *metrics.Counter
	mFlushBytes  *metrics.Counter
	mFlushQuiese *metrics.Counter
	mFlushForced *metrics.Counter
}

// flushReason says why a batch left the Writer: it hit the command budget,
// the byte budget, the producing core's quiesce point, or a forced Flush
// (PSYNC serving, tests).
type flushReason int

const (
	flushCmdBudget flushReason = iota
	flushByteBudget
	flushQuiesce
	flushForced
)

// NewWriter creates a Writer. The config's Backlog and Flush are required.
func NewWriter(cfg WriterConfig) *Writer {
	if cfg.Backlog == nil || cfg.Flush == nil {
		panic("replstream: NewWriter requires Backlog and Flush")
	}
	if cfg.MaxCmds < 1 {
		cfg.MaxCmds = 1
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 1 << 16
	}
	return &Writer{
		cfg:          cfg,
		mCmds:        cfg.Metrics.Counter("repl.stream.cmds"),
		mBytes:       cfg.Metrics.Counter("repl.stream.bytes"),
		mFlushCmd:    cfg.Metrics.Counter("repl.flush.cmd_budget"),
		mFlushBytes:  cfg.Metrics.Counter("repl.flush.byte_budget"),
		mFlushQuiese: cfg.Metrics.Counter("repl.flush.quiesce"),
		mFlushForced: cfg.Metrics.Counter("repl.flush.forced"),
	}
}

// DB reports the database the stream's SELECT context currently points at.
func (w *Writer) DB() int { return w.db }

// Pending reports the bytes accumulated but not yet flushed.
func (w *Writer) Pending() int { return len(w.pending) }

// Append enters one write command issued against database db into the
// stream: a SELECT is injected when the stream context differs, both are
// appended to the backlog immediately (offsets advance now, flushing only
// defers the downstream send).
// Append enters one command into the stream (injecting a SELECT when the
// db context changes) and returns the backlog end offset after the write —
// the offset a replica must ack before this write counts as replicated.
func (w *Writer) Append(db int, argv [][]byte) int64 {
	if db != w.db {
		w.db = db
		w.add(resp.EncodeCommand("SELECT", strconv.Itoa(db)))
	}
	w.add(resp.EncodeCommandBytes(argv...))
	return w.cfg.Backlog.EndOffset()
}

// AppendEncoded enters one pre-encoded command into the stream, bypassing
// SELECT-context tracking (tests and replay tooling).
func (w *Writer) AppendEncoded(cmd []byte) { w.add(cmd) }

func (w *Writer) add(cmd []byte) {
	start := w.cfg.Backlog.EndOffset()
	w.cfg.Backlog.Write(cmd)
	if w.pendingCmds == 0 {
		w.pendingStart = start
	}
	w.pending = append(w.pending, cmd...)
	w.pendingCmds++
	w.CmdsAppended++
	w.mCmds.Inc()
	w.mBytes.Add(uint64(len(cmd)))
	switch {
	case w.pendingCmds >= w.cfg.MaxCmds:
		w.flush(flushCmdBudget)
	case len(w.pending) >= w.cfg.MaxBytes:
		w.flush(flushByteBudget)
	default:
		w.scheduleFlush()
	}
}

// Flush pushes the pending batch downstream now. No-op when nothing is
// pending. The master calls this before serving a PSYNC so a joining slave
// never sees backlog bytes again on the live stream.
func (w *Writer) Flush() { w.flush(flushForced) }

func (w *Writer) flush(reason flushReason) {
	if w.pendingCmds == 0 {
		return
	}
	b := Batch{Start: w.pendingStart, Data: w.pending, Cmds: w.pendingCmds}
	// The batch's Data escapes into transport sends; start a fresh buffer.
	w.pending = nil
	w.pendingCmds = 0
	w.BatchesFlushed++
	switch reason {
	case flushCmdBudget:
		w.mFlushCmd.Inc()
	case flushByteBudget:
		w.mFlushBytes.Inc()
	case flushQuiesce:
		w.mFlushQuiese.Inc()
	case flushForced:
		w.mFlushForced.Inc()
	}
	w.cfg.Flush(b)
}

func (w *Writer) scheduleFlush() {
	if w.scheduled || w.cfg.Schedule == nil {
		return
	}
	w.scheduled = true
	w.cfg.Schedule(func() {
		w.scheduled = false
		w.flush(flushQuiesce)
	})
}

// Applier is the consume side: feed it replication stream bytes in offset
// order and it decodes commands, maintains the SELECT context, and invokes
// apply for every data command. SELECTs are consumed internally.
type Applier struct {
	reader resp.Reader
	db     int
	apply  func(db int, argv [][]byte)

	// Applied counts data commands handed to the apply callback.
	Applied uint64
}

// NewApplier creates an Applier invoking apply per decoded data command.
func NewApplier(apply func(db int, argv [][]byte)) *Applier {
	return &Applier{apply: apply}
}

// DB reports the applier's current SELECT context.
func (a *Applier) DB() int { return a.db }

// Feed decodes every complete command in data (plus any bytes buffered from
// earlier partial feeds). Incomplete trailing bytes stay buffered; a
// protocol error stops decoding.
func (a *Applier) Feed(data []byte) {
	a.reader.Feed(data)
	for {
		argv, ok, err := a.reader.ReadCommand()
		if err != nil || !ok {
			return
		}
		if len(argv) == 2 && isSelect(argv[0]) {
			if n, convErr := strconv.Atoi(string(argv[1])); convErr == nil {
				a.db = n
			}
			continue
		}
		a.Applied++
		a.apply(a.db, argv)
	}
}

// isSelect reports whether name is "select" in any case, without
// allocating.
func isSelect(name []byte) bool {
	const sel = "select"
	if len(name) != len(sel) {
		return false
	}
	for i := 0; i < len(sel); i++ {
		ch := name[i]
		if 'A' <= ch && ch <= 'Z' {
			ch += 'a' - 'A'
		}
		if ch != sel[i] {
			return false
		}
	}
	return true
}
