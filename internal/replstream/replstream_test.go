package replstream

import (
	"bytes"
	"fmt"
	"testing"

	"skv/internal/backlog"
	"skv/internal/resp"
)

func cmd(argv ...string) []byte { return resp.EncodeCommand(argv...) }

type harness struct {
	w       *Writer
	bl      *backlog.Backlog
	flushed []Batch
	queued  []func()
}

func newHarness(maxCmds, maxBytes int, scheduled bool) *harness {
	h := &harness{bl: backlog.New(1 << 20)}
	cfg := WriterConfig{
		Backlog:  h.bl,
		MaxCmds:  maxCmds,
		MaxBytes: maxBytes,
		Flush: func(b Batch) {
			// Copy: real transports also take ownership of Data.
			h.flushed = append(h.flushed, Batch{Start: b.Start, Data: append([]byte(nil), b.Data...), Cmds: b.Cmds})
		},
	}
	if scheduled {
		cfg.Schedule = func(fn func()) { h.queued = append(h.queued, fn) }
	}
	h.w = NewWriter(cfg)
	return h
}

// quiesce runs every deferred flush, as the event loop would at tick end.
func (h *harness) quiesce() {
	for len(h.queued) > 0 {
		q := h.queued
		h.queued = nil
		for _, fn := range q {
			fn()
		}
	}
}

// TestBatchOneFlushesSynchronously pins the bit-for-bit compatibility
// contract: MaxCmds=1 flushes inside Append, one batch per command, and a
// SELECT context switch flushes as its own batch first (exactly the two
// sends the pre-refactor code issued).
func TestBatchOneFlushesSynchronously(t *testing.T) {
	h := newHarness(1, 0, true)
	h.w.Append(0, [][]byte{[]byte("SET"), []byte("k"), []byte("v")})
	if len(h.flushed) != 1 {
		t.Fatalf("flushes after first append: %d", len(h.flushed))
	}
	h.w.Append(2, [][]byte{[]byte("SET"), []byte("j"), []byte("w")})
	if len(h.flushed) != 3 {
		t.Fatalf("db switch must flush SELECT + command separately, got %d batches", len(h.flushed))
	}
	if len(h.queued) != 0 {
		t.Fatal("MaxCmds=1 must never schedule a deferred flush")
	}
	want := [][]byte{
		cmd("SET", "k", "v"),
		cmd("SELECT", "2"),
		cmd("SET", "j", "w"),
	}
	off := int64(0)
	for i, b := range h.flushed {
		if !bytes.Equal(b.Data, want[i]) || b.Cmds != 1 || b.Start != off {
			t.Fatalf("batch %d = {%d %q %d}, want {%d %q 1}", i, b.Start, b.Data, b.Cmds, off, want[i])
		}
		off += int64(len(b.Data))
	}
}

// TestBudgetFlush checks the command-count budget: the batch flushes inside
// Append as soon as MaxCmds commands accumulate.
func TestBudgetFlush(t *testing.T) {
	h := newHarness(3, 0, true)
	var want []byte
	for i := 0; i < 3; i++ {
		c := [][]byte{[]byte("SET"), []byte(fmt.Sprintf("k%d", i)), []byte("v")}
		h.w.Append(0, c)
		want = append(want, resp.EncodeCommandBytes(c...)...)
	}
	if len(h.flushed) != 1 {
		t.Fatalf("flushes = %d, want 1", len(h.flushed))
	}
	b := h.flushed[0]
	if b.Start != 0 || b.Cmds != 3 || !bytes.Equal(b.Data, want) {
		t.Fatalf("bad batch {%d cmds=%d %q}", b.Start, b.Cmds, b.Data)
	}
	if b.End() != h.bl.EndOffset() {
		t.Fatalf("End()=%d, backlog end=%d", b.End(), h.bl.EndOffset())
	}
}

// TestByteBudgetFlush checks the byte cap: a large value flushes before the
// command budget fills.
func TestByteBudgetFlush(t *testing.T) {
	h := newHarness(1000, 64, true)
	h.w.Append(0, [][]byte{[]byte("SET"), []byte("k"), bytes.Repeat([]byte("x"), 128)})
	if len(h.flushed) != 1 {
		t.Fatalf("oversized command not flushed (flushes=%d)", len(h.flushed))
	}
}

// TestQuiesceFlush checks the deferred path: a partial batch rides the
// scheduled flush, and the schedule hook is armed only once per batch.
func TestQuiesceFlush(t *testing.T) {
	h := newHarness(64, 0, true)
	h.w.Append(0, [][]byte{[]byte("SET"), []byte("a"), []byte("1")})
	h.w.Append(0, [][]byte{[]byte("SET"), []byte("b"), []byte("2")})
	if len(h.flushed) != 0 {
		t.Fatal("partial batch flushed before quiesce")
	}
	if len(h.queued) != 1 {
		t.Fatalf("schedule armed %d times, want 1", len(h.queued))
	}
	h.quiesce()
	if len(h.flushed) != 1 || h.flushed[0].Cmds != 2 {
		t.Fatalf("quiesce flush: %+v", h.flushed)
	}
	// A flush must disarm the schedule guard: the next append re-arms.
	h.w.Append(0, [][]byte{[]byte("SET"), []byte("c"), []byte("3")})
	if len(h.queued) != 1 {
		t.Fatalf("schedule not re-armed after flush (queued=%d)", len(h.queued))
	}
	h.quiesce()
	if len(h.flushed) != 2 {
		t.Fatalf("second quiesce flush missing: %d", len(h.flushed))
	}
}

// TestManualFlushBarrier checks the PSYNC barrier: Flush() empties the
// pending batch so snapshotted offsets cover everything already delivered,
// and is a no-op when nothing is pending.
func TestManualFlushBarrier(t *testing.T) {
	h := newHarness(64, 0, true)
	h.w.Flush() // empty: no-op
	if h.w.BatchesFlushed != 0 {
		t.Fatal("empty Flush counted")
	}
	h.w.Append(0, [][]byte{[]byte("SET"), []byte("a"), []byte("1")})
	h.w.Flush()
	if len(h.flushed) != 1 || h.w.Pending() != 0 {
		t.Fatalf("manual flush: flushed=%d pending=%d", len(h.flushed), h.w.Pending())
	}
	// The quiesce callback left over from the append must now be a no-op.
	h.quiesce()
	if len(h.flushed) != 1 {
		t.Fatal("stale scheduled flush delivered an empty batch")
	}
}

// TestOffsetsContinuous checks that batch offsets tile the backlog exactly:
// every byte appended appears in exactly one batch at its backlog offset.
func TestOffsetsContinuous(t *testing.T) {
	h := newHarness(4, 0, true)
	for i := 0; i < 10; i++ {
		h.w.Append(i%3, [][]byte{[]byte("SET"), []byte(fmt.Sprintf("k%d", i)), []byte("v")})
	}
	h.quiesce()
	var end int64
	for i, b := range h.flushed {
		if b.Start != end {
			t.Fatalf("batch %d starts at %d, previous ended at %d", i, b.Start, end)
		}
		end = b.End()
	}
	if end != h.bl.EndOffset() {
		t.Fatalf("batches end at %d, backlog at %d", end, h.bl.EndOffset())
	}
	if h.w.CmdsAppended <= 10 {
		t.Fatalf("CmdsAppended=%d, want >10 (SELECT injections)", h.w.CmdsAppended)
	}
}

// TestNoScheduleDegradesToSynchronous: without a Schedule hook a partial
// batch cannot ride a quiesce, so nothing is lost only if callers Flush;
// budget flushes still fire on their own.
func TestNoScheduleDegradesToSynchronous(t *testing.T) {
	h := newHarness(2, 0, false)
	h.w.Append(0, [][]byte{[]byte("SET"), []byte("a"), []byte("1")})
	h.w.Append(0, [][]byte{[]byte("SET"), []byte("b"), []byte("2")})
	if len(h.flushed) != 1 {
		t.Fatalf("budget flush without Schedule: %d", len(h.flushed))
	}
}

// TestApplierDecodesBatches feeds a multi-command batch with SELECT context
// switches and checks the callback sees each data command against the right
// database, with SELECTs consumed internally.
func TestApplierDecodesBatches(t *testing.T) {
	type applied struct {
		db  int
		arg string
	}
	var got []applied
	a := NewApplier(func(db int, argv [][]byte) {
		got = append(got, applied{db, string(argv[1])})
	})
	var stream []byte
	stream = append(stream, cmd("SET", "a", "1")...)
	stream = append(stream, cmd("SELECT", "3")...)
	stream = append(stream, cmd("SET", "b", "2")...)
	stream = append(stream, cmd("SeLeCt", "0")...) // any case
	stream = append(stream, cmd("SET", "c", "3")...)
	a.Feed(stream)
	want := []applied{{0, "a"}, {3, "b"}, {0, "c"}}
	if len(got) != len(want) {
		t.Fatalf("applied %d commands, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("apply %d = %+v, want %+v", i, got[i], want[i])
		}
	}
	if a.Applied != 3 || a.DB() != 0 {
		t.Fatalf("Applied=%d DB=%d", a.Applied, a.DB())
	}
}

// TestApplierPartialFeeds splits the stream at every possible byte boundary
// and checks decoding is identical to one contiguous feed.
func TestApplierPartialFeeds(t *testing.T) {
	var stream []byte
	stream = append(stream, cmd("SELECT", "1")...)
	stream = append(stream, cmd("SET", "k", "v")...)
	stream = append(stream, cmd("DEL", "k")...)
	for split := 1; split < len(stream); split++ {
		var names []string
		a := NewApplier(func(db int, argv [][]byte) {
			names = append(names, fmt.Sprintf("%d:%s", db, argv[0]))
		})
		a.Feed(stream[:split])
		a.Feed(stream[split:])
		if len(names) != 2 || names[0] != "1:SET" || names[1] != "1:DEL" {
			t.Fatalf("split %d: %v", split, names)
		}
	}
}

// TestWriterApplierRoundTrip pipes a Writer's flushes straight into an
// Applier and checks every appended command comes out, in order, with its
// database — at several batch sizes.
func TestWriterApplierRoundTrip(t *testing.T) {
	for _, maxCmds := range []int{1, 4, 64} {
		var out []string
		a := NewApplier(func(db int, argv [][]byte) {
			out = append(out, fmt.Sprintf("%d:%s", db, argv[1]))
		})
		h := &harness{bl: backlog.New(1 << 20)}
		h.w = NewWriter(WriterConfig{
			Backlog: h.bl,
			MaxCmds: maxCmds,
			Flush:   func(b Batch) { a.Feed(b.Data) },
			Schedule: func(fn func()) {
				h.queued = append(h.queued, fn)
			},
		})
		var want []string
		for i := 0; i < 20; i++ {
			db := i % 2
			key := fmt.Sprintf("k%d", i)
			h.w.Append(db, [][]byte{[]byte("SET"), []byte(key), []byte("v")})
			want = append(want, fmt.Sprintf("%d:%s", db, key))
		}
		h.quiesce()
		if len(out) != len(want) {
			t.Fatalf("maxCmds=%d: applied %d, want %d", maxCmds, len(out), len(want))
		}
		for i := range want {
			if out[i] != want[i] {
				t.Fatalf("maxCmds=%d: apply %d = %s, want %s", maxCmds, i, out[i], want[i])
			}
		}
	}
}
