package obj

import (
	"bytes"
	"fmt"
	"strconv"
	"testing"
	"testing/quick"
)

func TestStringIntEncoding(t *testing.T) {
	o := NewString([]byte("12345"))
	if o.Enc != EncInt {
		t.Fatalf("enc=%v, want int", o.Enc)
	}
	if !bytes.Equal(o.StringBytes(), []byte("12345")) {
		t.Fatal("StringBytes mismatch")
	}
	n, ok := o.IntValue()
	if !ok || n != 12345 {
		t.Fatalf("IntValue=%d,%v", n, ok)
	}
	if o.StringLen() != 5 {
		t.Fatalf("StringLen=%d", o.StringLen())
	}
}

func TestStringRawEncoding(t *testing.T) {
	for _, s := range []string{"hello", "007", "+1", "-0", "1.5", "", "99999999999999999999999"} {
		o := NewString([]byte(s))
		if o.Enc != EncRaw {
			t.Errorf("%q should be raw-encoded", s)
		}
		if string(o.StringBytes()) != s {
			t.Errorf("%q round trip failed", s)
		}
	}
}

func TestMutableSDSConvertsInt(t *testing.T) {
	o := NewString([]byte("42"))
	o.MutableSDS().AppendString("abc")
	if o.Enc != EncRaw || string(o.StringBytes()) != "42abc" {
		t.Fatalf("got enc=%v val=%q", o.Enc, o.StringBytes())
	}
}

func TestHashListpackToHTConversion(t *testing.T) {
	o := NewHash(1)
	if o.Enc != EncListpack {
		t.Fatal("hash should start listpack")
	}
	for i := 0; i < HashMaxListpackEntries; i++ {
		o.HashSet(fmt.Sprintf("f%d", i), []byte("v"))
	}
	if o.Enc != EncListpack {
		t.Fatal("converted too early")
	}
	o.HashSet("one-more", []byte("v"))
	if o.Enc != EncHT {
		t.Fatal("did not convert at entry threshold")
	}
	if o.HashLen() != HashMaxListpackEntries+1 {
		t.Fatalf("len=%d", o.HashLen())
	}
	for i := 0; i < HashMaxListpackEntries; i++ {
		if v, ok := o.HashGet(fmt.Sprintf("f%d", i)); !ok || string(v) != "v" {
			t.Fatalf("field f%d lost in conversion", i)
		}
	}
}

func TestHashBigValueForcesConversion(t *testing.T) {
	o := NewHash(1)
	o.HashSet("f", make([]byte, HashMaxListpackValue+1))
	if o.Enc != EncHT {
		t.Fatal("big value did not convert encoding")
	}
}

func TestHashSetGetDel(t *testing.T) {
	o := NewHash(1)
	if !o.HashSet("a", []byte("1")) {
		t.Fatal("create should return true")
	}
	if o.HashSet("a", []byte("2")) {
		t.Fatal("update should return false")
	}
	v, ok := o.HashGet("a")
	if !ok || string(v) != "2" {
		t.Fatalf("get=%q,%v", v, ok)
	}
	if !o.HashDel("a") || o.HashDel("a") {
		t.Fatal("del semantics")
	}
}

func TestSetIntsetToHTOnNonInteger(t *testing.T) {
	o := NewSet(1)
	o.SetAdd("1")
	o.SetAdd("2")
	if o.Enc != EncIntSet {
		t.Fatal("integer members should stay intset")
	}
	o.SetAdd("abc")
	if o.Enc != EncHT {
		t.Fatal("non-integer member did not convert")
	}
	for _, m := range []string{"1", "2", "abc"} {
		if !o.SetContains(m) {
			t.Fatalf("member %s lost", m)
		}
	}
}

func TestSetIntsetSizeConversion(t *testing.T) {
	o := NewSet(1)
	for i := 0; i <= SetMaxIntsetEntries; i++ {
		o.SetAdd(strconv.Itoa(i))
	}
	if o.Enc != EncHT {
		t.Fatal("intset did not convert at size threshold")
	}
	if o.SetLen() != SetMaxIntsetEntries+1 {
		t.Fatalf("len=%d", o.SetLen())
	}
}

func TestSetAddRemove(t *testing.T) {
	o := NewSet(1)
	if !o.SetAdd("5") || o.SetAdd("5") {
		t.Fatal("add semantics")
	}
	if !o.SetRemove("5") || o.SetRemove("5") {
		t.Fatal("remove semantics")
	}
	if o.SetRemove("notthere") {
		t.Fatal("removing absent non-integer from intset")
	}
}

func TestZSetConversionAndOrder(t *testing.T) {
	o := NewZSet(1)
	for i := 0; i <= ZSetMaxListpackEntries; i++ {
		o.ZAdd(fmt.Sprintf("m%03d", i), float64(i%7))
	}
	if o.Enc != EncSkiplist {
		t.Fatal("zset did not convert at threshold")
	}
	els := o.ZRangeByRank(0, -1)
	if len(els) != ZSetMaxListpackEntries+1 {
		t.Fatalf("len=%d", len(els))
	}
	for i := 1; i < len(els); i++ {
		a, b := els[i-1], els[i]
		if a.Score > b.Score || (a.Score == b.Score && a.Member >= b.Member) {
			t.Fatalf("order violated at %d: %v then %v", i, a, b)
		}
	}
}

func TestZSetScoreUpdateMovesRank(t *testing.T) {
	o := NewZSet(1)
	o.ZAdd("a", 1)
	o.ZAdd("b", 2)
	o.ZAdd("c", 3)
	if o.ZAdd("a", 10) {
		t.Fatal("update should return false")
	}
	r, ok := o.ZRank("a")
	if !ok || r != 2 {
		t.Fatalf("rank after update = %d,%v want 2", r, ok)
	}
	s, _ := o.ZScore("a")
	if s != 10 {
		t.Fatalf("score=%v", s)
	}
}

func TestZRemAndRangeByScore(t *testing.T) {
	o := NewZSet(1)
	for i := 0; i < 10; i++ {
		o.ZAdd(fmt.Sprintf("m%d", i), float64(i))
	}
	if !o.ZRem("m5") || o.ZRem("m5") {
		t.Fatal("zrem semantics")
	}
	els := o.ZRangeByScore(3, 7)
	if len(els) != 4 { // 3,4,6,7
		t.Fatalf("range by score len=%d", len(els))
	}
	if o.ZLen() != 9 {
		t.Fatalf("zlen=%d", o.ZLen())
	}
}

func TestTypeAndEncodingStrings(t *testing.T) {
	if TString.String() != "string" || TZSet.String() != "zset" {
		t.Fatal("type names")
	}
	if EncSkiplist.String() != "skiplist" || EncListpack.String() != "listpack" {
		t.Fatal("encoding names")
	}
}

// Property: hash object matches map model across encodings.
func TestHashModelProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		Field uint8
		Val   []byte
	}
	f := func(ops []op) bool {
		o := NewHash(3)
		m := map[string][]byte{}
		for _, p := range ops {
			field := fmt.Sprintf("f%d", p.Field)
			switch p.Kind % 3 {
			case 0:
				_, existed := m[field]
				if o.HashSet(field, p.Val) == existed {
					return false
				}
				m[field] = p.Val
			case 1:
				v, ok := o.HashGet(field)
				mv, mok := m[field]
				if ok != mok || (ok && !bytes.Equal(v, mv)) {
					return false
				}
			case 2:
				_, existed := m[field]
				if o.HashDel(field) != existed {
					return false
				}
				delete(m, field)
			}
			if o.HashLen() != len(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: zset ZRangeByRank(0,-1) is always sorted and complete.
func TestZSetSortedProperty(t *testing.T) {
	f := func(scores []int8) bool {
		o := NewZSet(9)
		added := map[string]bool{}
		for i, sc := range scores {
			m := fmt.Sprintf("m%d", i%40)
			o.ZAdd(m, float64(sc))
			added[m] = true
		}
		els := o.ZRangeByRank(0, -1)
		if len(els) != len(added) {
			return false
		}
		for i := 1; i < len(els); i++ {
			a, b := els[i-1], els[i]
			if a.Score > b.Score || (a.Score == b.Score && a.Member >= b.Member) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
