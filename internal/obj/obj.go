// Package obj implements the Redis object layer SKV inherits (§IV):
// typed values (string, list, hash, set, sorted set) with
// memory-efficiency encodings and the conversion rules between them
// (int/raw strings, listpack→hashtable, intset→hashtable,
// listpack→skiplist).
package obj

import (
	"strconv"

	"skv/internal/adlist"
	"skv/internal/dict"
	"skv/internal/intset"
	"skv/internal/sds"
	"skv/internal/skiplist"
)

// Type is the user-visible value type (OBJ_STRING ...).
type Type int

// Value types.
const (
	TString Type = iota
	TList
	THash
	TSet
	TZSet
)

func (t Type) String() string {
	switch t {
	case TString:
		return "string"
	case TList:
		return "list"
	case THash:
		return "hash"
	case TSet:
		return "set"
	case TZSet:
		return "zset"
	}
	return "unknown"
}

// Encoding is the internal representation (OBJ_ENCODING_*).
type Encoding int

// Encodings.
const (
	EncInt Encoding = iota
	EncRaw
	EncListpack
	EncHT
	EncIntSet
	EncSkiplist
	EncLinkedList
)

func (e Encoding) String() string {
	switch e {
	case EncInt:
		return "int"
	case EncRaw:
		return "raw"
	case EncListpack:
		return "listpack"
	case EncHT:
		return "hashtable"
	case EncIntSet:
		return "intset"
	case EncSkiplist:
		return "skiplist"
	case EncLinkedList:
		return "linkedlist"
	}
	return "unknown"
}

// Conversion thresholds (redis.conf defaults).
const (
	HashMaxListpackEntries = 128
	HashMaxListpackValue   = 64
	SetMaxIntsetEntries    = 512
	ZSetMaxListpackEntries = 128
	ZSetMaxListpackValue   = 64
)

// Object is one stored value.
type Object struct {
	Type Type
	Enc  Encoding
	// Val holds the concrete representation; see the constructors.
	Val any
	// seed feeds nested dicts/skiplists deterministically.
	seed int64
}

// ---- Strings ----

// NewString creates a string object, using the int encoding when the bytes
// are a canonical 64-bit decimal integer.
func NewString(b []byte) *Object {
	if n, ok := parseStrictInt(b); ok {
		return &Object{Type: TString, Enc: EncInt, Val: n}
	}
	return &Object{Type: TString, Enc: EncRaw, Val: sds.New(b)}
}

// NewStringFromInt creates an int-encoded string object.
func NewStringFromInt(n int64) *Object {
	return &Object{Type: TString, Enc: EncInt, Val: n}
}

func parseStrictInt(b []byte) (int64, bool) {
	if len(b) == 0 || len(b) > 20 {
		return 0, false
	}
	n, err := strconv.ParseInt(string(b), 10, 64)
	if err != nil {
		return 0, false
	}
	// Round-trip check rejects "+1", "007", "-0" etc.
	if strconv.FormatInt(n, 10) != string(b) {
		return 0, false
	}
	return n, true
}

// StringBytes materializes the string payload.
func (o *Object) StringBytes() []byte {
	if o.Enc == EncInt {
		return strconv.AppendInt(nil, o.Val.(int64), 10)
	}
	return o.Val.(*sds.SDS).Bytes()
}

// StringLen reports the payload length without materializing ints... except
// by formatting, which is cheap.
func (o *Object) StringLen() int {
	if o.Enc == EncInt {
		return len(strconv.FormatInt(o.Val.(int64), 10))
	}
	return o.Val.(*sds.SDS).Len()
}

// IntValue extracts the integer value of a string object; ok is false when
// the payload is not an integer.
func (o *Object) IntValue() (int64, bool) {
	if o.Enc == EncInt {
		return o.Val.(int64), true
	}
	return parseStrictInt(o.Val.(*sds.SDS).Bytes())
}

// SetInt rewrites a string object in place with an integer payload.
func (o *Object) SetInt(n int64) {
	o.Enc = EncInt
	o.Val = n
}

// MutableSDS returns the raw-encoded SDS, converting from int encoding if
// needed (for APPEND/SETRANGE).
func (o *Object) MutableSDS() *sds.SDS {
	if o.Enc == EncInt {
		o.Val = sds.New(strconv.AppendInt(nil, o.Val.(int64), 10))
		o.Enc = EncRaw
	}
	return o.Val.(*sds.SDS)
}

// ---- Lists ----

// NewList creates an empty list object.
func NewList() *Object {
	return &Object{Type: TList, Enc: EncLinkedList, Val: adlist.New()}
}

// List returns the underlying list.
func (o *Object) List() *adlist.List { return o.Val.(*adlist.List) }

// ---- Hashes ----

// lpPair is one field/value pair in the listpack encoding.
type lpPair struct {
	field string
	value []byte
}

// NewHash creates an empty hash object (listpack-encoded).
func NewHash(seed int64) *Object {
	return &Object{Type: THash, Enc: EncListpack, Val: []lpPair{}, seed: seed}
}

func (o *Object) hashToHT() {
	pairs := o.Val.([]lpPair)
	d := dict.New(o.seed)
	for _, p := range pairs {
		d.Set(p.field, p.value)
	}
	o.Val = d
	o.Enc = EncHT
}

// HashSet inserts or updates a field; reports whether it was created.
func (o *Object) HashSet(field string, value []byte) bool {
	if o.Enc == EncListpack {
		pairs := o.Val.([]lpPair)
		for i := range pairs {
			if pairs[i].field == field {
				pairs[i].value = value
				return false
			}
		}
		if len(pairs)+1 > HashMaxListpackEntries ||
			len(field) > HashMaxListpackValue || len(value) > HashMaxListpackValue {
			o.hashToHT()
			return o.HashSet(field, value)
		}
		o.Val = append(pairs, lpPair{field: field, value: value})
		return true
	}
	return o.Val.(*dict.Dict).Set(field, value)
}

// HashGet fetches a field.
func (o *Object) HashGet(field string) ([]byte, bool) {
	if o.Enc == EncListpack {
		for _, p := range o.Val.([]lpPair) {
			if p.field == field {
				return p.value, true
			}
		}
		return nil, false
	}
	v, ok := o.Val.(*dict.Dict).Get(field)
	if !ok {
		return nil, false
	}
	return v.([]byte), true
}

// HashDel removes a field; reports whether it existed.
func (o *Object) HashDel(field string) bool {
	if o.Enc == EncListpack {
		pairs := o.Val.([]lpPair)
		for i := range pairs {
			if pairs[i].field == field {
				o.Val = append(pairs[:i], pairs[i+1:]...)
				return true
			}
		}
		return false
	}
	return o.Val.(*dict.Dict).Delete(field)
}

// HashLen reports the field count.
func (o *Object) HashLen() int {
	if o.Enc == EncListpack {
		return len(o.Val.([]lpPair))
	}
	return o.Val.(*dict.Dict).Len()
}

// HashEach iterates fields; returning false stops.
func (o *Object) HashEach(fn func(field string, value []byte) bool) {
	if o.Enc == EncListpack {
		for _, p := range o.Val.([]lpPair) {
			if !fn(p.field, p.value) {
				return
			}
		}
		return
	}
	o.Val.(*dict.Dict).Each(func(k string, v any) bool { return fn(k, v.([]byte)) })
}

// ---- Sets ----

// NewSet creates an empty set object; the first member decides whether it
// starts as an intset.
func NewSet(seed int64) *Object {
	return &Object{Type: TSet, Enc: EncIntSet, Val: intset.New(), seed: seed}
}

func (o *Object) setToHT() {
	is := o.Val.(*intset.IntSet)
	d := dict.New(o.seed)
	for _, v := range is.Members() {
		d.Set(strconv.FormatInt(v, 10), nil)
	}
	o.Val = d
	o.Enc = EncHT
}

// SetAdd inserts a member; reports whether it was new.
func (o *Object) SetAdd(member string) bool {
	if o.Enc == EncIntSet {
		if n, ok := parseStrictInt([]byte(member)); ok {
			is := o.Val.(*intset.IntSet)
			if is.Len()+1 > SetMaxIntsetEntries {
				o.setToHT()
				return o.SetAdd(member)
			}
			return is.Add(n)
		}
		o.setToHT()
	}
	return o.Val.(*dict.Dict).Set(member, nil)
}

// SetRemove deletes a member; reports whether it existed.
func (o *Object) SetRemove(member string) bool {
	if o.Enc == EncIntSet {
		n, ok := parseStrictInt([]byte(member))
		if !ok {
			return false
		}
		return o.Val.(*intset.IntSet).Remove(n)
	}
	return o.Val.(*dict.Dict).Delete(member)
}

// SetContains reports membership.
func (o *Object) SetContains(member string) bool {
	if o.Enc == EncIntSet {
		n, ok := parseStrictInt([]byte(member))
		if !ok {
			return false
		}
		return o.Val.(*intset.IntSet).Contains(n)
	}
	_, ok := o.Val.(*dict.Dict).Get(member)
	return ok
}

// SetLen reports the cardinality.
func (o *Object) SetLen() int {
	if o.Enc == EncIntSet {
		return o.Val.(*intset.IntSet).Len()
	}
	return o.Val.(*dict.Dict).Len()
}

// SetEach iterates members; returning false stops.
func (o *Object) SetEach(fn func(member string) bool) {
	if o.Enc == EncIntSet {
		for _, v := range o.Val.(*intset.IntSet).Members() {
			if !fn(strconv.FormatInt(v, 10)) {
				return
			}
		}
		return
	}
	o.Val.(*dict.Dict).Each(func(k string, _ any) bool { return fn(k) })
}

// SetRandomMember samples one member; ok false when empty.
func (o *Object) SetRandomMember() (string, bool) {
	if o.Enc == EncIntSet {
		is := o.Val.(*intset.IntSet)
		if is.Len() == 0 {
			return "", false
		}
		// Deterministic: middle element (the store layer shuffles via its
		// own RNG when true randomness matters).
		v, _ := is.Get(is.Len() / 2)
		return strconv.FormatInt(v, 10), true
	}
	return o.Val.(*dict.Dict).RandomKey()
}

// ---- Sorted sets ----

// zset pairs a member→score dict with a score-ordered skiplist, exactly the
// dual structure of t_zset.c.
type zset struct {
	dict *dict.Dict
	sl   *skiplist.SkipList
}

// zslPair is one member in the listpack zset encoding.
type zslPair struct {
	member string
	score  float64
}

// NewZSet creates an empty sorted-set object (listpack-encoded).
func NewZSet(seed int64) *Object {
	return &Object{Type: TZSet, Enc: EncListpack, Val: []zslPair{}, seed: seed}
}

func (o *Object) zsetToSkiplist() {
	pairs := o.Val.([]zslPair)
	z := &zset{dict: dict.New(o.seed), sl: skiplist.New(o.seed + 1)}
	for _, p := range pairs {
		z.dict.Set(p.member, p.score)
		z.sl.Insert(p.member, p.score)
	}
	o.Val = z
	o.Enc = EncSkiplist
}

// ZAdd inserts or updates a member's score; reports whether it was new.
func (o *Object) ZAdd(member string, score float64) bool {
	if o.Enc == EncListpack {
		pairs := o.Val.([]zslPair)
		for i := range pairs {
			if pairs[i].member == member {
				pairs[i].score = score
				o.zsetListpackSort()
				return false
			}
		}
		if len(pairs)+1 > ZSetMaxListpackEntries || len(member) > ZSetMaxListpackValue {
			o.zsetToSkiplist()
			return o.ZAdd(member, score)
		}
		o.Val = append(pairs, zslPair{member: member, score: score})
		o.zsetListpackSort()
		return true
	}
	z := o.Val.(*zset)
	if old, ok := z.dict.Get(member); ok {
		if old.(float64) != score {
			z.sl.Delete(member, old.(float64))
			z.sl.Insert(member, score)
			z.dict.Set(member, score)
		}
		return false
	}
	z.dict.Set(member, score)
	z.sl.Insert(member, score)
	return true
}

func (o *Object) zsetListpackSort() {
	pairs := o.Val.([]zslPair)
	// Insertion sort: listpacks are tiny and nearly sorted.
	for i := 1; i < len(pairs); i++ {
		for j := i; j > 0; j-- {
			a, b := pairs[j-1], pairs[j]
			if a.score < b.score || (a.score == b.score && a.member <= b.member) {
				break
			}
			pairs[j-1], pairs[j] = b, a
		}
	}
}

// ZScore fetches a member's score.
func (o *Object) ZScore(member string) (float64, bool) {
	if o.Enc == EncListpack {
		for _, p := range o.Val.([]zslPair) {
			if p.member == member {
				return p.score, true
			}
		}
		return 0, false
	}
	v, ok := o.Val.(*zset).dict.Get(member)
	if !ok {
		return 0, false
	}
	return v.(float64), true
}

// ZRem removes a member; reports whether it existed.
func (o *Object) ZRem(member string) bool {
	if o.Enc == EncListpack {
		pairs := o.Val.([]zslPair)
		for i := range pairs {
			if pairs[i].member == member {
				o.Val = append(pairs[:i], pairs[i+1:]...)
				return true
			}
		}
		return false
	}
	z := o.Val.(*zset)
	score, ok := z.dict.Get(member)
	if !ok {
		return false
	}
	z.dict.Delete(member)
	z.sl.Delete(member, score.(float64))
	return true
}

// ZLen reports the cardinality.
func (o *Object) ZLen() int {
	if o.Enc == EncListpack {
		return len(o.Val.([]zslPair))
	}
	return o.Val.(*zset).dict.Len()
}

// ZRank reports the 0-based ascending rank.
func (o *Object) ZRank(member string) (int, bool) {
	if o.Enc == EncListpack {
		for i, p := range o.Val.([]zslPair) {
			if p.member == member {
				return i, true
			}
		}
		return 0, false
	}
	z := o.Val.(*zset)
	score, ok := z.dict.Get(member)
	if !ok {
		return 0, false
	}
	return z.sl.Rank(member, score.(float64))
}

// ZRangeByRank collects elements by rank window (ZRANGE semantics).
func (o *Object) ZRangeByRank(start, stop int) []skiplist.Element {
	if o.Enc == EncListpack {
		pairs := o.Val.([]zslPair)
		n := len(pairs)
		if start < 0 {
			start = n + start
			if start < 0 {
				start = 0
			}
		}
		if stop < 0 {
			stop = n + stop
		}
		if start > stop || start >= n {
			return nil
		}
		if stop >= n {
			stop = n - 1
		}
		out := make([]skiplist.Element, 0, stop-start+1)
		for _, p := range pairs[start : stop+1] {
			out = append(out, skiplist.Element{Member: p.member, Score: p.score})
		}
		return out
	}
	return o.Val.(*zset).sl.RangeByRank(start, stop)
}

// ZRangeByScore collects elements with scores in [min, max].
func (o *Object) ZRangeByScore(min, max float64) []skiplist.Element {
	if o.Enc == EncListpack {
		var out []skiplist.Element
		for _, p := range o.Val.([]zslPair) {
			if p.score >= min && p.score <= max {
				out = append(out, skiplist.Element{Member: p.member, Score: p.score})
			}
		}
		return out
	}
	return o.Val.(*zset).sl.RangeByScore(min, max)
}

// FormatScore renders a score the way Redis replies do.
func FormatScore(f float64) string {
	return strconv.FormatFloat(f, 'g', 17, 64)
}

// ---- Cursor scans (SCAN-family support) ----

// HashScan performs one cursor step over a hash: hashtable encodings use
// the rehash-safe dict scan; listpack encodings return everything in one
// step. Returns the next cursor (0 = done).
func (o *Object) HashScan(cursor uint64, fn func(field string, value []byte)) uint64 {
	if o.Enc == EncListpack {
		for _, p := range o.Val.([]lpPair) {
			fn(p.field, p.value)
		}
		return 0
	}
	return o.Val.(*dict.Dict).Scan(cursor, func(k string, v any) {
		fn(k, v.([]byte))
	})
}

// SetScan performs one cursor step over a set.
func (o *Object) SetScan(cursor uint64, fn func(member string)) uint64 {
	if o.Enc == EncIntSet {
		for _, v := range o.Val.(*intset.IntSet).Members() {
			fn(strconv.FormatInt(v, 10))
		}
		return 0
	}
	return o.Val.(*dict.Dict).Scan(cursor, func(k string, _ any) { fn(k) })
}

// ZSetScan performs one cursor step over a sorted set.
func (o *Object) ZSetScan(cursor uint64, fn func(member string, score float64)) uint64 {
	if o.Enc == EncListpack {
		for _, p := range o.Val.([]zslPair) {
			fn(p.member, p.score)
		}
		return 0
	}
	return o.Val.(*zset).dict.Scan(cursor, func(k string, v any) {
		fn(k, v.(float64))
	})
}
