package rconn

import (
	"bytes"
	"testing"

	"skv/internal/fabric"
	"skv/internal/model"
	"skv/internal/sim"
	"skv/internal/transport"
)

type world struct {
	eng *sim.Engine
	net *fabric.Network
	p   *model.Params
}

func newWorld() *world {
	eng := sim.New(11)
	p := model.Default()
	return &world{eng: eng, net: fabric.New(eng, &p), p: &p}
}

func (w *world) stack(name string, smartNIC bool) *Stack {
	m := w.net.NewMachine(name, smartNIC)
	core := sim.NewCore(w.eng, name+"0", 1.0)
	proc := sim.NewProc(w.eng, core, w.p.CompChannelWake)
	return New(w.net, m.Host, proc)
}

func dialPair(t *testing.T, w *world, tune func(*Stack)) (transport.Conn, transport.Conn) {
	t.Helper()
	sa := w.stack("a", false)
	sb := w.stack("b", false)
	if tune != nil {
		tune(sa)
		tune(sb)
	}
	var cli, srv transport.Conn
	sb.Listen(7000, func(c transport.Conn) { srv = c })
	w.eng.At(0, func() {
		sa.Dial(sb.Endpoint(), 7000, func(c transport.Conn, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			cli = c
		})
	})
	w.eng.Run(0)
	if cli == nil || srv == nil {
		t.Fatal("MR exchange did not complete")
	}
	return cli, srv
}

func TestEcho(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w, nil)
	srv.SetHandler(func(b []byte) { srv.Send(append([]byte("r:"), b...)) })
	var got string
	cli.SetHandler(func(b []byte) { got = string(b) })
	w.eng.After(0, func() { cli.Send([]byte("SET k v")) })
	w.eng.Run(0)
	if got != "r:SET k v" {
		t.Fatalf("got %q", got)
	}
}

func TestManyMessagesInOrder(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w, nil)
	var got []int
	srv.SetHandler(func(b []byte) { got = append(got, int(b[0])<<8|int(b[1])) })
	w.eng.After(0, func() {
		for i := 0; i < 1000; i++ {
			cli.Send([]byte{byte(i >> 8), byte(i), 0, 0, 0, 0, 0, 0})
		}
	})
	w.eng.Run(0)
	if len(got) != 1000 {
		t.Fatalf("delivered %d/1000", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("message %d out of order (got %d)", i, v)
		}
	}
}

func TestLargeMessageFragmentsAndReassembles(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w, nil)
	payload := make([]byte, 3*MaxChunk+123) // forces 4 chunks
	for i := range payload {
		payload[i] = byte(i * 31)
	}
	var got []byte
	srv.SetHandler(func(b []byte) { got = b })
	w.eng.After(0, func() { cli.Send(payload) })
	w.eng.Run(0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("reassembly mismatch: got %d bytes", len(got))
	}
}

func TestRingFullTriggersReRegistration(t *testing.T) {
	w := newWorld()
	// Tiny ring so a handful of messages exhausts it.
	cli, srv := dialPair(t, w, func(s *Stack) { s.RingSize = 1024 })
	n := 0
	srv.SetHandler(func(b []byte) { n++ })
	w.eng.After(0, func() {
		for i := 0; i < 100; i++ {
			cli.Send(make([]byte, 100))
		}
	})
	w.eng.Run(0)
	if n != 100 {
		t.Fatalf("delivered %d/100 across ring resets", n)
	}
	if rc := srv.(*conn).RingResets; rc < 5 {
		t.Fatalf("ring resets = %d, want several with a 1KB ring", rc)
	}
}

func TestVeryLargePayloadThroughTinyRing(t *testing.T) {
	// An RDB-sized payload must flow even when it dwarfs the ring.
	w := newWorld()
	cli, srv := dialPair(t, w, func(s *Stack) { s.RingSize = 64 << 10 })
	payload := make([]byte, 1<<20)
	for i := range payload {
		payload[i] = byte(i)
	}
	var got []byte
	srv.SetHandler(func(b []byte) { got = b })
	w.eng.After(0, func() { cli.Send(payload) })
	w.eng.Run(0)
	if !bytes.Equal(got, payload) {
		t.Fatalf("1MB payload mangled (got %d bytes)", len(got))
	}
}

func TestBidirectionalTraffic(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w, nil)
	fromCli, fromSrv := 0, 0
	srv.SetHandler(func(b []byte) { fromCli++ })
	cli.SetHandler(func(b []byte) { fromSrv++ })
	w.eng.After(0, func() {
		for i := 0; i < 50; i++ {
			cli.Send([]byte("c"))
			srv.Send([]byte("s"))
		}
	})
	w.eng.Run(0)
	if fromCli != 50 || fromSrv != 50 {
		t.Fatalf("bidirectional counts %d/%d, want 50/50", fromCli, fromSrv)
	}
}

func TestCloseNotifiesPeer(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w, nil)
	closed := false
	srv.SetCloseHandler(func() { closed = true })
	w.eng.After(0, func() { cli.Close() })
	w.eng.Run(0)
	if !closed || !cli.Closed() {
		t.Fatal("close did not propagate")
	}
}

func TestDialRefused(t *testing.T) {
	w := newWorld()
	sa := w.stack("a", false)
	sb := w.stack("b", false)
	var gotErr error
	w.eng.At(0, func() {
		sa.Dial(sb.Endpoint(), 4242, func(c transport.Conn, err error) { gotErr = err })
	})
	w.eng.Run(0)
	if gotErr == nil {
		t.Fatal("expected refusal")
	}
}

func TestRDMAPerMessageCPUWellBelowTCP(t *testing.T) {
	// The motivating measurement: receiving a message via the completion
	// channel costs far less CPU than the kernel TCP path.
	w := newWorld()
	cli, srv := dialPair(t, w, nil)
	proc := srv.(*conn).stack.proc
	n := 0
	srv.SetHandler(func(b []byte) { n++ })
	before := proc.Core.BusyTime()
	w.eng.After(0, func() {
		for i := 0; i < 200; i++ {
			cli.Send(make([]byte, 64))
		}
	})
	w.eng.Run(0)
	if n != 200 {
		t.Fatalf("delivered %d/200", n)
	}
	perMsg := (proc.Core.BusyTime() - before) / 200
	if perMsg >= w.p.TCPRxCPU/2 {
		t.Fatalf("RDMA per-message RX CPU %v not well below TCP %v", perMsg, w.p.TCPRxCPU)
	}
}

func TestConnAddressing(t *testing.T) {
	w := newWorld()
	cli, _ := dialPair(t, w, nil)
	if cli.Transport() != "rdma" {
		t.Fatal("transport name")
	}
	if cli.RemoteAddr() != "b/host" {
		t.Fatalf("remote addr %q", cli.RemoteAddr())
	}
}
