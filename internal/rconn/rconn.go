// Package rconn implements SKV's RDMA communication module (paper §III-B)
// as a message-oriented transport.Conn on top of the simulated verbs layer:
//
//   - Connections are established with an RDMA_CM-style handshake, after
//     which the two sides exchange Memory Region information using
//     SEND/RECV.
//   - Application messages travel as WRITE_WITH_IMM into the peer's
//     registered ring buffer, notifying the receiver through its completion
//     event channel (no CQ busy-polling).
//   - "When the receive buffer is full, the MR needs to be registered
//     again. After sending the MR information to the other node with the
//     SEND operation, the previous communication process continues." —
//     reproduced literally: the sender emits RING_FULL when the ring is
//     exhausted and stalls until the receiver re-registers and SENDs fresh
//     MR information.
//   - Receive credits bound the number of outstanding messages to the
//     receiver's posted receive work requests.
//
// Messages larger than the chunk limit are fragmented and reassembled, so
// multi-megabyte RDB payloads from the initial synchronization phase flow
// through the same path.
package rconn

import (
	"encoding/binary"
	"fmt"

	"skv/internal/fabric"
	"skv/internal/rdma"
	"skv/internal/sim"
	"skv/internal/transport"
)

// Tunables for the ring protocol.
const (
	// DefaultRingSize is each side's receive ring MR size.
	DefaultRingSize = 256 << 10
	// RecvBatch is the number of receive WRs posted per refill doorbell.
	RecvBatch = 256
	// MaxChunk is the fragmentation threshold for large messages.
	MaxChunk = 32 << 10
	// frameHeader is the per-chunk header: 1 flag byte.
	frameHeader = 1
	flagLast    = 0x01
)

// control message types (SEND payload first byte).
const (
	ctrlMRInfo  = 0x01
	ctrlCredit  = 0x02
	ctrlRingFul = 0x03
	ctrlClose   = 0x04
)

// Stack is an RDMA transport instance: one verbs device on one endpoint,
// driven by one process.
type Stack struct {
	net  *fabric.Network
	ep   *fabric.Endpoint
	proc *sim.Proc
	dev  *rdma.Device
	pd   *rdma.PD

	// RingSize lets tests shrink the ring to exercise re-registration.
	RingSize int

	// MRRegisterCPU is the CPU cost of registering the ring MR (pinning +
	// key setup). Charged on each re-registration cycle.
	MRRegisterCPU sim.Duration
}

var _ transport.Stack = (*Stack)(nil)

// New creates an RDMA stack bound to ep and proc. It owns the endpoint's
// receive path through its verbs device.
func New(net *fabric.Network, ep *fabric.Endpoint, proc *sim.Proc) *Stack {
	dev := rdma.NewDevice(net, ep, proc.Core)
	s := &Stack{
		net:           net,
		ep:            ep,
		proc:          proc,
		dev:           dev,
		pd:            dev.AllocPD(),
		RingSize:      DefaultRingSize,
		MRRegisterCPU: 20 * sim.Microsecond,
	}
	return s
}

// Endpoint reports the bound fabric endpoint.
func (s *Stack) Endpoint() *fabric.Endpoint { return s.ep }

// Transport reports "rdma".
func (s *Stack) Transport() string { return "rdma" }

// Device exposes the underlying verbs device (benchmarks use it directly).
func (s *Stack) Device() *rdma.Device { return s.dev }

// Listen accepts connections on port. The accept callback fires once the MR
// exchange completes and the connection can carry messages.
func (s *Stack) Listen(port int, accept func(transport.Conn)) {
	s.dev.Listen(port, func(qp *rdma.QP) {
		c := s.newConn(qp)
		c.onReady = func() { accept(c) }
	})
}

// Dial connects to a listener; cb fires after CM handshake + MR exchange.
func (s *Stack) Dial(remote *fabric.Endpoint, port int, cb func(transport.Conn, error)) {
	s.dev.Connect(remote, port, nil, nil, func(qp *rdma.QP, err error) {
		if err != nil {
			cb(nil, err)
			return
		}
		c := s.newConn(qp)
		c.onReady = func() { cb(c, nil) }
	})
}

// conn is one established RDMA connection endpoint.
type conn struct {
	stack *Stack
	qp    *rdma.QP

	// proc, when non-nil, overrides the stack's process for completion
	// delivery and this connection's CPU accounting
	// (transport.ProcAssignable): CQ drains post here, and the QP's
	// send/recv work-request costs charge this proc's core.
	proc *sim.Proc

	// Receive side.
	ring        *rdma.MR
	readOff     int
	postedRecvs int
	consumed    int // data messages consumed since last credit return
	reassembly  []byte

	// Send side (state about the peer's ring).
	remoteKey  uint32
	remoteSize int
	writeOff   int
	msgCredit  int
	ringWait   bool // stalled waiting for a fresh MR after RING_FULL
	pending    [][]byte

	ready   bool
	onReady func()
	handler func([]byte)
	onClose func()
	closed  bool

	// RingResets counts MR re-registration cycles (tests/ablations).
	RingResets uint64
}

var _ transport.Conn = (*conn)(nil)

func (s *Stack) newConn(qp *rdma.QP) *conn {
	c := &conn{stack: s, qp: qp}
	qp.Context = c
	// Retry exhaustion on a dead link (partition, down peer) errors the QP:
	// tear the conn down locally. No ctrlClose — the peer is unreachable and
	// discovers the death through its own retry window or probe timeouts.
	qp.OnFail(func() { c.teardown() })
	qp.RecvCQ.OnNotify(func() {
		// Completion event channel: hand the batch to the owning process.
		// The proc charges its wakeup (comp-channel wake) only when idle.
		c.owner().Post(0, func() { c.drainCQ() })
	})
	qp.RecvCQ.RequestNotify()
	// Register the receive ring and announce it. Setup runs on the owner
	// process: registration cost + initial receive posting.
	s.proc.Post(s.MRRegisterCPU, func() {
		c.ring = s.pd.RegisterMR(s.RingSize)
		c.qp.PostRecvN(0, RecvBatch)
		c.postedRecvs = RecvBatch
		c.sendCtrlMRInfo()
	})
	return c
}

func (c *conn) sendCtrlMRInfo() {
	buf := make([]byte, 13)
	buf[0] = ctrlMRInfo
	binary.BigEndian.PutUint32(buf[1:], c.ring.RKey())
	binary.BigEndian.PutUint32(buf[5:], uint32(c.ring.Len()))
	binary.BigEndian.PutUint32(buf[9:], uint32(RecvBatch-8)) // reserve for control
	_ = c.qp.PostSend(rdma.SendWR{Op: rdma.OpSend, Data: buf})
}

func (c *conn) sendCtrl(b []byte) {
	_ = c.qp.PostSend(rdma.SendWR{Op: rdma.OpSend, Data: b})
}

// drainCQ harvests completions on the owner process, charging completion
// costs, then re-arms the event channel.
func (c *conn) drainCQ() {
	wcs := c.qp.RecvCQ.ChargePoll(c.owner().Core)
	for _, wc := range wcs {
		c.postedRecvs--
		switch {
		case wc.Op == rdma.OpRecv && wc.ImmValid:
			c.handleData(int(wc.Imm))
		case wc.Op == rdma.OpRecv && len(wc.Data) > 0:
			c.handleCtrl(wc.Data)
		}
	}
	c.maybeRefillRecvs()
	if !c.closed {
		c.qp.RecvCQ.RequestNotify()
	}
}

func (c *conn) maybeRefillRecvs() {
	if c.closed || c.postedRecvs >= RecvBatch/2 {
		return
	}
	n := RecvBatch - c.postedRecvs
	c.qp.PostRecvN(0, n)
	c.postedRecvs += n
	if c.consumed > 0 {
		buf := make([]byte, 5)
		buf[0] = ctrlCredit
		binary.BigEndian.PutUint32(buf[1:], uint32(c.consumed))
		c.consumed = 0
		c.sendCtrl(buf)
	}
}

// handleData consumes one frame of frameLen bytes from the ring at readOff.
func (c *conn) handleData(frameLen int) {
	if c.ring == nil || frameLen < frameHeader || c.readOff+frameLen > c.ring.Len() {
		return // corrupt frame; a real stack would tear the QP down
	}
	frame := c.ring.Bytes()[c.readOff : c.readOff+frameLen]
	c.readOff += frameLen
	c.consumed++
	flags := frame[0]
	c.reassembly = append(c.reassembly, frame[frameHeader:]...)
	if flags&flagLast != 0 {
		msg := c.reassembly
		c.reassembly = nil
		if c.handler != nil && !c.closed {
			c.handler(msg)
		}
	}
}

func (c *conn) handleCtrl(b []byte) {
	switch b[0] {
	case ctrlMRInfo:
		c.remoteKey = binary.BigEndian.Uint32(b[1:])
		c.remoteSize = int(binary.BigEndian.Uint32(b[5:]))
		c.msgCredit += int(binary.BigEndian.Uint32(b[9:]))
		c.writeOff = 0
		c.ringWait = false
		if !c.ready {
			c.ready = true
			if c.onReady != nil {
				c.onReady()
			}
		}
		c.flushPending()
	case ctrlCredit:
		c.msgCredit += int(binary.BigEndian.Uint32(b[1:]))
		c.flushPending()
	case ctrlRingFul:
		// Peer exhausted our ring: everything in it has been delivered
		// (in-order channel), so re-register and announce the fresh MR.
		c.RingResets++
		old := c.ring
		c.owner().Core.Charge(c.stack.MRRegisterCPU)
		c.ring = c.stack.pd.RegisterMR(c.stack.RingSize)
		old.Deregister()
		c.readOff = 0
		c.sendCtrlMRInfo()
	case ctrlClose:
		c.teardown()
	}
}

// Send transmits one application message, fragmenting as needed.
func (c *conn) Send(payload []byte) {
	if c.closed {
		return
	}
	// Fragment into frames.
	for off := 0; ; {
		n := len(payload) - off
		last := true
		if n > MaxChunk {
			n = MaxChunk
			last = false
		}
		frame := make([]byte, frameHeader+n)
		if last {
			frame[0] = flagLast
		}
		copy(frame[frameHeader:], payload[off:off+n])
		c.pending = append(c.pending, frame)
		off += n
		if last {
			break
		}
	}
	c.flushPending()
}

// flushPending posts as many queued frames as credits and ring space allow.
func (c *conn) flushPending() {
	if !c.ready || c.closed {
		return
	}
	for len(c.pending) > 0 && c.msgCredit > 0 && !c.ringWait && !c.closed {
		frame := c.pending[0]
		if c.writeOff+len(frame) > c.remoteSize {
			// Paper §III-B: receive buffer full → ask the peer to
			// re-register its MR, stall until fresh MR info arrives.
			c.ringWait = true
			c.sendCtrl([]byte{ctrlRingFul})
			return
		}
		c.pending = c.pending[1:]
		c.msgCredit--
		_ = c.qp.PostSend(rdma.SendWR{
			Op:        rdma.OpWriteImm,
			Data:      frame,
			RemoteKey: c.remoteKey,
			RemoteOff: c.writeOff,
			Imm:       uint32(len(frame)),
		})
		c.writeOff += len(frame)
	}
}

func (c *conn) SetHandler(fn func([]byte)) { c.handler = fn }
func (c *conn) SetCloseHandler(fn func())  { c.onClose = fn }

// CoreAssignable is implemented by connections whose send-side CPU
// accounting can be pinned to a specific core (Nic-KV's multi-threaded
// replication pins each slave connection to an ARM core).
type CoreAssignable interface {
	AssignSendCore(*sim.Core)
}

// AssignSendCore pins this connection's send-queue posts to the given core.
func (c *conn) AssignSendCore(core *sim.Core) { c.qp.SetSendCore(core) }

var _ transport.ProcAssignable = (*conn)(nil)

// owner is the process that drains this connection's completions and pays
// its verbs CPU costs: the assigned proc, or the stack's by default.
func (c *conn) owner() *sim.Proc {
	if c.proc != nil {
		return c.proc
	}
	return c.stack.proc
}

// AssignProc moves completion delivery and the QP's work-request cost
// accounting (send posts, receive-ring refills, CQ polls) to p
// (transport.ProcAssignable). Deliveries already posted stay where they are.
func (c *conn) AssignProc(p *sim.Proc) {
	c.proc = p
	c.qp.SetSendCore(p.Core)
	c.qp.SetRecvCore(p.Core)
}

// Close notifies the peer and tears the QP down.
func (c *conn) Close() {
	if c.closed {
		return
	}
	c.sendCtrl([]byte{ctrlClose})
	c.teardown()
}

func (c *conn) teardown() {
	if c.closed {
		return
	}
	c.closed = true
	c.qp.Close()
	if c.ring != nil {
		c.ring.Deregister()
	}
	c.pending = nil
	if c.onClose != nil {
		c.onClose()
	}
}

func (c *conn) Closed() bool { return c.closed }

func (c *conn) LocalAddr() string {
	return fmt.Sprintf("%s:qp%d", c.stack.ep.Name(), c.qp.QPN())
}

func (c *conn) RemoteAddr() string {
	if ep := c.qp.RemoteEndpoint(); ep != nil {
		return ep.Name()
	}
	return "?"
}

func (c *conn) Transport() string { return "rdma" }
