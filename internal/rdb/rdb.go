// Package rdb implements SKV's snapshot serialization — the equivalent of
// Redis's RDB files. The master produces a dump during the initial
// synchronization phase (paper §III-C step ③: "the master node will send
// its own data file containing all key-value pairs to the slave node") and
// for persistence; slaves load it to bootstrap their dataset.
//
// Format: magic "SKVRDB01", then per-database sections introduced by a
// SELECTDB opcode, each entry optionally prefixed by an expiry opcode,
// terminated by EOF plus a CRC-32 (Castagnoli) of everything before it.
package rdb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"

	"skv/internal/obj"
	"skv/internal/store"
)

const magic = "SKVRDB01"

// Opcodes.
const (
	opSelectDB = 0xFE
	opExpireMS = 0xFD
	opEOF      = 0xFF
)

// Value type tags.
const (
	tString = 0
	tList   = 1
	tHash   = 2
	tSet    = 3
	tZSet   = 4
)

// Errors returned by Load.
var (
	ErrBadMagic = errors.New("rdb: bad magic")
	ErrBadCRC   = errors.New("rdb: checksum mismatch")
	ErrCorrupt  = errors.New("rdb: corrupt payload")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(dst, tmp[:n]...)
}

func appendBytes(dst, b []byte) []byte {
	dst = appendUvarint(dst, uint64(len(b)))
	return append(dst, b...)
}

func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// Dump serializes the full store.
func Dump(s *store.Store) []byte {
	out := []byte(magic)
	for dbi := 0; dbi < s.NumDBs(); dbi++ {
		dbi := dbi
		first := true
		s.EachEntry(func(edb int, key string, o *obj.Object, expireAt int64) bool {
			if edb != dbi {
				return true
			}
			if first {
				out = append(out, opSelectDB)
				out = appendUvarint(out, uint64(dbi))
				first = false
			}
			if expireAt > 0 {
				out = append(out, opExpireMS)
				var tmp [8]byte
				binary.BigEndian.PutUint64(tmp[:], uint64(expireAt))
				out = append(out, tmp[:]...)
			}
			out = appendObject(out, key, o)
			return true
		})
	}
	out = append(out, opEOF)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], crc32.Checksum(out, crcTable))
	return append(out, crc[:]...)
}

func appendObject(out []byte, key string, o *obj.Object) []byte {
	switch o.Type {
	case obj.TString:
		out = append(out, tString)
		out = appendString(out, key)
		out = appendBytes(out, o.StringBytes())
	case obj.TList:
		out = append(out, tList)
		out = appendString(out, key)
		l := o.List()
		out = appendUvarint(out, uint64(l.Len()))
		l.Each(func(v any) bool {
			out = appendBytes(out, v.([]byte))
			return true
		})
	case obj.THash:
		out = append(out, tHash)
		out = appendString(out, key)
		out = appendUvarint(out, uint64(o.HashLen()))
		o.HashEach(func(f string, v []byte) bool {
			out = appendString(out, f)
			out = appendBytes(out, v)
			return true
		})
	case obj.TSet:
		out = append(out, tSet)
		out = appendString(out, key)
		out = appendUvarint(out, uint64(o.SetLen()))
		o.SetEach(func(m string) bool {
			out = appendString(out, m)
			return true
		})
	case obj.TZSet:
		out = append(out, tZSet)
		out = appendString(out, key)
		els := o.ZRangeByRank(0, -1)
		out = appendUvarint(out, uint64(len(els)))
		for _, e := range els {
			out = appendString(out, e.Member)
			var tmp [8]byte
			binary.BigEndian.PutUint64(tmp[:], math.Float64bits(e.Score))
			out = append(out, tmp[:]...)
		}
	}
	return out
}

// reader is a cursor over the dump payload.
type reader struct {
	b   []byte
	pos int
}

func (r *reader) byte() (byte, error) {
	if r.pos >= len(r.b) {
		return 0, ErrCorrupt
	}
	v := r.b[r.pos]
	r.pos++
	return v, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	r.pos += n
	return v, nil
}

func (r *reader) bytes() ([]byte, error) {
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	if uint64(r.pos)+n > uint64(len(r.b)) {
		return nil, ErrCorrupt
	}
	out := append([]byte(nil), r.b[r.pos:r.pos+int(n)]...)
	r.pos += int(n)
	return out, nil
}

func (r *reader) uint64() (uint64, error) {
	if r.pos+8 > len(r.b) {
		return 0, ErrCorrupt
	}
	v := binary.BigEndian.Uint64(r.b[r.pos:])
	r.pos += 8
	return v, nil
}

// Load replaces the store's contents with the dump. The store is flushed
// first only if the payload validates structurally (magic + CRC).
func Load(s *store.Store, data []byte) error {
	if len(data) < len(magic)+5 || string(data[:len(magic)]) != magic {
		return ErrBadMagic
	}
	body := data[:len(data)-4]
	wantCRC := binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, crcTable) != wantCRC {
		return ErrBadCRC
	}
	r := &reader{b: body, pos: len(magic)}
	s.FlushAll()
	dbi := 0
	var pendingExpire int64
	for {
		op, err := r.byte()
		if err != nil {
			return err
		}
		switch op {
		case opEOF:
			return nil
		case opSelectDB:
			n, err := r.uvarint()
			if err != nil {
				return err
			}
			if n >= uint64(s.NumDBs()) {
				return fmt.Errorf("%w: db index %d out of range", ErrCorrupt, n)
			}
			dbi = int(n)
		case opExpireMS:
			n, err := r.uint64()
			if err != nil {
				return err
			}
			pendingExpire = int64(n)
		case tString, tList, tHash, tSet, tZSet:
			if err := loadObject(s, r, dbi, op, pendingExpire); err != nil {
				return err
			}
			pendingExpire = 0
		default:
			return fmt.Errorf("%w: unknown opcode 0x%02x", ErrCorrupt, op)
		}
	}
}

func loadObject(s *store.Store, r *reader, dbi int, typ byte, expireAt int64) error {
	keyB, err := r.bytes()
	if err != nil {
		return err
	}
	key := string(keyB)
	var o *obj.Object
	switch typ {
	case tString:
		v, err := r.bytes()
		if err != nil {
			return err
		}
		o = obj.NewString(v)
	case tList:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		o = obj.NewList()
		for i := uint64(0); i < n; i++ {
			v, err := r.bytes()
			if err != nil {
				return err
			}
			o.List().PushTail(v)
		}
	case tHash:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		o = obj.NewHash(s.NewSeed())
		for i := uint64(0); i < n; i++ {
			f, err := r.bytes()
			if err != nil {
				return err
			}
			v, err := r.bytes()
			if err != nil {
				return err
			}
			o.HashSet(string(f), v)
		}
	case tSet:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		o = obj.NewSet(s.NewSeed())
		for i := uint64(0); i < n; i++ {
			m, err := r.bytes()
			if err != nil {
				return err
			}
			o.SetAdd(string(m))
		}
	case tZSet:
		n, err := r.uvarint()
		if err != nil {
			return err
		}
		o = obj.NewZSet(s.NewSeed())
		for i := uint64(0); i < n; i++ {
			m, err := r.bytes()
			if err != nil {
				return err
			}
			bits, err := r.uint64()
			if err != nil {
				return err
			}
			o.ZAdd(string(m), math.Float64frombits(bits))
		}
	}
	s.SetRaw(dbi, key, o, expireAt)
	return nil
}
