package rdb

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"skv/internal/store"
)

func newStore() *store.Store {
	now := int64(1_000_000)
	return store.New(store.Options{Seed: 7, Clock: func() int64 { return now }})
}

func exec(t *testing.T, s *store.Store, dbi int, line string) {
	t.Helper()
	words := strings.Split(line, " ")
	argv := make([][]byte, len(words))
	for i, w := range words {
		argv[i] = []byte(w)
	}
	reply, _ := s.Exec(dbi, argv)
	if len(reply) > 0 && reply[0] == '-' {
		t.Fatalf("command %q failed: %s", line, reply)
	}
}

func get(s *store.Store, dbi int, key string) string {
	reply, _ := s.Exec(dbi, [][]byte{[]byte("GET"), []byte(key)})
	return string(reply)
}

func TestRoundTripAllTypes(t *testing.T) {
	src := newStore()
	exec(t, src, 0, "SET str hello")
	exec(t, src, 0, "SET num 42")
	exec(t, src, 0, "RPUSH list a b c")
	exec(t, src, 0, "HSET hash f1 v1 f2 v2")
	exec(t, src, 0, "SADD set 1 2 3")
	exec(t, src, 0, "SADD set2 x y z")
	exec(t, src, 0, "ZADD zset 1.5 a 2.5 b")
	exec(t, src, 2, "SET otherdb yes")

	dump := Dump(src)
	dst := newStore()
	if err := Load(dst, dump); err != nil {
		t.Fatalf("Load: %v", err)
	}

	for _, check := range []struct {
		dbi       int
		cmd, want string
	}{
		{0, "GET str", "$5\r\nhello\r\n"},
		{0, "GET num", "$2\r\n42\r\n"},
		{0, "LRANGE list 0 -1", "*3\r\n$1\r\na\r\n$1\r\nb\r\n$1\r\nc\r\n"},
		{0, "HGET hash f2", "$2\r\nv2\r\n"},
		{0, "SISMEMBER set 2", ":1\r\n"},
		{0, "SISMEMBER set2 y", ":1\r\n"},
		{0, "ZSCORE zset b", "$3\r\n2.5\r\n"},
		{2, "GET otherdb", "$3\r\nyes\r\n"},
	} {
		words := strings.Split(check.cmd, " ")
		argv := make([][]byte, len(words))
		for i, w := range words {
			argv[i] = []byte(w)
		}
		reply, _ := dst.Exec(check.dbi, argv)
		if string(reply) != check.want {
			t.Errorf("db%d %q = %q, want %q", check.dbi, check.cmd, reply, check.want)
		}
	}
}

func TestExpirySurvivesRoundTrip(t *testing.T) {
	now := int64(1_000_000)
	src := store.New(store.Options{DBs: 1, Seed: 7, Clock: func() int64 { return now }})
	dst := store.New(store.Options{DBs: 1, Seed: 9, Clock: func() int64 { return now }})
	exec(t, src, 0, "SET k v")
	exec(t, src, 0, "PEXPIRE k 5000")
	if err := Load(dst, Dump(src)); err != nil {
		t.Fatal(err)
	}
	reply, _ := dst.Exec(0, [][]byte{[]byte("PTTL"), []byte("k")})
	if string(reply) == ":-1\r\n" || string(reply) == ":-2\r\n" {
		t.Fatalf("TTL lost: %q", reply)
	}
}

func TestLoadReplacesExistingData(t *testing.T) {
	src := newStore()
	exec(t, src, 0, "SET fromdump v")
	dst := newStore()
	exec(t, dst, 0, "SET stale old")
	if err := Load(dst, Dump(src)); err != nil {
		t.Fatal(err)
	}
	if got := get(dst, 0, "stale"); got != "$-1\r\n" {
		t.Fatalf("stale key survived load: %q", got)
	}
	if got := get(dst, 0, "fromdump"); got != "$1\r\nv\r\n" {
		t.Fatalf("dumped key missing: %q", got)
	}
}

func TestBadMagicRejected(t *testing.T) {
	dst := newStore()
	if err := Load(dst, []byte("NOTARDB0xxxxxxx")); err != ErrBadMagic {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestCorruptionDetectedByCRC(t *testing.T) {
	src := newStore()
	exec(t, src, 0, "SET k v")
	dump := Dump(src)
	dump[len(dump)/2] ^= 0xFF
	dst := newStore()
	if err := Load(dst, dump); err != ErrBadCRC {
		t.Fatalf("err = %v, want ErrBadCRC", err)
	}
	// And critically: the destination was not flushed.
	exec(t, dst, 0, "SET survivor yes")
	if got := get(dst, 0, "survivor"); got != "$3\r\nyes\r\n" {
		t.Fatal("store corrupted by failed load")
	}
}

func TestTruncatedPayload(t *testing.T) {
	src := newStore()
	exec(t, src, 0, "SET key somevalue")
	dump := Dump(src)
	trunc := dump[:len(dump)-10]
	dst := newStore()
	if err := Load(dst, trunc); err == nil {
		t.Fatal("truncated dump loaded successfully")
	}
}

func TestEmptyStoreDump(t *testing.T) {
	src := newStore()
	dst := newStore()
	if err := Load(dst, Dump(src)); err != nil {
		t.Fatalf("empty dump: %v", err)
	}
	reply, _ := dst.Exec(0, [][]byte{[]byte("DBSIZE")})
	if string(reply) != ":0\r\n" {
		t.Fatalf("dbsize after empty load: %q", reply)
	}
}

// Property: any set of string keys round-trips exactly.
func TestStringRoundTripProperty(t *testing.T) {
	f := func(pairs map[string]string) bool {
		src := newStore()
		for k, v := range pairs {
			if k == "" {
				continue
			}
			src.Exec(0, [][]byte{[]byte("SET"), []byte(k), []byte(v)})
		}
		dst := newStore()
		if err := Load(dst, Dump(src)); err != nil {
			return false
		}
		for k := range pairs {
			if k == "" {
				continue
			}
			a, _ := src.Exec(0, [][]byte{[]byte("GET"), []byte(k)})
			b, _ := dst.Exec(0, [][]byte{[]byte("GET"), []byte(k)})
			if string(a) != string(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestLargeDataset(t *testing.T) {
	src := newStore()
	for i := 0; i < 2000; i++ {
		exec(t, src, 0, fmt.Sprintf("SET key:%d value-%d", i, i))
	}
	dump := Dump(src)
	dst := newStore()
	if err := Load(dst, dump); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i += 97 {
		want := fmt.Sprintf("$%d\r\nvalue-%d\r\n", len(fmt.Sprintf("value-%d", i)), i)
		if got := get(dst, 0, fmt.Sprintf("key:%d", i)); got != want {
			t.Fatalf("key:%d = %q want %q", i, got, want)
		}
	}
}
