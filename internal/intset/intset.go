// Package intset is the sorted integer-set encoding Redis applies to small
// all-integer sets (intset.c): a sorted array with binary search, upgraded
// to a hash table once it grows or a non-integer member arrives (the
// upgrade is the object layer's job).
package intset

import "sort"

// IntSet is a sorted set of int64 values. The zero value is empty and ready
// to use.
type IntSet struct {
	vals []int64
}

// New creates an empty intset.
func New() *IntSet { return &IntSet{} }

// Len reports the number of members.
func (s *IntSet) Len() int { return len(s.vals) }

func (s *IntSet) search(v int64) (int, bool) {
	i := sort.Search(len(s.vals), func(i int) bool { return s.vals[i] >= v })
	return i, i < len(s.vals) && s.vals[i] == v
}

// Add inserts v, reporting whether it was absent.
func (s *IntSet) Add(v int64) bool {
	i, found := s.search(v)
	if found {
		return false
	}
	s.vals = append(s.vals, 0)
	copy(s.vals[i+1:], s.vals[i:])
	s.vals[i] = v
	return true
}

// Remove deletes v, reporting whether it was present.
func (s *IntSet) Remove(v int64) bool {
	i, found := s.search(v)
	if !found {
		return false
	}
	s.vals = append(s.vals[:i], s.vals[i+1:]...)
	return true
}

// Contains reports membership.
func (s *IntSet) Contains(v int64) bool {
	_, found := s.search(v)
	return found
}

// Members returns the values in ascending order (a copy).
func (s *IntSet) Members() []int64 {
	out := make([]int64, len(s.vals))
	copy(out, s.vals)
	return out
}

// Get returns the i-th smallest member.
func (s *IntSet) Get(i int) (int64, bool) {
	if i < 0 || i >= len(s.vals) {
		return 0, false
	}
	return s.vals[i], true
}
