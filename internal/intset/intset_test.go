package intset

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestAddRemoveContains(t *testing.T) {
	s := New()
	if !s.Add(5) || !s.Add(1) || !s.Add(9) {
		t.Fatal("fresh adds should return true")
	}
	if s.Add(5) {
		t.Fatal("duplicate add returned true")
	}
	if !s.Contains(5) || s.Contains(2) {
		t.Fatal("membership wrong")
	}
	if !s.Remove(5) || s.Remove(5) {
		t.Fatal("remove semantics wrong")
	}
	if s.Len() != 2 {
		t.Fatalf("len=%d", s.Len())
	}
}

func TestMembersSorted(t *testing.T) {
	s := New()
	for _, v := range []int64{5, -3, 99, 0, 7, -100} {
		s.Add(v)
	}
	m := s.Members()
	if !sort.SliceIsSorted(m, func(i, j int) bool { return m[i] < m[j] }) {
		t.Fatalf("members not sorted: %v", m)
	}
}

func TestGetByIndex(t *testing.T) {
	s := New()
	s.Add(10)
	s.Add(20)
	s.Add(30)
	if v, ok := s.Get(1); !ok || v != 20 {
		t.Fatalf("Get(1)=%d,%v", v, ok)
	}
	if _, ok := s.Get(3); ok {
		t.Fatal("out of range Get ok")
	}
	if _, ok := s.Get(-1); ok {
		t.Fatal("negative Get ok")
	}
}

// Property: IntSet matches a map[int64]bool model and stays sorted.
func TestSetModelProperty(t *testing.T) {
	type op struct {
		Kind uint8
		Val  int8 // small domain forces collisions
	}
	f := func(ops []op) bool {
		s := New()
		m := map[int64]bool{}
		for _, o := range ops {
			v := int64(o.Val)
			switch o.Kind % 3 {
			case 0:
				if s.Add(v) == m[v] {
					return false
				}
				m[v] = true
			case 1:
				if s.Remove(v) != m[v] {
					return false
				}
				delete(m, v)
			case 2:
				if s.Contains(v) != m[v] {
					return false
				}
			}
			if s.Len() != len(m) {
				return false
			}
		}
		mem := s.Members()
		return sort.SliceIsSorted(mem, func(i, j int) bool { return mem[i] < mem[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
