package model

import (
	"testing"

	"skv/internal/sim"
)

func TestDefaultsEncodePaperStructure(t *testing.T) {
	p := Default()
	// §II-C: SmartNIC cores are much weaker than host cores.
	if p.NICCoreSpeed >= p.HostCoreSpeed {
		t.Error("NIC cores must be slower than host cores")
	}
	// BlueField-2 has 8 ARM cores.
	if p.NICCores != 8 {
		t.Errorf("NICCores=%d, want 8", p.NICCores)
	}
	// The kernel TCP path must cost far more CPU per message than the RDMA
	// completion path (the Fig 10 mechanism).
	if p.TCPRxCPU < 4*p.CPUCompletion {
		t.Error("TCP receive CPU should dwarf RDMA completion handling")
	}
	// The Fig 11 mechanism: per-slave feeding + posting must exceed the
	// one-shot offload request cost for ≥2 slaves.
	perSlave := p.ReplFeedSlaveCPU + p.CPUPostWR
	offload := p.ReplOffloadReqCPU + p.CPUPostWR
	if 2*perSlave <= offload {
		t.Error("offload must win at 2+ slaves")
	}
	// §III-D defaults: probes every second.
	if p.ProbePeriod != sim.Second {
		t.Errorf("ProbePeriod=%v, want 1s", p.ProbePeriod)
	}
	if p.WaitingTime <= p.ProbePeriod {
		t.Error("waiting-time must exceed the probe period")
	}
}

func TestTransferTime(t *testing.T) {
	p := Default()
	if p.TransferTime(0) != 0 || p.TransferTime(-5) != 0 {
		t.Error("non-positive sizes should transfer in 0")
	}
	// 1250 bytes at 100Gb/s = 100ns.
	if got := p.TransferTime(1250); got != 100*sim.Nanosecond {
		t.Errorf("TransferTime(1250)=%v, want 100ns", got)
	}
	// Monotone in size.
	if p.TransferTime(100) >= p.TransferTime(10_000) {
		t.Error("transfer time must grow with size")
	}
}

func TestMessageCostHelpers(t *testing.T) {
	p := Default()
	if p.TCPMsgCPURx(0) != p.TCPRxCPU {
		t.Error("zero-byte RX should cost the fixed part")
	}
	if p.TCPMsgCPURx(10_000) <= p.TCPMsgCPURx(10) {
		t.Error("RX cost must grow with size")
	}
	if p.TCPMsgCPUTx(10_000) <= p.TCPMsgCPUTx(10) {
		t.Error("TX cost must grow with size")
	}
	if p.ParseCost(1000) <= p.ParseCost(10) {
		t.Error("parse cost must grow with size")
	}
}

func TestFig10CalibrationArithmetic(t *testing.T) {
	// The saturated single-core service times implied by the constants
	// should straddle the paper's measured throughput: ≈130 kops/s for
	// kernel TCP, >330 kops/s for RDMA.
	p := Default()
	smallMsg := 80
	tcpService := p.TCPMsgCPURx(smallMsg) + p.TCPMsgCPUTx(smallMsg) +
		p.ParseCost(smallMsg) + p.CmdExecSetCPU + p.ReplyBuildCPU
	tcpKops := 1e6 / tcpService.Micros() / 1000
	if tcpKops < 110 || tcpKops > 160 {
		t.Errorf("implied TCP saturation %.0f kops/s, want ≈130", tcpKops)
	}
	rdmaService := p.CPUCompletion + p.ParseCost(smallMsg) + p.CmdExecSetCPU +
		p.ReplyBuildCPU + p.CPUPostWR
	rdmaKops := 1e6 / rdmaService.Micros() / 1000
	if rdmaKops < 330 {
		t.Errorf("implied RDMA saturation %.0f kops/s, want >330", rdmaKops)
	}
}
