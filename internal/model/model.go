// Package model holds every calibration constant of the SKV simulation in
// one place: network latencies, per-operation CPU costs, bandwidths, and
// core speeds.
//
// The defaults are anchored to the measured points reported in the paper
// ("SKV: A SmartNIC-Offloaded Distributed Key-Value Store", CLUSTER 2022):
//
//   - Fig 3: RDMA WRITE latency host↔host ≈ host↔local-SmartNIC, with the
//     local-NIC path only slightly lower and the remote-host→SmartNIC path
//     slightly higher.
//   - Fig 10a: kernel-TCP Redis saturates ≈130 kops/s (≈7.7µs of host CPU
//     per SET); RDMA-Redis exceeds 330 kops/s (≈2.9µs per SET).
//   - Fig 11: with 3 slaves, the RDMA-Redis master pays a per-slave feed +
//     work-request post for every write, while SKV posts a single
//     replication request to Nic-KV — yielding ≈14% higher throughput and
//     ≈21% lower p99 latency at 8 clients.
//   - §II-A / §IV: BlueField ARM A72 cores are much slower than host Xeon
//     cores (literature measures ≈30–40% of host single-core performance).
//
// Absolute values are a model, not a measurement of this machine; what the
// reproduction preserves is the relative cost structure the paper's design
// exploits.
package model

import "skv/internal/sim"

// Params is the full parameter set for one simulated cluster.
type Params struct {
	// ---- Core speeds (relative to the reference host core) ----

	// HostCoreSpeed is the speed of a host Xeon core. Reference = 1.0.
	HostCoreSpeed float64
	// NICCoreSpeed is the speed of one SmartNIC ARM A72 core relative to a
	// host core (§II-C "the performance of the cores on the SmartNIC is much
	// weaker than that of the host cores").
	NICCoreSpeed float64
	// NICCores is the number of ARM cores on the SmartNIC (BlueField-2: 8).
	NICCores int

	// ---- Fabric (100Gb RoCE, Fig 3) ----

	// LinkBandwidthBps is the port bandwidth in bits/s (100 Gb/s).
	LinkBandwidthBps float64
	// WireLatency is the one-way propagation + switch latency between two
	// machines' NIC ports.
	WireLatency sim.Duration
	// NICSwitchLatency is the extra hop through the off-path SmartNIC's
	// embedded NIC switch when traffic is directed to/from the NIC cores.
	NICSwitchLatency sim.Duration
	// PCIeLatency is the DMA hop between a NIC port and host memory.
	PCIeLatency sim.Duration

	// ---- RDMA verbs cost model ----

	// RDMASenderProc is the sender-side NIC processing time for one work
	// request (doorbell + WQE fetch + DMA read of the payload descriptor).
	RDMASenderProc sim.Duration
	// RDMAReceiverProc is the receiver-side NIC processing time (DMA write,
	// CQE generation).
	RDMAReceiverProc sim.Duration
	// CPUPostWR is the host CPU cost of posting one work request
	// (ibv_post_send / ibv_post_recv). This is the cost the SKV design
	// removes from the master's replication path: RDMA-Redis posts one WR
	// per slave per write; SKV posts one per write.
	CPUPostWR sim.Duration
	// CPUCompletion is the CPU cost of harvesting one completion (CQE poll +
	// ibv_ack_cq_events + re-arm via ibv_req_notify_cq).
	CPUCompletion sim.Duration
	// CompChannelWake is the latency of blocking on the completion event
	// channel and being woken (the CPU-saving alternative to busy-polling
	// the CQ that §III-B adopts). Charged only on idle→busy transitions;
	// under load it amortizes away.
	CompChannelWake sim.Duration

	// ---- Kernel TCP cost model (original Redis transport) ----

	// TCPRxCPU is the host CPU consumed to receive one small message through
	// the kernel stack (softirq, protocol processing, copy to user,
	// epoll/read syscalls).
	TCPRxCPU sim.Duration
	// TCPTxCPU is the host CPU to send one small message (write syscall,
	// copy from user, protocol processing, qdisc).
	TCPTxCPU sim.Duration
	// TCPPerByteCPU is the additional copy cost per payload byte (two copies
	// per direction).
	TCPPerByteCPU float64 // ns per byte
	// TCPStackLatency is the added one-way latency of kernel stack traversal
	// relative to the raw wire (interrupt, softirq scheduling).
	TCPStackLatency sim.Duration
	// TCPWakeup is the epoll_wait return / context-switch cost on an
	// idle→busy transition.
	TCPWakeup sim.Duration

	// ---- Key-value engine costs (per command, on the serving core) ----

	// CmdParseCPU is the fixed RESP parse + dispatch cost per command.
	CmdParseCPU sim.Duration
	// CmdParsePerByte is the per-byte parse/copy cost.
	CmdParsePerByte float64 // ns per byte
	// CmdExecSetCPU is the hash-table insert/overwrite cost for SET.
	CmdExecSetCPU sim.Duration
	// CmdExecGetCPU is the lookup cost for GET.
	CmdExecGetCPU sim.Duration
	// CmdExecPerByte is the per-byte cost of copying the value into/out of
	// the store.
	CmdExecPerByte float64 // ns per byte
	// ReplyBuildCPU is the cost of building the reply (addReply path).
	ReplyBuildCPU sim.Duration

	// ---- Replication path costs ----

	// ReplFeedSlaveCPU is the master CPU cost, per slave, of appending a
	// write command to that slave's output buffer and flushing it
	// (RDMA-Redis steady state: this happens once per slave per write; each
	// flush additionally pays CPUPostWR).
	ReplFeedSlaveCPU sim.Duration
	// ReplFeedJitterP is the probability a slave feed hits a slow path
	// (output buffer growth / backlog trim), and ReplFeedJitterCPU its cost.
	// This is what inflates tail latency more than average latency when
	// slaves are attached (Fig 7: p99 grows >25%).
	ReplFeedJitterP   float64
	ReplFeedJitterCPU sim.Duration
	// ReplOffloadReqCPU is the master CPU cost of building the single
	// replication request SKV sends to Nic-KV (plus one CPUPostWR).
	ReplOffloadReqCPU sim.Duration
	// NicParseReqCPU is the Nic-KV cost (reference speed; scaled by the ARM
	// core speed) of parsing one replication request.
	NicParseReqCPU sim.Duration
	// NicFeedSlaveCPU is the Nic-KV per-slave cost of writing the command
	// into the slave's send buffer and posting the WRITE_WITH_IMM.
	NicFeedSlaveCPU sim.Duration
	// SlaveApplyCPU is the slave-side cost of executing one replicated write.
	SlaveApplyCPU sim.Duration
	// ReplBatchMaxCmds is the replication-stream batching budget in
	// commands: the master coalesces up to this many writes into one
	// replication send (one WR instead of one per write — the doorbell
	// amortization off-path SmartNIC studies report). 1 disables batching
	// and reproduces the unbatched data path bit-for-bit. Partial batches
	// flush when the producing core quiesces (end of the event-loop tick).
	ReplBatchMaxCmds int
	// ReplBatchMaxBytes caps a replication batch in bytes so large values
	// do not defer the flush unboundedly. 0 means 64KB.
	ReplBatchMaxBytes int
	// ReplBatchMaxDelay, when > 0, replaces the quiesce flush with a
	// doorbell-coalescing timer: a partial batch flushes this long after
	// its first command (NIC interrupt-moderation discipline). An
	// underloaded producer — the demoted merge stage, which handles one
	// 150ns merge per ~650ns arrival — quiesces between every two writes,
	// so the quiesce flush degenerates to batch=1 there; the timer is what
	// lets ReplBatchMaxCmds actually accumulate. 0 keeps the legacy
	// quiesce flush bit-for-bit.
	ReplBatchMaxDelay sim.Duration
	// RDBPerByte is the serialize/load cost per byte of RDB payload during
	// initial synchronization.
	RDBPerByte float64 // ns per byte

	// ---- Host-KV sharding (multi-core keyspace execution) ----

	// HostShards is the number of keyspace shard cores a Host-KV node runs.
	// 1 (or 0) keeps the paper's single-threaded event loop bit-for-bit: the
	// server takes the legacy path with no dispatch/merge stages, no extra
	// cores, and no extra instruments. With N > 1 the node becomes a
	// dispatch Proc (RESP parse + key-hash routing), N shard Procs (each
	// owning a disjoint slice of every numbered DB), and a merge stage that
	// serializes completed writes into the replication stream.
	HostShards int
	// ShardRouteCPU is the dispatch-core cost of routing one parsed command
	// to a shard (hash + handoff). Charged only when HostShards > 1.
	ShardRouteCPU sim.Duration
	// ShardMergeCPU is the dispatch-core cost of merging one completed shard
	// command back into the serialized stream (reply ordering + replication
	// append). Charged only when HostShards > 1.
	ShardMergeCPU sim.Duration
	// ShardFenceCPU is the per-shard cost of a cross-shard fence (KEYS,
	// DBSIZE, FLUSHALL, multi-shard MSET/DEL, PSYNC): the fan-in
	// coordination each shard core pays. Charged only when HostShards > 1.
	ShardFenceCPU sim.Duration
	// RouteListeners is the number of per-listener routing procs a sharded
	// Host-KV node runs in front of the dispatch proc. 1 (or 0) keeps the
	// PR-5 pipeline bit-for-bit: the dispatch proc owns every connection,
	// parses, routes and merges. With N > 1 (and HostShards > 1) inbound
	// client connections are pinned round-robin to N routing procs, each on
	// its own core: the routing proc pays the transport receive path, RESP
	// parse, classification and the shard handoff, while the dispatch proc
	// shrinks to the merge/order stage — the single serialized replication
	// order, write gating and barrier admission. Ignored when HostShards <= 1.
	RouteListeners int
	// RouteCPU is the routing-core cost of the key-hash route decision and
	// shard handoff for one parsed command (the routing plane's analog of
	// ShardRouteCPU, which stays the dispatch-core cost when RouteListeners
	// <= 1). Charged only when the routing plane is on.
	RouteCPU sim.Duration
	// SlotCheckCPU is the per-command cost of the hash-slot ownership check
	// a cluster-mode node performs at admission (CRC16 over the key's
	// hashtag plus the routing-table lookup). Charged only when the node is
	// part of a multi-master slot cluster; single-master deployments never
	// pay it.
	SlotCheckCPU sim.Duration

	// ---- Nic-KV replica sharding (NIC-served reads, §IV-A ablation) ----
	// When the shadow replica is enabled, Nic-KV mirrors the host's shard
	// layout: min(HostShards, NICCores) ARM cores each own a key-hash slice
	// of the replica, applying the stream and serving reads in parallel.
	// All three knobs are charged only when that count is > 1.

	// NicShardRouteCPU is the main-ARM-core cost of routing one replica
	// apply or NIC-served read to its shard core.
	NicShardRouteCPU sim.Duration
	// NicShardMergeCPU is the main-ARM-core cost of merging one completed
	// shard operation back (reply re-sequencing / apply retirement).
	NicShardMergeCPU sim.Duration
	// NicShardFenceCPU is the per-shard cost of quiescing the replica's
	// apply pipeline for a cross-shard command in the stream (FLUSHALL,
	// multi-shard MSET/DEL).
	NicShardFenceCPU sim.Duration
	// ForkCPU is the cost on the master of starting the persistence child
	// (paper step 2 of initial sync).
	ForkCPU sim.Duration

	// ---- Background activity (tail-latency sources) ----

	// CronPeriod is the serverCron interval (Redis: 1/hz, default hz=10).
	CronPeriod sim.Duration
	// CronCPU is the CPU consumed per cron tick (expired-key sampling,
	// rehash step, stats).
	CronCPU sim.Duration
	// ExecJitterSigma is the multiplicative log-normal-ish jitter applied to
	// command execution (cache misses, allocator); 0 disables.
	ExecJitterSigma float64

	// ---- Failure detection (§III-D) ----

	// ProbePeriod is how often Nic-KV probes master and slaves (paper: 1s).
	ProbePeriod sim.Duration
	// WaitingTime is the reply deadline after which a node is declared
	// crashed (paper parameter waiting-time).
	WaitingTime sim.Duration
	// ProbeCPU is the cost of sending/answering one probe.
	ProbeCPU sim.Duration
	// RCRetryTimeout is how long an RDMA QP tolerates a streak of unacked
	// sends (drops, partitions, down peers) before transitioning to the
	// error state and tearing the connection down — the retry_cnt ×
	// retransmission-timeout exhaustion window of a real RC QP.
	RCRetryTimeout sim.Duration
	// TCPRetryTimeout is the same window for the kernel TCP model (RTO
	// escalation until the connection errors out).
	TCPRetryTimeout sim.Duration
	// MinSlaves is the min-slaves parameter: if fewer slaves are available,
	// writes fail (paper parameter min-slaves).
	MinSlaves int

	// ---- Client-side caching / invalidation tracking (CLIENT TRACKING) ----
	// All three knobs are charged only on behalf of connections that turned
	// tracking on; deployments that never negotiate CLIENT TRACKING pay
	// nothing and keep the legacy event stream bit-for-bit.

	// TrackInterestCPU is the server-side cost of recording one tracked
	// read's key interest: the table insert in local (in-band) mode, or
	// building the interest-forward frame to Nic-KV in redirect mode.
	TrackInterestCPU sim.Duration
	// NicInvalidateCPU is the Nic-KV ARM-core cost of building and posting
	// one invalidation push to one subscriber (host-side pushes use
	// ReplyBuildCPU — they ride the ordinary reply path).
	NicInvalidateCPU sim.Duration
	// TrackTableMax bounds an invalidation interest table in distinct
	// tracked keys (Redis tracking-table-max-keys). When full, the oldest
	// tracked key is evicted with a synthetic invalidation push so its
	// subscribers never serve it stale. 0 means 65536.
	TrackTableMax int

	// ---- Client model ----

	// ClientThinkCPU is the client-side cost between receiving a reply and
	// issuing the next request (redis-benchmark closed loop).
	ClientThinkCPU sim.Duration
	// ClientWakeup is the client-side wakeup cost on reply arrival.
	ClientWakeup sim.Duration
}

// Default returns the paper-calibrated parameter set. See the package
// comment for the anchoring points.
func Default() Params {
	return Params{
		HostCoreSpeed: 1.0,
		NICCoreSpeed:  0.6,
		NICCores:      8,

		LinkBandwidthBps: 100e9,
		WireLatency:      600 * sim.Nanosecond,
		NICSwitchLatency: 250 * sim.Nanosecond,
		PCIeLatency:      350 * sim.Nanosecond,

		RDMASenderProc:   300 * sim.Nanosecond,
		RDMAReceiverProc: 300 * sim.Nanosecond,
		CPUPostWR:        150 * sim.Nanosecond,
		CPUCompletion:    350 * sim.Nanosecond,
		CompChannelWake:  2500 * sim.Nanosecond,

		TCPRxCPU:        2900 * sim.Nanosecond,
		TCPTxCPU:        2400 * sim.Nanosecond,
		TCPPerByteCPU:   0.35,
		TCPStackLatency: 1500 * sim.Nanosecond,
		TCPWakeup:       1200 * sim.Nanosecond,

		CmdParseCPU:     350 * sim.Nanosecond,
		CmdParsePerByte: 0.08,
		CmdExecSetCPU:   1550 * sim.Nanosecond,
		CmdExecGetCPU:   1500 * sim.Nanosecond,
		CmdExecPerByte:  0.10,
		ReplyBuildCPU:   250 * sim.Nanosecond,

		ReplFeedSlaveCPU:  105 * sim.Nanosecond,
		ReplFeedJitterP:   0.006,
		ReplFeedJitterCPU: 4000 * sim.Nanosecond,
		ReplOffloadReqCPU: 250 * sim.Nanosecond,
		NicParseReqCPU:    200 * sim.Nanosecond,
		NicFeedSlaveCPU:   200 * sim.Nanosecond,
		SlaveApplyCPU:     900 * sim.Nanosecond,
		ReplBatchMaxCmds:  1,
		ReplBatchMaxBytes: 1 << 16,
		RDBPerByte:        0.6,
		ForkCPU:           2 * sim.Millisecond,

		HostShards:     1,
		ShardRouteCPU:  120 * sim.Nanosecond,
		ShardMergeCPU:  150 * sim.Nanosecond,
		ShardFenceCPU:  200 * sim.Nanosecond,
		RouteListeners: 1,
		RouteCPU:       120 * sim.Nanosecond,
		SlotCheckCPU:   80 * sim.Nanosecond,

		NicShardRouteCPU: 120 * sim.Nanosecond,
		NicShardMergeCPU: 150 * sim.Nanosecond,
		NicShardFenceCPU: 200 * sim.Nanosecond,

		CronPeriod:      100 * sim.Millisecond,
		CronCPU:         60 * sim.Microsecond,
		ExecJitterSigma: 0.25,

		ProbePeriod:     1 * sim.Second,
		WaitingTime:     2 * sim.Second,
		ProbeCPU:        1 * sim.Microsecond,
		RCRetryTimeout:  3 * sim.Second,
		TCPRetryTimeout: 3 * sim.Second,
		MinSlaves:       0,

		TrackInterestCPU: 100 * sim.Nanosecond,
		NicInvalidateCPU: 200 * sim.Nanosecond,
		TrackTableMax:    65536,

		ClientThinkCPU: 300 * sim.Nanosecond,
		ClientWakeup:   1500 * sim.Nanosecond,
	}
}

// TransferTime reports the serialization delay of size bytes on the link.
func (p *Params) TransferTime(size int) sim.Duration {
	if size <= 0 {
		return 0
	}
	ns := float64(size) * 8 / p.LinkBandwidthBps * 1e9
	return sim.Duration(ns + 0.5)
}

// TCPMsgCPURx reports total receive-side CPU for a message of size bytes.
func (p *Params) TCPMsgCPURx(size int) sim.Duration {
	return p.TCPRxCPU + sim.Duration(float64(size)*p.TCPPerByteCPU+0.5)
}

// TCPMsgCPUTx reports total send-side CPU for a message of size bytes.
func (p *Params) TCPMsgCPUTx(size int) sim.Duration {
	return p.TCPTxCPU + sim.Duration(float64(size)*p.TCPPerByteCPU+0.5)
}

// ParseCost reports the RESP parse cost of a command of size bytes.
func (p *Params) ParseCost(size int) sim.Duration {
	return p.CmdParseCPU + sim.Duration(float64(size)*p.CmdParsePerByte+0.5)
}
