// Package netserver serves the SKV storage engine over real TCP sockets
// with the RESP protocol — the non-simulated face of the library. Any RESP
// client (including redis-cli) can talk to it for the implemented command
// set; cmd/skv-server wraps it in a binary and cmd/skv-cli is a matching
// client.
//
// Unlike the simulated server (internal/server), which models CPU costs on
// virtual cores, this server simply executes: one goroutine per connection
// parses commands and a store-wide mutex serializes execution, mirroring
// Redis's single-threaded command semantics.
package netserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"skv/internal/rdb"
	"skv/internal/resp"
	"skv/internal/store"
)

// Options configures a network server.
type Options struct {
	// NumDBs is the SELECT-able database count (default 16).
	NumDBs int
	// Seed drives the store's internal randomness (default: time-based).
	Seed int64
	// RDBPath, when non-empty, is loaded at startup (if present) and
	// written by the SAVE command and by Close.
	RDBPath string
	// CronInterval is the active-expiry cycle period (default 100ms).
	CronInterval time.Duration
}

// Server is a live TCP RESP server.
type Server struct {
	opts Options
	st   *store.Store
	mu   sync.Mutex // serializes store access (Redis single-thread semantics)
	ln   net.Listener

	closed   chan struct{}
	closeOne sync.Once
	wg       sync.WaitGroup

	// Stats.
	connsMu sync.Mutex
	conns   map[net.Conn]struct{}
	Served  uint64
}

// New creates a server with a fresh store, loading RDBPath if it exists.
func New(opts Options) (*Server, error) {
	if opts.NumDBs == 0 {
		opts.NumDBs = 16
	}
	if opts.Seed == 0 {
		opts.Seed = time.Now().UnixNano()
	}
	if opts.CronInterval == 0 {
		opts.CronInterval = 100 * time.Millisecond
	}
	st := store.New(store.Options{DBs: opts.NumDBs, Seed: opts.Seed, Clock: func() int64 {
		return time.Now().UnixMilli()
	}})
	s := &Server{
		opts:   opts,
		st:     st,
		closed: make(chan struct{}),
		conns:  make(map[net.Conn]struct{}),
	}
	start := time.Now()
	st.InfoProvider = func() []store.InfoSection {
		s.connsMu.Lock()
		clients := len(s.conns)
		s.connsMu.Unlock()
		// The provider runs inside Exec, i.e. under s.mu — the same lock
		// Served is incremented under.
		served := s.Served
		return []store.InfoSection{
			{Name: "Server", Lines: []string{
				"server_name:skv-netserver",
				fmt.Sprintf("uptime_in_seconds:%d", int64(time.Since(start).Seconds())),
			}},
			{Name: "Clients", Lines: []string{
				fmt.Sprintf("connected_clients:%d", clients),
			}},
			// Standalone: no replication links, but the section must exist so
			// RESP clients issuing INFO replication get an answer, not an
			// unknown-section error.
			{Name: "Replication", Lines: []string{
				"role:master",
				"connected_slaves:0",
				"master_repl_offset:0",
			}},
			{Name: "Stats", Lines: []string{
				fmt.Sprintf("total_connections_received:%d", served),
				fmt.Sprintf("dirty:%d", st.Dirty),
			}},
		}
	}
	if opts.RDBPath != "" {
		if data, err := os.ReadFile(opts.RDBPath); err == nil {
			if err := rdb.Load(st, data); err != nil {
				return nil, fmt.Errorf("netserver: loading %s: %w", opts.RDBPath, err)
			}
		}
	}
	return s, nil
}

// Store exposes the underlying keyspace (for embedding and tests).
func (s *Server) Store() *store.Store { return s.st }

// Serve accepts connections on ln until Close. It owns the listener.
func (s *Server) Serve(ln net.Listener) error {
	s.ln = ln
	s.wg.Add(1)
	go s.cron()
	for {
		conn, err := ln.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return nil
			default:
				return err
			}
		}
		s.connsMu.Lock()
		s.conns[conn] = struct{}{}
		s.connsMu.Unlock()
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// ListenAndServe listens on addr ("host:port") and serves.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr reports the bound address (after Serve starts).
func (s *Server) Addr() net.Addr {
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops the server, waits for handlers, and persists to RDBPath.
func (s *Server) Close() error {
	var err error
	s.closeOne.Do(func() {
		close(s.closed)
		if s.ln != nil {
			err = s.ln.Close()
		}
		s.connsMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connsMu.Unlock()
		s.wg.Wait()
		if s.opts.RDBPath != "" {
			if werr := s.save(); werr != nil && err == nil {
				err = werr
			}
		}
	})
	return err
}

// cron runs the active expiry cycle.
func (s *Server) cron() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.CronInterval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.mu.Lock()
			s.st.ActiveExpireCycle(20)
			s.st.RehashStep(100)
			s.mu.Unlock()
		}
	}
}

// save writes an RDB snapshot to RDBPath atomically.
func (s *Server) save() error {
	s.mu.Lock()
	data := rdb.Dump(s.st)
	s.mu.Unlock()
	tmp := s.opts.RDBPath + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, s.opts.RDBPath)
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		s.connsMu.Lock()
		delete(s.conns, conn)
		s.connsMu.Unlock()
		conn.Close()
	}()

	var reader resp.Reader
	buf := make([]byte, 16<<10)
	out := bufio.NewWriter(conn)
	db := 0
	for {
		n, err := conn.Read(buf)
		if n > 0 {
			reader.Feed(buf[:n])
			for {
				argv, complete, perr := reader.ReadCommand()
				if perr != nil {
					out.Write(resp.AppendError(nil, "ERR Protocol error"))
					out.Flush()
					return
				}
				if !complete {
					break
				}
				reply, newDB, quit := s.execute(db, argv)
				db = newDB
				out.Write(reply)
				if quit {
					out.Flush()
					return
				}
			}
			if out.Buffered() > 0 {
				if err := out.Flush(); err != nil {
					return
				}
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				return
			}
			return
		}
	}
}

// execute runs one command, handling the connection-level commands SELECT,
// SAVE and QUIT here and everything else in the store.
func (s *Server) execute(db int, argv [][]byte) (reply []byte, newDB int, quit bool) {
	name := strings.ToLower(string(argv[0]))
	switch name {
	case "quit":
		return resp.AppendSimple(nil, "OK"), db, true
	case "select":
		if len(argv) != 2 {
			return resp.AppendError(nil, "ERR wrong number of arguments for 'select' command"), db, false
		}
		n, err := strconv.Atoi(string(argv[1]))
		if err != nil || n < 0 || n >= s.st.NumDBs() {
			return resp.AppendError(nil, "ERR DB index is out of range"), db, false
		}
		return resp.AppendSimple(nil, "OK"), n, false
	case "save", "bgsave":
		if s.opts.RDBPath == "" {
			return resp.AppendError(nil, "ERR no RDB path configured"), db, false
		}
		if err := s.save(); err != nil {
			return resp.AppendError(nil, "ERR saving: "+err.Error()), db, false
		}
		return resp.AppendSimple(nil, "OK"), db, false
	}
	s.mu.Lock()
	reply, _ = s.st.Exec(db, argv)
	s.Served++
	s.mu.Unlock()
	return reply, db, false
}
