package netserver

import (
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"skv/internal/resp"
)

// testClient is a minimal synchronous RESP client for the tests.
type testClient struct {
	conn   net.Conn
	reader resp.Reader
	buf    []byte
	t      *testing.T
}

func startServer(t *testing.T, opts Options) (*Server, string) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() { s.Close() })
	return s, ln.Addr().String()
}

func dial(t *testing.T, addr string) *testClient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &testClient{conn: conn, buf: make([]byte, 4096), t: t}
}

func (c *testClient) do(argv ...string) resp.Value {
	c.t.Helper()
	if _, err := c.conn.Write(resp.EncodeCommand(argv...)); err != nil {
		c.t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, ok, err := c.reader.ReadValue()
		if err != nil {
			c.t.Fatalf("protocol error: %v", err)
		}
		if ok {
			return v
		}
		c.conn.SetReadDeadline(deadline)
		n, err := c.conn.Read(c.buf)
		if err != nil {
			c.t.Fatalf("read: %v", err)
		}
		c.reader.Feed(c.buf[:n])
	}
}

func TestBasicCommandsOverTCP(t *testing.T) {
	_, addr := startServer(t, Options{Seed: 1})
	c := dial(t, addr)
	if v := c.do("PING"); v.String() != "PONG" {
		t.Fatalf("PING = %s", v.String())
	}
	if v := c.do("SET", "greeting", "hello world"); !v.IsOK() {
		t.Fatalf("SET = %s", v.String())
	}
	if v := c.do("GET", "greeting"); v.String() != "hello world" {
		t.Fatalf("GET = %s", v.String())
	}
	if v := c.do("LPUSH", "l", "a", "b"); v.Int != 2 {
		t.Fatalf("LPUSH = %s", v.String())
	}
	if v := c.do("LRANGE", "l", "0", "-1"); v.String() != "[b a]" {
		t.Fatalf("LRANGE = %s", v.String())
	}
	if v := c.do("NOSUCH"); !v.IsError() {
		t.Fatal("unknown command accepted")
	}
}

func TestSelectIsolation(t *testing.T) {
	_, addr := startServer(t, Options{Seed: 2})
	c1 := dial(t, addr)
	c2 := dial(t, addr)
	c1.do("SET", "k", "db0")
	c2.do("SELECT", "1")
	c2.do("SET", "k", "db1")
	if v := c1.do("GET", "k"); v.String() != "db0" {
		t.Fatalf("db0 view: %s", v.String())
	}
	if v := c2.do("GET", "k"); v.String() != "db1" {
		t.Fatalf("db1 view: %s", v.String())
	}
}

func TestConcurrentClients(t *testing.T) {
	s, addr := startServer(t, Options{Seed: 3})
	const workers = 8
	const perWorker = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := net.Dial("tcp", addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer conn.Close()
			c := &testClient{conn: conn, buf: make([]byte, 4096), t: t}
			for i := 0; i < perWorker; i++ {
				key := "k" + string(rune('a'+w))
				if v := c.do("INCR", key); v.Type != resp.TypeInteger {
					t.Errorf("INCR reply %s", v.String())
					return
				}
			}
			if v := c.do("GET", "k"+string(rune('a'+w))); v.String() != "200" {
				t.Errorf("worker %d counter = %s, want 200", w, v.String())
			}
		}()
	}
	wg.Wait()
	if s.Served < workers*perWorker {
		t.Fatalf("served %d < %d", s.Served, workers*perWorker)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dump.rdb")
	s1, addr := startServer(t, Options{Seed: 4, RDBPath: path})
	c := dial(t, addr)
	c.do("SET", "durable", "yes")
	c.do("HSET", "h", "f", "v")
	if v := c.do("SAVE"); !v.IsOK() {
		t.Fatalf("SAVE = %s", v.String())
	}
	s1.Close()

	_, addr2 := startServer(t, Options{Seed: 5, RDBPath: path})
	c2 := dial(t, addr2)
	if v := c2.do("GET", "durable"); v.String() != "yes" {
		t.Fatalf("after restart GET = %s", v.String())
	}
	if v := c2.do("HGET", "h", "f"); v.String() != "v" {
		t.Fatalf("after restart HGET = %s", v.String())
	}
}

func TestQuitClosesConnection(t *testing.T) {
	_, addr := startServer(t, Options{Seed: 6})
	c := dial(t, addr)
	if v := c.do("QUIT"); !v.IsOK() {
		t.Fatalf("QUIT = %s", v.String())
	}
	// Subsequent read should hit EOF shortly.
	c.conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := c.conn.Read(buf); err == nil {
		t.Fatal("connection still open after QUIT")
	}
}

func TestExpiryWorksInRealTime(t *testing.T) {
	_, addr := startServer(t, Options{Seed: 7, CronInterval: 10 * time.Millisecond})
	c := dial(t, addr)
	c.do("SET", "temp", "v", "PX", "50")
	if v := c.do("GET", "temp"); v.String() != "v" {
		t.Fatalf("before expiry: %s", v.String())
	}
	time.Sleep(80 * time.Millisecond)
	if v := c.do("GET", "temp"); !v.Null {
		t.Fatalf("after expiry: %s", v.String())
	}
}

func TestPipelinedCommands(t *testing.T) {
	_, addr := startServer(t, Options{Seed: 8})
	c := dial(t, addr)
	// Write three commands in one segment; expect three replies in order.
	var batch []byte
	batch = append(batch, resp.EncodeCommand("SET", "p", "1")...)
	batch = append(batch, resp.EncodeCommand("INCR", "p")...)
	batch = append(batch, resp.EncodeCommand("GET", "p")...)
	if _, err := c.conn.Write(batch); err != nil {
		t.Fatal(err)
	}
	want := []string{"OK", "2", "2"}
	for i := 0; i < 3; i++ {
		deadline := time.Now().Add(5 * time.Second)
		for {
			v, ok, err := c.reader.ReadValue()
			if err != nil {
				t.Fatal(err)
			}
			if ok {
				if v.String() != want[i] {
					t.Fatalf("pipelined reply %d = %s, want %s", i, v.String(), want[i])
				}
				break
			}
			c.conn.SetReadDeadline(deadline)
			n, err := c.conn.Read(c.buf)
			if err != nil {
				t.Fatal(err)
			}
			c.reader.Feed(c.buf[:n])
		}
	}
}
