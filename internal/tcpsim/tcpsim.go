// Package tcpsim models the kernel TCP/IP path Redis uses by default. It is
// deliberately unflattering in exactly the ways the paper describes (§III-B):
// every message pays syscall + protocol-processing + copy CPU on both
// endpoints, plus kernel-stack traversal latency, and the receiving process
// pays an epoll wakeup on every idle→busy transition.
//
// The resulting single-core service time (~7–8µs per small SET) caps the
// original-Redis baseline near the paper's measured ≈130 kops/s (Fig 10a)
// while leaving unloaded round-trip latency in the tens of microseconds.
package tcpsim

import (
	"fmt"

	"skv/internal/fabric"
	"skv/internal/sim"
	"skv/internal/transport"
)

// Stack is a TCP endpoint instance bound to one fabric endpoint and one
// single-threaded process.
type Stack struct {
	net  *fabric.Network
	ep   *fabric.Endpoint
	proc *sim.Proc

	listeners map[int]func(transport.Conn)
	conns     map[uint64]*conn
	nextID    uint64
	dials     map[uint64]func(transport.Conn, error)
}

type segKind int

const (
	segSYN segKind = iota
	segSYNACK
	segRST
	segDATA
	segFIN
)

// segment is the fabric payload for the TCP model.
type segment struct {
	kind    segKind
	port    int
	srcConn uint64
	dstConn uint64
	data    []byte
}

// New creates a TCP stack on the endpoint, delivering to proc. The stack
// takes ownership of the endpoint's receive handler.
func New(net *fabric.Network, ep *fabric.Endpoint, proc *sim.Proc) *Stack {
	s := &Stack{
		net:       net,
		ep:        ep,
		proc:      proc,
		listeners: make(map[int]func(transport.Conn)),
		conns:     make(map[uint64]*conn),
		dials:     make(map[uint64]func(transport.Conn, error)),
	}
	ep.Handle(s.recv)
	ep.OnSendOutcome(s.sendOutcome)
	return s
}

// sendOutcome watches the fate of this stack's segments on the fabric. A
// streak of unacked sends (partitioned or down peer) spanning the TCP retry
// window errors the connection out locally, like RTO escalation ending in
// ETIMEDOUT.
func (s *Stack) sendOutcome(m fabric.Message, acked bool) {
	seg, ok := m.Payload.(segment)
	if !ok || seg.srcConn == 0 {
		return
	}
	c := s.conns[seg.srcConn]
	if c == nil || c.closed {
		return
	}
	if acked {
		c.unackedSince = -1
		return
	}
	now := s.net.Engine().Now()
	if c.unackedSince < 0 {
		c.unackedSince = now
		return
	}
	if now.Sub(c.unackedSince) >= s.net.Params().TCPRetryTimeout {
		c.closed = true
		delete(s.conns, c.id)
		delete(s.dials, c.id)
		if c.onClose != nil {
			c.owner().Post(s.net.Params().TCPRxCPU, c.onClose)
		}
	}
}

// Endpoint reports the bound fabric endpoint.
func (s *Stack) Endpoint() *fabric.Endpoint { return s.ep }

// Transport reports "tcp".
func (s *Stack) Transport() string { return "tcp" }

// Listen registers an accept callback on port.
func (s *Stack) Listen(port int, accept func(transport.Conn)) {
	if _, dup := s.listeners[port]; dup {
		panic(fmt.Sprintf("tcpsim: %s already listening on %d", s.ep.Name(), port))
	}
	s.listeners[port] = accept
}

// Dial opens a connection to remote:port. The callback fires after the
// handshake (or with an error on RST).
func (s *Stack) Dial(remote *fabric.Endpoint, port int, cb func(transport.Conn, error)) {
	s.nextID++
	id := s.nextID
	c := &conn{stack: s, id: id, peerEP: remote, unackedSince: -1}
	s.conns[id] = c
	s.dials[id] = cb
	s.sendSeg(remote, 64, segment{kind: segSYN, port: port, srcConn: id})
}

// sendSeg pushes a segment with kernel-stack latency on both sides.
func (s *Stack) sendSeg(dst *fabric.Endpoint, size int, seg segment) {
	p := s.net.Params()
	s.net.Send(s.ep, dst, size, seg, 2*p.TCPStackLatency)
}

// recv is the endpoint-level delivery path. Control segments are handled by
// the stack; data is charged to the owning process.
func (s *Stack) recv(m fabric.Message) {
	seg, ok := m.Payload.(segment)
	if !ok {
		return
	}
	p := s.net.Params()
	switch seg.kind {
	case segSYN:
		accept, listening := s.listeners[seg.port]
		if !listening {
			s.sendSeg(m.Src, 64, segment{kind: segRST, dstConn: seg.srcConn})
			return
		}
		s.nextID++
		c := &conn{stack: s, id: s.nextID, peerEP: m.Src, peerConn: seg.srcConn, established: true, unackedSince: -1}
		s.conns[c.id] = c
		s.sendSeg(m.Src, 64, segment{kind: segSYNACK, srcConn: c.id, dstConn: seg.srcConn})
		// Accept runs on the process (accept handler callback in Redis).
		s.proc.Post(p.TCPRxCPU, func() { accept(c) })
	case segSYNACK:
		c := s.conns[seg.dstConn]
		cb := s.dials[seg.dstConn]
		delete(s.dials, seg.dstConn)
		if c == nil || cb == nil {
			return
		}
		c.peerConn = seg.srcConn
		c.established = true
		s.proc.Post(p.TCPRxCPU, func() { cb(c, nil) })
	case segRST:
		cb := s.dials[seg.dstConn]
		delete(s.dials, seg.dstConn)
		delete(s.conns, seg.dstConn)
		if cb != nil {
			s.proc.Post(p.TCPRxCPU, func() { cb(nil, fmt.Errorf("tcpsim: connection refused by %s", m.Src.Name())) })
		}
	case segDATA:
		c := s.conns[seg.dstConn]
		if c == nil || c.closed {
			return
		}
		cost := p.TCPMsgCPURx(len(seg.data))
		c.owner().Post(cost, func() {
			if c.handler != nil && !c.closed {
				c.handler(seg.data)
			}
		})
	case segFIN:
		c := s.conns[seg.dstConn]
		if c == nil || c.closed {
			return
		}
		// Queue behind in-flight data so the close cannot overtake bytes
		// already delivered to the process.
		c.owner().Post(p.TCPRxCPU, func() {
			if c.closed {
				return
			}
			c.closed = true
			delete(s.conns, c.id)
			if c.onClose != nil {
				c.onClose()
			}
		})
	}
}

// conn is one TCP connection endpoint.
type conn struct {
	stack       *Stack
	id          uint64
	peerEP      *fabric.Endpoint
	peerConn    uint64
	established bool
	closed      bool
	handler     func([]byte)
	onClose     func()

	// proc, when non-nil, overrides the stack's process for data delivery
	// and per-message CPU accounting (transport.ProcAssignable) — the
	// kernel steering this connection's softirq/syscall work to the CPU
	// that owns it.
	proc *sim.Proc

	// unackedSince tracks the current streak of unacked segments
	// (-1 = last segment acked). See Stack.sendOutcome.
	unackedSince sim.Time
}

var _ transport.Conn = (*conn)(nil)
var _ transport.ProcAssignable = (*conn)(nil)

// owner is the process that delivers this connection's data and pays its
// per-message CPU costs: the assigned proc, or the stack's by default.
func (c *conn) owner() *sim.Proc {
	if c.proc != nil {
		return c.proc
	}
	return c.stack.proc
}

// AssignProc moves data delivery and per-message CPU accounting to p
// (transport.ProcAssignable). Control segments (handshake, RST) stay on the
// stack's process.
func (c *conn) AssignProc(p *sim.Proc) { c.proc = p }

// Send transmits one message: charges the kernel transmit cost on the
// owner's core; the segment departs when the core finishes its current work.
func (c *conn) Send(payload []byte) {
	if c.closed || !c.established {
		return
	}
	s := c.stack
	p := s.net.Params()
	core := c.owner().Core
	core.Charge(p.TCPMsgCPUTx(len(payload)))
	depart := core.BusyUntil().Sub(s.net.Engine().Now())
	if depart < 0 {
		depart = 0
	}
	data := append([]byte(nil), payload...)
	s.net.Send(s.ep, c.peerEP, len(data),
		segment{kind: segDATA, srcConn: c.id, dstConn: c.peerConn, data: data},
		depart+2*p.TCPStackLatency)
}

func (c *conn) SetHandler(fn func([]byte)) { c.handler = fn }
func (c *conn) SetCloseHandler(fn func())  { c.onClose = fn }

// Close tears down the connection and notifies the peer with a FIN.
func (c *conn) Close() {
	if c.closed {
		return
	}
	c.closed = true
	delete(c.stack.conns, c.id)
	c.stack.sendSeg(c.peerEP, 64, segment{kind: segFIN, dstConn: c.peerConn})
}

func (c *conn) Closed() bool      { return c.closed }
func (c *conn) LocalAddr() string { return fmt.Sprintf("%s:#%d", c.stack.ep.Name(), c.id) }
func (c *conn) RemoteAddr() string {
	return fmt.Sprintf("%s:#%d", c.peerEP.Name(), c.peerConn)
}
func (c *conn) Transport() string { return "tcp" }
