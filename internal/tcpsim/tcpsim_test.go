package tcpsim

import (
	"testing"

	"skv/internal/fabric"
	"skv/internal/model"
	"skv/internal/sim"
	"skv/internal/transport"
)

type world struct {
	eng *sim.Engine
	net *fabric.Network
	p   *model.Params
}

func newWorld() *world {
	eng := sim.New(3)
	p := model.Default()
	return &world{eng: eng, net: fabric.New(eng, &p), p: &p}
}

func (w *world) stack(name string) (*Stack, *sim.Proc) {
	m := w.net.NewMachine(name, false)
	core := sim.NewCore(w.eng, name+"0", 1.0)
	proc := sim.NewProc(w.eng, core, w.p.TCPWakeup)
	return New(w.net, m.Host, proc), proc
}

func dialPair(t *testing.T, w *world) (transport.Conn, transport.Conn) {
	t.Helper()
	sa, _ := w.stack("a")
	sb, _ := w.stack("b")
	var cliConn, srvConn transport.Conn
	sb.Listen(6379, func(c transport.Conn) { srvConn = c })
	w.eng.At(0, func() {
		sa.Dial(sb.Endpoint(), 6379, func(c transport.Conn, err error) {
			if err != nil {
				t.Errorf("dial: %v", err)
				return
			}
			cliConn = c
		})
	})
	w.eng.Run(0)
	if cliConn == nil || srvConn == nil {
		t.Fatal("handshake incomplete")
	}
	return cliConn, srvConn
}

func TestDialAndEcho(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w)
	srv.SetHandler(func(b []byte) { srv.Send(append([]byte("echo:"), b...)) })
	var got string
	cli.SetHandler(func(b []byte) { got = string(b) })
	w.eng.After(0, func() { cli.Send([]byte("ping")) })
	w.eng.Run(0)
	if got != "echo:ping" {
		t.Fatalf("got %q", got)
	}
}

func TestDialRefused(t *testing.T) {
	w := newWorld()
	sa, _ := w.stack("a")
	sb, _ := w.stack("b")
	var gotErr error
	called := false
	w.eng.At(0, func() {
		sa.Dial(sb.Endpoint(), 9999, func(c transport.Conn, err error) {
			called, gotErr = true, err
		})
	})
	w.eng.Run(0)
	if !called || gotErr == nil {
		t.Fatalf("want refusal, called=%v err=%v", called, gotErr)
	}
}

func TestMessagesChargeServerCPU(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w)
	proc := srv.(*conn).stack.proc
	before := proc.Core.BusyTime()
	count := 0
	srv.SetHandler(func(b []byte) { count++ })
	w.eng.After(0, func() {
		for i := 0; i < 100; i++ {
			cli.Send(make([]byte, 64))
		}
	})
	w.eng.Run(0)
	if count != 100 {
		t.Fatalf("delivered %d, want 100", count)
	}
	perMsg := (proc.Core.BusyTime() - before) / 100
	// Kernel RX path should cost on the order of TCPRxCPU (plus copies).
	if perMsg < w.p.TCPRxCPU || perMsg > w.p.TCPRxCPU*2 {
		t.Fatalf("per-message RX CPU = %v, want ≈%v", perMsg, w.p.TCPRxCPU)
	}
}

func TestInOrderDelivery(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w)
	var got []byte
	srv.SetHandler(func(b []byte) { got = append(got, b[0]) })
	w.eng.After(0, func() {
		// Mixed sizes: a large message first must not be overtaken.
		cli.Send(append([]byte{1}, make([]byte, 60000)...))
		cli.Send([]byte{2})
		cli.Send([]byte{3})
	})
	w.eng.Run(0)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("out of order: %v", got)
	}
}

func TestCloseNotifiesPeer(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w)
	closed := false
	srv.SetCloseHandler(func() { closed = true })
	w.eng.After(0, func() { cli.Close() })
	w.eng.Run(0)
	if !closed {
		t.Fatal("peer not notified of close")
	}
	if !cli.Closed() {
		t.Fatal("Closed() false after Close")
	}
	// Sends after close are dropped, not delivered.
	n := 0
	srv.SetHandler(func([]byte) { n++ })
	w.eng.After(0, func() { cli.Send([]byte("x")) })
	w.eng.Run(0)
	if n != 0 {
		t.Fatal("send after close delivered")
	}
}

func TestUnloadedRTTIsTensOfMicroseconds(t *testing.T) {
	w := newWorld()
	cli, srv := dialPair(t, w)
	srv.SetHandler(func(b []byte) { srv.Send(b) })
	var rtt sim.Duration
	var sent sim.Time
	cli.SetHandler(func([]byte) { rtt = w.eng.Now().Sub(sent) })
	w.eng.After(0, func() {
		sent = w.eng.Now()
		cli.Send([]byte("hello"))
	})
	w.eng.Run(0)
	if rtt < 10*sim.Microsecond || rtt > 200*sim.Microsecond {
		t.Fatalf("unloaded TCP RTT = %v, want tens of µs", rtt)
	}
}

func TestTransportNames(t *testing.T) {
	w := newWorld()
	cli, _ := dialPair(t, w)
	if cli.Transport() != "tcp" {
		t.Fatal("transport name")
	}
	if cli.LocalAddr() == "" || cli.RemoteAddr() == "" {
		t.Fatal("addrs empty")
	}
}
