// Package slots implements the hash-slot partitioning plane for the
// multi-master SKV cluster: the Redis-Cluster-compatible 16384-entry
// CRC16 slot space with `{...}` hashtag extraction, an epoch-versioned
// routing table mapping slots to replication groups (and groups to their
// current master address), and the MOVED/ASK/CROSSSLOT redirect error
// grammar the server command layer and the slot-aware clients speak.
//
// The table is deliberately simulation-friendly: it is a plain in-memory
// structure shared by reference between the cluster builder, every
// server's admission check, and the clients' refresh path — all mutations
// happen inside simulator events, so the epoch sequence is deterministic.
package slots

import (
	"fmt"
	"strconv"
	"strings"
)

// NumSlots is the size of the hash-slot space (Redis Cluster's 16384).
const NumSlots = 16384

// crc16tab is the CRC-16/XMODEM table (poly 0x1021, init 0) — the exact
// polynomial Redis Cluster uses for key→slot mapping. Generated once at
// package load; the golden vectors in slots_test.go pin it against the
// Redis reference values.
var crc16tab [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		crc16tab[i] = crc
	}
}

// CRC16 computes the CRC-16/XMODEM checksum of p.
func CRC16(p []byte) uint16 {
	var crc uint16
	for _, b := range p {
		crc = crc<<8 ^ crc16tab[byte(crc>>8)^b]
	}
	return crc
}

// HashTag extracts the slot-relevant portion of a key, following the
// Redis Cluster hashtag rules exactly: if the key contains a '{' with a
// later '}' and at least one character between them, only that substring
// is hashed — so `{user}.following` and `{user}.followers` land in the
// same slot. An empty tag (`{}`) or an unterminated brace hashes the
// whole key. Only the FIRST '{' and the FIRST '}' after it count, so
// `foo{{bar}}` hashes `{bar` and `foo{bar}{zap}` hashes `bar`.
func HashTag(key []byte) []byte {
	for s := 0; s < len(key); s++ {
		if key[s] != '{' {
			continue
		}
		for e := s + 1; e < len(key); e++ {
			if key[e] == '}' {
				if e == s+1 {
					return key // empty {}: hash the whole key
				}
				return key[s+1 : e]
			}
		}
		return key // no closing brace
	}
	return key
}

// Slot maps a key to its hash slot.
func Slot(key []byte) int {
	return int(CRC16(HashTag(key))) % NumSlots
}

// Range is a contiguous run of slots owned by one replication group.
// Start and End are inclusive, matching CLUSTER SLOTS conventions.
type Range struct {
	Start, End, Group int
}

// EvenSplit partitions the slot space into n contiguous ranges, one per
// group, as evenly as possible (the first NumSlots%n groups get one extra
// slot) — the default assignment the cluster builder installs.
func EvenSplit(n int) []Range {
	if n < 1 {
		n = 1
	}
	per, extra := NumSlots/n, NumSlots%n
	ranges := make([]Range, 0, n)
	start := 0
	for g := 0; g < n; g++ {
		size := per
		if g < extra {
			size++
		}
		ranges = append(ranges, Range{Start: start, End: start + size - 1, Group: g})
		start += size
	}
	return ranges
}

// ValidateRanges checks that ranges cover every slot exactly once and
// reference only groups < n.
func ValidateRanges(ranges []Range, n int) error {
	covered := make([]bool, NumSlots)
	for _, r := range ranges {
		if r.Start < 0 || r.End >= NumSlots || r.Start > r.End {
			return fmt.Errorf("slots: invalid range [%d,%d]", r.Start, r.End)
		}
		if r.Group < 0 || r.Group >= n {
			return fmt.Errorf("slots: range [%d,%d] names group %d, have %d groups", r.Start, r.End, r.Group, n)
		}
		for s := r.Start; s <= r.End; s++ {
			if covered[s] {
				return fmt.Errorf("slots: slot %d assigned twice", s)
			}
			covered[s] = true
		}
	}
	for s, ok := range covered {
		if !ok {
			return fmt.Errorf("slots: slot %d unassigned", s)
		}
	}
	return nil
}

// Map is the epoch-versioned routing table: which replication group owns
// each slot, and each group's current master address. Every topology
// mutation (slot reassignment, failover promotion, master restore) bumps
// the epoch, so stale client copies are detectable by comparison — the
// cluster analog of Redis Cluster's configEpoch.
type Map struct {
	epoch  uint64
	owner  []uint16
	addrs  []string
	counts []int // slots owned per group, maintained across Assign
	// migrating/importing hold per-slot live-migration marks: the value is
	// group+1 (0 = no mark) so the zero value means "stable". A slot being
	// resharded is MIGRATING at its current owner (value = target group) and
	// IMPORTING at the target (value = source group) for the duration of the
	// key move; the final Assign flip clears both marks.
	migrating []uint16
	importing []uint16
}

// NewMap builds a routing table over n groups with the given slot
// assignment (nil = EvenSplit) and per-group master addresses
// (len(addrs) == n). The initial epoch is 1.
func NewMap(n int, ranges []Range, addrs []string) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("slots: need at least 1 group")
	}
	if len(addrs) != n {
		return nil, fmt.Errorf("slots: %d addresses for %d groups", len(addrs), n)
	}
	if ranges == nil {
		ranges = EvenSplit(n)
	}
	if err := ValidateRanges(ranges, n); err != nil {
		return nil, err
	}
	m := &Map{
		epoch:     1,
		owner:     make([]uint16, NumSlots),
		addrs:     append([]string(nil), addrs...),
		counts:    make([]int, n),
		migrating: make([]uint16, NumSlots),
		importing: make([]uint16, NumSlots),
	}
	for _, r := range ranges {
		for s := r.Start; s <= r.End; s++ {
			m.owner[s] = uint16(r.Group)
		}
		m.counts[r.Group] += r.End - r.Start + 1
	}
	return m, nil
}

// Groups reports the number of replication groups.
func (m *Map) Groups() int { return len(m.addrs) }

// Epoch reports the current configuration epoch. Epochs only ever
// increase (monotonicity is a tested invariant): a client whose cached
// epoch matches holds the current topology.
func (m *Map) Epoch() uint64 { return m.epoch }

// Owner reports the group owning a slot.
func (m *Map) Owner(slot int) int { return int(m.owner[slot]) }

// Count reports how many slots a group currently owns.
func (m *Map) Count(group int) int { return m.counts[group] }

// Addr reports a group's current master address.
func (m *Map) Addr(group int) string { return m.addrs[group] }

// SetAddr installs a new master address for a group (failover promotion
// or master restore) and bumps the epoch. A no-op address change still
// bumps: the caller observed a topology event.
func (m *Map) SetAddr(group int, addr string) {
	m.addrs[group] = addr
	m.epoch++
}

// AssignError reports an Assign call that named slots or groups outside
// the table. The owner table is left untouched: silently clamping (or
// worse, writing through an out-of-range index) would corrupt the
// per-group slot counts that CLUSTER INFO and the rebalancer rely on.
type AssignError struct {
	Start, End, Group, Groups int
}

func (e *AssignError) Error() string {
	return fmt.Sprintf("slots: invalid assignment [%d,%d]→group %d (have %d groups, %d slots)",
		e.Start, e.End, e.Group, e.Groups, NumSlots)
}

// Assign transfers a slot range to a group, clears any live-migration
// marks on the moved slots, and bumps the epoch — the atomic ownership
// flip that ends a slot migration (subsequent traffic at the old owner
// becomes MOVED). Returns an *AssignError, with no table mutation, when
// the range is inverted or names a slot or group outside the table.
func (m *Map) Assign(start, end, group int) error {
	if start < 0 || end >= NumSlots || start > end || group < 0 || group >= len(m.addrs) {
		return &AssignError{Start: start, End: end, Group: group, Groups: len(m.addrs)}
	}
	for s := start; s <= end; s++ {
		m.counts[m.owner[s]]--
		m.owner[s] = uint16(group)
		m.counts[group]++
		m.migrating[s] = 0
		m.importing[s] = 0
	}
	m.epoch++
	return nil
}

// SetMigrating marks a slot as migrating toward a target group: the
// current owner keeps serving keys still present but answers ASK for
// absent ones. The mark is epoch-bumped like every topology mutation.
func (m *Map) SetMigrating(slot, target int) error {
	if slot < 0 || slot >= NumSlots || target < 0 || target >= len(m.addrs) {
		return &AssignError{Start: slot, End: slot, Group: target, Groups: len(m.addrs)}
	}
	m.migrating[slot] = uint16(target) + 1
	m.epoch++
	return nil
}

// SetImporting marks a slot as importing from a source group: the target
// admits ASKING-prefixed commands for the slot even though it does not
// own it yet.
func (m *Map) SetImporting(slot, source int) error {
	if slot < 0 || slot >= NumSlots || source < 0 || source >= len(m.addrs) {
		return &AssignError{Start: slot, End: slot, Group: source, Groups: len(m.addrs)}
	}
	m.importing[slot] = uint16(source) + 1
	m.epoch++
	return nil
}

// ClearMigration removes both migration marks from a slot (SETSLOT
// STABLE — aborting a migration without moving ownership).
func (m *Map) ClearMigration(slot int) {
	if slot < 0 || slot >= NumSlots {
		return
	}
	if m.migrating[slot] == 0 && m.importing[slot] == 0 {
		return
	}
	m.migrating[slot] = 0
	m.importing[slot] = 0
	m.epoch++
}

// Migrating reports the target group a slot is migrating to, if any.
func (m *Map) Migrating(slot int) (target int, ok bool) {
	if v := m.migrating[slot]; v != 0 {
		return int(v) - 1, true
	}
	return 0, false
}

// Importing reports the source group a slot is importing from, if any.
func (m *Map) Importing(slot int) (source int, ok bool) {
	if v := m.importing[slot]; v != 0 {
		return int(v) - 1, true
	}
	return 0, false
}

// Ranges renders the table as contiguous (start, end, group) runs in slot
// order — the CLUSTER SLOTS payload.
func (m *Map) Ranges() []Range {
	var out []Range
	for s := 0; s < NumSlots; {
		g := m.owner[s]
		e := s
		for e+1 < NumSlots && m.owner[e+1] == g {
			e++
		}
		out = append(out, Range{Start: s, End: e, Group: int(g)})
		s = e + 1
	}
	return out
}

// CopyInto refreshes a client-side copy of the table (owner slice,
// address slice) and returns the epoch the copy corresponds to. The
// destination slices must have the map's dimensions.
func (m *Map) CopyInto(owner []uint16, addrs []string) uint64 {
	copy(owner, m.owner)
	copy(addrs, m.addrs)
	return m.epoch
}

// ---- redirect error grammar ---------------------------------------------

// CrossSlotMessage is the error a multi-key command spanning slots gets —
// cross-group fan-out is the client's job, mirroring Redis Cluster.
const CrossSlotMessage = "CROSSSLOT Keys in request don't hash to the same slot"

// MovedMessage formats a MOVED redirect: the slot's owner is (stably)
// another group, reachable at addr:port.
func MovedMessage(slot int, addr string, port int) string {
	return fmt.Sprintf("MOVED %d %s:%d", slot, addr, port)
}

// AskMessage formats an ASK redirect: the key's slot is mid-migration and
// this key has already moved (or never existed here) — retry once at the
// target, prefixed with ASKING, without refreshing the routing table.
func AskMessage(slot int, addr string, port int) string {
	return fmt.Sprintf("ASK %d %s:%d", slot, addr, port)
}

// TryAgainMessage is the error a multi-key command gets when its keys are
// split across the two sides of a migrating slot — some already moved,
// some still at the source. The client retries the whole command shortly;
// the split is transient by construction (the mover drains the slot).
const TryAgainMessage = "TRYAGAIN Multiple keys request during rehashing of slot"

// RedirectKind distinguishes the two redirect verbs a cluster node emits.
type RedirectKind int

const (
	// RedirectNone: the message is not a redirect.
	RedirectNone RedirectKind = iota
	// RedirectMoved: permanent — the client should refresh its map.
	RedirectMoved
	// RedirectAsk: one-shot during migration — retry at the target with
	// ASKING, do NOT refresh the map (ownership has not changed yet).
	RedirectAsk
)

// ParseRedirect decodes a MOVED or ASK error message into its slot and
// target address. ok is false for any other error text.
func ParseRedirect(msg string) (slot int, addr string, port int, ok bool) {
	kind, slot, addr, port := ParseRedirectKind(msg)
	return slot, addr, port, kind != RedirectNone
}

// ParseRedirectKind decodes a redirect error message, additionally
// reporting which verb it carried — clients treat MOVED (refresh the map)
// and ASK (one-shot, no refresh) differently. Malformed payloads (missing
// or out-of-range slot, missing host or port, non-numeric or non-positive
// port, trailing tokens) all return RedirectNone.
func ParseRedirectKind(msg string) (kind RedirectKind, slot int, addr string, port int) {
	var rest string
	switch {
	case strings.HasPrefix(msg, "MOVED "):
		kind, rest = RedirectMoved, msg[len("MOVED "):]
	case strings.HasPrefix(msg, "ASK "):
		kind, rest = RedirectAsk, msg[len("ASK "):]
	default:
		return RedirectNone, 0, "", 0
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return RedirectNone, 0, "", 0
	}
	slot, err := strconv.Atoi(rest[:sp])
	if err != nil || slot < 0 || slot >= NumSlots {
		return RedirectNone, 0, "", 0
	}
	target := rest[sp+1:]
	colon := strings.LastIndexByte(target, ':')
	if colon <= 0 {
		return RedirectNone, 0, "", 0
	}
	port, err = strconv.Atoi(target[colon+1:])
	if err != nil || port <= 0 || port > 65535 {
		return RedirectNone, 0, "", 0
	}
	return kind, slot, target[:colon], port
}
