// Package slots implements the hash-slot partitioning plane for the
// multi-master SKV cluster: the Redis-Cluster-compatible 16384-entry
// CRC16 slot space with `{...}` hashtag extraction, an epoch-versioned
// routing table mapping slots to replication groups (and groups to their
// current master address), and the MOVED/ASK/CROSSSLOT redirect error
// grammar the server command layer and the slot-aware clients speak.
//
// The table is deliberately simulation-friendly: it is a plain in-memory
// structure shared by reference between the cluster builder, every
// server's admission check, and the clients' refresh path — all mutations
// happen inside simulator events, so the epoch sequence is deterministic.
package slots

import (
	"fmt"
	"strconv"
	"strings"
)

// NumSlots is the size of the hash-slot space (Redis Cluster's 16384).
const NumSlots = 16384

// crc16tab is the CRC-16/XMODEM table (poly 0x1021, init 0) — the exact
// polynomial Redis Cluster uses for key→slot mapping. Generated once at
// package load; the golden vectors in slots_test.go pin it against the
// Redis reference values.
var crc16tab [256]uint16

func init() {
	for i := 0; i < 256; i++ {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		crc16tab[i] = crc
	}
}

// CRC16 computes the CRC-16/XMODEM checksum of p.
func CRC16(p []byte) uint16 {
	var crc uint16
	for _, b := range p {
		crc = crc<<8 ^ crc16tab[byte(crc>>8)^b]
	}
	return crc
}

// HashTag extracts the slot-relevant portion of a key, following the
// Redis Cluster hashtag rules exactly: if the key contains a '{' with a
// later '}' and at least one character between them, only that substring
// is hashed — so `{user}.following` and `{user}.followers` land in the
// same slot. An empty tag (`{}`) or an unterminated brace hashes the
// whole key. Only the FIRST '{' and the FIRST '}' after it count, so
// `foo{{bar}}` hashes `{bar` and `foo{bar}{zap}` hashes `bar`.
func HashTag(key []byte) []byte {
	for s := 0; s < len(key); s++ {
		if key[s] != '{' {
			continue
		}
		for e := s + 1; e < len(key); e++ {
			if key[e] == '}' {
				if e == s+1 {
					return key // empty {}: hash the whole key
				}
				return key[s+1 : e]
			}
		}
		return key // no closing brace
	}
	return key
}

// Slot maps a key to its hash slot.
func Slot(key []byte) int {
	return int(CRC16(HashTag(key))) % NumSlots
}

// Range is a contiguous run of slots owned by one replication group.
// Start and End are inclusive, matching CLUSTER SLOTS conventions.
type Range struct {
	Start, End, Group int
}

// EvenSplit partitions the slot space into n contiguous ranges, one per
// group, as evenly as possible (the first NumSlots%n groups get one extra
// slot) — the default assignment the cluster builder installs.
func EvenSplit(n int) []Range {
	if n < 1 {
		n = 1
	}
	per, extra := NumSlots/n, NumSlots%n
	ranges := make([]Range, 0, n)
	start := 0
	for g := 0; g < n; g++ {
		size := per
		if g < extra {
			size++
		}
		ranges = append(ranges, Range{Start: start, End: start + size - 1, Group: g})
		start += size
	}
	return ranges
}

// ValidateRanges checks that ranges cover every slot exactly once and
// reference only groups < n.
func ValidateRanges(ranges []Range, n int) error {
	covered := make([]bool, NumSlots)
	for _, r := range ranges {
		if r.Start < 0 || r.End >= NumSlots || r.Start > r.End {
			return fmt.Errorf("slots: invalid range [%d,%d]", r.Start, r.End)
		}
		if r.Group < 0 || r.Group >= n {
			return fmt.Errorf("slots: range [%d,%d] names group %d, have %d groups", r.Start, r.End, r.Group, n)
		}
		for s := r.Start; s <= r.End; s++ {
			if covered[s] {
				return fmt.Errorf("slots: slot %d assigned twice", s)
			}
			covered[s] = true
		}
	}
	for s, ok := range covered {
		if !ok {
			return fmt.Errorf("slots: slot %d unassigned", s)
		}
	}
	return nil
}

// Map is the epoch-versioned routing table: which replication group owns
// each slot, and each group's current master address. Every topology
// mutation (slot reassignment, failover promotion, master restore) bumps
// the epoch, so stale client copies are detectable by comparison — the
// cluster analog of Redis Cluster's configEpoch.
type Map struct {
	epoch  uint64
	owner  []uint16
	addrs  []string
	counts []int // slots owned per group, maintained across Assign
}

// NewMap builds a routing table over n groups with the given slot
// assignment (nil = EvenSplit) and per-group master addresses
// (len(addrs) == n). The initial epoch is 1.
func NewMap(n int, ranges []Range, addrs []string) (*Map, error) {
	if n < 1 {
		return nil, fmt.Errorf("slots: need at least 1 group")
	}
	if len(addrs) != n {
		return nil, fmt.Errorf("slots: %d addresses for %d groups", len(addrs), n)
	}
	if ranges == nil {
		ranges = EvenSplit(n)
	}
	if err := ValidateRanges(ranges, n); err != nil {
		return nil, err
	}
	m := &Map{
		epoch:  1,
		owner:  make([]uint16, NumSlots),
		addrs:  append([]string(nil), addrs...),
		counts: make([]int, n),
	}
	for _, r := range ranges {
		for s := r.Start; s <= r.End; s++ {
			m.owner[s] = uint16(r.Group)
		}
		m.counts[r.Group] += r.End - r.Start + 1
	}
	return m, nil
}

// Groups reports the number of replication groups.
func (m *Map) Groups() int { return len(m.addrs) }

// Epoch reports the current configuration epoch. Epochs only ever
// increase (monotonicity is a tested invariant): a client whose cached
// epoch matches holds the current topology.
func (m *Map) Epoch() uint64 { return m.epoch }

// Owner reports the group owning a slot.
func (m *Map) Owner(slot int) int { return int(m.owner[slot]) }

// Count reports how many slots a group currently owns.
func (m *Map) Count(group int) int { return m.counts[group] }

// Addr reports a group's current master address.
func (m *Map) Addr(group int) string { return m.addrs[group] }

// SetAddr installs a new master address for a group (failover promotion
// or master restore) and bumps the epoch. A no-op address change still
// bumps: the caller observed a topology event.
func (m *Map) SetAddr(group int, addr string) {
	m.addrs[group] = addr
	m.epoch++
}

// Assign transfers a slot range to a group and bumps the epoch
// (resharding; unused by the even-split default but part of the table's
// contract).
func (m *Map) Assign(start, end, group int) {
	for s := start; s <= end; s++ {
		m.counts[m.owner[s]]--
		m.owner[s] = uint16(group)
		m.counts[group]++
	}
	m.epoch++
}

// Ranges renders the table as contiguous (start, end, group) runs in slot
// order — the CLUSTER SLOTS payload.
func (m *Map) Ranges() []Range {
	var out []Range
	for s := 0; s < NumSlots; {
		g := m.owner[s]
		e := s
		for e+1 < NumSlots && m.owner[e+1] == g {
			e++
		}
		out = append(out, Range{Start: s, End: e, Group: int(g)})
		s = e + 1
	}
	return out
}

// CopyInto refreshes a client-side copy of the table (owner slice,
// address slice) and returns the epoch the copy corresponds to. The
// destination slices must have the map's dimensions.
func (m *Map) CopyInto(owner []uint16, addrs []string) uint64 {
	copy(owner, m.owner)
	copy(addrs, m.addrs)
	return m.epoch
}

// ---- redirect error grammar ---------------------------------------------

// CrossSlotMessage is the error a multi-key command spanning slots gets —
// cross-group fan-out is the client's job, mirroring Redis Cluster.
const CrossSlotMessage = "CROSSSLOT Keys in request don't hash to the same slot"

// MovedMessage formats a MOVED redirect: the slot's owner is (stably)
// another group, reachable at addr:port.
func MovedMessage(slot int, addr string, port int) string {
	return fmt.Sprintf("MOVED %d %s:%d", slot, addr, port)
}

// AskMessage formats an ASK redirect (one-shot redirect during slot
// migration; reserved — the simulated cluster does not migrate slots live
// yet, but clients already parse it).
func AskMessage(slot int, addr string, port int) string {
	return fmt.Sprintf("ASK %d %s:%d", slot, addr, port)
}

// ParseRedirect decodes a MOVED or ASK error message into its slot and
// target address. ok is false for any other error text.
func ParseRedirect(msg string) (slot int, addr string, port int, ok bool) {
	var rest string
	switch {
	case strings.HasPrefix(msg, "MOVED "):
		rest = msg[len("MOVED "):]
	case strings.HasPrefix(msg, "ASK "):
		rest = msg[len("ASK "):]
	default:
		return 0, "", 0, false
	}
	sp := strings.IndexByte(rest, ' ')
	if sp < 0 {
		return 0, "", 0, false
	}
	slot, err := strconv.Atoi(rest[:sp])
	if err != nil || slot < 0 || slot >= NumSlots {
		return 0, "", 0, false
	}
	target := rest[sp+1:]
	colon := strings.LastIndexByte(target, ':')
	if colon <= 0 {
		return 0, "", 0, false
	}
	port, err = strconv.Atoi(target[colon+1:])
	if err != nil {
		return 0, "", 0, false
	}
	return slot, target[:colon], port, true
}
