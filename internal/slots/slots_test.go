package slots

import (
	"fmt"
	"testing"
)

// TestCRC16GoldenVectors pins the table against the CRC-16/XMODEM
// reference values Redis Cluster uses (the "123456789" check value plus
// slot numbers published in the Redis Cluster spec).
func TestCRC16GoldenVectors(t *testing.T) {
	if got := CRC16([]byte("123456789")); got != 0x31C3 {
		t.Fatalf("CRC16(123456789) = %#04x, want 0x31C3", got)
	}
	if got := CRC16(nil); got != 0 {
		t.Fatalf("CRC16(empty) = %#04x, want 0", got)
	}
	// Slot values from the Redis Cluster specification.
	cases := map[string]int{
		"foo":   12182,
		"bar":   5061,
		"hello": 866,
	}
	for key, want := range cases {
		if got := Slot([]byte(key)); got != want {
			t.Fatalf("Slot(%q) = %d, want %d", key, got, want)
		}
	}
}

// TestHashTagExtraction covers the exact Redis hashtag edge cases: plain
// tags, empty {}, unterminated braces, nested braces, and multiple tags.
func TestHashTagExtraction(t *testing.T) {
	cases := []struct{ key, tag string }{
		{"{user1000}.following", "user1000"},
		{"{user1000}.followers", "user1000"},
		{"foo{}{bar}", "foo{}{bar}"}, // first {} is empty: whole key
		{"foo{{bar}}zap", "{bar"},    // first { ... first }: "{bar"
		{"foo{bar}{zap}", "bar"},     // only the first tag counts
		{"{}", "{}"},                 // empty tag: whole key
		{"{abc", "{abc"},             // unterminated: whole key
		{"no-braces", "no-braces"},
		{"", ""},
		{"}{x}", "x"}, // '}' before any '{' is ignored
	}
	for _, c := range cases {
		if got := string(HashTag([]byte(c.key))); got != c.tag {
			t.Fatalf("HashTag(%q) = %q, want %q", c.key, got, c.tag)
		}
	}
	// Same tag ⇒ same slot, and it equals the bare tag's slot.
	if Slot([]byte("{user1000}.following")) != Slot([]byte("{user1000}.followers")) {
		t.Fatal("hashtag keys did not co-locate")
	}
	if Slot([]byte("{user1000}.following")) != Slot([]byte("user1000")) {
		t.Fatal("hashtag slot differs from the bare tag's slot")
	}
}

// TestEvenSplitCoversEverySlot: the default assignment covers the slot
// space exactly once for every group count the bench sweeps.
func TestEvenSplitCoversEverySlot(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		ranges := EvenSplit(n)
		if len(ranges) != n {
			t.Fatalf("EvenSplit(%d) produced %d ranges", n, len(ranges))
		}
		if err := ValidateRanges(ranges, n); err != nil {
			t.Fatalf("EvenSplit(%d): %v", n, err)
		}
	}
}

// TestValidateRangesRejectsBadMaps: gaps, overlaps, out-of-space and
// out-of-group ranges are all configuration errors.
func TestValidateRangesRejectsBadMaps(t *testing.T) {
	bad := [][]Range{
		{{Start: 0, End: NumSlots - 2, Group: 0}},                               // gap
		{{Start: 0, End: NumSlots - 1, Group: 0}, {Start: 5, End: 5, Group: 1}}, // overlap
		{{Start: 0, End: NumSlots, Group: 0}},                                   // out of space
		{{Start: 0, End: NumSlots - 1, Group: 2}},                               // unknown group
		{{Start: 10, End: 5, Group: 0}},                                         // inverted
	}
	for i, ranges := range bad {
		if err := ValidateRanges(ranges, 2); err == nil {
			t.Fatalf("case %d: bad ranges validated", i)
		}
	}
}

// TestMapEpochMonotonicity: every topology mutation bumps the epoch, it
// never goes backwards, and CopyInto reports the epoch its copy matches —
// the invariant the clients' staleness detection rides on across
// failovers (promote bumps, restore bumps again).
func TestMapEpochMonotonicity(t *testing.T) {
	m, err := NewMap(2, nil, []string{"g0.master", "g1.master"})
	if err != nil {
		t.Fatal(err)
	}
	last := m.Epoch()
	if last == 0 {
		t.Fatal("initial epoch must be nonzero")
	}
	bump := func(label string, do func()) {
		do()
		if m.Epoch() <= last {
			t.Fatalf("%s: epoch %d did not advance past %d", label, m.Epoch(), last)
		}
		last = m.Epoch()
	}
	bump("promote", func() { m.SetAddr(1, "g1.slave0") }) // failover promotion
	bump("restore", func() { m.SetAddr(1, "g1.master") }) // master restore
	bump("re-promote", func() { m.SetAddr(1, "g1.slave1") })
	bump("reshard", func() { m.Assign(0, 10, 1) })

	owner := make([]uint16, NumSlots)
	addrs := make([]string, m.Groups())
	if got := m.CopyInto(owner, addrs); got != last {
		t.Fatalf("CopyInto epoch %d, want %d", got, last)
	}
	if addrs[1] != "g1.slave1" || int(owner[5]) != 1 {
		t.Fatalf("copy diverged: addrs=%v owner[5]=%d", addrs, owner[5])
	}
}

// TestMapOwnerAndRanges: the slot→group mapping matches the installed
// ranges and Ranges() reconstructs contiguous runs.
func TestMapOwnerAndRanges(t *testing.T) {
	m, err := NewMap(3, nil, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range EvenSplit(3) {
		if m.Owner(r.Start) != r.Group || m.Owner(r.End) != r.Group {
			t.Fatalf("range %+v not honored", r)
		}
	}
	rs := m.Ranges()
	if err := ValidateRanges(rs, 3); err != nil {
		t.Fatalf("Ranges() inconsistent: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("expected 3 contiguous runs, got %d: %v", len(rs), rs)
	}
}

// TestRedirectGrammar: MOVED/ASK round-trip through ParseRedirect, and
// non-redirect errors do not parse.
func TestRedirectGrammar(t *testing.T) {
	msg := MovedMessage(12182, "g1.master", 6379)
	if msg != "MOVED 12182 g1.master:6379" {
		t.Fatalf("MovedMessage = %q", msg)
	}
	slot, addr, port, ok := ParseRedirect(msg)
	if !ok || slot != 12182 || addr != "g1.master" || port != 6379 {
		t.Fatalf("ParseRedirect(%q) = %d %q %d %t", msg, slot, addr, port, ok)
	}
	slot, addr, port, ok = ParseRedirect(AskMessage(7, "x", 6380))
	if !ok || slot != 7 || addr != "x" || port != 6380 {
		t.Fatalf("ASK parse = %d %q %d %t", slot, addr, port, ok)
	}
	for _, bad := range []string{
		"ERR something else",
		"MOVED",
		"MOVED x y:1",
		fmt.Sprintf("MOVED %d noport", 5),
		fmt.Sprintf("MOVED %d :", NumSlots+5),
	} {
		if _, _, _, ok := ParseRedirect(bad); ok {
			t.Fatalf("ParseRedirect(%q) accepted garbage", bad)
		}
	}
}
