package slots

import (
	"fmt"
	"testing"
)

// TestCRC16GoldenVectors pins the table against the CRC-16/XMODEM
// reference values Redis Cluster uses (the "123456789" check value plus
// slot numbers published in the Redis Cluster spec).
func TestCRC16GoldenVectors(t *testing.T) {
	if got := CRC16([]byte("123456789")); got != 0x31C3 {
		t.Fatalf("CRC16(123456789) = %#04x, want 0x31C3", got)
	}
	if got := CRC16(nil); got != 0 {
		t.Fatalf("CRC16(empty) = %#04x, want 0", got)
	}
	// Slot values from the Redis Cluster specification.
	cases := map[string]int{
		"foo":   12182,
		"bar":   5061,
		"hello": 866,
	}
	for key, want := range cases {
		if got := Slot([]byte(key)); got != want {
			t.Fatalf("Slot(%q) = %d, want %d", key, got, want)
		}
	}
}

// TestHashTagExtraction covers the exact Redis hashtag edge cases: plain
// tags, empty {}, unterminated braces, nested braces, and multiple tags.
func TestHashTagExtraction(t *testing.T) {
	cases := []struct{ key, tag string }{
		{"{user1000}.following", "user1000"},
		{"{user1000}.followers", "user1000"},
		{"foo{}{bar}", "foo{}{bar}"}, // first {} is empty: whole key
		{"foo{{bar}}zap", "{bar"},    // first { ... first }: "{bar"
		{"foo{bar}{zap}", "bar"},     // only the first tag counts
		{"{}", "{}"},                 // empty tag: whole key
		{"{abc", "{abc"},             // unterminated: whole key
		{"no-braces", "no-braces"},
		{"", ""},
		{"}{x}", "x"}, // '}' before any '{' is ignored
	}
	for _, c := range cases {
		if got := string(HashTag([]byte(c.key))); got != c.tag {
			t.Fatalf("HashTag(%q) = %q, want %q", c.key, got, c.tag)
		}
	}
	// Same tag ⇒ same slot, and it equals the bare tag's slot.
	if Slot([]byte("{user1000}.following")) != Slot([]byte("{user1000}.followers")) {
		t.Fatal("hashtag keys did not co-locate")
	}
	if Slot([]byte("{user1000}.following")) != Slot([]byte("user1000")) {
		t.Fatal("hashtag slot differs from the bare tag's slot")
	}
}

// TestEvenSplitCoversEverySlot: the default assignment covers the slot
// space exactly once for every group count the bench sweeps.
func TestEvenSplitCoversEverySlot(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		ranges := EvenSplit(n)
		if len(ranges) != n {
			t.Fatalf("EvenSplit(%d) produced %d ranges", n, len(ranges))
		}
		if err := ValidateRanges(ranges, n); err != nil {
			t.Fatalf("EvenSplit(%d): %v", n, err)
		}
	}
}

// TestValidateRangesRejectsBadMaps: gaps, overlaps, out-of-space and
// out-of-group ranges are all configuration errors.
func TestValidateRangesRejectsBadMaps(t *testing.T) {
	bad := [][]Range{
		{{Start: 0, End: NumSlots - 2, Group: 0}},                               // gap
		{{Start: 0, End: NumSlots - 1, Group: 0}, {Start: 5, End: 5, Group: 1}}, // overlap
		{{Start: 0, End: NumSlots, Group: 0}},                                   // out of space
		{{Start: 0, End: NumSlots - 1, Group: 2}},                               // unknown group
		{{Start: 10, End: 5, Group: 0}},                                         // inverted
	}
	for i, ranges := range bad {
		if err := ValidateRanges(ranges, 2); err == nil {
			t.Fatalf("case %d: bad ranges validated", i)
		}
	}
}

// TestMapEpochMonotonicity: every topology mutation bumps the epoch, it
// never goes backwards, and CopyInto reports the epoch its copy matches —
// the invariant the clients' staleness detection rides on across
// failovers (promote bumps, restore bumps again).
func TestMapEpochMonotonicity(t *testing.T) {
	m, err := NewMap(2, nil, []string{"g0.master", "g1.master"})
	if err != nil {
		t.Fatal(err)
	}
	last := m.Epoch()
	if last == 0 {
		t.Fatal("initial epoch must be nonzero")
	}
	bump := func(label string, do func()) {
		do()
		if m.Epoch() <= last {
			t.Fatalf("%s: epoch %d did not advance past %d", label, m.Epoch(), last)
		}
		last = m.Epoch()
	}
	bump("promote", func() { m.SetAddr(1, "g1.slave0") }) // failover promotion
	bump("restore", func() { m.SetAddr(1, "g1.master") }) // master restore
	bump("re-promote", func() { m.SetAddr(1, "g1.slave1") })
	bump("reshard", func() {
		if err := m.Assign(0, 10, 1); err != nil {
			t.Fatalf("Assign: %v", err)
		}
	})
	bump("migrating", func() {
		if err := m.SetMigrating(20, 1); err != nil {
			t.Fatalf("SetMigrating: %v", err)
		}
	})
	bump("importing", func() {
		if err := m.SetImporting(20, 0); err != nil {
			t.Fatalf("SetImporting: %v", err)
		}
	})
	bump("stable", func() { m.ClearMigration(20) })

	owner := make([]uint16, NumSlots)
	addrs := make([]string, m.Groups())
	if got := m.CopyInto(owner, addrs); got != last {
		t.Fatalf("CopyInto epoch %d, want %d", got, last)
	}
	if addrs[1] != "g1.slave1" || int(owner[5]) != 1 {
		t.Fatalf("copy diverged: addrs=%v owner[5]=%d", addrs, owner[5])
	}
}

// TestMapOwnerAndRanges: the slot→group mapping matches the installed
// ranges and Ranges() reconstructs contiguous runs.
func TestMapOwnerAndRanges(t *testing.T) {
	m, err := NewMap(3, nil, []string{"a", "b", "c"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range EvenSplit(3) {
		if m.Owner(r.Start) != r.Group || m.Owner(r.End) != r.Group {
			t.Fatalf("range %+v not honored", r)
		}
	}
	rs := m.Ranges()
	if err := ValidateRanges(rs, 3); err != nil {
		t.Fatalf("Ranges() inconsistent: %v", err)
	}
	if len(rs) != 3 {
		t.Fatalf("expected 3 contiguous runs, got %d: %v", len(rs), rs)
	}
}

// TestAssignValidation: out-of-range slots, unknown groups and inverted
// ranges are rejected with a typed error and leave the table untouched —
// Assign used to write through whatever indexes it was handed.
func TestAssignValidation(t *testing.T) {
	m, err := NewMap(2, nil, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	epoch, c0, c1 := m.Epoch(), m.Count(0), m.Count(1)
	cases := []struct {
		name              string
		start, end, group int
	}{
		{"negative start", -1, 5, 0},
		{"end past space", 0, NumSlots, 0},
		{"start past space", NumSlots, NumSlots + 1, 0},
		{"inverted range", 10, 5, 0},
		{"negative group", 0, 5, -1},
		{"unknown group", 0, 5, 2},
		{"huge group", 0, 5, 1 << 20},
	}
	for _, c := range cases {
		err := m.Assign(c.start, c.end, c.group)
		if err == nil {
			t.Fatalf("%s: Assign(%d,%d,%d) accepted", c.name, c.start, c.end, c.group)
		}
		var ae *AssignError
		if !errorsAs(err, &ae) {
			t.Fatalf("%s: error %T is not *AssignError", c.name, err)
		}
		if m.Epoch() != epoch || m.Count(0) != c0 || m.Count(1) != c1 {
			t.Fatalf("%s: rejected Assign mutated the table", c.name)
		}
	}
	// The happy path still works and maintains the counts.
	if err := m.Assign(0, 99, 1); err != nil {
		t.Fatalf("valid Assign: %v", err)
	}
	if m.Count(0) != c0-100 || m.Count(1) != c1+100 {
		t.Fatalf("counts after Assign: %d/%d", m.Count(0), m.Count(1))
	}
	// SetMigrating/SetImporting validate the same way.
	if err := m.SetMigrating(NumSlots, 0); err == nil {
		t.Fatal("SetMigrating accepted an out-of-range slot")
	}
	if err := m.SetImporting(0, 2); err == nil {
		t.Fatal("SetImporting accepted an unknown group")
	}
}

// errorsAs is errors.As for the one target type the tests need (keeps the
// package's import list tiny).
func errorsAs(err error, target **AssignError) bool {
	ae, ok := err.(*AssignError)
	if ok {
		*target = ae
	}
	return ok
}

// TestMigrationMarks: the marks are per-slot, independent, cleared by the
// ownership flip, and invisible on untouched slots.
func TestMigrationMarks(t *testing.T) {
	m, err := NewMap(2, nil, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Migrating(5); ok {
		t.Fatal("fresh map reports a migrating slot")
	}
	if err := m.SetMigrating(5, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.SetImporting(5, 0); err != nil {
		t.Fatal(err)
	}
	if g, ok := m.Migrating(5); !ok || g != 1 {
		t.Fatalf("Migrating(5) = %d,%t", g, ok)
	}
	if g, ok := m.Importing(5); !ok || g != 0 {
		t.Fatalf("Importing(5) = %d,%t", g, ok)
	}
	if _, ok := m.Migrating(6); ok {
		t.Fatal("mark leaked to a neighboring slot")
	}
	// The flip clears both marks on the moved slots.
	if err := m.Assign(5, 5, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := m.Migrating(5); ok {
		t.Fatal("Assign left the migrating mark")
	}
	if _, ok := m.Importing(5); ok {
		t.Fatal("Assign left the importing mark")
	}
	// ClearMigration on a stable slot is a no-op (no epoch bump).
	e := m.Epoch()
	m.ClearMigration(7)
	if m.Epoch() != e {
		t.Fatal("ClearMigration bumped the epoch on a stable slot")
	}
}

// TestFragmentedRangesRoundTrip: after migrations a group legitimately
// owns non-contiguous runs; Ranges() must render each run exactly once,
// in slot order, and the result must survive ValidateRanges and rebuild
// an identical map.
func TestFragmentedRangesRoundTrip(t *testing.T) {
	m, err := NewMap(2, nil, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	// Punch three group-1 holes into group 0's half, including the very
	// first slot and a single-slot fragment.
	for _, r := range []Range{{0, 0, 1}, {100, 199, 1}, {4000, 4000, 1}} {
		if err := m.Assign(r.Start, r.End, r.Group); err != nil {
			t.Fatal(err)
		}
	}
	rs := m.Ranges()
	if err := ValidateRanges(rs, 2); err != nil {
		t.Fatalf("fragmented Ranges() does not round-trip: %v", err)
	}
	// 0-0(g1), 1-99(g0), 100-199(g1), 200-3999(g0), 4000-4000(g1),
	// 4001-8191(g0), 8192-16383(g1) — seven runs, strictly ordered.
	if len(rs) != 7 {
		t.Fatalf("expected 7 runs, got %d: %v", len(rs), rs)
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].Start != rs[i-1].End+1 {
			t.Fatalf("runs not contiguous in slot order: %v", rs)
		}
		if rs[i].Group == rs[i-1].Group {
			t.Fatalf("adjacent runs with one group not coalesced: %v", rs)
		}
	}
	rebuilt, err := NewMap(2, rs, []string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	for s := 0; s < NumSlots; s++ {
		if rebuilt.Owner(s) != m.Owner(s) {
			t.Fatalf("rebuilt map diverges at slot %d", s)
		}
	}
	if m.Count(0) != 8192-102 { // even split gave g0 8192 slots; 102 moved
		t.Fatalf("count(0) = %d, want %d", m.Count(0), 8192-102)
	}
	if m.Count(0)+m.Count(1) != NumSlots {
		t.Fatalf("counts do not sum to the slot space: %d+%d", m.Count(0), m.Count(1))
	}
}

// TestRedirectGrammar: MOVED/ASK round-trip through ParseRedirect, and
// non-redirect errors do not parse.
func TestRedirectGrammar(t *testing.T) {
	msg := MovedMessage(12182, "g1.master", 6379)
	if msg != "MOVED 12182 g1.master:6379" {
		t.Fatalf("MovedMessage = %q", msg)
	}
	slot, addr, port, ok := ParseRedirect(msg)
	if !ok || slot != 12182 || addr != "g1.master" || port != 6379 {
		t.Fatalf("ParseRedirect(%q) = %d %q %d %t", msg, slot, addr, port, ok)
	}
	slot, addr, port, ok = ParseRedirect(AskMessage(7, "x", 6380))
	if !ok || slot != 7 || addr != "x" || port != 6380 {
		t.Fatalf("ASK parse = %d %q %d %t", slot, addr, port, ok)
	}
	// ParseRedirectKind distinguishes the verbs (the client's one-shot vs
	// refresh decision rides on this).
	if k, _, _, _ := ParseRedirectKind(MovedMessage(1, "a", 1)); k != RedirectMoved {
		t.Fatalf("MOVED kind = %d", k)
	}
	if k, s, a, p := ParseRedirectKind(AskMessage(7, "x", 6380)); k != RedirectAsk || s != 7 || a != "x" || p != 6380 {
		t.Fatalf("ASK kind = %d %d %q %d", k, s, a, p)
	}
	for _, bad := range []string{
		"ERR something else",
		"MOVED",                               // no payload
		"MOVED ",                              // empty payload
		"MOVED x y:1",                         // non-numeric slot
		"MOVED -1 a:1",                        // negative slot
		fmt.Sprintf("MOVED %d a:1", NumSlots), // slot past the space
		fmt.Sprintf("MOVED %d noport", 5),     // no colon
		fmt.Sprintf("MOVED %d :", NumSlots+5), // empty host and port
		"MOVED 5 a:",                          // missing port
		"MOVED 5 :6379",                       // missing host
		"MOVED 5 a:x",                         // non-numeric port
		"MOVED 5 a:-1",                        // negative port (used to parse!)
		"MOVED 5 a:0",                         // port zero
		"MOVED 5 a:70000",                     // port out of range
		"MOVED 5 a:6379 extra",                // trailing tokens
		"ASK 5 a:6379 extra",                  // trailing tokens (ASK)
		"ASKED 5 a:6379",                      // near-miss verb
		"moved 5 a:6379",                      // wrong case
	} {
		if _, _, _, ok := ParseRedirect(bad); ok {
			t.Fatalf("ParseRedirect(%q) accepted garbage", bad)
		}
		if k, _, _, _ := ParseRedirectKind(bad); k != RedirectNone {
			t.Fatalf("ParseRedirectKind(%q) = %d, want RedirectNone", bad, k)
		}
	}
}
