package resp

import (
	"bytes"
	"testing"
)

// TestInvalidatePushRoundTrip: AppendInvalidatePush must encode the exact
// RESP3 push frame and round-trip through the Reader as a Value that
// IsPush() distinguishes from ordinary replies — the property the tracked
// clients rely on to demultiplex pushes from the in-band reply stream.
func TestInvalidatePushRoundTrip(t *testing.T) {
	frame := AppendInvalidatePush(nil, []byte("key:0000000042"))
	want := ">2\r\n$10\r\ninvalidate\r\n$14\r\nkey:0000000042\r\n"
	if !bytes.Equal(frame, []byte(want)) {
		t.Fatalf("push frame = %q, want %q", frame, want)
	}

	var r Reader
	r.Feed(frame)
	v, ok, err := r.ReadValue()
	if err != nil || !ok {
		t.Fatalf("reader rejected the push frame: ok=%v err=%v", ok, err)
	}
	if !v.IsPush() {
		t.Fatalf("parsed type %q, want push", v.Type)
	}
	if len(v.Array) != 2 || string(v.Array[0].Str) != "invalidate" || string(v.Array[1].Str) != "key:0000000042" {
		t.Fatalf("push payload mismatch: %+v", v)
	}
	if _, ok, _ := r.ReadValue(); ok {
		t.Fatal("trailing value after a single push frame")
	}
}

// TestPushInterleavedWithReplies: a push frame arriving between two
// ordinary replies must not desynchronize the reply stream.
func TestPushInterleavedWithReplies(t *testing.T) {
	var b []byte
	b = AppendSimple(b, "OK")
	b = AppendInvalidatePush(b, []byte("k"))
	b = AppendBulk(b, []byte("v"))

	var r Reader
	r.Feed(b)
	v1, ok, _ := r.ReadValue()
	if !ok || v1.IsPush() || v1.String() != "OK" {
		t.Fatalf("first value = %+v, want +OK", v1)
	}
	v2, ok, _ := r.ReadValue()
	if !ok || !v2.IsPush() {
		t.Fatalf("second value = %+v, want a push", v2)
	}
	v3, ok, _ := r.ReadValue()
	if !ok || v3.IsPush() || v3.String() != "v" {
		t.Fatalf("third value = %+v, want bulk v", v3)
	}
}
