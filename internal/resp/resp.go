// Package resp implements the Redis serialization protocol (RESP2) that SKV
// inherits from Redis: command parsing on the server side (arrays of bulk
// strings, plus inline commands) and reply encoding/decoding.
//
// The Reader is incremental: transport messages can split or coalesce
// protocol units arbitrarily, exactly as TCP segments or RDMA ring frames
// do, and parsing resumes when more bytes arrive.
package resp

import (
	"bytes"
	"errors"
	"fmt"
	"strconv"
)

// Value types.
const (
	TypeSimple  = '+'
	TypeError   = '-'
	TypeInteger = ':'
	TypeBulk    = '$'
	TypeArray   = '*'
	// TypePush is the RESP3 push frame ('>'): a server-initiated message
	// interleaved with replies on the same connection. SKV speaks RESP2
	// everywhere except this one frame, which carries client-tracking
	// invalidations (as Redis 6 does for clients that negotiated tracking).
	TypePush = '>'
)

// ErrProtocol reports malformed input; a server replies with an error and
// closes the connection.
var ErrProtocol = errors.New("resp: protocol error")

// Value is one decoded RESP value.
type Value struct {
	Type  byte
	Str   []byte  // Simple/Error/Bulk payload
	Int   int64   // Integer payload
	Array []Value // Array elements
	Null  bool    // null bulk ($-1) or null array (*-1)
}

// IsOK reports whether the value is the +OK simple string.
func (v Value) IsOK() bool { return v.Type == TypeSimple && string(v.Str) == "OK" }

// IsError reports whether the value is an error reply.
func (v Value) IsError() bool { return v.Type == TypeError }

// IsPush reports whether the value is a server-initiated push frame. Reply
// loops must check this before matching the value against their oldest
// in-flight request — a push consumes no request.
func (v Value) IsPush() bool { return v.Type == TypePush }

func (v Value) String() string {
	switch v.Type {
	case TypeSimple, TypeError:
		return string(v.Str)
	case TypeInteger:
		return strconv.FormatInt(v.Int, 10)
	case TypeBulk:
		if v.Null {
			return "(nil)"
		}
		return string(v.Str)
	case TypeArray:
		if v.Null {
			return "(nil array)"
		}
		var b bytes.Buffer
		b.WriteByte('[')
		for i, e := range v.Array {
			if i > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(e.String())
		}
		b.WriteByte(']')
		return b.String()
	}
	return "?"
}

// ---- Encoding ----

// AppendSimple appends +s\r\n.
func AppendSimple(dst []byte, s string) []byte {
	dst = append(dst, '+')
	dst = append(dst, s...)
	return append(dst, '\r', '\n')
}

// AppendError appends -msg\r\n.
func AppendError(dst []byte, msg string) []byte {
	dst = append(dst, '-')
	dst = append(dst, msg...)
	return append(dst, '\r', '\n')
}

// AppendInt appends :n\r\n.
func AppendInt(dst []byte, n int64) []byte {
	dst = append(dst, ':')
	dst = strconv.AppendInt(dst, n, 10)
	return append(dst, '\r', '\n')
}

// AppendBulk appends $len\r\npayload\r\n.
func AppendBulk(dst, payload []byte) []byte {
	dst = append(dst, '$')
	dst = strconv.AppendInt(dst, int64(len(payload)), 10)
	dst = append(dst, '\r', '\n')
	dst = append(dst, payload...)
	return append(dst, '\r', '\n')
}

// AppendBulkString appends a bulk from a Go string.
func AppendBulkString(dst []byte, s string) []byte { return AppendBulk(dst, []byte(s)) }

// AppendNullBulk appends $-1\r\n.
func AppendNullBulk(dst []byte) []byte { return append(dst, '$', '-', '1', '\r', '\n') }

// AppendArrayHeader appends *n\r\n; the caller then appends n values.
func AppendArrayHeader(dst []byte, n int) []byte {
	dst = append(dst, '*')
	dst = strconv.AppendInt(dst, int64(n), 10)
	return append(dst, '\r', '\n')
}

// AppendNullArray appends *-1\r\n.
func AppendNullArray(dst []byte) []byte { return append(dst, '*', '-', '1', '\r', '\n') }

// AppendInvalidatePush appends the client-tracking invalidation push frame
// >2\r\n$10\r\ninvalidate\r\n$<len>\r\n<key>\r\n — the one RESP3 frame the
// tracking plane injects into a RESP2 reply stream.
func AppendInvalidatePush(dst []byte, key []byte) []byte {
	dst = append(dst, TypePush)
	dst = append(dst, '2', '\r', '\n')
	dst = AppendBulkString(dst, "invalidate")
	return AppendBulk(dst, key)
}

// EncodeCommand encodes argv as an array of bulk strings (the client→server
// wire format).
func EncodeCommand(argv ...string) []byte {
	var dst []byte
	dst = AppendArrayHeader(dst, len(argv))
	for _, a := range argv {
		dst = AppendBulkString(dst, a)
	}
	return dst
}

// EncodeCommandBytes is EncodeCommand for byte-slice arguments.
func EncodeCommandBytes(argv ...[]byte) []byte {
	var dst []byte
	dst = AppendArrayHeader(dst, len(argv))
	for _, a := range argv {
		dst = AppendBulk(dst, a)
	}
	return dst
}

// ---- Incremental decoding ----

// Reader incrementally decodes RESP values or commands from fed bytes.
type Reader struct {
	buf []byte
	pos int
}

// Feed appends incoming bytes.
func (r *Reader) Feed(b []byte) { r.buf = append(r.buf, b...) }

// Buffered reports unconsumed byte count.
func (r *Reader) Buffered() int { return len(r.buf) - r.pos }

func (r *Reader) compact() {
	if r.pos > 0 && r.pos == len(r.buf) {
		r.buf = r.buf[:0]
		r.pos = 0
	} else if r.pos > 4096 {
		r.buf = append(r.buf[:0], r.buf[r.pos:]...)
		r.pos = 0
	}
}

// line returns the next CRLF-terminated line (without CRLF), advancing the
// cursor; ok is false when incomplete.
func (r *Reader) line() ([]byte, bool) {
	idx := bytes.Index(r.buf[r.pos:], []byte("\r\n"))
	if idx < 0 {
		return nil, false
	}
	l := r.buf[r.pos : r.pos+idx]
	r.pos += idx + 2
	return l, true
}

// ReadValue decodes one complete value. ok=false means more bytes needed
// (cursor unchanged).
func (r *Reader) ReadValue() (Value, bool, error) {
	save := r.pos
	v, ok, err := r.readValue()
	if !ok || err != nil {
		r.pos = save
		if err != nil {
			return Value{}, false, err
		}
		return Value{}, false, nil
	}
	r.compact()
	return v, true, nil
}

func (r *Reader) readValue() (Value, bool, error) {
	if r.pos >= len(r.buf) {
		return Value{}, false, nil
	}
	t := r.buf[r.pos]
	switch t {
	case TypeSimple, TypeError:
		r.pos++
		l, ok := r.line()
		if !ok {
			return Value{}, false, nil
		}
		return Value{Type: t, Str: append([]byte(nil), l...)}, true, nil
	case TypeInteger:
		r.pos++
		l, ok := r.line()
		if !ok {
			return Value{}, false, nil
		}
		n, err := strconv.ParseInt(string(l), 10, 64)
		if err != nil {
			return Value{}, false, fmt.Errorf("%w: bad integer %q", ErrProtocol, l)
		}
		return Value{Type: t, Int: n}, true, nil
	case TypeBulk:
		r.pos++
		l, ok := r.line()
		if !ok {
			return Value{}, false, nil
		}
		n, err := strconv.Atoi(string(l))
		if err != nil || n < -1 {
			return Value{}, false, fmt.Errorf("%w: bad bulk length %q", ErrProtocol, l)
		}
		if n == -1 {
			return Value{Type: t, Null: true}, true, nil
		}
		if len(r.buf)-r.pos < n+2 {
			return Value{}, false, nil
		}
		payload := append([]byte(nil), r.buf[r.pos:r.pos+n]...)
		if r.buf[r.pos+n] != '\r' || r.buf[r.pos+n+1] != '\n' {
			return Value{}, false, fmt.Errorf("%w: bulk missing CRLF", ErrProtocol)
		}
		r.pos += n + 2
		return Value{Type: t, Str: payload}, true, nil
	case TypeArray, TypePush:
		r.pos++
		l, ok := r.line()
		if !ok {
			return Value{}, false, nil
		}
		n, err := strconv.Atoi(string(l))
		if err != nil || n < -1 {
			return Value{}, false, fmt.Errorf("%w: bad array length %q", ErrProtocol, l)
		}
		if n == -1 {
			return Value{Type: t, Null: true}, true, nil
		}
		arr := make([]Value, 0, n)
		for i := 0; i < n; i++ {
			e, ok, err := r.readValue()
			if err != nil {
				return Value{}, false, err
			}
			if !ok {
				return Value{}, false, nil
			}
			arr = append(arr, e)
		}
		return Value{Type: t, Array: arr}, true, nil
	default:
		return Value{}, false, fmt.Errorf("%w: unexpected byte %q", ErrProtocol, t)
	}
}

// ReadCommand decodes one client command: either a RESP array of bulk
// strings or an inline command (space-separated words on one line).
// ok=false means more bytes needed.
func (r *Reader) ReadCommand() ([][]byte, bool, error) {
	if r.pos >= len(r.buf) {
		return nil, false, nil
	}
	for r.pos < len(r.buf) && r.buf[r.pos] != TypeArray {
		// Inline command; empty lines are skipped silently.
		l, ok := r.line()
		if !ok {
			return nil, false, nil
		}
		fields := bytes.Fields(l)
		if len(fields) == 0 {
			r.compact()
			continue
		}
		argv := make([][]byte, len(fields))
		for i, f := range fields {
			argv[i] = append([]byte(nil), f...)
		}
		r.compact()
		return argv, true, nil
	}
	if r.pos >= len(r.buf) {
		return nil, false, nil
	}
	v, ok, err := r.ReadValue()
	if err != nil || !ok {
		return nil, ok, err
	}
	if v.Null || len(v.Array) == 0 {
		return nil, false, fmt.Errorf("%w: empty command array", ErrProtocol)
	}
	argv := make([][]byte, len(v.Array))
	for i, e := range v.Array {
		if e.Type != TypeBulk || e.Null {
			return nil, false, fmt.Errorf("%w: command element not a bulk string", ErrProtocol)
		}
		argv[i] = e.Str
	}
	return argv, true, nil
}
