package resp

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestEncodeHelpers(t *testing.T) {
	cases := []struct {
		got  []byte
		want string
	}{
		{AppendSimple(nil, "OK"), "+OK\r\n"},
		{AppendError(nil, "ERR boom"), "-ERR boom\r\n"},
		{AppendInt(nil, -7), ":-7\r\n"},
		{AppendBulk(nil, []byte("hey")), "$3\r\nhey\r\n"},
		{AppendBulkString(nil, ""), "$0\r\n\r\n"},
		{AppendNullBulk(nil), "$-1\r\n"},
		{AppendArrayHeader(nil, 2), "*2\r\n"},
		{AppendNullArray(nil), "*-1\r\n"},
	}
	for _, c := range cases {
		if string(c.got) != c.want {
			t.Errorf("got %q want %q", c.got, c.want)
		}
	}
}

func TestEncodeCommand(t *testing.T) {
	b := EncodeCommand("SET", "key", "val")
	want := "*3\r\n$3\r\nSET\r\n$3\r\nkey\r\n$3\r\nval\r\n"
	if string(b) != want {
		t.Fatalf("got %q", b)
	}
}

func TestReadValueKinds(t *testing.T) {
	var r Reader
	r.Feed([]byte("+OK\r\n:42\r\n$5\r\nhello\r\n$-1\r\n*-1\r\n-ERR x\r\n"))

	v, ok, err := r.ReadValue()
	if err != nil || !ok || !v.IsOK() {
		t.Fatalf("simple: %v %v %v", v, ok, err)
	}
	v, _, _ = r.ReadValue()
	if v.Type != TypeInteger || v.Int != 42 {
		t.Fatalf("integer: %+v", v)
	}
	v, _, _ = r.ReadValue()
	if v.Type != TypeBulk || string(v.Str) != "hello" {
		t.Fatalf("bulk: %+v", v)
	}
	v, _, _ = r.ReadValue()
	if !v.Null || v.Type != TypeBulk {
		t.Fatalf("null bulk: %+v", v)
	}
	v, _, _ = r.ReadValue()
	if !v.Null || v.Type != TypeArray {
		t.Fatalf("null array: %+v", v)
	}
	v, _, _ = r.ReadValue()
	if !v.IsError() || v.String() != "ERR x" {
		t.Fatalf("error: %+v", v)
	}
}

func TestReadNestedArray(t *testing.T) {
	var r Reader
	r.Feed([]byte("*2\r\n*2\r\n:1\r\n:2\r\n$1\r\nx\r\n"))
	v, ok, err := r.ReadValue()
	if err != nil || !ok {
		t.Fatalf("nested: %v %v", ok, err)
	}
	if len(v.Array) != 2 || len(v.Array[0].Array) != 2 || v.Array[0].Array[1].Int != 2 {
		t.Fatalf("nested structure wrong: %s", v.String())
	}
}

func TestIncrementalFeeding(t *testing.T) {
	full := []byte("*3\r\n$3\r\nSET\r\n$1\r\nk\r\n$5\r\nworld\r\n")
	for cut := 1; cut < len(full)-1; cut++ {
		var r Reader
		r.Feed(full[:cut])
		argv, ok, err := r.ReadCommand()
		if err != nil {
			t.Fatalf("cut %d: err %v", cut, err)
		}
		if ok {
			// Only complete when cut covers everything — not possible here.
			t.Fatalf("cut %d: premature completion %v", cut, argv)
		}
		r.Feed(full[cut:])
		argv, ok, err = r.ReadCommand()
		if err != nil || !ok {
			t.Fatalf("cut %d: second read %v %v", cut, ok, err)
		}
		if len(argv) != 3 || string(argv[0]) != "SET" || string(argv[2]) != "world" {
			t.Fatalf("cut %d: argv %q", cut, argv)
		}
	}
}

func TestInlineCommand(t *testing.T) {
	var r Reader
	r.Feed([]byte("PING\r\n\r\nSET key val\r\n"))
	argv, ok, err := r.ReadCommand()
	if err != nil || !ok || string(argv[0]) != "PING" {
		t.Fatalf("inline 1: %q %v %v", argv, ok, err)
	}
	argv, ok, err = r.ReadCommand()
	if err != nil || !ok || len(argv) != 3 || string(argv[1]) != "key" {
		t.Fatalf("inline 2 (after blank line): %q %v %v", argv, ok, err)
	}
}

func TestProtocolErrors(t *testing.T) {
	bad := []string{
		"!weird\r\n",
		":notanum\r\n",
		"$-5\r\n",
		"$3\r\nabcXY",
	}
	for _, s := range bad {
		var r Reader
		r.Feed([]byte(s))
		_, _, err := r.ReadValue()
		if err == nil {
			t.Errorf("input %q: expected protocol error", s)
		}
	}
}

func TestCommandArrayMustBeBulks(t *testing.T) {
	var r Reader
	r.Feed([]byte("*1\r\n:5\r\n"))
	_, _, err := r.ReadCommand()
	if err == nil {
		t.Fatal("integer inside command array accepted")
	}
}

// Property: any command round-trips through encode → feed-in-chunks →
// decode.
func TestCommandRoundTripProperty(t *testing.T) {
	f := func(rawArgs [][]byte, chunk uint8) bool {
		if len(rawArgs) == 0 {
			return true
		}
		enc := EncodeCommandBytes(rawArgs...)
		var r Reader
		step := int(chunk)%7 + 1
		for off := 0; off < len(enc); off += step {
			end := off + step
			if end > len(enc) {
				end = len(enc)
			}
			r.Feed(enc[off:end])
		}
		argv, ok, err := r.ReadCommand()
		if err != nil || !ok || len(argv) != len(rawArgs) {
			return false
		}
		for i := range argv {
			if !bytes.Equal(argv[i], rawArgs[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: encoded values decode to themselves (bulk payload arbitrary).
func TestBulkRoundTripProperty(t *testing.T) {
	f := func(payload []byte) bool {
		var r Reader
		r.Feed(AppendBulk(nil, payload))
		v, ok, err := r.ReadValue()
		return err == nil && ok && v.Type == TypeBulk && bytes.Equal(v.Str, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestValueStringRendering(t *testing.T) {
	var r Reader
	r.Feed([]byte("*2\r\n:1\r\n$1\r\nx\r\n"))
	v, _, _ := r.ReadValue()
	if v.String() != "[1 x]" {
		t.Fatalf("render %q", v.String())
	}
}
