package store

import (
	"testing"
)

// TestCommandDescriptors sanity-checks the exported command table: every
// descriptor is self-consistent and the well-known commands carry the
// classification the server and replication layers depend on.
func TestCommandDescriptors(t *testing.T) {
	count := 0
	EachCommand(func(c *Command) {
		count++
		if c.Name == "" || len(c.Name) > maxCmdLen {
			t.Errorf("bad name %q", c.Name)
		}
		if c.Arity == 0 {
			t.Errorf("%s: zero arity", c.Name)
		}
		if c.Server {
			if c.handler != nil || c.Write {
				t.Errorf("%s: server-level command with handler/write flag", c.Name)
			}
		} else if c.handler == nil {
			t.Errorf("%s: no handler", c.Name)
		}
	})
	if count < 70 {
		t.Fatalf("only %d commands registered", count)
	}
	for _, tc := range []struct {
		name          string
		write, server bool
		firstKey      int
	}{
		{"set", true, false, 1},
		{"get", false, false, 1},
		{"del", true, false, 1},
		{"keys", false, false, 0},
		{"object", false, false, 2},
		{"select", false, true, 0},
		{"psync", false, true, 0},
		{"wait", false, true, 0},
	} {
		c := LookupCommandName(tc.name)
		if c == nil {
			t.Fatalf("%s not registered", tc.name)
		}
		if c.Write != tc.write || c.Server != tc.server || c.FirstKey != tc.firstKey {
			t.Fatalf("%s: write=%v server=%v firstKey=%d", tc.name, c.Write, c.Server, c.FirstKey)
		}
	}
}

func TestLookupCommandCases(t *testing.T) {
	for _, name := range []string{"set", "SET", "SeT"} {
		if LookupCommand([]byte(name)) != LookupCommandName("set") {
			t.Fatalf("lookup %q missed", name)
		}
	}
	if LookupCommand([]byte("nosuch")) != nil || LookupCommandName("NOSUCH") != nil {
		t.Fatal("unknown command resolved")
	}
	long := make([]byte, maxCmdLen+1)
	for i := range long {
		long[i] = 'A'
	}
	if LookupCommand(long) != nil || LookupCommandName(string(long)) != nil {
		t.Fatal("oversized name resolved")
	}
}

func TestFirstKeyArg(t *testing.T) {
	argv := [][]byte{[]byte("SET"), []byte("k"), []byte("v")}
	if got := LookupCommandName("set").FirstKeyArg(argv); string(got) != "k" {
		t.Fatalf("set first key = %q", got)
	}
	if got := LookupCommandName("keys").FirstKeyArg(argv); got != nil {
		t.Fatalf("keyless command returned %q", got)
	}
	if got := LookupCommandName("object").FirstKeyArg([][]byte{[]byte("OBJECT"), []byte("ENCODING")}); got != nil {
		t.Fatalf("short argv returned %q", got)
	}
}

// TestLookupZeroAlloc pins the satellite claim: command resolution — the
// per-request hot path in server dispatch, write classification, and
// replication filtering — allocates nothing, for lowercase and mixed-case
// names, via both the []byte and string entry points.
func TestLookupZeroAlloc(t *testing.T) {
	lower := []byte("set")
	upper := []byte("GETRANGE")
	if n := testing.AllocsPerRun(1000, func() {
		if LookupCommand(lower) == nil || LookupCommand(upper) == nil {
			t.Fatal("lookup missed")
		}
	}); n != 0 {
		t.Fatalf("LookupCommand allocates %v per run", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if !IsWriteCommand("set") || IsWriteCommand("GET") || !KnownCommand("ZADD") {
			t.Fatal("misclassified")
		}
	}); n != 0 {
		t.Fatalf("IsWriteCommand/KnownCommand allocate %v per run", n)
	}
}

func BenchmarkLookupCommand(b *testing.B) {
	names := [][]byte{[]byte("set"), []byte("get"), []byte("ZRANGEBYSCORE"), []byte("HSet")}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if LookupCommand(names[i%len(names)]) == nil {
			b.Fatal("lookup missed")
		}
	}
}

func BenchmarkIsWriteCommand(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !IsWriteCommand("set") {
			b.Fatal("misclassified")
		}
	}
}
